//! Umbrella crate for the SPEAR reproduction workspace.
//!
//! Holds the cross-crate integration tests (`tests/`) and the runnable
//! examples (`examples/`). The library surface simply re-exports the member
//! crates so examples can use one import root.

pub use spear;
pub use spear_bpred as bpred;
pub use spear_campaign as campaign;
pub use spear_compiler as compiler;
pub use spear_cpu as cpu;
pub use spear_exec as exec;
pub use spear_isa as isa;
pub use spear_mem as mem;
pub use spear_simpoint as simpoint;
pub use spear_workloads as workloads;
