//! Run-to-run determinism: the whole pipeline (input generation,
//! profiling, slicing, cycle simulation, parallel sweep scheduling) must
//! be bit-reproducible — a requirement for the evaluation numbers in
//! EXPERIMENTS.md to be meaningful.

use spear_repro::spear::experiments::{compile_all, fig6};
use spear_repro::spear::report;
use spear_workloads::by_name;

#[test]
fn matrix_runs_are_bit_identical() {
    let ws = vec![by_name("field").unwrap(), by_name("mcf").unwrap()];
    let c1 = compile_all(&ws);
    let c2 = compile_all(&ws);
    assert_eq!(c1.tables, c2.tables, "compilation is deterministic");

    let m1 = fig6(&c1);
    let m2 = fig6(&c2);
    for r in 0..m1.workloads.len() {
        for c in 0..m1.machines.len() {
            let s1 = &m1.outcomes[r][c].stats;
            let s2 = &m2.outcomes[r][c].stats;
            assert_eq!(s1.cycles, s2.cycles, "{} col {c}", m1.workloads[r]);
            assert_eq!(s1.committed, s2.committed);
            assert_eq!(s1.l1d_main_misses, s2.l1d_main_misses);
            assert_eq!(s1.triggers_accepted, s2.triggers_accepted);
            assert_eq!(s1.preexec_completed, s2.preexec_completed);
            assert_eq!(s1.pthread_loads, s2.pthread_loads);
        }
    }
    // The rendered reports are therefore identical too.
    assert_eq!(report::ipc_matrix(&m1), report::ipc_matrix(&m2));
}

#[test]
fn reports_render_all_rows() {
    let ws = vec![by_name("field").unwrap()];
    let compiled = compile_all(&ws);
    let m = fig6(&compiled);
    let text = report::ipc_matrix(&m);
    assert!(text.contains("field"));
    assert!(text.contains("AVERAGE"));
    assert_eq!(text.lines().count(), 3, "header + one row + average");
    let (header, rows) = report::ipc_matrix_csv(&m);
    assert_eq!(header.len(), 4);
    assert_eq!(rows.len(), 3, "one row per (workload, machine)");
}
