//! Run-to-run determinism: the whole pipeline (input generation,
//! profiling, slicing, cycle simulation, parallel sweep scheduling) must
//! be bit-reproducible — a requirement for the evaluation numbers in
//! EXPERIMENTS.md to be meaningful.

use spear_cpu::{CoreConfig, RunExit};
use spear_repro::campaign::{Campaign, CampaignSpec, MachinePoint, SampleSpec};
use spear_repro::spear::experiments::{compile_all, fig6};
use spear_repro::spear::export::StatsExport;
use spear_repro::spear::report;
use spear_repro::spear::runner::run_one;
use spear_workloads::by_name;

#[test]
fn matrix_runs_are_bit_identical() {
    let ws = vec![by_name("field").unwrap(), by_name("mcf").unwrap()];
    let c1 = compile_all(&ws);
    let c2 = compile_all(&ws);
    assert_eq!(c1.tables, c2.tables, "compilation is deterministic");

    let m1 = fig6(&c1);
    let m2 = fig6(&c2);
    for r in 0..m1.workloads.len() {
        for c in 0..m1.machines.len() {
            let s1 = &m1.outcomes[r][c].stats;
            let s2 = &m2.outcomes[r][c].stats;
            assert_eq!(s1.cycles, s2.cycles, "{} col {c}", m1.workloads[r]);
            assert_eq!(s1.committed, s2.committed);
            assert_eq!(s1.l1d_main_misses, s2.l1d_main_misses);
            assert_eq!(s1.triggers_accepted, s2.triggers_accepted);
            assert_eq!(s1.preexec_completed, s2.preexec_completed);
            assert_eq!(s1.pthread_loads, s2.pthread_loads);
        }
    }
    // The rendered reports are therefore identical too.
    assert_eq!(report::ipc_matrix(&m1), report::ipc_matrix(&m2));
}

/// The `--stats-json` envelope — schema version, exit, and every stats
/// counter — must serialize to the same bytes on repeated runs.
#[test]
fn stats_json_is_byte_identical_across_runs() {
    let w = by_name("field").unwrap();
    let compiled = compile_all(std::slice::from_ref(&w));
    let machine = spear_repro::spear::Machine::Spear128;
    let j1 = run_one(&w, &compiled.tables[0], machine, None)
        .export()
        .to_json();
    let j2 = run_one(&w, &compiled.tables[0], machine, None)
        .export()
        .to_json();
    assert_eq!(j1, j2, "stats-json must be byte-identical across runs");
    // And the document round-trips through the versioned schema.
    let doc = StatsExport::from_json(&j1).expect("valid envelope");
    assert_eq!(doc.machine, "SPEAR-128");
}

/// Campaign aggregates — and the stats envelopes built from them — must
/// not depend on how many worker threads executed the cells or in what
/// order the per-cell JSONL records landed on disk.
#[test]
fn campaign_stats_json_identical_across_thread_counts() {
    let spec = |threads| CampaignSpec {
        workloads: vec!["field".into()],
        points: vec![
            MachinePoint {
                machine: "superscalar".into(),
                mem_latency: 120,
                config: CoreConfig::baseline(),
            },
            MachinePoint {
                machine: "SPEAR-128".into(),
                mem_latency: 120,
                config: CoreConfig::spear(128),
            },
        ],
        frontends: Vec::new(),
        sample: SampleSpec::full(25_000),
        threads,
        max_cells: None,
        window: None,
        simpoint: None,
    };
    let base = std::env::temp_dir().join(format!("spear-det-campaign-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let envelopes = |threads: usize, tag: &str| -> Vec<String> {
        let dir = base.join(tag);
        let summary = Campaign::new(&dir, spec(threads))
            .run(None)
            .expect("campaign");
        summary
            .aggregates()
            .iter()
            .map(|a| {
                StatsExport::new(
                    a.workload.clone(),
                    &a.machine,
                    a.mem_latency,
                    RunExit::Halted,
                    a.stats.clone(),
                )
                .to_json()
            })
            .collect()
    };
    let serial = envelopes(1, "t1");
    let parallel = envelopes(4, "t4");
    assert_eq!(
        serial, parallel,
        "aggregate envelopes must be byte-identical"
    );
    let _ = std::fs::remove_dir_all(&base);
}

#[test]
fn reports_render_all_rows() {
    let ws = vec![by_name("field").unwrap()];
    let compiled = compile_all(&ws);
    let m = fig6(&compiled);
    let text = report::ipc_matrix(&m);
    assert!(text.contains("field"));
    assert!(text.contains("AVERAGE"));
    assert_eq!(text.lines().count(), 3, "header + one row + average");
    let (header, rows) = report::ipc_matrix_csv(&m);
    assert_eq!(header.len(), 4);
    assert_eq!(rows.len(), 3, "one row per (workload, machine)");
}
