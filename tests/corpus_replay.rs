//! Replay the minimized-reproducer corpus (`tests/corpus/`) through the
//! full differential oracle. Every entry is a shrunk program that once
//! exposed a real divergence; any entry failing here means a regression
//! resurrected a fixed bug.

use std::path::Path;

#[test]
fn corpus_reproducers_all_pass() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus");
    let mut lines = Vec::new();
    let report = spear_fuzz::replay(&dir, |s| lines.push(s.to_string()))
        .expect("corpus must be readable — entries are checked in");
    assert!(
        report.replayed > 0,
        "the checked-in corpus must not be empty"
    );
    assert!(
        report.regressions.is_empty(),
        "corpus regressions:\n{}",
        lines.join("\n")
    );
}
