//! Shape tests for the headline evaluation results: not the paper's exact
//! numbers (our substrate is a reconstruction, not the authors' testbed),
//! but the orderings and signs its conclusions rest on. EXPERIMENTS.md
//! records the full measured-vs-paper comparison.

use spear_repro::spear::experiments::FIG9_LATENCIES;
use spear_repro::spear::runner::{compile_workload, run_one};
use spear_repro::spear::Machine;
use spear_workloads::by_name;

fn speedup(name: &str, machine: Machine) -> f64 {
    let w = by_name(name).unwrap();
    let (table, _) = compile_workload(&w);
    let base = run_one(&w, &table, Machine::Baseline, None).ipc();
    run_one(&w, &table, machine, None).ipc() / base
}

#[test]
fn mcf_is_a_big_winner() {
    // Paper: +87.6%, the best case of Figure 6.
    let s = speedup("mcf", Machine::Spear256);
    assert!(s > 1.4, "mcf SPEAR-256 speedup: {s:.3}");
}

#[test]
fn field_is_flat() {
    // Paper: "the cache miss rate is too low to benefit from prefetching".
    let s = speedup("field", Machine::Spear128);
    assert!((0.97..=1.05).contains(&s), "field: {s:.3}");
}

#[test]
fn fft_gains_nothing() {
    // Paper: slight degradation — the 1,129-instruction p-thread cannot
    // run ahead of the main program.
    let s = speedup("fft", Machine::Spear128);
    assert!((0.90..=1.03).contains(&s), "fft: {s:.3}");
}

#[test]
fn matrix_wins_most_from_the_longer_ifq() {
    // Paper Table 3: matrix's SPEAR-256/SPEAR-128 ratio is the largest
    // (1.45) thanks to its near-perfect branch prediction.
    let w = by_name("matrix").unwrap();
    let (table, _) = compile_workload(&w);
    let s128 = run_one(&w, &table, Machine::Spear128, None).ipc();
    let s256 = run_one(&w, &table, Machine::Spear256, None).ipc();
    let ratio = s256 / s128;
    assert!(ratio > 1.2, "matrix long-IFQ ratio: {ratio:.3}");
}

#[test]
fn spear_tolerates_long_latency_better_than_baseline() {
    // The Figure 9 conclusion, on mcf: between the shortest and longest
    // memory latency the baseline must lose a larger fraction of its
    // performance than SPEAR.
    let w = by_name("mcf").unwrap();
    let (table, _) = compile_workload(&w);
    let loss = |machine: Machine| {
        let short = run_one(
            &w,
            &table,
            machine,
            Some(spear_mem::LatencyConfig::sweep_point(FIG9_LATENCIES[0])),
        )
        .ipc();
        let long = run_one(
            &w,
            &table,
            machine,
            Some(spear_mem::LatencyConfig::sweep_point(
                FIG9_LATENCIES[FIG9_LATENCIES.len() - 1],
            )),
        )
        .ipc();
        1.0 - long / short
    };
    let base_loss = loss(Machine::Baseline);
    let spear_loss = loss(Machine::Spear128);
    assert!(
        spear_loss < base_loss,
        "SPEAR loss {spear_loss:.3} must be below baseline loss {base_loss:.3}"
    );
}

#[test]
fn art_has_a_strong_miss_reduction() {
    // Paper Figure 8: art has the best miss reduction (38.8%).
    let w = by_name("art").unwrap();
    let (table, _) = compile_workload(&w);
    let base = run_one(&w, &table, Machine::Baseline, None)
        .stats
        .l1d_main_misses;
    let spear = run_one(&w, &table, Machine::Spear128, None)
        .stats
        .l1d_main_misses;
    let reduction = 1.0 - spear as f64 / base as f64;
    assert!(reduction > 0.3, "art miss reduction: {reduction:.3}");
}

#[test]
fn empty_tables_never_perturb_timing() {
    // SPEAR hardware with no p-threads is cycle-identical to the baseline
    // — the front-end additions are inert without PT entries.
    let w = by_name("field").unwrap();
    let empty = spear_isa::PThreadTable::empty();
    let base = run_one(&w, &empty, Machine::Baseline, None);
    let spear = run_one(&w, &empty, Machine::Spear128, None);
    assert_eq!(base.stats.cycles, spear.stats.cycles);
}
