//! The strongest correctness property in the repository: for every
//! workload, the cycle-level out-of-order SMT core — with or without a
//! compiled p-thread table — must commit exactly the same architectural
//! state (registers, memory, instruction count) as the in-order functional
//! interpreter. Speculative pre-execution must never change program
//! semantics ("the p-thread … only updates the data cache without changing
//! the semantic state of the main program").

use spear_cpu::{Core, CoreConfig, RunExit};
use spear_exec::Interp;
use spear_isa::SpearBinary;
use spear_repro::compiler::SpearCompiler;
use spear_repro::spear::runner::compile_workload;

fn golden(program: &spear_isa::Program) -> (u64, u64) {
    let mut i = Interp::new(program);
    i.run(u64::MAX).expect("golden run");
    (i.icount, i.state_checksum())
}

fn check(binary: &SpearBinary, cfg: CoreConfig, label: &str) {
    let (icount, checksum) = golden(&binary.program);
    let mut core = Core::new(binary, cfg);
    let res = core.run(500_000_000, u64::MAX).expect("simulation");
    assert_eq!(res.exit, RunExit::Halted, "{label}: did not halt");
    assert_eq!(res.stats.committed, icount, "{label}: instruction count");
    assert_eq!(
        core.state_checksum(),
        checksum,
        "{label}: architectural state"
    );
}

/// Baseline equivalence over all 15 workloads (profiling inputs — smaller,
/// so the full suite stays fast).
#[test]
fn baseline_matches_golden_on_all_workloads() {
    for w in spear_workloads::all() {
        let binary = SpearBinary::plain(w.profile_program());
        check(&binary, CoreConfig::baseline(), w.name);
    }
}

/// SPEAR equivalence with real compiled p-thread tables: pre-execution
/// must be architecturally invisible on every workload.
#[test]
fn spear_matches_golden_on_all_workloads() {
    for w in spear_workloads::all() {
        let (table, _) = compile_workload(&w);
        let binary = SpearCompiler::attach(w.profile_program(), table);
        check(&binary, CoreConfig::spear(128), w.name);
    }
}

/// The separate-functional-unit models are equally invisible.
#[test]
fn spear_sf_matches_golden_on_selected_workloads() {
    for name in ["mcf", "matrix", "fft", "update"] {
        let w = spear_workloads::by_name(name).unwrap();
        let (table, _) = compile_workload(&w);
        let binary = SpearCompiler::attach(w.profile_program(), table);
        check(&binary, CoreConfig::spear_sf(256), name);
    }
}

/// Equivalence holds across the Figure 9 latency range, where prefetch
/// timing shifts drastically.
#[test]
fn equivalence_across_latency_sweep() {
    let w = spear_workloads::by_name("mcf").unwrap();
    let (table, _) = compile_workload(&w);
    let binary = SpearCompiler::attach(w.profile_program(), table);
    for mem in [40u32, 200] {
        let mut cfg = CoreConfig::spear(128);
        cfg.hier.latency = spear_mem::LatencyConfig::sweep_point(mem);
        check(&binary, cfg, &format!("mcf@{mem}"));
    }
}
