//! Acceptance test for checkpointed sampled simulation: the sampled
//! Figure-6 estimate must agree with the full-run matrix — column means
//! within 2% relative tolerance — while doing a fraction of the cycle
//! simulation work (the timing of both paths is logged and compared).

use spear_repro::campaign::SampleSpec;
use spear_repro::spear::experiments::{compile_all, fig6, fig6_sampled};
use spear_workloads::by_name;
use std::time::Instant;

#[test]
fn sampled_fig6_matches_full_run_and_is_faster() {
    let ws = vec![by_name("pointer").unwrap(), by_name("mcf").unwrap()];

    // Full path. Compilation is done up front so the timed section is
    // purely cycle simulation — the cost sampling is meant to cut.
    let compiled = compile_all(&ws);
    let t0 = Instant::now();
    let full = fig6(&compiled);
    let full_elapsed = t0.elapsed();

    // Sampled path: every 3rd 25k-instruction interval, from warm
    // checkpoints. The timed section includes the campaign's own
    // compilation and functional warming pass — the honest end-to-end
    // cost of the sampled estimate.
    let dir = std::env::temp_dir().join(format!("spear-accept-campaign-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let t0 = Instant::now();
    let sampled = fig6_sampled(
        &ws,
        SampleSpec {
            interval_len: 25_000,
            stride: 3,
        },
        &dir,
    )
    .expect("sampled campaign");
    let sampled_elapsed = t0.elapsed();
    let _ = std::fs::remove_dir_all(&dir);

    eprintln!("full fig6 matrix:    {full_elapsed:?}");
    eprintln!("sampled fig6 matrix: {sampled_elapsed:?}");

    assert_eq!(sampled.workloads, full.workloads);
    assert_eq!(sampled.machines.len(), full.machines.len());

    // Column means (the paper's "on the average" numbers) within 2%.
    for c in 0..full.machines.len() {
        let f = full.mean_normalized(c);
        let s = sampled.mean_normalized(c);
        let rel = (s - f).abs() / f;
        eprintln!(
            "col {} ({}): full {:.4}  sampled {:.4}  rel err {:.2}%",
            c,
            full.machines[c].name(),
            f,
            s,
            rel * 100.0
        );
        assert!(
            rel <= 0.02,
            "column {c} mean off by {:.2}% (> 2%)",
            rel * 100.0
        );
    }

    // And the shortcut must actually be a shortcut.
    assert!(
        sampled_elapsed < full_elapsed,
        "sampled path must be measurably faster: sampled {sampled_elapsed:?} vs full {full_elapsed:?}"
    );
}
