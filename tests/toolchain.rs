//! End-to-end toolchain tests: text assembly → post-compiler → `.spear`
//! binary serialization → simulator, with architectural equivalence
//! checked at every step.

use spear_cpu::{Core, CoreConfig, RunExit};
use spear_exec::Interp;
use spear_isa::{binfile, emit_asm, parse_asm};
use spear_repro::compiler::{CompilerConfig, SpearCompiler};

const HISTOGRAM_S: &str = include_str!("../examples/asm/histogram.s");

#[test]
fn histogram_source_assembles_and_runs() {
    let p = parse_asm(HISTOGRAM_S).expect("assembles");
    p.validate().expect("valid");
    let mut i = Interp::new(&p);
    i.run(50_000_000).expect("runs");
    assert!(i.halted);
    assert!(i.icount > 100_000, "{}", i.icount);
    // The histogram must have counted something.
    let result = i.mem.read_u64(p.data_addr("result").unwrap());
    assert!(result > 0);
}

#[test]
fn emitted_text_round_trips_through_the_parser() {
    let p = parse_asm(HISTOGRAM_S).unwrap();
    let p2 = parse_asm(&emit_asm(&p)).expect("emitted text re-assembles");
    assert_eq!(p.insts, p2.insts);
    assert_eq!(p.data.to_bytes(), p2.data.to_bytes());
    // Functional equivalence of the round-tripped program.
    let run = |prog: &spear_isa::Program| {
        let mut i = Interp::new(prog);
        i.run(50_000_000).unwrap();
        (i.icount, i.state_checksum())
    };
    assert_eq!(run(&p), run(&p2));
}

#[test]
fn compile_serialize_load_simulate() {
    let p = parse_asm(HISTOGRAM_S).unwrap();
    let (icount, checksum) = {
        let mut i = Interp::new(&p);
        i.run(50_000_000).unwrap();
        (i.icount, i.state_checksum())
    };

    // Compile → save → load.
    let (binary, report) = SpearCompiler::new(CompilerConfig::default())
        .compile(&p)
        .expect("compile");
    assert!(
        !report.built.is_empty(),
        "the gather load must be delinquent"
    );
    let bytes = binfile::save(&binary);
    let loaded = binfile::load(&bytes).expect("load");
    assert_eq!(loaded.table, binary.table);

    // Simulate the loaded binary on baseline and SPEAR; both must match
    // the golden model.
    for cfg in [CoreConfig::baseline(), CoreConfig::spear(128)] {
        let mut core = Core::new(&loaded, cfg);
        let res = core.run(100_000_000, u64::MAX).expect("sim");
        assert_eq!(res.exit, RunExit::Halted);
        assert_eq!(res.stats.committed, icount);
        assert_eq!(core.state_checksum(), checksum);
    }
}

#[test]
fn spear_accelerates_the_histogram() {
    let p = parse_asm(HISTOGRAM_S).unwrap();
    let (binary, _) = SpearCompiler::new(CompilerConfig::default())
        .compile(&p)
        .expect("compile");
    let plain = spear_isa::SpearBinary::plain(p);
    let base = {
        let mut c = Core::new(&plain, CoreConfig::baseline());
        c.run(100_000_000, u64::MAX).unwrap().stats.ipc()
    };
    let spear = {
        let mut c = Core::new(&binary, CoreConfig::spear(128));
        c.run(100_000_000, u64::MAX).unwrap().stats.ipc()
    };
    assert!(
        spear > base * 1.02,
        "SPEAR ({spear:.4}) should beat baseline ({base:.4}) on the histogram"
    );
}

#[test]
fn workload_binaries_survive_serialization() {
    // Every workload's compiled SPEAR binary round-trips through the file
    // format bit-exactly.
    for name in ["mcf", "field", "fft"] {
        let w = spear_workloads::by_name(name).unwrap();
        let p = w.profile_program();
        let (binary, _) = SpearCompiler::new(CompilerConfig::default())
            .compile(&p)
            .unwrap();
        let loaded = binfile::load(&binfile::save(&binary)).unwrap();
        assert_eq!(loaded.program.insts, binary.program.insts, "{name}");
        assert_eq!(loaded.table, binary.table, "{name}");
        assert_eq!(
            loaded.program.data.to_bytes(),
            binary.program.data.to_bytes(),
            "{name}"
        );
    }
}
