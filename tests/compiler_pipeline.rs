//! Cross-crate tests of the SPEAR post-compiler over the real workloads:
//! every benchmark compiles to a valid SPEAR binary, the memory-bound
//! benchmarks get p-threads, slices look like slices, and the attach step
//! rebinds cleanly across input sets.

use spear_repro::compiler::{CompilerConfig, SpearCompiler};
use spear_repro::spear::runner::{compile_workload, compile_workload_with};

#[test]
fn every_workload_compiles_to_a_valid_binary() {
    for w in spear_workloads::all() {
        let program = w.profile_program();
        let (binary, report) = SpearCompiler::new(CompilerConfig::default())
            .compile(&program)
            .unwrap_or_else(|e| panic!("{}: {e}", w.name));
        binary
            .validate()
            .unwrap_or_else(|e| panic!("{}: {e}", w.name));
        assert!(
            report.profiled_insts > 10_000,
            "{}: trivial profile",
            w.name
        );
    }
}

#[test]
fn memory_bound_workloads_get_pthreads() {
    for name in [
        "pointer", "update", "nbh", "matrix", "dm", "mcf", "vpr", "equake", "art",
    ] {
        let w = spear_workloads::by_name(name).unwrap();
        let (table, report) = compile_workload(&w);
        assert!(
            !table.is_empty(),
            "{name}: expected delinquent loads, report: {report:?}"
        );
    }
}

#[test]
fn slices_contain_their_dloads_and_address_chains() {
    let w = spear_workloads::by_name("mcf").unwrap();
    let (table, _) = compile_workload(&w);
    let program = w.profile_program();
    for e in &table.entries {
        assert!(e.members.contains(&e.dload_pc));
        assert!(!e.live_ins.is_empty(), "loop slices always have live-ins");
        // Every member is load/store/ALU — a slice never contains a halt.
        for &pc in &e.members {
            let inst = &program.insts[pc as usize];
            assert_ne!(inst.op, spear_isa::Opcode::Halt);
        }
        // Slices are small relative to the program for mcf.
        assert!(
            e.members.len() < 20,
            "mcf slices are compact: {}",
            e.members.len()
        );
    }
}

#[test]
fn fft_slices_are_large() {
    // The paper's fft p-thread has 1,129 instructions; ours must likewise
    // blow up via the read-modify-write dependences.
    let w = spear_workloads::by_name("fft").unwrap();
    let (table, _) = compile_workload(&w);
    let max = table
        .entries
        .iter()
        .map(|e| e.members.len())
        .max()
        .unwrap_or(0);
    assert!(
        max >= 25,
        "fft's RMW chains should inflate the slice: {max}"
    );
}

#[test]
fn tables_rebind_across_input_sets() {
    for name in ["mcf", "nbh"] {
        let w = spear_workloads::by_name(name).unwrap();
        let (table, _) = compile_workload(&w);
        // Attach to the (different) evaluation image: PCs are identical,
        // data differs.
        let rebound = SpearCompiler::attach(w.eval_program(), table);
        rebound.validate().unwrap_or_else(|e| panic!("{name}: {e}"));
    }
}

#[test]
fn slice_cap_bounds_every_entry() {
    let w = spear_workloads::by_name("fft").unwrap();
    let mut cfg = CompilerConfig::default();
    cfg.slicer.slice_cap = Some(10);
    let (table, _) = compile_workload_with(&w, &cfg);
    for e in &table.entries {
        assert!(
            e.members.len() <= 11,
            "cap plus the d-load: {}",
            e.members.len()
        );
    }
}

#[test]
fn compile_is_deterministic() {
    let w = spear_workloads::by_name("vpr").unwrap();
    let (t1, _) = compile_workload(&w);
    let (t2, _) = compile_workload(&w);
    assert_eq!(t1, t2);
}
