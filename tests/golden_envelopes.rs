//! Golden `--stats-json` envelope regression: the cycle core's behavior
//! is pinned byte-for-byte for a grid of (workload, machine) cells.
//!
//! The golden files under `tests/golden/` were recorded before the
//! stage-modular core refactor; any change to cycle-level behavior —
//! timing, statistics, serialization — fails this test loudly. To
//! re-record after an *intentional* behavioral change, run:
//!
//! ```text
//! GOLDEN_BLESS=1 cargo test --test golden_envelopes
//! ```
//!
//! and commit the updated files together with the change that justifies
//! them.

use spear::export::StatsExport;
use spear::runner::{compile_workload, run_one};
use spear::Machine;
use std::path::PathBuf;

/// The golden grid: three workloads spanning the interesting regimes
/// (cache-resident, stressmark with episodes, pointer chase) on the
/// baseline, shared-FU SPEAR, and separate-FU SPEAR machines.
const WORKLOADS: [&str; 3] = ["field", "update", "pointer"];
const MACHINES: [Machine; 3] = [Machine::Baseline, Machine::Spear128, Machine::SpearSf128];

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
}

fn golden_path(workload: &str, machine: Machine) -> PathBuf {
    golden_dir().join(format!(
        "{workload}-{}.json",
        machine.name().replace('.', "_")
    ))
}

/// Simulate one cell to completion and render its stats envelope exactly
/// as `spear-sim --stats-json` would.
fn envelope(workload: &str, machine: Machine) -> String {
    let w = spear_workloads::by_name(workload).expect("known workload");
    let (table, _) = compile_workload(&w);
    let outcome = run_one(&w, &table, machine, None);
    let mem_latency = machine.config(None).hier.latency.memory;
    StatsExport::new(
        workload,
        machine.name(),
        mem_latency,
        spear_cpu::RunExit::Halted,
        outcome.stats,
    )
    .to_json()
}

#[test]
fn stats_envelopes_match_pre_refactor_goldens() {
    let bless = std::env::var_os("GOLDEN_BLESS").is_some();
    if bless {
        std::fs::create_dir_all(golden_dir()).expect("create tests/golden");
    }
    let mut failures = Vec::new();
    for workload in WORKLOADS {
        for machine in MACHINES {
            let got = envelope(workload, machine);
            let path = golden_path(workload, machine);
            if bless {
                std::fs::write(&path, &got).expect("write golden");
                continue;
            }
            let want = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("missing golden {}: {e}", path.display()));
            if got != want {
                // Point at the first diverging line for a usable failure.
                let line = got
                    .lines()
                    .zip(want.lines())
                    .position(|(g, w)| g != w)
                    .map(|i| i + 1)
                    .unwrap_or(0);
                failures.push(format!(
                    "{workload} on {}: envelope differs from {} (first diff at line {line})",
                    machine.name(),
                    path.display()
                ));
            }
        }
    }
    assert!(
        failures.is_empty(),
        "golden stats envelopes diverged:\n  {}",
        failures.join("\n  ")
    );
}
