//! Acceptance test for SimPoint phase-clustered simulation: the
//! simpoint Figure-6 estimate — one weighted representative interval
//! per phase instead of every interval — must agree with the full-run
//! matrix (column means within 5% relative tolerance, the paper-scale
//! error bound recorded in EXPERIMENTS.md) while doing less cycle
//! simulation work, and its aggregate envelopes must be byte-identical
//! whether the campaign ran on one worker thread or four.

use spear_repro::campaign::{
    write_aggregate_envelopes, Campaign, CampaignSpec, MachinePoint, SampleSpec, SimpointSpec,
};
use spear_repro::cpu::CoreConfig;
use spear_repro::spear::experiments::{compile_all, fig6, fig6_simpoint};
use spear_workloads::by_name;
use std::time::Instant;

/// Three Figure-6 workloads spanning the paper's behavior classes:
/// strided field traversal, dependent pointer chasing, and scattered
/// read-modify-write updates.
fn trio() -> Vec<spear_workloads::Workload> {
    ["field", "pointer", "update"]
        .iter()
        .map(|n| by_name(n).unwrap())
        .collect()
}

#[test]
fn simpoint_fig6_matches_full_run_and_is_faster() {
    let ws = trio();

    // Full path: whole-program cycle simulation of every workload on
    // every Figure-6 machine. Compilation is hoisted out of the timed
    // section so the comparison is purely the cost simpoint cuts.
    let compiled = compile_all(&ws);
    let t0 = Instant::now();
    let full = fig6(&compiled);
    let full_elapsed = t0.elapsed();

    // SimPoint path: BBV collection, clustering into at most 3 phases,
    // warm checkpoints at the representative boundaries, one weighted
    // cell per phase. The timed section includes all of that — the
    // honest end-to-end cost of the phase-clustered estimate.
    let dir = std::env::temp_dir().join(format!("spear-accept-simpoint-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let t0 = Instant::now();
    let simpoint = fig6_simpoint(
        &ws,
        SampleSpec {
            interval_len: 25_000,
            stride: 1,
        },
        SimpointSpec { k: 3, seed: 42 },
        1,
        &dir,
    )
    .expect("simpoint campaign");
    let simpoint_elapsed = t0.elapsed();
    let _ = std::fs::remove_dir_all(&dir);

    eprintln!("full fig6 matrix:     {full_elapsed:?}");
    eprintln!("simpoint fig6 matrix: {simpoint_elapsed:?}");

    assert_eq!(simpoint.workloads, full.workloads);
    assert_eq!(simpoint.machines.len(), full.machines.len());

    // Column means (the paper's "on the average" numbers) within the 5%
    // bound stated in EXPERIMENTS.md.
    for c in 0..full.machines.len() {
        let f = full.mean_normalized(c);
        let s = simpoint.mean_normalized(c);
        let rel = (s - f).abs() / f;
        eprintln!(
            "col {} ({}): full {:.4}  simpoint {:.4}  rel err {:.2}%",
            c,
            full.machines[c].name(),
            f,
            s,
            rel * 100.0
        );
        assert!(
            rel <= 0.05,
            "column {c} mean off by {:.2}% (> 5%)",
            rel * 100.0
        );
    }

    // And per-cell IPC must also hold the bound, not just the means.
    for r in 0..full.workloads.len() {
        for c in 0..full.machines.len() {
            let rel = (simpoint.ipc(r, c) - full.ipc(r, c)).abs() / full.ipc(r, c);
            assert!(
                rel <= 0.05,
                "{} on {}: simpoint IPC {:.4} vs full {:.4} ({:.2}% > 5%)",
                full.workloads[r],
                full.machines[c].name(),
                simpoint.ipc(r, c),
                full.ipc(r, c),
                rel * 100.0
            );
        }
    }

    // The shortcut must actually be a shortcut.
    assert!(
        simpoint_elapsed < full_elapsed,
        "simpoint path must be measurably faster: simpoint {simpoint_elapsed:?} vs full {full_elapsed:?}"
    );
}

#[test]
fn simpoint_aggregates_are_byte_identical_across_thread_counts() {
    let spec = |threads| CampaignSpec {
        workloads: vec!["field".into(), "pointer".into()],
        points: vec![
            MachinePoint {
                machine: "superscalar".into(),
                mem_latency: 120,
                config: CoreConfig::baseline(),
            },
            MachinePoint {
                machine: "SPEAR-128".into(),
                mem_latency: 120,
                config: CoreConfig::spear(128),
            },
        ],
        frontends: Vec::new(),
        sample: SampleSpec {
            interval_len: 25_000,
            stride: 1,
        },
        threads,
        max_cells: None,
        window: None,
        simpoint: Some(SimpointSpec { k: 3, seed: 42 }),
    };
    let base = std::env::temp_dir().join(format!("spear-simpoint-det-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let envelopes = |threads: usize, tag: &str| -> Vec<(String, Vec<u8>)> {
        let dir = base.join(tag);
        let spec = spec(threads);
        let sp = spec.simpoint.map(|s| (s, spec.sample.interval_len));
        let summary = Campaign::new(&dir, spec).run(None).expect("campaign");
        let files = write_aggregate_envelopes(&dir, &summary.results, sp).expect("envelopes");
        let mut out: Vec<(String, Vec<u8>)> = files
            .iter()
            .map(|p| {
                (
                    p.file_name().unwrap().to_string_lossy().into_owned(),
                    std::fs::read(p).unwrap(),
                )
            })
            .collect();
        out.sort();
        out
    };
    let one = envelopes(1, "t1");
    let four = envelopes(4, "t4");
    let _ = std::fs::remove_dir_all(&base);

    assert_eq!(one.len(), four.len());
    assert!(!one.is_empty());
    for ((n1, b1), (n4, b4)) in one.iter().zip(&four) {
        assert_eq!(n1, n4);
        assert_eq!(b1, b4, "{n1} differs between --threads 1 and --threads 4");
    }
    // Every envelope of a simpoint campaign carries the provenance
    // block; it names the clustering that produced the blend.
    for (name, bytes) in &one {
        let text = String::from_utf8(bytes.clone()).unwrap();
        assert!(
            text.contains("\"simpoint\"") && text.contains("\"interval_len\": 25000"),
            "{name} lacks the simpoint provenance block"
        );
    }
}
