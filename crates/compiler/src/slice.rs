//! Hybrid backward slicing with region-based prefetching ranges (§4.2 and
//! module ③ of §4.1).
//!
//! The slicer is "hybrid" in the paper's sense: the slice is chased over
//! the *dynamic* dependence graph delivered by the profiler — so backward
//! chasing "only follows through the control-flow which truly affects the
//! cache miss instructions" (Figure 5) — while the *range* of the chase is
//! bounded by static loop structure: the innermost loop containing the
//! delinquent load, grown outward through the nesting forest while the
//! accumulated d-cycle stays below the criterion (the paper empirically
//! uses 120) and no function call is crossed.

use crate::cfg::Cfg;
use crate::dom::LoopForest;
use crate::profile::Profile;
use serde::{Deserialize, Serialize};
use spear_isa::pthread::{PThreadEntry, RegionInfo};
use spear_isa::{Program, Reg};
use std::collections::BTreeSet;

/// How the prefetching range (region) is chosen around a delinquent load.
///
/// The paper uses [`RegionPolicy::DcycleLimit`] and names "more algorithms
/// on the region selection" as future work — the other two policies are
/// that future work, swept by the ablation bench.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum RegionPolicy {
    /// Grow outward from the innermost loop while the accumulated d-cycle
    /// stays below `dcycle_limit` (§4.2 — the paper's policy).
    DcycleLimit,
    /// Always use just the innermost loop containing the d-load.
    InnermostOnly,
    /// Grow to the outermost enclosing loop that contains no call sites,
    /// ignoring d-cycles.
    OutermostCallFree,
}

/// Slicer knobs. Defaults reproduce the paper's settings where stated;
/// the rest are documented in DESIGN.md and swept by the ablation benches.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SlicerConfig {
    /// Region-selection algorithm (paper: d-cycle limited).
    pub region_policy: RegionPolicy,
    /// Minimum profiled misses for a load to be delinquent.
    pub dload_min_misses: u64,
    /// Minimum share of all profiled misses for a load to be delinquent.
    pub dload_miss_fraction: f64,
    /// At most this many delinquent loads get p-threads.
    pub max_dloads: usize,
    /// Dependence-edge frequency threshold relative to the hottest
    /// producer (the Figure 5 cold-path filter). 0 follows every edge
    /// (pure static slicing); 1 follows only the majority producer.
    pub edge_threshold: f64,
    /// The prefetching-range criterion on accumulated d-cycles (paper:
    /// 120, "empirically chosen").
    pub dcycle_limit: f64,
    /// Follow profiled store→load dependences into the slice.
    pub follow_mem_deps: bool,
    /// Hard cap on slice length (ablation; `None` = uncapped as in the
    /// paper, which is what lets fft's 1,129-instruction slice happen).
    pub slice_cap: Option<usize>,
}

impl Default for SlicerConfig {
    fn default() -> Self {
        SlicerConfig {
            region_policy: RegionPolicy::DcycleLimit,
            dload_min_misses: 64,
            dload_miss_fraction: 0.02,
            max_dloads: 16,
            edge_threshold: 0.25,
            dcycle_limit: 120.0,
            follow_mem_deps: true,
            slice_cap: None,
        }
    }
}

/// Why a candidate delinquent load did not get a p-thread.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SkipReason {
    /// The load is not inside any natural loop.
    NotInLoop,
    /// The backward slice came out empty (no dependence info).
    EmptySlice,
}

/// Per-candidate outcome, for the compile report.
#[derive(Clone, Debug)]
pub struct SliceOutcome {
    /// The candidate d-load.
    pub dload_pc: u32,
    /// Profiled misses at that load.
    pub misses: u64,
    /// The built entry, or why it was skipped.
    pub result: Result<PThreadEntry, SkipReason>,
}

/// Select delinquent loads from the profile: misses at least
/// `dload_min_misses` *and* at least `dload_miss_fraction` of all misses,
/// top `max_dloads` by miss count.
pub fn select_dloads(profile: &Profile, cfg: &SlicerConfig) -> Vec<(u32, u64)> {
    let floor = (profile.total_misses as f64 * cfg.dload_miss_fraction) as u64;
    profile
        .ranked_loads()
        .into_iter()
        .filter(|&(_, m)| m >= cfg.dload_min_misses && m >= floor)
        .take(cfg.max_dloads)
        .collect()
}

/// The region (set of PCs) and metadata chosen for a d-load.
struct Region {
    pcs: BTreeSet<u32>,
    info: RegionInfo,
}

/// Grow the prefetching range from the innermost loop outward (§4.2).
fn select_region(
    dload_pc: u32,
    cfg: &Cfg,
    forest: &LoopForest,
    profile: &Profile,
    scfg: &SlicerConfig,
) -> Option<Region> {
    let mut li = forest.innermost_at(cfg, dload_pc)?;
    let mut headers = Vec::new();
    let mut acc = profile.loops[li].dcycle();
    headers.push(cfg.blocks[forest.loops[li].header].start);
    // Extend outward per the configured policy; never extend across a
    // loop that contains a call site.
    let keep_growing = |acc: f64| match scfg.region_policy {
        RegionPolicy::DcycleLimit => acc < scfg.dcycle_limit,
        RegionPolicy::InnermostOnly => false,
        RegionPolicy::OutermostCallFree => true,
    };
    while keep_growing(acc) {
        let Some(parent) = forest.loops[li].parent else {
            break;
        };
        let parent_loop = &forest.loops[parent];
        let crosses_call = parent_loop
            .blocks
            .iter()
            .any(|&b| cfg.blocks[b].pcs().any(|pc| cfg.call_sites.contains(&pc)));
        if crosses_call {
            break;
        }
        li = parent;
        acc += profile.loops[li].dcycle();
        headers.push(cfg.blocks[forest.loops[li].header].start);
    }
    let pcs: BTreeSet<u32> = forest.loops[li]
        .blocks
        .iter()
        .flat_map(|&b| cfg.blocks[b].pcs())
        .collect();
    Some(Region {
        pcs,
        info: RegionInfo {
            loop_headers: headers,
            dcycle: acc,
        },
    })
}

/// Chase the backward slice of `dload_pc` over the profiled dynamic
/// dependence graph, restricted to `region`.
fn backward_slice(
    dload_pc: u32,
    region: &BTreeSet<u32>,
    program: &Program,
    profile: &Profile,
    scfg: &SlicerConfig,
) -> BTreeSet<u32> {
    let mut slice: BTreeSet<u32> = [dload_pc].into();
    let mut work = vec![dload_pc];
    let cap = scfg.slice_cap.unwrap_or(usize::MAX);
    while let Some(pc) = work.pop() {
        if slice.len() >= cap {
            break;
        }
        let inst = program.fetch(pc).expect("slice pc in program");
        for (slot, src) in inst.srcs().into_iter().enumerate() {
            let Some(src) = src else { continue };
            if src.is_zero() {
                continue;
            }
            for producer in profile.hot_producers(pc, slot as u8, scfg.edge_threshold) {
                if region.contains(&producer) && slice.insert(producer) {
                    work.push(producer);
                }
            }
        }
        if scfg.follow_mem_deps && inst.op.is_load() {
            for producer in profile.hot_mem_producers(pc, scfg.edge_threshold) {
                if region.contains(&producer) && slice.insert(producer) {
                    work.push(producer);
                }
            }
        }
    }
    slice
}

/// Compute the live-in registers of a slice as its *upward-exposed uses*:
/// walking the slice members in ascending PC (first-iteration extraction
/// order), any register read before a slice member has defined it must be
/// copied from the main thread at trigger time. This covers both
/// loop-invariant setup values (never defined in the slice) and
/// loop-carried values (defined by a slice member that the extraction
/// stream reaches only *after* the first use — e.g. an induction variable
/// updated at the bottom of the loop).
fn live_ins(slice: &BTreeSet<u32>, program: &Program) -> Vec<Reg> {
    let mut defined: BTreeSet<Reg> = BTreeSet::new();
    let mut regs: BTreeSet<Reg> = BTreeSet::new();
    for &pc in slice {
        let inst = program.fetch(pc).expect("slice pc in program");
        for src in inst.live_srcs() {
            if !defined.contains(&src) {
                regs.insert(src);
            }
        }
        if let Some(d) = inst.dst() {
            defined.insert(d);
        }
    }
    regs.into_iter().collect()
}

/// Build the p-thread for one delinquent load.
pub fn build_entry(
    dload_pc: u32,
    misses: u64,
    program: &Program,
    cfg: &Cfg,
    forest: &LoopForest,
    profile: &Profile,
    scfg: &SlicerConfig,
) -> SliceOutcome {
    let Some(region) = select_region(dload_pc, cfg, forest, profile, scfg) else {
        return SliceOutcome {
            dload_pc,
            misses,
            result: Err(SkipReason::NotInLoop),
        };
    };
    let slice = backward_slice(dload_pc, &region.pcs, program, profile, scfg);
    if slice.is_empty() {
        return SliceOutcome {
            dload_pc,
            misses,
            result: Err(SkipReason::EmptySlice),
        };
    }
    let live = live_ins(&slice, program);
    let entry = PThreadEntry {
        dload_pc,
        members: slice.into_iter().collect(),
        live_ins: live,
        region: region.info,
        profiled_misses: misses,
    };
    SliceOutcome {
        dload_pc,
        misses,
        result: Ok(entry),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dom::Dominators;
    use crate::profile::profile;
    use spear_isa::asm::Asm;
    use spear_isa::reg::*;
    use spear_mem::HierConfig;

    struct Analysis {
        program: Program,
        cfg: Cfg,
        forest: LoopForest,
        profile: Profile,
    }

    fn analyze(program: Program) -> Analysis {
        let cfg = Cfg::build(&program);
        let dom = Dominators::compute(&cfg);
        let forest = LoopForest::compute(&cfg, &dom);
        let profile = profile(&program, &cfg, &forest, HierConfig::paper(), 10_000_000).unwrap();
        Analysis {
            program,
            cfg,
            forest,
            profile,
        }
    }

    /// The indexed-gather kernel: slice should be the index load, the
    /// address arithmetic, the d-load, and the cursor increment — and
    /// nothing from the compute body.
    fn gather(n: i64) -> Program {
        let mut a = Asm::new();
        let idx: Vec<u64> = (0..n as u64).map(|i| (i * 7919) % 4096).collect();
        let ib = a.alloc_u64("idx", &idx);
        let xb = a.reserve("x", 4096 * 4096);
        a.li(R1, ib as i64);
        a.li(R2, xb as i64);
        a.li(R3, n);
        a.label("loop");
        a.ld(R5, R1, 0); // pc+0 slice: index
        a.slli(R6, R5, 12); // pc+1 slice (4 KiB stride → always miss)
        a.add(R6, R2, R6); // pc+2 slice
        a.ld(R7, R6, 0); // pc+3 THE d-load
        a.add(R4, R4, R7); // pc+4 body
        a.mul(R9, R4, R4); // pc+5 body
        a.addi(R1, R1, 8); // pc+6 slice: cursor
        a.addi(R3, R3, -1); // pc+7 loop ctrl
        a.bne(R3, R0, "loop"); // pc+8
        a.halt();
        a.finish().unwrap()
    }

    #[test]
    fn selects_the_gather_dload() {
        let an = analyze(gather(500));
        let scfg = SlicerConfig::default();
        let dloads = select_dloads(&an.profile, &scfg);
        let loop_pc = *an.program.labels.get("loop").unwrap();
        assert_eq!(
            dloads[0].0,
            loop_pc + 3,
            "the gather load is the top delinquent load: {dloads:?}"
        );
        assert!(dloads[0].1 >= 450, "nearly every access misses");
    }

    #[test]
    fn slice_is_the_address_chain_not_the_body() {
        let an = analyze(gather(500));
        let scfg = SlicerConfig::default();
        let loop_pc = *an.program.labels.get("loop").unwrap();
        let out = build_entry(
            loop_pc + 3,
            1000,
            &an.program,
            &an.cfg,
            &an.forest,
            &an.profile,
            &scfg,
        );
        let entry = out.result.expect("slice built");
        assert_eq!(
            entry.members,
            vec![loop_pc, loop_pc + 1, loop_pc + 2, loop_pc + 3, loop_pc + 6],
            "slice = index load, shift, add, d-load, cursor increment"
        );
        // Live-ins: cursor (fed once by li outside the loop) and base r2.
        assert!(entry.live_ins.contains(&R1), "{:?}", entry.live_ins);
        assert!(entry.live_ins.contains(&R2), "{:?}", entry.live_ins);
        assert!(!entry.live_ins.contains(&R4), "body acc is not a live-in");
    }

    #[test]
    fn region_metadata_populated() {
        let an = analyze(gather(500));
        let scfg = SlicerConfig::default();
        let loop_pc = *an.program.labels.get("loop").unwrap();
        let out = build_entry(
            loop_pc + 3,
            1000,
            &an.program,
            &an.cfg,
            &an.forest,
            &an.profile,
            &scfg,
        );
        let entry = out.result.unwrap();
        assert_eq!(entry.region.loop_headers.len(), 1, "single innermost loop");
        assert!(entry.region.dcycle > 100.0, "misses dominate the d-cycle");
    }

    #[test]
    fn dload_outside_loops_is_skipped() {
        let mut a = Asm::new();
        let big = a.reserve("big", 1 << 20);
        a.li(R1, big as i64);
        a.ld(R2, R1, 0);
        a.halt();
        let an = analyze(a.finish().unwrap());
        let scfg = SlicerConfig::default();
        let out = build_entry(1, 10, &an.program, &an.cfg, &an.forest, &an.profile, &scfg);
        assert_eq!(out.result.unwrap_err(), SkipReason::NotInLoop);
    }

    #[test]
    fn slice_cap_truncates() {
        let an = analyze(gather(500));
        let scfg = SlicerConfig {
            slice_cap: Some(2),
            ..Default::default()
        };
        let loop_pc = *an.program.labels.get("loop").unwrap();
        let out = build_entry(
            loop_pc + 3,
            1000,
            &an.program,
            &an.cfg,
            &an.forest,
            &an.profile,
            &scfg,
        );
        let entry = out.result.unwrap();
        assert!(entry.members.len() <= 3, "{:?}", entry.members);
        assert!(entry.members.contains(&(loop_pc + 3)), "d-load always kept");
    }

    #[test]
    fn min_miss_threshold_filters_cache_friendly_loads() {
        // Sequential walk: ~1 miss per 4 loads, total misses low.
        let mut a = Asm::new();
        let xs: Vec<u64> = (0..256).collect();
        let base = a.alloc_u64("xs", &xs);
        a.li(R1, base as i64);
        a.li(R2, 256);
        a.label("loop");
        a.ld(R3, R1, 0);
        a.addi(R1, R1, 8);
        a.addi(R2, R2, -1);
        a.bne(R2, R0, "loop");
        a.halt();
        let an = analyze(a.finish().unwrap());
        let scfg = SlicerConfig {
            dload_min_misses: 100,
            ..Default::default()
        };
        assert!(select_dloads(&an.profile, &scfg).is_empty());
    }

    #[test]
    fn region_policies_differ_on_nested_loops() {
        // Nested loops with the d-load in the inner one: InnermostOnly
        // keeps one loop; OutermostCallFree grows to both.
        let mut a = Asm::new();
        let big = a.reserve("big", 1 << 22);
        a.li(R2, 30); // outer
        a.label("outer");
        a.li(R1, big as i64);
        a.li(R3, 40); // inner
        a.label("inner");
        a.ld(R4, R1, 0);
        a.add(R5, R5, R4);
        a.addi(R1, R1, 4096);
        a.addi(R3, R3, -1);
        a.bne(R3, R0, "inner");
        a.addi(R2, R2, -1);
        a.bne(R2, R0, "outer");
        a.halt();
        let an = analyze(a.finish().unwrap());
        let dload = *an.program.labels.get("inner").unwrap();
        let entry_for = |policy: RegionPolicy| {
            let scfg = SlicerConfig {
                region_policy: policy,
                ..Default::default()
            };
            build_entry(
                dload,
                1000,
                &an.program,
                &an.cfg,
                &an.forest,
                &an.profile,
                &scfg,
            )
            .result
            .expect("slice built")
        };
        let inner = entry_for(RegionPolicy::InnermostOnly);
        assert_eq!(inner.region.loop_headers.len(), 1);
        let outer = entry_for(RegionPolicy::OutermostCallFree);
        assert_eq!(outer.region.loop_headers.len(), 2);
        // The d-cycle-limited default lands between the two extremes and
        // respects the accumulated-d-cycle bookkeeping.
        let dcl = entry_for(RegionPolicy::DcycleLimit);
        assert!((1..=2).contains(&dcl.region.loop_headers.len()));
        assert!(dcl.region.dcycle >= inner.region.dcycle);
    }

    /// The Figure 5 scenario: two producers on different control-flow
    /// paths; the cold path's producer must be excluded from the slice.
    #[test]
    fn cold_path_producer_excluded() {
        let mut a = Asm::new();
        let big = a.reserve("big", 1 << 22);
        a.li(R1, big as i64);
        a.li(R2, 400);
        a.li(R7, 0);
        a.label("loop");
        a.andi(R5, R2, 127); // hot condition: nonzero 127 of 128 times
        a.bne(R5, R0, "hot");
        a.addi(R6, R7, 8) /* cold producer of r6 */;
        a.j("use");
        a.label("hot");
        a.addi(R6, R7, 16); // hot producer of r6
        a.label("use");
        a.add(R8, R1, R6);
        a.ld(R9, R8, 0); // d-load (base advances 4 KiB per iter)
        a.addi(R7, R7, 4096);
        a.addi(R2, R2, -1);
        a.bne(R2, R0, "loop");
        a.halt();
        let p = a.finish().unwrap();
        let hot_pc = *p.labels.get("hot").unwrap();
        let cold_pc = hot_pc - 2; // the addi on the not-taken arm
        let use_pc = *p.labels.get("use").unwrap();
        let an = analyze(p);
        let scfg = SlicerConfig::default();
        let out = build_entry(
            use_pc + 1,
            400,
            &an.program,
            &an.cfg,
            &an.forest,
            &an.profile,
            &scfg,
        );
        let entry = out.result.unwrap();
        assert!(
            entry.members.contains(&hot_pc),
            "hot producer in slice: {:?}",
            entry.members
        );
        assert!(
            !entry.members.contains(&cold_pc),
            "cold producer excluded (Figure 5): {:?}",
            entry.members
        );
    }
}
