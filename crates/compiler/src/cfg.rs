//! Control-flow graph construction (module ① of §4.1).
//!
//! The CFG drawing tool partitions the binary into basic blocks, records
//! edges from the targets of conditional/unconditional jumps, and identifies
//! procedures by the targets of `jal` call instructions — exactly the
//! binary-level analysis the paper's tool performs on PISA executables.

use spear_isa::{OpShape, Program};
use std::collections::{BTreeMap, BTreeSet};

/// Identifier of a basic block (index into [`Cfg::blocks`]).
pub type BlockId = usize;

/// A basic block: the half-open PC range `[start, end)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BasicBlock {
    /// First instruction PC.
    pub start: u32,
    /// One past the last instruction PC.
    pub end: u32,
    /// Successor blocks.
    pub succs: Vec<BlockId>,
    /// Predecessor blocks.
    pub preds: Vec<BlockId>,
}

impl BasicBlock {
    /// Number of instructions.
    pub fn len(&self) -> usize {
        (self.end - self.start) as usize
    }

    /// True for degenerate blocks.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Iterate the PCs in the block.
    pub fn pcs(&self) -> impl Iterator<Item = u32> {
        self.start..self.end
    }
}

/// The control-flow graph of a program.
#[derive(Clone, Debug)]
pub struct Cfg {
    /// Basic blocks in ascending PC order.
    pub blocks: Vec<BasicBlock>,
    /// PC → owning block.
    block_of_pc: Vec<BlockId>,
    /// Entry block.
    pub entry: BlockId,
    /// PCs that are `jal`/`jalr` call sites.
    pub call_sites: BTreeSet<u32>,
    /// Procedure entry PCs (targets of `jal`, plus the program entry).
    pub proc_entries: BTreeSet<u32>,
}

impl Cfg {
    /// Build the CFG of `program`.
    ///
    /// `jr`/`jalr` indirect targets are statically unknown: an indirect
    /// jump ends its block with no intra-procedural successors (they are
    /// returns under the workload calling convention, and the SPEAR
    /// region selection never crosses calls anyway — §4.2).
    pub fn build(program: &Program) -> Cfg {
        let n = program.len();
        assert!(n > 0, "empty program has no CFG");

        // Leaders: entry, every control-transfer target, every
        // fall-through after a control transfer.
        let mut leaders: BTreeSet<u32> = BTreeSet::new();
        leaders.insert(program.entry);
        leaders.insert(0);
        let mut call_sites = BTreeSet::new();
        let mut proc_entries = BTreeSet::new();
        proc_entries.insert(program.entry);
        for (pc, inst) in program.insts.iter().enumerate() {
            let pc = pc as u32;
            match inst.op.shape() {
                OpShape::Branch => {
                    leaders.insert(inst.imm as u32);
                    leaders.insert(pc + 1);
                }
                OpShape::Jump => {
                    leaders.insert(inst.imm as u32);
                    leaders.insert(pc + 1);
                }
                OpShape::JumpLink => {
                    leaders.insert(inst.imm as u32);
                    leaders.insert(pc + 1);
                    call_sites.insert(pc);
                    proc_entries.insert(inst.imm as u32);
                }
                OpShape::JumpReg | OpShape::JumpLinkReg => {
                    leaders.insert(pc + 1);
                    if inst.op.shape() == OpShape::JumpLinkReg {
                        call_sites.insert(pc);
                    }
                }
                _ => {}
            }
            if inst.op == spear_isa::Opcode::Halt {
                leaders.insert(pc + 1);
            }
        }
        leaders.retain(|&l| (l as usize) < n);

        // Blocks between consecutive leaders.
        let leader_list: Vec<u32> = leaders.iter().copied().collect();
        let mut blocks: Vec<BasicBlock> = Vec::with_capacity(leader_list.len());
        let mut block_start: BTreeMap<u32, BlockId> = BTreeMap::new();
        for (i, &start) in leader_list.iter().enumerate() {
            let end = leader_list.get(i + 1).copied().unwrap_or(n as u32);
            block_start.insert(start, i);
            blocks.push(BasicBlock {
                start,
                end,
                succs: Vec::new(),
                preds: Vec::new(),
            });
        }
        let mut block_of_pc = vec![0; n];
        for (id, b) in blocks.iter().enumerate() {
            for pc in b.pcs() {
                block_of_pc[pc as usize] = id;
            }
        }

        // Edges from each block's terminator.
        let mut edges: Vec<(BlockId, BlockId)> = Vec::new();
        for (id, b) in blocks.iter().enumerate() {
            if b.is_empty() {
                continue;
            }
            let last_pc = b.end - 1;
            let inst = &program.insts[last_pc as usize];
            let add = |target: u32, edges: &mut Vec<(BlockId, BlockId)>| {
                if let Some(&t) = block_start.get(&target) {
                    edges.push((id, t));
                }
            };
            match inst.op.shape() {
                OpShape::Branch => {
                    add(inst.imm as u32, &mut edges);
                    add(last_pc + 1, &mut edges);
                }
                OpShape::Jump => add(inst.imm as u32, &mut edges),
                OpShape::JumpLink => {
                    // Calls: edge to the callee and a return edge to the
                    // fall-through (interprocedurally conservative but
                    // keeps loop nesting intact around call sites).
                    add(inst.imm as u32, &mut edges);
                    add(last_pc + 1, &mut edges);
                }
                OpShape::JumpReg => { /* return — no static successor */ }
                OpShape::JumpLinkReg => add(last_pc + 1, &mut edges),
                _ => {
                    if inst.op == spear_isa::Opcode::Halt {
                        // No successor.
                    } else {
                        add(last_pc + 1, &mut edges);
                    }
                }
            }
        }
        for (from, to) in edges {
            blocks[from].succs.push(to);
            blocks[to].preds.push(from);
        }
        for b in &mut blocks {
            b.succs.sort_unstable();
            b.succs.dedup();
            b.preds.sort_unstable();
            b.preds.dedup();
        }

        let entry = block_of_pc[program.entry as usize];
        Cfg {
            blocks,
            block_of_pc,
            entry,
            call_sites,
            proc_entries,
        }
    }

    /// Block containing `pc`.
    pub fn block_of(&self, pc: u32) -> BlockId {
        self.block_of_pc[pc as usize]
    }

    /// Number of blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// True if the graph is empty.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spear_isa::asm::Asm;
    use spear_isa::reg::*;

    /// if/else diamond inside a loop.
    fn diamond() -> Program {
        let mut a = Asm::new();
        a.li(R1, 10); // B0
        a.label("loop"); // B1
        a.andi(R2, R1, 1);
        a.beq(R2, R0, "even");
        a.addi(R3, R3, 1); // B2 (odd)
        a.j("join");
        a.label("even"); // B3
        a.addi(R4, R4, 1);
        a.label("join"); // B4
        a.addi(R1, R1, -1);
        a.bne(R1, R0, "loop");
        a.halt(); // B5
        a.finish().unwrap()
    }

    #[test]
    fn diamond_block_structure() {
        let p = diamond();
        let cfg = Cfg::build(&p);
        assert_eq!(cfg.len(), 6, "{:#?}", cfg.blocks);
        // Loop header (B1) has two successors (odd arm, even arm).
        let header = cfg.block_of(*p.labels.get("loop").unwrap());
        assert_eq!(cfg.blocks[header].succs.len(), 2);
        // The join block jumps back to the header or exits.
        let join = cfg.block_of(*p.labels.get("join").unwrap());
        assert!(cfg.blocks[join].succs.contains(&header));
        assert_eq!(cfg.blocks[join].succs.len(), 2);
        // Header's preds: entry block and join.
        assert!(cfg.blocks[header].preds.contains(&join));
    }

    #[test]
    fn every_pc_belongs_to_exactly_one_block() {
        let p = diamond();
        let cfg = Cfg::build(&p);
        for pc in 0..p.len() as u32 {
            let b = cfg.block_of(pc);
            assert!(cfg.blocks[b].pcs().any(|x| x == pc));
        }
        let total: usize = cfg.blocks.iter().map(|b| b.len()).sum();
        assert_eq!(total, p.len());
    }

    #[test]
    fn edges_are_symmetric() {
        let p = diamond();
        let cfg = Cfg::build(&p);
        for (id, b) in cfg.blocks.iter().enumerate() {
            for &s in &b.succs {
                assert!(cfg.blocks[s].preds.contains(&id));
            }
            for &pr in &b.preds {
                assert!(cfg.blocks[pr].succs.contains(&id));
            }
        }
    }

    #[test]
    fn calls_are_recorded() {
        let mut a = Asm::new();
        a.jal(R31, "fn");
        a.halt();
        a.label("fn");
        a.addi(R1, R1, 1);
        a.jr(R31);
        let p = a.finish().unwrap();
        let cfg = Cfg::build(&p);
        assert!(cfg.call_sites.contains(&0));
        assert!(cfg.proc_entries.contains(p.labels.get("fn").unwrap()));
        // The return (`jr`) block has no successors.
        let ret_block = cfg.block_of(3);
        assert!(cfg.blocks[ret_block].succs.is_empty());
    }

    #[test]
    fn straightline_single_block_until_halt() {
        let mut a = Asm::new();
        a.li(R1, 1);
        a.addi(R1, R1, 1);
        a.halt();
        let p = a.finish().unwrap();
        let cfg = Cfg::build(&p);
        assert_eq!(cfg.len(), 1);
        assert!(cfg.blocks[0].succs.is_empty());
    }
}
