//! The complete SPEAR post-compiler pipeline (Figure 4): CFG drawing tool
//! (①) → profiling tool (②) → program slicing (③) → attaching tool (④).
//!
//! Input: a plain program binary. Output: the SPEAR executable — the
//! unmodified program plus the p-thread table the hardware loads into its
//! PT at launch.

use crate::cfg::Cfg;
use crate::dom::{Dominators, LoopForest};
use crate::profile::{profile, Profile};
use crate::slice::{build_entry, select_dloads, SkipReason, SlicerConfig};
use spear_exec::ExecError;
use spear_isa::pthread::PThreadTable;
use spear_isa::{Program, SpearBinary};
use spear_mem::HierConfig;

/// Compiler configuration.
#[derive(Clone, Debug)]
pub struct CompilerConfig {
    /// Slicer knobs (§4.2).
    pub slicer: SlicerConfig,
    /// Cache model used while profiling (normally the Table 2 hierarchy).
    pub profile_hier: HierConfig,
    /// Profiling instruction budget.
    pub profile_max_insts: u64,
}

impl Default for CompilerConfig {
    fn default() -> Self {
        CompilerConfig {
            slicer: SlicerConfig::default(),
            profile_hier: HierConfig::paper(),
            profile_max_insts: 50_000_000,
        }
    }
}

/// Summary of one constructed p-thread, for reports.
#[derive(Clone, Debug)]
pub struct EntrySummary {
    /// The delinquent load.
    pub dload_pc: u32,
    /// Slice length in instructions.
    pub slice_len: usize,
    /// Number of live-in registers.
    pub live_ins: usize,
    /// Accumulated d-cycle of the chosen region.
    pub dcycle: f64,
    /// Loops included in the region (innermost first).
    pub region_loops: usize,
    /// Profiled misses at the d-load.
    pub misses: u64,
}

/// What the compiler did, for diagnostics and the evaluation tables.
#[derive(Clone, Debug, Default)]
pub struct CompileReport {
    /// Instructions profiled.
    pub profiled_insts: u64,
    /// Total L1D misses seen while profiling.
    pub total_misses: u64,
    /// Candidate d-loads (pc, misses) that passed selection.
    pub candidates: Vec<(u32, u64)>,
    /// Constructed p-threads.
    pub built: Vec<EntrySummary>,
    /// Candidates skipped, with reasons.
    pub skipped: Vec<(u32, SkipReason)>,
}

impl CompileReport {
    /// Total p-thread instructions across all entries.
    pub fn total_slice_len(&self) -> usize {
        self.built.iter().map(|e| e.slice_len).sum()
    }
}

/// Compilation errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// The input program failed validation.
    BadProgram(String),
    /// The profiling run crashed (workload bug).
    ProfileFailed(ExecError),
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::BadProgram(e) => write!(f, "invalid program: {e}"),
            CompileError::ProfileFailed(e) => write!(f, "profiling failed: {e}"),
        }
    }
}

impl std::error::Error for CompileError {}

/// The SPEAR compiler.
pub struct SpearCompiler {
    cfg: CompilerConfig,
}

impl SpearCompiler {
    /// A compiler with the paper's default configuration.
    pub fn new(cfg: CompilerConfig) -> SpearCompiler {
        SpearCompiler { cfg }
    }

    /// Run all four modules over `program` and return the SPEAR binary
    /// plus a report.
    ///
    /// `program` should be built with the *profiling* input data set; the
    /// returned binary's program is the one passed in, so callers that
    /// evaluate with a different input rebuild the program with the
    /// evaluation input and reuse the table via
    /// [`SpearCompiler::attach`] — PCs are identical because only the data
    /// image differs.
    pub fn compile(&self, program: &Program) -> Result<(SpearBinary, CompileReport), CompileError> {
        program
            .validate()
            .map_err(|e| CompileError::BadProgram(e.to_string()))?;

        // ① CFG drawing tool.
        let cfg = Cfg::build(program);
        let dom = Dominators::compute(&cfg);
        let forest = LoopForest::compute(&cfg, &dom);

        // ② Profiling tool.
        let prof: Profile = profile(
            program,
            &cfg,
            &forest,
            self.cfg.profile_hier,
            self.cfg.profile_max_insts,
        )
        .map_err(CompileError::ProfileFailed)?;

        // ③ Program slicing.
        let mut report = CompileReport {
            profiled_insts: prof.insts,
            total_misses: prof.total_misses,
            candidates: select_dloads(&prof, &self.cfg.slicer),
            ..Default::default()
        };
        let mut entries = Vec::new();
        for &(dload_pc, misses) in &report.candidates {
            let out = build_entry(
                dload_pc,
                misses,
                program,
                &cfg,
                &forest,
                &prof,
                &self.cfg.slicer,
            );
            match out.result {
                Ok(entry) => {
                    report.built.push(EntrySummary {
                        dload_pc,
                        slice_len: entry.members.len(),
                        live_ins: entry.live_ins.len(),
                        dcycle: entry.region.dcycle,
                        region_loops: entry.region.loop_headers.len(),
                        misses,
                    });
                    entries.push(entry);
                }
                Err(reason) => report.skipped.push((dload_pc, reason)),
            }
        }
        entries.sort_by_key(|e| e.dload_pc);

        // ④ Attaching tool.
        let binary = Self::attach(program.clone(), PThreadTable { entries });
        binary.validate().map_err(CompileError::BadProgram)?;
        Ok((binary, report))
    }

    /// Module ④ standalone: attach a p-thread table to a program (used to
    /// re-bind a profiled table onto the evaluation-input program image).
    pub fn attach(program: Program, table: PThreadTable) -> SpearBinary {
        SpearBinary { program, table }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spear_isa::asm::Asm;
    use spear_isa::reg::*;

    fn gather(n: i64, seed: u64) -> Program {
        let mut a = Asm::new();
        let idx: Vec<u64> = (0..n as u64)
            .map(|i| (i.wrapping_mul(7919) ^ seed) % 4096)
            .collect();
        let ib = a.alloc_u64("idx", &idx);
        let xb = a.reserve("x", 4096 * 4096);
        a.li(R1, ib as i64);
        a.li(R2, xb as i64);
        a.li(R3, n);
        a.label("loop");
        a.ld(R5, R1, 0);
        a.slli(R6, R5, 12);
        a.add(R6, R2, R6);
        a.ld(R7, R6, 0);
        a.add(R4, R4, R7);
        a.addi(R1, R1, 8);
        a.addi(R3, R3, -1);
        a.bne(R3, R0, "loop");
        a.halt();
        a.finish().unwrap()
    }

    #[test]
    fn end_to_end_compile_builds_a_valid_binary() {
        let p = gather(500, 17);
        let (binary, report) = SpearCompiler::new(CompilerConfig::default())
            .compile(&p)
            .unwrap();
        binary.validate().unwrap();
        assert!(!report.built.is_empty(), "{report:#?}");
        let loop_pc = *p.labels.get("loop").unwrap();
        let entry = binary
            .table
            .entry_for(loop_pc + 3)
            .expect("the gather d-load has a p-thread");
        assert!(entry.members.len() >= 4);
        assert!(!entry.live_ins.is_empty());
    }

    #[test]
    fn attach_rebinds_table_to_new_input() {
        // Profile with one input, attach the table to a program built
        // with a different input — the paper's methodology.
        let p_profile = gather(500, 17);
        let (binary, _) = SpearCompiler::new(CompilerConfig::default())
            .compile(&p_profile)
            .unwrap();
        let p_eval = gather(500, 9999);
        let rebound = SpearCompiler::attach(p_eval, binary.table.clone());
        rebound.validate().unwrap();
        assert_eq!(rebound.table, binary.table);
    }

    #[test]
    fn cache_friendly_program_gets_no_pthreads() {
        let mut a = Asm::new();
        let xs: Vec<u64> = (0..128).collect();
        let base = a.alloc_u64("xs", &xs);
        a.li(R1, base as i64);
        a.li(R2, 128);
        a.label("loop");
        a.ld(R3, R1, 0);
        a.addi(R1, R1, 8);
        a.addi(R2, R2, -1);
        a.bne(R2, R0, "loop");
        a.halt();
        let p = a.finish().unwrap();
        let (binary, report) = SpearCompiler::new(CompilerConfig::default())
            .compile(&p)
            .unwrap();
        assert!(binary.table.is_empty(), "{report:#?}");
    }

    #[test]
    fn report_counts_are_consistent() {
        let p = gather(500, 3);
        let (_, report) = SpearCompiler::new(CompilerConfig::default())
            .compile(&p)
            .unwrap();
        assert_eq!(
            report.candidates.len(),
            report.built.len() + report.skipped.len()
        );
        assert!(report.profiled_insts > 0);
        assert!(report.total_misses > 0);
        assert_eq!(
            report.total_slice_len(),
            report.built.iter().map(|e| e.slice_len).sum::<usize>()
        );
    }
}
