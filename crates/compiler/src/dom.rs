//! Dominators and natural-loop detection.
//!
//! Loop structure drives the region-based prefetching range of §4.2: the
//! base region of a p-thread is the innermost loop containing the
//! delinquent load, grown outward through the loop-nesting forest until the
//! accumulated d-cycle reaches the criterion.

use crate::cfg::{BlockId, Cfg};
use std::collections::BTreeSet;

/// Immediate-dominator tree, computed with the iterative
/// Cooper–Harvey–Kennedy algorithm.
#[derive(Clone, Debug)]
pub struct Dominators {
    /// `idom[b]` — immediate dominator of `b`; the entry is its own idom.
    /// Unreachable blocks have `None`.
    pub idom: Vec<Option<BlockId>>,
    /// Blocks in reverse postorder.
    pub rpo: Vec<BlockId>,
}

impl Dominators {
    /// Compute dominators for `cfg`.
    pub fn compute(cfg: &Cfg) -> Dominators {
        let n = cfg.len();
        // Postorder DFS from the entry.
        let mut post: Vec<BlockId> = Vec::with_capacity(n);
        let mut visited = vec![false; n];
        // Iterative DFS with an explicit stack of (block, next-succ-index).
        let mut stack: Vec<(BlockId, usize)> = vec![(cfg.entry, 0)];
        visited[cfg.entry] = true;
        while let Some(&mut (b, ref mut i)) = stack.last_mut() {
            if *i < cfg.blocks[b].succs.len() {
                let s = cfg.blocks[b].succs[*i];
                *i += 1;
                if !visited[s] {
                    visited[s] = true;
                    stack.push((s, 0));
                }
            } else {
                post.push(b);
                stack.pop();
            }
        }
        let rpo: Vec<BlockId> = post.iter().rev().copied().collect();
        let mut rpo_num = vec![usize::MAX; n];
        for (i, &b) in rpo.iter().enumerate() {
            rpo_num[b] = i;
        }

        let mut idom: Vec<Option<BlockId>> = vec![None; n];
        idom[cfg.entry] = Some(cfg.entry);
        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                let mut new_idom: Option<BlockId> = None;
                for &p in &cfg.blocks[b].preds {
                    if idom[p].is_none() {
                        continue; // unreachable or not yet processed
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, &rpo_num, p, cur),
                    });
                }
                if new_idom.is_some() && idom[b] != new_idom {
                    idom[b] = new_idom;
                    changed = true;
                }
            }
        }
        Dominators { idom, rpo }
    }

    /// Does `a` dominate `b`? (Reflexive.)
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.idom[cur] {
                Some(d) if d != cur => cur = d,
                _ => return false,
            }
        }
    }
}

fn intersect(
    idom: &[Option<BlockId>],
    rpo_num: &[usize],
    mut a: BlockId,
    mut b: BlockId,
) -> BlockId {
    while a != b {
        while rpo_num[a] > rpo_num[b] {
            a = idom[a].expect("processed block has idom");
        }
        while rpo_num[b] > rpo_num[a] {
            b = idom[b].expect("processed block has idom");
        }
    }
    a
}

/// One natural loop.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Loop {
    /// Header block.
    pub header: BlockId,
    /// All blocks in the loop body (header included).
    pub blocks: BTreeSet<BlockId>,
    /// Index of the innermost enclosing loop, if any.
    pub parent: Option<usize>,
    /// Nesting depth (outermost = 0).
    pub depth: usize,
}

/// The loop-nesting forest of a CFG.
#[derive(Clone, Debug)]
pub struct LoopForest {
    /// All loops, outer loops before inner (sorted by body size,
    /// descending).
    pub loops: Vec<Loop>,
    /// Innermost loop containing each block, if any.
    pub innermost: Vec<Option<usize>>,
}

impl LoopForest {
    /// Find all natural loops (back edge `t → h` with `h` dominating `t`),
    /// merging loops that share a header.
    pub fn compute(cfg: &Cfg, dom: &Dominators) -> LoopForest {
        // Collect loop bodies per header.
        let mut bodies: Vec<(BlockId, BTreeSet<BlockId>)> = Vec::new();
        for (t, b) in cfg.blocks.iter().enumerate() {
            for &h in &b.succs {
                if dom.idom[t].is_some() && dom.dominates(h, t) {
                    // Natural loop of back edge t → h: h plus everything
                    // reaching t without passing through h.
                    let mut body: BTreeSet<BlockId> = [h, t].into();
                    let mut work = vec![t];
                    while let Some(x) = work.pop() {
                        if x == h {
                            continue;
                        }
                        for &p in &cfg.blocks[x].preds {
                            if body.insert(p) {
                                work.push(p);
                            }
                        }
                    }
                    if let Some(existing) = bodies.iter_mut().find(|(hh, _)| *hh == h) {
                        existing.1.extend(body);
                    } else {
                        bodies.push((h, body));
                    }
                }
            }
        }
        // Sort outermost (largest) first so parents precede children.
        bodies.sort_by(|a, b| b.1.len().cmp(&a.1.len()).then(a.0.cmp(&b.0)));
        let mut loops: Vec<Loop> = bodies
            .into_iter()
            .map(|(header, blocks)| Loop {
                header,
                blocks,
                parent: None,
                depth: 0,
            })
            .collect();
        // Parent: the smallest strictly-containing loop.
        for i in 0..loops.len() {
            let mut best: Option<usize> = None;
            for j in 0..loops.len() {
                if i == j {
                    continue;
                }
                if loops[j].blocks.len() > loops[i].blocks.len()
                    && loops[i].blocks.is_subset(&loops[j].blocks)
                {
                    best = match best {
                        None => Some(j),
                        Some(b) if loops[j].blocks.len() < loops[b].blocks.len() => Some(j),
                        Some(b) => Some(b),
                    };
                }
            }
            loops[i].parent = best;
        }
        for i in 0..loops.len() {
            let mut d = 0;
            let mut cur = loops[i].parent;
            while let Some(p) = cur {
                d += 1;
                cur = loops[p].parent;
            }
            loops[i].depth = d;
        }
        // Innermost loop per block: deepest loop containing it.
        let mut innermost: Vec<Option<usize>> = vec![None; cfg.len()];
        for (li, l) in loops.iter().enumerate() {
            for &b in &l.blocks {
                innermost[b] = match innermost[b] {
                    None => Some(li),
                    Some(cur) if l.depth > loops[cur].depth => Some(li),
                    Some(cur) => Some(cur),
                };
            }
        }
        LoopForest { loops, innermost }
    }

    /// Innermost loop containing the block of `pc` under `cfg`.
    pub fn innermost_at(&self, cfg: &Cfg, pc: u32) -> Option<usize> {
        self.innermost[cfg.block_of(pc)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spear_isa::asm::Asm;
    use spear_isa::reg::*;
    use spear_isa::Program;

    fn nested_loops() -> Program {
        let mut a = Asm::new();
        a.li(R1, 10); // outer counter
        a.label("outer");
        a.li(R2, 20); // inner counter
        a.label("inner");
        a.addi(R3, R3, 1);
        a.addi(R2, R2, -1);
        a.bne(R2, R0, "inner");
        a.addi(R1, R1, -1);
        a.bne(R1, R0, "outer");
        a.halt();
        a.finish().unwrap()
    }

    #[test]
    fn entry_dominates_everything_reachable() {
        let p = nested_loops();
        let cfg = Cfg::build(&p);
        let dom = Dominators::compute(&cfg);
        for b in 0..cfg.len() {
            if dom.idom[b].is_some() {
                assert!(dom.dominates(cfg.entry, b));
            }
        }
    }

    #[test]
    fn finds_two_nested_loops() {
        let p = nested_loops();
        let cfg = Cfg::build(&p);
        let dom = Dominators::compute(&cfg);
        let forest = LoopForest::compute(&cfg, &dom);
        assert_eq!(forest.loops.len(), 2, "{:#?}", forest.loops);
        let inner = forest
            .loops
            .iter()
            .position(|l| l.depth == 1)
            .expect("inner loop at depth 1");
        let outer = forest
            .loops
            .iter()
            .position(|l| l.depth == 0)
            .expect("outer loop at depth 0");
        assert_eq!(forest.loops[inner].parent, Some(outer));
        assert!(forest.loops[inner]
            .blocks
            .is_subset(&forest.loops[outer].blocks));
    }

    #[test]
    fn innermost_assignment() {
        let p = nested_loops();
        let cfg = Cfg::build(&p);
        let dom = Dominators::compute(&cfg);
        let forest = LoopForest::compute(&cfg, &dom);
        let inner_pc = *p.labels.get("inner").unwrap();
        let li = forest.innermost_at(&cfg, inner_pc).expect("in a loop");
        assert_eq!(forest.loops[li].depth, 1, "body pc maps to the inner loop");
        // The outer counter decrement is only in the outer loop.
        let outer_body_pc = *p.labels.get("inner").unwrap() + 3; // addi r1
        let lo = forest.innermost_at(&cfg, outer_body_pc).expect("in a loop");
        assert_eq!(forest.loops[lo].depth, 0);
    }

    #[test]
    fn dominance_is_reflexive_and_entry_rooted() {
        let p = nested_loops();
        let cfg = Cfg::build(&p);
        let dom = Dominators::compute(&cfg);
        for b in 0..cfg.len() {
            assert!(dom.dominates(b, b));
        }
        assert_eq!(dom.idom[cfg.entry], Some(cfg.entry));
    }

    #[test]
    fn acyclic_program_has_no_loops() {
        let mut a = Asm::new();
        a.li(R1, 1);
        a.beq(R1, R0, "skip");
        a.addi(R1, R1, 1);
        a.label("skip");
        a.halt();
        let p = a.finish().unwrap();
        let cfg = Cfg::build(&p);
        let dom = Dominators::compute(&cfg);
        let forest = LoopForest::compute(&cfg, &dom);
        assert!(forest.loops.is_empty());
    }

    #[test]
    fn self_loop_detected() {
        let mut a = Asm::new();
        a.li(R1, 5);
        a.label("spin");
        a.addi(R1, R1, -1);
        a.bne(R1, R0, "spin");
        a.halt();
        let p = a.finish().unwrap();
        let cfg = Cfg::build(&p);
        let dom = Dominators::compute(&cfg);
        let forest = LoopForest::compute(&cfg, &dom);
        assert_eq!(forest.loops.len(), 1);
        assert_eq!(forest.loops[0].depth, 0);
    }
}
