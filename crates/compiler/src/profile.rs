//! The profiling tool (module ② of §4.1).
//!
//! Runs the program functionally (on the *profiling* input — the paper
//! deliberately profiles with a different data set than it evaluates with)
//! against a cache model, and collects the dynamic information the hybrid
//! slicer needs:
//!
//! - cache-miss counts per static load (delinquent-load identification),
//! - the dynamic register data-dependence graph with edge frequencies
//!   (which producer PC actually fed each consumer's source register, and
//!   how often — this is what lets the slicer drop cold control-flow paths,
//!   Figure 5),
//! - memory (store→load) dependence edges with frequencies,
//! - per-loop iteration counts and average cycles per iteration (the
//!   d-cycle of §4.2, estimated as base op latencies plus measured memory
//!   access latencies),
//! - branch bias per static branch.

use crate::cfg::Cfg;
use crate::dom::LoopForest;
use spear_exec::{ExecError, Interp, Stop};
use spear_isa::reg::NUM_REGS;
use spear_isa::{FuClass, Opcode, Program};
use spear_mem::{AccessKind, HierConfig, Hierarchy};
use std::collections::HashMap;

/// A dynamic dependence edge: consumer PC × source-register slot →
/// producer PC, with an occurrence count.
pub type EdgeMap = HashMap<(u32, u8), HashMap<u32, u64>>;

/// Per-loop dynamic measurements.
#[derive(Clone, Debug, Default)]
pub struct LoopProfile {
    /// Times the header block was entered (iterations).
    pub iterations: u64,
    /// Estimated cycles attributed to instructions executed in the loop
    /// (including nested loops).
    pub est_cycles: f64,
}

impl LoopProfile {
    /// The paper's d-cycle: average estimated cycles per iteration.
    pub fn dcycle(&self) -> f64 {
        if self.iterations == 0 {
            0.0
        } else {
            self.est_cycles / self.iterations as f64
        }
    }
}

/// Everything the profiler learned.
#[derive(Clone, Debug, Default)]
pub struct Profile {
    /// L1D misses per static load PC.
    pub load_misses: HashMap<u32, u64>,
    /// Dynamic accesses per static load PC.
    pub load_count: HashMap<u32, u64>,
    /// Total L1D misses.
    pub total_misses: u64,
    /// Register dependence edges.
    pub reg_edges: EdgeMap,
    /// Memory dependence edges: load PC → producing store PC → count.
    pub mem_edges: HashMap<u32, HashMap<u32, u64>>,
    /// Per-loop measurements, indexed like `LoopForest::loops`.
    pub loops: Vec<LoopProfile>,
    /// Taken/total per static conditional branch.
    pub branch_bias: HashMap<u32, (u64, u64)>,
    /// Instructions profiled.
    pub insts: u64,
}

impl Profile {
    /// Loads ranked by miss count, descending.
    pub fn ranked_loads(&self) -> Vec<(u32, u64)> {
        let mut v: Vec<(u32, u64)> = self.load_misses.iter().map(|(&p, &m)| (p, m)).collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }

    /// Producers of `(consumer, src_slot)` with frequency at least
    /// `threshold` times the hottest producer's frequency.
    pub fn hot_producers(&self, consumer: u32, slot: u8, threshold: f64) -> Vec<u32> {
        let Some(prods) = self.reg_edges.get(&(consumer, slot)) else {
            return Vec::new();
        };
        let max = prods.values().copied().max().unwrap_or(0);
        if max == 0 {
            return Vec::new();
        }
        let cut = (max as f64 * threshold).max(1.0);
        let mut v: Vec<u32> = prods
            .iter()
            .filter(|(_, &c)| c as f64 >= cut)
            .map(|(&p, _)| p)
            .collect();
        v.sort_unstable();
        v
    }

    /// Hot store producers for a load, same thresholding as registers.
    pub fn hot_mem_producers(&self, load: u32, threshold: f64) -> Vec<u32> {
        let Some(prods) = self.mem_edges.get(&load) else {
            return Vec::new();
        };
        let max = prods.values().copied().max().unwrap_or(0);
        if max == 0 {
            return Vec::new();
        }
        let cut = (max as f64 * threshold).max(1.0);
        let mut v: Vec<u32> = prods
            .iter()
            .filter(|(_, &c)| c as f64 >= cut)
            .map(|(&p, _)| p)
            .collect();
        v.sort_unstable();
        v
    }
}

/// Base latency estimate for d-cycle accounting (non-memory ops).
fn base_latency(op: Opcode) -> f64 {
    match op.fu_class() {
        FuClass::IntAlu | FuClass::Ctrl | FuClass::None => 1.0,
        FuClass::IntMul => 3.0,
        FuClass::IntDiv => 20.0,
        FuClass::FpAlu => 2.0,
        FuClass::FpMul => 4.0,
        FuClass::FpDiv => {
            if op == Opcode::Fsqrt {
                24.0
            } else {
                12.0
            }
        }
        FuClass::RdPort | FuClass::WrPort => 0.0, // measured instead
    }
}

/// Run the profiler over `program`, stopping after `max_insts`.
///
/// `cfg`/`forest` provide the static structure the measurements attach to;
/// `hier_cfg` configures the profiling cache model (normally the Table 2
/// hierarchy).
pub fn profile(
    program: &Program,
    cfg: &Cfg,
    forest: &LoopForest,
    hier_cfg: HierConfig,
    max_insts: u64,
) -> Result<Profile, ExecError> {
    let mut hier = Hierarchy::new(hier_cfg);
    let mut p = Profile {
        loops: vec![LoopProfile::default(); forest.loops.len()],
        ..Default::default()
    };

    // Last dynamic writer of each architectural register.
    let mut last_writer: [Option<u32>; NUM_REGS] = [None; NUM_REGS];
    // Last store to each byte address (block-granular would lose precision
    // on packed structures; workloads are small enough for exact byte
    // tracking at 8-byte granularity on the start address).
    let mut last_store: HashMap<u64, u32> = HashMap::new();

    // Loops headed at each header-block start PC (a back-to-back
    // iteration of a single-block loop re-enters at the same block, so
    // header entry is detected by PC, not by block transition).
    let mut header_starts: HashMap<u32, Vec<usize>> = HashMap::new();
    for (idx, l) in forest.loops.iter().enumerate() {
        header_starts
            .entry(cfg.blocks[l.header].start)
            .or_default()
            .push(idx);
    }

    let mut interp = Interp::new(program);
    // The profiler has no real clock; its accumulated cycle estimate
    // stands in as the fill-merge timestamp.
    let mut est_now: u64 = 0;
    let stop = interp.run_with(max_insts, |si, _regs| {
        p.insts += 1;
        let pc = si.pc;
        let inst = &si.inst;

        // Register dependence edges.
        for (slot, src) in inst.srcs().into_iter().enumerate() {
            let Some(src) = src else { continue };
            if src.is_zero() {
                continue;
            }
            if let Some(producer) = last_writer[src.index()] {
                *p.reg_edges
                    .entry((pc, slot as u8))
                    .or_default()
                    .entry(producer)
                    .or_insert(0) += 1;
            }
        }
        if let Some(d) = inst.dst() {
            last_writer[d.index()] = Some(pc);
        }

        // Memory model + dependences + per-loop cost.
        let mut cost = base_latency(inst.op);
        if let Some(addr) = si.outcome.eff_addr {
            if inst.op.is_load() {
                *p.load_count.entry(pc).or_insert(0) += 1;
                let acc = hier.access_data(addr, AccessKind::Read, pc, false, est_now);
                cost += acc.latency as f64;
                if let Some(&store_pc) = last_store.get(&addr) {
                    *p.mem_edges
                        .entry(pc)
                        .or_default()
                        .entry(store_pc)
                        .or_insert(0) += 1;
                }
            } else {
                let acc = hier.access_data(addr, AccessKind::Write, pc, false, est_now);
                cost += acc.latency as f64;
                last_store.insert(addr, pc);
            }
        }

        // Branch bias.
        if let Some(taken) = si.outcome.taken {
            let e = p.branch_bias.entry(pc).or_insert((0, 0));
            e.1 += 1;
            if taken {
                e.0 += 1;
            }
        }

        est_now += cost as u64;

        // Attribute cost to every enclosing loop; count header entries.
        let block = cfg.block_of(pc);
        let mut li = forest.innermost[block];
        while let Some(l) = li {
            p.loops[l].est_cycles += cost;
            li = forest.loops[l].parent;
        }
        if let Some(headed) = header_starts.get(&pc) {
            for &idx in headed {
                p.loops[idx].iterations += 1;
            }
        }
    })?;

    // Fold the cache model's per-PC miss counts into the profile.
    for (pc, misses) in hier.pc_misses.ranked() {
        if program.fetch(pc).is_some_and(|i| i.op.is_load()) {
            p.load_misses.insert(pc, misses);
        }
    }
    p.total_misses = hier.pc_misses.total();
    debug_assert!(matches!(stop, Stop::Halted | Stop::Budget));
    Ok(p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dom::Dominators;
    use spear_isa::asm::Asm;
    use spear_isa::reg::*;

    fn analyze(program: &Program) -> (Cfg, LoopForest, Profile) {
        let cfg = Cfg::build(program);
        let dom = Dominators::compute(&cfg);
        let forest = LoopForest::compute(&cfg, &dom);
        let prof = profile(program, &cfg, &forest, HierConfig::paper(), 10_000_000).unwrap();
        (cfg, forest, prof)
    }

    /// Strided scatter over a large array: every load misses.
    fn missing_loop(n: i64) -> Program {
        let mut a = Asm::new();
        let big = a.reserve("big", (n as u64) * 4096 + 8);
        a.li(R1, big as i64);
        a.li(R2, n);
        a.label("loop");
        a.ld(R3, R1, 0); // misses every time (4 KiB stride)
        a.add(R4, R4, R3);
        a.addi(R1, R1, 4096);
        a.addi(R2, R2, -1);
        a.bne(R2, R0, "loop");
        a.halt();
        a.finish().unwrap()
    }

    #[test]
    fn identifies_the_missing_load() {
        let p = missing_loop(200);
        let (_, _, prof) = analyze(&p);
        let ld_pc = *p.labels.get("loop").unwrap();
        let ranked = prof.ranked_loads();
        assert_eq!(ranked[0].0, ld_pc, "{ranked:?}");
        assert!(ranked[0].1 >= 190, "nearly every access misses: {ranked:?}");
        assert_eq!(prof.load_count[&ld_pc], 200);
    }

    #[test]
    fn register_edges_point_to_real_producers() {
        let p = missing_loop(50);
        let (_, _, prof) = analyze(&p);
        let ld_pc = *p.labels.get("loop").unwrap();
        let addi_r1 = ld_pc + 2;
        // The load's base register r1 is produced by `li` once and by the
        // addi 49 times — the addi dominates.
        let hot = prof.hot_producers(ld_pc, 0, 0.5);
        assert_eq!(hot, vec![addi_r1], "{:?}", prof.reg_edges.get(&(ld_pc, 0)));
    }

    #[test]
    fn cold_producers_are_dropped_by_threshold() {
        let p = missing_loop(50);
        let (_, _, prof) = analyze(&p);
        let ld_pc = *p.labels.get("loop").unwrap();
        // With a generous threshold the cold `li` producer appears too.
        let all = prof.hot_producers(ld_pc, 0, 0.0);
        assert_eq!(all.len(), 2, "li and addi both feed r1: {all:?}");
    }

    #[test]
    fn loop_dcycle_reflects_misses() {
        let p = missing_loop(100);
        let (_, forest, prof) = analyze(&p);
        assert_eq!(forest.loops.len(), 1);
        let lp = &prof.loops[0];
        assert_eq!(lp.iterations, 100);
        // Every iteration pays a full memory walk (133 cycles) plus a few
        // ALU ops.
        assert!(lp.dcycle() > 100.0, "dcycle = {}", lp.dcycle());
        assert!(lp.dcycle() < 200.0, "dcycle = {}", lp.dcycle());
    }

    #[test]
    fn branch_bias_measured() {
        let p = missing_loop(100);
        let (_, _, prof) = analyze(&p);
        let bne = *p.labels.get("loop").unwrap() + 4;
        let (taken, total) = prof.branch_bias[&bne];
        assert_eq!(total, 100);
        assert_eq!(taken, 99, "taken except the final exit");
    }

    #[test]
    fn store_load_dependence_recorded() {
        let mut a = Asm::new();
        let buf = a.reserve("buf", 64);
        a.li(R1, buf as i64);
        a.li(R2, 5);
        a.label("loop");
        a.sd(R2, R1, 0); // store pc
        a.ld(R3, R1, 0); // load pc reads it back
        a.addi(R2, R2, -1);
        a.bne(R2, R0, "loop");
        a.halt();
        let p = a.finish().unwrap();
        let (_, _, prof) = analyze(&p);
        let st = *p.labels.get("loop").unwrap();
        let ld = st + 1;
        assert_eq!(prof.hot_mem_producers(ld, 0.5), vec![st]);
    }

    #[test]
    fn cache_friendly_loop_has_few_misses() {
        let mut a = Asm::new();
        let xs: Vec<u64> = (0..512).collect();
        let base = a.alloc_u64("xs", &xs);
        a.li(R1, base as i64);
        a.li(R2, 512);
        a.label("loop");
        a.ld(R3, R1, 0);
        a.add(R4, R4, R3);
        a.addi(R1, R1, 8);
        a.addi(R2, R2, -1);
        a.bne(R2, R0, "loop");
        a.halt();
        let p = a.finish().unwrap();
        let (_, _, prof) = analyze(&p);
        // Sequential: one miss per 32-byte block = 128 misses for 512 loads.
        let ld_pc = *p.labels.get("loop").unwrap();
        let misses = prof.load_misses.get(&ld_pc).copied().unwrap_or(0);
        assert!(misses <= 130, "sequential loads mostly hit: {misses}");
        assert!(misses >= 100, "cold blocks still miss once: {misses}");
    }
}
