//! Graphviz (DOT) export of the compiler's intermediate structures — the
//! CFG with loop annotations, and a delinquent load's sliced dependence
//! neighborhood. `spearc --dot` writes these next to the output binary.

use crate::cfg::Cfg;
use crate::dom::LoopForest;
use crate::profile::Profile;
use spear_isa::pthread::PThreadEntry;
use spear_isa::Program;
use std::fmt::Write;

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Render the CFG as DOT: one node per basic block (listing its
/// instructions), loop members shaded and annotated with nesting depth.
pub fn cfg_dot(program: &Program, cfg: &Cfg, forest: &LoopForest) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph cfg {{");
    let _ = writeln!(out, "  node [shape=box fontname=\"monospace\" fontsize=9];");
    for (id, b) in cfg.blocks.iter().enumerate() {
        let mut label = format!("B{id} [{}..{})\\l", b.start, b.end);
        for pc in b.pcs() {
            let _ = write!(
                label,
                "{pc:>4}  {}\\l",
                escape(&program.insts[pc as usize].to_string())
            );
        }
        let style = match forest.innermost[id] {
            Some(li) => format!(
                " style=filled fillcolor=\"gray{}\"",
                (90 - 12 * forest.loops[li].depth.min(4)).max(50)
            ),
            None => String::new(),
        };
        let _ = writeln!(out, "  b{id} [label=\"{label}\"{style}];");
    }
    for (id, b) in cfg.blocks.iter().enumerate() {
        for &s in &b.succs {
            // Back edges (to a dominator header) drawn dashed.
            let dashed = forest
                .loops
                .iter()
                .any(|l| l.header == s && l.blocks.contains(&id));
            let attr = if dashed { " [style=dashed]" } else { "" };
            let _ = writeln!(out, "  b{id} -> b{s}{attr};");
        }
    }
    let _ = writeln!(out, "}}");
    out
}

/// Render one p-thread's slice as DOT: member instructions as nodes, hot
/// profiled dependence edges between them, the d-load highlighted, and
/// live-in registers as diamond sources.
pub fn slice_dot(
    program: &Program,
    profile: &Profile,
    entry: &PThreadEntry,
    edge_threshold: f64,
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph slice {{");
    let _ = writeln!(
        out,
        "  rankdir=BT; node [fontname=\"monospace\" fontsize=9];"
    );
    for &pc in &entry.members {
        let inst = &program.insts[pc as usize];
        let shape = if pc == entry.dload_pc {
            " shape=doubleoctagon style=filled fillcolor=lightcoral"
        } else {
            " shape=box"
        };
        let _ = writeln!(
            out,
            "  n{pc} [label=\"{pc}: {}\"{shape}];",
            escape(&inst.to_string())
        );
    }
    for r in &entry.live_ins {
        let _ = writeln!(out, "  li_{} [label=\"{r}\" shape=diamond];", r.index());
    }
    // Edges: for each member's sources, hot producers inside the slice;
    // sources without in-slice producers point at the live-in diamonds.
    for &pc in &entry.members {
        let inst = &program.insts[pc as usize];
        for (slot, src) in inst.srcs().into_iter().enumerate() {
            let Some(src) = src else { continue };
            if src.is_zero() {
                continue;
            }
            let producers = profile.hot_producers(pc, slot as u8, edge_threshold);
            let mut drew = false;
            for p in producers {
                if entry.members.contains(&p) {
                    let _ = writeln!(out, "  n{p} -> n{pc} [label=\"{src}\"];");
                    drew = true;
                }
            }
            if !drew && entry.live_ins.contains(&src) {
                let _ = writeln!(out, "  li_{} -> n{pc} [style=dotted];", src.index());
            }
        }
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::{CompilerConfig, SpearCompiler};
    use crate::dom::Dominators;
    use spear_isa::asm::Asm;
    use spear_isa::reg::*;

    fn gather() -> Program {
        let mut a = Asm::new();
        let idx: Vec<u64> = (0..400u64).map(|i| (i * 7919) % 2048).collect();
        let ib = a.alloc_u64("idx", &idx);
        let xb = a.reserve("x", 2048 * 4096);
        a.li(R1, ib as i64);
        a.li(R2, xb as i64);
        a.li(R3, 400);
        a.label("loop");
        a.ld(R5, R1, 0);
        a.slli(R6, R5, 12);
        a.add(R6, R2, R6);
        a.ld(R7, R6, 0);
        a.add(R4, R4, R7);
        a.addi(R1, R1, 8);
        a.addi(R3, R3, -1);
        a.bne(R3, R0, "loop");
        a.halt();
        a.finish().unwrap()
    }

    #[test]
    fn cfg_dot_is_wellformed() {
        let p = gather();
        let cfg = Cfg::build(&p);
        let dom = Dominators::compute(&cfg);
        let forest = LoopForest::compute(&cfg, &dom);
        let dot = cfg_dot(&p, &cfg, &forest);
        assert!(dot.starts_with("digraph cfg {"));
        assert!(dot.ends_with("}\n"));
        assert!(dot.matches(" -> ").count() >= cfg.blocks.len() - 1);
        assert!(dot.contains("style=dashed"), "the loop back edge is dashed");
    }

    #[test]
    fn slice_dot_highlights_dload_and_liveins() {
        let p = gather();
        let (binary, _) = SpearCompiler::new(CompilerConfig::default())
            .compile(&p)
            .unwrap();
        let e = &binary.table.entries[0];
        let cfg = Cfg::build(&p);
        let dom = Dominators::compute(&cfg);
        let forest = LoopForest::compute(&cfg, &dom);
        let prof = crate::profile::profile(
            &p,
            &cfg,
            &forest,
            spear_mem::HierConfig::paper(),
            10_000_000,
        )
        .unwrap();
        let dot = slice_dot(&p, &prof, e, 0.25);
        assert!(dot.contains("doubleoctagon"), "d-load node highlighted");
        assert!(dot.contains("shape=diamond"), "live-ins drawn");
        assert!(dot.matches(" -> ").count() >= e.members.len() - 1);
    }
}
