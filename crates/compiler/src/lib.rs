//! # spear-compiler — the SPEAR post-compiler
//!
//! The paper's primary software contribution (§4): an automated tool that
//! operates on program binaries and produces the SPEAR executable. Four
//! modules, matching Figure 4:
//!
//! 1. [`mod@cfg`] — the CFG drawing tool: basic blocks, control edges, call
//!    sites; [`dom`] adds dominators and the natural-loop nesting forest.
//! 2. [`mod@profile`] — the profiling tool: per-load miss counts, the dynamic
//!    dependence graph with edge frequencies, per-loop d-cycles, branch
//!    bias.
//! 3. [`mod@slice`] — hybrid program slicing: dynamic-dependence backward
//!    chasing (cold control-flow paths filtered per Figure 5) within the
//!    region-based prefetching range (innermost loop grown outward under
//!    the 120-d-cycle criterion, never across calls).
//! 4. [`compile`] — the pipeline driver and the attaching tool that binds
//!    the p-thread table to the binary.

pub mod cfg;
pub mod compile;
pub mod dom;
pub mod dot;
pub mod profile;
pub mod slice;

pub use cfg::{BasicBlock, BlockId, Cfg};
pub use compile::{CompileError, CompileReport, CompilerConfig, EntrySummary, SpearCompiler};
pub use dom::{Dominators, Loop, LoopForest};
pub use dot::{cfg_dot, slice_dot};
pub use profile::{profile, LoopProfile, Profile};
pub use slice::{build_entry, select_dloads, RegionPolicy, SkipReason, SliceOutcome, SlicerConfig};
