//! Property-based tests of the compiler's static analyses over randomly
//! generated (but well-formed) programs: CFG partitioning, dominator
//! axioms, loop-nesting structure, and slice closure.

use proptest::prelude::*;
use spear_compiler::{build_entry, profile, Cfg, Dominators, LoopForest, SlicerConfig};
use spear_isa::asm::Asm;
use spear_isa::reg::*;
use spear_isa::Program;
use spear_mem::HierConfig;

/// Generate a random structured program: a chain of `segments`, each
/// either a straight-line block, an if/else diamond, or a counted loop.
/// Always terminates (loops are counted), always ends in `halt`.
fn arb_program() -> impl Strategy<Value = Program> {
    proptest::collection::vec(0u8..3, 1..8).prop_map(|segments| {
        let mut a = Asm::new();
        a.alloc_u64("data", &[7; 64]);
        a.li(R10, 0); // accumulator
        for (i, seg) in segments.iter().enumerate() {
            match seg {
                0 => {
                    // straight line
                    a.addi(R10, R10, 3);
                    a.slli(R11, R10, 1);
                    a.xor(R10, R10, R11);
                }
                1 => {
                    // diamond
                    let t = format!("then{i}");
                    let j = format!("join{i}");
                    a.andi(R11, R10, 1);
                    a.beq(R11, R0, &t);
                    a.addi(R10, R10, 5);
                    a.j(&j);
                    a.label(&t);
                    a.addi(R10, R10, 9);
                    a.label(&j);
                }
                _ => {
                    // counted loop with a load
                    let l = format!("loop{i}");
                    a.li(R12, 5);
                    a.li(R13, 0); // data cursor
                    a.label(&l);
                    a.ld(R14, R13, 0);
                    a.add(R10, R10, R14);
                    a.addi(R13, R13, 8);
                    a.addi(R12, R12, -1);
                    a.bne(R12, R0, &l);
                }
            }
        }
        a.halt();
        a.finish().expect("generated program assembles")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// CFG partitions the program: every PC in exactly one block; edges
    /// are symmetric; every non-entry reachable block has a predecessor.
    #[test]
    fn cfg_partitions_program(p in arb_program()) {
        let cfg = Cfg::build(&p);
        let total: usize = cfg.blocks.iter().map(|b| b.len()).sum();
        prop_assert_eq!(total, p.len());
        for (id, b) in cfg.blocks.iter().enumerate() {
            for pc in b.pcs() {
                prop_assert_eq!(cfg.block_of(pc), id);
            }
            for &s in &b.succs {
                prop_assert!(cfg.blocks[s].preds.contains(&id));
            }
        }
    }

    /// Dominator axioms: entry dominates every reachable block; dominance
    /// is reflexive; the idom of a block strictly dominates it.
    #[test]
    fn dominator_axioms(p in arb_program()) {
        let cfg = Cfg::build(&p);
        let dom = Dominators::compute(&cfg);
        for b in 0..cfg.len() {
            prop_assert!(dom.dominates(b, b));
            if dom.idom[b].is_some() {
                prop_assert!(dom.dominates(cfg.entry, b));
                let id = dom.idom[b].unwrap();
                prop_assert!(dom.dominates(id, b));
            }
        }
    }

    /// Loop forest structure: headers dominate their bodies; child loops
    /// nest strictly inside their parents; depths are consistent.
    #[test]
    fn loop_forest_structure(p in arb_program()) {
        let cfg = Cfg::build(&p);
        let dom = Dominators::compute(&cfg);
        let forest = LoopForest::compute(&cfg, &dom);
        for l in &forest.loops {
            for &b in &l.blocks {
                prop_assert!(dom.dominates(l.header, b), "header dominates body");
            }
            if let Some(parent) = l.parent {
                prop_assert!(l.blocks.is_subset(&forest.loops[parent].blocks));
                prop_assert_eq!(l.depth, forest.loops[parent].depth + 1);
            } else {
                prop_assert_eq!(l.depth, 0);
            }
        }
    }

    /// Slice closure: every built p-thread's members are inside the
    /// program; the d-load is a member; live-ins never include r0; members
    /// are strictly sorted.
    #[test]
    fn slices_are_wellformed(p in arb_program()) {
        let cfg = Cfg::build(&p);
        let dom = Dominators::compute(&cfg);
        let forest = LoopForest::compute(&cfg, &dom);
        let prof = profile(&p, &cfg, &forest, HierConfig::paper(), 1_000_000).unwrap();
        let scfg = SlicerConfig { dload_min_misses: 1, dload_miss_fraction: 0.0, ..Default::default() };
        for (pc, misses) in prof.ranked_loads() {
            let out = build_entry(pc, misses, &p, &cfg, &forest, &prof, &scfg);
            if let Ok(e) = out.result {
                prop_assert!(e.members.contains(&e.dload_pc));
                prop_assert!(e.members.windows(2).all(|w| w[0] < w[1]));
                prop_assert!(e.members.iter().all(|&m| (m as usize) < p.len()));
                prop_assert!(e.live_ins.iter().all(|r| !r.is_zero()));
                // Validate through the table-level checker too.
                let table = spear_isa::PThreadTable { entries: vec![e] };
                prop_assert!(table.validate(&p).is_ok());
            }
        }
    }
}
