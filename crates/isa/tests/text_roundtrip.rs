//! Property test: every structurally valid program round-trips through
//! the assembly emitter and parser bit-exactly.

use proptest::prelude::*;
use spear_isa::asm::Asm;
use spear_isa::reg::Reg;
use spear_isa::{emit_asm, parse_asm, Program};

/// Random structured programs using (almost) every instruction form.
fn arb_program() -> impl Strategy<Value = Program> {
    (
        proptest::collection::vec((0u8..10, 0u8..30, any::<i16>()), 1..40),
        proptest::collection::vec(any::<u64>(), 1..8),
    )
        .prop_map(|(ops, data)| {
            let mut a = Asm::new();
            a.alloc_u64("blob", &data);
            for (i, &(kind, r, imm)) in ops.iter().enumerate() {
                let rd = Reg::int(1 + (r % 28));
                let rs = Reg::int(1 + ((r + 7) % 28));
                let fd = Reg::fp(r % 30);
                let fs = Reg::fp((r + 3) % 30);
                match kind {
                    0 => {
                        a.add(rd, rs, rd);
                    }
                    1 => {
                        a.addi(rd, rs, imm as i64);
                    }
                    2 => {
                        a.li(rd, imm as i64);
                    }
                    3 => {
                        a.ld(rd, spear_isa::reg::R0, (imm as i64 & 3) * 8);
                    }
                    4 => {
                        a.sd(rs, spear_isa::reg::R0, (imm as i64 & 3) * 8);
                    }
                    5 => {
                        a.fadd(fd, fs, fd);
                    }
                    6 => {
                        a.fsqrt(fd, fs);
                    }
                    7 => {
                        a.fld(fd, spear_isa::reg::R0, (imm as i64 & 3) * 8);
                    }
                    8 => {
                        // A short forward branch to a fresh label.
                        let l = format!("l{i}");
                        a.beq(rd, rs, &l);
                        a.nop();
                        a.label(&l);
                    }
                    _ => {
                        a.slli(rd, rs, (imm as i64).rem_euclid(63));
                    }
                }
            }
            a.halt();
            a.finish().expect("assembles")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn emit_parse_is_identity_on_instructions(p in arb_program()) {
        let text = emit_asm(&p);
        let back = parse_asm(&text)
            .unwrap_or_else(|e| panic!("re-parse failed: {e}\n{text}"));
        prop_assert_eq!(&back.insts, &p.insts);
        prop_assert_eq!(back.entry, p.entry);
        prop_assert_eq!(back.data.to_bytes(), p.data.to_bytes());
    }

    #[test]
    fn binfile_is_identity(p in arb_program()) {
        let b = spear_isa::SpearBinary::plain(p);
        let loaded = spear_isa::binfile::load(&spear_isa::binfile::save(&b)).unwrap();
        prop_assert_eq!(loaded.program.insts, b.program.insts);
        prop_assert_eq!(loaded.program.data.to_bytes(), b.program.data.to_bytes());
    }
}
