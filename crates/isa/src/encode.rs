//! Fixed-width binary instruction encoding.
//!
//! Instructions encode to 16 bytes, little-endian:
//!
//! ```text
//! [0..2)  opcode  (u16)
//! [2]     rd      (register namespace index)
//! [3]     rs1
//! [4]     rs2
//! [5..8)  reserved (zero)
//! [8..16) imm     (i64)
//! ```
//!
//! Instruction memory addresses are `pc * INST_BYTES`, which is what the
//! I-cache model indexes by.

use crate::inst::Inst;
use crate::op::Opcode;
use crate::reg::{Reg, NUM_REGS};
use bytes::{Buf, BufMut};

/// Bytes per encoded instruction.
pub const INST_BYTES: usize = 16;

/// Errors arising while decoding instruction words.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Input was not a multiple of [`INST_BYTES`] / ran out of bytes.
    Truncated,
    /// Unknown opcode value.
    BadOpcode(u16),
    /// Register index out of the 64-entry namespace.
    BadReg(u8),
    /// Reserved bytes were non-zero.
    BadPadding,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "truncated instruction word"),
            DecodeError::BadOpcode(c) => write!(f, "unknown opcode {c:#06x}"),
            DecodeError::BadReg(r) => write!(f, "register index {r} out of range"),
            DecodeError::BadPadding => write!(f, "non-zero reserved bytes"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Append the encoding of `inst` to `out`.
pub fn encode_into(inst: &Inst, out: &mut impl BufMut) {
    out.put_u16_le(inst.op.code());
    out.put_u8(inst.rd.index() as u8);
    out.put_u8(inst.rs1.index() as u8);
    out.put_u8(inst.rs2.index() as u8);
    out.put_bytes(0, 3);
    out.put_i64_le(inst.imm);
}

/// Encode one instruction to its 16-byte word.
pub fn encode(inst: &Inst) -> [u8; INST_BYTES] {
    let mut buf = Vec::with_capacity(INST_BYTES);
    encode_into(inst, &mut buf);
    buf.try_into().expect("encoding is exactly INST_BYTES")
}

/// Decode one instruction from the front of `buf`.
pub fn decode(buf: &mut impl Buf) -> Result<Inst, DecodeError> {
    if buf.remaining() < INST_BYTES {
        return Err(DecodeError::Truncated);
    }
    let code = buf.get_u16_le();
    let op = Opcode::from_code(code).ok_or(DecodeError::BadOpcode(code))?;
    let reg = |b: u8| -> Result<Reg, DecodeError> {
        if (b as usize) < NUM_REGS {
            Ok(Reg::from_index(b))
        } else {
            Err(DecodeError::BadReg(b))
        }
    };
    let rd = reg(buf.get_u8())?;
    let rs1 = reg(buf.get_u8())?;
    let rs2 = reg(buf.get_u8())?;
    for _ in 0..3 {
        if buf.get_u8() != 0 {
            return Err(DecodeError::BadPadding);
        }
    }
    let imm = buf.get_i64_le();
    Ok(Inst {
        op,
        rd,
        rs1,
        rs2,
        imm,
    })
}

/// Encode a full instruction stream.
pub fn encode_text(insts: &[Inst]) -> Vec<u8> {
    let mut out = Vec::with_capacity(insts.len() * INST_BYTES);
    for i in insts {
        encode_into(i, &mut out);
    }
    out
}

/// Decode a full instruction stream.
pub fn decode_text(mut bytes: &[u8]) -> Result<Vec<Inst>, DecodeError> {
    if !bytes.len().is_multiple_of(INST_BYTES) {
        return Err(DecodeError::Truncated);
    }
    let mut out = Vec::with_capacity(bytes.len() / INST_BYTES);
    while !bytes.is_empty() {
        out.push(decode(&mut bytes)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::*;
    use proptest::prelude::*;

    #[test]
    fn single_round_trip() {
        let i = Inst::new(Opcode::Ld, R5, R6, R0, -128);
        let w = encode(&i);
        assert_eq!(decode(&mut &w[..]).unwrap(), i);
    }

    #[test]
    fn decode_rejects_bad_opcode() {
        let mut w = encode(&Inst::nop());
        w[0] = 0xff;
        w[1] = 0xff;
        assert_eq!(decode(&mut &w[..]), Err(DecodeError::BadOpcode(0xffff)));
    }

    #[test]
    fn decode_rejects_bad_register() {
        let mut w = encode(&Inst::nop());
        w[2] = 200;
        assert_eq!(decode(&mut &w[..]), Err(DecodeError::BadReg(200)));
    }

    #[test]
    fn decode_rejects_dirty_padding() {
        let mut w = encode(&Inst::nop());
        w[6] = 1;
        assert_eq!(decode(&mut &w[..]), Err(DecodeError::BadPadding));
    }

    #[test]
    fn decode_rejects_short_input() {
        let w = encode(&Inst::nop());
        assert_eq!(decode(&mut &w[..10]), Err(DecodeError::Truncated));
        assert_eq!(decode_text(&w[..10]), Err(DecodeError::Truncated));
    }

    fn arb_inst() -> impl Strategy<Value = Inst> {
        (
            0..Opcode::ALL.len(),
            0..NUM_REGS as u8,
            0..NUM_REGS as u8,
            0..NUM_REGS as u8,
            any::<i64>(),
        )
            .prop_map(|(op, rd, rs1, rs2, imm)| Inst {
                op: Opcode::ALL[op],
                rd: Reg::from_index(rd),
                rs1: Reg::from_index(rs1),
                rs2: Reg::from_index(rs2),
                imm,
            })
    }

    proptest! {
        #[test]
        fn prop_round_trip(inst in arb_inst()) {
            let w = encode(&inst);
            prop_assert_eq!(decode(&mut &w[..]).unwrap(), inst);
        }

        #[test]
        fn prop_stream_round_trip(insts in proptest::collection::vec(arb_inst(), 0..64)) {
            let bytes = encode_text(&insts);
            prop_assert_eq!(bytes.len(), insts.len() * INST_BYTES);
            prop_assert_eq!(decode_text(&bytes).unwrap(), insts);
        }
    }
}
