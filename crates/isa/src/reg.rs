//! Architectural register names.
//!
//! The SPEAR ISA (our stand-in for SimpleScalar PISA, see `DESIGN.md`) has 32
//! integer registers `R0`–`R31` and 32 floating-point registers `F0`–`F31`.
//! `R0` is hardwired to zero, as in PISA/MIPS. By convention `R29` is the
//! stack pointer and `R31` the link register, but nothing in the toolchain
//! enforces an ABI — workloads are free-standing kernels.
//!
//! A [`Reg`] is a single byte: indices `0..32` are integer registers and
//! `32..64` are floating-point registers. Packing both classes into one
//! namespace keeps dependence analysis (renaming in the core, backward
//! slicing in the compiler) uniform: a "register" is just an index into a
//! 64-entry architectural file.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Number of integer architectural registers.
pub const NUM_INT_REGS: usize = 32;
/// Number of floating-point architectural registers.
pub const NUM_FP_REGS: usize = 32;
/// Total architectural register namespace (integer + floating point).
pub const NUM_REGS: usize = NUM_INT_REGS + NUM_FP_REGS;

/// An architectural register name.
///
/// The inner index is `0..64`: `0..32` integer, `32..64` floating point.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Reg(u8);

impl Reg {
    /// The hardwired-zero integer register.
    pub const ZERO: Reg = Reg(0);

    /// Integer register `Rn`. Panics if `n >= 32`.
    #[inline]
    pub const fn int(n: u8) -> Reg {
        assert!(n < NUM_INT_REGS as u8);
        Reg(n)
    }

    /// Floating-point register `Fn`. Panics if `n >= 32`.
    #[inline]
    pub const fn fp(n: u8) -> Reg {
        assert!(n < NUM_FP_REGS as u8);
        Reg(n + NUM_INT_REGS as u8)
    }

    /// Reconstruct from a raw namespace index (`0..64`).
    #[inline]
    pub const fn from_index(i: u8) -> Reg {
        assert!(i < NUM_REGS as u8);
        Reg(i)
    }

    /// Index into the unified 64-entry architectural namespace.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// True for `F0`–`F31`.
    #[inline]
    pub const fn is_fp(self) -> bool {
        self.0 >= NUM_INT_REGS as u8
    }

    /// True for `R0`, which always reads as zero and ignores writes.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// The number within the class (the `n` of `Rn`/`Fn`).
    #[inline]
    pub const fn num(self) -> u8 {
        if self.is_fp() {
            self.0 - NUM_INT_REGS as u8
        } else {
            self.0
        }
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_fp() {
            write!(f, "f{}", self.num())
        } else {
            write!(f, "r{}", self.num())
        }
    }
}

impl fmt::Debug for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

macro_rules! int_regs {
    ($($name:ident = $n:expr),* $(,)?) => {
        $(#[doc = concat!("Integer register `r", stringify!($n), "`.")]
          pub const $name: Reg = Reg::int($n);)*
    };
}

macro_rules! fp_regs {
    ($($name:ident = $n:expr),* $(,)?) => {
        $(#[doc = concat!("Floating-point register `f", stringify!($n), "`.")]
          pub const $name: Reg = Reg::fp($n);)*
    };
}

int_regs! {
    R0 = 0, R1 = 1, R2 = 2, R3 = 3, R4 = 4, R5 = 5, R6 = 6, R7 = 7,
    R8 = 8, R9 = 9, R10 = 10, R11 = 11, R12 = 12, R13 = 13, R14 = 14, R15 = 15,
    R16 = 16, R17 = 17, R18 = 18, R19 = 19, R20 = 20, R21 = 21, R22 = 22, R23 = 23,
    R24 = 24, R25 = 25, R26 = 26, R27 = 27, R28 = 28, R29 = 29, R30 = 30, R31 = 31,
}

fp_regs! {
    F0 = 0, F1 = 1, F2 = 2, F3 = 3, F4 = 4, F5 = 5, F6 = 6, F7 = 7,
    F8 = 8, F9 = 9, F10 = 10, F11 = 11, F12 = 12, F13 = 13, F14 = 14, F15 = 15,
    F16 = 16, F17 = 17, F18 = 18, F19 = 19, F20 = 20, F21 = 21, F22 = 22, F23 = 23,
    F24 = 24, F25 = 25, F26 = 26, F27 = 27, F28 = 28, F29 = 29, F30 = 30, F31 = 31,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_and_fp_namespaces_are_disjoint() {
        for n in 0..32u8 {
            assert!(!Reg::int(n).is_fp());
            assert!(Reg::fp(n).is_fp());
            assert_ne!(Reg::int(n), Reg::fp(n));
            assert_eq!(Reg::int(n).num(), n);
            assert_eq!(Reg::fp(n).num(), n);
        }
    }

    #[test]
    fn zero_register() {
        assert!(R0.is_zero());
        assert!(!R1.is_zero());
        assert!(!F0.is_zero(), "f0 is a normal register");
    }

    #[test]
    fn display_names() {
        assert_eq!(R17.to_string(), "r17");
        assert_eq!(F3.to_string(), "f3");
    }

    #[test]
    fn index_round_trip() {
        for i in 0..NUM_REGS as u8 {
            assert_eq!(Reg::from_index(i).index(), i as usize);
        }
    }
}
