//! The p-thread table: the SPEAR binary's prefetching metadata.
//!
//! The SPEAR compiler's attaching tool (module ④ of §4.1) appends a table of
//! p-thread descriptors to the program binary. At program launch the table is
//! loaded into the processor's P-thread Table (PT); the pre-decode stage
//! consults it to mark IFQ entries with p-thread indicators and to detect
//! delinquent loads (§3.1–3.2).
//!
//! One [`PThreadEntry`] describes one delinquent load: the d-load's PC, the
//! PCs of its backward slice (the p-thread members), the live-in registers
//! to copy from the main thread at trigger time, and the region metadata
//! (loop headers and accumulated d-cycle) the compiler used to bound the
//! prefetching range.

use crate::program::Program;
use crate::reg::Reg;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// Region metadata recorded with each p-thread (§4.2).
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct RegionInfo {
    /// Header PCs of the loops included in the prefetching range,
    /// innermost first.
    pub loop_headers: Vec<u32>,
    /// Accumulated expected delay (cycles per iteration of the outermost
    /// included loop) — the paper's d-cycle, bounded by the 120-cycle
    /// criterion.
    pub dcycle: f64,
}

/// Descriptor for one delinquent load's p-thread.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct PThreadEntry {
    /// PC of the delinquent load.
    pub dload_pc: u32,
    /// PCs of all p-thread member instructions (the backward slice plus the
    /// d-load itself), sorted ascending.
    pub members: Vec<u32>,
    /// Registers whose values must be copied from the main thread's
    /// architectural state when the p-thread is triggered. Copying costs one
    /// cycle per register (§3.2).
    pub live_ins: Vec<Reg>,
    /// Region (prefetching range) metadata.
    pub region: RegionInfo,
    /// Cache misses observed at this load during profiling (diagnostic).
    pub profiled_misses: u64,
}

impl PThreadEntry {
    /// Slice length in instructions (the paper reports this per benchmark;
    /// e.g. fft's 1,129-instruction p-thread).
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True if the entry has no members (degenerate).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }
}

/// The full p-thread table attached to a program.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct PThreadTable {
    /// One entry per delinquent load, sorted by `dload_pc`.
    pub entries: Vec<PThreadEntry>,
}

impl PThreadTable {
    /// An empty table (a SPEAR binary with no p-threads behaves exactly
    /// like the baseline binary).
    pub fn empty() -> PThreadTable {
        PThreadTable::default()
    }

    /// Number of p-threads.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no p-threads are attached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Union of all member PCs — what the pre-decoder marks with p-thread
    /// indicators.
    pub fn member_union(&self) -> BTreeSet<u32> {
        self.entries
            .iter()
            .flat_map(|e| e.members.iter().copied())
            .collect()
    }

    /// Set of delinquent-load PCs — what the pre-decode d-load detector
    /// (PD) matches against.
    pub fn dload_pcs(&self) -> BTreeSet<u32> {
        self.entries.iter().map(|e| e.dload_pc).collect()
    }

    /// Look up the entry for a d-load PC.
    pub fn entry_for(&self, dload_pc: u32) -> Option<&PThreadEntry> {
        self.entries.iter().find(|e| e.dload_pc == dload_pc)
    }

    /// Consistency checks against a program: members in range and sorted,
    /// each d-load a member of its own slice, each d-load actually a load.
    pub fn validate(&self, program: &Program) -> Result<(), TableError> {
        let mut last_dload = None;
        for e in &self.entries {
            if let Some(prev) = last_dload {
                if e.dload_pc <= prev {
                    return Err(TableError::Unsorted);
                }
            }
            last_dload = Some(e.dload_pc);
            let inst = program
                .fetch(e.dload_pc)
                .ok_or(TableError::PcOutOfRange(e.dload_pc))?;
            if !inst.op.is_load() {
                return Err(TableError::DLoadNotALoad(e.dload_pc));
            }
            if !e.members.contains(&e.dload_pc) {
                return Err(TableError::DLoadNotInSlice(e.dload_pc));
            }
            let mut prev_m = None;
            for &m in &e.members {
                if program.fetch(m).is_none() {
                    return Err(TableError::PcOutOfRange(m));
                }
                if let Some(p) = prev_m {
                    if m <= p {
                        return Err(TableError::Unsorted);
                    }
                }
                prev_m = Some(m);
            }
        }
        Ok(())
    }
}

/// Inconsistencies detected by [`PThreadTable::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TableError {
    /// Entries or members not strictly ascending.
    Unsorted,
    /// A PC referenced by the table is outside the program text.
    PcOutOfRange(u32),
    /// The designated delinquent load is not a load instruction.
    DLoadNotALoad(u32),
    /// The delinquent load is missing from its own member set.
    DLoadNotInSlice(u32),
}

impl fmt::Display for TableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TableError::Unsorted => write!(f, "p-thread table entries not sorted"),
            TableError::PcOutOfRange(pc) => write!(f, "p-thread pc @{pc} out of range"),
            TableError::DLoadNotALoad(pc) => write!(f, "d-load @{pc} is not a load"),
            TableError::DLoadNotInSlice(pc) => {
                write!(f, "d-load @{pc} missing from its own slice")
            }
        }
    }
}

impl std::error::Error for TableError {}

/// A program together with its attached p-thread table — the output of the
/// SPEAR compiler, the input to the SPEAR machine.
#[derive(Clone, Debug, Default)]
pub struct SpearBinary {
    /// The unmodified program text and data (the p-thread is a strict
    /// subset of the main program and is *not* duplicated — §3).
    pub program: Program,
    /// The attached p-thread table.
    pub table: PThreadTable,
}

impl SpearBinary {
    /// Wrap a program with no p-threads (baseline behaviour).
    pub fn plain(program: Program) -> SpearBinary {
        SpearBinary {
            program,
            table: PThreadTable::empty(),
        }
    }

    /// Validate both the program and the table against it.
    pub fn validate(&self) -> Result<(), String> {
        self.program.validate().map_err(|e| e.to_string())?;
        self.table
            .validate(&self.program)
            .map_err(|e| e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Asm;
    use crate::reg::*;

    fn prog_with_load() -> Program {
        let mut a = Asm::new();
        let xs = a.alloc_u64("xs", &[0; 8]);
        a.li(R1, xs as i64);
        a.label("top");
        a.ld(R2, R1, 0); // pc 1
        a.addi(R1, R1, 8); // pc 2
        a.bne(R2, R0, "top");
        a.halt();
        a.finish().unwrap()
    }

    fn entry(dload: u32, members: Vec<u32>) -> PThreadEntry {
        PThreadEntry {
            dload_pc: dload,
            members,
            ..Default::default()
        }
    }

    #[test]
    fn validate_accepts_wellformed() {
        let p = prog_with_load();
        let t = PThreadTable {
            entries: vec![entry(1, vec![1, 2])],
        };
        t.validate(&p).unwrap();
    }

    #[test]
    fn validate_rejects_nonload_dload() {
        let p = prog_with_load();
        let t = PThreadTable {
            entries: vec![entry(2, vec![2])],
        };
        assert_eq!(t.validate(&p), Err(TableError::DLoadNotALoad(2)));
    }

    #[test]
    fn validate_rejects_dload_outside_slice() {
        let p = prog_with_load();
        let t = PThreadTable {
            entries: vec![entry(1, vec![2])],
        };
        assert_eq!(t.validate(&p), Err(TableError::DLoadNotInSlice(1)));
    }

    #[test]
    fn validate_rejects_out_of_range() {
        let p = prog_with_load();
        let t = PThreadTable {
            entries: vec![entry(1, vec![1, 99])],
        };
        assert_eq!(t.validate(&p), Err(TableError::PcOutOfRange(99)));
    }

    #[test]
    fn member_union_and_dload_sets() {
        let t = PThreadTable {
            entries: vec![entry(1, vec![0, 1]), entry(5, vec![3, 5])],
        };
        assert_eq!(t.member_union(), [0, 1, 3, 5].into());
        assert_eq!(t.dload_pcs(), [1, 5].into());
        assert_eq!(t.entry_for(5).unwrap().dload_pc, 5);
        assert!(t.entry_for(2).is_none());
    }

    #[test]
    fn empty_table_is_benign() {
        let p = prog_with_load();
        let b = SpearBinary::plain(p);
        b.validate().unwrap();
        assert!(b.table.is_empty());
    }
}
