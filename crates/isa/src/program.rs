//! Program container: instruction text, data image, symbols.

use crate::encode::INST_BYTES;
use crate::inst::Inst;
use std::collections::BTreeMap;
use std::fmt;

/// Initial contents and extent of a program's data memory.
///
/// Data memory is a flat byte-addressable space of `size` bytes. The first
/// `init.len()` bytes are initialized from `init`; the rest read as zero.
/// Workload builders allocate regions through [`crate::asm::Asm`], which
/// keeps the image and the symbolic base addresses consistent.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DataImage {
    /// Initialized prefix of memory.
    pub init: Vec<u8>,
    /// Total data-memory size in bytes (`>= init.len()`).
    pub size: usize,
}

impl DataImage {
    /// An image of `size` zero bytes.
    pub fn zeroed(size: usize) -> DataImage {
        DataImage {
            init: Vec::new(),
            size,
        }
    }

    /// Materialize the full memory contents.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut v = self.init.clone();
        v.resize(self.size, 0);
        v
    }
}

/// A complete SPEAR program: text, data, and symbols.
///
/// The PC is an instruction index into `insts`; instruction *addresses* (as
/// seen by the I-cache) are `pc * INST_BYTES`.
#[derive(Clone, Debug, Default)]
pub struct Program {
    /// Instruction text.
    pub insts: Vec<Inst>,
    /// Label name → instruction index. `BTreeMap` so listings are stable.
    pub labels: BTreeMap<String, u32>,
    /// Data-memory name → byte address, for named allocations.
    pub data_symbols: BTreeMap<String, u64>,
    /// Initial data memory.
    pub data: DataImage,
    /// Entry PC.
    pub entry: u32,
}

/// Static instruction-mix counts (see [`Program::static_mix`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StaticMix {
    /// All instructions.
    pub total: usize,
    /// Loads (integer and FP).
    pub loads: usize,
    /// Stores.
    pub stores: usize,
    /// Branches and jumps.
    pub controls: usize,
    /// FP arithmetic.
    pub fp: usize,
    /// Integer arithmetic and everything else.
    pub int: usize,
}

impl StaticMix {
    /// Memory operations as a fraction of all instructions.
    pub fn mem_fraction(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            (self.loads + self.stores) as f64 / self.total as f64
        }
    }
}

/// A structural problem detected by [`Program::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProgramError {
    /// A control transfer targets an instruction index outside the text.
    TargetOutOfRange { pc: u32, target: u32 },
    /// An instruction failed register-class validation.
    BadInst { pc: u32, reason: String },
    /// The entry point is outside the text.
    BadEntry(u32),
    /// The program has no `halt`, so execution would run off the end.
    NoHalt,
}

impl fmt::Display for ProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgramError::TargetOutOfRange { pc, target } => {
                write!(f, "pc {pc}: branch/jump target @{target} out of range")
            }
            ProgramError::BadInst { pc, reason } => write!(f, "pc {pc}: {reason}"),
            ProgramError::BadEntry(e) => write!(f, "entry point @{e} out of range"),
            ProgramError::NoHalt => write!(f, "program contains no halt instruction"),
        }
    }
}

impl std::error::Error for ProgramError {}

impl Program {
    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// True if the text is empty.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Fetch by PC; `None` past the end of text.
    #[inline]
    pub fn fetch(&self, pc: u32) -> Option<&Inst> {
        self.insts.get(pc as usize)
    }

    /// Instruction address as the I-cache sees it.
    #[inline]
    pub fn inst_addr(pc: u32) -> u64 {
        pc as u64 * INST_BYTES as u64
    }

    /// Byte address of a named data allocation.
    pub fn data_addr(&self, name: &str) -> Option<u64> {
        self.data_symbols.get(name).copied()
    }

    /// Structural validation: operand classes, control-transfer targets,
    /// entry point, presence of `halt`.
    pub fn validate(&self) -> Result<(), ProgramError> {
        if self.entry as usize >= self.insts.len() && !self.insts.is_empty() {
            return Err(ProgramError::BadEntry(self.entry));
        }
        let mut has_halt = false;
        for (pc, inst) in self.insts.iter().enumerate() {
            let pc = pc as u32;
            if let Err(reason) = inst.validate() {
                return Err(ProgramError::BadInst { pc, reason });
            }
            if let Some(t) = inst.target() {
                if t as usize >= self.insts.len() {
                    return Err(ProgramError::TargetOutOfRange { pc, target: t });
                }
            }
            has_halt |= inst.op == crate::op::Opcode::Halt;
        }
        if !has_halt && !self.insts.is_empty() {
            return Err(ProgramError::NoHalt);
        }
        Ok(())
    }

    /// Static instruction mix (counts by category).
    pub fn static_mix(&self) -> StaticMix {
        let mut m = StaticMix::default();
        for i in &self.insts {
            m.total += 1;
            if i.op.is_load() {
                m.loads += 1;
            } else if i.op.is_store() {
                m.stores += 1;
            } else if i.op.is_ctrl() {
                m.controls += 1;
            } else if matches!(
                i.op.fu_class(),
                crate::op::FuClass::FpAlu | crate::op::FuClass::FpMul | crate::op::FuClass::FpDiv
            ) {
                m.fp += 1;
            } else {
                m.int += 1;
            }
        }
        m
    }

    /// Human-readable listing with label annotations — the disassembler.
    pub fn listing(&self) -> String {
        use fmt::Write;
        let mut by_pc: BTreeMap<u32, Vec<&str>> = BTreeMap::new();
        for (name, &pc) in &self.labels {
            by_pc.entry(pc).or_default().push(name);
        }
        let mut out = String::new();
        for (pc, inst) in self.insts.iter().enumerate() {
            if let Some(names) = by_pc.get(&(pc as u32)) {
                for n in names {
                    let _ = writeln!(out, "{n}:");
                }
            }
            let _ = writeln!(out, "  {pc:>6}  {inst}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::Opcode;
    use crate::reg::*;

    fn tiny() -> Program {
        Program {
            insts: vec![
                Inst::new(Opcode::Li, R1, R0, R0, 5),
                Inst::new(Opcode::Addi, R1, R1, R0, -1),
                Inst::new(Opcode::Bne, R0, R1, R0, 1),
                Inst::halt(),
            ],
            labels: [("loop".to_string(), 1u32)].into(),
            data_symbols: BTreeMap::new(),
            data: DataImage::zeroed(64),
            entry: 0,
        }
    }

    #[test]
    fn validate_ok() {
        tiny().validate().unwrap();
    }

    #[test]
    fn validate_catches_bad_target() {
        let mut p = tiny();
        p.insts[2].imm = 99;
        assert!(matches!(
            p.validate(),
            Err(ProgramError::TargetOutOfRange { pc: 2, target: 99 })
        ));
    }

    #[test]
    fn validate_catches_missing_halt() {
        let mut p = tiny();
        p.insts.pop();
        p.insts.push(Inst::nop());
        assert_eq!(p.validate(), Err(ProgramError::NoHalt));
    }

    #[test]
    fn validate_catches_bad_entry() {
        let mut p = tiny();
        p.entry = 100;
        assert!(matches!(p.validate(), Err(ProgramError::BadEntry(100))));
    }

    #[test]
    fn data_image_materializes_zero_tail() {
        let img = DataImage {
            init: vec![1, 2, 3],
            size: 6,
        };
        assert_eq!(img.to_bytes(), vec![1, 2, 3, 0, 0, 0]);
    }

    #[test]
    fn listing_includes_labels() {
        let l = tiny().listing();
        assert!(l.contains("loop:"), "{l}");
        assert!(l.contains("halt"), "{l}");
    }

    #[test]
    fn static_mix_counts() {
        let p = tiny();
        let m = p.static_mix();
        assert_eq!(m.total, 4);
        assert_eq!(m.controls, 1); // the bne
        assert_eq!(m.loads + m.stores, 0);
        assert_eq!(m.int + m.fp, 3); // li, addi, halt
        assert_eq!(m.mem_fraction(), 0.0);
    }

    #[test]
    fn inst_addr_spacing() {
        assert_eq!(Program::inst_addr(0), 0);
        assert_eq!(Program::inst_addr(2), 2 * INST_BYTES as u64);
    }
}
