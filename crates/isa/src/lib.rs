//! # spear-isa — the SPEAR instruction set
//!
//! A 64-bit RISC instruction set standing in for SimpleScalar PISA (see the
//! repository `DESIGN.md` for the substitution argument). Provides:
//!
//! - register names and the unified 64-entry architectural namespace
//!   ([`reg`]),
//! - opcodes with functional-unit classes and operand shapes ([`op`]),
//! - the instruction word with operand/dependence accessors ([`inst`]),
//! - a fixed 16-byte binary encoding ([`encode`]),
//! - a programmatic assembler with labels and data allocation ([`asm`]),
//! - the program container ([`program`]),
//! - the p-thread table format attached to SPEAR binaries ([`pthread`]).
//!
//! Everything downstream — the functional interpreter, the cycle-level SMT
//! core, the SPEAR post-compiler, and the workloads — builds on this crate.

pub mod asm;
pub mod binfile;
pub mod encode;
pub mod inst;
pub mod lint;
pub mod op;
pub mod program;
pub mod pthread;
pub mod reg;
pub mod text;

pub use asm::Asm;
pub use inst::Inst;
pub use op::{FuClass, OpShape, Opcode};
pub use program::{DataImage, Program};
pub use pthread::{PThreadEntry, PThreadTable, SpearBinary};
pub use reg::Reg;
pub use text::{emit_asm, parse_asm, ParseError};
