//! Static diagnostics for SPEAR programs.
//!
//! Workload kernels are hand-written assembly; these lints catch the
//! common authoring mistakes before they turn into confusing simulation
//! results: unreachable instructions, reads of registers that no path has
//! written, and labels that nothing targets. `spearc` runs them on every
//! compile.

use crate::program::Program;
use crate::reg::{Reg, NUM_REGS};
use crate::{OpShape, Opcode};
use std::collections::VecDeque;
use std::fmt;

/// One diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Lint {
    /// No control path reaches this instruction.
    Unreachable {
        /// The dead instruction's PC.
        pc: u32,
    },
    /// A register is read on some reachable path before any instruction
    /// has written it (it reads as zero — legal, but usually a typo).
    ReadBeforeWrite {
        /// PC of the reading instruction.
        pc: u32,
        /// The register read.
        reg: Reg,
    },
    /// A label that no branch or jump targets (dead annotation).
    UnusedLabel {
        /// The label name.
        name: String,
    },
}

impl fmt::Display for Lint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Lint::Unreachable { pc } => write!(f, "pc {pc}: unreachable instruction"),
            Lint::ReadBeforeWrite { pc, reg } => {
                write!(f, "pc {pc}: {reg} may be read before it is written")
            }
            Lint::UnusedLabel { name } => write!(f, "label `{name}` is never targeted"),
        }
    }
}

/// Instruction-level successors (for reachability and dataflow).
fn successors(program: &Program, pc: u32) -> Vec<u32> {
    let inst = &program.insts[pc as usize];
    let n = program.len() as u32;
    let mut succ = Vec::with_capacity(2);
    match inst.op.shape() {
        OpShape::Branch => {
            succ.push(inst.imm as u32);
            if pc + 1 < n {
                succ.push(pc + 1);
            }
        }
        OpShape::Jump | OpShape::JumpLink => succ.push(inst.imm as u32),
        // Indirect jumps: statically unknown; conservatively assume the
        // instruction after any `jal` (the return point) — handled by
        // treating every instruction after a call site as reachable via
        // the call's fall-through, which JumpLink above already covers
        // for `jal`. A bare `jr` ends the path.
        OpShape::JumpReg | OpShape::JumpLinkReg => {
            if inst.op.shape() == OpShape::JumpLinkReg && pc + 1 < n {
                succ.push(pc + 1);
            }
        }
        _ => {
            if inst.op != Opcode::Halt && pc + 1 < n {
                succ.push(pc + 1);
            }
        }
    }
    succ
}

/// Run all lints over a (validated) program.
pub fn lint(program: &Program) -> Vec<Lint> {
    let n = program.len();
    if n == 0 {
        return Vec::new();
    }
    let mut out = Vec::new();

    // ---- reachability + may-be-uninitialized dataflow -----------------
    // Forward dataflow over instructions: `written[pc]` is the set of
    // registers definitely written on *every* path reaching pc (bitmask);
    // meet = intersection. Seeds: the entry with nothing written (r0 is
    // always "written").
    const R0_MASK: u64 = 1;
    let mut reachable = vec![false; n];
    let mut written_in: Vec<u64> = vec![u64::MAX; n];
    let mut work = VecDeque::new();
    let entry = program.entry as usize;
    reachable[entry] = true;
    written_in[entry] = R0_MASK;
    work.push_back(program.entry);
    // `jr` targets are unknown; treat every `jal` callee's return as
    // flowing from the call site (already modelled) and assume `jr`
    // returns to all recorded `jal` fall-throughs. For lint purposes the
    // simpler model above suffices; unmatched `jr` paths just end.
    while let Some(pc) = work.pop_front() {
        let inst = &program.insts[pc as usize];
        let mut written = written_in[pc as usize];
        // Check reads against the definitely-written set.
        for src in inst.live_srcs() {
            if written & (1u64 << src.index().min(63)) == 0 {
                let l = Lint::ReadBeforeWrite { pc, reg: src };
                if !out.contains(&l) {
                    out.push(l);
                }
            }
        }
        if let Some(d) = inst.dst() {
            written |= 1u64 << d.index().min(63);
        }
        for s in successors(program, pc) {
            let s_idx = s as usize;
            let new = if reachable[s_idx] {
                written_in[s_idx] & written
            } else {
                written
            };
            if !reachable[s_idx] || new != written_in[s_idx] {
                reachable[s_idx] = true;
                written_in[s_idx] = new;
                work.push_back(s);
            }
        }
    }
    for (pc, &r) in reachable.iter().enumerate() {
        if !r {
            out.push(Lint::Unreachable { pc: pc as u32 });
        }
    }

    // ---- unused labels --------------------------------------------------
    let targeted: std::collections::BTreeSet<u32> =
        program.insts.iter().filter_map(|i| i.target()).collect();
    for (name, &pc) in &program.labels {
        if !targeted.contains(&pc) && pc != program.entry {
            out.push(Lint::UnusedLabel {
                name: clone_name(name),
            });
        }
    }

    out.sort_by_key(|l| match l {
        Lint::Unreachable { pc } => (*pc, 0),
        Lint::ReadBeforeWrite { pc, .. } => (*pc, 1),
        Lint::UnusedLabel { .. } => (u32::MAX, 2),
    });
    out
}

fn clone_name(s: &str) -> String {
    s.to_string()
}

/// Number of registers coverable by the dataflow mask (one mask bit per
/// register — the 64-entry namespace fits a `u64` exactly).
pub const LINT_TRACKED_REGS: usize = NUM_REGS;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Asm;
    use crate::reg::*;

    #[test]
    fn clean_program_has_no_lints() {
        let mut a = Asm::new();
        a.li(R1, 5);
        a.label("loop");
        a.addi(R1, R1, -1);
        a.bne(R1, R0, "loop");
        a.halt();
        let p = a.finish().unwrap();
        assert_eq!(lint(&p), Vec::new());
    }

    #[test]
    fn detects_unreachable_after_jump() {
        let mut a = Asm::new();
        a.j("end");
        a.addi(R1, R1, 1); // dead
        a.label("end");
        a.halt();
        let p = a.finish().unwrap();
        let lints = lint(&p);
        assert!(lints.contains(&Lint::Unreachable { pc: 1 }), "{lints:?}");
    }

    #[test]
    fn detects_read_before_write() {
        let mut a = Asm::new();
        a.addi(R2, R1, 1); // r1 never written
        a.halt();
        let p = a.finish().unwrap();
        let lints = lint(&p);
        assert!(
            lints
                .iter()
                .any(|l| matches!(l, Lint::ReadBeforeWrite { pc: 0, reg } if *reg == R1)),
            "{lints:?}"
        );
    }

    #[test]
    fn r0_reads_are_fine() {
        let mut a = Asm::new();
        a.add(R1, R0, R0);
        a.halt();
        let p = a.finish().unwrap();
        assert_eq!(lint(&p), Vec::new());
    }

    #[test]
    fn write_on_one_arm_only_is_flagged() {
        // r5 written only on the taken arm; the join reads it.
        let mut a = Asm::new();
        a.li(R1, 1);
        a.beq(R1, R0, "skip");
        a.li(R5, 9);
        a.label("skip");
        a.addi(R6, R5, 1); // may read unwritten r5
        a.halt();
        let p = a.finish().unwrap();
        let lints = lint(&p);
        assert!(
            lints
                .iter()
                .any(|l| matches!(l, Lint::ReadBeforeWrite { reg, .. } if *reg == R5)),
            "{lints:?}"
        );
    }

    #[test]
    fn write_on_both_arms_is_clean() {
        let mut a = Asm::new();
        a.li(R1, 1);
        a.beq(R1, R0, "else");
        a.li(R5, 9);
        a.j("join");
        a.label("else");
        a.li(R5, 7);
        a.label("join");
        a.addi(R6, R5, 1);
        a.halt();
        let p = a.finish().unwrap();
        assert!(
            !lint(&p)
                .iter()
                .any(|l| matches!(l, Lint::ReadBeforeWrite { .. })),
            "{:?}",
            lint(&p)
        );
    }

    #[test]
    fn unused_label_reported() {
        let mut a = Asm::new();
        a.li(R1, 1);
        a.label("never"); // not the entry, never targeted
        a.li(R2, 2);
        a.halt();
        let p = a.finish().unwrap();
        assert!(lint(&p)
            .iter()
            .any(|l| matches!(l, Lint::UnusedLabel { name } if name == "never")));
    }

    #[test]
    fn workloads_are_lint_relevant_but_mostly_clean() {
        // Loop-carried reads (accumulators initialized with `li`) must not
        // trip the may-uninit analysis on a realistic kernel.
        let mut a = Asm::new();
        let xs = a.alloc_u64("xs", &[1, 2, 3, 4]);
        a.li(R1, xs as i64);
        a.li(R2, 4);
        a.li(R3, 0);
        a.label("loop");
        a.ld(R4, R1, 0);
        a.add(R3, R3, R4);
        a.addi(R1, R1, 8);
        a.addi(R2, R2, -1);
        a.bne(R2, R0, "loop");
        a.halt();
        let p = a.finish().unwrap();
        assert_eq!(lint(&p), Vec::new());
    }
}
