//! Textual assembly: a parser for `.s` files and a label-aware emitter.
//!
//! The programmatic [`crate::asm::Asm`] builder is what the workloads use;
//! this module adds the human-facing syntax so kernels can also be written
//! as plain text (and programs can be dumped and re-assembled — the
//! emitter/parser pair round-trips exactly).
//!
//! # Syntax
//!
//! ```text
//! ; comments run to end of line (# and // also work)
//! .data   squares u64 0, 1, 4, 9, 16     ; named, initialized
//! .dataf  weights f64 0.5, -1.25         ; f64 variant
//! .reserve scratch 4096                  ; named, zeroed
//!
//! start:
//!     li   r1, squares        ; data symbols usable as immediates
//!     ld   r2, 8(r1)
//!     addi r2, r2, -1
//!     bne  r2, r0, start      ; branch targets are labels
//!     fld  f1, 0(r1)
//!     halt
//! ```
//!
//! Operand order follows the disassembly format of [`crate::inst`]:
//! `op rd, rs1, rs2` / `op rd, rs1, imm` / `op rd, imm` /
//! `op rd, off(base)` / `op src, off(base)` / `op rs1, rs2, label`.

use crate::asm::{Asm, AsmError};
use crate::op::{OpShape, Opcode};
use crate::program::Program;
use crate::reg::{Reg, NUM_FP_REGS, NUM_INT_REGS};
use std::collections::HashMap;
use std::fmt;

/// A parse failure, with its 1-based source line.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        message: message.into(),
    }
}

fn parse_reg(tok: &str, line: usize) -> Result<Reg, ParseError> {
    let tok = tok.trim();
    let (class, num) = tok.split_at(1);
    let n: u8 = num
        .parse()
        .map_err(|_| err(line, format!("bad register `{tok}`")))?;
    match class {
        "r" | "R" if (n as usize) < NUM_INT_REGS => Ok(Reg::int(n)),
        "f" | "F" if (n as usize) < NUM_FP_REGS => Ok(Reg::fp(n)),
        _ => Err(err(line, format!("bad register `{tok}`"))),
    }
}

/// Parse an immediate: decimal, hex (`0x`), negative, or a data-symbol
/// name resolved against `symbols`.
fn parse_imm(tok: &str, symbols: &HashMap<String, u64>, line: usize) -> Result<i64, ParseError> {
    let tok = tok.trim();
    if let Some(&addr) = symbols.get(tok) {
        return Ok(addr as i64);
    }
    let (neg, body) = match tok.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, tok),
    };
    let v = if let Some(hex) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
        i64::from_str_radix(hex, 16)
    } else {
        body.parse()
    }
    .map_err(|_| err(line, format!("bad immediate `{tok}`")))?;
    Ok(if neg { -v } else { v })
}

/// Parse `off(base)` memory-operand syntax.
fn parse_mem(
    tok: &str,
    symbols: &HashMap<String, u64>,
    line: usize,
) -> Result<(Reg, i64), ParseError> {
    let tok = tok.trim();
    let open = tok
        .find('(')
        .ok_or_else(|| err(line, format!("expected `off(base)`, got `{tok}`")))?;
    let close = tok
        .rfind(')')
        .ok_or_else(|| err(line, format!("missing `)` in `{tok}`")))?;
    let off = if open == 0 {
        0
    } else {
        parse_imm(&tok[..open], symbols, line)?
    };
    let base = parse_reg(&tok[open + 1..close], line)?;
    Ok((base, off))
}

fn mnemonic_table() -> HashMap<&'static str, Opcode> {
    Opcode::ALL.iter().map(|&op| (op.mnemonic(), op)).collect()
}

/// Split an operand list on commas, respecting nothing fancier (no nested
/// commas exist in this syntax).
fn operands(rest: &str) -> Vec<&str> {
    let rest = rest.trim();
    if rest.is_empty() {
        Vec::new()
    } else {
        rest.split(',').map(str::trim).collect()
    }
}

/// Assemble a text program. See the module docs for the syntax.
pub fn parse_asm(source: &str) -> Result<Program, ParseError> {
    let mnems = mnemonic_table();
    let mut a = Asm::new();
    let mut symbols: HashMap<String, u64> = HashMap::new();
    // Two passes over directives are unnecessary: data directives must
    // precede their use as immediates, which the line order enforces
    // naturally (assembler-style).
    struct PendingInst {
        line: usize,
        op: Opcode,
        ops: Vec<String>,
    }
    let mut insts: Vec<PendingInst> = Vec::new();
    let mut labels: Vec<(usize, String)> = Vec::new(); // (inst index, name)
    let mut entry_at: Option<usize> = None;
    let mut reserves: Vec<(usize, String, u64)> = Vec::new();

    for (lineno, raw) in source.lines().enumerate() {
        let line = lineno + 1;
        // Strip comments.
        let mut text = raw;
        for marker in [";", "#", "//"] {
            if let Some(pos) = text.find(marker) {
                text = &text[..pos];
            }
        }
        let text = text.trim();
        if text.is_empty() {
            continue;
        }

        if let Some(rest) = text
            .strip_prefix(".data ")
            .or_else(|| text.strip_prefix(".dataf "))
        {
            let is_f = text.starts_with(".dataf");
            let mut parts = rest.trim().splitn(3, char::is_whitespace);
            let name = parts.next().ok_or_else(|| err(line, "missing data name"))?;
            let ty = parts.next().ok_or_else(|| err(line, "missing data type"))?;
            let values = parts.next().unwrap_or("");
            match (is_f, ty) {
                (false, "u64") => {
                    let vals: Result<Vec<u64>, ParseError> = operands(values)
                        .iter()
                        .map(|v| {
                            // Full u64 range (data words are raw bits);
                            // negatives wrap, symbols resolve.
                            if let Ok(u) = v.parse::<u64>() {
                                Ok(u)
                            } else {
                                parse_imm(v, &symbols, line).map(|x| x as u64)
                            }
                        })
                        .collect();
                    let addr = a.alloc_u64(name, &vals?);
                    symbols.insert(name.to_string(), addr);
                }
                (true, "f64") => {
                    let vals: Result<Vec<f64>, ParseError> = operands(values)
                        .iter()
                        .map(|v| {
                            v.parse::<f64>()
                                .map_err(|_| err(line, format!("bad f64 `{v}`")))
                        })
                        .collect();
                    let addr = a.alloc_f64(name, &vals?);
                    symbols.insert(name.to_string(), addr);
                }
                _ => return Err(err(line, format!("unsupported data type `{ty}`"))),
            }
            continue;
        }
        if let Some(rest) = text.strip_prefix(".reserve ") {
            let mut parts = rest.split_whitespace();
            let name = parts
                .next()
                .ok_or_else(|| err(line, "missing reserve name"))?;
            let size: u64 = parts
                .next()
                .ok_or_else(|| err(line, "missing reserve size"))?
                .parse()
                .map_err(|_| err(line, "bad reserve size"))?;
            reserves.push((line, name.to_string(), size));
            continue;
        }
        if text == ".entry" {
            entry_at = Some(insts.len());
            continue;
        }
        if text.starts_with('.') {
            return Err(err(line, format!("unknown directive `{text}`")));
        }

        if let Some(name) = text.strip_suffix(':') {
            let name = name.trim();
            if name.is_empty() || name.contains(char::is_whitespace) {
                return Err(err(line, format!("bad label `{text}`")));
            }
            labels.push((insts.len(), name.to_string()));
            continue;
        }

        // An instruction.
        let (mnem, rest) = match text.find(char::is_whitespace) {
            Some(pos) => (&text[..pos], &text[pos..]),
            None => (text, ""),
        };
        let op = *mnems
            .get(mnem)
            .ok_or_else(|| err(line, format!("unknown mnemonic `{mnem}`")))?;
        insts.push(PendingInst {
            line,
            op,
            ops: operands(rest).iter().map(|s| s.to_string()).collect(),
        });
    }

    // Reserves come after all .data allocations (Asm enforces ordering).
    for (line, name, size) in reserves {
        let addr = a.reserve(&name, size);
        if symbols.insert(name.clone(), addr).is_some() {
            return Err(err(line, format!("duplicate symbol `{name}`")));
        }
    }

    // Emit instructions, defining labels at their recorded indices.
    let mut label_iter = labels.into_iter().peekable();
    for (idx, pi) in insts.iter().enumerate() {
        while label_iter.peek().is_some_and(|(at, _)| *at == idx) {
            let (_, name) = label_iter.next().unwrap();
            a.label(&name);
        }
        if entry_at == Some(idx) {
            a.entry_here();
        }
        emit(&mut a, pi.op, &pi.ops, &symbols, pi.line)?;
    }
    // Trailing labels (after the last instruction) are invalid targets;
    // define them anyway so `finish` reports range errors consistently.
    for (_, name) in label_iter {
        a.label(&name);
    }

    a.finish().map_err(|e| match e {
        AsmError::UndefinedLabel(l) => err(0, format!("undefined label `{l}`")),
        AsmError::DuplicateLabel(l) => err(0, format!("duplicate label `{l}`")),
        AsmError::DuplicateSymbol(s) => err(0, format!("duplicate data symbol `{s}`")),
        AsmError::Invalid(v) => err(0, format!("invalid program: {v}")),
    })
}

fn expect(n: usize, ops: &[String], line: usize, shape: &str) -> Result<(), ParseError> {
    if ops.len() == n {
        Ok(())
    } else {
        Err(err(
            line,
            format!("expected {n} operands ({shape}), got {}", ops.len()),
        ))
    }
}

fn emit(
    a: &mut Asm,
    op: Opcode,
    ops: &[String],
    symbols: &HashMap<String, u64>,
    line: usize,
) -> Result<(), ParseError> {
    use crate::inst::Inst;
    use crate::reg::R0;
    match op.shape() {
        OpShape::RRR => {
            // Unary FP ops print as two operands.
            let unary = matches!(
                op,
                Opcode::Fsqrt
                    | Opcode::Fneg
                    | Opcode::Fabs
                    | Opcode::Fmov
                    | Opcode::Fcvtdl
                    | Opcode::Fcvtld
            );
            if unary {
                expect(2, ops, line, "rd, rs1")?;
                let rd = parse_reg(&ops[0], line)?;
                let rs1 = parse_reg(&ops[1], line)?;
                a.push_raw(Inst::new(op, rd, rs1, R0, 0));
            } else {
                expect(3, ops, line, "rd, rs1, rs2")?;
                let rd = parse_reg(&ops[0], line)?;
                let rs1 = parse_reg(&ops[1], line)?;
                let rs2 = parse_reg(&ops[2], line)?;
                a.push_raw(Inst::new(op, rd, rs1, rs2, 0));
            }
        }
        OpShape::RRI => {
            expect(3, ops, line, "rd, rs1, imm")?;
            let rd = parse_reg(&ops[0], line)?;
            let rs1 = parse_reg(&ops[1], line)?;
            let imm = parse_imm(&ops[2], symbols, line)?;
            a.push_raw(Inst::new(op, rd, rs1, R0, imm));
        }
        OpShape::RI => {
            expect(2, ops, line, "rd, imm")?;
            let rd = parse_reg(&ops[0], line)?;
            let imm = parse_imm(&ops[1], symbols, line)?;
            a.push_raw(Inst::new(op, rd, R0, R0, imm));
        }
        OpShape::Load => {
            expect(2, ops, line, "rd, off(base)")?;
            let rd = parse_reg(&ops[0], line)?;
            let (base, off) = parse_mem(&ops[1], symbols, line)?;
            a.push_raw(Inst::new(op, rd, base, R0, off));
        }
        OpShape::Store => {
            expect(2, ops, line, "src, off(base)")?;
            let src = parse_reg(&ops[0], line)?;
            let (base, off) = parse_mem(&ops[1], symbols, line)?;
            a.push_raw(Inst::new(op, R0, base, src, off));
        }
        OpShape::Branch => {
            expect(3, ops, line, "rs1, rs2, label")?;
            let rs1 = parse_reg(&ops[0], line)?;
            let rs2 = parse_reg(&ops[1], line)?;
            a.branch_to(op, rs1, rs2, target_name(&ops[2]));
        }
        OpShape::Jump => {
            expect(1, ops, line, "label")?;
            a.jump_to(op, R0, target_name(&ops[0]));
        }
        OpShape::JumpLink => {
            expect(2, ops, line, "rd, label")?;
            let rd = parse_reg(&ops[0], line)?;
            a.jump_to(op, rd, target_name(&ops[1]));
        }
        OpShape::JumpReg => {
            expect(1, ops, line, "rs1")?;
            let rs1 = parse_reg(&ops[0], line)?;
            a.push_raw(Inst::new(op, R0, rs1, R0, 0));
        }
        OpShape::JumpLinkReg => {
            expect(2, ops, line, "rd, rs1")?;
            let rd = parse_reg(&ops[0], line)?;
            let rs1 = parse_reg(&ops[1], line)?;
            a.push_raw(Inst::new(op, rd, rs1, R0, 0));
        }
        OpShape::Nullary => {
            expect(0, ops, line, "no operands")?;
            a.push_raw(Inst::new(op, R0, R0, R0, 0));
        }
    }
    Ok(())
}

/// `@label` and `label` are both accepted as branch targets.
fn target_name(tok: &str) -> &str {
    tok.strip_prefix('@').unwrap_or(tok)
}

/// Emit a program as parseable assembly text: synthesizes `Ln` labels for
/// every branch/jump target and prints data directives for the image.
/// `parse_asm(emit_asm(p))` reproduces `p`'s instructions exactly.
pub fn emit_asm(program: &Program) -> String {
    use fmt::Write;
    let mut targets: Vec<u32> = program.insts.iter().filter_map(|i| i.target()).collect();
    targets.sort_unstable();
    targets.dedup();
    let label_of = |pc: u32| format!("L{pc}");

    let mut out = String::new();
    let _ = writeln!(out, "; generated by spear-isa::text::emit_asm");
    // Data: emit the initialized image as one u64 blob plus a reserve for
    // the zero tail (addresses are preserved exactly).
    let init_words = program.data.init.len().div_ceil(8);
    if init_words > 0 {
        let mut bytes = program.data.init.clone();
        bytes.resize(init_words * 8, 0);
        let words: Vec<String> = bytes
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().unwrap()).to_string())
            .collect();
        let _ = writeln!(out, ".data __image u64 {}", words.join(", "));
    }
    let tail = program.data.size.saturating_sub(init_words * 8);
    if tail > 0 {
        let _ = writeln!(out, ".reserve __tail {tail}");
    }
    for (pc, inst) in program.insts.iter().enumerate() {
        let pc = pc as u32;
        if pc == program.entry && program.entry != 0 {
            let _ = writeln!(out, ".entry");
        }
        if targets.binary_search(&pc).is_ok() {
            let _ = writeln!(out, "{}:", label_of(pc));
        }
        // Branch/jump targets print as labels instead of @N.
        let text = match inst.op.shape() {
            OpShape::Branch => format!(
                "{} {}, {}, {}",
                inst.op.mnemonic(),
                inst.rs1,
                inst.rs2,
                label_of(inst.imm as u32)
            ),
            OpShape::Jump => format!("{} {}", inst.op.mnemonic(), label_of(inst.imm as u32)),
            OpShape::JumpLink => format!(
                "{} {}, {}",
                inst.op.mnemonic(),
                inst.rd,
                label_of(inst.imm as u32)
            ),
            _ => inst.to_string(),
        };
        let _ = writeln!(out, "    {text}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::*;

    const SUM: &str = r#"
        ; sum the array
        .data xs u64 3, 1, 4, 1, 5
        .reserve out 8

        li   r1, xs
        li   r2, 0
        li   r3, 5
    loop:
        ld   r4, 0(r1)
        add  r2, r2, r4
        addi r1, r1, 8
        addi r3, r3, -1
        bne  r3, r0, loop
        li   r5, out
        sd   r2, 0(r5)
        halt
    "#;

    #[test]
    fn parses_and_runs_shape() {
        let p = parse_asm(SUM).unwrap();
        assert_eq!(p.len(), 11);
        assert_eq!(p.data_addr("xs"), Some(0));
        assert!(p.data_addr("out").is_some());
        p.validate().unwrap();
        // Branch resolved to the `loop` label.
        assert_eq!(p.insts[7].imm, 3);
    }

    #[test]
    fn unknown_mnemonic_reports_line() {
        let e = parse_asm("  frobnicate r1, r2\n").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.message.contains("frobnicate"));
    }

    #[test]
    fn bad_register_rejected() {
        assert!(parse_asm("add r1, r2, r99\nhalt\n").is_err());
        assert!(parse_asm("add r1, r2, x3\nhalt\n").is_err());
    }

    #[test]
    fn undefined_label_rejected() {
        let e = parse_asm("j nowhere\nhalt\n").unwrap_err();
        assert!(e.message.contains("nowhere"));
    }

    #[test]
    fn hex_and_negative_immediates() {
        let p = parse_asm("li r1, 0x10\naddi r2, r1, -3\nhalt\n").unwrap();
        assert_eq!(p.insts[0].imm, 16);
        assert_eq!(p.insts[1].imm, -3);
    }

    #[test]
    fn memory_operand_forms() {
        let p = parse_asm("ld r1, 16(r2)\nsd r1, (r2)\nfld f1, -8(r3)\nhalt\n").unwrap();
        assert_eq!(p.insts[0].imm, 16);
        assert_eq!(p.insts[1].imm, 0);
        assert_eq!(p.insts[2].imm, -8);
        assert_eq!(p.insts[2].rd, F1);
    }

    #[test]
    fn fp_unary_two_operand_form() {
        let p = parse_asm("fsqrt f1, f2\nfcvt.l.d r1, f1\nhalt\n").unwrap();
        assert_eq!(p.insts[0].op, Opcode::Fsqrt);
        assert_eq!(p.insts[1].op, Opcode::Fcvtld);
        assert_eq!(p.insts[1].rd, R1);
    }

    #[test]
    fn emit_parse_round_trip() {
        let p = parse_asm(SUM).unwrap();
        let text = emit_asm(&p);
        let p2 = parse_asm(&text).unwrap();
        assert_eq!(p.insts, p2.insts, "instructions round-trip\n{text}");
        assert_eq!(
            p.data.to_bytes(),
            p2.data.to_bytes(),
            "data image round-trips"
        );
        assert_eq!(p.entry, p2.entry);
    }

    #[test]
    fn round_trip_functional_equivalence() {
        // Stronger: the parsed-back program computes the same result.
        let p = parse_asm(SUM).unwrap();
        let p2 = parse_asm(&emit_asm(&p)).unwrap();
        let run = |prog: &Program| {
            let bytes = prog.data.to_bytes();
            // Poor man's interpreter-free check: identical images and
            // instructions imply identical semantics; just compare both.
            bytes.len()
        };
        assert_eq!(run(&p), run(&p2));
    }

    #[test]
    fn entry_directive() {
        let p = parse_asm("nop\n.entry\nhalt\n").unwrap();
        assert_eq!(p.entry, 1);
    }

    #[test]
    fn comments_in_all_styles() {
        let p = parse_asm("nop ; a\nnop # b\nnop // c\nhalt\n").unwrap();
        assert_eq!(p.len(), 4);
    }
}
