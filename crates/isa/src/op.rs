//! Opcodes and their static properties.
//!
//! Each opcode carries a [`FuClass`] (which functional-unit pool executes it
//! and its base latency class) and a shape describing which of `rd`, `rs1`,
//! `rs2`, `imm` it uses. These properties drive the decoder, the renamer, the
//! functional interpreter, and the compiler's dependence analysis, so they
//! live here in one place.

use std::fmt;

/// Functional-unit class an operation executes on.
///
/// Mirrors the `sim-outorder` resource classes behind Table 2 of the paper:
/// four integer ALUs plus one integer multiply/divide unit, four FP ALUs plus
/// one FP multiply/divide unit, and two memory ports.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum FuClass {
    /// Integer add/logic/shift/compare; 1-cycle.
    IntAlu,
    /// Integer multiply; executes on the MUL/DIV unit.
    IntMul,
    /// Integer divide/remainder; executes on the MUL/DIV unit.
    IntDiv,
    /// FP add/compare/convert/move; executes on an FP ALU.
    FpAlu,
    /// FP multiply; executes on the FP MUL/DIV unit.
    FpMul,
    /// FP divide/sqrt; executes on the FP MUL/DIV unit.
    FpDiv,
    /// Loads; need a memory port plus the cache access time.
    RdPort,
    /// Stores; need a memory port.
    WrPort,
    /// Control transfers resolve on an integer ALU.
    Ctrl,
    /// No functional unit required (`nop`, `halt`).
    None,
}

/// Operand shape: which fields of an [`crate::Inst`] are meaningful.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum OpShape {
    /// `rd = rs1 op rs2`
    RRR,
    /// `rd = rs1 op imm`
    RRI,
    /// `rd = imm`
    RI,
    /// `rd = mem[rs1 + imm]`
    Load,
    /// `mem[rs1 + imm] = rs2`
    Store,
    /// `if rs1 cmp rs2 goto imm`
    Branch,
    /// `goto imm`
    Jump,
    /// `rd = pc + 1; goto imm`
    JumpLink,
    /// `goto rs1`
    JumpReg,
    /// `rd = pc + 1; goto rs1`
    JumpLinkReg,
    /// No operands.
    Nullary,
}

macro_rules! opcodes {
    ($(($name:ident, $mnem:literal, $class:ident, $shape:ident)),* $(,)?) => {
        /// Every operation in the SPEAR ISA.
        #[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
        #[repr(u16)]
        pub enum Opcode {
            $($name),*
        }

        impl Opcode {
            /// All opcodes, in encoding order.
            pub const ALL: &'static [Opcode] = &[$(Opcode::$name),*];

            /// Assembly mnemonic.
            pub const fn mnemonic(self) -> &'static str {
                match self { $(Opcode::$name => $mnem),* }
            }

            /// Functional-unit class.
            pub const fn fu_class(self) -> FuClass {
                match self { $(Opcode::$name => FuClass::$class),* }
            }

            /// Operand shape.
            pub const fn shape(self) -> OpShape {
                match self { $(Opcode::$name => OpShape::$shape),* }
            }

            /// Stable numeric encoding of the opcode.
            pub const fn code(self) -> u16 {
                self as u16
            }

            /// Decode a numeric opcode; `None` if out of range.
            pub fn from_code(code: u16) -> Option<Opcode> {
                Self::ALL.get(code as usize).copied()
            }
        }
    };
}

opcodes! {
    // Integer register-register.
    (Add,  "add",  IntAlu, RRR),
    (Sub,  "sub",  IntAlu, RRR),
    (Mul,  "mul",  IntMul, RRR),
    (Div,  "div",  IntDiv, RRR),
    (Rem,  "rem",  IntDiv, RRR),
    (And,  "and",  IntAlu, RRR),
    (Or,   "or",   IntAlu, RRR),
    (Xor,  "xor",  IntAlu, RRR),
    (Sll,  "sll",  IntAlu, RRR),
    (Srl,  "srl",  IntAlu, RRR),
    (Sra,  "sra",  IntAlu, RRR),
    (Slt,  "slt",  IntAlu, RRR),
    (Sltu, "sltu", IntAlu, RRR),
    // Integer register-immediate.
    (Addi, "addi", IntAlu, RRI),
    (Andi, "andi", IntAlu, RRI),
    (Ori,  "ori",  IntAlu, RRI),
    (Xori, "xori", IntAlu, RRI),
    (Slli, "slli", IntAlu, RRI),
    (Srli, "srli", IntAlu, RRI),
    (Srai, "srai", IntAlu, RRI),
    (Slti, "slti", IntAlu, RRI),
    (Muli, "muli", IntMul, RRI),
    // Load immediate (full 64-bit immediate; our encoding has room).
    (Li,   "li",   IntAlu, RI),
    // Loads (sign- and zero-extending byte/half/word, plus doubleword).
    (Lb,   "lb",   RdPort, Load),
    (Lbu,  "lbu",  RdPort, Load),
    (Lh,   "lh",   RdPort, Load),
    (Lhu,  "lhu",  RdPort, Load),
    (Lw,   "lw",   RdPort, Load),
    (Lwu,  "lwu",  RdPort, Load),
    (Ld,   "ld",   RdPort, Load),
    // FP load/store (f64).
    (Fld,  "fld",  RdPort, Load),
    (Fsd,  "fsd",  WrPort, Store),
    // Stores.
    (Sb,   "sb",   WrPort, Store),
    (Sh,   "sh",   WrPort, Store),
    (Sw,   "sw",   WrPort, Store),
    (Sd,   "sd",   WrPort, Store),
    // Floating point arithmetic (f64).
    (Fadd, "fadd", FpAlu, RRR),
    (Fsub, "fsub", FpAlu, RRR),
    (Fmul, "fmul", FpMul, RRR),
    (Fdiv, "fdiv", FpDiv, RRR),
    (Fsqrt,"fsqrt",FpDiv, RRR),
    (Fneg, "fneg", FpAlu, RRR),
    (Fabs, "fabs", FpAlu, RRR),
    (Fmin, "fmin", FpAlu, RRR),
    (Fmax, "fmax", FpAlu, RRR),
    (Fmov, "fmov", FpAlu, RRR),
    // FP compares (integer destination).
    (Feq,  "feq",  FpAlu, RRR),
    (Flt,  "flt",  FpAlu, RRR),
    (Fle,  "fle",  FpAlu, RRR),
    // Conversions (cross the register classes).
    (Fcvtdl, "fcvt.d.l", FpAlu, RRR), // FP rd <- int rs1
    (Fcvtld, "fcvt.l.d", FpAlu, RRR), // int rd <- FP rs1
    // Branches (absolute instruction-index target in imm).
    (Beq,  "beq",  Ctrl, Branch),
    (Bne,  "bne",  Ctrl, Branch),
    (Blt,  "blt",  Ctrl, Branch),
    (Bge,  "bge",  Ctrl, Branch),
    (Bltu, "bltu", Ctrl, Branch),
    (Bgeu, "bgeu", Ctrl, Branch),
    // Jumps.
    (J,    "j",    Ctrl, Jump),
    (Jal,  "jal",  Ctrl, JumpLink),
    (Jr,   "jr",   Ctrl, JumpReg),
    (Jalr, "jalr", Ctrl, JumpLinkReg),
    // Misc.
    (Nop,  "nop",  None, Nullary),
    (Halt, "halt", None, Nullary),
}

impl Opcode {
    /// True for all load operations (integer and FP).
    #[inline]
    pub fn is_load(self) -> bool {
        self.shape() == OpShape::Load
    }

    /// True for all store operations (integer and FP).
    #[inline]
    pub fn is_store(self) -> bool {
        self.shape() == OpShape::Store
    }

    /// True for loads and stores.
    #[inline]
    pub fn is_mem(self) -> bool {
        self.is_load() || self.is_store()
    }

    /// True for conditional branches only.
    #[inline]
    pub fn is_cond_branch(self) -> bool {
        self.shape() == OpShape::Branch
    }

    /// True for any instruction that can redirect the PC.
    #[inline]
    pub fn is_ctrl(self) -> bool {
        matches!(
            self.shape(),
            OpShape::Branch
                | OpShape::Jump
                | OpShape::JumpLink
                | OpShape::JumpReg
                | OpShape::JumpLinkReg
        )
    }

    /// True for control transfers whose target is not in the instruction
    /// word (register-indirect jumps) — these need the BTB to predict.
    #[inline]
    pub fn is_indirect(self) -> bool {
        matches!(self.shape(), OpShape::JumpReg | OpShape::JumpLinkReg)
    }

    /// Number of bytes a memory operation moves; 0 for non-memory ops.
    pub fn mem_width(self) -> usize {
        use Opcode::*;
        match self {
            Lb | Lbu | Sb => 1,
            Lh | Lhu | Sh => 2,
            Lw | Lwu | Sw => 4,
            Ld | Sd | Fld | Fsd => 8,
            _ => 0,
        }
    }

    /// Whether the load destination (or store source) is a floating-point
    /// register.
    pub fn mem_is_fp(self) -> bool {
        matches!(self, Opcode::Fld | Opcode::Fsd)
    }
}

impl fmt::Display for Opcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn code_round_trip() {
        for &op in Opcode::ALL {
            assert_eq!(Opcode::from_code(op.code()), Some(op));
        }
        assert_eq!(Opcode::from_code(u16::MAX), Option::None);
    }

    #[test]
    fn mnemonics_unique() {
        let mut seen = std::collections::HashSet::new();
        for &op in Opcode::ALL {
            assert!(seen.insert(op.mnemonic()), "duplicate mnemonic {}", op);
        }
    }

    #[test]
    fn loads_and_stores_have_widths() {
        for &op in Opcode::ALL {
            if op.is_mem() {
                assert!(op.mem_width() > 0, "{op} lacks a width");
            } else {
                assert_eq!(op.mem_width(), 0, "{op} should not have a width");
            }
        }
    }

    #[test]
    fn control_classification() {
        assert!(Opcode::Beq.is_cond_branch());
        assert!(Opcode::J.is_ctrl() && !Opcode::J.is_cond_branch());
        assert!(Opcode::Jr.is_indirect());
        assert!(!Opcode::Add.is_ctrl());
    }

    #[test]
    fn fu_classes_match_intuition() {
        assert_eq!(Opcode::Add.fu_class(), FuClass::IntAlu);
        assert_eq!(Opcode::Mul.fu_class(), FuClass::IntMul);
        assert_eq!(Opcode::Fdiv.fu_class(), FuClass::FpDiv);
        assert_eq!(Opcode::Ld.fu_class(), FuClass::RdPort);
        assert_eq!(Opcode::Sd.fu_class(), FuClass::WrPort);
    }
}
