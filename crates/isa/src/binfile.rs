//! The SPEAR executable file format.
//!
//! Module ④ of the paper's compiler "attaches the p-thread information to
//! the SPEAR binary"; this module defines that on-disk container: the
//! program text (fixed 16-byte instruction words), the initial data image,
//! the symbol tables, and the p-thread table — everything the simulator's
//! loader needs, in one deterministic little-endian blob.
//!
//! ```text
//! "SPEARBIN"  magic          (8 bytes)
//! u32         format version (currently 1)
//! u32         entry pc
//! u32         instruction count, then count × 16-byte words
//! u64         initialized data length, then the bytes
//! u64         total data size
//! u32         label count,   then (u16 len, name, u32 pc)*
//! u32         symbol count,  then (u16 len, name, u64 addr)*
//! u32         p-thread count, then per entry:
//!               u32 dload_pc
//!               u32 member count, u32 members…
//!               u16 live-in count, u8 register indices…
//!               u16 region loop-header count, u32 headers…
//!               f64 region d-cycle
//!               u64 profiled misses
//! ```

use crate::encode::{decode_text, encode_text, DecodeError};
use crate::program::{DataImage, Program};
use crate::pthread::{PThreadEntry, PThreadTable, RegionInfo};
use crate::reg::{Reg, NUM_REGS};
use crate::SpearBinary;
use bytes::{Buf, BufMut};
use std::collections::BTreeMap;
use std::fmt;

const MAGIC: &[u8; 8] = b"SPEARBIN";
const VERSION: u32 = 1;

/// Errors while loading a SPEAR binary file.
#[derive(Debug, Clone, PartialEq)]
pub enum BinError {
    /// Missing or wrong magic bytes.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u32),
    /// Ran out of bytes mid-structure.
    Truncated(&'static str),
    /// A name was not valid UTF-8.
    BadName,
    /// Instruction text failed to decode.
    BadText(DecodeError),
    /// A register index was out of range.
    BadReg(u8),
    /// The loaded binary failed validation.
    Invalid(String),
}

impl fmt::Display for BinError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BinError::BadMagic => write!(f, "not a SPEAR binary (bad magic)"),
            BinError::BadVersion(v) => write!(f, "unsupported format version {v}"),
            BinError::Truncated(what) => write!(f, "truncated while reading {what}"),
            BinError::BadName => write!(f, "non-UTF-8 name"),
            BinError::BadText(e) => write!(f, "bad instruction text: {e}"),
            BinError::BadReg(r) => write!(f, "register index {r} out of range"),
            BinError::Invalid(e) => write!(f, "invalid binary: {e}"),
        }
    }
}

impl std::error::Error for BinError {}

fn put_name(out: &mut Vec<u8>, name: &str) {
    out.put_u16_le(name.len() as u16);
    out.put_slice(name.as_bytes());
}

fn get_name(buf: &mut &[u8]) -> Result<String, BinError> {
    if buf.remaining() < 2 {
        return Err(BinError::Truncated("name length"));
    }
    let len = buf.get_u16_le() as usize;
    if buf.remaining() < len {
        return Err(BinError::Truncated("name bytes"));
    }
    let s = String::from_utf8(buf[..len].to_vec()).map_err(|_| BinError::BadName)?;
    buf.advance(len);
    Ok(s)
}

fn need(buf: &&[u8], n: usize, what: &'static str) -> Result<(), BinError> {
    if buf.remaining() < n {
        Err(BinError::Truncated(what))
    } else {
        Ok(())
    }
}

/// Serialize a SPEAR binary to bytes.
pub fn save(binary: &SpearBinary) -> Vec<u8> {
    let p = &binary.program;
    let mut out = Vec::with_capacity(64 + p.insts.len() * 16 + p.data.init.len());
    out.put_slice(MAGIC);
    out.put_u32_le(VERSION);
    out.put_u32_le(p.entry);
    out.put_u32_le(p.insts.len() as u32);
    out.extend_from_slice(&encode_text(&p.insts));
    out.put_u64_le(p.data.init.len() as u64);
    out.put_slice(&p.data.init);
    out.put_u64_le(p.data.size as u64);
    out.put_u32_le(p.labels.len() as u32);
    for (name, &pc) in &p.labels {
        put_name(&mut out, name);
        out.put_u32_le(pc);
    }
    out.put_u32_le(p.data_symbols.len() as u32);
    for (name, &addr) in &p.data_symbols {
        put_name(&mut out, name);
        out.put_u64_le(addr);
    }
    out.put_u32_le(binary.table.entries.len() as u32);
    for e in &binary.table.entries {
        out.put_u32_le(e.dload_pc);
        out.put_u32_le(e.members.len() as u32);
        for &m in &e.members {
            out.put_u32_le(m);
        }
        out.put_u16_le(e.live_ins.len() as u16);
        for r in &e.live_ins {
            out.put_u8(r.index() as u8);
        }
        out.put_u16_le(e.region.loop_headers.len() as u16);
        for &h in &e.region.loop_headers {
            out.put_u32_le(h);
        }
        out.put_f64_le(e.region.dcycle);
        out.put_u64_le(e.profiled_misses);
    }
    out
}

/// Deserialize and validate a SPEAR binary.
pub fn load(mut buf: &[u8]) -> Result<SpearBinary, BinError> {
    need(&buf, 8, "magic")?;
    if &buf[..8] != MAGIC {
        return Err(BinError::BadMagic);
    }
    buf.advance(8);
    need(&buf, 4, "version")?;
    let version = buf.get_u32_le();
    if version != VERSION {
        return Err(BinError::BadVersion(version));
    }
    need(&buf, 8, "header")?;
    let entry = buf.get_u32_le();
    let n_insts = buf.get_u32_le() as usize;
    need(&buf, n_insts * 16, "instruction text")?;
    let insts = decode_text(&buf[..n_insts * 16]).map_err(BinError::BadText)?;
    buf.advance(n_insts * 16);

    need(&buf, 8, "data length")?;
    let init_len = buf.get_u64_le() as usize;
    need(&buf, init_len, "data image")?;
    let init = buf[..init_len].to_vec();
    buf.advance(init_len);
    need(&buf, 8, "data size")?;
    let size = buf.get_u64_le() as usize;

    need(&buf, 4, "label count")?;
    let n_labels = buf.get_u32_le();
    let mut labels = BTreeMap::new();
    for _ in 0..n_labels {
        let name = get_name(&mut buf)?;
        need(&buf, 4, "label pc")?;
        labels.insert(name, buf.get_u32_le());
    }
    need(&buf, 4, "symbol count")?;
    let n_syms = buf.get_u32_le();
    let mut data_symbols = BTreeMap::new();
    for _ in 0..n_syms {
        let name = get_name(&mut buf)?;
        need(&buf, 8, "symbol address")?;
        data_symbols.insert(name, buf.get_u64_le());
    }

    need(&buf, 4, "p-thread count")?;
    let n_entries = buf.get_u32_le();
    let mut entries = Vec::with_capacity(n_entries as usize);
    for _ in 0..n_entries {
        need(&buf, 8, "p-thread header")?;
        let dload_pc = buf.get_u32_le();
        let n_members = buf.get_u32_le() as usize;
        need(&buf, n_members * 4, "p-thread members")?;
        let members = (0..n_members).map(|_| buf.get_u32_le()).collect();
        need(&buf, 2, "live-in count")?;
        let n_live = buf.get_u16_le() as usize;
        need(&buf, n_live, "live-ins")?;
        let mut live_ins = Vec::with_capacity(n_live);
        for _ in 0..n_live {
            let idx = buf.get_u8();
            if (idx as usize) >= NUM_REGS {
                return Err(BinError::BadReg(idx));
            }
            live_ins.push(Reg::from_index(idx));
        }
        need(&buf, 2, "region header count")?;
        let n_headers = buf.get_u16_le() as usize;
        need(&buf, n_headers * 4 + 16, "region")?;
        let loop_headers = (0..n_headers).map(|_| buf.get_u32_le()).collect();
        let dcycle = buf.get_f64_le();
        let profiled_misses = buf.get_u64_le();
        entries.push(PThreadEntry {
            dload_pc,
            members,
            live_ins,
            region: RegionInfo {
                loop_headers,
                dcycle,
            },
            profiled_misses,
        });
    }

    let binary = SpearBinary {
        program: Program {
            insts,
            labels,
            data_symbols,
            data: DataImage { init, size },
            entry,
        },
        table: PThreadTable { entries },
    };
    binary.validate().map_err(BinError::Invalid)?;
    Ok(binary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Asm;
    use crate::reg::*;

    fn sample() -> SpearBinary {
        let mut a = Asm::new();
        let xs = a.alloc_u64("xs", &[1, 2, 3]);
        a.reserve("buf", 100);
        a.li(R1, xs as i64);
        a.label("loop");
        a.ld(R2, R1, 0);
        a.addi(R1, R1, 8);
        a.bne(R2, R0, "loop");
        a.halt();
        let program = a.finish().unwrap();
        let table = PThreadTable {
            entries: vec![PThreadEntry {
                dload_pc: 1,
                members: vec![1, 2],
                live_ins: vec![R1],
                region: RegionInfo {
                    loop_headers: vec![1],
                    dcycle: 42.5,
                },
                profiled_misses: 777,
            }],
        };
        SpearBinary { program, table }
    }

    #[test]
    fn round_trip() {
        let b = sample();
        let bytes = save(&b);
        let loaded = load(&bytes).unwrap();
        assert_eq!(loaded.program.insts, b.program.insts);
        assert_eq!(loaded.program.labels, b.program.labels);
        assert_eq!(loaded.program.data_symbols, b.program.data_symbols);
        assert_eq!(loaded.program.data, b.program.data);
        assert_eq!(loaded.program.entry, b.program.entry);
        assert_eq!(loaded.table, b.table);
    }

    #[test]
    fn rejects_bad_magic() {
        let mut bytes = save(&sample());
        bytes[0] = b'X';
        assert!(matches!(load(&bytes), Err(BinError::BadMagic)));
    }

    #[test]
    fn rejects_bad_version() {
        let mut bytes = save(&sample());
        bytes[8] = 99;
        assert!(matches!(load(&bytes), Err(BinError::BadVersion(99))));
    }

    #[test]
    fn rejects_truncation_everywhere() {
        let bytes = save(&sample());
        for cut in [0, 4, 8, 12, 20, bytes.len() / 2, bytes.len() - 1] {
            assert!(load(&bytes[..cut]).is_err(), "cut at {cut} must fail");
        }
    }

    #[test]
    fn rejects_corrupted_table() {
        let b = sample();
        let mut bytes = save(&b);
        // Flip the d-load pc in the table to something out of range; the
        // table is at the very end: dload_pc is 4+… walk from the back:
        // last 8 bytes misses, 8 dcycle, 4 header, 2 hc, 1 live, 2 lc,
        // 8 members, 4 mc, 4 dload_pc.
        let pos = bytes.len() - (8 + 8 + 4 + 2 + 1 + 2 + 8 + 4 + 4);
        bytes[pos..pos + 4].copy_from_slice(&999u32.to_le_bytes());
        assert!(matches!(load(&bytes), Err(BinError::Invalid(_))));
    }

    #[test]
    fn plain_binary_round_trips() {
        let b = SpearBinary::plain(sample().program);
        let loaded = load(&save(&b)).unwrap();
        assert!(loaded.table.is_empty());
    }
}
