//! Programmatic assembler.
//!
//! Workloads and tests build programs through [`Asm`]: one method per
//! instruction, string labels with forward references, and named data-memory
//! allocations. [`Asm::finish`] resolves labels, validates the program, and
//! hands back a [`Program`].
//!
//! ```
//! use spear_isa::asm::Asm;
//! use spear_isa::reg::*;
//!
//! let mut a = Asm::new();
//! let xs = a.alloc_u64("xs", &[3, 1, 4, 1, 5]);
//! a.li(R1, xs as i64);      // cursor
//! a.li(R2, 0);              // sum
//! a.li(R3, 5);              // remaining
//! a.label("loop");
//! a.ld(R4, R1, 0);
//! a.add(R2, R2, R4);
//! a.addi(R1, R1, 8);
//! a.addi(R3, R3, -1);
//! a.bne(R3, R0, "loop");
//! a.halt();
//! let prog = a.finish().unwrap();
//! assert_eq!(prog.len(), 9);
//! ```

use crate::inst::Inst;
use crate::op::Opcode;
use crate::program::{DataImage, Program, ProgramError};
use crate::reg::{Reg, R0};
use std::collections::BTreeMap;
use std::fmt;

/// Errors produced while assembling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmError {
    /// A label was referenced but never defined.
    UndefinedLabel(String),
    /// The same label was defined twice.
    DuplicateLabel(String),
    /// The same data symbol was allocated twice.
    DuplicateSymbol(String),
    /// The assembled program failed structural validation.
    Invalid(ProgramError),
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::UndefinedLabel(l) => write!(f, "undefined label `{l}`"),
            AsmError::DuplicateLabel(l) => write!(f, "duplicate label `{l}`"),
            AsmError::DuplicateSymbol(s) => write!(f, "duplicate data symbol `{s}`"),
            AsmError::Invalid(e) => write!(f, "invalid program: {e}"),
        }
    }
}

impl std::error::Error for AsmError {}

/// The assembler state. See the module docs for usage.
#[derive(Default)]
pub struct Asm {
    insts: Vec<Inst>,
    labels: BTreeMap<String, u32>,
    duplicate_label: Option<String>,
    duplicate_symbol: Option<String>,
    /// Instruction slots whose `imm` must be patched with a label address.
    fixups: Vec<(usize, String)>,
    data: Vec<u8>,
    data_extra: usize,
    data_symbols: BTreeMap<String, u64>,
    entry: u32,
    reserved: bool,
}

macro_rules! rrr_ops {
    ($($fn_name:ident => $op:ident),* $(,)?) => {
        $(#[doc = concat!("`", stringify!($fn_name), " rd, rs1, rs2`")]
        pub fn $fn_name(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
            self.push(Inst::new(Opcode::$op, rd, rs1, rs2, 0))
        })*
    };
}

macro_rules! rr_ops {
    ($($fn_name:ident => $op:ident),* $(,)?) => {
        $(#[doc = concat!("`", stringify!($fn_name), " rd, rs1`")]
        pub fn $fn_name(&mut self, rd: Reg, rs1: Reg) -> &mut Self {
            self.push(Inst::new(Opcode::$op, rd, rs1, R0, 0))
        })*
    };
}

macro_rules! rri_ops {
    ($($fn_name:ident => $op:ident),* $(,)?) => {
        $(#[doc = concat!("`", stringify!($fn_name), " rd, rs1, imm`")]
        pub fn $fn_name(&mut self, rd: Reg, rs1: Reg, imm: i64) -> &mut Self {
            self.push(Inst::new(Opcode::$op, rd, rs1, R0, imm))
        })*
    };
}

macro_rules! load_ops {
    ($($fn_name:ident => $op:ident),* $(,)?) => {
        $(#[doc = concat!("`", stringify!($fn_name), " rd, off(base)`")]
        pub fn $fn_name(&mut self, rd: Reg, base: Reg, off: i64) -> &mut Self {
            self.push(Inst::new(Opcode::$op, rd, base, R0, off))
        })*
    };
}

macro_rules! store_ops {
    ($($fn_name:ident => $op:ident),* $(,)?) => {
        $(#[doc = concat!("`", stringify!($fn_name), " src, off(base)`")]
        pub fn $fn_name(&mut self, src: Reg, base: Reg, off: i64) -> &mut Self {
            self.push(Inst::new(Opcode::$op, R0, base, src, off))
        })*
    };
}

macro_rules! branch_ops {
    ($($fn_name:ident => $op:ident),* $(,)?) => {
        $(#[doc = concat!("`", stringify!($fn_name), " rs1, rs2, label`")]
        pub fn $fn_name(&mut self, rs1: Reg, rs2: Reg, label: &str) -> &mut Self {
            let slot = self.insts.len();
            self.fixups.push((slot, label.to_string()));
            self.push(Inst::new(Opcode::$op, R0, rs1, rs2, 0))
        })*
    };
}

impl Asm {
    /// A fresh assembler.
    pub fn new() -> Asm {
        Asm::default()
    }

    /// Current PC (index the next instruction will get).
    pub fn pc(&self) -> u32 {
        self.insts.len() as u32
    }

    fn push(&mut self, inst: Inst) -> &mut Self {
        self.insts.push(inst);
        self
    }

    /// Define a label at the current PC.
    pub fn label(&mut self, name: &str) -> &mut Self {
        if self.labels.insert(name.to_string(), self.pc()).is_some() {
            self.duplicate_label.get_or_insert_with(|| name.to_string());
        }
        self
    }

    /// Set the entry point to the current PC.
    pub fn entry_here(&mut self) -> &mut Self {
        self.entry = self.pc();
        self
    }

    rrr_ops! {
        add => Add, sub => Sub, mul => Mul, div => Div, rem => Rem,
        and => And, or => Or, xor => Xor, sll => Sll, srl => Srl, sra => Sra,
        slt => Slt, sltu => Sltu,
        fadd => Fadd, fsub => Fsub, fmul => Fmul, fdiv => Fdiv,
        fmin => Fmin, fmax => Fmax,
        feq => Feq, flt => Flt, fle => Fle,
    }

    rr_ops! {
        fsqrt => Fsqrt, fneg => Fneg, fabs => Fabs, fmov => Fmov,
        fcvt_d_l => Fcvtdl, fcvt_l_d => Fcvtld,
    }

    rri_ops! {
        addi => Addi, andi => Andi, ori => Ori, xori => Xori,
        slli => Slli, srli => Srli, srai => Srai, slti => Slti, muli => Muli,
    }

    load_ops! {
        lb => Lb, lbu => Lbu, lh => Lh, lhu => Lhu,
        lw => Lw, lwu => Lwu, ld => Ld, fld => Fld,
    }

    store_ops! {
        sb => Sb, sh => Sh, sw => Sw, sd => Sd, fsd => Fsd,
    }

    branch_ops! {
        beq => Beq, bne => Bne, blt => Blt, bge => Bge,
        bltu => Bltu, bgeu => Bgeu,
    }

    /// `li rd, imm` — load a full 64-bit immediate.
    pub fn li(&mut self, rd: Reg, imm: i64) -> &mut Self {
        self.push(Inst::new(Opcode::Li, rd, R0, R0, imm))
    }

    /// `mv rd, rs` — pseudo for `addi rd, rs, 0`.
    pub fn mv(&mut self, rd: Reg, rs: Reg) -> &mut Self {
        self.addi(rd, rs, 0)
    }

    /// `j label`.
    pub fn j(&mut self, label: &str) -> &mut Self {
        let slot = self.insts.len();
        self.fixups.push((slot, label.to_string()));
        self.push(Inst::new(Opcode::J, R0, R0, R0, 0))
    }

    /// `jal rd, label` — call, leaving the return PC in `rd`.
    pub fn jal(&mut self, rd: Reg, label: &str) -> &mut Self {
        let slot = self.insts.len();
        self.fixups.push((slot, label.to_string()));
        self.push(Inst::new(Opcode::Jal, rd, R0, R0, 0))
    }

    /// `jr rs1` — indirect jump (also used as `ret`).
    pub fn jr(&mut self, rs1: Reg) -> &mut Self {
        self.push(Inst::new(Opcode::Jr, R0, rs1, R0, 0))
    }

    /// `jalr rd, rs1`.
    pub fn jalr(&mut self, rd: Reg, rs1: Reg) -> &mut Self {
        self.push(Inst::new(Opcode::Jalr, rd, rs1, R0, 0))
    }

    /// Append an already-built instruction verbatim (used by the text
    /// assembler; prefer the typed methods elsewhere).
    pub fn push_raw(&mut self, inst: Inst) -> &mut Self {
        self.push(inst)
    }

    /// Append a conditional branch of arbitrary opcode targeting `label`
    /// (used by the text assembler).
    pub fn branch_to(&mut self, op: Opcode, rs1: Reg, rs2: Reg, label: &str) -> &mut Self {
        let slot = self.insts.len();
        self.fixups.push((slot, label.to_string()));
        self.push(Inst::new(op, R0, rs1, rs2, 0))
    }

    /// Append a direct jump (`j`/`jal`) of arbitrary opcode targeting
    /// `label` (used by the text assembler).
    pub fn jump_to(&mut self, op: Opcode, rd: Reg, label: &str) -> &mut Self {
        let slot = self.insts.len();
        self.fixups.push((slot, label.to_string()));
        self.push(Inst::new(op, rd, R0, R0, 0))
    }

    /// `nop`.
    pub fn nop(&mut self) -> &mut Self {
        self.push(Inst::nop())
    }

    /// `halt`.
    pub fn halt(&mut self) -> &mut Self {
        self.push(Inst::halt())
    }

    fn align8(&mut self) {
        while !self.data.len().is_multiple_of(8) {
            self.data.push(0);
        }
    }

    fn check_no_reserve_yet(&self) {
        assert!(
            !self.reserved,
            "initialized allocations must precede all reserve() calls"
        );
    }

    fn define_symbol(&mut self, name: &str, addr: u64) {
        if self.data_symbols.insert(name.to_string(), addr).is_some() {
            self.duplicate_symbol
                .get_or_insert_with(|| name.to_string());
        }
    }

    /// Allocate and initialize an array of `u64`s; returns its byte address.
    pub fn alloc_u64(&mut self, name: &str, values: &[u64]) -> u64 {
        self.check_no_reserve_yet();
        self.align8();
        let addr = self.data.len() as u64;
        for v in values {
            self.data.extend_from_slice(&v.to_le_bytes());
        }
        self.define_symbol(name, addr);
        addr
    }

    /// Allocate and initialize an array of `f64`s; returns its byte address.
    pub fn alloc_f64(&mut self, name: &str, values: &[f64]) -> u64 {
        self.check_no_reserve_yet();
        self.align8();
        let addr = self.data.len() as u64;
        for v in values {
            self.data.extend_from_slice(&v.to_le_bytes());
        }
        self.define_symbol(name, addr);
        addr
    }

    /// Allocate and initialize raw bytes; returns the byte address.
    pub fn alloc_bytes(&mut self, name: &str, bytes: &[u8]) -> u64 {
        self.check_no_reserve_yet();
        self.align8();
        let addr = self.data.len() as u64;
        self.data.extend_from_slice(bytes);
        self.define_symbol(name, addr);
        addr
    }

    /// Reserve `nbytes` of zeroed memory after all initialized data.
    ///
    /// Reservations never enlarge the initialized image; they extend the
    /// memory size. All `reserve` calls should come after `alloc_*` calls
    /// for the addresses to be stable (this is asserted).
    pub fn reserve(&mut self, name: &str, nbytes: u64) -> u64 {
        self.reserved = true;
        self.align8();
        let addr = (self.data.len() + self.data_extra) as u64;
        self.data_extra += nbytes as usize;
        self.data_extra = (self.data_extra + 7) & !7;
        self.define_symbol(name, addr);
        addr
    }

    /// Resolve fixups, validate, and produce the program.
    pub fn finish(mut self) -> Result<Program, AsmError> {
        if let Some(l) = self.duplicate_label {
            return Err(AsmError::DuplicateLabel(l));
        }
        if let Some(s) = self.duplicate_symbol {
            return Err(AsmError::DuplicateSymbol(s));
        }
        for (slot, label) in std::mem::take(&mut self.fixups) {
            let target = *self
                .labels
                .get(&label)
                .ok_or_else(|| AsmError::UndefinedLabel(label.clone()))?;
            self.insts[slot].imm = target as i64;
        }
        let size = self.data.len() + self.data_extra;
        let prog = Program {
            insts: self.insts,
            labels: self.labels,
            data_symbols: self.data_symbols,
            data: DataImage {
                init: self.data,
                size,
            },
            entry: self.entry,
        };
        prog.validate().map_err(AsmError::Invalid)?;
        Ok(prog)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::*;

    #[test]
    fn forward_and_backward_labels_resolve() {
        let mut a = Asm::new();
        a.li(R1, 3);
        a.label("back");
        a.addi(R1, R1, -1);
        a.beq(R1, R0, "fwd"); // forward reference
        a.j("back");
        a.label("fwd");
        a.halt();
        let p = a.finish().unwrap();
        assert_eq!(p.insts[2].imm, 4, "forward branch to `fwd`");
        assert_eq!(p.insts[3].imm, 1, "backward jump to `back`");
    }

    #[test]
    fn undefined_label_errors() {
        let mut a = Asm::new();
        a.j("nowhere");
        a.halt();
        assert_eq!(
            a.finish().unwrap_err(),
            AsmError::UndefinedLabel("nowhere".into())
        );
    }

    #[test]
    fn duplicate_label_errors() {
        let mut a = Asm::new();
        a.label("x");
        a.nop();
        a.label("x");
        a.halt();
        assert_eq!(
            a.finish().unwrap_err(),
            AsmError::DuplicateLabel("x".into())
        );
    }

    #[test]
    fn duplicate_symbol_errors() {
        let mut a = Asm::new();
        a.alloc_u64("d", &[1]);
        a.alloc_u64("d", &[2]);
        a.halt();
        assert_eq!(
            a.finish().unwrap_err(),
            AsmError::DuplicateSymbol("d".into())
        );
    }

    #[test]
    fn data_allocation_layout() {
        let mut a = Asm::new();
        let b = a.alloc_bytes("b", &[1, 2, 3]); // 3 bytes, then align
        let u = a.alloc_u64("u", &[7, 8]); // 16 bytes at offset 8
        let r = a.reserve("r", 100);
        a.halt();
        assert_eq!(b, 0);
        assert_eq!(u, 8);
        assert_eq!(r, 24);
        let p = a.finish().unwrap();
        assert_eq!(p.data.size, 24 + 104); // reserve rounds to 8
        assert_eq!(p.data_addr("u"), Some(8));
        let bytes = p.data.to_bytes();
        assert_eq!(u64::from_le_bytes(bytes[8..16].try_into().unwrap()), 7);
        assert_eq!(u64::from_le_bytes(bytes[16..24].try_into().unwrap()), 8);
    }

    #[test]
    fn builder_example_program_validates() {
        let mut a = Asm::new();
        let xs = a.alloc_f64("xs", &[1.0, 2.0]);
        a.li(R1, xs as i64);
        a.fld(F1, R1, 0);
        a.fld(F2, R1, 8);
        a.fadd(F3, F1, F2);
        a.fsd(F3, R1, 0);
        a.halt();
        let p = a.finish().unwrap();
        p.validate().unwrap();
        assert_eq!(p.len(), 6);
    }
}
