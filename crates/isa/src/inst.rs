//! The instruction word and its operand accessors.

use crate::op::{OpShape, Opcode};
use crate::reg::{Reg, R0};
use std::fmt;

/// One SPEAR instruction.
///
/// All instructions share a single four-field layout; the [`OpShape`] of the
/// opcode says which fields are live. Branch and jump targets are *absolute
/// instruction indices* carried in `imm` (the assembler resolves labels to
/// indices). The in-memory form allows a full 64-bit immediate; the binary
/// encoding (see [`crate::encode`]) is a fixed 16 bytes.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub struct Inst {
    /// Operation.
    pub op: Opcode,
    /// Destination register (if the shape has one).
    pub rd: Reg,
    /// First source register.
    pub rs1: Reg,
    /// Second source register (store data for stores).
    pub rs2: Reg,
    /// Immediate / displacement / branch target.
    pub imm: i64,
}

/// Up to two source registers, with `None` holes.
pub type SrcRegs = [Option<Reg>; 2];

impl Inst {
    /// Build an instruction; prefer the [`crate::asm::Asm`] builder which
    /// also validates register classes.
    pub fn new(op: Opcode, rd: Reg, rs1: Reg, rs2: Reg, imm: i64) -> Inst {
        Inst {
            op,
            rd,
            rs1,
            rs2,
            imm,
        }
    }

    /// A `nop`.
    pub fn nop() -> Inst {
        Inst::new(Opcode::Nop, R0, R0, R0, 0)
    }

    /// A `halt`.
    pub fn halt() -> Inst {
        Inst::new(Opcode::Halt, R0, R0, R0, 0)
    }

    /// The destination register, if this instruction writes one.
    ///
    /// Writes to `r0` are reported as `None`: they have no architectural
    /// effect and must not create rename dependences.
    pub fn dst(&self) -> Option<Reg> {
        let rd = match self.op.shape() {
            OpShape::RRR | OpShape::RRI | OpShape::RI | OpShape::Load => Some(self.rd),
            OpShape::JumpLink | OpShape::JumpLinkReg => Some(self.rd),
            OpShape::Store
            | OpShape::Branch
            | OpShape::Jump
            | OpShape::JumpReg
            | OpShape::Nullary => None,
        };
        rd.filter(|r| !r.is_zero())
    }

    /// Source registers actually read by this instruction.
    ///
    /// Reads of `r0` are reported (they are real operand slots) but always
    /// produce zero; dependence analyses should skip `r.is_zero()` sources.
    pub fn srcs(&self) -> SrcRegs {
        match self.op.shape() {
            OpShape::RRR | OpShape::Branch => [Some(self.rs1), Some(self.rs2)],
            OpShape::RRI | OpShape::Load => [Some(self.rs1), None],
            OpShape::Store => [Some(self.rs1), Some(self.rs2)],
            OpShape::JumpReg | OpShape::JumpLinkReg => [Some(self.rs1), None],
            OpShape::RI | OpShape::Jump | OpShape::JumpLink | OpShape::Nullary => [None, None],
        }
    }

    /// Source registers excluding `r0` (the common case for dependence
    /// chasing).
    pub fn live_srcs(&self) -> impl Iterator<Item = Reg> + '_ {
        self.srcs().into_iter().flatten().filter(|r| !r.is_zero())
    }

    /// For direct control transfers, the target instruction index.
    pub fn target(&self) -> Option<u32> {
        match self.op.shape() {
            OpShape::Branch | OpShape::Jump | OpShape::JumpLink => Some(self.imm as u32),
            _ => None,
        }
    }

    /// Check register-class agreement between the opcode and its operands;
    /// returns a description of the first violation.
    pub fn validate(&self) -> Result<(), String> {
        use Opcode::*;
        let want = |r: Reg, fp: bool, what: &str| -> Result<(), String> {
            if r.is_fp() != fp {
                Err(format!(
                    "{}: {} should be {} register, got {}",
                    self.op,
                    what,
                    if fp { "an fp" } else { "an int" },
                    r
                ))
            } else {
                Ok(())
            }
        };
        match self.op {
            // FP arithmetic: all FP.
            Fadd | Fsub | Fmul | Fdiv | Fmin | Fmax => {
                want(self.rd, true, "rd")?;
                want(self.rs1, true, "rs1")?;
                want(self.rs2, true, "rs2")
            }
            Fsqrt | Fneg | Fabs | Fmov => {
                want(self.rd, true, "rd")?;
                want(self.rs1, true, "rs1")
            }
            Feq | Flt | Fle => {
                want(self.rd, false, "rd")?;
                want(self.rs1, true, "rs1")?;
                want(self.rs2, true, "rs2")
            }
            Fcvtdl => {
                want(self.rd, true, "rd")?;
                want(self.rs1, false, "rs1")
            }
            Fcvtld => {
                want(self.rd, false, "rd")?;
                want(self.rs1, true, "rs1")
            }
            Fld => {
                want(self.rd, true, "rd")?;
                want(self.rs1, false, "rs1 (base)")
            }
            Fsd => {
                want(self.rs1, false, "rs1 (base)")?;
                want(self.rs2, true, "rs2 (data)")
            }
            // Integer memory ops: everything integer.
            Lb | Lbu | Lh | Lhu | Lw | Lwu | Ld => {
                want(self.rd, false, "rd")?;
                want(self.rs1, false, "rs1 (base)")
            }
            Sb | Sh | Sw | Sd => {
                want(self.rs1, false, "rs1 (base)")?;
                want(self.rs2, false, "rs2 (data)")
            }
            // Everything else is pure integer (branches compare GPRs).
            _ => {
                for (r, what) in [(self.rd, "rd"), (self.rs1, "rs1"), (self.rs2, "rs2")] {
                    // Only check slots the shape actually uses.
                    let used = match self.op.shape() {
                        OpShape::RRR => true,
                        OpShape::RRI => what != "rs2",
                        OpShape::RI => what == "rd",
                        OpShape::Branch | OpShape::Store => what != "rd",
                        OpShape::Jump | OpShape::Nullary => false,
                        OpShape::JumpLink => what == "rd",
                        OpShape::JumpReg => what == "rs1",
                        OpShape::JumpLinkReg => what != "rs2",
                        OpShape::Load => what != "rs2",
                    };
                    if used {
                        want(r, false, what)?;
                    }
                }
                Ok(())
            }
        }
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let m = self.op.mnemonic();
        let unary_fp = matches!(
            self.op,
            Opcode::Fsqrt
                | Opcode::Fneg
                | Opcode::Fabs
                | Opcode::Fmov
                | Opcode::Fcvtdl
                | Opcode::Fcvtld
        );
        match self.op.shape() {
            OpShape::RRR if unary_fp => write!(f, "{m} {}, {}", self.rd, self.rs1),
            OpShape::RRR => write!(f, "{m} {}, {}, {}", self.rd, self.rs1, self.rs2),
            OpShape::RRI => write!(f, "{m} {}, {}, {}", self.rd, self.rs1, self.imm),
            OpShape::RI => write!(f, "{m} {}, {}", self.rd, self.imm),
            OpShape::Load => write!(f, "{m} {}, {}({})", self.rd, self.imm, self.rs1),
            OpShape::Store => write!(f, "{m} {}, {}({})", self.rs2, self.imm, self.rs1),
            OpShape::Branch => write!(f, "{m} {}, {}, @{}", self.rs1, self.rs2, self.imm),
            OpShape::Jump => write!(f, "{m} @{}", self.imm),
            OpShape::JumpLink => write!(f, "{m} {}, @{}", self.rd, self.imm),
            OpShape::JumpReg => write!(f, "{m} {}", self.rs1),
            OpShape::JumpLinkReg => write!(f, "{m} {}, {}", self.rd, self.rs1),
            OpShape::Nullary => f.write_str(m),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::*;

    #[test]
    fn dst_of_store_and_branch_is_none() {
        let st = Inst::new(Opcode::Sd, R0, R1, R2, 0);
        assert_eq!(st.dst(), None);
        let br = Inst::new(Opcode::Beq, R0, R1, R2, 10);
        assert_eq!(br.dst(), None);
    }

    #[test]
    fn writes_to_r0_are_discarded() {
        let i = Inst::new(Opcode::Add, R0, R1, R2, 0);
        assert_eq!(i.dst(), None);
    }

    #[test]
    fn store_reads_base_and_data() {
        let st = Inst::new(Opcode::Sd, R0, R1, R2, 8);
        let srcs: Vec<_> = st.live_srcs().collect();
        assert_eq!(srcs, vec![R1, R2]);
    }

    #[test]
    fn load_reads_base_only() {
        let ld = Inst::new(Opcode::Ld, R3, R1, R0, 8);
        let srcs: Vec<_> = ld.live_srcs().collect();
        assert_eq!(srcs, vec![R1]);
        assert_eq!(ld.dst(), Some(R3));
    }

    #[test]
    fn branch_target() {
        let br = Inst::new(Opcode::Bne, R0, R1, R2, 42);
        assert_eq!(br.target(), Some(42));
        let jr = Inst::new(Opcode::Jr, R0, R31, R0, 0);
        assert_eq!(jr.target(), None);
    }

    #[test]
    fn validate_rejects_class_mismatch() {
        let bad = Inst::new(Opcode::Fadd, F1, R1, F2, 0);
        assert!(bad.validate().is_err());
        let good = Inst::new(Opcode::Fadd, F1, F1, F2, 0);
        assert!(good.validate().is_ok());
    }

    #[test]
    fn validate_accepts_cross_class_converts() {
        assert!(Inst::new(Opcode::Fcvtdl, F1, R4, R0, 0).validate().is_ok());
        assert!(Inst::new(Opcode::Fcvtld, R4, F1, R0, 0).validate().is_ok());
        assert!(Inst::new(Opcode::Fcvtdl, R1, R4, R0, 0).validate().is_err());
    }

    #[test]
    fn display_formats() {
        assert_eq!(
            Inst::new(Opcode::Ld, R3, R1, R0, 16).to_string(),
            "ld r3, 16(r1)"
        );
        assert_eq!(
            Inst::new(Opcode::Beq, R0, R1, R2, 7).to_string(),
            "beq r1, r2, @7"
        );
        assert_eq!(Inst::nop().to_string(), "nop");
    }
}
