//! Criterion microbenchmarks of the substrates: cache access, branch
//! prediction, IFQ operations, functional interpretation, cycle-level
//! simulation, and the SPEAR compiler pipeline.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use spear_bpred::{Predictor, PredictorConfig};
use spear_compiler::{CompilerConfig, SpearCompiler};
use spear_cpu::{Core, CoreConfig};
use spear_exec::Interp;
use spear_isa::{Inst, Opcode, SpearBinary};
use spear_mem::{AccessKind, HierConfig, Hierarchy};
use spear_workloads::by_name;

fn bench_cache(c: &mut Criterion) {
    let mut g = c.benchmark_group("cache");
    g.throughput(Throughput::Elements(1));
    // Streaming hits. The clock advances as a real core's would; a frozen
    // timestamp would make in-flight-fill entries unexpirable and measure
    // a degenerate prune path instead.
    let mut h = Hierarchy::new(HierConfig::paper());
    let mut addr = 0u64;
    let mut now = 0u64;
    g.bench_function("l1d_stream", |b| {
        b.iter(|| {
            addr = (addr + 8) & 0xFFF; // 4 KiB loop: all hits after warmup
            now += 1;
            h.access_data(addr, AccessKind::Read, 0, false, now)
        })
    });
    // Random misses.
    let mut h = Hierarchy::new(HierConfig::paper());
    let mut x = 0x9E3779B97F4A7C15u64;
    let mut now = 0u64;
    g.bench_function("l1d_random_4m", |b| {
        b.iter(|| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            now += 4;
            h.access_data(x & 0x3F_FFFF, AccessKind::Read, 0, false, now)
        })
    });
    g.finish();
}

fn bench_bpred(c: &mut Criterion) {
    let mut g = c.benchmark_group("bpred");
    g.throughput(Throughput::Elements(1));
    let mut p = Predictor::new(PredictorConfig::paper());
    let br = Inst::new(
        Opcode::Bne,
        spear_isa::reg::R0,
        spear_isa::reg::R1,
        spear_isa::reg::R0,
        7,
    );
    let mut i = 0u32;
    g.bench_function("predict_update", |b| {
        b.iter(|| {
            i = i.wrapping_add(1);
            let pred = p.predict(i & 1023, &br);
            p.update(i & 1023, &br, !i.is_multiple_of(3), 7, Some(pred));
        })
    });
    g.finish();
}

fn bench_interp(c: &mut Criterion) {
    let mut g = c.benchmark_group("interp");
    let w = by_name("field").expect("field workload");
    let p = w.profile_program();
    let mut i = Interp::new(&p);
    i.run(u64::MAX).unwrap();
    let icount = i.icount;
    g.throughput(Throughput::Elements(icount));
    g.sample_size(10);
    g.bench_function("field_profile_run", |b| {
        b.iter(|| {
            let mut i = Interp::new(&p);
            i.run(u64::MAX).unwrap();
            i.icount
        })
    });
    g.finish();
}

fn bench_cycle_sim(c: &mut Criterion) {
    let mut g = c.benchmark_group("cycle_sim");
    let w = by_name("field").expect("field workload");
    let binary = SpearBinary::plain(w.profile_program());
    let mut core = Core::new(&binary, CoreConfig::baseline());
    let res = core.run(u64::MAX, u64::MAX).unwrap();
    g.throughput(Throughput::Elements(res.stats.committed));
    g.sample_size(10);
    g.bench_function("field_baseline_run", |b| {
        b.iter(|| {
            let mut core = Core::new(&binary, CoreConfig::baseline());
            core.run(u64::MAX, u64::MAX).unwrap().stats.committed
        })
    });
    g.finish();
}

fn bench_compiler(c: &mut Criterion) {
    let mut g = c.benchmark_group("compiler");
    let w = by_name("mcf").expect("mcf workload");
    let p = w.profile_program();
    g.sample_size(10);
    g.bench_function("mcf_full_pipeline", |b| {
        b.iter(|| {
            SpearCompiler::new(CompilerConfig::default())
                .compile(&p)
                .unwrap()
                .1
                .built
                .len()
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_cache,
    bench_bpred,
    bench_interp,
    bench_cycle_sim,
    bench_compiler
);
criterion_main!(benches);
