//! **trace_replay** — instruction-supply throughput: how fast the
//! baseline machine simulates when the committed path comes from a
//! recorded `.spt` trace instead of live ISA semantics, against two
//! anchors — the program-driven baseline core (same pipeline, live
//! oracle) and the bare reference interpreter (the functional ceiling).
//! Criterion's `elem/s` readout = instructions/s; divide by 1000 for
//! KIPS, the unit `spear-sim --perf` prints. The replay-vs-interp table
//! in EXPERIMENTS.md comes from this harness. `SPEAR_BENCH_FAST=1`
//! drops the longer `pointer` cell for CI smoke runs.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use spear_cpu::{Core, CoreConfig, RunExit, TraceSource};
use spear_exec::Interp;
use spear_isa::SpearBinary;
use spear_workloads::by_name;

const MAX_CYCLES: u64 = 200_000_000;

fn bench_trace_replay(c: &mut Criterion) {
    let mut g = c.benchmark_group("trace_replay");
    g.sample_size(10);
    let names: &[&str] = if spear_bench::fast_mode() {
        &["field"]
    } else {
        &["pointer", "field"]
    };
    for name in names {
        let w = by_name(name).expect("workload exists");
        let binary = SpearBinary::plain(w.eval_program());
        let (bytes, rstats) = spear_trace::record(&binary, u64::MAX).expect("record");
        assert!(rstats.halted, "{name} must halt during recording");
        let tf = spear_trace::TraceFile::decode(&bytes).expect("decode own trace");
        g.throughput(Throughput::Elements(rstats.insts));

        g.bench_function(&format!("{name}_interp"), |b| {
            b.iter(|| {
                let mut i = Interp::new(&binary.program);
                i.run(u64::MAX).expect("interp");
                assert!(i.halted);
                i.icount
            })
        });
        g.bench_function(&format!("{name}_baseline_program"), |b| {
            b.iter(|| {
                let mut core = Core::new(&binary, CoreConfig::baseline());
                let res = core.run(MAX_CYCLES, u64::MAX).expect("program run");
                assert_eq!(res.exit, RunExit::Halted);
                res.stats.committed
            })
        });
        g.bench_function(&format!("{name}_baseline_trace"), |b| {
            b.iter(|| {
                let src = TraceSource::new(&tf);
                let mut core = Core::with_source(&binary, CoreConfig::baseline(), Box::new(src));
                let res = core.run(MAX_CYCLES, u64::MAX).expect("trace replay");
                assert_eq!(res.exit, RunExit::Halted);
                res.stats.committed
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_trace_replay);
criterion_main!(benches);
