//! **Figure 7** — adding the dedicated-functional-unit models
//! (SPEAR.sf-128 / SPEAR.sf-256, the CMP-like configuration).
//!
//! Paper: average +18.9% (sf-128) and +26.3% (sf-256); the longer queue
//! buys ~7.4% and dedicated units ~6.2% on top of either IFQ size.

use spear::experiments::{compile_all, fig7};
use spear::report;
use spear::runner::{parallel_map, run_custom};
use spear::Machine;

fn main() {
    let mut workloads = spear_workloads::all();
    if spear_bench::fast_mode() {
        // SPEAR_BENCH_FAST=1: a 4-benchmark smoke subset for CI.
        workloads.retain(|w| ["field", "mcf", "matrix", "fft"].contains(&w.name));
    }
    let compiled = compile_all(&workloads);
    let m = fig7(&compiled);
    print!(
        "{}",
        report::header("Figure 7 — normalized IPC with dedicated p-thread FUs")
    );
    print!("{}", report::ipc_matrix(&m));
    println!();
    for (mach, paper) in [
        (Machine::Spear128, 12.7),
        (Machine::Spear256, 20.1),
        (Machine::SpearSf128, 18.9),
        (Machine::SpearSf256, 26.3),
    ] {
        let v = (m.mean_normalized(m.col(mach)) - 1.0) * 100.0;
        print!(
            "{}",
            report::summary_line(&format!("{} mean speedup", mach.name()), v, paper)
        );
    }

    // The same four machines under the paper-literal §3.3 policy (every
    // p-thread instruction has issue priority). This is where the `.sf`
    // models earn their keep: a compute-dense slice under full priority
    // can capture a scarce shared unit, and dedicated units restore it.
    print!(
        "{}",
        report::header("Figure 7 (paper-literal full p-thread priority)")
    );
    let spear_machines = [
        Machine::Spear128,
        Machine::Spear256,
        Machine::SpearSf128,
        Machine::SpearSf256,
    ];
    let jobs: Vec<(usize, usize)> = (0..workloads.len())
        .flat_map(|w| (0..spear_machines.len()).map(move |c| (w, c)))
        .collect();
    let flat = parallel_map(&jobs, |&(wi, ci)| {
        let mut cfg = spear_machines[ci].config(None);
        cfg.spear.as_mut().unwrap().full_priority = true;
        run_custom(
            &compiled.workloads[wi],
            &compiled.tables[wi],
            cfg,
            spear_machines[ci],
        )
        .ipc()
    });
    print!("  {:<10} {:>10}", "benchmark", "base IPC");
    for mach in spear_machines {
        print!(" {:>14}", mach.name());
    }
    println!();
    let mut means = [0.0f64; 4];
    for (wi, w) in workloads.iter().enumerate() {
        let base = m.ipc(wi, 0);
        print!("  {:<10} {:>10.4}", w.name, base);
        for ci in 0..4 {
            let norm = flat[wi * 4 + ci] / base;
            means[ci] += norm;
            print!(" {:>14.4}", norm);
        }
        println!();
    }
    print!("  {:<10} {:>10}", "AVERAGE", "1.0000");
    for mean in means {
        print!(" {:>14.4}", mean / workloads.len() as f64);
    }
    println!();
    println!(
        "
  (under full priority, shared-FU losses like fft's are restored by the
            .sf models — the contention-relief effect Figure 7 demonstrates)"
    );
}
