//! **Table 3** — effect of the longer IFQ: SPEAR-256 over SPEAR-128 per
//! benchmark, against the branch hit ratio and instructions-per-branch.
//!
//! Paper: matrix gains the most from the longer queue (1.45, hit ratio
//! 0.9942); update and tr lose slightly (0.94 and 0.99) due to their low
//! branch hit ratios — "the effectiveness of the long IFQ strongly
//! depends on the branch prediction of the main thread".

use spear::experiments::{compile_all, fig6, table3};
use spear::report;

fn main() {
    let mut workloads = spear_workloads::all();
    if spear_bench::fast_mode() {
        // SPEAR_BENCH_FAST=1: a 4-benchmark smoke subset for CI.
        workloads.retain(|w| ["field", "mcf", "matrix", "fft"].contains(&w.name));
    }
    let compiled = compile_all(&workloads);
    let m = fig6(&compiled);
    print!(
        "{}",
        report::header("Table 3 — longer-IFQ enhancement vs branch behaviour")
    );
    print!("{}", report::table3(&table3(&m)));
}
