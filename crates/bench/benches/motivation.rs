//! **Motivation experiment** (the paper's §1 claim, not a numbered
//! figure): "traditional prefetching methods strongly rely on the
//! predictability of memory access patterns and often fail when faced
//! with irregular patterns."
//!
//! Compares three machines on a regular-stride benchmark (matrix) and
//! three irregular ones (mcf, dm, nbh):
//!
//!   1. the baseline superscalar,
//!   2. the baseline + a conventional per-PC stride prefetcher,
//!   3. SPEAR-128 (speculative pre-execution).
//!
//! Expected shape: the stride prefetcher handles matrix's constant
//! column stride as well as (or better than) SPEAR, but does nothing for
//! the pointer-/hash-/gather-driven benchmarks — which is exactly the gap
//! speculative pre-execution exists to fill.

use spear::runner::{compile_workload, run_custom, run_one};
use spear::Machine;
use spear_mem::StrideConfig;
use spear_workloads::by_name;

fn main() {
    println!("================================================================");
    println!("Motivation — stride prefetching vs speculative pre-execution");
    println!("================================================================");
    println!(
        "  {:<10} {:>10} {:>16} {:>12}",
        "benchmark", "baseline", "+stride-prefetch", "SPEAR-128"
    );
    for name in ["matrix", "field", "mcf", "dm", "nbh", "vpr"] {
        let w = by_name(name).expect("workload");
        let (table, _) = compile_workload(&w);
        let base = run_one(&w, &table, Machine::Baseline, None).ipc();
        let stride = {
            let mut cfg = Machine::Baseline.config(None);
            cfg.hier.stride_prefetch = Some(StrideConfig::default());
            run_custom(&w, &table, cfg, Machine::Baseline).ipc()
        };
        let spear = run_one(&w, &table, Machine::Spear128, None).ipc();
        println!(
            "  {:<10} {:>10.4} {:>9.4} ({:+5.1}%) {:>5.4} ({:+5.1}%)",
            name,
            base,
            stride,
            (stride / base - 1.0) * 100.0,
            spear,
            (spear / base - 1.0) * 100.0
        );
    }
    println!(
        "\n  (regular strides: the conventional prefetcher suffices; irregular\n\
         \x20  patterns: only pre-execution, which computes the addresses, helps)"
    );
}
