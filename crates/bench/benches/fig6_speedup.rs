//! **Figure 6** — normalized main-thread IPC: baseline superscalar vs
//! SPEAR-128 vs SPEAR-256 over all 15 benchmarks.
//!
//! Paper: SPEAR improves 11 of 15 applications; best mcf +87.6%; average
//! +12.7% (128-entry IFQ) and +20.1% (256-entry IFQ); tr/field/fft/gzip
//! see slight degradations (1–6.2%).
//!
//! `SPEAR_SAMPLED=INTERVAL[:STRIDE]` routes the matrix through the
//! checkpointed sampling campaign engine (resumable via
//! `SPEAR_CAMPAIGN_DIR`) instead of full-program simulation.

use spear::experiments::{compile_all, fig6, fig6_sampled, sample_spec_from_env};
use spear::report;
use spear::Machine;

fn main() {
    let mut workloads = spear_workloads::all();
    if spear_bench::fast_mode() {
        // SPEAR_BENCH_FAST=1: a 4-benchmark smoke subset for CI.
        workloads.retain(|w| ["field", "mcf", "matrix", "fft"].contains(&w.name));
    }
    let m = if let Some(sample) = sample_spec_from_env() {
        let dir = std::env::var("SPEAR_CAMPAIGN_DIR")
            .map(std::path::PathBuf::from)
            .unwrap_or_else(|_| {
                std::env::temp_dir().join(format!("spear-fig6-campaign-{}", std::process::id()))
            });
        eprintln!(
            "(sampled: interval {} stride {}, campaign dir {})",
            sample.interval_len,
            sample.stride,
            dir.display()
        );
        fig6_sampled(&workloads, sample, &dir).unwrap_or_else(|e| {
            eprintln!("fig6: sampled campaign failed: {e}");
            std::process::exit(1)
        })
    } else {
        fig6(&compile_all(&workloads))
    };
    // Machine-readable copy for plotting.
    let (header, rows) = report::ipc_matrix_csv(&m);
    let csv = std::path::Path::new("target/spear-results/fig6.csv");
    if report::write_csv(csv, &header, &rows).is_ok() {
        eprintln!("(csv written to {})", csv.display());
    }
    print!(
        "{}",
        report::header("Figure 6 — normalized IPC (baseline = 1.0)")
    );
    print!("{}", report::ipc_matrix(&m));
    println!();
    let s128 = (m.mean_normalized(m.col(Machine::Spear128)) - 1.0) * 100.0;
    let s256 = (m.mean_normalized(m.col(Machine::Spear256)) - 1.0) * 100.0;
    print!(
        "{}",
        report::summary_line("SPEAR-128 mean speedup", s128, 12.7)
    );
    print!(
        "{}",
        report::summary_line("SPEAR-256 mean speedup", s256, 20.1)
    );
    let best = (0..m.workloads.len())
        .max_by(|&a, &b| m.normalized(a, 2).partial_cmp(&m.normalized(b, 2)).unwrap())
        .unwrap();
    println!(
        "  best case: {} at +{:.1}% (paper: mcf at +87.6%)",
        m.workloads[best],
        (m.normalized(best, 2) - 1.0) * 100.0
    );
}
