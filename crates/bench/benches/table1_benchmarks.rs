//! **Table 1** — benchmark inventory with simulated instruction counts.
//!
//! The paper lists each benchmark's suite and simulated instruction count;
//! this harness prints the same inventory for our kernels (evaluation and
//! profiling inputs).

use spear::experiments::table1;
use spear::report;

fn main() {
    let mut workloads = spear_workloads::all();
    if spear_bench::fast_mode() {
        // SPEAR_BENCH_FAST=1: a 4-benchmark smoke subset for CI.
        workloads.retain(|w| ["field", "mcf", "matrix", "fft"].contains(&w.name));
    }
    print!("{}", report::header("Table 1 — benchmark inventory"));
    let rows = table1(&workloads);
    print!("{}", report::table1(&rows));
    let total: u64 = rows.iter().map(|r| r.eval_insts).sum();
    println!("\n  total evaluation instructions: {total}");
}
