//! **Figure 8** — reduction in main-thread L1 data-cache misses.
//!
//! Paper: best case art (−38.8%); on average SPEAR-256 removes 19.7% of
//! all cache misses — while noting the reduction does not translate
//! one-to-one into IPC.

use spear::experiments::{compile_all, fig6, fig8, stats_of};
use spear::report;
use spear::Machine;

fn main() {
    let mut workloads = spear_workloads::all();
    if spear_bench::fast_mode() {
        // SPEAR_BENCH_FAST=1: a 4-benchmark smoke subset for CI.
        workloads.retain(|w| ["field", "mcf", "matrix", "fft"].contains(&w.name));
    }
    let compiled = compile_all(&workloads);
    let m = fig6(&compiled);
    print!(
        "{}",
        report::header("Figure 8 — L1D miss reduction (main thread)")
    );
    print!("{}", report::fig8(&fig8(&m)));
    println!("  (paper: best art -38.8%, average -19.7% with SPEAR-256)");

    // Extension (the paper's future work: "the actual effectiveness of
    // the p-thread execution will be investigated"): how many p-thread
    // prefetches the main thread actually consumed, split into timely
    // (full L1 hits) and late (merged into an in-flight fill).
    print!(
        "{}",
        report::header("Prefetch effectiveness (SPEAR-256, extension)")
    );
    println!(
        "  {:<10} {:>12} {:>12} {:>12} {:>10}",
        "benchmark", "prefetches", "timely", "late", "useful %"
    );
    for w in &compiled.workloads {
        let s = stats_of(&m, w.name, Machine::Spear256);
        let issued = s.pthread_loads.max(1);
        println!(
            "  {:<10} {:>12} {:>12} {:>12} {:>9.1}%",
            w.name,
            s.pthread_loads,
            s.useful_prefetches,
            s.late_prefetches,
            (s.useful_prefetches + s.late_prefetches) as f64 / issued as f64 * 100.0
        );
    }
}
