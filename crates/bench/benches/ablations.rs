//! Ablation studies of the design choices DESIGN.md calls out.
//!
//! The paper fixes several knobs "empirically": the trigger-occupancy
//! fraction (half the IFQ), the PE bandwidth (half the issue width), the
//! prefetch-range d-cycle criterion (120), and leaves the slice length
//! uncapped. This harness sweeps each, plus the two episode-lifecycle
//! extensions this reproduction adds (off by default), and the cache
//! replacement policy.
//!
//! A representative four-benchmark subset keeps the sweep fast: mcf (the
//! big winner), matrix (the long-IFQ winner), fft (the big-slice loser),
//! and nbh (a computed-address gather).

use spear::runner::{compile_workload, compile_workload_with, run_custom, run_one};
use spear::Machine;
use spear_compiler::CompilerConfig;
use spear_mem::ReplPolicy;
use spear_workloads::{by_name, Workload};

const SUBSET: [&str; 4] = ["mcf", "matrix", "fft", "nbh"];

fn subset() -> Vec<Workload> {
    SUBSET
        .iter()
        .map(|n| by_name(n).expect("workload"))
        .collect()
}

fn header(title: &str) {
    println!("\n---- {title} ----");
}

fn speedup_row(label: &str, values: &[(String, f64)]) {
    print!("  {label:<28}");
    for (name, v) in values {
        print!(" {name}={v:+6.1}%");
    }
    println!();
}

fn main() {
    let ws = subset();
    // Baselines and default tables, once.
    let tables: Vec<_> = ws.iter().map(compile_workload).collect();
    let base_ipc: Vec<f64> = ws
        .iter()
        .zip(&tables)
        .map(|(w, (t, _))| run_one(w, t, Machine::Baseline, None).ipc())
        .collect();

    let speedups = |cfgs: &[spear_cpu::CoreConfig]| -> Vec<(String, f64)> {
        ws.iter()
            .zip(&tables)
            .zip(&base_ipc)
            .zip(cfgs)
            .map(|(((w, (t, _)), &b), cfg)| {
                let ipc = run_custom(w, t, cfg.clone(), Machine::Spear128).ipc();
                (w.name.to_string(), (ipc / b - 1.0) * 100.0)
            })
            .collect()
    };
    let uniform = |cfg: spear_cpu::CoreConfig| vec![cfg; ws.len()];

    println!("================================================================");
    println!("Ablations (SPEAR-128 speedup over baseline, percent)");
    println!("================================================================");

    header("trigger occupancy fraction (paper: 0.5)");
    for frac in [0.25, 0.5, 0.75] {
        let mut cfg = Machine::Spear128.config(None);
        cfg.spear.as_mut().unwrap().trigger_fraction = frac;
        speedup_row(&format!("fraction = {frac}"), &speedups(&uniform(cfg)));
    }

    header("PE extraction bandwidth (paper: 4 = issue/2)");
    for bw in [2usize, 4, 8] {
        let mut cfg = Machine::Spear128.config(None);
        cfg.spear.as_mut().unwrap().pe_bandwidth = bw;
        speedup_row(&format!("bandwidth = {bw}"), &speedups(&uniform(cfg)));
    }

    header("p-thread RUU size (default: 64)");
    for size in [16usize, 64, 128] {
        let mut cfg = Machine::Spear128.config(None);
        cfg.spear.as_mut().unwrap().pthread_ruu_size = size;
        speedup_row(&format!("ruu = {size}"), &speedups(&uniform(cfg)));
    }

    header("episode-lifecycle extensions (default: both off)");
    for (rearm, retarget) in [(false, false), (true, false), (false, true), (true, true)] {
        let mut cfg = Machine::Spear128.config(None);
        let sp = cfg.spear.as_mut().unwrap();
        sp.rearm_after_flush = rearm;
        sp.retarget_missed = retarget;
        speedup_row(
            &format!("rearm={} retarget={}", rearm as u8, retarget as u8),
            &speedups(&uniform(cfg)),
        );
    }

    header("prefetch-range d-cycle criterion (paper: 120)");
    for limit in [30.0, 120.0, 480.0] {
        let mut ccfg = CompilerConfig::default();
        ccfg.slicer.dcycle_limit = limit;
        let rows: Vec<(String, f64)> = ws
            .iter()
            .zip(&base_ipc)
            .map(|(w, &b)| {
                let (t, _) = compile_workload_with(w, &ccfg);
                let ipc = run_one(w, &t, Machine::Spear128, None).ipc();
                (w.name.to_string(), (ipc / b - 1.0) * 100.0)
            })
            .collect();
        speedup_row(&format!("d-cycle limit = {limit}"), &rows);
    }

    header("slice cap (paper: uncapped)");
    for cap in [Some(8usize), Some(32), None] {
        let mut ccfg = CompilerConfig::default();
        ccfg.slicer.slice_cap = cap;
        let rows: Vec<(String, f64)> = ws
            .iter()
            .zip(&base_ipc)
            .map(|(w, &b)| {
                let (t, _) = compile_workload_with(w, &ccfg);
                let ipc = run_one(w, &t, Machine::Spear128, None).ipc();
                (w.name.to_string(), (ipc / b - 1.0) * 100.0)
            })
            .collect();
        speedup_row(&format!("cap = {cap:?}"), &rows);
    }

    header("MSHR count (default: unlimited) — baseline IPC shift");
    for mshrs in [Some(2usize), Some(8), None] {
        let rows: Vec<(String, f64)> = ws
            .iter()
            .zip(&tables)
            .zip(&base_ipc)
            .map(|((w, (t, _)), &b)| {
                let mut cfg = Machine::Baseline.config(None);
                cfg.hier.mshrs = mshrs;
                let ipc = run_custom(w, t, cfg, Machine::Baseline).ipc();
                (w.name.to_string(), (ipc / b - 1.0) * 100.0)
            })
            .collect();
        speedup_row(&format!("mshrs = {mshrs:?}"), &rows);
    }

    header("branch predictor (paper: bimodal) — baseline IPC shift");
    for kind in [
        spear_bpred::PredictorKind::Bimodal,
        spear_bpred::PredictorKind::Gshare,
    ] {
        let rows: Vec<(String, f64)> = ws
            .iter()
            .zip(&tables)
            .zip(&base_ipc)
            .map(|((w, (t, _)), &b)| {
                let mut cfg = Machine::Baseline.config(None);
                cfg.bpred.kind = kind;
                let ipc = run_custom(w, t, cfg, Machine::Baseline).ipc();
                (w.name.to_string(), (ipc / b - 1.0) * 100.0)
            })
            .collect();
        speedup_row(&format!("{kind:?}"), &rows);
    }

    header("scheduling policy (default: memory-priority) — SPEAR-128 speedup");
    for full in [false, true] {
        let mut cfg = Machine::Spear128.config(None);
        cfg.spear.as_mut().unwrap().full_priority = full;
        speedup_row(
            if full {
                "full priority (paper-literal)"
            } else {
                "memory priority (default)"
            },
            &speedups(&uniform(cfg)),
        );
    }

    header("L1/L2 replacement policy (paper: LRU) — baseline IPC shift");
    for policy in [ReplPolicy::Lru, ReplPolicy::Fifo, ReplPolicy::Random] {
        let rows: Vec<(String, f64)> = ws
            .iter()
            .zip(&tables)
            .zip(&base_ipc)
            .map(|((w, (t, _)), &b)| {
                let mut cfg = Machine::Baseline.config(None);
                cfg.hier.policy = policy;
                let ipc = run_custom(w, t, cfg, Machine::Baseline).ipc();
                (w.name.to_string(), (ipc / b - 1.0) * 100.0)
            })
            .collect();
        speedup_row(&format!("{policy:?}"), &rows);
    }
}
