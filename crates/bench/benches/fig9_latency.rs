//! **Figure 9** — long-latency tolerance: IPC under memory latencies
//! 40/80/120/160/200 cycles (L2 at one tenth) for the six benchmarks the
//! paper sweeps (pointer, update, nbh, dm, mcf, vpr).
//!
//! Paper: at the longest latency SPEAR-128 loses 39.7% and SPEAR-256
//! 38.4% of their shortest-latency performance; the baseline superscalar
//! loses 48.5%.

use spear::experiments::{compile_all, fig9};
use spear::report;
use spear_workloads::{by_name, FIG9_SET};

fn main() {
    let workloads: Vec<_> = FIG9_SET
        .iter()
        .map(|n| by_name(n).expect("fig9 workload"))
        .collect();
    let compiled = compile_all(&workloads);
    let series = fig9(&compiled);
    print!(
        "{}",
        report::header("Figure 9 — IPC under memory-latency sweep")
    );
    print!("{}", report::fig9(&series));
    println!("  (paper averages: superscalar -48.5%, SPEAR-128 -39.7%, SPEAR-256 -38.4%)");
}
