//! **Table 2** — simulation parameters for every evaluated machine model.

use spear::report;
use spear::Machine;

fn main() {
    for m in Machine::ALL {
        print!("{}", report::header(&format!("Table 2 — {m}")));
        print!("{}", report::table2(&m.config(None)));
    }
}
