//! **sim_speed** — simulator self-throughput: full-program SPEAR-128
//! cycle simulation measured in committed instructions per host second
//! (criterion's `elem/s` readout = instructions/s; divide by 1000 for
//! KIPS, the unit `spear-sim --perf` prints).
//!
//! Tracks the hot-path data-structure work (slab RUU, chunked overlay,
//! completion calendar, dense fill/ownership tables): before/after
//! numbers live in EXPERIMENTS.md. `SPEAR_BENCH_FAST=1` drops the
//! longer `pointer` cell for CI smoke runs.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use spear::machines::Machine;
use spear::runner::{compile_workload, run_one};
use spear_workloads::by_name;

fn bench_sim_speed(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_speed");
    g.sample_size(10);
    let names: &[&str] = if spear_bench::fast_mode() {
        &["field"]
    } else {
        &["pointer", "field"]
    };
    for name in names {
        let w = by_name(name).expect("workload exists");
        let (table, _) = compile_workload(&w);
        // One calibration run sets the throughput denominator.
        let committed = run_one(&w, &table, Machine::Spear128, None).stats.committed;
        g.throughput(Throughput::Elements(committed));
        g.bench_function(&format!("{name}_spear128_full_run"), |b| {
            b.iter(|| run_one(&w, &table, Machine::Spear128, None).stats.committed)
        });
    }
    g.finish();
}

criterion_group!(benches, bench_sim_speed);
criterion_main!(benches);
