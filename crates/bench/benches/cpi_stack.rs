//! **CPI-stack decomposition** (no paper counterpart — observability):
//! for each benchmark, where do the baseline's commit slots go, and
//! which buckets does SPEAR-128 recover? The paper's central claim —
//! speedup comes from hidden memory latency, not extra bandwidth — is
//! directly visible as the `d-load miss` bucket shrinking while
//! `p-thread contention` stays small.

use spear::runner::{compile_workload, run_one};
use spear::{report, Machine};
use spear_workloads::all;

fn main() {
    println!("================================================================");
    println!("CPI stacks — baseline vs SPEAR-128, per benchmark");
    println!("================================================================");
    let width = Machine::Baseline.config(None).commit_width;
    for w in all() {
        let (table, _) = compile_workload(&w);
        let base = run_one(&w, &table, Machine::Baseline, None);
        let spear = run_one(&w, &table, Machine::Spear128, None);
        println!(
            "\n{} — IPC {:.4} -> {:.4} ({:+.1}%)",
            w.name,
            base.ipc(),
            spear.ipc(),
            (spear.ipc() / base.ipc() - 1.0) * 100.0
        );
        println!(" baseline:");
        print!("{}", report::cpi_stack(&base.stats, width));
        println!(" SPEAR-128:");
        print!("{}", report::cpi_stack(&spear.stats, width));
        if !spear.stats.dload_profiles.is_empty() {
            println!(" d-load prefetch profiles (SPEAR-128):");
            print!("{}", report::dload_profiles(&spear.stats));
        }
    }
}
