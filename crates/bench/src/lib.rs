//! # spear-bench — the evaluation harness
//!
//! One bench target per table and figure of the paper (custom harnesses
//! that print the same rows/series the paper reports), an `ablations`
//! target sweeping the design knobs DESIGN.md calls out, and a `micro`
//! target with Criterion microbenchmarks of the substrates.
//!
//! Regenerate everything with `cargo bench --workspace`, or one artifact
//! with e.g. `cargo bench -p spear-bench --bench fig6_speedup`.

/// True when a bench target should down-scale (smoke mode for CI): set
/// `SPEAR_BENCH_FAST=1`.
pub fn fast_mode() -> bool {
    std::env::var("SPEAR_BENCH_FAST").is_ok_and(|v| v == "1")
}
