//! TAGE: TAgged GEometric-history-length branch prediction.
//!
//! A faithful, deterministic port of the Seznec/Michaud TAGE design
//! (JILP 2006): a bimodal base table plus `N` tagged tables indexed by
//! hashes of the PC with geometrically increasing slices of global
//! branch history. Each tagged entry carries a 3-bit prediction counter,
//! a partial tag, and a 2-bit "useful" counter that gates replacement;
//! the longest-history tag match provides the prediction, with a
//! next-longest (or base) alternative used when the provider is a newly
//! allocated weak entry.
//!
//! Deviations from the reference implementation, chosen for
//! checkpointability and determinism:
//!
//! * index/tag hashes *fold the history functionally* on every lookup
//!   instead of maintaining incremental circular-shift registers — the
//!   whole predictor state is then plain tables plus one history
//!   register, which snapshots and restores exactly;
//! * allocation on a mispredict takes the *first* `u == 0` table above
//!   the provider (the reference throws a biased coin between
//!   candidates) — no RNG, so two identical runs are bit-identical;
//! * useful-bit aging halves every `u` counter on a fixed tick period
//!   (the reference alternates column resets), with the tick counter
//!   part of the snapshot.
//!
//! History advances only in [`Tage::update`] (branch resolution on the
//! true path), matching the crate-wide discipline — no speculative
//! history, hence nothing to repair on a squash.

use crate::{BranchPredictor, DirSnapshot, PredictorDetail, PredictorKind};
use serde::{Deserialize, Serialize};

/// Geometry of the tagged side of a TAGE predictor. The bimodal base
/// table is sized by [`crate::PredictorConfig::table_size`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TageConfig {
    /// Number of tagged tables.
    pub tables: usize,
    /// log2 entries per tagged table.
    pub table_bits: u32,
    /// Partial-tag width in bits (at most 16).
    pub tag_bits: u32,
    /// History length of the shortest tagged table.
    pub min_hist: u32,
    /// History length of the longest tagged table (at most 128).
    pub max_hist: u32,
    /// Updates between useful-counter halvings.
    pub u_decay_period: u32,
}

impl TageConfig {
    /// The default geometry: 4 tables × 1K entries, 8-bit tags,
    /// histories 4–64 — a small (~7 KB) predictor in the spirit of the
    /// original 2006 "TAGE 5-component" configuration, scaled to the
    /// paper's 2048-entry bimodal budget class.
    pub fn default_spec() -> TageConfig {
        TageConfig {
            tables: 4,
            table_bits: 10,
            tag_bits: 8,
            min_hist: 4,
            max_hist: 64,
            u_decay_period: 1 << 18,
        }
    }

    /// Validate the geometry bounds.
    pub fn validate(&self) -> Result<(), String> {
        if self.tables < 1 || self.tables > 16 {
            return Err(format!("tage tables must be 1..=16, got {}", self.tables));
        }
        if self.table_bits < 1 || self.table_bits > 20 {
            return Err(format!(
                "tage table bits must be 1..=20, got {}",
                self.table_bits
            ));
        }
        if self.tag_bits < 4 || self.tag_bits > 16 {
            return Err(format!(
                "tage tag bits must be 4..=16, got {}",
                self.tag_bits
            ));
        }
        if self.min_hist < 1 || self.max_hist > 128 || self.min_hist > self.max_hist {
            return Err(format!(
                "tage history must satisfy 1 <= hmin <= hmax <= 128, got {}..{}",
                self.min_hist, self.max_hist
            ));
        }
        if self.u_decay_period == 0 {
            return Err("tage decay period must be nonzero".to_string());
        }
        Ok(())
    }

    /// The geometric history lengths, shortest first:
    /// `L(i) = min_hist * (max_hist / min_hist) ^ (i / (N-1))`, rounded
    /// and forced strictly increasing.
    pub fn history_lengths(&self) -> Vec<u32> {
        let n = self.tables;
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let len = if n == 1 {
                self.max_hist
            } else {
                let ratio = self.max_hist as f64 / self.min_hist as f64;
                let l = self.min_hist as f64 * ratio.powf(i as f64 / (n - 1) as f64);
                (l + 0.5) as u32
            };
            let prev = out.last().copied().unwrap_or(0);
            out.push(len.clamp(prev + 1, self.max_hist.max(prev + 1)));
        }
        out
    }
}

/// One tagged table: parallel counter/tag/useful arrays.
#[derive(Clone, Debug)]
struct TaggedTable {
    /// 3-bit prediction counters, 0..=7; taken when >= 4. Weak states
    /// are 3 and 4 (a newly allocated entry starts weak).
    ctr: Vec<u8>,
    /// Partial tags.
    tag: Vec<u16>,
    /// 2-bit useful counters, 0..=3.
    u: Vec<u8>,
    mask: u32,
    /// History length this table's hashes fold.
    hist_len: u32,
}

impl TaggedTable {
    fn new(bits: u32, hist_len: u32) -> TaggedTable {
        let size = 1usize << bits;
        TaggedTable {
            ctr: vec![3; size],
            tag: vec![0; size],
            u: vec![0; size],
            mask: (size - 1) as u32,
            hist_len,
        }
    }
}

/// What one lookup saw: the provider chain for a PC under the current
/// history.
struct Lookup {
    /// Index into `tables` of the longest matching table, if any.
    provider: Option<usize>,
    /// Per-table (index, tag) pairs, precomputed once.
    slots: Vec<(usize, u16)>,
    /// Direction from the provider entry (base prediction if none).
    provider_pred: bool,
    /// Direction from the next-longest match, or the base table.
    alt_pred: bool,
    /// Whether the provider entry is newly allocated (weak counter,
    /// `u == 0`), i.e. not yet trusted.
    provider_is_new: bool,
}

/// The TAGE predictor. See the module docs for the design and the
/// determinism/checkpointing deviations.
#[derive(Clone, Debug)]
pub struct Tage {
    cfg: TageConfig,
    /// Bimodal base: 2-bit counters, 0..=3, taken when >= 2.
    base: Vec<u8>,
    base_mask: u32,
    tables: Vec<TaggedTable>,
    /// Global direction history, newest outcome in bit 0 of `hist[0]`.
    hist: [u64; 2],
    /// Signed "use the alternative prediction for new entries" counter,
    /// -8..=7 (use alt when >= 0).
    use_alt_on_na: i8,
    /// Updates since the last useful-counter halving.
    tick: u32,
    // Internal counters for the stats envelope (reset on restore, never
    // part of the snapshot — a restored predictor counts only its own
    // resolutions).
    stat_provider_tagged: u64,
    stat_provider_base: u64,
    stat_alt_used: u64,
    stat_allocs: u64,
    stat_alloc_fails: u64,
    stat_u_decays: u64,
}

impl Tage {
    /// Build with a `base_size`-entry bimodal base (power of two) and
    /// the given tagged-table geometry.
    pub fn new(base_size: usize, cfg: TageConfig) -> Tage {
        assert!(base_size.is_power_of_two(), "tage base size must be 2^k");
        cfg.validate().expect("tage geometry");
        let lens = cfg.history_lengths();
        Tage {
            cfg,
            base: vec![1; base_size],
            base_mask: (base_size - 1) as u32,
            tables: lens
                .iter()
                .map(|&l| TaggedTable::new(cfg.table_bits, l))
                .collect(),
            hist: [0; 2],
            use_alt_on_na: 0,
            tick: 0,
            stat_provider_tagged: 0,
            stat_provider_base: 0,
            stat_alt_used: 0,
            stat_allocs: 0,
            stat_alloc_fails: 0,
            stat_u_decays: 0,
        }
    }

    /// The configured geometry.
    pub fn config(&self) -> TageConfig {
        self.cfg
    }

    /// Extract history bits `[from, from+n)` (newest outcome at 0).
    fn hist_slice(&self, from: u32, n: u32) -> u64 {
        debug_assert!(n <= 64 && from + n <= 128);
        let lo = if from < 64 { self.hist[0] >> from } else { 0 };
        let hi = if from < 64 {
            // Bits of hist[1] shifted in above the remainder of hist[0].
            if from == 0 {
                0 // avoid shift-by-64; n <= 64 bits all come from hist[0]
            } else {
                self.hist[1] << (64 - from)
            }
        } else {
            self.hist[1] >> (from - 64)
        };
        let v = lo | hi;
        if n == 64 {
            v
        } else {
            v & ((1u64 << n) - 1)
        }
    }

    /// Fold `len` history bits into a `bits`-wide value by XOR.
    fn fold_hist(&self, len: u32, bits: u32) -> u32 {
        let mut acc: u64 = 0;
        let mut from = 0;
        while from < len {
            let chunk = bits.min(len - from);
            acc ^= self.hist_slice(from, chunk);
            from += bits;
        }
        (acc as u32) & ((1u32 << bits) - 1)
    }

    /// (index, tag) for table `i` at `pc` under the current history.
    fn slot(&self, i: usize, pc: u32) -> (usize, u16) {
        let t = &self.tables[i];
        let bits = self.cfg.table_bits;
        let idx = (pc ^ (pc >> bits) ^ self.fold_hist(t.hist_len, bits)) & t.mask;
        let tb = self.cfg.tag_bits;
        let tag = (pc ^ self.fold_hist(t.hist_len, tb) ^ (self.fold_hist(t.hist_len, tb - 1) << 1))
            & ((1u32 << tb) - 1);
        (idx as usize, tag as u16)
    }

    fn base_pred(&self, pc: u32) -> bool {
        self.base[(pc & self.base_mask) as usize] >= 2
    }

    /// Run the provider/alt selection for `pc` under current history.
    fn lookup(&self, pc: u32) -> Lookup {
        let slots: Vec<(usize, u16)> = (0..self.tables.len()).map(|i| self.slot(i, pc)).collect();
        let mut provider = None;
        let mut alt = None;
        for i in (0..self.tables.len()).rev() {
            let (idx, tag) = slots[i];
            if self.tables[i].tag[idx] == tag {
                if provider.is_none() {
                    provider = Some(i);
                } else {
                    alt = Some(i);
                    break;
                }
            }
        }
        let base = self.base_pred(pc);
        let (provider_pred, provider_is_new) = match provider {
            Some(i) => {
                let (idx, _) = slots[i];
                let c = self.tables[i].ctr[idx];
                (c >= 4, (c == 3 || c == 4) && self.tables[i].u[idx] == 0)
            }
            None => (base, false),
        };
        let alt_pred = match alt {
            Some(i) => {
                let (idx, _) = slots[i];
                self.tables[i].ctr[idx] >= 4
            }
            None => base,
        };
        Lookup {
            provider,
            slots,
            provider_pred,
            alt_pred,
            provider_is_new,
        }
    }

    /// The final direction choice given a lookup.
    fn choose(&self, l: &Lookup) -> bool {
        if l.provider.is_some() && l.provider_is_new && self.use_alt_on_na >= 0 {
            l.alt_pred
        } else {
            l.provider_pred
        }
    }

    fn bump3(c: &mut u8, taken: bool) {
        if taken {
            *c = (*c + 1).min(7);
        } else {
            *c = c.saturating_sub(1);
        }
    }
}

impl BranchPredictor for Tage {
    fn kind(&self) -> PredictorKind {
        PredictorKind::Tage
    }

    fn predict(&self, pc: u32) -> bool {
        let l = self.lookup(pc);
        self.choose(&l)
    }

    fn update(&mut self, pc: u32, taken: bool) {
        // Recompute the provider chain under the resolution-time history
        // — the same idiom the gshare table uses (the hit/miss *stats*
        // are judged against the fetch-time prediction by the facade).
        let l = self.lookup(pc);
        let chosen = self.choose(&l);

        if let Some(p) = l.provider {
            self.stat_provider_tagged += 1;
            if chosen != l.provider_pred {
                self.stat_alt_used += 1;
            }
            let (idx, _) = l.slots[p];
            // Track whether trusting weak new entries beats their alt.
            if l.provider_is_new && l.provider_pred != l.alt_pred {
                let delta = if l.alt_pred == taken { 1 } else { -1 };
                self.use_alt_on_na = (self.use_alt_on_na + delta).clamp(-8, 7);
            }
            // The useful bit rewards a provider that disagreed with its
            // alternative and was right (and punishes the converse).
            if l.provider_pred != l.alt_pred {
                let u = &mut self.tables[p].u[idx];
                if l.provider_pred == taken {
                    *u = (*u + 1).min(3);
                } else {
                    *u = u.saturating_sub(1);
                }
            }
            Self::bump3(&mut self.tables[p].ctr[idx], taken);
            // A provider too short to be confident also trains the base,
            // keeping the fallback warm (reference "update both" rule for
            // the alt path when the provider is new).
            if l.provider_is_new {
                let b = &mut self.base[(pc & self.base_mask) as usize];
                if taken {
                    *b = (*b + 1).min(3);
                } else {
                    *b = b.saturating_sub(1);
                }
            }
        } else {
            self.stat_provider_base += 1;
            let b = &mut self.base[(pc & self.base_mask) as usize];
            if taken {
                *b = (*b + 1).min(3);
            } else {
                *b = b.saturating_sub(1);
            }
        }

        // Allocate a longer-history entry on a mispredict (when one
        // exists above the provider): deterministically take the first
        // u == 0 candidate; if none, age every candidate's u instead.
        if chosen != taken {
            let start = l.provider.map(|p| p + 1).unwrap_or(0);
            if start < self.tables.len() {
                let mut allocated = false;
                for i in start..self.tables.len() {
                    let (idx, tag) = l.slots[i];
                    if self.tables[i].u[idx] == 0 {
                        self.tables[i].tag[idx] = tag;
                        self.tables[i].ctr[idx] = if taken { 4 } else { 3 };
                        self.stat_allocs += 1;
                        allocated = true;
                        break;
                    }
                }
                if !allocated {
                    self.stat_alloc_fails += 1;
                    for i in start..self.tables.len() {
                        let (idx, _) = l.slots[i];
                        self.tables[i].u[idx] = self.tables[i].u[idx].saturating_sub(1);
                    }
                }
            }
        }

        // Periodic useful-counter aging, on a snapshotted tick.
        self.tick += 1;
        if self.tick >= self.cfg.u_decay_period {
            self.tick = 0;
            self.stat_u_decays += 1;
            for t in &mut self.tables {
                for u in &mut t.u {
                    *u >>= 1;
                }
            }
        }

        // Advance global history (resolution order, true path only).
        self.hist[1] = (self.hist[1] << 1) | (self.hist[0] >> 63);
        self.hist[0] = (self.hist[0] << 1) | taken as u64;
        if self.cfg.max_hist < 64 {
            self.hist[0] &= (1u64 << self.cfg.max_hist) - 1;
            self.hist[1] = 0;
        } else if self.cfg.max_hist < 128 {
            self.hist[1] &= (1u64 << (self.cfg.max_hist - 64)) - 1;
        }
    }

    fn snapshot(&self) -> DirSnapshot {
        DirSnapshot::Tage(TageSnapshot {
            base: self.base.clone(),
            ctrs: self.tables.iter().map(|t| t.ctr.clone()).collect(),
            tags: self.tables.iter().map(|t| t.tag.clone()).collect(),
            useful: self.tables.iter().map(|t| t.u.clone()).collect(),
            hist: self.hist.to_vec(),
            use_alt_on_na: self.use_alt_on_na,
            tick: self.tick,
        })
    }

    fn restore(&mut self, snap: &DirSnapshot) -> Result<(), String> {
        let DirSnapshot::Tage(s) = snap else {
            return Err(format!(
                "snapshot holds {} state, live predictor is tage",
                snap.kind().name()
            ));
        };
        if s.base.len() != self.base.len() {
            return Err(format!(
                "snapshot base table has {} counters, live table holds {}",
                s.base.len(),
                self.base.len()
            ));
        }
        if s.ctrs.len() != self.tables.len()
            || s.tags.len() != self.tables.len()
            || s.useful.len() != self.tables.len()
        {
            return Err(format!(
                "snapshot has {} tagged tables, live predictor has {}",
                s.ctrs.len(),
                self.tables.len()
            ));
        }
        for (i, t) in self.tables.iter().enumerate() {
            let want = t.ctr.len();
            if s.ctrs[i].len() != want || s.tags[i].len() != want || s.useful[i].len() != want {
                return Err(format!(
                    "snapshot tagged table {i} has {} entries, live table holds {want}",
                    s.ctrs[i].len()
                ));
            }
        }
        if s.hist.len() != 2 {
            return Err(format!(
                "snapshot history has {} words, expected 2",
                s.hist.len()
            ));
        }
        self.base.copy_from_slice(&s.base);
        for (i, t) in self.tables.iter_mut().enumerate() {
            t.ctr.copy_from_slice(&s.ctrs[i]);
            t.tag.copy_from_slice(&s.tags[i]);
            t.u.copy_from_slice(&s.useful[i]);
        }
        self.hist = [s.hist[0], s.hist[1]];
        self.use_alt_on_na = s.use_alt_on_na.clamp(-8, 7);
        self.tick = s.tick;
        self.stat_provider_tagged = 0;
        self.stat_provider_base = 0;
        self.stat_alt_used = 0;
        self.stat_allocs = 0;
        self.stat_alloc_fails = 0;
        self.stat_u_decays = 0;
        Ok(())
    }

    fn geometry(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("base_entries", self.base.len() as u64),
            ("tagged_tables", self.cfg.tables as u64),
            ("entries_per_table", 1u64 << self.cfg.table_bits),
            ("tag_bits", self.cfg.tag_bits as u64),
            ("min_history", self.cfg.min_hist as u64),
            ("max_history", self.cfg.max_hist as u64),
        ]
    }

    fn detail(&self) -> Option<PredictorDetail> {
        Some(PredictorDetail {
            kind: "tage".to_string(),
            counters: vec![
                ("provider_tagged".to_string(), self.stat_provider_tagged),
                ("provider_base".to_string(), self.stat_provider_base),
                ("alt_used".to_string(), self.stat_alt_used),
                ("allocations".to_string(), self.stat_allocs),
                ("allocation_fails".to_string(), self.stat_alloc_fails),
                ("u_decays".to_string(), self.stat_u_decays),
            ],
        })
    }

    fn clone_box(&self) -> Box<dyn BranchPredictor> {
        Box::new(self.clone())
    }
}

/// Serializable warm TAGE state (vendored-serde friendly: named fields,
/// scalars and `Vec`s only). Internal stat counters are deliberately
/// absent — a restored predictor counts only its own resolutions.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TageSnapshot {
    /// Bimodal base counters.
    pub base: Vec<u8>,
    /// Per-table 3-bit prediction counters.
    pub ctrs: Vec<Vec<u8>>,
    /// Per-table partial tags.
    pub tags: Vec<Vec<u16>>,
    /// Per-table 2-bit useful counters.
    pub useful: Vec<Vec<u8>>,
    /// Global history, `[low 64 bits, high 64 bits]`.
    pub hist: Vec<u64>,
    /// The use-alt-on-newly-allocated counter.
    pub use_alt_on_na: i8,
    /// Updates since the last useful-counter halving.
    pub tick: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn history_lengths_are_geometric_and_strictly_increasing() {
        let lens = TageConfig::default_spec().history_lengths();
        assert_eq!(lens.len(), 4);
        assert_eq!(*lens.first().unwrap(), 4);
        assert_eq!(*lens.last().unwrap(), 64);
        assert!(lens.windows(2).all(|w| w[0] < w[1]), "{lens:?}");
        // Degenerate single-table geometry still works.
        let one = TageConfig {
            tables: 1,
            ..TageConfig::default_spec()
        };
        assert_eq!(one.history_lengths(), vec![64]);
    }

    #[test]
    fn hist_slice_crosses_the_word_boundary() {
        let mut t = Tage::new(64, TageConfig::default_spec());
        t.cfg.max_hist = 128; // widen so nothing is masked away
        t.hist = [u64::MAX, 0b1011];
        assert_eq!(t.hist_slice(0, 8), 0xFF);
        assert_eq!(t.hist_slice(60, 8), 0b1011_1111);
        assert_eq!(t.hist_slice(64, 4), 0b1011);
        assert_eq!(t.hist_slice(0, 64), u64::MAX);
    }

    #[test]
    fn learns_a_long_alternation_that_defeats_bimodal() {
        // Pattern with period 8 on one PC: needs history, not bias.
        let mut t = Tage::new(2048, TageConfig::default_spec());
        let pattern = [true, true, false, true, false, false, true, false];
        let mut correct = 0;
        for i in 0..4000 {
            let taken = pattern[i % pattern.len()];
            if t.predict(100) == taken {
                correct += 1;
            }
            t.update(100, taken);
        }
        assert!(
            correct > 3400,
            "tage should learn a period-8 pattern, got {correct}/4000"
        );
    }

    #[test]
    fn validate_rejects_bad_geometry() {
        let base = TageConfig::default_spec();
        assert!(TageConfig { tables: 0, ..base }.validate().is_err());
        assert!(TageConfig {
            tag_bits: 2,
            ..base
        }
        .validate()
        .is_err());
        assert!(TageConfig {
            min_hist: 32,
            max_hist: 8,
            ..base
        }
        .validate()
        .is_err());
        assert!(TageConfig {
            max_hist: 1000,
            ..base
        }
        .validate()
        .is_err());
        assert!(TageConfig {
            u_decay_period: 0,
            ..base
        }
        .validate()
        .is_err());
    }
}
