//! Return address stack.

/// A fixed-depth return address stack.
///
/// Pushed on calls (`jal`/`jalr`), popped on returns (`jr`). Overflow wraps
/// (oldest entry overwritten), underflow returns `None` — both standard
/// hardware behaviours.
#[derive(Clone, Debug)]
pub struct ReturnStack {
    buf: Vec<u32>,
    top: usize,
    len: usize,
}

impl ReturnStack {
    /// A stack with `depth` entries (at least 1).
    pub fn new(depth: usize) -> ReturnStack {
        assert!(depth > 0, "RAS depth must be nonzero");
        ReturnStack {
            buf: vec![0; depth],
            top: 0,
            len: 0,
        }
    }

    /// Push a return address; overwrites the oldest entry when full.
    pub fn push(&mut self, addr: u32) {
        self.buf[self.top] = addr;
        self.top = (self.top + 1) % self.buf.len();
        self.len = (self.len + 1).min(self.buf.len());
    }

    /// Pop the most recent return address.
    pub fn pop(&mut self) -> Option<u32> {
        if self.len == 0 {
            return None;
        }
        self.top = (self.top + self.buf.len() - 1) % self.buf.len();
        self.len -= 1;
        Some(self.buf[self.top])
    }

    /// Number of live entries.
    pub fn depth(&self) -> usize {
        self.len
    }

    /// Discard everything (misprediction recovery).
    pub fn clear(&mut self) {
        self.len = 0;
        self.top = 0;
    }

    /// Live entries, oldest first (for checkpointing). Replaying the
    /// returned addresses through [`ReturnStack::push`] on an empty stack
    /// of any depth ≥ the snapshot length reproduces the live state.
    pub fn snapshot(&self) -> Vec<u32> {
        (0..self.len)
            .map(|i| {
                let cap = self.buf.len();
                // Oldest live entry sits `len` slots behind `top`.
                self.buf[(self.top + cap - self.len + i) % cap]
            })
            .collect()
    }

    /// Reset to exactly the live entries of a snapshot (oldest first).
    /// Entries beyond this stack's depth are dropped oldest-first, the
    /// same truncation pushing them one by one would produce.
    pub fn restore(&mut self, entries: &[u32]) {
        self.clear();
        for &a in entries {
            self.push(a);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifo_order() {
        let mut s = ReturnStack::new(4);
        s.push(1);
        s.push(2);
        s.push(3);
        assert_eq!(s.pop(), Some(3));
        assert_eq!(s.pop(), Some(2));
        assert_eq!(s.pop(), Some(1));
        assert_eq!(s.pop(), None);
    }

    #[test]
    fn overflow_drops_oldest() {
        let mut s = ReturnStack::new(2);
        s.push(1);
        s.push(2);
        s.push(3); // overwrites 1
        assert_eq!(s.depth(), 2);
        assert_eq!(s.pop(), Some(3));
        assert_eq!(s.pop(), Some(2));
        assert_eq!(s.pop(), None);
    }

    #[test]
    fn clear_empties() {
        let mut s = ReturnStack::new(4);
        s.push(9);
        s.clear();
        assert_eq!(s.pop(), None);
        assert_eq!(s.depth(), 0);
    }

    #[test]
    fn snapshot_restore_survives_wraparound() {
        let mut s = ReturnStack::new(4);
        for a in 1..=6 {
            s.push(a); // wraps: live entries are 3,4,5,6 (oldest first)
        }
        assert_eq!(s.snapshot(), vec![3, 4, 5, 6]);
        let snap = s.snapshot();
        let mut t = ReturnStack::new(4);
        t.restore(&snap);
        assert_eq!(t.pop(), Some(6));
        assert_eq!(t.pop(), Some(5));
        assert_eq!(t.pop(), Some(4));
        assert_eq!(t.pop(), Some(3));
        assert_eq!(t.pop(), None);
    }

    #[test]
    fn nested_calls_unwind_correctly() {
        let mut s = ReturnStack::new(8);
        for depth in 0..5 {
            s.push(100 + depth);
        }
        for depth in (0..5).rev() {
            assert_eq!(s.pop(), Some(100 + depth));
        }
    }
}
