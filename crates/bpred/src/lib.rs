//! # spear-bpred — branch prediction
//!
//! The paper's front end uses a bimodal predictor with a 2048-entry table
//! (Table 2). This crate provides that predictor, a gshare alternative for
//! ablations, a branch target buffer for indirect jumps, and a return
//! address stack, behind one [`Predictor`] facade that the fetch stage
//! drives.
//!
//! Direction state is updated at branch *resolution* on the true path only
//! (the core calls [`Predictor::update`] when a branch executes), so
//! wrong-path fetches never pollute the tables — the same discipline
//! `sim-outorder` uses.

pub mod ras;
pub mod tables;

pub use ras::ReturnStack;
pub use tables::{Bimodal, Btb, Gshare};

use serde::{Deserialize, Serialize};
use spear_isa::{Inst, OpShape};

/// Which direction predictor to use.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum PredictorKind {
    /// 2-bit saturating counters indexed by PC (the paper's predictor).
    Bimodal,
    /// Global-history-xor-PC indexing (ablation).
    Gshare,
}

/// Predictor configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PredictorConfig {
    /// Direction predictor flavour.
    pub kind: PredictorKind,
    /// Direction table entries (power of two). Table 2: 2048.
    pub table_size: usize,
    /// BTB entries (power of two).
    pub btb_entries: usize,
    /// Return address stack depth.
    pub ras_depth: usize,
}

impl PredictorConfig {
    /// Table 2: bimodal, 2048-entry table.
    pub fn paper() -> PredictorConfig {
        PredictorConfig {
            kind: PredictorKind::Bimodal,
            table_size: 2048,
            btb_entries: 512,
            ras_depth: 16,
        }
    }
}

/// Prediction statistics (Table 3 reports the branch hit ratio).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PredStats {
    /// Conditional branches resolved.
    pub cond_branches: u64,
    /// Conditional branches whose predicted direction was correct.
    pub cond_correct: u64,
    /// Indirect jumps resolved.
    pub indirect: u64,
    /// Indirect jumps whose predicted target was correct.
    pub indirect_correct: u64,
}

impl PredStats {
    /// Direction hit ratio over conditional branches.
    pub fn hit_ratio(&self) -> f64 {
        if self.cond_branches == 0 {
            1.0
        } else {
            self.cond_correct as f64 / self.cond_branches as f64
        }
    }
}

/// A fetch-time prediction for one control instruction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Prediction {
    /// Predicted next PC.
    pub next_pc: u32,
    /// For conditional branches, the predicted direction.
    pub taken: Option<bool>,
}

/// The combined front-end predictor.
#[derive(Clone, Debug)]
pub struct Predictor {
    kind: PredictorKind,
    bimodal: Bimodal,
    gshare: Gshare,
    btb: Btb,
    ras: ReturnStack,
    /// Resolution statistics.
    pub stats: PredStats,
}

impl Predictor {
    /// Build from a configuration.
    pub fn new(cfg: PredictorConfig) -> Predictor {
        Predictor {
            kind: cfg.kind,
            bimodal: Bimodal::new(cfg.table_size),
            gshare: Gshare::new(cfg.table_size),
            btb: Btb::new(cfg.btb_entries),
            ras: ReturnStack::new(cfg.ras_depth),
            stats: PredStats::default(),
        }
    }

    fn predict_dir(&self, pc: u32) -> bool {
        match self.kind {
            PredictorKind::Bimodal => self.bimodal.predict(pc),
            PredictorKind::Gshare => self.gshare.predict(pc),
        }
    }

    /// Predict the next PC for the instruction at `pc`.
    ///
    /// The fetch stage calls this for every fetched instruction (our fetch
    /// model sees the instruction word, i.e. predecode-time prediction).
    /// Speculatively pushes/pops the return stack for `jal`/`jr`.
    pub fn predict(&mut self, pc: u32, inst: &Inst) -> Prediction {
        let fall = pc + 1;
        match inst.op.shape() {
            OpShape::Branch => {
                let taken = self.predict_dir(pc);
                let next_pc = if taken { inst.imm as u32 } else { fall };
                Prediction {
                    next_pc,
                    taken: Some(taken),
                }
            }
            OpShape::Jump => Prediction {
                next_pc: inst.imm as u32,
                taken: None,
            },
            OpShape::JumpLink => {
                self.ras.push(fall);
                Prediction {
                    next_pc: inst.imm as u32,
                    taken: None,
                }
            }
            OpShape::JumpReg => {
                // Treat register-indirect jumps as returns first (workloads
                // use jal/jr as call/ret), falling back to the BTB.
                let next_pc = self
                    .ras
                    .pop()
                    .or_else(|| self.btb.lookup(pc))
                    .unwrap_or(fall);
                Prediction {
                    next_pc,
                    taken: None,
                }
            }
            OpShape::JumpLinkReg => {
                let target = self.btb.lookup(pc);
                self.ras.push(fall);
                Prediction {
                    next_pc: target.unwrap_or(fall),
                    taken: None,
                }
            }
            _ => Prediction {
                next_pc: fall,
                taken: None,
            },
        }
    }

    /// Resolve a control instruction on the true path: update direction
    /// tables, BTB, and statistics. `predicted` is what [`Predictor::predict`]
    /// returned at fetch (if this instruction was fetched with a prediction).
    pub fn update(
        &mut self,
        pc: u32,
        inst: &Inst,
        taken: bool,
        target: u32,
        predicted: Option<Prediction>,
    ) {
        match inst.op.shape() {
            OpShape::Branch => {
                self.stats.cond_branches += 1;
                if let Some(p) = predicted {
                    if p.taken == Some(taken) {
                        self.stats.cond_correct += 1;
                    }
                }
                match self.kind {
                    PredictorKind::Bimodal => self.bimodal.update(pc, taken),
                    PredictorKind::Gshare => self.gshare.update(pc, taken),
                }
            }
            OpShape::JumpReg | OpShape::JumpLinkReg => {
                self.stats.indirect += 1;
                if let Some(p) = predicted {
                    if p.next_pc == target {
                        self.stats.indirect_correct += 1;
                    }
                }
                self.btb.insert(pc, target);
            }
            _ => {}
        }
    }

    /// Squash speculative return-stack state after a misprediction. The
    /// stack is simply cleared — a conservative recovery that matches the
    /// cheap hardware the paper assumes.
    pub fn recover(&mut self) {
        self.ras.clear();
    }

    /// Capture the warm predictor state (direction counters, global
    /// history, BTB, RAS). Statistics are not captured: a restored
    /// predictor counts only its own resolutions.
    pub fn snapshot(&self) -> PredictorSnapshot {
        let (gshare, gshare_history) = self.gshare.snapshot();
        PredictorSnapshot {
            bimodal: self.bimodal.snapshot(),
            gshare,
            gshare_history,
            btb: self.btb.snapshot(),
            ras: self.ras.snapshot(),
        }
    }

    /// Load warm state captured from a predictor built with the same
    /// configuration (table/BTB sizes must match). Resets statistics.
    pub fn restore(&mut self, snap: &PredictorSnapshot) -> Result<(), String> {
        self.bimodal
            .restore(&snap.bimodal)
            .map_err(|e| format!("bimodal: {e}"))?;
        self.gshare
            .restore(&snap.gshare, snap.gshare_history)
            .map_err(|e| format!("gshare: {e}"))?;
        self.btb
            .restore(&snap.btb)
            .map_err(|e| format!("btb: {e}"))?;
        self.ras.restore(&snap.ras);
        self.stats = PredStats::default();
        Ok(())
    }
}

/// Serializable image of a [`Predictor`]'s warm state, used by the
/// checkpointing subsystem (`spear-campaign`). Both direction tables are
/// captured regardless of the active [`PredictorKind`], so a snapshot is
/// self-contained for either flavour.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PredictorSnapshot {
    /// Bimodal 2-bit counters.
    pub bimodal: Vec<u8>,
    /// Gshare 2-bit counters.
    pub gshare: Vec<u8>,
    /// Gshare global history register.
    pub gshare_history: u32,
    /// BTB `(tag, target)` entries.
    pub btb: Vec<Option<(u32, u32)>>,
    /// Return-stack live entries, oldest first.
    pub ras: Vec<u32>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use spear_isa::reg::*;
    use spear_isa::Opcode;

    fn branch(target: u32) -> Inst {
        Inst::new(Opcode::Bne, R0, R1, R0, target as i64)
    }

    #[test]
    fn bimodal_learns_a_loop_branch() {
        let mut p = Predictor::new(PredictorConfig::paper());
        let b = branch(5);
        for _ in 0..4 {
            let pred = p.predict(100, &b);
            p.update(100, &b, true, 5, Some(pred));
        }
        let pred = p.predict(100, &b);
        assert_eq!(pred.taken, Some(true));
        assert_eq!(pred.next_pc, 5);
    }

    #[test]
    fn hit_ratio_tracks_accuracy() {
        let mut p = Predictor::new(PredictorConfig::paper());
        let b = branch(5);
        for i in 0..10 {
            let pred = p.predict(100, &b);
            let taken = i >= 2; // first two may mispredict while warming
            p.update(100, &b, taken, 5, Some(pred));
        }
        assert_eq!(p.stats.cond_branches, 10);
        assert!(p.stats.hit_ratio() > 0.5, "{}", p.stats.hit_ratio());
    }

    #[test]
    fn call_return_pairs_predict_via_ras() {
        let mut p = Predictor::new(PredictorConfig::paper());
        let call = Inst::new(Opcode::Jal, R31, R0, R0, 50);
        let ret = Inst::new(Opcode::Jr, R0, R31, R0, 0);
        let c = p.predict(10, &call);
        assert_eq!(c.next_pc, 50);
        let r = p.predict(60, &ret);
        assert_eq!(r.next_pc, 11, "return address from RAS");
    }

    #[test]
    fn indirect_jump_uses_btb_after_training() {
        let mut p = Predictor::new(PredictorConfig::paper());
        let jr = Inst::new(Opcode::Jr, R0, R7, R0, 0);
        let miss = p.predict(20, &jr);
        assert_eq!(miss.next_pc, 21);
        p.update(20, &jr, true, 77, Some(miss));
        let hit = p.predict(20, &jr);
        assert_eq!(hit.next_pc, 77);
        assert_eq!(p.stats.indirect, 1);
        assert_eq!(p.stats.indirect_correct, 0);
    }

    #[test]
    fn non_control_predicts_fallthrough() {
        let mut p = Predictor::new(PredictorConfig::paper());
        let add = Inst::new(Opcode::Add, R1, R2, R3, 0);
        assert_eq!(p.predict(7, &add).next_pc, 8);
    }

    #[test]
    fn recover_clears_ras() {
        let mut p = Predictor::new(PredictorConfig::paper());
        let call = Inst::new(Opcode::Jal, R31, R0, R0, 50);
        p.predict(10, &call);
        p.recover();
        let ret = Inst::new(Opcode::Jr, R0, R31, R0, 0);
        assert_eq!(p.predict(60, &ret).next_pc, 61, "stack cleared");
    }

    #[test]
    fn snapshot_restore_reproduces_predictions() {
        let mut p = Predictor::new(PredictorConfig::paper());
        let b = branch(5);
        for _ in 0..4 {
            let pred = p.predict(100, &b);
            p.update(100, &b, true, 5, Some(pred));
        }
        let jr = Inst::new(Opcode::Jr, R0, R7, R0, 0);
        p.update(20, &jr, true, 77, None);
        let call = Inst::new(Opcode::Jal, R31, R0, R0, 50);
        p.predict(10, &call); // push 11 onto the RAS
        let snap = p.snapshot();

        let mut q = Predictor::new(PredictorConfig::paper());
        q.restore(&snap).expect("same configuration");
        let ret = Inst::new(Opcode::Jr, R0, R31, R0, 0);
        assert_eq!(q.predict(60, &ret).next_pc, 11, "RAS carried over");
        assert_eq!(q.predict(100, &b).taken, Some(true), "counters warm");
        assert_eq!(q.predict(20, &jr).next_pc, 77, "BTB carried over");
        assert_eq!(q.stats, PredStats::default(), "stats reset on restore");
    }

    #[test]
    fn restore_rejects_size_mismatch() {
        let p = Predictor::new(PredictorConfig::paper());
        let snap = p.snapshot();
        let mut small = Predictor::new(PredictorConfig {
            table_size: 64,
            ..PredictorConfig::paper()
        });
        assert!(small.restore(&snap).is_err());
    }

    #[test]
    fn gshare_distinguishes_history() {
        let mut p = Predictor::new(PredictorConfig {
            kind: PredictorKind::Gshare,
            ..PredictorConfig::paper()
        });
        let b = branch(5);
        // Alternating pattern TNTN… — gshare can learn it, bimodal cannot.
        let mut correct = 0;
        for i in 0..200 {
            let taken = i % 2 == 0;
            let pred = p.predict(100, &b);
            if pred.taken == Some(taken) {
                correct += 1;
            }
            p.update(100, &b, taken, 5, Some(pred));
        }
        assert!(
            correct > 150,
            "gshare should learn alternation, got {correct}"
        );
    }

    #[test]
    fn bimodal_fails_alternation() {
        let mut p = Predictor::new(PredictorConfig::paper());
        let b = branch(5);
        let mut correct = 0;
        for i in 0..200 {
            let taken = i % 2 == 0;
            let pred = p.predict(100, &b);
            if pred.taken == Some(taken) {
                correct += 1;
            }
            p.update(100, &b, taken, 5, Some(pred));
        }
        assert!(
            correct < 120,
            "bimodal cannot learn alternation, got {correct}"
        );
    }
}
