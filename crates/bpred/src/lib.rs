//! # spear-bpred — branch prediction
//!
//! The paper's front end uses a bimodal predictor with a 2048-entry table
//! (Table 2). This crate provides that predictor, a gshare alternative for
//! ablations, and a TAGE port for the "does SPEAR survive a modern
//! predictor?" sensitivity study, all behind the [`BranchPredictor`]
//! trait. A branch target buffer for indirect jumps and a return address
//! stack complete the [`Predictor`] facade that the fetch stage drives.
//!
//! Direction state is updated at branch *resolution* on the true path only
//! (the core calls [`Predictor::update`] when a branch executes), so
//! wrong-path fetches never pollute the tables — the same discipline
//! `sim-outorder` uses. Because history registers only advance in
//! `update`, no direction predictor needs history checkpointing on a
//! squash: [`Predictor::recover`] clears only the return stack.

pub mod ras;
pub mod tables;
pub mod tage;

pub use ras::ReturnStack;
pub use tables::{Bimodal, Btb, Gshare};
pub use tage::{Tage, TageConfig, TageSnapshot};

use serde::{Deserialize, Serialize};
use spear_isa::{Inst, OpShape};

/// Which direction predictor to use.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum PredictorKind {
    /// 2-bit saturating counters indexed by PC (the paper's predictor).
    Bimodal,
    /// Global-history-xor-PC indexing (ablation).
    Gshare,
    /// TAGE: tagged geometric-history tables over a bimodal base.
    Tage,
}

impl PredictorKind {
    /// Canonical lowercase name (the CLI spelling and snapshot tag).
    pub fn name(self) -> &'static str {
        match self {
            PredictorKind::Bimodal => "bimodal",
            PredictorKind::Gshare => "gshare",
            PredictorKind::Tage => "tage",
        }
    }
}

/// Predictor configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PredictorConfig {
    /// Direction predictor flavour.
    pub kind: PredictorKind,
    /// Direction table entries (power of two). Table 2: 2048. For TAGE
    /// this sizes the bimodal *base* table; the tagged tables are sized
    /// by [`TageConfig`].
    pub table_size: usize,
    /// BTB entries (power of two).
    pub btb_entries: usize,
    /// Return address stack depth.
    pub ras_depth: usize,
    /// TAGE geometry (used only when `kind == Tage`, but always carried
    /// so a config round-trips losslessly through JSON).
    pub tage: TageConfig,
}

impl PredictorConfig {
    /// Table 2: bimodal, 2048-entry table.
    pub fn paper() -> PredictorConfig {
        PredictorConfig {
            kind: PredictorKind::Bimodal,
            table_size: 2048,
            btb_entries: 512,
            ras_depth: 16,
            tage: TageConfig::default_spec(),
        }
    }

    /// Apply a CLI predictor spec to this configuration, keeping the BTB
    /// and RAS sizing. Accepted forms:
    ///
    /// * `bimodal` | `gshare` | `tage`
    /// * `tage:key=val,...` with keys `tables`, `bits` (log2 entries per
    ///   tagged table), `tag` (tag bits), `hmin`/`hmax` (geometric
    ///   history bounds) and `decay` (useful-bit decay period).
    pub fn with_spec(mut self, spec: &str) -> Result<PredictorConfig, String> {
        let (kind, rest) = match spec.split_once(':') {
            Some((k, r)) => (k, Some(r)),
            None => (spec, None),
        };
        self.kind = match kind {
            "bimodal" => PredictorKind::Bimodal,
            "gshare" => PredictorKind::Gshare,
            "tage" => PredictorKind::Tage,
            other => return Err(format!("unknown predictor `{other}`")),
        };
        if let Some(rest) = rest {
            if self.kind != PredictorKind::Tage {
                return Err(format!("predictor `{kind}` takes no parameters"));
            }
            let mut t = self.tage;
            for kv in rest.split(',') {
                let Some((key, val)) = kv.split_once('=') else {
                    return Err(format!("bad tage parameter `{kv}` (want key=val)"));
                };
                let n: u32 = val
                    .parse()
                    .map_err(|_| format!("bad tage value `{val}` for `{key}`"))?;
                match key {
                    "tables" => t.tables = n as usize,
                    "bits" => t.table_bits = n,
                    "tag" => t.tag_bits = n,
                    "hmin" => t.min_hist = n,
                    "hmax" => t.max_hist = n,
                    "decay" => t.u_decay_period = n,
                    other => return Err(format!("unknown tage parameter `{other}`")),
                }
            }
            t.validate()?;
            self.tage = t;
        }
        Ok(self)
    }

    /// The canonical spec label: parses back into an identical config via
    /// [`PredictorConfig::with_spec`]. Non-default TAGE geometry is
    /// spelled out in full so the label alone pins the tables.
    pub fn spec_label(&self) -> String {
        match self.kind {
            PredictorKind::Bimodal => "bimodal".to_string(),
            PredictorKind::Gshare => "gshare".to_string(),
            PredictorKind::Tage => {
                if self.tage == TageConfig::default_spec() {
                    "tage".to_string()
                } else {
                    let t = &self.tage;
                    format!(
                        "tage:tables={},bits={},tag={},hmin={},hmax={},decay={}",
                        t.tables,
                        t.table_bits,
                        t.tag_bits,
                        t.min_hist,
                        t.max_hist,
                        t.u_decay_period
                    )
                }
            }
        }
    }
}

/// Prediction statistics (Table 3 reports the branch hit ratio).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PredStats {
    /// Conditional branches resolved.
    pub cond_branches: u64,
    /// Conditional branches whose predicted direction was correct.
    pub cond_correct: u64,
    /// Indirect jumps resolved.
    pub indirect: u64,
    /// Indirect jumps whose predicted target was correct.
    pub indirect_correct: u64,
}

impl PredStats {
    /// Direction hit ratio over conditional branches.
    pub fn hit_ratio(&self) -> f64 {
        if self.cond_branches == 0 {
            1.0
        } else {
            self.cond_correct as f64 / self.cond_branches as f64
        }
    }
}

/// A fetch-time prediction for one control instruction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Prediction {
    /// Predicted next PC.
    pub next_pc: u32,
    /// For conditional branches, the predicted direction.
    pub taken: Option<bool>,
}

/// Per-predictor internals for the stats-json envelope: a flat bag of
/// named counters, additive under [`PredictorDetail::merge`] so campaign
/// aggregation can sum cells. Only non-default predictors report one
/// (bimodal has no internal structure worth exporting), which keeps the
/// default envelopes byte-identical.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PredictorDetail {
    /// Predictor kind name (`tage`, ...).
    pub kind: String,
    /// Named counters, in a fixed per-kind order.
    pub counters: Vec<(String, u64)>,
}

impl PredictorDetail {
    /// Sum another detail block into this one, matching counters by
    /// name (unknown names are appended, preserving order).
    pub fn merge(&mut self, other: &PredictorDetail) {
        if self.kind.is_empty() {
            self.kind = other.kind.clone();
        }
        for (name, v) in &other.counters {
            match self.counters.iter_mut().find(|(n, _)| n == name) {
                Some((_, mine)) => *mine += v,
                None => self.counters.push((name.clone(), *v)),
            }
        }
    }
}

impl Serialize for PredictorDetail {
    fn to_value(&self) -> serde::Value {
        let counters = self
            .counters
            .iter()
            .map(|(n, v)| (n.clone(), v.to_value()))
            .collect();
        serde::Value::Object(vec![
            ("kind".to_string(), self.kind.to_value()),
            ("counters".to_string(), serde::Value::Object(counters)),
        ])
    }
}

impl Deserialize for PredictorDetail {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let kind = String::from_value(v.field("kind")?)?;
        let serde::Value::Object(fields) = v.field("counters")? else {
            return Err(serde::Error::new(
                "predictor detail counters must be an object",
            ));
        };
        let mut counters = Vec::with_capacity(fields.len());
        for (name, val) in fields {
            counters.push((name.clone(), u64::from_value(val)?));
        }
        Ok(PredictorDetail { kind, counters })
    }
}

/// The direction-prediction contract every flavour implements.
///
/// Scope is *direction only*: target prediction (BTB, return stack) is
/// shared plumbing in the [`Predictor`] facade. The contract mirrors the
/// core's update discipline — `predict` may be called speculatively on
/// any path, `update` is called once per conditional branch at
/// resolution on the true path, and internal history advances only in
/// `update`, so implementations need no squash hook: wrong-path fetches
/// never touch their state.
pub trait BranchPredictor: std::fmt::Debug + Send {
    /// Which flavour this is.
    fn kind(&self) -> PredictorKind;

    /// Predicted direction for the conditional branch at `pc`.
    fn predict(&self, pc: u32) -> bool;

    /// Train with the resolved direction (true path, at resolution).
    fn update(&mut self, pc: u32, taken: bool);

    /// Capture warm direction state as a kind-tagged snapshot.
    fn snapshot(&self) -> DirSnapshot;

    /// Load warm state. Must fail loudly when the snapshot's kind or
    /// geometry does not match this predictor. Resets any internal
    /// counters exposed via [`BranchPredictor::detail`].
    fn restore(&mut self, snap: &DirSnapshot) -> Result<(), String>;

    /// Table geometry as named scalars, for `dump-config`/`/metrics`.
    fn geometry(&self) -> Vec<(&'static str, u64)>;

    /// Internal counters for the stats-json envelope; `None` for
    /// flavours with nothing worth exporting (the default bimodal).
    fn detail(&self) -> Option<PredictorDetail> {
        None
    }

    /// Clone into a boxed trait object (the facade derives its own
    /// `Clone` through this).
    fn clone_box(&self) -> Box<dyn BranchPredictor>;
}

impl BranchPredictor for Bimodal {
    fn kind(&self) -> PredictorKind {
        PredictorKind::Bimodal
    }

    fn predict(&self, pc: u32) -> bool {
        Bimodal::predict(self, pc)
    }

    fn update(&mut self, pc: u32, taken: bool) {
        Bimodal::update(self, pc, taken)
    }

    fn snapshot(&self) -> DirSnapshot {
        DirSnapshot::Bimodal {
            counters: Bimodal::snapshot(self),
        }
    }

    fn restore(&mut self, snap: &DirSnapshot) -> Result<(), String> {
        let DirSnapshot::Bimodal { counters } = snap else {
            return Err(format!(
                "snapshot holds {} state, live predictor is bimodal",
                snap.kind().name()
            ));
        };
        Bimodal::restore(self, counters)
    }

    fn geometry(&self) -> Vec<(&'static str, u64)> {
        vec![("table_entries", self.len() as u64)]
    }

    fn clone_box(&self) -> Box<dyn BranchPredictor> {
        Box::new(self.clone())
    }
}

impl BranchPredictor for Gshare {
    fn kind(&self) -> PredictorKind {
        PredictorKind::Gshare
    }

    fn predict(&self, pc: u32) -> bool {
        Gshare::predict(self, pc)
    }

    fn update(&mut self, pc: u32, taken: bool) {
        Gshare::update(self, pc, taken)
    }

    fn snapshot(&self) -> DirSnapshot {
        let (counters, history) = Gshare::snapshot(self);
        DirSnapshot::Gshare { counters, history }
    }

    fn restore(&mut self, snap: &DirSnapshot) -> Result<(), String> {
        let DirSnapshot::Gshare { counters, history } = snap else {
            return Err(format!(
                "snapshot holds {} state, live predictor is gshare",
                snap.kind().name()
            ));
        };
        Gshare::restore(self, counters, *history)
    }

    fn geometry(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("table_entries", self.len() as u64),
            ("history_bits", self.history_bits() as u64),
        ]
    }

    fn clone_box(&self) -> Box<dyn BranchPredictor> {
        Box::new(self.clone())
    }
}

/// Build the configured direction predictor.
fn build_dir(cfg: &PredictorConfig) -> Box<dyn BranchPredictor> {
    match cfg.kind {
        PredictorKind::Bimodal => Box::new(Bimodal::new(cfg.table_size)),
        PredictorKind::Gshare => Box::new(Gshare::new(cfg.table_size)),
        PredictorKind::Tage => Box::new(Tage::new(cfg.table_size, cfg.tage)),
    }
}

/// The combined front-end predictor.
#[derive(Debug)]
pub struct Predictor {
    dir: Box<dyn BranchPredictor>,
    btb: Btb,
    ras: ReturnStack,
    /// Resolution statistics.
    pub stats: PredStats,
}

impl Clone for Predictor {
    fn clone(&self) -> Predictor {
        Predictor {
            dir: self.dir.clone_box(),
            btb: self.btb.clone(),
            ras: self.ras.clone(),
            stats: self.stats,
        }
    }
}

impl Predictor {
    /// Build from a configuration.
    pub fn new(cfg: PredictorConfig) -> Predictor {
        Predictor {
            dir: build_dir(&cfg),
            btb: Btb::new(cfg.btb_entries),
            ras: ReturnStack::new(cfg.ras_depth),
            stats: PredStats::default(),
        }
    }

    /// The active direction-predictor flavour.
    pub fn kind(&self) -> PredictorKind {
        self.dir.kind()
    }

    /// Direction-table geometry of the active flavour, as named scalars.
    pub fn geometry(&self) -> Vec<(&'static str, u64)> {
        self.dir.geometry()
    }

    /// Per-predictor internal counters for the stats envelope (`None`
    /// for the default bimodal).
    pub fn detail(&self) -> Option<PredictorDetail> {
        self.dir.detail()
    }

    /// Predict the next PC for the instruction at `pc`.
    ///
    /// The fetch stage calls this for every fetched instruction (our fetch
    /// model sees the instruction word, i.e. predecode-time prediction).
    /// Speculatively pushes/pops the return stack for `jal`/`jr`.
    pub fn predict(&mut self, pc: u32, inst: &Inst) -> Prediction {
        let fall = pc + 1;
        match inst.op.shape() {
            OpShape::Branch => {
                let taken = self.dir.predict(pc);
                let next_pc = if taken { inst.imm as u32 } else { fall };
                Prediction {
                    next_pc,
                    taken: Some(taken),
                }
            }
            OpShape::Jump => Prediction {
                next_pc: inst.imm as u32,
                taken: None,
            },
            OpShape::JumpLink => {
                self.ras.push(fall);
                Prediction {
                    next_pc: inst.imm as u32,
                    taken: None,
                }
            }
            OpShape::JumpReg => {
                // Treat register-indirect jumps as returns first (workloads
                // use jal/jr as call/ret), falling back to the BTB.
                let next_pc = self
                    .ras
                    .pop()
                    .or_else(|| self.btb.lookup(pc))
                    .unwrap_or(fall);
                Prediction {
                    next_pc,
                    taken: None,
                }
            }
            OpShape::JumpLinkReg => {
                let target = self.btb.lookup(pc);
                self.ras.push(fall);
                Prediction {
                    next_pc: target.unwrap_or(fall),
                    taken: None,
                }
            }
            _ => Prediction {
                next_pc: fall,
                taken: None,
            },
        }
    }

    /// Resolve a control instruction on the true path: update direction
    /// tables, BTB, and statistics. `predicted` is what [`Predictor::predict`]
    /// returned at fetch (if this instruction was fetched with a prediction).
    pub fn update(
        &mut self,
        pc: u32,
        inst: &Inst,
        taken: bool,
        target: u32,
        predicted: Option<Prediction>,
    ) {
        match inst.op.shape() {
            OpShape::Branch => {
                self.stats.cond_branches += 1;
                if let Some(p) = predicted {
                    if p.taken == Some(taken) {
                        self.stats.cond_correct += 1;
                    }
                }
                self.dir.update(pc, taken);
            }
            OpShape::JumpReg | OpShape::JumpLinkReg => {
                self.stats.indirect += 1;
                if let Some(p) = predicted {
                    if p.next_pc == target {
                        self.stats.indirect_correct += 1;
                    }
                }
                self.btb.insert(pc, target);
            }
            _ => {}
        }
    }

    /// Squash speculative return-stack state after a misprediction. The
    /// stack is simply cleared — a conservative recovery that matches the
    /// cheap hardware the paper assumes. Direction predictors need no
    /// squash hook: their history advances only at resolution (see the
    /// [`BranchPredictor`] contract).
    pub fn recover(&mut self) {
        self.ras.clear();
    }

    /// Capture the warm predictor state (direction tables and history,
    /// BTB, RAS). Statistics are not captured: a restored predictor
    /// counts only its own resolutions.
    pub fn snapshot(&self) -> PredictorSnapshot {
        PredictorSnapshot {
            dir: self.dir.snapshot(),
            btb: self.btb.snapshot(),
            ras: self.ras.snapshot(),
        }
    }

    /// Load warm state captured from a predictor built with the same
    /// configuration. A snapshot whose direction-predictor kind or table
    /// geometry does not match the live configuration is rejected loudly
    /// — restoring, say, a gshare image with a different history length
    /// would otherwise silently corrupt every subsequent prediction.
    /// Resets statistics.
    pub fn restore(&mut self, snap: &PredictorSnapshot) -> Result<(), String> {
        self.dir
            .restore(&snap.dir)
            .map_err(|e| format!("{}: {e}", self.dir.kind().name()))?;
        self.btb
            .restore(&snap.btb)
            .map_err(|e| format!("btb: {e}"))?;
        self.ras.restore(&snap.ras);
        self.stats = PredStats::default();
        Ok(())
    }
}

/// Kind-tagged warm direction-predictor state. The serialized form
/// carries an explicit `kind` tag, so a checkpoint restored under a
/// different predictor configuration fails by *name*, never by a
/// coincidental geometry match.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DirSnapshot {
    /// Bimodal 2-bit counters.
    Bimodal {
        /// The counter table.
        counters: Vec<u8>,
    },
    /// Gshare counters plus the global history register.
    Gshare {
        /// The counter table.
        counters: Vec<u8>,
        /// Global history register.
        history: u32,
    },
    /// TAGE base + tagged tables + history (see [`TageSnapshot`]).
    Tage(TageSnapshot),
}

impl DirSnapshot {
    /// The predictor flavour this snapshot belongs to.
    pub fn kind(&self) -> PredictorKind {
        match self {
            DirSnapshot::Bimodal { .. } => PredictorKind::Bimodal,
            DirSnapshot::Gshare { .. } => PredictorKind::Gshare,
            DirSnapshot::Tage(_) => PredictorKind::Tage,
        }
    }
}

impl Default for DirSnapshot {
    fn default() -> DirSnapshot {
        DirSnapshot::Bimodal {
            counters: Vec::new(),
        }
    }
}

// Hand-written (de)serialization: the vendored serde derive cannot
// handle data-carrying enum variants, and the tag must live *inside*
// the object (`"kind": "..."`) so old-vs-new mismatches read clearly.
impl Serialize for DirSnapshot {
    fn to_value(&self) -> serde::Value {
        let mut fields = vec![("kind".to_string(), self.kind().name().to_value())];
        match self {
            DirSnapshot::Bimodal { counters } => {
                fields.push(("counters".to_string(), counters.to_value()));
            }
            DirSnapshot::Gshare { counters, history } => {
                fields.push(("counters".to_string(), counters.to_value()));
                fields.push(("history".to_string(), history.to_value()));
            }
            DirSnapshot::Tage(t) => {
                fields.push(("tage".to_string(), t.to_value()));
            }
        }
        serde::Value::Object(fields)
    }
}

impl Deserialize for DirSnapshot {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let kind = String::from_value(v.field("kind")?)?;
        match kind.as_str() {
            "bimodal" => Ok(DirSnapshot::Bimodal {
                counters: Vec::<u8>::from_value(v.field("counters")?)?,
            }),
            "gshare" => Ok(DirSnapshot::Gshare {
                counters: Vec::<u8>::from_value(v.field("counters")?)?,
                history: u32::from_value(v.field("history")?)?,
            }),
            "tage" => Ok(DirSnapshot::Tage(TageSnapshot::from_value(
                v.field("tage")?,
            )?)),
            other => Err(serde::Error::new(format!(
                "unknown direction-predictor kind `{other}` in snapshot"
            ))),
        }
    }
}

/// Serializable image of a [`Predictor`]'s warm state, used by the
/// checkpointing subsystem (`spear-campaign`). The direction state is a
/// kind-tagged payload ([`DirSnapshot`]), so a snapshot is self-
/// describing and a kind/geometry mismatch on restore fails loudly.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PredictorSnapshot {
    /// Kind-tagged direction-predictor state.
    pub dir: DirSnapshot,
    /// BTB `(tag, target)` entries.
    pub btb: Vec<Option<(u32, u32)>>,
    /// Return-stack live entries, oldest first.
    pub ras: Vec<u32>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use spear_isa::reg::*;
    use spear_isa::Opcode;

    fn branch(target: u32) -> Inst {
        Inst::new(Opcode::Bne, R0, R1, R0, target as i64)
    }

    fn config(kind: PredictorKind) -> PredictorConfig {
        PredictorConfig {
            kind,
            ..PredictorConfig::paper()
        }
    }

    #[test]
    fn bimodal_learns_a_loop_branch() {
        let mut p = Predictor::new(PredictorConfig::paper());
        let b = branch(5);
        for _ in 0..4 {
            let pred = p.predict(100, &b);
            p.update(100, &b, true, 5, Some(pred));
        }
        let pred = p.predict(100, &b);
        assert_eq!(pred.taken, Some(true));
        assert_eq!(pred.next_pc, 5);
    }

    #[test]
    fn hit_ratio_tracks_accuracy() {
        let mut p = Predictor::new(PredictorConfig::paper());
        let b = branch(5);
        for i in 0..10 {
            let pred = p.predict(100, &b);
            let taken = i >= 2; // first two may mispredict while warming
            p.update(100, &b, taken, 5, Some(pred));
        }
        assert_eq!(p.stats.cond_branches, 10);
        assert!(p.stats.hit_ratio() > 0.5, "{}", p.stats.hit_ratio());
    }

    #[test]
    fn call_return_pairs_predict_via_ras() {
        let mut p = Predictor::new(PredictorConfig::paper());
        let call = Inst::new(Opcode::Jal, R31, R0, R0, 50);
        let ret = Inst::new(Opcode::Jr, R0, R31, R0, 0);
        let c = p.predict(10, &call);
        assert_eq!(c.next_pc, 50);
        let r = p.predict(60, &ret);
        assert_eq!(r.next_pc, 11, "return address from RAS");
    }

    #[test]
    fn indirect_jump_uses_btb_after_training() {
        let mut p = Predictor::new(PredictorConfig::paper());
        let jr = Inst::new(Opcode::Jr, R0, R7, R0, 0);
        let miss = p.predict(20, &jr);
        assert_eq!(miss.next_pc, 21);
        p.update(20, &jr, true, 77, Some(miss));
        let hit = p.predict(20, &jr);
        assert_eq!(hit.next_pc, 77);
        assert_eq!(p.stats.indirect, 1);
        assert_eq!(p.stats.indirect_correct, 0);
    }

    #[test]
    fn non_control_predicts_fallthrough() {
        let mut p = Predictor::new(PredictorConfig::paper());
        let add = Inst::new(Opcode::Add, R1, R2, R3, 0);
        assert_eq!(p.predict(7, &add).next_pc, 8);
    }

    #[test]
    fn recover_clears_ras() {
        let mut p = Predictor::new(PredictorConfig::paper());
        let call = Inst::new(Opcode::Jal, R31, R0, R0, 50);
        p.predict(10, &call);
        p.recover();
        let ret = Inst::new(Opcode::Jr, R0, R31, R0, 0);
        assert_eq!(p.predict(60, &ret).next_pc, 61, "stack cleared");
    }

    #[test]
    fn snapshot_restore_reproduces_predictions() {
        let mut p = Predictor::new(PredictorConfig::paper());
        let b = branch(5);
        for _ in 0..4 {
            let pred = p.predict(100, &b);
            p.update(100, &b, true, 5, Some(pred));
        }
        let jr = Inst::new(Opcode::Jr, R0, R7, R0, 0);
        p.update(20, &jr, true, 77, None);
        let call = Inst::new(Opcode::Jal, R31, R0, R0, 50);
        p.predict(10, &call); // push 11 onto the RAS
        let snap = p.snapshot();

        let mut q = Predictor::new(PredictorConfig::paper());
        q.restore(&snap).expect("same configuration");
        let ret = Inst::new(Opcode::Jr, R0, R31, R0, 0);
        assert_eq!(q.predict(60, &ret).next_pc, 11, "RAS carried over");
        assert_eq!(q.predict(100, &b).taken, Some(true), "counters warm");
        assert_eq!(q.predict(20, &jr).next_pc, 77, "BTB carried over");
        assert_eq!(q.stats, PredStats::default(), "stats reset on restore");
    }

    #[test]
    fn restore_rejects_size_mismatch() {
        let p = Predictor::new(PredictorConfig::paper());
        let snap = p.snapshot();
        let mut small = Predictor::new(PredictorConfig {
            table_size: 64,
            ..PredictorConfig::paper()
        });
        assert!(small.restore(&snap).is_err());
    }

    #[test]
    fn restore_rejects_kind_mismatch_by_name() {
        for (a, b) in [
            (PredictorKind::Bimodal, PredictorKind::Gshare),
            (PredictorKind::Gshare, PredictorKind::Tage),
            (PredictorKind::Tage, PredictorKind::Bimodal),
        ] {
            let snap = Predictor::new(config(a)).snapshot();
            let mut live = Predictor::new(config(b));
            let err = live.restore(&snap).unwrap_err();
            assert!(
                err.contains(a.name()) && err.contains(b.name()),
                "error must name both kinds: {err}"
            );
        }
    }

    #[test]
    fn gshare_distinguishes_history() {
        let mut p = Predictor::new(config(PredictorKind::Gshare));
        let b = branch(5);
        // Alternating pattern TNTN… — gshare can learn it, bimodal cannot.
        let mut correct = 0;
        for i in 0..200 {
            let taken = i % 2 == 0;
            let pred = p.predict(100, &b);
            if pred.taken == Some(taken) {
                correct += 1;
            }
            p.update(100, &b, taken, 5, Some(pred));
        }
        assert!(
            correct > 150,
            "gshare should learn alternation, got {correct}"
        );
    }

    #[test]
    fn bimodal_fails_alternation() {
        let mut p = Predictor::new(PredictorConfig::paper());
        let b = branch(5);
        let mut correct = 0;
        for i in 0..200 {
            let taken = i % 2 == 0;
            let pred = p.predict(100, &b);
            if pred.taken == Some(taken) {
                correct += 1;
            }
            p.update(100, &b, taken, 5, Some(pred));
        }
        assert!(
            correct < 120,
            "bimodal cannot learn alternation, got {correct}"
        );
    }

    #[test]
    fn spec_labels_round_trip() {
        for spec in [
            "bimodal",
            "gshare",
            "tage",
            "tage:tables=3,bits=8,tag=7,hmin=2,hmax=32,decay=4096",
        ] {
            let cfg = PredictorConfig::paper().with_spec(spec).unwrap();
            let label = cfg.spec_label();
            let again = PredictorConfig::paper().with_spec(&label).unwrap();
            assert_eq!(cfg, again, "label `{label}` must re-parse identically");
        }
        // The default tage geometry canonicalizes to the bare name.
        let cfg = PredictorConfig::paper().with_spec("tage").unwrap();
        assert_eq!(cfg.spec_label(), "tage");
        assert!(PredictorConfig::paper().with_spec("nbp").is_err());
        assert!(PredictorConfig::paper().with_spec("bimodal:x=1").is_err());
        assert!(PredictorConfig::paper().with_spec("tage:bogus=1").is_err());
        assert!(PredictorConfig::paper().with_spec("tage:tables=").is_err());
    }

    #[test]
    fn detail_is_none_for_paper_default_and_some_for_tage() {
        assert!(Predictor::new(PredictorConfig::paper()).detail().is_none());
        assert!(Predictor::new(config(PredictorKind::Gshare))
            .detail()
            .is_none());
        let mut p = Predictor::new(config(PredictorKind::Tage));
        let b = branch(5);
        for _ in 0..8 {
            let pred = p.predict(100, &b);
            p.update(100, &b, true, 5, Some(pred));
        }
        let d = p.detail().expect("tage exports detail");
        assert_eq!(d.kind, "tage");
        assert!(d
            .counters
            .iter()
            .any(|(n, v)| n == "provider_base" && *v > 0));
    }

    #[test]
    fn detail_merge_sums_by_counter_name() {
        let a = PredictorDetail {
            kind: "tage".into(),
            counters: vec![("x".into(), 2), ("y".into(), 3)],
        };
        let b = PredictorDetail {
            kind: "tage".into(),
            counters: vec![("y".into(), 10), ("z".into(), 1)],
        };
        let mut m = PredictorDetail::default();
        m.merge(&a);
        m.merge(&b);
        assert_eq!(m.kind, "tage");
        assert_eq!(
            m.counters,
            vec![("x".into(), 2), ("y".into(), 13), ("z".into(), 1)]
        );
        // And it survives the JSON envelope.
        let back = PredictorDetail::from_value(&m.to_value()).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn dir_snapshot_serializes_with_kind_tag() {
        for kind in [
            PredictorKind::Bimodal,
            PredictorKind::Gshare,
            PredictorKind::Tage,
        ] {
            let snap = Predictor::new(config(kind)).snapshot();
            let v = snap.to_value();
            let json = serde::json::to_string(&v);
            assert!(
                json.contains(&format!("\"kind\":\"{}\"", kind.name())),
                "{json}"
            );
            let back = PredictorSnapshot::from_value(&v).unwrap();
            assert_eq!(back, snap);
        }
    }

    #[test]
    fn geometry_names_the_active_tables() {
        let p = Predictor::new(config(PredictorKind::Tage));
        let g = p.geometry();
        assert!(g.iter().any(|(n, _)| *n == "tagged_tables"));
        let p = Predictor::new(PredictorConfig::paper());
        assert_eq!(p.geometry(), vec![("table_entries", 2048)]);
        assert_eq!(p.kind(), PredictorKind::Bimodal);
    }
}
