//! Direction tables and the branch target buffer.

/// 2-bit saturating counter states.
///
/// 0–1 predict not-taken, 2–3 predict taken; counters initialize to weakly
/// not-taken (1), matching SimpleScalar's bimodal reset state.
#[derive(Clone, Debug)]
pub struct Bimodal {
    table: Vec<u8>,
    mask: u32,
}

impl Bimodal {
    /// `size` must be a power of two.
    pub fn new(size: usize) -> Bimodal {
        assert!(size.is_power_of_two(), "bimodal table size must be 2^k");
        Bimodal {
            table: vec![1; size],
            mask: (size - 1) as u32,
        }
    }

    #[inline]
    fn idx(&self, pc: u32) -> usize {
        (pc & self.mask) as usize
    }

    /// Predicted direction for the branch at `pc`.
    #[inline]
    pub fn predict(&self, pc: u32) -> bool {
        self.table[self.idx(pc)] >= 2
    }

    /// Train with the resolved direction.
    #[inline]
    pub fn update(&mut self, pc: u32, taken: bool) {
        let i = self.idx(pc);
        let c = &mut self.table[i];
        if taken {
            *c = (*c + 1).min(3);
        } else {
            *c = c.saturating_sub(1);
        }
    }

    /// Number of counters in the table.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// Whether the table is empty (never true for a constructed table;
    /// present for the `len`/`is_empty` idiom).
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// The counter table (for checkpointing warm predictor state).
    pub fn snapshot(&self) -> Vec<u8> {
        self.table.clone()
    }

    /// Load counters captured from a same-sized table.
    pub fn restore(&mut self, counters: &[u8]) -> Result<(), String> {
        if counters.len() != self.table.len() {
            return Err(format!(
                "bimodal snapshot has {} counters, table holds {}",
                counters.len(),
                self.table.len()
            ));
        }
        self.table.copy_from_slice(counters);
        Ok(())
    }
}

/// Gshare: global history XOR PC indexes the counter table.
#[derive(Clone, Debug)]
pub struct Gshare {
    table: Vec<u8>,
    mask: u32,
    history: u32,
    hist_bits: u32,
}

impl Gshare {
    /// `size` must be a power of two; history length is `log2(size)`.
    pub fn new(size: usize) -> Gshare {
        assert!(size.is_power_of_two(), "gshare table size must be 2^k");
        Gshare {
            table: vec![1; size],
            mask: (size - 1) as u32,
            history: 0,
            hist_bits: size.trailing_zeros(),
        }
    }

    #[inline]
    fn idx(&self, pc: u32) -> usize {
        ((pc ^ self.history) & self.mask) as usize
    }

    /// Predicted direction under the current global history.
    #[inline]
    pub fn predict(&self, pc: u32) -> bool {
        self.table[self.idx(pc)] >= 2
    }

    /// Train and shift the resolved direction into the history register.
    #[inline]
    pub fn update(&mut self, pc: u32, taken: bool) {
        let i = self.idx(pc);
        let c = &mut self.table[i];
        if taken {
            *c = (*c + 1).min(3);
        } else {
            *c = c.saturating_sub(1);
        }
        self.history = ((self.history << 1) | taken as u32) & ((1 << self.hist_bits) - 1);
    }

    /// Number of counters in the table.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// Whether the table is empty (never true for a constructed table).
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// Global history length in bits.
    pub fn history_bits(&self) -> u32 {
        self.hist_bits
    }

    /// Counter table and history register (for checkpointing).
    pub fn snapshot(&self) -> (Vec<u8>, u32) {
        (self.table.clone(), self.history)
    }

    /// Load counters and history captured from a same-sized table.
    pub fn restore(&mut self, counters: &[u8], history: u32) -> Result<(), String> {
        if counters.len() != self.table.len() {
            return Err(format!(
                "gshare snapshot has {} counters, table holds {}",
                counters.len(),
                self.table.len()
            ));
        }
        self.table.copy_from_slice(counters);
        self.history = history & ((1 << self.hist_bits) - 1);
        Ok(())
    }
}

/// Direct-mapped branch target buffer with tag check.
#[derive(Clone, Debug)]
pub struct Btb {
    entries: Vec<Option<(u32, u32)>>, // (tag pc, target)
    mask: u32,
}

impl Btb {
    /// `entries` must be a power of two.
    pub fn new(entries: usize) -> Btb {
        assert!(entries.is_power_of_two(), "BTB size must be 2^k");
        Btb {
            entries: vec![None; entries],
            mask: (entries - 1) as u32,
        }
    }

    /// Predicted target for the control instruction at `pc`, if cached.
    #[inline]
    pub fn lookup(&self, pc: u32) -> Option<u32> {
        match self.entries[(pc & self.mask) as usize] {
            Some((tag, target)) if tag == pc => Some(target),
            _ => None,
        }
    }

    /// Record the resolved target.
    #[inline]
    pub fn insert(&mut self, pc: u32, target: u32) {
        self.entries[(pc & self.mask) as usize] = Some((pc, target));
    }

    /// All `(tag, target)` entries (for checkpointing).
    pub fn snapshot(&self) -> Vec<Option<(u32, u32)>> {
        self.entries.clone()
    }

    /// Load entries captured from a same-sized BTB.
    pub fn restore(&mut self, entries: &[Option<(u32, u32)>]) -> Result<(), String> {
        if entries.len() != self.entries.len() {
            return Err(format!(
                "BTB snapshot has {} entries, buffer holds {}",
                entries.len(),
                self.entries.len()
            ));
        }
        self.entries.copy_from_slice(entries);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bimodal_saturates_both_ways() {
        let mut b = Bimodal::new(16);
        for _ in 0..10 {
            b.update(3, true);
        }
        assert!(b.predict(3));
        b.update(3, false); // 3 -> 2, still predicts taken (hysteresis)
        assert!(b.predict(3));
        b.update(3, false);
        assert!(!b.predict(3));
        for _ in 0..10 {
            b.update(3, false);
        }
        assert!(!b.predict(3));
    }

    #[test]
    fn bimodal_initial_state_weakly_not_taken() {
        let b = Bimodal::new(16);
        assert!(!b.predict(0));
        let mut b = b;
        b.update(0, true); // 1 -> 2
        assert!(b.predict(0), "one taken flips the weak state");
    }

    #[test]
    fn bimodal_aliasing_by_mask() {
        let mut b = Bimodal::new(16);
        for _ in 0..4 {
            b.update(0, true);
        }
        assert!(b.predict(16), "pc 16 aliases to the same counter");
    }

    #[test]
    fn btb_tag_rejects_aliases() {
        let mut t = Btb::new(8);
        t.insert(1, 100);
        assert_eq!(t.lookup(1), Some(100));
        assert_eq!(t.lookup(9), None, "same slot, different tag");
        t.insert(9, 200);
        assert_eq!(t.lookup(1), None, "displaced");
        assert_eq!(t.lookup(9), Some(200));
    }

    #[test]
    fn gshare_history_wraps_to_table_bits() {
        let mut g = Gshare::new(16);
        for i in 0..100 {
            g.update(5, i % 3 == 0);
        }
        // Just exercising saturation + history masking without panic.
        let _ = g.predict(5);
    }
}
