//! Property tests of the predictor structures against simple reference
//! models.

use proptest::prelude::*;
use spear_bpred::{Bimodal, Btb, ReturnStack};

proptest! {
    /// Bimodal counters behave like a clamped 0..=3 integer per index.
    #[test]
    fn bimodal_matches_saturating_counter(
        outcomes in proptest::collection::vec((0u32..64, any::<bool>()), 1..500)
    ) {
        let mut b = Bimodal::new(64);
        let mut reference = [1i32; 64];
        for &(pc, taken) in &outcomes {
            let idx = (pc & 63) as usize;
            prop_assert_eq!(b.predict(pc), reference[idx] >= 2, "pc {}", pc);
            b.update(pc, taken);
            reference[idx] = (reference[idx] + if taken { 1 } else { -1 }).clamp(0, 3);
        }
    }

    /// The return stack behaves like a depth-bounded Vec that drops its
    /// oldest element on overflow.
    #[test]
    fn ras_matches_bounded_stack(
        ops in proptest::collection::vec(proptest::option::of(0u32..1000), 1..300),
        depth in 1usize..16,
    ) {
        let mut ras = ReturnStack::new(depth);
        let mut reference: Vec<u32> = Vec::new();
        for op in ops {
            match op {
                Some(addr) => {
                    ras.push(addr);
                    reference.push(addr);
                    if reference.len() > depth {
                        reference.remove(0);
                    }
                }
                None => {
                    prop_assert_eq!(ras.pop(), reference.pop());
                }
            }
            prop_assert_eq!(ras.depth(), reference.len());
        }
    }

    /// The BTB returns a target only for the exact PC that inserted it.
    #[test]
    fn btb_tag_check(inserts in proptest::collection::vec((0u32..4096, 0u32..4096), 1..200)) {
        let mut btb = Btb::new(64);
        let mut last: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
        for &(pc, target) in &inserts {
            btb.insert(pc, target);
            // This insert displaces any alias in the same slot.
            last.retain(|&p, _| p % 64 != pc % 64);
            last.insert(pc, target);
        }
        for (&pc, &target) in &last {
            prop_assert_eq!(btb.lookup(pc), Some(target));
        }
        // Any PC aliasing an occupied slot with a different tag misses.
        for &(pc, _) in &inserts {
            let alias = pc + 64;
            if !last.contains_key(&alias) {
                prop_assert_eq!(btb.lookup(alias), None);
            }
        }
    }
}
