//! Boundary-condition tests for the return address stack (overflow
//! wraparound, underflow) and the bimodal 2-bit counters (saturation at
//! both rails), including the same behaviors observed through the
//! [`Predictor`] facade the fetch stage drives.

use spear_bpred::{Bimodal, Prediction, Predictor, PredictorConfig, ReturnStack};
use spear_isa::reg::*;
use spear_isa::{Inst, Opcode};

// --- ReturnStack: overflow wraparound ---------------------------------

#[test]
fn ras_overflow_wraps_multiple_times() {
    // Depth 4, 11 pushes: the buffer wraps almost three times. Only the
    // last four entries are live, popped newest-first.
    let mut s = ReturnStack::new(4);
    for a in 1..=11u32 {
        s.push(a);
    }
    assert_eq!(s.depth(), 4, "depth saturates at capacity");
    for expect in [11, 10, 9, 8] {
        assert_eq!(s.pop(), Some(expect));
    }
    assert_eq!(s.pop(), None, "entries 1..=7 were overwritten");
}

#[test]
fn ras_depth_one_keeps_only_the_newest() {
    let mut s = ReturnStack::new(1);
    s.push(10);
    s.push(20);
    s.push(30);
    assert_eq!(s.depth(), 1);
    assert_eq!(s.pop(), Some(30));
    assert_eq!(s.pop(), None);
}

#[test]
fn ras_snapshot_after_wraparound_preserves_pop_order() {
    let mut s = ReturnStack::new(3);
    for a in 1..=8u32 {
        s.push(a);
    }
    // Live entries oldest-first: 6, 7, 8.
    assert_eq!(s.snapshot(), vec![6, 7, 8]);
    // Restoring into a *deeper* stack reproduces the same pop order.
    let mut t = ReturnStack::new(16);
    t.restore(&s.snapshot());
    assert_eq!(t.pop(), Some(8));
    assert_eq!(t.pop(), Some(7));
    assert_eq!(t.pop(), Some(6));
    assert_eq!(t.pop(), None);
}

// --- ReturnStack: underflow -------------------------------------------

#[test]
fn ras_underflow_is_sticky_and_harmless() {
    let mut s = ReturnStack::new(4);
    s.push(5);
    assert_eq!(s.pop(), Some(5));
    // Repeated underflow: always None, never panics, depth stays 0.
    for _ in 0..10 {
        assert_eq!(s.pop(), None);
        assert_eq!(s.depth(), 0);
    }
    // The stack still works normally afterwards.
    s.push(7);
    s.push(8);
    assert_eq!(s.pop(), Some(8));
    assert_eq!(s.pop(), Some(7));
    assert_eq!(s.pop(), None);
}

#[test]
fn ras_interleaved_push_pop_across_the_wrap_point() {
    // Drive top past the physical end of the buffer with a push/pop mix
    // and check LIFO order survives the wrap.
    let mut s = ReturnStack::new(2);
    s.push(1);
    s.push(2); // buffer full, top wrapped to slot 0
    assert_eq!(s.pop(), Some(2));
    s.push(3); // reuses the slot 2 vacated
    s.push(4); // overwrites 1 (oldest)
    assert_eq!(s.pop(), Some(4));
    assert_eq!(s.pop(), Some(3));
    assert_eq!(s.pop(), None);
}

// --- ReturnStack through the Predictor facade -------------------------

fn call(target: u32) -> Inst {
    Inst::new(Opcode::Jal, R31, R0, R0, target as i64)
}

fn ret() -> Inst {
    Inst::new(Opcode::Jr, R0, R31, R0, 0)
}

#[test]
fn predictor_ras_overflow_loses_outermost_returns_only() {
    // Call depth 6 against a RAS of depth 4: the four innermost returns
    // predict correctly, the two outermost fall back to fall-through
    // (their stack entries were overwritten by the wrap).
    let cfg = PredictorConfig {
        ras_depth: 4,
        ..PredictorConfig::paper()
    };
    let mut p = Predictor::new(cfg);
    let call_pcs: Vec<u32> = (0..6).map(|i| 100 + 10 * i).collect();
    for &pc in &call_pcs {
        p.predict(pc, &call(pc + 1000));
    }
    // Innermost 4 returns: predicted return addresses are call_pc + 1.
    for &pc in call_pcs.iter().rev().take(4) {
        let got: Prediction = p.predict(2000, &ret());
        assert_eq!(got.next_pc, pc + 1, "inner return for call at {pc}");
    }
    // Outermost 2: stack empty (entries overwritten), falls back to
    // fall-through of the jr itself.
    for _ in 0..2 {
        let got = p.predict(2000, &ret());
        assert_eq!(got.next_pc, 2001, "overwritten return falls through");
    }
}

#[test]
fn predictor_ras_underflow_prefers_btb_then_fallthrough() {
    let mut p = Predictor::new(PredictorConfig::paper());
    // Empty RAS, cold BTB: jr predicts fall-through.
    assert_eq!(p.predict(50, &ret()).next_pc, 51);
    // Train the BTB for this jr, keep the RAS empty: BTB target wins.
    p.update(50, &ret(), true, 777, None);
    assert_eq!(p.predict(50, &ret()).next_pc, 777);
}

// --- Bimodal: saturation at both rails --------------------------------

#[test]
fn bimodal_saturates_high_needs_exactly_two_not_takens_to_flip() {
    let mut b = Bimodal::new(64);
    // 100 taken updates pin the counter at 3 (strongly taken) — it must
    // not wrap or overflow past the 2-bit range.
    for _ in 0..100 {
        b.update(9, true);
    }
    assert!(b.predict(9));
    b.update(9, false); // 3 -> 2: hysteresis, still predicts taken
    assert!(
        b.predict(9),
        "one not-taken must not flip a saturated counter"
    );
    b.update(9, false); // 2 -> 1
    assert!(!b.predict(9), "the second not-taken flips it");
}

#[test]
fn bimodal_saturates_low_needs_exactly_two_takens_to_flip() {
    let mut b = Bimodal::new(64);
    for _ in 0..100 {
        b.update(9, false); // pins at 0 (strongly not-taken)
    }
    assert!(!b.predict(9));
    b.update(9, true); // 0 -> 1
    assert!(!b.predict(9), "one taken must not flip a saturated counter");
    b.update(9, true); // 1 -> 2
    assert!(b.predict(9), "the second taken flips it");
}

#[test]
fn bimodal_matches_reference_two_bit_counter_exactly() {
    // Drive one counter with a pseudo-random outcome stream and check
    // the table against a software model of a 2-bit saturating counter.
    let mut b = Bimodal::new(16);
    let mut model: i32 = 1; // reset state: weakly not-taken
    let mut x = 0x2545_F491_4F6C_DD1Du64;
    for _ in 0..2_000 {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let taken = x & 1 == 1;
        assert_eq!(b.predict(5), model >= 2, "prediction diverged from model");
        b.update(5, taken);
        model = (model + if taken { 1 } else { -1 }).clamp(0, 3);
    }
}

#[test]
fn bimodal_counters_are_independent_across_non_aliasing_pcs() {
    let mut b = Bimodal::new(16);
    for _ in 0..4 {
        b.update(3, true);
        b.update(4, false);
    }
    assert!(b.predict(3));
    assert!(!b.predict(4), "neighbor counter untouched");
    // 3 and 3+16 alias (table has 16 entries); 4 does not alias 3.
    assert!(b.predict(3 + 16));
}
