//! TAGE behavioural tests: provider/alt selection, allocation on
//! mispredict, useful-bit aging, snapshot round-trips, and bit-exact
//! determinism — all through the public `BranchPredictor` surface.

use spear_bpred::{
    BranchPredictor, DirSnapshot, Predictor, PredictorConfig, PredictorKind, Tage, TageConfig,
};

fn fresh(cfg: TageConfig) -> Tage {
    Tage::new(2048, cfg)
}

fn counter(t: &Tage, name: &str) -> u64 {
    t.detail()
        .expect("tage exports detail")
        .counters
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, v)| *v)
        .unwrap_or_else(|| panic!("no counter `{name}`"))
}

/// A periodic direction stream (period `period`, mixed bit pattern):
/// history-dependent, so tagged tables — not the base bimodal — must
/// carry the prediction. Returns the number of correct predictions.
fn drive_pattern(t: &mut Tage, pc: u32, rounds: usize, period: usize) -> usize {
    let mut correct = 0;
    for i in 0..rounds {
        let taken = (0xB5u32 >> (i % period)) & 1 == 1;
        if t.predict(pc) == taken {
            correct += 1;
        }
        t.update(pc, taken);
    }
    correct
}

/// A deterministic pseudorandom stream: unlearnable, so it applies
/// maximum allocation pressure.
fn drive_noise(t: &mut Tage, pc: u32, rounds: u32) {
    for i in 0..rounds {
        let taken = (i.wrapping_mul(2654435761)).count_ones() % 2 == 0;
        t.predict(pc);
        t.update(pc, taken);
    }
}

#[test]
fn provider_vs_altpred_selection_is_exercised_and_counted() {
    let mut t = fresh(TageConfig::default_spec());
    drive_pattern(&mut t, 0x4A31, 6000, 6);
    // Tagged entries were allocated, became providers, and for a while
    // (newly allocated, weak) the alternative prediction overrode them.
    assert!(counter(&t, "allocations") > 0, "mispredicts must allocate");
    assert!(
        counter(&t, "provider_tagged") > 0,
        "allocated entries must provide predictions"
    );
    assert!(
        counter(&t, "alt_used") > 0,
        "weak new providers must defer to the alternative at least once"
    );
    assert!(counter(&t, "provider_base") > 0, "cold start uses the base");
}

#[test]
fn mispredict_allocates_a_tagged_entry() {
    let mut t = fresh(TageConfig::default_spec());
    let pc = 0x1234;
    // A fresh predictor predicts not-taken (base counters weakly NT), so
    // a taken branch is a mispredict and must allocate.
    assert!(!t.predict(pc));
    assert_eq!(counter(&t, "allocations"), 0);
    t.update(pc, true);
    assert_eq!(counter(&t, "allocations"), 1);
    let DirSnapshot::Tage(s) = t.snapshot() else {
        panic!("tage snapshot")
    };
    let live_tags: usize = s.tags.iter().flatten().filter(|&&tag| tag != 0).count();
    let weak_entries: usize = s
        .ctrs
        .iter()
        .flatten()
        .filter(|&&c| c == 4) // allocated weakly-taken
        .count();
    assert_eq!(live_tags, 1, "exactly one entry allocated");
    assert_eq!(weak_entries, 1, "allocation starts weak");
}

#[test]
fn allocation_failure_ages_candidate_useful_bits() {
    // One tiny single-entry table: once its entry is useful (u > 0),
    // further mispredicts cannot allocate and must age it back down.
    let cfg = TageConfig {
        tables: 1,
        table_bits: 1,
        ..TageConfig::default_spec()
    };
    let mut t = Tage::new(16, cfg);
    drive_noise(&mut t, 0x77, 4000);
    assert!(
        counter(&t, "allocation_fails") > 0,
        "a saturated table must report failed allocations"
    );
}

#[test]
fn useful_bits_decay_on_the_configured_period() {
    let cfg = TageConfig {
        u_decay_period: 64,
        ..TageConfig::default_spec()
    };
    let mut t = fresh(cfg);
    drive_pattern(&mut t, 0x9E1, 1000, 6);
    assert_eq!(
        counter(&t, "u_decays"),
        1000 / 64,
        "one halving per period of updates"
    );
}

#[test]
fn snapshot_restore_round_trips_history_and_tables() {
    let mut a = fresh(TageConfig::default_spec());
    drive_pattern(&mut a, 0xBEEF, 3000, 7);
    let snap = a.snapshot();

    let mut b = fresh(TageConfig::default_spec());
    b.restore(&snap).expect("same geometry restores");
    assert_eq!(b.snapshot(), snap, "restore is lossless");
    // Detail counters reset: a restored predictor measures only itself.
    assert_eq!(counter(&b, "provider_tagged"), 0);

    // From here on, both predictors see the same stream and must agree
    // bit-for-bit — history (including the cross-word high bits) and
    // every table carried over.
    for i in 0..500u32 {
        let pc = 0xBEEF + (i % 3);
        let taken = i.count_ones() % 2 == 0;
        assert_eq!(a.predict(pc), b.predict(pc), "diverged at step {i}");
        a.update(pc, taken);
        b.update(pc, taken);
    }
    assert_eq!(a.snapshot(), b.snapshot());
}

#[test]
fn restore_rejects_wrong_geometry_loudly() {
    let snap = fresh(TageConfig::default_spec()).snapshot();
    // Different tagged-table count.
    let mut t = fresh(TageConfig {
        tables: 3,
        ..TageConfig::default_spec()
    });
    let err = t.restore(&snap).unwrap_err();
    assert!(err.contains("tagged tables"), "{err}");
    // Different per-table entry count.
    let mut t = fresh(TageConfig {
        table_bits: 9,
        ..TageConfig::default_spec()
    });
    let err = t.restore(&snap).unwrap_err();
    assert!(err.contains("entries"), "{err}");
    // Different base sizing.
    let mut t = Tage::new(1024, TageConfig::default_spec());
    let err = t.restore(&snap).unwrap_err();
    assert!(err.contains("base table"), "{err}");
    // Wrong kind entirely.
    let mut t = fresh(TageConfig::default_spec());
    let err = t
        .restore(&DirSnapshot::Bimodal {
            counters: vec![1; 2048],
        })
        .unwrap_err();
    assert!(err.contains("bimodal") && err.contains("tage"), "{err}");
}

#[test]
fn two_identical_runs_are_bit_identical() {
    let mut a = fresh(TageConfig::default_spec());
    let mut b = fresh(TageConfig::default_spec());
    for i in 0..5000u32 {
        let pc = (i.wrapping_mul(2654435761)) % 977;
        let taken = (i ^ (i >> 3)).count_ones() % 2 == 0;
        assert_eq!(a.predict(pc), b.predict(pc));
        a.update(pc, taken);
        b.update(pc, taken);
    }
    assert_eq!(a.snapshot(), b.snapshot(), "no hidden nondeterminism");
    assert_eq!(a.detail(), b.detail());
}

#[test]
fn facade_runs_tage_end_to_end_and_beats_bimodal_on_history() {
    use spear_isa::reg::*;
    use spear_isa::{Inst, Opcode};
    let b = Inst::new(Opcode::Bne, R0, R1, R0, 5);
    let run = |kind: PredictorKind| {
        let cfg = PredictorConfig {
            kind,
            ..PredictorConfig::paper()
        };
        let mut p = Predictor::new(cfg);
        let pattern = [true, false, false, true, false, true];
        let mut correct = 0;
        for i in 0..3000 {
            let taken = pattern[i % pattern.len()];
            let pred = p.predict(100, &b);
            if pred.taken == Some(taken) {
                correct += 1;
            }
            p.update(100, &b, taken, 5, Some(pred));
        }
        correct
    };
    let tage = run(PredictorKind::Tage);
    let bimodal = run(PredictorKind::Bimodal);
    assert!(
        tage > bimodal + 500,
        "tage {tage} vs bimodal {bimodal} on a period-6 pattern"
    );
}
