//! # spear-cpu — the cycle-level SMT core with the SPEAR front end
//!
//! Models the machine of §3 and Table 2: an 8-wide out-of-order superscalar
//! with a Register-Update-Unit-style scheduler, a circular Instruction
//! Fetch Queue, bimodal branch prediction, split L1 caches over a unified
//! L2 — plus the SPEAR hardware: p-thread indicators written at pre-decode,
//! a d-load detector, trigger logic with the IFQ-occupancy condition and
//! live-in copying, the P-thread Extractor, priority issue for the
//! p-thread, and optional dedicated p-thread functional units (the `.sf`
//! models of Figure 7).
//!
//! Committed architectural state is bit-identical to the
//! [`spear_exec::Interp`] golden model by construction (execute-at-dispatch
//! oracle timing); the differential tests in `tests/` enforce this for
//! every workload.

pub mod config;
pub mod core;
pub mod ctx;
pub mod export;
pub mod frontend;
pub mod fu;
pub mod hist;
pub mod ifq;
pub mod machine;
pub mod obs;
pub mod overlay;
pub mod pipeline;
pub mod ruu;
pub mod source;
pub mod spear;
pub mod stage;
pub mod stats;
pub mod trace;

pub use crate::core::{Core, RunResult, SimError};
pub use config::{CoreConfig, OpLatencies, SpearConfig};
pub use ctx::{CtxId, HwContext, MAIN_CTX, PTHREAD_CTX};
pub use export::{SimPerf, SimpointBlock, StatsExport, SCHEMA_VERSION};
pub use frontend::{BaselineFrontEnd, FrontEndExt};
pub use hist::Histogram;
pub use machine::Machine;
pub use obs::{CounterSample, LifeRecord, DEFAULT_LIFECYCLE_CAP, DEFAULT_WINDOW_CYCLES};
pub use ruu::{Ruu, SeqId};
pub use source::{ExecSource, ProgramSource, TraceSource};
pub use stats::{CoreStats, CycleAccount, DloadProfile, RunExit, StallCause, WindowStat};
