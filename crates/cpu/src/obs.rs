//! Cross-layer observability: per-instruction pipeline lifecycle records
//! and windowed interval telemetry.
//!
//! Both facilities are off by default and cost one branch per site when
//! disabled ([`Pipeline::obs`] is `None`). When enabled:
//!
//! * the **lifecycle log** collects one [`LifeRecord`] per instruction
//!   that leaves the RUU — committed, spec-retired, or squashed — holding
//!   the fetch/dispatch/issue/complete/end cycle stamps the stage modules
//!   wrote into the entry, plus point samples of the IFQ occupancy and
//!   outstanding-miss counters (recorded only on change). The exporters
//!   in `spear-core` fold these into Konata and Perfetto views;
//! * the **window accumulator** closes a [`WindowStat`] every `len`
//!   cycles by snapshotting the cumulative counters and emitting the
//!   delta. Closed windows land in `CoreStats::windows` (so they ride
//!   through merge, checkpointed sampling, and the stats-json envelope)
//!   and stream as JSONL rows to the trace sink when one is attached.

use crate::pipeline::{EState, Pipeline, RuuEntry};
use crate::stats::{CoreStats, CycleAccount, WindowStat};
use crate::trace::Event;
use spear_isa::Inst;
use spear_mem::Hierarchy;

/// Default telemetry window length in cycles (`--window <n>` overrides).
pub const DEFAULT_WINDOW_CYCLES: u64 = 10_000;

/// Default cap on retained lifecycle records and counter samples.
pub const DEFAULT_LIFECYCLE_CAP: usize = 1_000_000;

/// One instruction's pipeline lifecycle, recorded when it leaves the RUU.
#[derive(Clone, Debug)]
pub struct LifeRecord {
    /// RUU sequence number (unique, monotonic in dispatch order).
    pub seq: u64,
    /// Hardware context index (0 = main program).
    pub ctx: usize,
    /// Instruction PC.
    pub pc: u32,
    /// The instruction word (for display labels).
    pub inst: Inst,
    /// SPEAR episode ordinal (1-based; 0 = not part of an episode).
    pub episode: u32,
    /// Cycle the instruction entered the IFQ.
    pub fetch_cycle: u64,
    /// Cycle it was dispatched into the RUU.
    pub dispatch_cycle: u64,
    /// Cycle it issued to a functional unit (0 if never issued).
    pub issue_cycle: u64,
    /// Cycle its execution completed (0 if never completed).
    pub complete_cycle: u64,
    /// Cycle it left the RUU (commit, spec-retire, or squash).
    pub end_cycle: u64,
    /// True if it was squashed on a misprediction recovery instead of
    /// retiring.
    pub squashed: bool,
}

/// A point sample of the tracked occupancy counters, recorded at end of
/// cycle whenever a value changed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CounterSample {
    /// Sample cycle.
    pub cycle: u64,
    /// IFQ occupancy.
    pub ifq_occupancy: usize,
    /// Cache-line fills in flight below the L1s.
    pub outstanding_misses: usize,
}

/// The per-instruction side of the observability state.
#[derive(Debug, Default)]
pub struct LifecycleLog {
    /// Retained records, in retirement order.
    pub records: Vec<LifeRecord>,
    /// Counter samples, in cycle order (change-compressed).
    pub samples: Vec<CounterSample>,
    /// Records (and samples) dropped once `cap` was reached.
    pub dropped: u64,
    cap: usize,
    last_sample: Option<(usize, usize)>,
}

impl LifecycleLog {
    fn new(cap: usize) -> LifecycleLog {
        LifecycleLog {
            cap,
            ..Default::default()
        }
    }

    fn push(&mut self, r: LifeRecord) {
        if self.records.len() < self.cap {
            self.records.push(r);
        } else {
            self.dropped += 1;
        }
    }

    fn sample(&mut self, cycle: u64, ifq: usize, misses: usize) {
        if self.last_sample == Some((ifq, misses)) {
            return;
        }
        self.last_sample = Some((ifq, misses));
        if self.samples.len() < self.cap {
            self.samples.push(CounterSample {
                cycle,
                ifq_occupancy: ifq,
                outstanding_misses: misses,
            });
        } else {
            self.dropped += 1;
        }
    }
}

/// Snapshot of the cumulative counters a window differences against.
#[derive(Clone, Debug, Default)]
struct Snap {
    committed: u64,
    l1d_misses: u64,
    l2_misses: u64,
    triggers_accepted: u64,
    episodes_completed: u64,
    episodes_aborted: u64,
    cycle_account: CycleAccount,
}

impl Snap {
    fn capture(stats: &CoreStats, hier: &Hierarchy) -> Snap {
        let l1d = hier.l1d.stats;
        let l2 = hier.l2.stats;
        Snap {
            committed: stats.committed,
            l1d_misses: l1d.read_misses + l1d.write_misses,
            l2_misses: l2.read_misses + l2.write_misses,
            triggers_accepted: stats.triggers_accepted,
            episodes_completed: stats.preexec_completed,
            episodes_aborted: stats.preexec_aborted_flush + stats.preexec_aborted_missed,
            cycle_account: stats.cycle_account.clone(),
        }
    }
}

/// Field-wise `cur - prev` over the CPI-stack slots.
fn account_delta(cur: &CycleAccount, prev: &CycleAccount) -> CycleAccount {
    CycleAccount {
        useful_slots: cur.useful_slots - prev.useful_slots,
        icache_stall: cur.icache_stall - prev.icache_stall,
        ifq_empty_after_flush: cur.ifq_empty_after_flush - prev.ifq_empty_after_flush,
        branch_recovery: cur.branch_recovery - prev.branch_recovery,
        dload_miss: cur.dload_miss - prev.dload_miss,
        fu_busy: cur.fu_busy - prev.fu_busy,
        mem_port_contention: cur.mem_port_contention - prev.mem_port_contention,
        pthread_contention: cur.pthread_contention - prev.pthread_contention,
        frontend_other: cur.frontend_other - prev.frontend_other,
        ruu_full_cycles: cur.ruu_full_cycles - prev.ruu_full_cycles,
    }
}

/// The windowed-telemetry side of the observability state.
#[derive(Debug)]
pub struct WindowAcc {
    /// Window length in cycles.
    pub len: u64,
    index: u64,
    start_cycle: u64,
    ifq_occupancy_sum: u64,
    last: Snap,
}

impl WindowAcc {
    fn new(len: u64) -> WindowAcc {
        WindowAcc {
            len: len.max(1),
            index: 0,
            start_cycle: 0,
            ifq_occupancy_sum: 0,
            last: Snap::default(),
        }
    }

    /// Close the window ending at `cycle` and reset for the next one.
    fn close(&mut self, cycle: u64, stats: &CoreStats, hier: &Hierarchy) -> WindowStat {
        let cur = Snap::capture(stats, hier);
        let stat = WindowStat {
            index: self.index,
            start_cycle: self.start_cycle,
            cycles: cycle - self.start_cycle,
            committed: cur.committed - self.last.committed,
            l1d_misses: cur.l1d_misses - self.last.l1d_misses,
            l2_misses: cur.l2_misses - self.last.l2_misses,
            ifq_occupancy_sum: self.ifq_occupancy_sum,
            triggers_accepted: cur.triggers_accepted - self.last.triggers_accepted,
            episodes_completed: cur.episodes_completed - self.last.episodes_completed,
            episodes_aborted: cur.episodes_aborted - self.last.episodes_aborted,
            cycle_account: account_delta(&cur.cycle_account, &self.last.cycle_account),
        };
        self.index += 1;
        self.start_cycle = cycle;
        self.ifq_occupancy_sum = 0;
        self.last = cur;
        stat
    }
}

/// All observability state hanging off [`Pipeline::obs`].
#[derive(Debug, Default)]
pub struct Obs {
    /// Per-instruction lifecycle records (`--pipeview`/`--perfetto`).
    pub lifecycle: Option<LifecycleLog>,
    /// Windowed interval telemetry (`--window`).
    pub window: Option<WindowAcc>,
}

impl Obs {
    /// Enable the lifecycle log, retaining at most `cap` records.
    pub fn enable_lifecycle(&mut self, cap: usize) {
        self.lifecycle = Some(LifecycleLog::new(cap.max(1)));
    }

    /// Enable windowed telemetry with `len`-cycle windows.
    pub fn enable_windows(&mut self, len: u64) {
        self.window = Some(WindowAcc::new(len));
    }

    /// Record an instruction leaving the RUU.
    #[inline]
    pub fn record_retire(&mut self, e: &RuuEntry, cycle: u64, squashed: bool) {
        if let Some(log) = &mut self.lifecycle {
            log.push(LifeRecord {
                seq: e.seq,
                ctx: e.ctx.0,
                pc: e.pc,
                inst: e.inst,
                episode: e.episode,
                fetch_cycle: e.fetch_cycle,
                dispatch_cycle: e.dispatch_cycle,
                issue_cycle: e.issue_cycle,
                complete_cycle: if e.state == EState::Done {
                    e.complete_at
                } else {
                    0
                },
                end_cycle: cycle,
                squashed,
            });
        }
    }
}

/// End-of-cycle hook: sample the occupancy counters and close the
/// current window at its boundary. Called from `Core::step_cycle` only
/// when observability is enabled.
pub fn on_cycle_end(pipe: &mut Pipeline) {
    let cycle = pipe.cycle;
    let ifq_occ = pipe.ifq.len();
    let misses = pipe.hier.in_flight_fills();
    let Some(obs) = pipe.obs.as_deref_mut() else {
        return;
    };
    if let Some(log) = &mut obs.lifecycle {
        log.sample(cycle, ifq_occ, misses);
    }
    if let Some(w) = &mut obs.window {
        w.ifq_occupancy_sum += ifq_occ as u64;
        if cycle - w.start_cycle >= w.len {
            let stat = w.close(cycle, &pipe.stats, &pipe.hier);
            if let Some(t) = &mut pipe.trace {
                if t.has_sink() {
                    t.stream(Event::Window { stat: stat.clone() });
                }
            }
            pipe.stats.windows.push(stat);
        }
    }
}

/// End-of-run hook: close the in-progress partial window, if any.
/// Called from `Core::finish` before the stats are harvested.
pub fn on_run_end(pipe: &mut Pipeline) {
    let cycle = pipe.cycle;
    let Some(obs) = pipe.obs.as_deref_mut() else {
        return;
    };
    if let Some(w) = &mut obs.window {
        if cycle > w.start_cycle {
            let stat = w.close(cycle, &pipe.stats, &pipe.hier);
            if let Some(t) = &mut pipe.trace {
                if t.has_sink() {
                    t.stream(Event::Window { stat: stat.clone() });
                }
            }
            pipe.stats.windows.push(stat);
        }
    }
}
