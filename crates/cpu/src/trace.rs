//! Pipeline tracing: a bounded in-memory log of SPEAR front-end events
//! for debugging and the `spear-sim --trace` CLI, plus an optional
//! streaming JSONL sink (`spear-sim --trace-file`) that additionally
//! carries high-volume pipeline events (commits, cache-line fills).
//!
//! Tracing is off by default and costs one branch per event site when
//! disabled.

use crate::stats::WindowStat;
use serde::{Serialize, Value};
use std::collections::VecDeque;
use std::fmt;
use std::io::Write;

/// One traced event.
#[derive(Clone, Debug, PartialEq)]
pub enum Event {
    /// A d-load detection was accepted as a trigger.
    Trigger {
        /// Cycle of acceptance.
        cycle: u64,
        /// Static d-load PC.
        dload_pc: u32,
        /// IFQ occupancy at detection.
        occupancy: usize,
    },
    /// Live-in copying finished; the PE was armed.
    LiveInsCopied {
        /// Cycle the PE went active.
        cycle: u64,
        /// Registers copied.
        count: usize,
    },
    /// The PE extracted an instruction into a speculative context.
    Extract {
        /// Cycle of extraction.
        cycle: u64,
        /// Instruction PC.
        pc: u32,
        /// True for the episode-terminating d-load.
        is_trigger: bool,
        /// Hardware context the instruction was extracted into.
        ctx: usize,
    },
    /// The episode finished (its d-load retired from the p-thread RUU).
    EpisodeComplete {
        /// Completion cycle.
        cycle: u64,
    },
    /// The episode was abandoned.
    EpisodeAborted {
        /// Abort cycle.
        cycle: u64,
        /// Why.
        reason: AbortReason,
    },
    /// A branch misprediction flushed the IFQ.
    Flush {
        /// Recovery cycle.
        cycle: u64,
        /// PC fetch restarted from.
        redirect_pc: u32,
    },
    /// An L1D cache-line fill was requested (demand miss or prefetch).
    /// Streamed to the sink only — too frequent for the bounded ring.
    Fill {
        /// Cycle the fill was requested.
        cycle: u64,
        /// Byte address of the filled block.
        block_addr: u64,
        /// Cycles until the line arrives.
        latency: u32,
        /// True if a speculative context (a prefetch) requested it.
        pthread: bool,
        /// Hardware context that requested the fill.
        ctx: usize,
    },
    /// A main-thread instruction committed. Streamed to the sink only.
    Commit {
        /// Commit cycle.
        cycle: u64,
        /// Instruction PC.
        pc: u32,
        /// Hardware context that committed it (always the main context).
        ctx: usize,
    },
    /// A telemetry window closed. Streamed to the sink only; the window
    /// counters are flattened into the JSON object alongside `event`.
    Window {
        /// The closed window's counters.
        stat: WindowStat,
    },
}

/// Why an episode was abandoned.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AbortReason {
    /// An IFQ flush emptied the queue (paper behaviour).
    Flush,
    /// Main decode consumed the triggering d-load first.
    MissedTrigger,
    /// The triggering d-load's speculative address faulted.
    Fault,
}

impl AbortReason {
    fn name(&self) -> &'static str {
        match self {
            AbortReason::Flush => "flush",
            AbortReason::MissedTrigger => "missed_trigger",
            AbortReason::Fault => "fault",
        }
    }
}

impl Event {
    /// Short machine-readable event name (the JSONL `event` field).
    pub fn name(&self) -> &'static str {
        match self {
            Event::Trigger { .. } => "trigger",
            Event::LiveInsCopied { .. } => "livein_copied",
            Event::Extract { .. } => "extract",
            Event::EpisodeComplete { .. } => "episode_complete",
            Event::EpisodeAborted { .. } => "episode_aborted",
            Event::Flush { .. } => "flush",
            Event::Fill { .. } => "fill",
            Event::Commit { .. } => "commit",
            Event::Window { .. } => "window",
        }
    }
}

// Enum variants carry data, which the derive does not cover — build the
// tagged object by hand so every event serializes as
// `{"event": "...", "cycle": N, ...}`.
impl Serialize for Event {
    fn to_value(&self) -> Value {
        let mut f: Vec<(String, Value)> = vec![("event".into(), Value::Str(self.name().into()))];
        let mut put = |k: &str, v: Value| f.push((k.into(), v));
        match *self {
            Event::Trigger {
                cycle,
                dload_pc,
                occupancy,
            } => {
                put("cycle", Value::U64(cycle));
                put("dload_pc", Value::U64(dload_pc as u64));
                put("occupancy", Value::U64(occupancy as u64));
            }
            Event::LiveInsCopied { cycle, count } => {
                put("cycle", Value::U64(cycle));
                put("count", Value::U64(count as u64));
            }
            Event::Extract {
                cycle,
                pc,
                is_trigger,
                ctx,
            } => {
                put("cycle", Value::U64(cycle));
                put("pc", Value::U64(pc as u64));
                put("is_trigger", Value::Bool(is_trigger));
                put("ctx", Value::U64(ctx as u64));
            }
            Event::EpisodeComplete { cycle } => put("cycle", Value::U64(cycle)),
            Event::EpisodeAborted { cycle, reason } => {
                put("cycle", Value::U64(cycle));
                put("reason", Value::Str(reason.name().into()));
            }
            Event::Flush { cycle, redirect_pc } => {
                put("cycle", Value::U64(cycle));
                put("redirect_pc", Value::U64(redirect_pc as u64));
            }
            Event::Fill {
                cycle,
                block_addr,
                latency,
                pthread,
                ctx,
            } => {
                put("cycle", Value::U64(cycle));
                put("block_addr", Value::U64(block_addr));
                put("latency", Value::U64(latency as u64));
                put("pthread", Value::Bool(pthread));
                put("ctx", Value::U64(ctx as u64));
            }
            Event::Commit { cycle, pc, ctx } => {
                put("cycle", Value::U64(cycle));
                put("pc", Value::U64(pc as u64));
                put("ctx", Value::U64(ctx as u64));
            }
            Event::Window { ref stat } => {
                // Flatten the window's own fields into the tagged object.
                if let Value::Object(fields) = stat.to_value() {
                    for kv in fields {
                        f.push(kv);
                    }
                }
            }
        }
        Value::Object(f)
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Event::Trigger {
                cycle,
                dload_pc,
                occupancy,
            } => write!(
                f,
                "[{cycle:>9}] trigger      d-load @{dload_pc} (IFQ occupancy {occupancy})"
            ),
            Event::LiveInsCopied { cycle, count } => {
                write!(
                    f,
                    "[{cycle:>9}] live-ins     {count} register(s) copied; PE armed"
                )
            }
            Event::Extract {
                cycle,
                pc,
                is_trigger,
                ctx,
            } => write!(
                f,
                "[{cycle:>9}] extract      @{pc} -> ctx{ctx}{}",
                if *is_trigger {
                    "  <-- triggering d-load"
                } else {
                    ""
                }
            ),
            Event::EpisodeComplete { cycle } => {
                write!(
                    f,
                    "[{cycle:>9}] episode done (d-load retired from p-thread RUU)"
                )
            }
            Event::EpisodeAborted { cycle, reason } => {
                write!(f, "[{cycle:>9}] episode aborted: {reason:?}")
            }
            Event::Flush { cycle, redirect_pc } => {
                write!(
                    f,
                    "[{cycle:>9}] flush        IFQ emptied, refetch from @{redirect_pc}"
                )
            }
            Event::Fill {
                cycle,
                block_addr,
                latency,
                pthread,
                ..
            } => write!(
                f,
                "[{cycle:>9}] fill         block {block_addr:#x} in {latency} cycle(s){}",
                if *pthread { " (p-thread)" } else { "" }
            ),
            Event::Commit { cycle, pc, .. } => {
                write!(f, "[{cycle:>9}] commit       @{pc}")
            }
            Event::Window { stat } => {
                write!(
                    f,
                    "[{:>9}] window #{}   {} cycle(s), IPC {:.3}, top stall: {}",
                    stat.start_cycle + stat.cycles,
                    stat.index,
                    stat.cycles,
                    stat.ipc(),
                    stat.top_stall_cause().0
                )
            }
        }
    }
}

/// Eagerly preallocated ring slots. The `VecDeque` grows lazily past
/// this, so a huge `--trace` capacity does not allocate gigabytes up
/// front; retention always honours the full requested capacity.
const PREALLOC_CAP: usize = 4096;

/// Flush the sink every this many JSONL lines, so a killed or crashed
/// run leaves at most this many lines (plus the `BufWriter` tail) behind
/// in memory instead of an unbounded buffered suffix.
const SINK_FLUSH_EVERY: usize = 256;

/// A bounded event log with an optional streaming JSONL sink.
#[derive(Default)]
pub struct Trace {
    events: VecDeque<Event>,
    capacity: usize,
    /// Total events recorded into the ring (including evicted ones).
    pub total: u64,
    /// Events written to the sink (ring-recorded plus streamed).
    pub streamed: u64,
    sink: Option<Box<dyn Write + Send>>,
    /// Lines written since the last sink flush (periodic-flush counter).
    lines_since_flush: usize,
}

impl fmt::Debug for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Trace")
            .field("events", &self.events)
            .field("capacity", &self.capacity)
            .field("total", &self.total)
            .field("streamed", &self.streamed)
            .field("sink", &self.sink.as_ref().map(|_| "Box<dyn Write>"))
            .finish()
    }
}

impl Trace {
    /// A trace retaining the most recent `capacity` events (all of them —
    /// only the eager preallocation is capped, at [`PREALLOC_CAP`]).
    pub fn new(capacity: usize) -> Trace {
        Trace {
            events: VecDeque::with_capacity(capacity.min(PREALLOC_CAP)),
            capacity,
            total: 0,
            streamed: 0,
            sink: None,
            lines_since_flush: 0,
        }
    }

    /// Stream every event written to this trace as one JSON object per
    /// line to `sink` (episode events recorded into the ring as well as
    /// sink-only pipeline events passed to [`Trace::stream`]).
    ///
    /// The sink is wrapped in a [`std::io::BufWriter`] here, so high-volume
    /// streams (one line per commit) do not pay a syscall per event.
    /// Buffered lines reach the underlying writer every
    /// [`SINK_FLUSH_EVERY`] lines, on [`Trace::flush`] (called by
    /// `Core::finish`), and when the trace is dropped — so a killed or
    /// crashed run keeps a usable trace prefix.
    pub fn set_sink(&mut self, sink: Box<dyn Write + Send>) {
        self.sink = Some(Box::new(std::io::BufWriter::new(sink)));
        self.lines_since_flush = 0;
    }

    /// True if a JSONL sink is attached.
    pub fn has_sink(&self) -> bool {
        self.sink.is_some()
    }

    fn write_sink(&mut self, event: &Event) {
        if let Some(s) = &mut self.sink {
            let mut line = serde::json::to_string(event);
            line.push('\n');
            if s.write_all(line.as_bytes()).is_err() {
                // A broken sink (e.g. full disk) disables streaming
                // rather than aborting the simulation.
                self.sink = None;
                return;
            }
            self.streamed += 1;
            self.lines_since_flush += 1;
            if self.lines_since_flush >= SINK_FLUSH_EVERY {
                self.lines_since_flush = 0;
                if s.flush().is_err() {
                    self.sink = None;
                }
            }
        }
    }

    /// Record an event into the bounded ring (and the sink, if any).
    pub fn record(&mut self, event: Event) {
        self.total += 1;
        self.write_sink(&event);
        if self.capacity == 0 {
            return;
        }
        if self.events.len() >= self.capacity {
            self.events.pop_front();
        }
        self.events.push_back(event);
    }

    /// Write a high-volume pipeline event to the sink only, leaving the
    /// bounded ring to the episode events.
    pub fn stream(&mut self, event: Event) {
        self.write_sink(&event);
    }

    /// Flush the sink (call once at the end of a run).
    pub fn flush(&mut self) {
        self.lines_since_flush = 0;
        if let Some(s) = &mut self.sink {
            let _ = s.flush();
        }
    }

    /// Events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &Event> {
        self.events.iter()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

impl Drop for Trace {
    /// Last-resort flush so buffered JSONL lines are not lost if the
    /// owner never reached an explicit [`Trace::flush`] (e.g. an early
    /// return or a panic unwinding past `Core::finish`).
    fn drop(&mut self) {
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounded_retention() {
        let mut t = Trace::new(3);
        for c in 0..10 {
            t.record(Event::Flush {
                cycle: c,
                redirect_pc: 0,
            });
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.total, 10);
        let first = t.events().next().unwrap();
        assert_eq!(
            first,
            &Event::Flush {
                cycle: 7,
                redirect_pc: 0
            }
        );
    }

    #[test]
    fn retention_honours_capacities_beyond_the_prealloc_cap() {
        // The eager allocation is capped at PREALLOC_CAP, but the ring
        // must still retain the full requested capacity.
        let cap = PREALLOC_CAP + 1000;
        let mut t = Trace::new(cap);
        for c in 0..(cap as u64 + 500) {
            t.record(Event::Commit {
                cycle: c,
                pc: 0,
                ctx: 0,
            });
        }
        assert_eq!(t.len(), cap, "retention must honour the full capacity");
        assert_eq!(
            t.events().next(),
            Some(&Event::Commit {
                cycle: 500,
                pc: 0,
                ctx: 0
            }),
            "oldest retained event must be total - capacity"
        );
    }

    #[test]
    fn zero_capacity_ring_retains_nothing_but_counts() {
        let mut t = Trace::new(0);
        t.record(Event::EpisodeComplete { cycle: 1 });
        assert!(t.is_empty());
        assert_eq!(t.total, 1);
    }

    #[test]
    fn display_forms() {
        let e = Event::Trigger {
            cycle: 42,
            dload_pc: 7,
            occupancy: 99,
        };
        let s = e.to_string();
        assert!(
            s.contains("42") && s.contains("@7") && s.contains("99"),
            "{s}"
        );
        let e = Event::Fill {
            cycle: 1,
            block_addr: 0x1000,
            latency: 133,
            pthread: true,
            ctx: 1,
        };
        let s = e.to_string();
        assert!(
            s.contains("0x1000") && s.contains("133") && s.contains("p-thread"),
            "{s}"
        );
    }

    #[test]
    fn events_serialize_as_tagged_json_objects() {
        let e = Event::Fill {
            cycle: 9,
            block_addr: 4096,
            latency: 133,
            pthread: true,
            ctx: 1,
        };
        let json = serde::json::to_string(&e);
        let v = serde::json::parse(&json).unwrap();
        assert_eq!(v.field("event").unwrap(), &Value::Str("fill".into()));
        assert_eq!(v.field("cycle").unwrap(), &Value::U64(9));
        assert_eq!(v.field("pthread").unwrap(), &Value::Bool(true));
        assert_eq!(v.field("ctx").unwrap(), &Value::U64(1));
    }

    #[test]
    fn sink_receives_jsonl_including_streamed_events() {
        use std::sync::{Arc, Mutex};

        #[derive(Clone)]
        struct Shared(Arc<Mutex<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }

        let buf = Shared(Arc::new(Mutex::new(Vec::new())));
        let mut t = Trace::new(2);
        t.set_sink(Box::new(buf.clone()));
        t.record(Event::EpisodeComplete { cycle: 5 });
        t.stream(Event::Commit {
            cycle: 6,
            pc: 3,
            ctx: 0,
        });
        t.flush();
        assert_eq!(t.streamed, 2);
        assert_eq!(t.len(), 1, "streamed events stay out of the ring");
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        let v = serde::json::parse(lines[1]).unwrap();
        assert_eq!(v.field("event").unwrap(), &Value::Str("commit".into()));
    }

    #[test]
    fn sink_flushes_periodically_without_an_explicit_flush() {
        use std::sync::{Arc, Mutex};

        #[derive(Clone)]
        struct Shared(Arc<Mutex<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }

        let buf = Shared(Arc::new(Mutex::new(Vec::new())));
        let mut t = Trace::new(0);
        t.set_sink(Box::new(buf.clone()));
        for c in 0..SINK_FLUSH_EVERY as u64 {
            t.stream(Event::Commit {
                cycle: c,
                pc: 0,
                ctx: 0,
            });
        }
        // No explicit flush, no drop: the periodic flush alone must have
        // pushed every line through to the underlying writer.
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        assert_eq!(
            text.lines().count(),
            SINK_FLUSH_EVERY,
            "a killed run keeps the flushed prefix"
        );
        std::mem::forget(t); // the leak keeps Drop's flush out of the test
    }

    #[test]
    fn failing_writer_disables_the_sink_without_aborting() {
        struct Failing;
        impl Write for Failing {
            fn write(&mut self, _buf: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::other("disk full"))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Err(std::io::Error::other("disk full"))
            }
        }

        let mut t = Trace::new(2);
        t.set_sink(Box::new(Failing));
        // Stream enough that both the BufWriter's internal spill and the
        // periodic flush hit the failing writer.
        for c in 0..(2 * SINK_FLUSH_EVERY as u64 + 10) {
            t.stream(Event::Commit {
                cycle: c,
                pc: 0,
                ctx: 0,
            });
            t.record(Event::EpisodeComplete { cycle: c });
        }
        assert!(!t.has_sink(), "a broken sink is dropped, not retried");
        assert!(
            t.streamed < 2 * (2 * SINK_FLUSH_EVERY as u64 + 10),
            "streaming stopped when the sink broke"
        );
        assert_eq!(t.len(), 2, "the in-memory ring is unaffected");
        t.flush(); // must be a no-op, not a panic
    }

    #[test]
    fn short_writes_still_deliver_complete_lines() {
        use std::sync::{Arc, Mutex};

        /// Accepts at most 7 bytes per call, forcing every line through
        /// multiple partial writes.
        #[derive(Clone)]
        struct Dribble(Arc<Mutex<Vec<u8>>>);
        impl Write for Dribble {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                let n = buf.len().min(7);
                self.0.lock().unwrap().extend_from_slice(&buf[..n]);
                Ok(n)
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }

        let buf = Dribble(Arc::new(Mutex::new(Vec::new())));
        let mut t = Trace::new(0);
        t.set_sink(Box::new(buf.clone()));
        let n = SINK_FLUSH_EVERY as u64 + 50;
        for c in 0..n {
            t.stream(Event::Commit {
                cycle: c,
                pc: 3,
                ctx: 0,
            });
        }
        t.flush();
        assert_eq!(t.streamed, n);
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len() as u64, n, "no line lost or torn");
        for line in lines {
            serde::json::parse(line).expect("every delivered line is complete JSON");
        }
    }

    #[test]
    fn window_event_serializes_flattened() {
        let e = Event::Window {
            stat: crate::stats::WindowStat {
                index: 2,
                start_cycle: 20_000,
                cycles: 10_000,
                committed: 12_345,
                ..Default::default()
            },
        };
        let json = serde::json::to_string(&e);
        let v = serde::json::parse(&json).unwrap();
        assert_eq!(v.field("event").unwrap(), &Value::Str("window".into()));
        assert_eq!(v.field("index").unwrap(), &Value::U64(2));
        assert_eq!(v.field("start_cycle").unwrap(), &Value::U64(20_000));
        assert_eq!(v.field("committed").unwrap(), &Value::U64(12_345));
        assert!(v.field("cycle_account").is_ok(), "CPI deltas ride along");
        assert!(e.to_string().contains("window #2"), "{e}");
    }

    #[test]
    fn buffered_sink_flushes_on_drop() {
        use std::sync::{Arc, Mutex};

        #[derive(Clone)]
        struct Shared(Arc<Mutex<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }

        let buf = Shared(Arc::new(Mutex::new(Vec::new())));
        {
            let mut t = Trace::new(2);
            t.set_sink(Box::new(buf.clone()));
            t.stream(Event::Commit {
                cycle: 1,
                pc: 2,
                ctx: 0,
            });
            // No explicit flush: one short line sits in the BufWriter.
            assert!(buf.0.lock().unwrap().is_empty(), "line is still buffered");
        }
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        assert_eq!(text.lines().count(), 1, "drop flushed the buffered line");
    }
}
