//! Episode tracing: a bounded log of SPEAR front-end events for
//! debugging and for the `spear-sim --trace` CLI.
//!
//! Tracing is off by default and costs one branch per event site when
//! disabled.

use std::collections::VecDeque;
use std::fmt;

/// One traced SPEAR event.
#[derive(Clone, Debug, PartialEq)]
pub enum Event {
    /// A d-load detection was accepted as a trigger.
    Trigger {
        /// Cycle of acceptance.
        cycle: u64,
        /// Static d-load PC.
        dload_pc: u32,
        /// IFQ occupancy at detection.
        occupancy: usize,
    },
    /// Live-in copying finished; the PE was armed.
    LiveInsCopied {
        /// Cycle the PE went active.
        cycle: u64,
        /// Registers copied.
        count: usize,
    },
    /// The PE extracted an instruction into the p-thread.
    Extract {
        /// Cycle of extraction.
        cycle: u64,
        /// Instruction PC.
        pc: u32,
        /// True for the episode-terminating d-load.
        is_trigger: bool,
    },
    /// The episode finished (its d-load retired from the p-thread RUU).
    EpisodeComplete {
        /// Completion cycle.
        cycle: u64,
    },
    /// The episode was abandoned.
    EpisodeAborted {
        /// Abort cycle.
        cycle: u64,
        /// Why.
        reason: AbortReason,
    },
    /// A branch misprediction flushed the IFQ.
    Flush {
        /// Recovery cycle.
        cycle: u64,
        /// PC fetch restarted from.
        redirect_pc: u32,
    },
}

/// Why an episode was abandoned.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AbortReason {
    /// An IFQ flush emptied the queue (paper behaviour).
    Flush,
    /// Main decode consumed the triggering d-load first.
    MissedTrigger,
    /// The triggering d-load's speculative address faulted.
    Fault,
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Event::Trigger { cycle, dload_pc, occupancy } => write!(
                f,
                "[{cycle:>9}] trigger      d-load @{dload_pc} (IFQ occupancy {occupancy})"
            ),
            Event::LiveInsCopied { cycle, count } => {
                write!(f, "[{cycle:>9}] live-ins     {count} register(s) copied; PE armed")
            }
            Event::Extract { cycle, pc, is_trigger } => write!(
                f,
                "[{cycle:>9}] extract      @{pc}{}",
                if *is_trigger { "  <-- triggering d-load" } else { "" }
            ),
            Event::EpisodeComplete { cycle } => {
                write!(f, "[{cycle:>9}] episode done (d-load retired from p-thread RUU)")
            }
            Event::EpisodeAborted { cycle, reason } => {
                write!(f, "[{cycle:>9}] episode aborted: {reason:?}")
            }
            Event::Flush { cycle, redirect_pc } => {
                write!(f, "[{cycle:>9}] flush        IFQ emptied, refetch from @{redirect_pc}")
            }
        }
    }
}

/// A bounded event log.
#[derive(Debug, Default)]
pub struct Trace {
    events: VecDeque<Event>,
    capacity: usize,
    /// Total events recorded (including evicted ones).
    pub total: u64,
}

impl Trace {
    /// A trace holding the most recent `capacity` events.
    pub fn new(capacity: usize) -> Trace {
        Trace { events: VecDeque::with_capacity(capacity.min(4096)), capacity, total: 0 }
    }

    /// Record an event.
    pub fn record(&mut self, event: Event) {
        self.total += 1;
        if self.events.len() >= self.capacity {
            self.events.pop_front();
        }
        self.events.push_back(event);
    }

    /// Events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &Event> {
        self.events.iter()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounded_retention() {
        let mut t = Trace::new(3);
        for c in 0..10 {
            t.record(Event::Flush { cycle: c, redirect_pc: 0 });
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.total, 10);
        let first = t.events().next().unwrap();
        assert_eq!(first, &Event::Flush { cycle: 7, redirect_pc: 0 });
    }

    #[test]
    fn display_forms() {
        let e = Event::Trigger { cycle: 42, dload_pc: 7, occupancy: 99 };
        let s = e.to_string();
        assert!(s.contains("42") && s.contains("@7") && s.contains("99"), "{s}");
    }
}
