//! Structured telemetry export: a versioned JSON envelope around a full
//! run's statistics, for downstream tooling (plots, regression diffs,
//! CI dashboards) that should not have to scrape the text report.
//!
//! The schema is versioned by [`SCHEMA_VERSION`]: any field rename or
//! semantic change bumps it, and a golden-file test in the `spear`
//! crate's `tests/export_schema.rs` pins the flattened key set so
//! accidental drift fails loudly.
//!
//! Lives in `spear-cpu` (re-exported by the top-level `spear` crate) so
//! the campaign engine and the campaign server write their aggregate
//! envelopes through the *same* type the CLI uses — byte-identical by
//! construction rather than by convention.

use crate::stats::{CoreStats, RunExit};
use serde::{Deserialize, Serialize};

/// Version of the exported JSON schema. Bump on any breaking change to
/// [`StatsExport`] or the stats types it embeds.
pub const SCHEMA_VERSION: u32 = 1;

/// Simulator self-measurement: how fast the *simulation itself* ran.
///
/// Purely observational — derived from the host wall clock, so two runs
/// of the same cell will differ. It is therefore attached to envelopes
/// as an *optional, omitted-when-absent* block: deterministic artifacts
/// (golden files, campaign aggregate files compared byte-for-byte
/// across resume boundaries) simply never set it.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SimPerf {
    /// Host wall-clock time of the simulated run, in milliseconds.
    pub wall_ms: u64,
    /// Simulation throughput: committed kilo-instructions per host
    /// second.
    pub kips: f64,
    /// Simulated cycles per host second.
    pub cycles_per_sec: f64,
}

impl SimPerf {
    /// Throughput of a run that committed `committed` instructions over
    /// `cycles` cycles in `wall` of host time.
    pub fn from_run(committed: u64, cycles: u64, wall: std::time::Duration) -> SimPerf {
        let secs = wall.as_secs_f64().max(1e-9);
        SimPerf {
            wall_ms: wall.as_millis() as u64,
            kips: committed as f64 / secs / 1000.0,
            cycles_per_sec: cycles as f64 / secs,
        }
    }

    /// One-line human summary (the `spear-sim --perf` line).
    pub fn summary(&self) -> String {
        format!(
            "sim-perf: {:.0} KIPS, {:.2e} cycles/s, {} ms wall",
            self.kips, self.cycles_per_sec, self.wall_ms
        )
    }
}

/// Provenance of a SimPoint-sampled aggregate: how the phase clustering
/// that produced the weight-blended statistics was configured and what it
/// covered. Additive and omitted-when-absent, like [`SimPerf`]: envelopes
/// from full or systematically sampled runs never carry it, so their
/// bytes are unchanged by the block's existence.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SimpointBlock {
    /// Requested phase count (0 = chosen automatically by BIC).
    pub k: u64,
    /// Clusterer seed.
    pub seed: u64,
    /// Instructions per clustering interval.
    pub interval_len: u64,
    /// Representative intervals actually cycle-simulated for this
    /// aggregate (one per phase).
    pub phases: u64,
    /// Total intervals the phase weights cover (the whole-program
    /// denominator the blend reconstitutes).
    pub intervals: u64,
}

/// The top-level JSON document written by `spear-sim --stats-json` and
/// the campaign aggregate writers.
///
/// Serialization is hand-written (not derived) for one reason: the
/// optional [`SimPerf`] block must be *omitted* when absent, not
/// emitted as `null`, so envelopes built without it stay byte-identical
/// to the pre-`sim_perf` schema (golden files, campaign aggregates).
#[derive(Clone, Debug, PartialEq)]
pub struct StatsExport {
    /// Schema version of this document ([`SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Workload name or input-file path.
    pub workload: String,
    /// Machine model name (e.g. `SPEAR-128`).
    pub machine: String,
    /// Main-memory access latency in cycles (Table 2 default or the
    /// `--mem-latency` sweep point).
    pub mem_latency: u32,
    /// How the run ended.
    pub exit: RunExit,
    /// Full simulator statistics, including the CPI-stack cycle account
    /// and the per-d-load prefetch profiles.
    pub stats: CoreStats,
    /// Simulation-throughput self-measurement (additive; absent from
    /// deterministic artifacts).
    pub sim_perf: Option<SimPerf>,
    /// Canonical branch-predictor spec label (e.g. `tage` or
    /// `tage:tables=8,...`) when the run used a non-default predictor.
    /// `None` — and omitted from JSON — for the paper's bimodal default,
    /// keeping default envelopes byte-identical to the pre-trait schema.
    pub bpred: Option<String>,
    /// Instruction-supply front end (`trace`) when the run replayed a
    /// recorded trace instead of executing the program. `None` — and
    /// omitted from JSON — for the default program front end, keeping
    /// program-driven envelopes byte-identical to the pre-trace schema.
    pub frontend: Option<String>,
    /// SimPoint phase-clustering provenance when the statistics are a
    /// weight-blended reconstruction over phase representatives. `None` —
    /// and omitted from JSON — for full and systematically sampled runs,
    /// keeping their envelopes byte-identical to the pre-simpoint schema.
    pub simpoint: Option<SimpointBlock>,
}

impl Serialize for StatsExport {
    fn to_value(&self) -> serde::Value {
        let mut fields = vec![
            ("schema_version".to_string(), self.schema_version.to_value()),
            ("workload".to_string(), self.workload.to_value()),
            ("machine".to_string(), self.machine.to_value()),
            ("mem_latency".to_string(), self.mem_latency.to_value()),
            ("exit".to_string(), self.exit.to_value()),
            ("stats".to_string(), self.stats.to_value()),
        ];
        if let Some(p) = &self.sim_perf {
            fields.push(("sim_perf".to_string(), p.to_value()));
        }
        if let Some(b) = &self.bpred {
            fields.push(("bpred".to_string(), b.to_value()));
        }
        if let Some(f) = &self.frontend {
            fields.push(("frontend".to_string(), f.to_value()));
        }
        if let Some(s) = &self.simpoint {
            fields.push(("simpoint".to_string(), s.to_value()));
        }
        serde::Value::Object(fields)
    }
}

impl Deserialize for StatsExport {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        Ok(StatsExport {
            schema_version: u32::from_value(v.field("schema_version")?)?,
            workload: String::from_value(v.field("workload")?)?,
            machine: String::from_value(v.field("machine")?)?,
            mem_latency: u32::from_value(v.field("mem_latency")?)?,
            exit: RunExit::from_value(v.field("exit")?)?,
            stats: CoreStats::from_value(v.field("stats")?)?,
            // Absent in documents from older writers (and in every
            // deterministic artifact).
            sim_perf: match v.field("sim_perf") {
                Ok(val) => Option::<SimPerf>::from_value(val)?,
                Err(_) => None,
            },
            // Absent for default-predictor runs and older writers.
            bpred: match v.field("bpred") {
                Ok(val) => Option::<String>::from_value(val)?,
                Err(_) => None,
            },
            // Absent for program-driven runs and older writers.
            frontend: match v.field("frontend") {
                Ok(val) => Option::<String>::from_value(val)?,
                Err(_) => None,
            },
            // Absent for non-simpoint aggregates and older writers.
            simpoint: match v.field("simpoint") {
                Ok(val) => Option::<SimpointBlock>::from_value(val)?,
                Err(_) => None,
            },
        })
    }
}

impl StatsExport {
    /// Build the export envelope around a finished run.
    pub fn new(
        workload: impl Into<String>,
        machine: &str,
        mem_latency: u32,
        exit: RunExit,
        stats: CoreStats,
    ) -> Self {
        StatsExport {
            schema_version: SCHEMA_VERSION,
            workload: workload.into(),
            machine: machine.to_string(),
            mem_latency,
            exit,
            stats,
            sim_perf: None,
            bpred: None,
            frontend: None,
            simpoint: None,
        }
    }

    /// Attach a simulation-throughput block to the envelope.
    pub fn with_sim_perf(mut self, perf: SimPerf) -> Self {
        self.sim_perf = Some(perf);
        self
    }

    /// Record the predictor spec label. The default `bimodal` is stored
    /// as `None` so default envelopes keep their exact historical bytes.
    pub fn with_bpred(mut self, label: &str) -> Self {
        self.bpred = if label == "bimodal" {
            None
        } else {
            Some(label.to_string())
        };
        self
    }

    /// Record the instruction-supply front end. The default `program`
    /// source is stored as `None` so program-driven envelopes keep their
    /// exact historical bytes.
    pub fn with_frontend(mut self, frontend: &str) -> Self {
        self.frontend = if frontend == "program" {
            None
        } else {
            Some(frontend.to_string())
        };
        self
    }

    /// Attach SimPoint phase-clustering provenance to the envelope.
    pub fn with_simpoint(mut self, block: SimpointBlock) -> Self {
        self.simpoint = Some(block);
        self
    }

    /// Pretty-printed JSON document.
    pub fn to_json(&self) -> String {
        serde::json::to_string_pretty(self)
    }

    /// Parse a document produced by [`Self::to_json`]. Unknown fields are
    /// ignored, so newer documents load under older readers as long as
    /// the present fields keep their meaning.
    pub fn from_json(s: &str) -> Result<Self, serde::Error> {
        serde::json::from_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_through_json() {
        let mut stats = CoreStats {
            cycles: 123,
            committed: 456,
            ..Default::default()
        };
        stats.cycle_account.useful_slots = 456;
        stats.cycle_account.dload_miss = 528;
        let doc = StatsExport::new("mcf", "SPEAR-128", 120, RunExit::Halted, stats);
        let json = doc.to_json();
        assert!(
            !json.contains("sim_perf"),
            "absent sim_perf is omitted, not null — deterministic envelopes \
             must not change shape"
        );
        assert!(
            !json.contains("bpred_detail") && !json.contains("\"bpred\": \""),
            "default-predictor envelopes must not grow predictor blocks"
        );
        let back = StatsExport::from_json(&json).expect("valid JSON");
        assert_eq!(doc, back);
        assert_eq!(back.schema_version, SCHEMA_VERSION);
    }

    #[test]
    fn bpred_label_round_trips_and_bimodal_stays_omitted() {
        let doc = StatsExport::new(
            "mcf",
            "SPEAR-128",
            120,
            RunExit::Halted,
            CoreStats::default(),
        );
        let bimodal = doc.clone().with_bpred("bimodal");
        assert_eq!(bimodal.bpred, None, "default label normalizes to absent");
        assert_eq!(bimodal.to_json(), doc.to_json());
        let tage = doc.clone().with_bpred("tage");
        let json = tage.to_json();
        assert!(json.contains("\"bpred\": \"tage\""));
        let back = StatsExport::from_json(&json).expect("valid JSON");
        assert_eq!(back.bpred.as_deref(), Some("tage"));
    }

    #[test]
    fn frontend_label_round_trips_and_program_stays_omitted() {
        let doc = StatsExport::new(
            "mcf",
            "SPEAR-128",
            120,
            RunExit::Halted,
            CoreStats::default(),
        );
        let program = doc.clone().with_frontend("program");
        assert_eq!(
            program.frontend, None,
            "default source normalizes to absent"
        );
        assert_eq!(program.to_json(), doc.to_json());
        let trace = doc.clone().with_frontend("trace");
        let json = trace.to_json();
        assert!(json.contains("\"frontend\": \"trace\""));
        let back = StatsExport::from_json(&json).expect("valid JSON");
        assert_eq!(back.frontend.as_deref(), Some("trace"));
    }

    #[test]
    fn sim_perf_block_round_trips_when_present() {
        let stats = CoreStats {
            cycles: 2_000_000,
            committed: 1_000_000,
            ..Default::default()
        };
        let perf = SimPerf::from_run(1_000_000, 2_000_000, std::time::Duration::from_millis(250));
        assert_eq!(perf.wall_ms, 250);
        assert!(
            (perf.kips - 4000.0).abs() < 1e-6,
            "1M insts / 0.25s = 4000 KIPS"
        );
        assert!((perf.cycles_per_sec - 8_000_000.0).abs() < 1e-3);
        let doc =
            StatsExport::new("mcf", "SPEAR-128", 120, RunExit::Halted, stats).with_sim_perf(perf);
        let json = doc.to_json();
        assert!(json.contains("\"sim_perf\""));
        assert!(json.contains("\"kips\""));
        let back = StatsExport::from_json(&json).expect("valid JSON");
        assert_eq!(back.sim_perf, Some(perf));
        assert!(!perf.summary().is_empty());
    }

    #[test]
    fn simpoint_block_round_trips_and_stays_omitted_when_off() {
        let doc = StatsExport::new(
            "mcf",
            "SPEAR-128",
            120,
            RunExit::Halted,
            CoreStats::default(),
        );
        assert!(
            !doc.to_json().contains("simpoint"),
            "non-simpoint envelopes must not grow a simpoint block"
        );
        let block = SimpointBlock {
            k: 0,
            seed: 42,
            interval_len: 100_000,
            phases: 4,
            intervals: 150,
        };
        let json = doc.clone().with_simpoint(block).to_json();
        assert!(json.contains("\"simpoint\""));
        // The block is appended after every pre-existing optional field,
        // so the prefix of the document is byte-identical with it off.
        let plain = doc.to_json();
        let prefix = &plain[..plain.rfind('\n').unwrap_or(0)];
        assert!(
            json.starts_with(prefix.trim_end_matches(['}', '\n', ' '])),
            "simpoint block must be additive at the document tail"
        );
        let back = StatsExport::from_json(&json).expect("valid JSON");
        assert_eq!(back.simpoint, Some(block));
        assert_eq!(back.simpoint.unwrap().phases, 4);
    }

    #[test]
    fn zero_wall_time_does_not_divide_by_zero() {
        let p = SimPerf::from_run(100, 100, std::time::Duration::ZERO);
        assert!(p.kips.is_finite());
        assert!(p.cycles_per_sec.is_finite());
    }
}
