//! Power-of-two histograms for pipeline statistics.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A histogram with logarithmic (power-of-two) buckets: bucket `i` holds
/// values in `[2^i, 2^(i+1))`, with bucket 0 also catching value 0.
///
/// Cheap enough to keep hot-path counters in (one `leading_zeros` per
/// record), and compact enough to serialize with run results.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    fn bucket_of(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            (63 - v.leading_zeros()) as usize
        }
    }

    /// Record one value.
    pub fn record(&mut self, v: u64) {
        let b = Self::bucket_of(v);
        if self.buckets.len() <= b {
            self.buckets.resize(b + 1, 0);
        }
        self.buckets[b] += 1;
        self.count += 1;
        self.sum += v;
        self.max = self.max.max(v);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Largest recorded value.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Smallest bucket lower-bound `b` such that at least `p` (0..=1) of
    /// the values fall in buckets `<= b` — a bucket-granular percentile.
    pub fn percentile_bound(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (self.count as f64 * p).ceil() as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return if i == 0 { 0 } else { 1 << i };
            }
        }
        self.max
    }

    /// Fold another histogram into this one, as if every value recorded
    /// in `other` had been recorded here. Used when aggregating sampled
    /// simulation intervals into one campaign-level statistic.
    pub fn merge(&mut self, other: &Histogram) {
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (b, &c) in other.buckets.iter().enumerate() {
            self.buckets[b] += c;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// Fold another histogram in `weight` times over, as if every value
    /// recorded in `other` had been recorded here `weight` times. The
    /// SimPoint aggregator uses this to blend one representative
    /// interval's statistics across every interval of its phase; the
    /// value *distribution* (buckets, count, sum) scales linearly, while
    /// `max` — an order statistic, not a sum — stays the observed
    /// maximum.
    pub fn merge_scaled(&mut self, other: &Histogram, weight: u64) {
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (b, &c) in other.buckets.iter().enumerate() {
            self.buckets[b] += c * weight;
        }
        self.count += other.count * weight;
        self.sum += other.sum * weight;
        self.max = self.max.max(other.max);
    }

    /// Bucket contents as `(lower_bound, count)` pairs, skipping empties.
    pub fn buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (if i == 0 { 0 } else { 1u64 << i }, c))
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.1} p50≥{} p90≥{} max={}",
            self.count,
            self.mean(),
            self.percentile_bound(0.5),
            self.percentile_bound(0.9),
            self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        let mut h = Histogram::new();
        for v in [0, 1, 2, 3, 4, 7, 8, 1024] {
            h.record(v);
        }
        let buckets: Vec<_> = h.buckets().collect();
        // 0 and 1 share bucket 0's neighborhood: 0 → bucket0, 1 → bucket0.
        assert_eq!(buckets[0], (0, 2)); // values 0, 1
        assert!(buckets.contains(&(2, 2))); // values 2, 3
        assert!(buckets.contains(&(4, 2))); // values 4, 7
        assert!(buckets.contains(&(8, 1)));
        assert!(buckets.contains(&(1024, 1)));
    }

    #[test]
    fn mean_and_max() {
        let mut h = Histogram::new();
        for v in [10, 20, 30] {
            h.record(v);
        }
        assert_eq!(h.mean(), 20.0);
        assert_eq!(h.max(), 30);
        assert_eq!(h.count(), 3);
    }

    #[test]
    fn percentile_bound_monotone() {
        let mut h = Histogram::new();
        for v in 0..1000u64 {
            h.record(v);
        }
        let p50 = h.percentile_bound(0.5);
        let p90 = h.percentile_bound(0.9);
        let p99 = h.percentile_bound(0.99);
        assert!(p50 <= p90 && p90 <= p99, "{p50} {p90} {p99}");
        assert!(p99 <= h.max().next_power_of_two());
    }

    #[test]
    fn merge_matches_recording_everything_in_one() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut whole = Histogram::new();
        for v in [0, 1, 5, 9, 300] {
            a.record(v);
            whole.record(v);
        }
        for v in [2, 7, 4096] {
            b.record(v);
            whole.record(v);
        }
        a.merge(&b);
        assert_eq!(a, whole);
        let empty = Histogram::new();
        a.merge(&empty);
        assert_eq!(a, whole, "merging an empty histogram is a no-op");
    }

    #[test]
    fn merge_scaled_matches_repeated_merges() {
        let mut src = Histogram::new();
        for v in [0, 1, 5, 9, 300] {
            src.record(v);
        }
        let mut scaled = Histogram::new();
        scaled.record(7);
        let mut repeated = scaled.clone();
        scaled.merge_scaled(&src, 3);
        for _ in 0..3 {
            repeated.merge(&src);
        }
        assert_eq!(scaled, repeated);
        // Weight 1 is a plain merge; weight 0 is a no-op.
        let mut once = Histogram::new();
        once.merge_scaled(&src, 1);
        assert_eq!(once, src);
        once.merge_scaled(&src, 0);
        assert_eq!(once, src);
    }

    #[test]
    fn empty_histogram_is_calm() {
        let h = Histogram::new();
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.percentile_bound(0.9), 0);
        assert_eq!(h.buckets().count(), 0);
    }
}
