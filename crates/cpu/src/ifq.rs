//! The Instruction Fetch Queue (§3.1–3.2).
//!
//! A circular FIFO between fetch and decode. SPEAR's distinctive feature
//! lives here: during pre-decode, instructions whose PC is in the p-thread
//! table are *marked* with a p-thread indicator; the P-thread Extractor
//! (PE) later scans the queue from its `p-thread head` position, copies
//! marked instructions to the decoder, and switches the indicator off so
//! each instruction is pre-executed at most once. The instruction itself
//! stays in the queue — it still belongs to the main program.

use spear_bpred::Prediction;
use spear_isa::Inst;
use std::collections::VecDeque;

/// One IFQ slot.
#[derive(Clone, Debug)]
pub struct IfqEntry {
    /// Fetch sequence number (globally unique, monotonic).
    pub seq: u64,
    /// Instruction PC.
    pub pc: u32,
    /// The instruction word (available after the fetch).
    pub inst: Inst,
    /// Next-PC prediction made at fetch.
    pub pred: Prediction,
    /// The p-thread indicator set by pre-decode.
    pub marked: bool,
    /// True if pre-decode matched this PC in the d-load set.
    pub is_dload: bool,
    /// Cycle the instruction entered the queue (pipeline lifecycle stamp;
    /// flows into the RUU entry at dispatch or extraction).
    pub fetch_cycle: u64,
}

/// The queue. `scan` is the PE's "p-thread head" pointer, kept as an index
/// into the live entries and adjusted as the main thread consumes from the
/// front.
#[derive(Clone, Debug)]
pub struct Ifq {
    entries: VecDeque<IfqEntry>,
    capacity: usize,
    scan: usize,
}

impl Ifq {
    /// An empty queue of `capacity` entries.
    pub fn new(capacity: usize) -> Ifq {
        assert!(capacity > 0);
        Ifq {
            entries: VecDeque::with_capacity(capacity),
            capacity,
            scan: 0,
        }
    }

    /// Occupancy.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// True when no fetch slot is free.
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Insert a fetched instruction at the tail. Panics if full (the fetch
    /// stage checks [`Ifq::is_full`] first).
    pub fn push(&mut self, entry: IfqEntry) {
        assert!(!self.is_full(), "IFQ overflow");
        self.entries.push_back(entry);
    }

    /// Peek the head entry (the next instruction decode will take).
    pub fn front(&self) -> Option<&IfqEntry> {
        self.entries.front()
    }

    /// Remove the head entry for main-thread decode; the PE scan position
    /// shifts with the queue.
    pub fn pop_front(&mut self) -> Option<IfqEntry> {
        let e = self.entries.pop_front();
        if e.is_some() {
            self.scan = self.scan.saturating_sub(1);
        }
        e
    }

    /// Reset the PE scan to the queue head (entering pre-execution mode:
    /// "the PE … scans each entry starting with the head of the IFQ").
    pub fn reset_scan(&mut self) {
        self.scan = 0;
    }

    /// Advance the PE scan to the next marked entry; extract it (clear the
    /// indicator, move the p-thread head past it) and return a copy.
    ///
    /// Returns `None` when no marked entry remains between the p-thread
    /// head and the tail.
    pub fn extract_next_marked(&mut self) -> Option<IfqEntry> {
        while self.scan < self.entries.len() {
            let idx = self.scan;
            if self.entries[idx].marked {
                self.entries[idx].marked = false;
                self.scan = idx + 1;
                return Some(self.entries[idx].clone());
            }
            self.scan += 1;
        }
        None
    }

    /// Drop everything (branch-misprediction recovery flush).
    pub fn flush(&mut self) {
        self.entries.clear();
        self.scan = 0;
    }

    /// Iterate entries from head to tail (diagnostics/tests).
    pub fn iter(&self) -> impl Iterator<Item = &IfqEntry> {
        self.entries.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spear_isa::Inst;

    fn entry(seq: u64, marked: bool) -> IfqEntry {
        IfqEntry {
            seq,
            pc: seq as u32,
            inst: Inst::nop(),
            pred: Prediction {
                next_pc: seq as u32 + 1,
                taken: None,
            },
            marked,
            is_dload: false,
            fetch_cycle: 0,
        }
    }

    #[test]
    fn fifo_order() {
        let mut q = Ifq::new(4);
        q.push(entry(1, false));
        q.push(entry(2, false));
        assert_eq!(q.pop_front().unwrap().seq, 1);
        assert_eq!(q.pop_front().unwrap().seq, 2);
        assert!(q.pop_front().is_none());
    }

    #[test]
    #[should_panic(expected = "IFQ overflow")]
    fn overflow_panics() {
        let mut q = Ifq::new(1);
        q.push(entry(1, false));
        q.push(entry(2, false));
    }

    #[test]
    fn extraction_skips_unmarked_and_clears_indicator() {
        let mut q = Ifq::new(8);
        q.push(entry(1, false));
        q.push(entry(2, true));
        q.push(entry(3, false));
        q.push(entry(4, true));
        q.reset_scan();
        assert_eq!(q.extract_next_marked().unwrap().seq, 2);
        assert_eq!(q.extract_next_marked().unwrap().seq, 4);
        assert!(q.extract_next_marked().is_none());
        // Indicators are off but entries remain for the main thread.
        assert_eq!(q.len(), 4);
        assert!(q.iter().all(|e| !e.marked));
    }

    #[test]
    fn extraction_does_not_reextract_after_reset() {
        let mut q = Ifq::new(8);
        q.push(entry(1, true));
        q.reset_scan();
        assert_eq!(q.extract_next_marked().unwrap().seq, 1);
        q.reset_scan();
        assert!(q.extract_next_marked().is_none(), "indicator was cleared");
    }

    #[test]
    fn scan_position_survives_head_pops() {
        let mut q = Ifq::new(8);
        for s in 1..=5 {
            q.push(entry(s, s >= 4));
        }
        q.reset_scan();
        assert_eq!(q.extract_next_marked().unwrap().seq, 4);
        // Main decode consumes two entries from the head.
        q.pop_front();
        q.pop_front();
        // Scan should resume after seq 4, finding seq 5.
        assert_eq!(q.extract_next_marked().unwrap().seq, 5);
    }

    #[test]
    fn marked_entries_pushed_during_scan_are_found() {
        let mut q = Ifq::new(8);
        q.push(entry(1, false));
        q.reset_scan();
        assert!(q.extract_next_marked().is_none());
        q.push(entry(2, true));
        assert_eq!(q.extract_next_marked().unwrap().seq, 2);
    }

    #[test]
    fn flush_empties_and_resets() {
        let mut q = Ifq::new(4);
        q.push(entry(1, true));
        q.flush();
        assert!(q.is_empty());
        assert!(q.extract_next_marked().is_none());
    }

    #[test]
    fn occupancy_tracks_pushes_pops_and_capacity() {
        let mut q = Ifq::new(3);
        assert_eq!(q.capacity(), 3);
        assert!(q.is_empty());
        assert!(!q.is_full());
        for s in 1..=3 {
            q.push(entry(s, false));
            assert_eq!(q.len(), s as usize);
        }
        assert!(q.is_full());
        q.pop_front();
        assert_eq!(q.len(), 2);
        assert!(!q.is_full(), "a freed slot reopens fetch");
        q.push(entry(4, false));
        assert!(q.is_full());
    }

    #[test]
    fn marked_entry_bookkeeping_under_mixed_consumption() {
        let mut q = Ifq::new(8);
        q.push(entry(1, false));
        q.push(entry(2, true));
        q.push(entry(3, true));
        let marked = |q: &Ifq| q.iter().filter(|e| e.marked).count();
        assert_eq!(marked(&q), 2);
        // Extraction clears exactly one indicator; the entry stays queued.
        q.reset_scan();
        assert_eq!(q.extract_next_marked().unwrap().seq, 2);
        assert_eq!(marked(&q), 1);
        assert_eq!(q.len(), 3);
        // Main decode consuming a still-marked entry removes its mark with
        // it (a missed extraction, from the PE's point of view).
        q.pop_front();
        q.pop_front();
        let missed = q.pop_front().unwrap();
        assert!(missed.marked, "seq 3 left with its indicator set");
        assert_eq!(marked(&q), 0);
        assert!(q.is_empty());
    }

    #[test]
    fn draining_to_empty_resets_scan_for_refill() {
        let mut q = Ifq::new(4);
        q.push(entry(1, true));
        q.reset_scan();
        assert_eq!(q.extract_next_marked().unwrap().seq, 1);
        // Drain completely via main decode; the scan index saturates at
        // the head rather than underflowing.
        while q.pop_front().is_some() {}
        assert!(q.is_empty());
        assert!(q.extract_next_marked().is_none());
        // A refilled queue scans from the head again.
        q.push(entry(2, true));
        assert_eq!(q.extract_next_marked().unwrap().seq, 2);
    }
}
