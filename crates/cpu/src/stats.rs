//! Simulation statistics.

use crate::hist::Histogram;
use serde::{Deserialize, Serialize};
use spear_bpred::PredStats;
use spear_mem::CacheStats;

/// Counters accumulated by one simulation run.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct CoreStats {
    /// Cycles simulated.
    pub cycles: u64,
    /// Main-thread instructions committed.
    pub committed: u64,
    /// Main-thread loads committed.
    pub committed_loads: u64,
    /// Main-thread stores committed.
    pub committed_stores: u64,
    /// Main-thread control-flow instructions committed (for IPB).
    pub committed_branches: u64,
    /// Instructions fetched (true and wrong path).
    pub fetched: u64,
    /// Wrong-path instructions dispatched and later squashed.
    pub squashed: u64,
    /// Branch mispredictions recovered.
    pub recoveries: u64,

    // ---- SPEAR-specific ------------------------------------------------
    /// Triggers accepted (pre-execution episodes started).
    pub triggers_accepted: u64,
    /// D-load detections ignored because a pre-execution episode was
    /// already in progress (the paper's "excessive triggering" signal).
    pub triggers_ignored_busy: u64,
    /// D-load detections rejected by the IFQ-occupancy condition.
    pub triggers_rejected_occupancy: u64,
    /// Episodes abandoned after a branch-misprediction IFQ flush (no
    /// refetched d-load instance arrived within the re-arm window).
    pub preexec_aborted_flush: u64,
    /// Episodes re-armed onto a refetched d-load instance after a flush.
    pub preexec_retargets: u64,
    /// Episodes aborted because the main thread decoded the triggering
    /// d-load before the PE could extract it.
    pub preexec_aborted_missed: u64,
    /// Episodes that ran to d-load retirement.
    pub preexec_completed: u64,
    /// P-thread instructions extracted and executed.
    pub pthread_insts: u64,
    /// P-thread loads executed (prefetches issued).
    pub pthread_loads: u64,
    /// Marked instructions consumed by main decode before extraction.
    pub missed_extractions: u64,
    /// Cycles spent copying live-ins.
    pub livein_copy_cycles: u64,
    /// P-thread instructions dropped because their speculative address
    /// faulted.
    pub pthread_faults: u64,

    // ---- substrates ----------------------------------------------------
    /// Branch predictor statistics.
    pub bpred: PredStats,
    /// L1 data cache statistics.
    pub l1d: CacheStats,
    /// Unified L2 statistics.
    pub l2: CacheStats,
    /// L1D misses attributed to main-thread accesses.
    pub l1d_main_misses: u64,
    /// L1D misses incurred by p-thread prefetch accesses.
    pub l1d_pthread_misses: u64,
    /// Main-thread L1 hits on lines the p-thread prefetched (useful
    /// prefetches — the paper's future-work "actual effectiveness of the
    /// p-thread execution").
    pub useful_prefetches: u64,
    /// Main-thread accesses that merged into a still-in-flight p-thread
    /// fill (late prefetches: partially hidden latency).
    pub late_prefetches: u64,
    /// Distribution of episode durations (cycles from trigger acceptance
    /// to completion or abort).
    pub episode_cycles: Histogram,
    /// Distribution of instructions extracted per episode.
    pub episode_extractions: Histogram,
}

impl CoreStats {
    /// Main-thread instructions per cycle — the paper's metric ("the
    /// performance is measured in terms of IPC of the main program
    /// thread").
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed as f64 / self.cycles as f64
        }
    }

    /// Instructions per branch (Table 3).
    pub fn ipb(&self) -> f64 {
        if self.committed_branches == 0 {
            self.committed as f64
        } else {
            self.committed as f64 / self.committed_branches as f64
        }
    }

    /// Branch direction hit ratio (Table 3).
    pub fn branch_hit_ratio(&self) -> f64 {
        self.bpred.hit_ratio()
    }
}

/// How a run ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunExit {
    /// The program's `halt` committed.
    Halted,
    /// The cycle budget was exhausted first.
    CycleBudget,
    /// The committed-instruction budget was exhausted first.
    InstBudget,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipc_and_ipb() {
        let s = CoreStats {
            cycles: 100,
            committed: 250,
            committed_branches: 50,
            ..Default::default()
        };
        assert_eq!(s.ipc(), 2.5);
        assert_eq!(s.ipb(), 5.0);
    }

    #[test]
    fn zero_cycle_ipc_is_zero() {
        assert_eq!(CoreStats::default().ipc(), 0.0);
    }
}
