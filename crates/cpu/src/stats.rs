//! Simulation statistics.

use crate::hist::Histogram;
use serde::{Deserialize, Serialize};
use spear_bpred::{PredStats, PredictorDetail};
use spear_mem::CacheStats;

/// Why commit slots went unused in a cycle. One cause is charged per
/// cycle for all of that cycle's lost slots, judged from the state of the
/// oldest in-flight instruction (the classic CPI-stack "blame the commit
/// head" rule), or from the front-end state when the window is empty.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StallCause {
    /// Fetch blocked on an instruction-cache miss (empty window).
    IcacheStall,
    /// Window empty while the front end refills after a misprediction
    /// flush emptied the IFQ.
    IfqEmptyAfterFlush,
    /// Commit blocked on the unresolved mispredicted branch itself.
    BranchRecovery,
    /// Commit head is a memory operation waiting on a cache miss (the
    /// latency SPEAR exists to hide).
    DloadMiss,
    /// Commit head is executing a long-latency operation, or is ready but
    /// was denied a functional unit.
    FuBusy,
    /// Commit head is a ready memory operation that could not get a
    /// memory port.
    MemPortContention,
    /// Commit head was ready but the p-thread consumed the issue slots or
    /// ports it needed (the cost side of pre-execution).
    PthreadContention,
    /// Anything else: cold-start, decode/dispatch refill, post-halt
    /// drain, runaway wrong-path fetch.
    FrontendOther,
}

/// CPI-stack cycle accounting: every cycle has `commit_width` commit
/// slots; each is either used by a committing instruction
/// (`useful_slots`) or charged to exactly one [`StallCause`]. The strict
/// invariant `useful_slots + lost_slots() == cycles * commit_width` makes
/// SPEAR-vs-baseline IPC deltas decompose into recovered stall cycles.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct CycleAccount {
    /// Commit slots filled by retiring main-thread instructions.
    pub useful_slots: u64,
    /// Slot-cycles lost to instruction-fetch stalls.
    pub icache_stall: u64,
    /// Slot-cycles lost refilling the pipe after a misprediction flush.
    pub ifq_empty_after_flush: u64,
    /// Slot-cycles lost waiting on the mispredicted branch to resolve.
    pub branch_recovery: u64,
    /// Slot-cycles lost to outstanding data-cache misses at commit head.
    pub dload_miss: u64,
    /// Slot-cycles lost to busy/denied functional units.
    pub fu_busy: u64,
    /// Slot-cycles lost to memory-port contention.
    pub mem_port_contention: u64,
    /// Slot-cycles lost to p-thread resource contention.
    pub pthread_contention: u64,
    /// Slot-cycles lost to other front-end causes (cold start, dispatch
    /// refill, post-halt drain).
    pub frontend_other: u64,
    /// Auxiliary (outside the slot-sum invariant): cycles dispatch was
    /// blocked by a full RUU with instructions waiting in the IFQ.
    pub ruu_full_cycles: u64,
}

impl CycleAccount {
    /// Charge `slots` lost commit slots to `cause`.
    pub fn charge(&mut self, cause: StallCause, slots: u64) {
        let field = match cause {
            StallCause::IcacheStall => &mut self.icache_stall,
            StallCause::IfqEmptyAfterFlush => &mut self.ifq_empty_after_flush,
            StallCause::BranchRecovery => &mut self.branch_recovery,
            StallCause::DloadMiss => &mut self.dload_miss,
            StallCause::FuBusy => &mut self.fu_busy,
            StallCause::MemPortContention => &mut self.mem_port_contention,
            StallCause::PthreadContention => &mut self.pthread_contention,
            StallCause::FrontendOther => &mut self.frontend_other,
        };
        *field += slots;
    }

    /// Lost slot-cycles summed over every cause (excludes the auxiliary
    /// `ruu_full_cycles` backpressure counter).
    pub fn lost_slots(&self) -> u64 {
        self.icache_stall
            + self.ifq_empty_after_flush
            + self.branch_recovery
            + self.dload_miss
            + self.fu_busy
            + self.mem_port_contention
            + self.pthread_contention
            + self.frontend_other
    }

    /// Total accounted slot-cycles; equals `cycles * commit_width`.
    pub fn total_slots(&self) -> u64 {
        self.useful_slots + self.lost_slots()
    }

    /// Add another account's slot-cycles to this one. The exact-slot
    /// invariant is preserved: if both inputs satisfy
    /// `useful_slots + lost_slots() == cycles * commit_width` for their
    /// own cycle counts, the sum satisfies it for the summed cycles.
    pub fn merge(&mut self, other: &CycleAccount) {
        self.useful_slots += other.useful_slots;
        self.icache_stall += other.icache_stall;
        self.ifq_empty_after_flush += other.ifq_empty_after_flush;
        self.branch_recovery += other.branch_recovery;
        self.dload_miss += other.dload_miss;
        self.fu_busy += other.fu_busy;
        self.mem_port_contention += other.mem_port_contention;
        self.pthread_contention += other.pthread_contention;
        self.frontend_other += other.frontend_other;
        self.ruu_full_cycles += other.ruu_full_cycles;
    }

    /// Add `weight` copies of another account's slot-cycles to this one
    /// (integer scale-then-sum; see [`CoreStats::merge_scaled`]). Because
    /// every field scales linearly, the exact-slot invariant is preserved
    /// for the weighted cycle total.
    pub fn merge_scaled(&mut self, other: &CycleAccount, weight: u64) {
        self.useful_slots += other.useful_slots * weight;
        self.icache_stall += other.icache_stall * weight;
        self.ifq_empty_after_flush += other.ifq_empty_after_flush * weight;
        self.branch_recovery += other.branch_recovery * weight;
        self.dload_miss += other.dload_miss * weight;
        self.fu_busy += other.fu_busy * weight;
        self.mem_port_contention += other.mem_port_contention * weight;
        self.pthread_contention += other.pthread_contention * weight;
        self.frontend_other += other.frontend_other * weight;
        self.ruu_full_cycles += other.ruu_full_cycles * weight;
    }

    /// `(label, slot-cycles)` for each lost-slot cause, in a stable
    /// reporting order (largest architectural causes first).
    pub fn causes(&self) -> [(&'static str, u64); 8] {
        [
            ("d-load miss", self.dload_miss),
            ("branch recovery", self.branch_recovery),
            ("IFQ empty after flush", self.ifq_empty_after_flush),
            ("I-cache stall", self.icache_stall),
            ("FU busy", self.fu_busy),
            ("memory-port contention", self.mem_port_contention),
            ("p-thread contention", self.pthread_contention),
            ("front-end other", self.frontend_other),
        ]
    }
}

/// Per-static-d-load prefetch effectiveness: how one p-thread's target
/// load fared over the run. Every p-thread load access lands in exactly
/// one of the timely/late/useless buckets, so
/// `timely + late + useless == pthread_loads`.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct DloadProfile {
    /// Static PC of the delinquent load this p-thread targets.
    pub dload_pc: u32,
    /// Main-thread L1D demand misses at this PC.
    pub demand_misses: u64,
    /// Pre-execution episodes triggered for this d-load.
    pub episodes_triggered: u64,
    /// Episodes that ran to d-load retirement.
    pub episodes_completed: u64,
    /// Episodes aborted (flush, missed trigger, fault, re-arm timeout).
    pub episodes_aborted: u64,
    /// P-thread load accesses issued to the data cache for this d-load.
    pub pthread_loads: u64,
    /// Prefetched lines the main thread hit after the fill completed.
    pub timely_prefetches: u64,
    /// Prefetched lines the main thread touched while still in flight.
    pub late_prefetches: u64,
    /// Prefetches never used: redundant, evicted before use, or
    /// unclaimed at the end of the run.
    pub useless_prefetches: u64,
}

impl DloadProfile {
    /// Fraction of p-thread loads that helped (timely or late).
    pub fn accuracy(&self) -> f64 {
        if self.pthread_loads == 0 {
            0.0
        } else {
            (self.timely_prefetches + self.late_prefetches) as f64 / self.pthread_loads as f64
        }
    }
}

/// One closed telemetry window: deltas of the headline counters over a
/// fixed span of cycles (default 10k, `--window <n>`). Windows are the
/// substrate for time-series views of a run (IPC over time, CPI-stack
/// phases, MPKI spikes) and for SimPoint-style phase clustering.
///
/// Each window satisfies the exact-slot invariant on its own:
/// `cycle_account.total_slots() == cycles * commit_width`.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct WindowStat {
    /// Window ordinal within its run (0-based).
    pub index: u64,
    /// First cycle covered by the window.
    pub start_cycle: u64,
    /// Cycles covered (the last window of a run may be partial).
    pub cycles: u64,
    /// Main-thread instructions committed inside the window.
    pub committed: u64,
    /// L1D misses (read + write) inside the window.
    pub l1d_misses: u64,
    /// L2 misses (read + write) inside the window.
    pub l2_misses: u64,
    /// Sum of per-cycle IFQ occupancy over the window (divide by
    /// `cycles` for the mean).
    pub ifq_occupancy_sum: u64,
    /// Pre-execution episodes started inside the window.
    pub triggers_accepted: u64,
    /// Episodes completed inside the window.
    pub episodes_completed: u64,
    /// Episodes aborted (flush, missed trigger, fault) inside the window.
    pub episodes_aborted: u64,
    /// CPI-stack slot deltas for the window.
    pub cycle_account: CycleAccount,
}

impl WindowStat {
    /// Committed instructions per cycle inside the window.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed as f64 / self.cycles as f64
        }
    }

    /// L1D misses per kilo-instruction inside the window.
    pub fn l1d_mpki(&self) -> f64 {
        if self.committed == 0 {
            0.0
        } else {
            self.l1d_misses as f64 * 1000.0 / self.committed as f64
        }
    }

    /// L2 misses per kilo-instruction inside the window.
    pub fn l2_mpki(&self) -> f64 {
        if self.committed == 0 {
            0.0
        } else {
            self.l2_misses as f64 * 1000.0 / self.committed as f64
        }
    }

    /// Mean IFQ occupancy over the window.
    pub fn mean_ifq_occupancy(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.ifq_occupancy_sum as f64 / self.cycles as f64
        }
    }

    /// The stall cause that lost the most commit slots in this window.
    pub fn top_stall_cause(&self) -> (&'static str, u64) {
        self.cycle_account
            .causes()
            .into_iter()
            .max_by_key(|&(_, n)| n)
            .unwrap_or(("front-end other", 0))
    }
}

/// Counters accumulated by one simulation run.
///
/// `Serialize`/`Deserialize` are written by hand (not derived) for one
/// reason: the `windows` field must be *omitted* when empty so that runs
/// without windowed telemetry serialize byte-identically to the pre-obs
/// schema (the golden envelopes pin this), and tolerated when absent on
/// the way back in. All other fields replicate the derive exactly, in
/// declaration order.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CoreStats {
    /// Cycles simulated.
    pub cycles: u64,
    /// Main-thread instructions committed.
    pub committed: u64,
    /// Main-thread loads committed.
    pub committed_loads: u64,
    /// Main-thread stores committed.
    pub committed_stores: u64,
    /// Main-thread control-flow instructions committed (for IPB).
    pub committed_branches: u64,
    /// Instructions fetched (true and wrong path).
    pub fetched: u64,
    /// Wrong-path instructions dispatched and later squashed.
    pub squashed: u64,
    /// Branch mispredictions recovered.
    pub recoveries: u64,

    // ---- SPEAR-specific ------------------------------------------------
    /// Triggers accepted (pre-execution episodes started).
    pub triggers_accepted: u64,
    /// D-load detections ignored because a pre-execution episode was
    /// already in progress (the paper's "excessive triggering" signal).
    pub triggers_ignored_busy: u64,
    /// D-load detections rejected by the IFQ-occupancy condition.
    pub triggers_rejected_occupancy: u64,
    /// Episodes abandoned after a branch-misprediction IFQ flush (no
    /// refetched d-load instance arrived within the re-arm window).
    pub preexec_aborted_flush: u64,
    /// Episodes re-armed onto a refetched d-load instance after a flush.
    pub preexec_retargets: u64,
    /// Episodes aborted because the main thread decoded the triggering
    /// d-load before the PE could extract it.
    pub preexec_aborted_missed: u64,
    /// Episodes that ran to d-load retirement.
    pub preexec_completed: u64,
    /// P-thread instructions extracted and executed.
    pub pthread_insts: u64,
    /// P-thread loads executed (prefetches issued).
    pub pthread_loads: u64,
    /// Marked instructions consumed by main decode before extraction.
    pub missed_extractions: u64,
    /// Cycles spent copying live-ins.
    pub livein_copy_cycles: u64,
    /// P-thread instructions dropped because their speculative address
    /// faulted.
    pub pthread_faults: u64,

    // ---- substrates ----------------------------------------------------
    /// Branch predictor statistics.
    pub bpred: PredStats,
    /// L1 data cache statistics.
    pub l1d: CacheStats,
    /// Unified L2 statistics.
    pub l2: CacheStats,
    /// L1D misses attributed to main-thread accesses.
    pub l1d_main_misses: u64,
    /// L1D misses incurred by p-thread prefetch accesses.
    pub l1d_pthread_misses: u64,
    /// Main-thread L1 hits on lines the p-thread prefetched (useful
    /// prefetches — the paper's future-work "actual effectiveness of the
    /// p-thread execution").
    pub useful_prefetches: u64,
    /// Main-thread accesses that merged into a still-in-flight p-thread
    /// fill (late prefetches: partially hidden latency).
    pub late_prefetches: u64,
    /// Distribution of episode durations (cycles from trigger acceptance
    /// to completion or abort).
    pub episode_cycles: Histogram,
    /// Distribution of instructions extracted per episode.
    pub episode_extractions: Histogram,

    // ---- telemetry -----------------------------------------------------
    /// CPI-stack cycle accounting (commit-slot attribution).
    pub cycle_account: CycleAccount,
    /// Per-static-d-load prefetch effectiveness profiles, sorted by PC.
    pub dload_profiles: Vec<DloadProfile>,
    /// Windowed interval telemetry (empty unless windows were enabled).
    /// Omitted from JSON when empty; see the type-level serde note.
    pub windows: Vec<WindowStat>,
    /// Predictor-internal counters (e.g. TAGE provider/allocation
    /// activity). `None` for predictors with no internals to report —
    /// including the paper's default bimodal — and omitted from JSON so
    /// default-config envelopes stay byte-identical to the pre-trait
    /// schema.
    pub bpred_detail: Option<PredictorDetail>,
}

impl Serialize for CoreStats {
    fn to_value(&self) -> serde::Value {
        let mut fields: Vec<(String, serde::Value)> = Vec::new();
        let mut put = |k: &str, v: serde::Value| fields.push((k.to_string(), v));
        put("cycles", Serialize::to_value(&self.cycles));
        put("committed", Serialize::to_value(&self.committed));
        put(
            "committed_loads",
            Serialize::to_value(&self.committed_loads),
        );
        put(
            "committed_stores",
            Serialize::to_value(&self.committed_stores),
        );
        put(
            "committed_branches",
            Serialize::to_value(&self.committed_branches),
        );
        put("fetched", Serialize::to_value(&self.fetched));
        put("squashed", Serialize::to_value(&self.squashed));
        put("recoveries", Serialize::to_value(&self.recoveries));
        put(
            "triggers_accepted",
            Serialize::to_value(&self.triggers_accepted),
        );
        put(
            "triggers_ignored_busy",
            Serialize::to_value(&self.triggers_ignored_busy),
        );
        put(
            "triggers_rejected_occupancy",
            Serialize::to_value(&self.triggers_rejected_occupancy),
        );
        put(
            "preexec_aborted_flush",
            Serialize::to_value(&self.preexec_aborted_flush),
        );
        put(
            "preexec_retargets",
            Serialize::to_value(&self.preexec_retargets),
        );
        put(
            "preexec_aborted_missed",
            Serialize::to_value(&self.preexec_aborted_missed),
        );
        put(
            "preexec_completed",
            Serialize::to_value(&self.preexec_completed),
        );
        put("pthread_insts", Serialize::to_value(&self.pthread_insts));
        put("pthread_loads", Serialize::to_value(&self.pthread_loads));
        put(
            "missed_extractions",
            Serialize::to_value(&self.missed_extractions),
        );
        put(
            "livein_copy_cycles",
            Serialize::to_value(&self.livein_copy_cycles),
        );
        put("pthread_faults", Serialize::to_value(&self.pthread_faults));
        put("bpred", Serialize::to_value(&self.bpred));
        put("l1d", Serialize::to_value(&self.l1d));
        put("l2", Serialize::to_value(&self.l2));
        put(
            "l1d_main_misses",
            Serialize::to_value(&self.l1d_main_misses),
        );
        put(
            "l1d_pthread_misses",
            Serialize::to_value(&self.l1d_pthread_misses),
        );
        put(
            "useful_prefetches",
            Serialize::to_value(&self.useful_prefetches),
        );
        put(
            "late_prefetches",
            Serialize::to_value(&self.late_prefetches),
        );
        put("episode_cycles", Serialize::to_value(&self.episode_cycles));
        put(
            "episode_extractions",
            Serialize::to_value(&self.episode_extractions),
        );
        put("cycle_account", Serialize::to_value(&self.cycle_account));
        put("dload_profiles", Serialize::to_value(&self.dload_profiles));
        if !self.windows.is_empty() {
            put("windows", Serialize::to_value(&self.windows));
        }
        if let Some(d) = &self.bpred_detail {
            put("bpred_detail", Serialize::to_value(d));
        }
        serde::Value::Object(fields)
    }
}

impl Deserialize for CoreStats {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        Ok(CoreStats {
            cycles: Deserialize::from_value(v.field("cycles")?)?,
            committed: Deserialize::from_value(v.field("committed")?)?,
            committed_loads: Deserialize::from_value(v.field("committed_loads")?)?,
            committed_stores: Deserialize::from_value(v.field("committed_stores")?)?,
            committed_branches: Deserialize::from_value(v.field("committed_branches")?)?,
            fetched: Deserialize::from_value(v.field("fetched")?)?,
            squashed: Deserialize::from_value(v.field("squashed")?)?,
            recoveries: Deserialize::from_value(v.field("recoveries")?)?,
            triggers_accepted: Deserialize::from_value(v.field("triggers_accepted")?)?,
            triggers_ignored_busy: Deserialize::from_value(v.field("triggers_ignored_busy")?)?,
            triggers_rejected_occupancy: Deserialize::from_value(
                v.field("triggers_rejected_occupancy")?,
            )?,
            preexec_aborted_flush: Deserialize::from_value(v.field("preexec_aborted_flush")?)?,
            preexec_retargets: Deserialize::from_value(v.field("preexec_retargets")?)?,
            preexec_aborted_missed: Deserialize::from_value(v.field("preexec_aborted_missed")?)?,
            preexec_completed: Deserialize::from_value(v.field("preexec_completed")?)?,
            pthread_insts: Deserialize::from_value(v.field("pthread_insts")?)?,
            pthread_loads: Deserialize::from_value(v.field("pthread_loads")?)?,
            missed_extractions: Deserialize::from_value(v.field("missed_extractions")?)?,
            livein_copy_cycles: Deserialize::from_value(v.field("livein_copy_cycles")?)?,
            pthread_faults: Deserialize::from_value(v.field("pthread_faults")?)?,
            bpred: Deserialize::from_value(v.field("bpred")?)?,
            l1d: Deserialize::from_value(v.field("l1d")?)?,
            l2: Deserialize::from_value(v.field("l2")?)?,
            l1d_main_misses: Deserialize::from_value(v.field("l1d_main_misses")?)?,
            l1d_pthread_misses: Deserialize::from_value(v.field("l1d_pthread_misses")?)?,
            useful_prefetches: Deserialize::from_value(v.field("useful_prefetches")?)?,
            late_prefetches: Deserialize::from_value(v.field("late_prefetches")?)?,
            episode_cycles: Deserialize::from_value(v.field("episode_cycles")?)?,
            episode_extractions: Deserialize::from_value(v.field("episode_extractions")?)?,
            cycle_account: Deserialize::from_value(v.field("cycle_account")?)?,
            dload_profiles: Deserialize::from_value(v.field("dload_profiles")?)?,
            // Absent in pre-obs envelopes and in any run without windowed
            // telemetry: default to empty rather than erroring.
            windows: match v.field("windows") {
                Ok(w) => Deserialize::from_value(w)?,
                Err(_) => Vec::new(),
            },
            // Absent for default-predictor runs and pre-trait envelopes.
            bpred_detail: match v.field("bpred_detail") {
                Ok(d) => Some(Deserialize::from_value(d)?),
                Err(_) => None,
            },
        })
    }
}

impl CoreStats {
    /// Main-thread instructions per cycle — the paper's metric ("the
    /// performance is measured in terms of IPC of the main program
    /// thread").
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed as f64 / self.cycles as f64
        }
    }

    /// Instructions per branch (Table 3).
    pub fn ipb(&self) -> f64 {
        if self.committed_branches == 0 {
            self.committed as f64
        } else {
            self.committed as f64 / self.committed_branches as f64
        }
    }

    /// Branch direction hit ratio (Table 3).
    pub fn branch_hit_ratio(&self) -> f64 {
        self.bpred.hit_ratio()
    }

    /// Check the structural invariants every completed run must satisfy,
    /// independent of workload or configuration. Returns a description of
    /// the first violation found, or `Ok(())`.
    ///
    /// Checked:
    /// * exact-slot CPI accounting — `useful_slots + lost_slots()` must
    ///   equal `cycles * commit_width` (every commit slot of every cycle
    ///   is either used or charged to exactly one stall cause);
    /// * per-d-load prefetch partition — each profile's
    ///   `timely + late + useless` must equal its `pthread_loads` (every
    ///   p-thread load access lands in exactly one bucket);
    /// * profile ordering — `dload_profiles` sorted by PC with no
    ///   duplicates (merge and reporting rely on it);
    /// * committed breakdown — loads + stores + branches cannot exceed
    ///   the committed total;
    /// * global prefetch tallies — summed profile buckets cannot exceed
    ///   the global `pthread_loads`, and the run-wide useful/late
    ///   counters must match the profile sums (profiles partition all
    ///   p-thread prefetch traffic);
    /// * window partition — when windowed telemetry is present, the
    ///   windows partition the run exactly: per-window cycles and
    ///   committed counts sum to the global totals, and each window
    ///   satisfies the exact-slot invariant on its own.
    pub fn check_invariants(&self, commit_width: usize) -> Result<(), String> {
        let total = self.cycle_account.total_slots();
        let expect = self.cycles * commit_width as u64;
        if total != expect {
            return Err(format!(
                "CPI slot accounting broken: useful {} + lost {} = {} slots, \
                 but {} cycles x width {} = {}",
                self.cycle_account.useful_slots,
                self.cycle_account.lost_slots(),
                total,
                self.cycles,
                commit_width,
                expect
            ));
        }
        if self.committed_loads + self.committed_stores + self.committed_branches > self.committed {
            return Err(format!(
                "committed breakdown exceeds total: {} loads + {} stores + {} branches > {}",
                self.committed_loads,
                self.committed_stores,
                self.committed_branches,
                self.committed
            ));
        }
        let mut timely = 0u64;
        let mut late = 0u64;
        let mut useless = 0u64;
        let mut prev_pc: Option<u32> = None;
        for p in &self.dload_profiles {
            if let Some(prev) = prev_pc {
                if p.dload_pc <= prev {
                    return Err(format!(
                        "dload_profiles not strictly sorted by PC: {:#x} after {:#x}",
                        p.dload_pc, prev
                    ));
                }
            }
            prev_pc = Some(p.dload_pc);
            let sum = p.timely_prefetches + p.late_prefetches + p.useless_prefetches;
            if sum != p.pthread_loads {
                return Err(format!(
                    "d-load {:#x} prefetch partition broken: timely {} + late {} + useless {} \
                     = {} != pthread_loads {}",
                    p.dload_pc,
                    p.timely_prefetches,
                    p.late_prefetches,
                    p.useless_prefetches,
                    sum,
                    p.pthread_loads
                ));
            }
            timely += p.timely_prefetches;
            late += p.late_prefetches;
            useless += p.useless_prefetches;
        }
        if timely + late + useless > self.pthread_loads {
            return Err(format!(
                "profile buckets exceed global pthread_loads: {} + {} + {} > {}",
                timely, late, useless, self.pthread_loads
            ));
        }
        if timely != self.useful_prefetches {
            return Err(format!(
                "profile timely sum {} != run-wide useful_prefetches {}",
                timely, self.useful_prefetches
            ));
        }
        if late != self.late_prefetches {
            return Err(format!(
                "profile late sum {} != run-wide late_prefetches {}",
                late, self.late_prefetches
            ));
        }
        if !self.windows.is_empty() {
            let wcycles: u64 = self.windows.iter().map(|w| w.cycles).sum();
            if wcycles != self.cycles {
                return Err(format!(
                    "window partition broken: per-window cycles sum {} != total cycles {}",
                    wcycles, self.cycles
                ));
            }
            let wcommitted: u64 = self.windows.iter().map(|w| w.committed).sum();
            if wcommitted != self.committed {
                return Err(format!(
                    "window partition broken: per-window committed sum {} != total committed {}",
                    wcommitted, self.committed
                ));
            }
            for w in &self.windows {
                let total = w.cycle_account.total_slots();
                let expect = w.cycles * commit_width as u64;
                if total != expect {
                    return Err(format!(
                        "window {} CPI slot accounting broken: {} slots, \
                         but {} cycles x width {} = {}",
                        w.index, total, w.cycles, commit_width, expect
                    ));
                }
            }
        }
        Ok(())
    }

    /// Fold another run's counters into this one, as if the two simulated
    /// regions had been one run. Used by the sampling campaign to build a
    /// weighted aggregate over simulated intervals: every counter is a
    /// plain sum, histograms merge bucket-wise, and per-d-load profiles
    /// merge by static PC (the output stays sorted by PC). Because each
    /// interval satisfies the exact-slot CPI invariant on its own, the
    /// aggregate satisfies it over the summed cycles.
    ///
    /// Windowed telemetry merges by concatenation: `other`'s windows are
    /// appended after `self`'s in order, each keeping its own run-local
    /// `index`/`start_cycle`. The window partition invariant (cycles and
    /// committed sums match the global totals) is therefore exact across
    /// merges as long as either both sides carry windows or both are
    /// empty.
    pub fn merge(&mut self, other: &CoreStats) {
        self.cycles += other.cycles;
        self.committed += other.committed;
        self.committed_loads += other.committed_loads;
        self.committed_stores += other.committed_stores;
        self.committed_branches += other.committed_branches;
        self.fetched += other.fetched;
        self.squashed += other.squashed;
        self.recoveries += other.recoveries;
        self.triggers_accepted += other.triggers_accepted;
        self.triggers_ignored_busy += other.triggers_ignored_busy;
        self.triggers_rejected_occupancy += other.triggers_rejected_occupancy;
        self.preexec_aborted_flush += other.preexec_aborted_flush;
        self.preexec_retargets += other.preexec_retargets;
        self.preexec_aborted_missed += other.preexec_aborted_missed;
        self.preexec_completed += other.preexec_completed;
        self.pthread_insts += other.pthread_insts;
        self.pthread_loads += other.pthread_loads;
        self.missed_extractions += other.missed_extractions;
        self.livein_copy_cycles += other.livein_copy_cycles;
        self.pthread_faults += other.pthread_faults;
        self.bpred.cond_branches += other.bpred.cond_branches;
        self.bpred.cond_correct += other.bpred.cond_correct;
        self.bpred.indirect += other.bpred.indirect;
        self.bpred.indirect_correct += other.bpred.indirect_correct;
        for (mine, theirs) in [(&mut self.l1d, &other.l1d), (&mut self.l2, &other.l2)] {
            mine.reads += theirs.reads;
            mine.writes += theirs.writes;
            mine.read_misses += theirs.read_misses;
            mine.write_misses += theirs.write_misses;
            mine.writebacks += theirs.writebacks;
        }
        self.l1d_main_misses += other.l1d_main_misses;
        self.l1d_pthread_misses += other.l1d_pthread_misses;
        self.useful_prefetches += other.useful_prefetches;
        self.late_prefetches += other.late_prefetches;
        self.episode_cycles.merge(&other.episode_cycles);
        self.episode_extractions.merge(&other.episode_extractions);
        self.cycle_account.merge(&other.cycle_account);
        for p in &other.dload_profiles {
            match self
                .dload_profiles
                .binary_search_by_key(&p.dload_pc, |d| d.dload_pc)
            {
                Ok(i) => {
                    let d = &mut self.dload_profiles[i];
                    d.demand_misses += p.demand_misses;
                    d.episodes_triggered += p.episodes_triggered;
                    d.episodes_completed += p.episodes_completed;
                    d.episodes_aborted += p.episodes_aborted;
                    d.pthread_loads += p.pthread_loads;
                    d.timely_prefetches += p.timely_prefetches;
                    d.late_prefetches += p.late_prefetches;
                    d.useless_prefetches += p.useless_prefetches;
                }
                Err(i) => self.dload_profiles.insert(i, p.clone()),
            }
        }
        self.windows.extend(other.windows.iter().cloned());
        match (&mut self.bpred_detail, &other.bpred_detail) {
            (Some(mine), Some(theirs)) => mine.merge(theirs),
            (None, Some(theirs)) => self.bpred_detail = Some(theirs.clone()),
            _ => {}
        }
    }

    /// Fold `weight` copies of another run's counters into this one —
    /// exactly equivalent to calling [`CoreStats::merge`] with `other`
    /// `weight` times, but in O(1) integer arithmetic, so the result is
    /// bit-exact regardless of how the work was scheduled. This is the
    /// SimPoint reconstitution step: one representative interval's
    /// statistics stand in for every interval of its phase, so the
    /// whole-program aggregate is the phase-count-weighted sum of the
    /// representatives.
    ///
    /// Every counter scales linearly (including both histograms' value
    /// distributions and the per-d-load profiles), so all structural
    /// invariants checked by [`CoreStats::check_invariants`] — exact-slot
    /// CPI accounting over the scaled cycles, the prefetch partition, the
    /// committed breakdown — are preserved. The one non-linear statistic
    /// is the histogram `max`, an order statistic that is the same for 1
    /// copy or `weight` copies.
    ///
    /// Windowed telemetry does *not* scale: repeating a window `weight`
    /// times would need `weight` copies with shifted `start_cycle`s to
    /// keep the window partition exact, which is precisely the detail a
    /// blended estimate cannot reconstruct. Callers must not mix windows
    /// with weighted merging (the campaign engine rejects
    /// `--simpoint --window` up front); a weighted merge of windowed
    /// stats panics in debug builds.
    pub fn merge_scaled(&mut self, other: &CoreStats, weight: u64) {
        if weight == 1 {
            self.merge(other);
            return;
        }
        debug_assert!(
            other.windows.is_empty() || weight == 0,
            "windowed telemetry cannot be weight-blended"
        );
        if weight == 0 {
            return;
        }
        self.cycles += other.cycles * weight;
        self.committed += other.committed * weight;
        self.committed_loads += other.committed_loads * weight;
        self.committed_stores += other.committed_stores * weight;
        self.committed_branches += other.committed_branches * weight;
        self.fetched += other.fetched * weight;
        self.squashed += other.squashed * weight;
        self.recoveries += other.recoveries * weight;
        self.triggers_accepted += other.triggers_accepted * weight;
        self.triggers_ignored_busy += other.triggers_ignored_busy * weight;
        self.triggers_rejected_occupancy += other.triggers_rejected_occupancy * weight;
        self.preexec_aborted_flush += other.preexec_aborted_flush * weight;
        self.preexec_retargets += other.preexec_retargets * weight;
        self.preexec_aborted_missed += other.preexec_aborted_missed * weight;
        self.preexec_completed += other.preexec_completed * weight;
        self.pthread_insts += other.pthread_insts * weight;
        self.pthread_loads += other.pthread_loads * weight;
        self.missed_extractions += other.missed_extractions * weight;
        self.livein_copy_cycles += other.livein_copy_cycles * weight;
        self.pthread_faults += other.pthread_faults * weight;
        self.bpred.cond_branches += other.bpred.cond_branches * weight;
        self.bpred.cond_correct += other.bpred.cond_correct * weight;
        self.bpred.indirect += other.bpred.indirect * weight;
        self.bpred.indirect_correct += other.bpred.indirect_correct * weight;
        for (mine, theirs) in [(&mut self.l1d, &other.l1d), (&mut self.l2, &other.l2)] {
            mine.reads += theirs.reads * weight;
            mine.writes += theirs.writes * weight;
            mine.read_misses += theirs.read_misses * weight;
            mine.write_misses += theirs.write_misses * weight;
            mine.writebacks += theirs.writebacks * weight;
        }
        self.l1d_main_misses += other.l1d_main_misses * weight;
        self.l1d_pthread_misses += other.l1d_pthread_misses * weight;
        self.useful_prefetches += other.useful_prefetches * weight;
        self.late_prefetches += other.late_prefetches * weight;
        self.episode_cycles
            .merge_scaled(&other.episode_cycles, weight);
        self.episode_extractions
            .merge_scaled(&other.episode_extractions, weight);
        self.cycle_account
            .merge_scaled(&other.cycle_account, weight);
        for p in &other.dload_profiles {
            match self
                .dload_profiles
                .binary_search_by_key(&p.dload_pc, |d| d.dload_pc)
            {
                Ok(i) => {
                    let d = &mut self.dload_profiles[i];
                    d.demand_misses += p.demand_misses * weight;
                    d.episodes_triggered += p.episodes_triggered * weight;
                    d.episodes_completed += p.episodes_completed * weight;
                    d.episodes_aborted += p.episodes_aborted * weight;
                    d.pthread_loads += p.pthread_loads * weight;
                    d.timely_prefetches += p.timely_prefetches * weight;
                    d.late_prefetches += p.late_prefetches * weight;
                    d.useless_prefetches += p.useless_prefetches * weight;
                }
                Err(i) => {
                    let mut scaled = p.clone();
                    scaled.demand_misses *= weight;
                    scaled.episodes_triggered *= weight;
                    scaled.episodes_completed *= weight;
                    scaled.episodes_aborted *= weight;
                    scaled.pthread_loads *= weight;
                    scaled.timely_prefetches *= weight;
                    scaled.late_prefetches *= weight;
                    scaled.useless_prefetches *= weight;
                    self.dload_profiles.insert(i, scaled);
                }
            }
        }
        if let Some(theirs) = &other.bpred_detail {
            let mut scaled = theirs.clone();
            for (_, v) in &mut scaled.counters {
                *v *= weight;
            }
            match &mut self.bpred_detail {
                Some(m) => m.merge(&scaled),
                None => self.bpred_detail = Some(scaled),
            }
        }
    }
}

/// How a run ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum RunExit {
    /// The program's `halt` committed.
    Halted,
    /// The cycle budget was exhausted first.
    CycleBudget,
    /// The committed-instruction budget was exhausted first.
    InstBudget,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipc_and_ipb() {
        let s = CoreStats {
            cycles: 100,
            committed: 250,
            committed_branches: 50,
            ..Default::default()
        };
        assert_eq!(s.ipc(), 2.5);
        assert_eq!(s.ipb(), 5.0);
    }

    #[test]
    fn zero_cycle_ipc_is_zero() {
        assert_eq!(CoreStats::default().ipc(), 0.0);
    }

    #[test]
    fn cycle_account_charges_and_sums() {
        let mut a = CycleAccount {
            useful_slots: 10,
            ..Default::default()
        };
        a.charge(StallCause::DloadMiss, 7);
        a.charge(StallCause::FrontendOther, 3);
        a.charge(StallCause::DloadMiss, 2);
        a.ruu_full_cycles = 99; // auxiliary: must not enter the sum
        assert_eq!(a.dload_miss, 9);
        assert_eq!(a.lost_slots(), 12);
        assert_eq!(a.total_slots(), 22);
        let total: u64 = a.causes().iter().map(|(_, n)| n).sum();
        assert_eq!(total, a.lost_slots(), "causes() must cover every cause");
    }

    #[test]
    fn dload_profile_accuracy() {
        let p = DloadProfile {
            pthread_loads: 10,
            timely_prefetches: 6,
            late_prefetches: 2,
            useless_prefetches: 2,
            ..Default::default()
        };
        assert!((p.accuracy() - 0.8).abs() < 1e-12);
        assert_eq!(DloadProfile::default().accuracy(), 0.0);
    }

    #[test]
    fn merge_sums_counters_and_keeps_slot_invariant() {
        let width = 8u64;
        let mut a = CoreStats {
            cycles: 10,
            committed: 40,
            l1d_main_misses: 3,
            ..Default::default()
        };
        a.cycle_account.useful_slots = 40;
        a.cycle_account.dload_miss = 40; // 40 + 40 = 10 * 8
        a.dload_profiles = vec![DloadProfile {
            dload_pc: 5,
            demand_misses: 2,
            ..Default::default()
        }];
        a.episode_cycles.record(16);
        let mut b = CoreStats {
            cycles: 5,
            committed: 12,
            l1d_main_misses: 1,
            ..Default::default()
        };
        b.cycle_account.useful_slots = 12;
        b.cycle_account.frontend_other = 28; // 12 + 28 = 5 * 8
        b.dload_profiles = vec![
            DloadProfile {
                dload_pc: 3,
                demand_misses: 1,
                ..Default::default()
            },
            DloadProfile {
                dload_pc: 5,
                pthread_loads: 4,
                ..Default::default()
            },
        ];
        a.merge(&b);
        assert_eq!(a.cycles, 15);
        assert_eq!(a.committed, 52);
        assert_eq!(a.l1d_main_misses, 4);
        assert_eq!(
            a.cycle_account.total_slots(),
            a.cycles * width,
            "exact-slot invariant survives merging"
        );
        assert_eq!(a.episode_cycles.count(), 1);
        let pcs: Vec<u32> = a.dload_profiles.iter().map(|d| d.dload_pc).collect();
        assert_eq!(pcs, vec![3, 5], "profiles merged by PC, sorted");
        let d5 = &a.dload_profiles[1];
        assert_eq!(d5.demand_misses, 2);
        assert_eq!(d5.pthread_loads, 4);
    }

    #[test]
    fn merge_scaled_matches_repeated_merges_exactly() {
        let width = 8u64;
        let mut interval = CoreStats {
            cycles: 10,
            committed: 40,
            committed_loads: 9,
            committed_stores: 4,
            committed_branches: 6,
            l1d_main_misses: 3,
            pthread_loads: 4,
            useful_prefetches: 1,
            late_prefetches: 1,
            ..Default::default()
        };
        interval.cycle_account.useful_slots = 40;
        interval.cycle_account.dload_miss = 40; // 40 + 40 = 10 * 8
        interval.bpred.cond_branches = 6;
        interval.bpred.cond_correct = 5;
        interval.l1d.reads = 9;
        interval.l1d.read_misses = 3;
        interval.dload_profiles = vec![DloadProfile {
            dload_pc: 5,
            demand_misses: 2,
            pthread_loads: 4,
            timely_prefetches: 1,
            late_prefetches: 1,
            useless_prefetches: 2,
            ..Default::default()
        }];
        interval.episode_cycles.record(16);
        interval.episode_extractions.record(3);
        interval.bpred_detail = Some(spear_bpred::PredictorDetail {
            kind: "tage".to_string(),
            counters: vec![("alloc".to_string(), 7)],
        });
        interval.check_invariants(width as usize).unwrap();

        let mut scaled = CoreStats::default();
        scaled.merge_scaled(&interval, 5);
        let mut repeated = CoreStats::default();
        for _ in 0..5 {
            repeated.merge(&interval);
        }
        assert_eq!(scaled, repeated, "scale-then-sum == sum of 5 merges");
        scaled
            .check_invariants(width as usize)
            .expect("exact-slot invariant survives weighting");

        // Weight 0 is a no-op, weight 1 a plain merge.
        let before = scaled.clone();
        scaled.merge_scaled(&interval, 0);
        assert_eq!(scaled, before);
        let mut one = CoreStats::default();
        one.merge_scaled(&interval, 1);
        let mut plain = CoreStats::default();
        plain.merge(&interval);
        assert_eq!(one, plain);
    }

    #[test]
    fn stats_json_round_trip() {
        let s = CoreStats {
            cycles: 123,
            committed: 456,
            cycle_account: CycleAccount {
                useful_slots: 456,
                dload_miss: 100,
                ..Default::default()
            },
            dload_profiles: vec![DloadProfile {
                dload_pc: 7,
                demand_misses: 3,
                pthread_loads: 2,
                timely_prefetches: 1,
                useless_prefetches: 1,
                ..Default::default()
            }],
            ..Default::default()
        };
        let json = serde::json::to_string(&s);
        let back: CoreStats = serde::json::from_str(&json).expect("round trip");
        assert_eq!(s, back);
    }

    fn window(index: u64, start_cycle: u64, cycles: u64, committed: u64, width: u64) -> WindowStat {
        WindowStat {
            index,
            start_cycle,
            cycles,
            committed,
            cycle_account: CycleAccount {
                useful_slots: committed,
                dload_miss: cycles * width - committed,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    #[test]
    fn windows_are_omitted_from_json_when_empty() {
        let s = CoreStats {
            cycles: 7,
            ..Default::default()
        };
        let json = serde::json::to_string(&s);
        assert!(
            !json.contains("windows"),
            "empty windows must not appear in the envelope: {json}"
        );
        let back: CoreStats = serde::json::from_str(&json).expect("pre-obs envelope parses");
        assert_eq!(s, back, "absent windows deserialize as empty");
    }

    #[test]
    fn windows_round_trip_when_present() {
        let s = CoreStats {
            cycles: 20,
            committed: 30,
            windows: vec![window(0, 0, 10, 14, 8), window(1, 10, 10, 16, 8)],
            ..Default::default()
        };
        let json = serde::json::to_string(&s);
        assert!(json.contains("\"windows\""), "{json}");
        let back: CoreStats = serde::json::from_str(&json).expect("round trip");
        assert_eq!(s, back);
        assert_eq!(back.windows.len(), 2);
        assert!((back.windows[1].ipc() - 1.6).abs() < 1e-12);
    }

    #[test]
    fn merge_concatenates_windows_exactly() {
        let width = 8u64;
        let mut a = CoreStats {
            cycles: 10,
            committed: 14,
            windows: vec![window(0, 0, 10, 14, width)],
            ..Default::default()
        };
        a.cycle_account.useful_slots = 14;
        a.cycle_account.dload_miss = 10 * width - 14;
        let mut b = CoreStats {
            cycles: 15,
            committed: 21,
            windows: vec![window(0, 0, 10, 13, width), window(1, 10, 5, 8, width)],
            ..Default::default()
        };
        b.cycle_account.useful_slots = 21;
        b.cycle_account.frontend_other = 15 * width - 21;
        a.merge(&b);
        assert_eq!(a.windows.len(), 3, "windows concatenate in order");
        assert_eq!(
            a.windows.iter().map(|w| w.committed).sum::<u64>(),
            a.committed,
            "per-window committed counts sum to the merged total"
        );
        assert_eq!(a.windows.iter().map(|w| w.cycles).sum::<u64>(), a.cycles);
        a.check_invariants(width as usize)
            .expect("window partition invariant survives merging");
    }

    #[test]
    fn window_invariant_catches_a_broken_partition() {
        let width = 8usize;
        let mut s = CoreStats {
            cycles: 10,
            committed: 14,
            windows: vec![window(0, 0, 10, 13, width as u64)], // 13 != 14
            ..Default::default()
        };
        s.cycle_account.useful_slots = 14;
        s.cycle_account.dload_miss = 10 * width as u64 - 14;
        // Patch the window's slot account so only the committed sum is off.
        s.windows[0].cycle_account.useful_slots = 13;
        s.windows[0].cycle_account.dload_miss = 10 * width as u64 - 13;
        let err = s.check_invariants(width).unwrap_err();
        assert!(err.contains("window partition"), "{err}");
    }

    #[test]
    fn window_top_stall_cause_and_rates() {
        let mut w = window(0, 0, 1000, 800, 8);
        w.l1d_misses = 40;
        w.ifq_occupancy_sum = 16_000;
        assert_eq!(w.top_stall_cause().0, "d-load miss");
        assert!((w.l1d_mpki() - 50.0).abs() < 1e-12);
        assert!((w.mean_ifq_occupancy() - 16.0).abs() < 1e-12);
    }

    #[test]
    fn run_exit_serializes_as_string() {
        let v = serde::json::to_string(&RunExit::CycleBudget);
        assert_eq!(v, "\"CycleBudget\"");
        let back: RunExit = serde::json::from_str(&v).unwrap();
        assert_eq!(back, RunExit::CycleBudget);
    }
}
