//! The RUU entry store: a generational slab with intrusive consumer
//! lists.
//!
//! The scheduler used to keep in-flight entries in a
//! `HashMap<u64, RuuEntry>` plus a parallel `HashMap<u64, Vec<u64>>` of
//! producer→consumer wakeup edges. Both maps sit on the per-cycle hot
//! path (dispatch inserts, writeback scans and wakes, issue and commit
//! look up), so every access paid a SipHash probe and the wakeup map
//! churned allocations. [`Ruu`] replaces them with a slab:
//!
//! * entries live in `Vec<Option<RuuEntry>>` slots recycled through a
//!   free list, so lookups are one bounds-checked index;
//! * a [`SeqId`] names an entry by `(seq, slot)` — the `seq` doubles as
//!   a generation tag, so a stale id (entry squashed or retired, slot
//!   reused) misses exactly like a `HashMap` lookup of a removed key;
//! * consumer lists are intrusive (one recycled `Vec` per slot, cleared
//!   on remove but never dropped), so steady-state wakeup allocates
//!   nothing.
//!
//! [`SeqId`] orders by `seq` first, so ordered containers of ids
//! (`BTreeSet`, sorted `Vec`s) iterate in the exact sequence order the
//! old `u64`-keyed code produced — cycle behavior is bit-for-bit
//! unchanged.

use crate::pipeline::RuuEntry;

/// A slab handle for one in-flight RUU entry: the globally unique
/// sequence number plus the slot it occupies. Ordering and equality
/// follow `seq` (slot only tie-breaks, and seqs are unique), so
/// replacing a `u64` sequence key with a `SeqId` preserves every
/// ordering the scheduler relies on.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SeqId {
    /// Globally unique, monotonically increasing sequence number.
    pub seq: u64,
    /// Slot index in the slab (generation-checked on every access).
    pub slot: u32,
}

impl std::fmt::Display for SeqId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "#{}", self.seq)
    }
}

/// The slab of in-flight RUU entries with per-entry consumer lists.
#[derive(Debug, Default)]
pub struct Ruu {
    /// Entry storage; `None` slots are on the free list.
    slots: Vec<Option<RuuEntry>>,
    /// Per-slot wakeup edges (consumers of the occupying entry).
    /// Cleared when the slot is freed; capacity is recycled.
    consumers: Vec<Vec<SeqId>>,
    /// Free slot indices (LIFO keeps hot slots hot).
    free: Vec<u32>,
    /// Live entry count.
    len: usize,
}

impl Ruu {
    /// An empty slab.
    pub fn new() -> Ruu {
        Ruu::default()
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no entries are in flight.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Insert an entry, returning its handle. The entry's `seq` is the
    /// generation tag; callers must keep seqs globally unique.
    pub fn insert(&mut self, entry: RuuEntry) -> SeqId {
        let seq = entry.seq;
        let slot = match self.free.pop() {
            Some(s) => {
                debug_assert!(self.slots[s as usize].is_none());
                self.slots[s as usize] = Some(entry);
                s
            }
            None => {
                let s = self.slots.len() as u32;
                self.slots.push(Some(entry));
                self.consumers.push(Vec::new());
                s
            }
        };
        self.len += 1;
        SeqId { seq, slot }
    }

    /// The entry named by `id`, if still in flight. A stale id (removed
    /// entry, even with the slot since reused) returns `None`.
    #[inline]
    pub fn get(&self, id: SeqId) -> Option<&RuuEntry> {
        self.slots[id.slot as usize]
            .as_ref()
            .filter(|e| e.seq == id.seq)
    }

    /// Mutable [`Ruu::get`].
    #[inline]
    pub fn get_mut(&mut self, id: SeqId) -> Option<&mut RuuEntry> {
        self.slots[id.slot as usize]
            .as_mut()
            .filter(|e| e.seq == id.seq)
    }

    /// True while the entry named by `id` is in flight.
    pub fn contains(&self, id: SeqId) -> bool {
        self.get(id).is_some()
    }

    /// Remove and return the entry named by `id`, clearing its consumer
    /// list (capacity kept) and recycling the slot.
    pub fn remove(&mut self, id: SeqId) -> Option<RuuEntry> {
        let slot = id.slot as usize;
        if self.slots[slot].as_ref().is_none_or(|e| e.seq != id.seq) {
            return None;
        }
        let e = self.slots[slot].take();
        self.consumers[slot].clear();
        self.free.push(id.slot);
        self.len -= 1;
        e
    }

    /// Record a wakeup edge: when `producer` completes, `consumer`'s
    /// pending count drops. No-op if the producer is no longer in
    /// flight (matches a map insert under a removed key being
    /// unobservable: its entry would be removed with the producer).
    pub fn add_consumer(&mut self, producer: SeqId, consumer: SeqId) {
        if self.contains(producer) {
            self.consumers[producer.slot as usize].push(consumer);
        }
    }

    /// Detach `id`'s consumer list so the caller can walk it while
    /// mutating other entries. Pair with [`Ruu::put_consumers`].
    pub fn take_consumers(&mut self, id: SeqId) -> Vec<SeqId> {
        debug_assert!(self.contains(id));
        std::mem::take(&mut self.consumers[id.slot as usize])
    }

    /// Re-attach a consumer list detached by [`Ruu::take_consumers`],
    /// recycling its capacity.
    pub fn put_consumers(&mut self, id: SeqId, list: Vec<SeqId>) {
        debug_assert!(self.consumers[id.slot as usize].is_empty());
        self.consumers[id.slot as usize] = list;
    }

    /// Iterate the live entries (slot order, not sequence order).
    pub fn iter(&self) -> impl Iterator<Item = (SeqId, &RuuEntry)> {
        self.slots.iter().enumerate().filter_map(|(i, s)| {
            s.as_ref().map(|e| {
                (
                    SeqId {
                        seq: e.seq,
                        slot: i as u32,
                    },
                    e,
                )
            })
        })
    }

    /// Mutable [`Ruu::iter`].
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (SeqId, &mut RuuEntry)> {
        self.slots.iter_mut().enumerate().filter_map(|(i, s)| {
            s.as_mut().map(|e| {
                let id = SeqId {
                    seq: e.seq,
                    slot: i as u32,
                };
                (id, e)
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctx::MAIN_CTX;
    use crate::pipeline::EState;
    use spear_isa::reg::{R0, R1};
    use spear_isa::{Inst, Opcode};

    fn entry(seq: u64) -> RuuEntry {
        RuuEntry {
            seq,
            ctx: MAIN_CTX,
            pc: 0,
            inst: Inst::new(Opcode::Addi, R1, R0, R0, 1),
            state: EState::Ready,
            pending: 0,
            complete_at: 0,
            eff_addr: None,
            wrong_path: false,
            is_halt: false,
            is_trigger_dload: false,
            dst_val: None,
            dispatch_cycle: 0,
            mem_missed: false,
            dload_owner: None,
            fetch_cycle: 0,
            issue_cycle: 0,
            episode: 0,
        }
    }

    #[test]
    fn stale_ids_miss_after_slot_reuse() {
        let mut r = Ruu::new();
        let a = r.insert(entry(1));
        assert!(r.contains(a));
        r.remove(a).unwrap();
        let b = r.insert(entry(2));
        assert_eq!(b.slot, a.slot, "slot recycled");
        assert!(!r.contains(a), "old generation invisible");
        assert!(r.contains(b));
        assert!(r.remove(a).is_none(), "stale remove is a no-op");
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn seq_id_orders_by_sequence_not_slot() {
        let mut r = Ruu::new();
        let a = r.insert(entry(5));
        r.remove(a);
        let b = r.insert(entry(9)); // reuses slot 0
        let c = r.insert(entry(7)); // fresh slot 1
        assert!(c < b, "seq 7 sorts before seq 9 despite a larger slot");
        let mut ids = [b, c];
        ids.sort_unstable();
        assert_eq!(ids.iter().map(|i| i.seq).collect::<Vec<_>>(), [7, 9]);
    }

    #[test]
    fn consumer_lists_follow_the_entry_not_the_slot() {
        let mut r = Ruu::new();
        let p = r.insert(entry(1));
        let c1 = r.insert(entry(2));
        r.add_consumer(p, c1);
        let took = r.take_consumers(p);
        assert_eq!(took, [c1]);
        r.put_consumers(p, took);
        // Removing the producer clears its edges; a new occupant of the
        // slot starts with an empty list.
        r.remove(p);
        let q = r.insert(entry(3));
        assert_eq!(q.slot, p.slot);
        assert!(r.take_consumers(q).is_empty());
        // Edges under a dead producer are dropped, like a map insert
        // under a key that is about to be removed with the producer.
        r.add_consumer(p, c1);
        assert!(r.take_consumers(q).is_empty());
    }
}
