//! The shared pipeline state the stage modules operate on.
//!
//! [`Pipeline`] owns everything the machine's stages touch: the front
//! end (predictor, IFQ, fetch cursor), the functional state (memory
//! image, commit-order registers), the backend (RUU entries, the
//! per-context [`HwContext`] vector, functional-unit pools, the cache
//! hierarchy), and the inter-stage latches. The stage modules in
//! [`crate::stage`] are free functions over this struct; front-end
//! extensions ([`crate::frontend::FrontEndExt`]) receive `&mut Pipeline`
//! at their hook points.

use crate::config::CoreConfig;
use crate::ctx::{CtxId, HwContext, MAIN_CTX};
use crate::fu::FuPool;
use crate::ifq::Ifq;
use crate::ruu::Ruu;
use crate::source::{ExecSource, ProgramSource};
use crate::stage::{IssueLatch, RecoveryPort};
use crate::stats::CoreStats;
use crate::trace::{Event, Trace};
use spear_bpred::Predictor;
use spear_exec::{Memory, RegFile};
use spear_isa::{Inst, Program};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Scheduler state of an RUU entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EState {
    /// Waiting on producers.
    Waiting,
    /// All operands available; eligible for issue.
    Ready,
    /// Issued; completes at `complete_at`.
    Executing,
    /// Completed; awaiting in-order retirement.
    Done,
}

/// One RUU (reorder-buffer / scheduler) entry.
#[derive(Clone, Debug)]
pub struct RuuEntry {
    /// Globally unique, monotonically increasing sequence number.
    pub seq: u64,
    /// The hardware context this entry belongs to.
    pub ctx: CtxId,
    /// Instruction PC.
    pub pc: u32,
    /// The instruction word.
    pub inst: Inst,
    /// Scheduler state.
    pub state: EState,
    /// Producers still outstanding.
    pub pending: u32,
    /// Completion cycle (valid while `Executing`).
    pub complete_at: u64,
    /// Effective address of a memory op (known at dispatch on the true
    /// path — oracle disambiguation).
    pub eff_addr: Option<u64>,
    /// Fetched past an unresolved mispredicted branch.
    pub wrong_path: bool,
    /// The program's halt instruction.
    pub is_halt: bool,
    /// P-thread entry that terminates the pre-execution episode.
    pub is_trigger_dload: bool,
    /// Architectural result, applied to `commit_regs` at commit.
    pub dst_val: Option<(spear_isa::Reg, u64)>,
    /// Cycle the entry was dispatched into the RUU (cycle accounting:
    /// distinguishes "never had an issue opportunity" from contention).
    pub dispatch_cycle: u64,
    /// Set at issue if this memory operation's access went past the L1
    /// (or merged into an in-flight fill) — the commit-head signal for
    /// the d-load-miss CPI-stack bucket.
    pub mem_missed: bool,
    /// For speculative-context entries: the static d-load PC of the
    /// episode that extracted it, attributing its prefetches in the
    /// per-d-load effectiveness profiles.
    pub dload_owner: Option<u32>,
    /// Cycle the instruction entered the IFQ (lifecycle stamp; for
    /// p-thread entries, the cycle the copied instruction was originally
    /// fetched).
    pub fetch_cycle: u64,
    /// Cycle the entry issued to a functional unit (lifecycle stamp;
    /// 0 while unissued).
    pub issue_cycle: u64,
    /// SPEAR episode ordinal that owns this entry (1-based; 0 for
    /// main-context entries outside any episode).
    pub episode: u32,
}

/// The fetch stage's cursor.
#[derive(Clone, Copy, Debug)]
pub struct FetchState {
    /// Next PC to fetch.
    pub pc: u32,
    /// Fetch stalls until this cycle (I-cache miss repair).
    pub ready_at: u64,
    /// Fetch stopped at the program's halt.
    pub halted: bool,
    /// Last I-cache block charged (one access per block transition).
    pub last_block: Option<u64>,
}

/// All machine state shared between the pipeline stages.
pub struct Pipeline<'p> {
    /// Machine configuration.
    pub cfg: CoreConfig,
    /// The instruction supply: fetch-image lookup plus the
    /// committed-path oracle (see [`crate::source`]).
    pub source: Box<dyn ExecSource + 'p>,

    // ---- front end ----
    /// Branch predictor.
    pub predictor: Predictor,
    /// Instruction fetch queue.
    pub ifq: Ifq,
    /// Fetch cursor.
    pub fetch: FetchState,

    // ---- functional state ----
    /// Commit-order register state (live-in source; final arch state).
    pub commit_regs: RegFile,
    /// Shared functional memory image (written at dispatch).
    pub mem: Memory,

    // ---- backend ----
    /// All in-flight RUU entries (every context), in a generational
    /// slab with intrusive per-entry consumer lists (wakeup edges).
    pub ruu: Ruu,
    /// The hardware contexts; index 0 is the main program.
    pub ctxs: Vec<HwContext>,
    /// Functional-unit pools. Shared-FU machines have one pool; `.sf`
    /// machines give every context its own (see `ctx_pool`).
    pub pools: Vec<FuPool>,
    /// Context index → pool index.
    pub ctx_pool: Vec<usize>,
    /// The cache hierarchy.
    pub hier: spear_mem::Hierarchy,
    /// Completion calendar: `(complete_at, id)` pushed at issue, popped
    /// by writeback once due. Squashed entries leave stale ids behind;
    /// the slab's generation check filters them at pop time, so
    /// writeback never scans the whole RUU.
    pub exec_done: BinaryHeap<Reverse<(u64, crate::ruu::SeqId)>>,

    // ---- latches / control ----
    /// Issue → commit-classification latch (previous cycle's issues).
    pub issue_latch: IssueLatch,
    /// The single pending branch recovery.
    pub recovery: RecoveryPort,
    /// An unresolved mispredicted branch is in flight; dispatch tags
    /// younger main-context entries wrong-path.
    pub wrongpath: bool,
    /// The halt instruction has dispatched; everything younger is
    /// wrong-path.
    pub halt_dispatched: bool,
    /// Set by a misprediction flush, cleared when dispatch next inserts a
    /// main-context instruction: the window where an empty RUU is charged
    /// to the post-flush refill rather than generic front-end causes.
    pub post_flush_refill: bool,
    /// Current cycle.
    pub cycle: u64,
    /// Next sequence number (shared by fetch and both dispatch paths —
    /// only uniqueness and monotonicity matter).
    pub next_seq: u64,
    /// Cycle of the most recent main-context commit (deadlock watchdog).
    pub last_commit_cycle: u64,
    /// The program's halt has committed.
    pub halted: bool,

    /// Counters.
    pub stats: CoreStats,
    /// Optional episode trace.
    pub trace: Option<Trace>,
    /// Optional observability state (lifecycle records, windowed
    /// telemetry). Boxed so the disabled case costs one pointer and one
    /// branch per site.
    pub obs: Option<Box<crate::obs::Obs>>,
}

impl<'p> Pipeline<'p> {
    /// Fresh machine state for `program` under `cfg`, supplied by the
    /// execute-at-dispatch [`ProgramSource`] (today's default).
    pub fn new(program: &'p Program, cfg: CoreConfig) -> Pipeline<'p> {
        Pipeline::with_source(program, Box::new(ProgramSource::new(program)), cfg)
    }

    /// Fresh machine state for `program`'s image and initial data,
    /// supplied by an arbitrary [`ExecSource`]. `program` provides the
    /// entry PC and data image only; instructions and the committed-path
    /// oracle come from `source`.
    pub fn with_source(
        program: &'p Program,
        source: Box<dyn ExecSource + 'p>,
        cfg: CoreConfig,
    ) -> Pipeline<'p> {
        assert!(cfg.num_contexts >= 1, "a machine needs a main context");
        let n = cfg.num_contexts;
        let (pools, ctx_pool) = if cfg.separate_fu {
            (
                (0..n).map(|_| FuPool::new(&cfg)).collect(),
                (0..n).collect(),
            )
        } else {
            (vec![FuPool::new(&cfg)], vec![0; n])
        };
        Pipeline {
            predictor: Predictor::new(cfg.bpred),
            ifq: Ifq::new(cfg.ifq_size),
            fetch: FetchState {
                pc: program.entry,
                ready_at: 0,
                halted: false,
                last_block: None,
            },
            commit_regs: RegFile::new(),
            mem: Memory::from_image(&program.data),
            ruu: Ruu::new(),
            ctxs: (0..n).map(|i| HwContext::new(CtxId(i))).collect(),
            pools,
            ctx_pool,
            hier: spear_mem::Hierarchy::new(cfg.hier),
            exec_done: BinaryHeap::new(),
            issue_latch: IssueLatch::default(),
            recovery: RecoveryPort::default(),
            wrongpath: false,
            halt_dispatched: false,
            post_flush_refill: false,
            cycle: 0,
            next_seq: 1,
            last_commit_cycle: 0,
            halted: false,
            stats: CoreStats::default(),
            trace: None,
            obs: None,
            source,
            cfg,
        }
    }

    /// The main context.
    pub fn main_ctx(&self) -> &HwContext {
        &self.ctxs[MAIN_CTX.0]
    }

    /// The main context, mutably.
    pub fn main_ctx_mut(&mut self) -> &mut HwContext {
        &mut self.ctxs[MAIN_CTX.0]
    }

    /// The functional-unit pool serving context `ctx`.
    pub fn pool_mut(&mut self, ctx: CtxId) -> &mut FuPool {
        &mut self.pools[self.ctx_pool[ctx.0]]
    }

    /// Reserve the next sequence number. Fetch and dispatch share the
    /// counter's namespace: fetch-sequence numbers order fetch time,
    /// dispatch re-numbers for the RUU, so only uniqueness and
    /// monotonicity matter.
    pub fn alloc_seq(&mut self) -> u64 {
        let s = self.next_seq;
        self.next_seq += 1;
        s
    }

    /// The freshest forwardable value of register `r`: the youngest
    /// *completed* in-flight main-context writer's result, falling back
    /// to the committed architectural value. If the youngest dispatched
    /// writer has completed this equals the dispatch-point value.
    pub fn freshest_value(&self, r: spear_isa::Reg) -> u64 {
        for &id in self.main_ctx().order.iter().rev() {
            let e = self.ruu.get(id).expect("order holds live entries");
            if let Some((dst, v)) = e.dst_val {
                if dst == r {
                    if e.state == EState::Done {
                        return v;
                    }
                    // Younger-but-incomplete writer: keep looking for an
                    // older completed one.
                    continue;
                }
            }
        }
        self.commit_regs.read_u64(r)
    }

    /// Record an event into the bounded trace ring (no-op without one).
    #[inline]
    pub fn trace_event(&mut self, f: impl FnOnce(u64) -> Event) {
        if let Some(t) = &mut self.trace {
            let cycle = self.cycle;
            t.record(f(cycle));
        }
    }

    /// Like [`Pipeline::trace_event`] but sink-only, for per-instruction
    /// pipeline events too frequent for the bounded ring.
    #[inline]
    pub fn stream_event(&mut self, f: impl FnOnce(u64) -> Event) {
        if let Some(t) = &mut self.trace {
            if t.has_sink() {
                let cycle = self.cycle;
                t.stream(f(cycle));
            }
        }
    }

    /// Record an instruction's end of life — retirement (`squashed ==
    /// false`) or squash — into the lifecycle log. One branch when
    /// observability is off.
    #[inline]
    pub fn obs_retire(&mut self, e: &RuuEntry, squashed: bool) {
        if let Some(o) = &mut self.obs {
            o.record_retire(e, self.cycle, squashed);
        }
    }
}
