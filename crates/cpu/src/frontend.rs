//! The pluggable front-end extension boundary.
//!
//! Everything SPEAR adds to the baseline superscalar — pre-decode
//! marking, the d-load detector, trigger/re-arm/retarget logic, the
//! episode state machine, the P-thread Extractor, episode accounting —
//! hangs off the pipeline through this trait. The stage modules call the
//! hooks at fixed points of the cycle; the baseline machine plugs in the
//! no-op [`BaselineFrontEnd`], so stage code carries no
//! `if cfg.spear.is_some()` special cases.

use crate::pipeline::{Pipeline, RuuEntry};
use crate::stage::DecodePort;
use crate::stats::DloadProfile;
use spear_mem::Hierarchy;

/// Pre-decode result for one fetched PC.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PreDecode {
    /// The p-thread indicator: the PC is in a p-thread member set.
    pub marked: bool,
    /// The PC is a delinquent load (a p-thread table trigger point).
    pub dload: bool,
}

/// A front-end extension driving speculative contexts.
///
/// Hook order within one cycle (see `Core::step_cycle`): `update` runs
/// between writeback and issue; `extract` runs between issue and
/// dispatch and returns the decode bandwidth it consumed; the `on_*`
/// hooks fire from inside the stages at the architectural events they
/// are named after.
pub trait FrontEndExt {
    /// Pre-decode tap: the indicator bits for a PC entering the IFQ.
    fn pre_decode(&self, pc: u32) -> PreDecode;

    /// Fetch pushed a delinquent load into the IFQ (`ifq_seq` is its
    /// fetch sequence number) — the PD's chance to trigger or re-arm.
    fn on_dload_fetched(&mut self, pipe: &mut Pipeline, ifq_seq: u64, pc: u32);

    /// Per-cycle state-machine update, between writeback and issue.
    fn update(&mut self, pipe: &mut Pipeline);

    /// Extraction step: dispatch instructions into speculative contexts,
    /// sharing decode bandwidth with the main thread.
    fn extract(&mut self, pipe: &mut Pipeline) -> DecodePort;

    /// Main decode consumed the IFQ entry with fetch sequence `seq`
    /// (`marked` is its indicator at consumption time).
    fn on_main_decode(&mut self, pipe: &mut Pipeline, seq: u64, marked: bool);

    /// A branch-misprediction recovery flushed the IFQ.
    fn on_flush(&mut self, pipe: &mut Pipeline);

    /// A speculative context retired `entry` from its RUU.
    fn on_ctx_retired(&mut self, pipe: &mut Pipeline, entry: &RuuEntry);

    /// End-of-run harvest of the per-d-load effectiveness profiles,
    /// sorted by static PC.
    fn harvest_profiles(&self, hier: &Hierarchy) -> Vec<DloadProfile>;

    /// Short state name for viewers ("normal", or the active phase and
    /// target context, e.g. "preexec@ctx1").
    fn mode_name(&self) -> String;
}

/// The baseline superscalar's front end: no marking, no triggers, no
/// speculative contexts. Every hook is a no-op.
pub struct BaselineFrontEnd;

impl FrontEndExt for BaselineFrontEnd {
    fn pre_decode(&self, _pc: u32) -> PreDecode {
        PreDecode::default()
    }

    fn on_dload_fetched(&mut self, _pipe: &mut Pipeline, _ifq_seq: u64, _pc: u32) {}

    fn update(&mut self, _pipe: &mut Pipeline) {}

    fn extract(&mut self, _pipe: &mut Pipeline) -> DecodePort {
        DecodePort::default()
    }

    fn on_main_decode(&mut self, _pipe: &mut Pipeline, _seq: u64, _marked: bool) {}

    fn on_flush(&mut self, _pipe: &mut Pipeline) {}

    fn on_ctx_retired(&mut self, _pipe: &mut Pipeline, _entry: &RuuEntry) {}

    fn harvest_profiles(&self, _hier: &Hierarchy) -> Vec<DloadProfile> {
        Vec::new()
    }

    fn mode_name(&self) -> String {
        "normal".to_string()
    }
}
