//! Hardware contexts.
//!
//! The paper's machine is an SMT processor whose p-thread runs on a
//! *spare hardware context* (§3): its own register file, rename table,
//! reorder buffer, and store isolation, sharing the fetch/decode/issue
//! bandwidth and the cache hierarchy with the main program. [`HwContext`]
//! is that replicated per-context state; the machine holds one per
//! configured context ([`crate::config::CoreConfig::num_contexts`],
//! 2 in every paper configuration) and every RUU entry carries the
//! [`CtxId`] it belongs to.

use crate::overlay::Overlay;
use crate::ruu::SeqId;
use spear_exec::RegFile;
use spear_isa::reg::NUM_REGS;
use std::collections::{BTreeSet, VecDeque};

/// Index of a hardware context. Context 0 is always the main
/// (architectural) program; higher contexts are speculative.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CtxId(pub usize);

/// The main program's context.
pub const MAIN_CTX: CtxId = CtxId(0);

/// The context the SPEAR front end runs p-threads on (the first spare).
pub const PTHREAD_CTX: CtxId = CtxId(1);

impl CtxId {
    /// True for the main (architectural) context.
    pub fn is_main(self) -> bool {
        self == MAIN_CTX
    }
}

impl std::fmt::Display for CtxId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ctx{}", self.0)
    }
}

/// The per-context replicated machine state.
///
/// The main context's `regs` are the *dispatch-order* register file
/// (execute-at-dispatch oracle state); commit-order state lives in the
/// pipeline's `commit_regs`. Speculative contexts additionally isolate
/// their stores in a private byte `overlay` so they can only prefetch,
/// never change semantic state.
#[derive(Clone, Debug)]
pub struct HwContext {
    /// This context's id (its index in the pipeline's context vector).
    pub id: CtxId,
    /// The context's register file.
    pub regs: RegFile,
    /// Register rename map: architectural register → youngest in-flight
    /// producer.
    pub rename: [Option<SeqId>; NUM_REGS],
    /// This context's `Ready` RUU entries (ordered by sequence — issue
    /// scans oldest-first).
    pub ready: BTreeSet<SeqId>,
    /// In-flight stores `(id, addr, width)` for store→load dependences.
    pub stores: Vec<(SeqId, u64, usize)>,
    /// This context's RUU in dispatch order (head = oldest).
    pub order: VecDeque<SeqId>,
    /// Private store overlay (speculative contexts only; the main
    /// context writes the shared memory image at dispatch instead).
    pub overlay: Overlay,
}

impl HwContext {
    /// A fresh, empty context.
    pub fn new(id: CtxId) -> HwContext {
        HwContext {
            id,
            regs: RegFile::new(),
            rename: [None; NUM_REGS],
            ready: BTreeSet::new(),
            stores: Vec::new(),
            order: VecDeque::new(),
            overlay: Overlay::new(),
        }
    }

    /// Reset the speculative state a front end re-seeds per episode
    /// (registers, rename map, store overlay). In-flight bookkeeping
    /// (`ready`/`stores`/`order`) is left to the pipeline.
    pub fn reset_spec_state(&mut self) {
        self.regs = RegFile::new();
        self.rename = [None; NUM_REGS];
        self.overlay.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reset_clears_episode_state_only() {
        let id = SeqId { seq: 1, slot: 0 };
        let mut c = HwContext::new(PTHREAD_CTX);
        c.regs.write_u64(spear_isa::reg::R5, 7);
        c.rename[5] = Some(SeqId { seq: 42, slot: 3 });
        c.overlay.insert(0x10, 9);
        c.order.push_back(id);
        c.ready.insert(id);
        c.reset_spec_state();
        assert_eq!(c.regs.read_u64(spear_isa::reg::R5), 0);
        assert!(c.rename.iter().all(|r| r.is_none()));
        assert!(c.overlay.is_empty());
        assert_eq!(c.order.len(), 1, "in-flight bookkeeping survives");
        assert_eq!(c.ready.len(), 1);
    }

    #[test]
    fn ctx_id_display_and_main() {
        assert!(MAIN_CTX.is_main());
        assert!(!PTHREAD_CTX.is_main());
        assert_eq!(PTHREAD_CTX.to_string(), "ctx1");
    }
}
