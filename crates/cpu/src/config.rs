//! Machine configuration (Table 2 plus the SPEAR-specific knobs).

use serde::{Deserialize, Serialize};
use spear_bpred::PredictorConfig;
use spear_isa::FuClass;
use spear_mem::HierConfig;

/// Execution latencies per functional-unit class, in cycles.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpLatencies {
    /// Integer ALU ops and resolved control transfers.
    pub int_alu: u32,
    /// Integer multiply.
    pub int_mul: u32,
    /// Integer divide / remainder (non-pipelined).
    pub int_div: u32,
    /// FP add/compare/convert/move.
    pub fp_alu: u32,
    /// FP multiply.
    pub fp_mul: u32,
    /// FP divide (non-pipelined).
    pub fp_div: u32,
    /// FP square root (non-pipelined).
    pub fp_sqrt: u32,
}

impl OpLatencies {
    /// SimpleScalar `sim-outorder` defaults, which the paper's simulator
    /// inherits.
    pub fn paper() -> OpLatencies {
        OpLatencies {
            int_alu: 1,
            int_mul: 3,
            int_div: 20,
            fp_alu: 2,
            fp_mul: 4,
            fp_div: 12,
            fp_sqrt: 24,
        }
    }

    /// Latency for a (non-memory) op class. Memory latency comes from the
    /// cache hierarchy instead.
    pub fn for_class(&self, class: FuClass, is_sqrt: bool) -> u32 {
        match class {
            FuClass::IntAlu | FuClass::Ctrl => self.int_alu,
            FuClass::IntMul => self.int_mul,
            FuClass::IntDiv => self.int_div,
            FuClass::FpAlu => self.fp_alu,
            FuClass::FpMul => self.fp_mul,
            FuClass::FpDiv => {
                if is_sqrt {
                    self.fp_sqrt
                } else {
                    self.fp_div
                }
            }
            // Memory classes are costed via the hierarchy at issue time.
            FuClass::RdPort | FuClass::WrPort => 0,
            FuClass::None => 1,
        }
    }
}

/// SPEAR front-end parameters (§3.2).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SpearConfig {
    /// Minimum IFQ occupancy to accept a trigger, as a fraction of the IFQ
    /// size. The paper empirically uses one half.
    pub trigger_fraction: f64,
    /// Maximum p-thread instructions the PE may extract per cycle. The
    /// paper uses half the issue width (4 of 8).
    pub pe_bandwidth: usize,
    /// Cycles to copy one live-in register at trigger time (paper: 1).
    pub livein_cycles_per_reg: u32,
    /// P-thread RUU capacity (the paper gives the p-thread its own reorder
    /// buffer; the size is unspecified — 64 documented in DESIGN.md).
    pub pthread_ruu_size: usize,
    /// Maximum p-thread instructions issued per cycle (the paper's
    /// "not to overly penalize the main thread" principle applied to the
    /// issue stage as well as the PE; the p-thread still has priority
    /// within its share). `None` = unlimited.
    pub pthread_issue_cap: Option<usize>,
    /// Paper-literal §3.3 scheduling: give *every* ready p-thread
    /// instruction priority over the main thread. Off by default — with
    /// it on, a compute-dense slice (fft) can capture a scarce shared
    /// functional unit and halve the main thread, which is exactly the
    /// contention the Figure 7 `.sf` models relieve; the `fig7` bench
    /// prints both policies.
    pub full_priority: bool,
    /// Maximum cycles to wait for live-in producers to complete before
    /// copying. While a producer is in flight its register has no
    /// forwardable value; once the limit expires the copy falls back to
    /// the committed (architectural) value for that register — the
    /// paper's commit-state copy, stale by the in-flight window.
    pub livein_wait_limit: u32,
    /// Extension (off = paper behaviour): after a branch-misprediction IFQ
    /// flush, keep the episode alive and re-arm its trigger onto the next
    /// refetched instance of the d-load instead of aborting.
    pub rearm_after_flush: bool,
    /// Extension (off = paper behaviour): when main decode consumes the
    /// triggering d-load before the PE extracts it, re-target the episode
    /// onto a younger in-IFQ instance instead of aborting.
    pub retarget_missed: bool,
}

impl Default for SpearConfig {
    fn default() -> Self {
        SpearConfig {
            trigger_fraction: 0.5,
            pe_bandwidth: 4,
            livein_cycles_per_reg: 1,
            pthread_ruu_size: 64,
            pthread_issue_cap: Some(4),
            full_priority: false,
            livein_wait_limit: 64,
            rearm_after_flush: false,
            retarget_missed: false,
        }
    }
}

/// Full machine configuration.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CoreConfig {
    /// Instructions fetched per cycle.
    pub fetch_width: usize,
    /// Decode/dispatch bandwidth per cycle (shared with the PE during
    /// pre-execution mode).
    pub decode_width: usize,
    /// Issue width (Table 2: 8).
    pub issue_width: usize,
    /// Commit width (Table 2: 8).
    pub commit_width: usize,
    /// Instruction fetch queue entries (Table 2: 128 or 256).
    pub ifq_size: usize,
    /// Main-thread RUU (reorder buffer) entries (Table 2: 128).
    pub ruu_size: usize,
    /// Integer ALUs (Table 2: 4).
    pub int_alu: usize,
    /// Integer MUL/DIV units (Table 2: 1).
    pub int_muldiv: usize,
    /// FP ALUs (Table 2: 4).
    pub fp_alu: usize,
    /// FP MUL/DIV units (Table 2: 1).
    pub fp_muldiv: usize,
    /// Memory ports (Table 2: 2).
    pub mem_ports: usize,
    /// Op latencies.
    pub lat: OpLatencies,
    /// Branch predictor configuration (Table 2: bimodal, 2048).
    pub bpred: PredictorConfig,
    /// Memory hierarchy configuration.
    pub hier: HierConfig,
    /// SPEAR front end; `None` = baseline superscalar.
    pub spear: Option<SpearConfig>,
    /// `.sf` models: give the p-thread its own copy of the functional
    /// units and memory ports (the CMP-like configuration of Figure 7).
    /// With more than two contexts, every speculative context gets its
    /// own pool.
    pub separate_fu: bool,
    /// Hardware contexts (each a full [`crate::ctx::HwContext`]: register
    /// file, rename table, RUU order, store queue). Context 0 is the main
    /// program; context 1 runs the SPEAR p-thread. The paper's SMT
    /// machine is the 2-context configuration; extra contexts are idle
    /// spares until a front end drives them.
    pub num_contexts: usize,
}

impl CoreConfig {
    /// The baseline superscalar of the evaluation (Table 2, no SPEAR).
    pub fn baseline() -> CoreConfig {
        CoreConfig {
            fetch_width: 8,
            decode_width: 8,
            issue_width: 8,
            commit_width: 8,
            ifq_size: 128,
            ruu_size: 128,
            int_alu: 4,
            int_muldiv: 1,
            fp_alu: 4,
            fp_muldiv: 1,
            mem_ports: 2,
            lat: OpLatencies::paper(),
            bpred: PredictorConfig::paper(),
            hier: HierConfig::paper(),
            spear: None,
            separate_fu: false,
            num_contexts: 2,
        }
    }

    /// SPEAR with a given IFQ size (128 or 256 in the paper).
    pub fn spear(ifq_size: usize) -> CoreConfig {
        CoreConfig {
            ifq_size,
            spear: Some(SpearConfig::default()),
            ..CoreConfig::baseline()
        }
    }

    /// SPEAR.sf — separate functional units for the p-thread (Figure 7).
    pub fn spear_sf(ifq_size: usize) -> CoreConfig {
        CoreConfig {
            separate_fu: true,
            ..CoreConfig::spear(ifq_size)
        }
    }

    /// Human-readable name used in reports.
    pub fn model_name(&self) -> String {
        match (&self.spear, self.separate_fu) {
            (None, _) => "superscalar".to_string(),
            (Some(_), false) => format!("SPEAR-{}", self.ifq_size),
            (Some(_), true) => format!("SPEAR.sf-{}", self.ifq_size),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_names() {
        assert_eq!(CoreConfig::baseline().model_name(), "superscalar");
        assert_eq!(CoreConfig::spear(128).model_name(), "SPEAR-128");
        assert_eq!(CoreConfig::spear_sf(256).model_name(), "SPEAR.sf-256");
    }

    #[test]
    fn paper_latencies() {
        let l = OpLatencies::paper();
        assert_eq!(l.for_class(FuClass::IntAlu, false), 1);
        assert_eq!(l.for_class(FuClass::FpDiv, true), 24);
        assert_eq!(l.for_class(FuClass::FpDiv, false), 12);
    }

    #[test]
    fn paper_machines_are_two_context() {
        assert_eq!(CoreConfig::baseline().num_contexts, 2);
        assert_eq!(CoreConfig::spear(128).num_contexts, 2);
        assert_eq!(CoreConfig::spear_sf(256).num_contexts, 2);
    }

    #[test]
    fn spear_defaults_match_paper() {
        let s = SpearConfig::default();
        assert_eq!(s.trigger_fraction, 0.5);
        assert_eq!(s.pe_bandwidth, 4, "half of the 8-wide issue bandwidth");
        assert_eq!(s.livein_cycles_per_reg, 1);
    }
}
