//! Functional-unit pools.
//!
//! Table 2's execution resources: 4 integer ALUs + 1 integer MUL/DIV,
//! 4 FP ALUs + 1 FP MUL/DIV, 2 memory ports. ALUs and multipliers are
//! pipelined (a unit is occupied for one cycle per issue); divide and
//! square root are non-pipelined (the unit is occupied for the full
//! latency), matching `sim-outorder`.
//!
//! The `.sf` machine models of Figure 7 instantiate a second, dedicated
//! [`FuPool`] for the p-thread.

use crate::config::CoreConfig;
use spear_isa::FuClass;

/// Which pool a [`FuClass`] maps to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Pool {
    IntAlu,
    IntMulDiv,
    FpAlu,
    FpMulDiv,
    MemPort,
    None,
}

fn pool_of(class: FuClass) -> Pool {
    match class {
        FuClass::IntAlu | FuClass::Ctrl => Pool::IntAlu,
        FuClass::IntMul | FuClass::IntDiv => Pool::IntMulDiv,
        FuClass::FpAlu => Pool::FpAlu,
        FuClass::FpMul | FuClass::FpDiv => Pool::FpMulDiv,
        FuClass::RdPort | FuClass::WrPort => Pool::MemPort,
        FuClass::None => Pool::None,
    }
}

/// A set of functional units, each with a busy-until cycle.
#[derive(Clone, Debug)]
pub struct FuPool {
    int_alu: Vec<u64>,
    int_muldiv: Vec<u64>,
    fp_alu: Vec<u64>,
    fp_muldiv: Vec<u64>,
    mem_ports: Vec<u64>,
}

impl FuPool {
    /// Build the pool described by the configuration.
    pub fn new(cfg: &CoreConfig) -> FuPool {
        FuPool {
            int_alu: vec![0; cfg.int_alu],
            int_muldiv: vec![0; cfg.int_muldiv],
            fp_alu: vec![0; cfg.fp_alu],
            fp_muldiv: vec![0; cfg.fp_muldiv],
            mem_ports: vec![0; cfg.mem_ports],
        }
    }

    fn units(&mut self, pool: Pool) -> Option<&mut Vec<u64>> {
        match pool {
            Pool::IntAlu => Some(&mut self.int_alu),
            Pool::IntMulDiv => Some(&mut self.int_muldiv),
            Pool::FpAlu => Some(&mut self.fp_alu),
            Pool::FpMulDiv => Some(&mut self.fp_muldiv),
            Pool::MemPort => Some(&mut self.mem_ports),
            Pool::None => None,
        }
    }

    /// Try to acquire a unit of `class` at cycle `now`, occupying it for
    /// `occupy` cycles. Returns false if every unit of the class is busy.
    /// `FuClass::None` always succeeds (no resource needed).
    pub fn acquire(&mut self, class: FuClass, now: u64, occupy: u64) -> bool {
        let Some(units) = self.units(pool_of(class)) else {
            return true;
        };
        for busy_until in units.iter_mut() {
            if *busy_until <= now {
                *busy_until = now + occupy.max(1);
                return true;
            }
        }
        false
    }

    /// How many units of the class are free at `now` (for tests/stats).
    pub fn free(&mut self, class: FuClass, now: u64) -> usize {
        match self.units(pool_of(class)) {
            Some(units) => units.iter().filter(|&&b| b <= now).count(),
            None => usize::MAX,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool() -> FuPool {
        FuPool::new(&CoreConfig::baseline())
    }

    #[test]
    fn four_int_alus_then_stall() {
        let mut p = pool();
        for _ in 0..4 {
            assert!(p.acquire(FuClass::IntAlu, 10, 1));
        }
        assert!(!p.acquire(FuClass::IntAlu, 10, 1), "fifth ALU op stalls");
        assert!(p.acquire(FuClass::IntAlu, 11, 1), "freed next cycle");
    }

    #[test]
    fn ctrl_shares_int_alus() {
        let mut p = pool();
        for _ in 0..4 {
            assert!(p.acquire(FuClass::Ctrl, 0, 1));
        }
        assert!(!p.acquire(FuClass::IntAlu, 0, 1));
    }

    #[test]
    fn div_blocks_the_muldiv_unit() {
        let mut p = pool();
        assert!(p.acquire(FuClass::IntDiv, 0, 20));
        assert!(!p.acquire(FuClass::IntMul, 5, 1), "unit busy for 20 cycles");
        assert!(p.acquire(FuClass::IntMul, 20, 1));
    }

    #[test]
    fn two_memory_ports() {
        let mut p = pool();
        assert!(p.acquire(FuClass::RdPort, 0, 1));
        assert!(p.acquire(FuClass::WrPort, 0, 1));
        assert!(!p.acquire(FuClass::RdPort, 0, 1), "both ports taken");
    }

    #[test]
    fn none_class_needs_no_unit() {
        let mut p = pool();
        for _ in 0..100 {
            assert!(p.acquire(FuClass::None, 0, 1));
        }
    }

    #[test]
    fn free_counts() {
        let mut p = pool();
        assert_eq!(p.free(FuClass::FpAlu, 0), 4);
        p.acquire(FuClass::FpAlu, 0, 1);
        assert_eq!(p.free(FuClass::FpAlu, 0), 3);
    }
}
