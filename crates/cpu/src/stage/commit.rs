//! Commit: in-order retirement from the commit head, CPI-stack slot
//! accounting, and speculative-context retirement.

use crate::ctx::MAIN_CTX;
use crate::frontend::FrontEndExt;
use crate::pipeline::{EState, Pipeline};
use crate::stats::StallCause;
use crate::trace::Event;

/// Retire up to `commit_width` main-context instructions, charge every
/// unused commit slot to exactly one stall cause, then free completed
/// speculative-context entries (their "retire" consumes no commit
/// bandwidth: they write no architectural state).
pub fn run(pipe: &mut Pipeline, fe: &mut dyn FrontEndExt) {
    let width = pipe.cfg.commit_width;
    let mut budget = width;
    let mut halted_now = false;
    while budget > 0 {
        let Some(&id) = pipe.main_ctx().order.front() else {
            break;
        };
        if pipe.ruu.get(id).expect("order holds live entries").state != EState::Done {
            break;
        }
        let e = pipe.ruu.remove(id).expect("front entry exists");
        pipe.ctxs[MAIN_CTX.0].order.pop_front();
        debug_assert_eq!(e.seq, id.seq);
        debug_assert!(!e.wrong_path, "wrong-path entry reached commit");
        if let Some((r, v)) = e.dst_val {
            pipe.commit_regs.write_u64(r, v);
        }
        pipe.stats.committed += 1;
        pipe.last_commit_cycle = pipe.cycle;
        if e.inst.op.is_load() {
            pipe.stats.committed_loads += 1;
        }
        if e.inst.op.is_store() {
            pipe.stats.committed_stores += 1;
        }
        if e.inst.op.is_ctrl() {
            pipe.stats.committed_branches += 1;
        }
        budget -= 1;
        let pc = e.pc;
        pipe.stream_event(|cycle| Event::Commit {
            cycle,
            pc,
            ctx: MAIN_CTX.0,
        });
        pipe.obs_retire(&e, false);
        if e.is_halt {
            pipe.halted = true;
            halted_now = true;
            break;
        }
    }
    // CPI-stack slot accounting: every cycle has `width` commit
    // slots; the unused ones are charged to exactly one cause, so
    // `useful_slots + lost == cycles * width` holds strictly.
    let used = (width - budget) as u64;
    pipe.stats.cycle_account.useful_slots += used;
    let lost = budget as u64;
    if lost > 0 {
        let cause = if halted_now {
            // The program is over; the rest of the final cycle's
            // slots have nothing left to commit.
            StallCause::FrontendOther
        } else {
            classify_commit_stall(pipe)
        };
        pipe.stats.cycle_account.charge(cause, lost);
    }
    if halted_now {
        return;
    }
    // Speculative-context retirement.
    for i in 1..pipe.ctxs.len() {
        while let Some(&id) = pipe.ctxs[i].order.front() {
            if pipe.ruu.get(id).expect("order holds live entries").state != EState::Done {
                break;
            }
            let e = pipe.ruu.remove(id).expect("front entry exists");
            pipe.ctxs[i].order.pop_front();
            pipe.obs_retire(&e, false);
            fe.on_ctx_retired(pipe, &e);
        }
    }
}

/// Attribute this cycle's lost commit slots to one cause, judged from
/// the commit head (or the front-end state when the window is empty).
/// The head is never `Waiting`: its producers are older, hence
/// already completed.
fn classify_commit_stall(pipe: &Pipeline) -> StallCause {
    if let Some(&head) = pipe.main_ctx().order.front() {
        let e = pipe.ruu.get(head).expect("order holds live entries");
        if pipe.recovery.pending.is_some_and(|r| r.branch_seq == head) {
            // Commit is blocked on the unresolved mispredicted
            // branch itself.
            return StallCause::BranchRecovery;
        }
        match e.state {
            EState::Executing => {
                if e.mem_missed {
                    StallCause::DloadMiss
                } else {
                    StallCause::FuBusy
                }
            }
            EState::Ready => {
                // Dispatched after the most recent issue phase: the
                // head never had an issue opportunity — pipeline
                // refill, not contention.
                if e.dispatch_cycle + 1 >= pipe.cycle {
                    StallCause::FrontendOther
                } else if e.inst.op.is_mem() {
                    if pipe.issue_latch.spec_issued_mem {
                        StallCause::PthreadContention
                    } else {
                        StallCause::MemPortContention
                    }
                } else if pipe.issue_latch.spec_issued_any {
                    StallCause::PthreadContention
                } else {
                    StallCause::FuBusy
                }
            }
            // Waiting/Done heads are unreachable here (producers are
            // older; Done would have committed) — keep the stack
            // total correct regardless.
            EState::Waiting | EState::Done => StallCause::FrontendOther,
        }
    } else if pipe.post_flush_refill {
        StallCause::IfqEmptyAfterFlush
    } else if pipe.cycle <= pipe.fetch.ready_at {
        StallCause::IcacheStall
    } else {
        StallCause::FrontendOther
    }
}
