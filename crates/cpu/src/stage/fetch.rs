//! Fetch: I-cache access, branch prediction, pre-decode, IFQ fill.

use crate::frontend::FrontEndExt;
use crate::ifq::IfqEntry;
use crate::pipeline::Pipeline;
use spear_isa::{Opcode, Program};

/// Fetch up to `fetch_width` instructions into the IFQ, tagging each
/// with the front-end extension's pre-decode bits (p-thread indicator,
/// d-load detection — §3.1) and giving the extension its trigger
/// opportunity on every fetched d-load.
pub fn run(pipe: &mut Pipeline, fe: &mut dyn FrontEndExt) {
    if pipe.fetch.halted || pipe.cycle < pipe.fetch.ready_at {
        return;
    }
    let block_bytes = pipe.hier.l1i.geometry().block_bytes as u64;
    for _ in 0..pipe.cfg.fetch_width {
        if pipe.ifq.is_full() {
            break;
        }
        let pc = pipe.fetch.pc;
        let Some(inst) = pipe.source.fetch_inst(pc) else {
            // Runaway (wrong-path) PC: nothing to fetch until redirect.
            break;
        };
        // Instruction cache: charged once per block transition.
        let addr = Program::inst_addr(pc);
        let block = addr / block_bytes;
        if pipe.fetch.last_block != Some(block) {
            let acc = pipe.hier.access_inst(addr);
            pipe.fetch.last_block = Some(block);
            if acc.latency > pipe.hier.latency.l1_hit {
                // Miss: stall fetch; the line is filled, so the retry
                // hits.
                pipe.fetch.ready_at = pipe.cycle + acc.latency as u64;
                break;
            }
        }
        let pred = pipe.predictor.predict(pc, &inst);
        let seq = pipe.alloc_seq();
        pipe.stats.fetched += 1;
        let pd = fe.pre_decode(pc);
        pipe.ifq.push(IfqEntry {
            seq,
            pc,
            inst,
            pred,
            marked: pd.marked,
            is_dload: pd.dload,
            fetch_cycle: pipe.cycle,
        });
        if pd.dload {
            fe.on_dload_fetched(pipe, seq, pc);
        }
        if inst.op == Opcode::Halt {
            pipe.fetch.halted = true;
            break;
        }
        pipe.fetch.pc = pred.next_pc;
        // A predicted-taken transfer ends the fetch cycle.
        if pred.next_pc != pc + 1 {
            break;
        }
    }
}
