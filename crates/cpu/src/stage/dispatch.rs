//! Decode/rename/dispatch for the main context.

use crate::core::SimError;
use crate::ctx::MAIN_CTX;
use crate::frontend::FrontEndExt;
use crate::pipeline::{EState, Pipeline, RuuEntry};
use crate::ruu::SeqId;
use crate::stage::{DecodePort, Recovery};

/// Dispatch from the IFQ head into the main-context RUU, with whatever
/// decode bandwidth the front-end extension's extraction step left
/// (§3.2: extraction shares the decode bandwidth).
pub fn run(
    pipe: &mut Pipeline,
    fe: &mut dyn FrontEndExt,
    port: DecodePort,
) -> Result<(), SimError> {
    let mut budget = pipe.cfg.decode_width.saturating_sub(port.pe_used);
    while budget > 0 {
        if pipe.main_ctx().order.len() >= pipe.cfg.ruu_size {
            // Auxiliary counter (not part of the slot-cause sum): the
            // window blocked dispatch while work was waiting.
            if !pipe.ifq.is_empty() {
                pipe.stats.cycle_account.ruu_full_cycles += 1;
            }
            break;
        }
        let Some(front) = pipe.ifq.front() else { break };
        let front_seq = front.seq;
        let front_marked = front.marked;
        let e = pipe.ifq.pop_front().expect("front exists");
        budget -= 1;
        fe.on_main_decode(pipe, front_seq, front_marked);
        dispatch_main(pipe, e)?;
    }
    Ok(())
}

/// Rename, functionally execute (true path only — execute-at-dispatch
/// oracle timing), and insert one instruction into the main-context RUU.
fn dispatch_main(pipe: &mut Pipeline, fetched: crate::ifq::IfqEntry) -> Result<(), SimError> {
    pipe.post_flush_refill = false;
    let seq = pipe.alloc_seq();
    let wrong_path = pipe.wrongpath || pipe.halt_dispatched;
    let mut eff_addr = None;
    let mut is_halt = false;
    let mut dst_val = None;
    let mut mispredict_target = None;

    if !wrong_path {
        // The committed-path oracle: semantics under `ProgramSource`,
        // recorded records under `TraceSource` (see `crate::source`).
        let outcome = pipe.source.step_main(
            &fetched.inst,
            fetched.pc,
            &mut pipe.ctxs[MAIN_CTX.0].regs,
            &mut pipe.mem,
        )?;
        eff_addr = outcome.eff_addr;
        if pipe.source.tracks_registers() {
            if let Some(d) = fetched.inst.dst() {
                dst_val = Some((d, pipe.ctxs[MAIN_CTX.0].regs.read_u64(d)));
            }
        }
        if fetched.inst.op.is_ctrl() {
            pipe.predictor.update(
                fetched.pc,
                &fetched.inst,
                outcome.taken.unwrap_or(true),
                outcome.next_pc,
                Some(fetched.pred),
            );
            if fetched.pred.next_pc != outcome.next_pc {
                pipe.wrongpath = true;
                mispredict_target = Some(outcome.next_pc);
            }
        }
        if outcome.halted {
            is_halt = true;
            pipe.halt_dispatched = true;
        }
    }

    let mut deps: Vec<SeqId> = Vec::new();
    for src in fetched.inst.live_srcs() {
        if let Some(p) = pipe.ctxs[MAIN_CTX.0].rename[src.index()] {
            if pipe.ruu.get(p).is_some_and(|pe| pe.state != EState::Done) {
                deps.push(p);
            }
        }
    }
    if fetched.inst.op.is_load() && !wrong_path {
        if let Some(addr) = eff_addr {
            let w = fetched.inst.op.mem_width() as u64;
            for &(sid, saddr, swidth) in &pipe.ctxs[MAIN_CTX.0].stores {
                if addr < saddr + swidth as u64 && saddr < addr + w {
                    deps.push(sid);
                }
            }
        }
    }
    deps.sort_unstable();
    deps.dedup();
    let pending = deps.len() as u32;
    let state = if pending == 0 {
        EState::Ready
    } else {
        EState::Waiting
    };
    let id = pipe.ruu.insert(RuuEntry {
        seq,
        ctx: MAIN_CTX,
        pc: fetched.pc,
        inst: fetched.inst,
        state,
        pending,
        complete_at: 0,
        eff_addr,
        wrong_path,
        is_halt,
        is_trigger_dload: false,
        dst_val,
        dispatch_cycle: pipe.cycle,
        mem_missed: false,
        dload_owner: None,
        fetch_cycle: fetched.fetch_cycle,
        issue_cycle: 0,
        episode: 0,
    });
    if let Some(t) = mispredict_target {
        pipe.recovery.pending = Some(Recovery {
            branch_seq: id,
            target: t,
        });
    }
    if let Some(d) = fetched.inst.dst() {
        pipe.ctxs[MAIN_CTX.0].rename[d.index()] = Some(id);
    }
    if fetched.inst.op.is_store() && !wrong_path {
        if let Some(addr) = eff_addr {
            pipe.ctxs[MAIN_CTX.0]
                .stores
                .push((id, addr, fetched.inst.op.mem_width()));
        }
    }
    for &d in &deps {
        pipe.ruu.add_consumer(d, id);
    }
    if state == EState::Ready {
        pipe.ctxs[MAIN_CTX.0].ready.insert(id);
    }
    pipe.ctxs[MAIN_CTX.0].order.push_back(id);
    Ok(())
}
