//! Writeback: completion, dependent wakeup, and branch-misprediction
//! recovery.

use crate::ctx::MAIN_CTX;
use crate::frontend::FrontEndExt;
use crate::pipeline::{EState, Pipeline};
use crate::ruu::SeqId;
use crate::trace::Event;

/// Complete executing entries whose latency has elapsed, wake their
/// consumers (in sequence order, for determinism), release completed
/// stores from the disambiguation queues, and fire the pending branch
/// recovery once its branch has resolved.
///
/// Completion is event-driven: issue schedules every executing entry on
/// the pipeline's `exec_done` calendar, so this stage pops the due
/// entries instead of scanning the whole RUU each cycle. Squashed
/// entries leave stale calendar ids; the slab's generation check (and
/// the state check, for a recycled live slot) drops them at pop time.
pub fn run(pipe: &mut Pipeline, fe: &mut dyn FrontEndExt) {
    let now = pipe.cycle;
    let mut completed: Vec<SeqId> = Vec::new();
    while let Some(&std::cmp::Reverse((t, id))) = pipe.exec_done.peek() {
        if t > now {
            break;
        }
        pipe.exec_done.pop();
        if let Some(e) = pipe.ruu.get_mut(id) {
            if e.state == EState::Executing {
                debug_assert!(e.complete_at <= now, "calendar time matches the entry");
                e.state = EState::Done;
                completed.push(id);
            }
        }
    }
    completed.sort_unstable();
    for id in completed {
        let consumers = pipe.ruu.take_consumers(id);
        for &c in &consumers {
            if let Some(ce) = pipe.ruu.get_mut(c) {
                ce.pending = ce.pending.saturating_sub(1);
                if ce.pending == 0 && ce.state == EState::Waiting {
                    ce.state = EState::Ready;
                    let ctx = ce.ctx;
                    pipe.ctxs[ctx.0].ready.insert(c);
                }
            }
        }
        pipe.ruu.put_consumers(id, consumers);
        // Completed stores no longer gate younger loads.
        for ctx in pipe.ctxs.iter_mut() {
            ctx.stores.retain(|&(s, _, _)| s != id);
        }
    }
    // Fire the (single) pending recovery if its branch has resolved.
    if let Some(rec) = pipe.recovery.pending {
        if pipe
            .ruu
            .get(rec.branch_seq)
            .is_some_and(|e| e.state == EState::Done)
        {
            recover(pipe, fe, rec.branch_seq, rec.target);
        }
    }
}

/// Squash main-context entries younger than the mispredicted branch,
/// flush the front end, and restart fetch at the true target.
/// Speculative contexts are independent hardware contexts: their
/// in-flight instructions only prefetch, so front-end recovery does not
/// touch them (the front-end extension decides what happens to an
/// active episode via its `on_flush` hook).
pub fn recover(pipe: &mut Pipeline, fe: &mut dyn FrontEndExt, branch_seq: SeqId, target: u32) {
    pipe.stats.recoveries += 1;
    let squash: Vec<SeqId> = pipe
        .ruu
        .iter()
        .filter(|(s, e)| *s > branch_seq && e.ctx == MAIN_CTX)
        .map(|(s, _)| s)
        .collect();
    for &s in &squash {
        if let Some(e) = pipe.ruu.remove(s) {
            pipe.obs_retire(&e, true);
        }
    }
    pipe.stats.squashed += squash.len() as u64;
    let main = &mut pipe.ctxs[MAIN_CTX.0];
    // The squash set is exactly the main-context entries younger than
    // the branch, so the dispatch-order and bookkeeping queues keep the
    // `<= branch` prefix.
    main.order.retain(|s| *s <= branch_seq);
    main.ready.retain(|s| *s <= branch_seq);
    main.stores.retain(|&(s, _, _)| s <= branch_seq);
    for r in main.rename.iter_mut() {
        if r.is_some_and(|s| s > branch_seq) {
            *r = None;
        }
    }
    // Flush the front end and restart at the true target.
    pipe.ifq.flush();
    pipe.fetch.pc = target;
    pipe.fetch.ready_at = pipe.cycle + 1;
    pipe.fetch.halted = false;
    pipe.fetch.last_block = None;
    pipe.predictor.recover();
    pipe.wrongpath = false;
    pipe.recovery.pending = None;
    pipe.post_flush_refill = true;
    fe.on_flush(pipe);
    pipe.trace_event(|cycle| Event::Flush {
        cycle,
        redirect_pc: target,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CoreConfig;
    use crate::ctx::{CtxId, PTHREAD_CTX};
    use crate::frontend::BaselineFrontEnd;
    use crate::pipeline::RuuEntry;
    use spear_isa::reg::{R0, R1};
    use spear_isa::{DataImage, Inst, Opcode, Program};

    fn test_program() -> Program {
        Program {
            insts: vec![Inst::new(Opcode::Addi, R1, R0, R0, 1), Inst::halt()],
            data: DataImage::zeroed(64),
            ..Program::default()
        }
    }

    fn push_entry(pipe: &mut Pipeline, seq: u64, ctx: CtxId, state: EState) -> SeqId {
        let id = pipe.ruu.insert(RuuEntry {
            seq,
            ctx,
            pc: 0,
            inst: Inst::new(Opcode::Addi, R1, R0, R0, 1),
            state,
            pending: 0,
            complete_at: 0,
            eff_addr: None,
            wrong_path: false,
            is_halt: false,
            is_trigger_dload: false,
            dst_val: None,
            dispatch_cycle: 0,
            mem_missed: false,
            dload_owner: None,
            fetch_cycle: 0,
            issue_cycle: 0,
            episode: 0,
        });
        pipe.ctxs[ctx.0].order.push_back(id);
        if state == EState::Ready {
            pipe.ctxs[ctx.0].ready.insert(id);
        }
        id
    }

    fn seqs(order: &std::collections::VecDeque<SeqId>) -> Vec<u64> {
        order.iter().map(|s| s.seq).collect()
    }

    #[test]
    fn recover_squashes_only_younger_main_context_entries() {
        let program = test_program();
        let mut pipe = Pipeline::new(&program, CoreConfig::spear(128));
        let mut fe = BaselineFrontEnd;
        // Main context: an older entry (seq 1 = the branch), a younger
        // one (seq 4). Speculative context: younger entries (seq 3, 5)
        // that must survive the flush.
        let branch = push_entry(&mut pipe, 1, MAIN_CTX, EState::Done);
        let younger = push_entry(&mut pipe, 4, MAIN_CTX, EState::Ready);
        let spec3 = push_entry(&mut pipe, 3, PTHREAD_CTX, EState::Ready);
        let spec5 = push_entry(&mut pipe, 5, PTHREAD_CTX, EState::Waiting);
        pipe.ctxs[MAIN_CTX.0].rename[R1.index()] = Some(younger);
        pipe.ctxs[MAIN_CTX.0].stores.push((younger, 0x10, 8));
        pipe.ctxs[PTHREAD_CTX.0].stores.push((spec5, 0x20, 8));

        recover(&mut pipe, &mut fe, branch, 7);

        assert_eq!(pipe.stats.squashed, 1, "exactly the younger main entry");
        assert!(pipe.ruu.contains(branch), "the branch itself survives");
        assert!(!pipe.ruu.contains(younger), "younger main entry squashed");
        assert!(pipe.ruu.contains(spec3), "p-thread entries survive");
        assert!(pipe.ruu.contains(spec5), "p-thread entries survive");
        assert_eq!(seqs(&pipe.ctxs[MAIN_CTX.0].order), [1]);
        assert_eq!(seqs(&pipe.ctxs[PTHREAD_CTX.0].order), [3, 5]);
        assert!(pipe.ctxs[MAIN_CTX.0].ready.is_empty());
        assert!(pipe.ctxs[PTHREAD_CTX.0].ready.contains(&spec3));
        assert!(
            pipe.ctxs[MAIN_CTX.0].stores.is_empty(),
            "younger main store released"
        );
        assert_eq!(pipe.ctxs[PTHREAD_CTX.0].stores, [(spec5, 0x20, 8)]);
        assert_eq!(
            pipe.ctxs[MAIN_CTX.0].rename[R1.index()],
            None,
            "rename mappings younger than the branch are cleared"
        );
        assert_eq!(pipe.fetch.pc, 7, "fetch restarts at the true target");
        assert!(pipe.ifq.is_empty(), "the IFQ is flushed");
        assert!(pipe.post_flush_refill);
        assert_eq!(pipe.recovery.pending, None);
    }
}
