//! Issue: ready-entry selection and functional-unit / cache access.

use crate::pipeline::{EState, Pipeline};
use crate::ruu::SeqId;
use crate::stage::IssueLatch;
use spear_isa::{FuClass, Opcode};
use spear_mem::AccessKind;

/// Select ready entries for execution, up to `issue_width` per cycle.
///
/// Scheduling priority (§3.3, "the instructions from the p-thread are
/// selected for execution first") applies to the speculative contexts'
/// *memory operations* — the prefetches that are the point of
/// pre-execution — capped at their share of the issue width. Their
/// compute operations fill whatever functional-unit slots the main
/// context leaves idle, so a compute-heavy slice cannot starve the main
/// thread on a scarce unit (see DESIGN.md). Speculative contexts are
/// scanned context-major in context order, each in sequence order.
pub fn run(pipe: &mut Pipeline) {
    pipe.issue_latch = IssueLatch::default();
    let mut budget = pipe.cfg.issue_width;
    let pth_cap = pipe
        .cfg
        .spear
        .and_then(|sp| sp.pthread_issue_cap)
        .unwrap_or(usize::MAX)
        .min(budget);
    let full_priority = pipe.cfg.spear.is_some_and(|sp| sp.full_priority);
    let mut spec_used = 0;
    let spec: Vec<SeqId> = pipe
        .ctxs
        .iter()
        .skip(1)
        .flat_map(|c| c.ready.iter().copied())
        .collect();
    for &seq in &spec {
        if spec_used >= pth_cap {
            break;
        }
        let is_mem = pipe
            .ruu
            .get(seq)
            .expect("ready entry exists")
            .inst
            .op
            .is_mem();
        if !full_priority && !is_mem {
            continue;
        }
        if try_issue(pipe, seq) {
            spec_used += 1;
            budget -= 1;
            pipe.issue_latch.spec_issued_any = true;
            if is_mem {
                pipe.issue_latch.spec_issued_mem = true;
            }
        }
    }
    let main: Vec<SeqId> = pipe.main_ctx().ready.iter().copied().collect();
    for seq in main {
        if budget == 0 {
            break;
        }
        if try_issue(pipe, seq) {
            budget -= 1;
        }
    }
    for &seq in &spec {
        if budget == 0 || spec_used >= pth_cap {
            break;
        }
        if pipe
            .ruu
            .get(seq)
            .is_none_or(|e| e.inst.op.is_mem() || e.state != EState::Ready)
        {
            continue;
        }
        if try_issue(pipe, seq) {
            spec_used += 1;
            budget -= 1;
            pipe.issue_latch.spec_issued_any = true;
        }
    }
}

/// Try to issue one ready entry: acquire its functional unit and, for
/// memory ops, access the data-cache hierarchy. Returns false if the
/// unit is busy (the entry stays ready).
fn try_issue(pipe: &mut Pipeline, seq: SeqId) -> bool {
    let now = pipe.cycle;
    let e = pipe.ruu.get(seq).expect("ready entry exists");
    let ctx = e.ctx;
    let class = e.inst.op.fu_class();
    let is_sqrt = e.inst.op == Opcode::Fsqrt;
    let is_mem = e.inst.op.is_mem();
    let (eff_addr, pc, wrong_path, is_store) =
        (e.eff_addr, e.pc, e.wrong_path, e.inst.op.is_store());
    let dload_owner = e.dload_owner;
    let pool = pipe.ctx_pool[ctx.0];

    // Latency: memory ops ask the hierarchy; the rest use class
    // latencies. Wrong-path memory ops are charged an L1 hit and do
    // not disturb the caches.
    let occupy: u64;
    let latency: u64;
    if is_mem {
        occupy = 1;
        latency = if wrong_path {
            pipe.hier.latency.l1_hit as u64
        } else if let Some(eff) = eff_addr {
            let kind = if is_store {
                AccessKind::Write
            } else {
                AccessKind::Read
            };
            // The cache access happens at issue; peek the FU first so
            // a rejected issue does not touch the cache.
            if !pipe.pools[pool].acquire(class, now, 1) {
                return false;
            }
            let is_spec = !ctx.is_main();
            if is_spec {
                pipe.hier.set_prefetch_owner(dload_owner);
            }
            let l1_hit = pipe.hier.latency.l1_hit;
            let acc = pipe.hier.access_data(eff, kind, pc, is_spec, now);
            let e = pipe.ruu.get_mut(seq).expect("entry exists");
            e.state = EState::Executing;
            e.complete_at = now + acc.latency as u64;
            e.issue_cycle = now;
            pipe.exec_done
                .push(std::cmp::Reverse((now + acc.latency as u64, seq)));
            // Anything slower than an L1 hit (true miss or a delayed
            // hit merging into an in-flight fill) counts as an
            // outstanding-miss cause for the CPI stack.
            e.mem_missed = acc.latency > l1_hit;
            pipe.ctxs[ctx.0].ready.remove(&seq);
            return true;
        } else {
            // A memory op with no resolved address (never on the true
            // path): treat as an L1 hit.
            pipe.hier.latency.l1_hit as u64
        };
    } else {
        latency = pipe.cfg.lat.for_class(class, is_sqrt) as u64;
        occupy = match class {
            FuClass::IntDiv | FuClass::FpDiv => latency,
            _ => 1,
        };
    }

    if !pipe.pools[pool].acquire(class, now, occupy) {
        return false;
    }
    let e = pipe.ruu.get_mut(seq).expect("entry exists");
    e.state = EState::Executing;
    e.complete_at = now + latency.max(1);
    e.issue_cycle = now;
    pipe.exec_done
        .push(std::cmp::Reverse((now + latency.max(1), seq)));
    pipe.ctxs[ctx.0].ready.remove(&seq);
    true
}
