//! Pipeline stages.
//!
//! Each stage of the per-cycle loop lives in its own module and operates
//! on the shared [`crate::pipeline::Pipeline`] state, communicating
//! across stage (and cycle) boundaries only through the typed latch and
//! port structs below:
//!
//! * [`DecodePort`] — extraction → dispatch, same cycle: how much decode
//!   bandwidth the front-end extension consumed.
//! * [`IssueLatch`] — issue → next cycle's commit-stall classification:
//!   what the speculative contexts issued.
//! * [`RecoveryPort`] — dispatch → writeback: the (single) unresolved
//!   mispredicted branch awaiting recovery.
//!
//! The cycle order is fixed by [`crate::core::Core::step_cycle`]:
//! commit → writeback → front-end update → issue → extraction →
//! dispatch → fetch.

pub mod commit;
pub mod dispatch;
pub mod fetch;
pub mod issue;
pub mod writeback;

use crate::ruu::SeqId;

/// Decode-bandwidth port between the front-end extension's extraction
/// step and main dispatch (§3.2: "extraction shares the decode
/// bandwidth") — written by extraction, read by dispatch the same cycle.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DecodePort {
    /// Decode slots the extractor consumed this cycle.
    pub pe_used: usize,
}

/// What the speculative contexts issued during the most recent issue
/// phase. Commit-stall classification runs *before* issue in the cycle
/// loop, so it reads the previous cycle's latch.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IssueLatch {
    /// A speculative context issued a memory operation.
    pub spec_issued_mem: bool,
    /// A speculative context issued any operation.
    pub spec_issued_any: bool,
}

/// The single in-flight branch-misprediction recovery, set by dispatch
/// when a mispredicted branch executes and consumed by writeback once
/// that branch completes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoveryPort {
    /// The unresolved mispredicted branch, if any.
    pub pending: Option<Recovery>,
}

/// One pending branch recovery.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Recovery {
    /// The mispredicted branch's RUU entry.
    pub branch_seq: SeqId,
    /// The true target to refetch from.
    pub target: u32,
}
