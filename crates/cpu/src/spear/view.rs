//! The p-thread's isolated memory view.

use crate::overlay::Overlay;
use spear_exec::{DataMem, MemFault, Memory};

/// P-thread memory view: reads fall through a private byte overlay to the
/// shared memory image; writes land only in the overlay. This is the
/// paper's "only updates the data cache without changing the semantic
/// state" isolation.
pub struct PthreadView<'a> {
    /// The speculative context's private store overlay.
    pub overlay: &'a mut Overlay,
    /// The shared functional memory image (read-only here).
    pub mem: &'a Memory,
}

impl DataMem for PthreadView<'_> {
    fn load(&mut self, addr: u64, width: usize) -> Result<u64, MemFault> {
        let mut buf = [0u8; 8];
        for (i, b) in buf.iter_mut().enumerate().take(width) {
            let a = addr.wrapping_add(i as u64);
            *b = match self.overlay.get(a) {
                Some(v) => v,
                None => self.mem.peek(a, 1).map_err(|_| MemFault {
                    addr,
                    width,
                    is_store: false,
                })? as u8,
            };
        }
        Ok(u64::from_le_bytes(buf))
    }

    fn store(&mut self, addr: u64, width: usize, value: u64) -> Result<(), MemFault> {
        // Bounds-check against the real image so runaway speculative
        // stores fault (and get dropped) instead of growing the overlay.
        self.mem.peek(addr, width).map_err(|_| MemFault {
            addr,
            width,
            is_store: true,
        })?;
        for (i, b) in value.to_le_bytes().iter().enumerate().take(width) {
            self.overlay.insert(addr.wrapping_add(i as u64), *b);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stores_land_in_overlay_and_reads_fall_through() {
        let mem = Memory::from_bytes(vec![1u8, 2, 3, 4, 5, 6, 7, 8]);
        let mut overlay = Overlay::new();
        let mut v = PthreadView {
            overlay: &mut overlay,
            mem: &mem,
        };
        assert_eq!(v.load(0, 2).unwrap(), 0x0201);
        v.store(0, 1, 0xAA).unwrap();
        assert_eq!(v.load(0, 2).unwrap(), 0x02AA, "overlay wins per byte");
        assert_eq!(mem.peek(0, 1).unwrap(), 1, "the real image is untouched");
    }

    #[test]
    fn out_of_bounds_store_faults_without_growing_overlay() {
        let mem = Memory::from_bytes(vec![0u8; 4]);
        let mut overlay = Overlay::new();
        let mut v = PthreadView {
            overlay: &mut overlay,
            mem: &mem,
        };
        assert!(v.store(100, 8, 1).is_err());
        assert!(overlay.is_empty());
    }
}
