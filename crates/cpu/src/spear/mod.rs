//! The SPEAR front-end extension (§3).
//!
//! Everything that turns the baseline superscalar into the SPEAR machine
//! lives here, behind [`crate::frontend::FrontEndExt`]:
//!
//! * **Pre-decode (PD)** marks IFQ entries whose PC is in the p-thread
//!   table and detects delinquent loads.
//! * A d-load detection **triggers** pre-execution when the IFQ holds at
//!   least `trigger_fraction × ifq_size` instructions; the machine then
//!   waits for the at-trigger live-in producers to drain, copies live-ins
//!   (one cycle per register), and activates the P-thread Extractor.
//! * The **PE** scans from the IFQ head, extracting up to `pe_bandwidth`
//!   marked instructions per cycle into the p-thread context
//!   ([`crate::ctx::PTHREAD_CTX`]: own RUU, own rename table, private
//!   store overlay), sharing decode bandwidth with main decode.
//! * The **episode** ends when the triggering d-load retires from the
//!   p-thread RUU, or aborts on an IFQ flush or if main decode consumes
//!   the triggering d-load first — unless the `rearm_after_flush` /
//!   `retarget_missed` extensions re-arm it.

mod view;

pub use view::PthreadView;

use crate::config::SpearConfig;
use crate::ctx::{CtxId, MAIN_CTX, PTHREAD_CTX};
use crate::frontend::{FrontEndExt, PreDecode};
use crate::ifq::IfqEntry;
use crate::pipeline::{EState, Pipeline, RuuEntry};
use crate::ruu::SeqId;
use crate::stage::DecodePort;
use crate::stats::DloadProfile;
use crate::trace::{AbortReason, Event};
use spear_exec::exec_inst;
use spear_isa::pthread::PThreadEntry;
use spear_mem::Hierarchy;
use std::collections::HashMap;

/// Cycles an in-progress episode may wait for its d-load to be refetched
/// after an IFQ flush before it is abandoned.
const RETARGET_WINDOW: u64 = 512;

/// SPEAR trigger/extraction state machine (§3.2).
#[derive(Clone, Debug, PartialEq, Eq)]
enum Mode {
    /// No episode in progress; the PD may accept a trigger.
    Normal,
    /// Waiting until the last producers of the live-in registers have
    /// completed (bounded by the live-in wait limit), so their
    /// dispatch-point values are available to copy.
    DrainWait {
        dload_seq: u64,
        dload_pc: u32,
        pt_idx: usize,
        deadline: u64,
    },
    /// Copying live-in registers, one cycle each.
    CopyLiveIns {
        remaining: u32,
        dload_seq: u64,
        dload_pc: u32,
        pt_idx: usize,
    },
    /// PE active (or drained after extracting the d-load).
    PreExec {
        dload_seq: u64,
        dload_pc: u32,
        extraction_done: bool,
    },
}

/// Per-d-load episode outcome tally (harvested into
/// [`crate::stats::DloadProfile`] at the end of a run).
#[derive(Clone, Copy, Debug, Default)]
struct EpisodeTally {
    triggered: u64,
    completed: u64,
    aborted: u64,
}

/// The SPEAR front end: owns the p-thread table view, the episode state
/// machine, and the per-d-load accounting; drives the speculative
/// context [`PTHREAD_CTX`].
pub struct SpearFrontEnd<'p> {
    cfg: SpearConfig,
    /// The speculative context p-threads run on.
    ctx: CtxId,
    pt_entries: &'p [PThreadEntry],
    /// Per-PC: bit set if the PC is in any p-thread member set.
    marked_pcs: Vec<bool>,
    /// Per-PC: index into `pt_entries` if the PC is a delinquent load.
    dload_idx: HashMap<u32, usize>,
    mode: Mode,
    /// Cycle the current episode's trigger was accepted (for the episode
    /// duration histogram).
    episode_start: u64,
    /// Episode ordinal, incremented at each accepted trigger (1-based;
    /// stamps p-thread RUU entries for the lifecycle exporters).
    episode_id: u32,
    /// Instructions extracted so far in the current episode.
    episode_extracted: u64,
    /// Set after an IFQ flush while an episode is active: the episode's
    /// trigger must be re-armed onto a refetched d-load instance before
    /// this cycle, or the episode aborts.
    retarget_deadline: Option<u64>,
    /// Per-d-load episode outcomes.
    episode_tally: HashMap<u32, EpisodeTally>,
}

impl<'p> SpearFrontEnd<'p> {
    /// Build the front end for a p-thread table over a program of
    /// `program_len` instructions.
    pub fn new(
        cfg: SpearConfig,
        table: &'p [PThreadEntry],
        program_len: usize,
    ) -> SpearFrontEnd<'p> {
        let mut marked_pcs = vec![false; program_len];
        let mut dload_idx = HashMap::new();
        for (i, e) in table.iter().enumerate() {
            dload_idx.insert(e.dload_pc, i);
            for &m in &e.members {
                if let Some(slot) = marked_pcs.get_mut(m as usize) {
                    *slot = true;
                }
            }
        }
        SpearFrontEnd {
            cfg,
            ctx: PTHREAD_CTX,
            pt_entries: table,
            marked_pcs,
            dload_idx,
            mode: Mode::Normal,
            episode_start: 0,
            episode_id: 0,
            episode_extracted: 0,
            retarget_deadline: None,
            episode_tally: HashMap::new(),
        }
    }

    /// The static d-load PC of the active episode, if any.
    fn mode_dload_pc(&self) -> Option<u32> {
        match self.mode {
            Mode::DrainWait { dload_pc, .. }
            | Mode::CopyLiveIns { dload_pc, .. }
            | Mode::PreExec { dload_pc, .. } => Some(dload_pc),
            Mode::Normal => None,
        }
    }

    /// Record the episode-duration and extraction histograms at episode
    /// end (completion or abort).
    fn record_episode_end(&mut self, pipe: &mut Pipeline) {
        let dur = pipe.cycle.saturating_sub(self.episode_start);
        pipe.stats.episode_cycles.record(dur);
        pipe.stats
            .episode_extractions
            .record(self.episode_extracted);
    }

    /// A d-load detection while no episode is active: accept the trigger
    /// if the IFQ occupancy condition holds.
    fn consider_trigger(&mut self, pipe: &mut Pipeline, ifq_seq: u64, pt_idx: usize) {
        if self.mode != Mode::Normal {
            pipe.stats.triggers_ignored_busy += 1;
            return;
        }
        let threshold = (pipe.ifq.capacity() as f64 * self.cfg.trigger_fraction) as usize;
        if pipe.ifq.len() < threshold {
            pipe.stats.triggers_rejected_occupancy += 1;
            return;
        }
        let dload_pc = self.pt_entries[pt_idx].dload_pc;
        let deadline = pipe.cycle + self.cfg.livein_wait_limit as u64;
        let occupancy = pipe.ifq.len();
        self.mode = Mode::DrainWait {
            dload_seq: ifq_seq,
            dload_pc,
            pt_idx,
            deadline,
        };
        pipe.stats.triggers_accepted += 1;
        self.episode_tally.entry(dload_pc).or_default().triggered += 1;
        self.episode_start = pipe.cycle;
        self.episode_id += 1;
        self.episode_extracted = 0;
        pipe.trace_event(|cycle| Event::Trigger {
            cycle,
            dload_pc,
            occupancy,
        });
    }

    /// Re-arm a flush-orphaned episode onto a freshly fetched instance of
    /// its d-load.
    fn rearm_trigger(&mut self, pipe: &mut Pipeline, seq: u64) {
        self.retarget_deadline = None;
        pipe.stats.preexec_retargets += 1;
        match self.mode {
            Mode::DrainWait {
                dload_pc,
                pt_idx,
                deadline,
                ..
            } => {
                self.mode = Mode::DrainWait {
                    dload_seq: seq,
                    dload_pc,
                    pt_idx,
                    deadline,
                };
            }
            Mode::CopyLiveIns {
                remaining,
                dload_pc,
                pt_idx,
                ..
            } => {
                self.mode = Mode::CopyLiveIns {
                    remaining,
                    dload_seq: seq,
                    dload_pc,
                    pt_idx,
                };
            }
            Mode::PreExec {
                dload_pc,
                extraction_done,
                ..
            } => {
                // If the d-load was already extracted the episode is just
                // waiting for retirement; no re-arm needed.
                if !extraction_done {
                    self.mode = Mode::PreExec {
                        dload_seq: seq,
                        dload_pc,
                        extraction_done,
                    };
                }
            }
            Mode::Normal => {}
        }
    }

    /// The main thread decoded the episode's triggering d-load before the
    /// PE could extract it. Paper behaviour: the episode aborts. With the
    /// `retarget_missed` extension the trigger logic re-targets the
    /// youngest still-marked instance of the same static d-load in the
    /// IFQ instead.
    fn retarget_or_abort(&mut self, pipe: &mut Pipeline, dload_pc: u32) {
        if !self.cfg.retarget_missed {
            self.episode_tally.entry(dload_pc).or_default().aborted += 1;
            self.mode = Mode::Normal;
            pipe.stats.preexec_aborted_missed += 1;
            self.record_episode_end(pipe);
            pipe.trace_event(|cycle| Event::EpisodeAborted {
                cycle,
                reason: AbortReason::MissedTrigger,
            });
            return;
        }
        let newest = pipe
            .ifq
            .iter()
            .filter(|e| e.is_dload && e.pc == dload_pc && e.marked)
            .map(|e| e.seq)
            .max();
        match newest {
            Some(seq) => match self.mode {
                Mode::DrainWait {
                    pt_idx, deadline, ..
                } => {
                    self.mode = Mode::DrainWait {
                        dload_seq: seq,
                        dload_pc,
                        pt_idx,
                        deadline,
                    };
                }
                Mode::CopyLiveIns {
                    remaining, pt_idx, ..
                } => {
                    self.mode = Mode::CopyLiveIns {
                        remaining,
                        dload_seq: seq,
                        dload_pc,
                        pt_idx,
                    };
                }
                Mode::PreExec {
                    extraction_done, ..
                } => {
                    self.mode = Mode::PreExec {
                        dload_seq: seq,
                        dload_pc,
                        extraction_done,
                    };
                }
                Mode::Normal => {}
            },
            None => {
                self.episode_tally.entry(dload_pc).or_default().aborted += 1;
                self.mode = Mode::Normal;
                pipe.stats.preexec_aborted_missed += 1;
                self.record_episode_end(pipe);
            }
        }
    }

    /// Dispatch one extracted instruction into the p-thread context.
    /// Functional execution runs against the p-thread register file and
    /// store overlay; faulting speculative accesses are simply dropped
    /// (no fault is ever raised architecturally by the p-thread).
    fn dispatch_pthread(&mut self, pipe: &mut Pipeline, fetched: &IfqEntry, is_trigger: bool) {
        let owner = self.mode_dload_pc();
        let ctx_idx = self.ctx.0;
        let outcome = {
            let ctx = &mut pipe.ctxs[ctx_idx];
            let mut view = PthreadView {
                overlay: &mut ctx.overlay,
                mem: &pipe.mem,
            };
            exec_inst(&fetched.inst, fetched.pc, &mut ctx.regs, &mut view)
        };
        let eff_addr = match outcome {
            Ok(o) => o.eff_addr,
            Err(_) => {
                pipe.stats.pthread_faults += 1;
                if is_trigger {
                    // The episode cannot prefetch its own d-load; give up.
                    if let Some(pc) = owner {
                        self.episode_tally.entry(pc).or_default().aborted += 1;
                    }
                    self.mode = Mode::Normal;
                    pipe.stats.preexec_aborted_missed += 1;
                    self.record_episode_end(pipe);
                    pipe.trace_event(|cycle| Event::EpisodeAborted {
                        cycle,
                        reason: AbortReason::Fault,
                    });
                }
                return;
            }
        };
        let seq = pipe.alloc_seq();
        pipe.stats.pthread_insts += 1;
        if fetched.inst.op.is_load() {
            pipe.stats.pthread_loads += 1;
        }
        let mut deps: Vec<SeqId> = Vec::new();
        for src in fetched.inst.live_srcs() {
            if let Some(p) = pipe.ctxs[ctx_idx].rename[src.index()] {
                if pipe.ruu.get(p).is_some_and(|pe| pe.state != EState::Done) {
                    deps.push(p);
                }
            }
        }
        if fetched.inst.op.is_load() {
            if let Some(addr) = eff_addr {
                let w = fetched.inst.op.mem_width() as u64;
                for &(sid, saddr, swidth) in &pipe.ctxs[ctx_idx].stores {
                    if addr < saddr + swidth as u64 && saddr < addr + w {
                        deps.push(sid);
                    }
                }
            }
        }
        deps.sort_unstable();
        deps.dedup();
        let pending = deps.len() as u32;
        let state = if pending == 0 {
            EState::Ready
        } else {
            EState::Waiting
        };
        let id = pipe.ruu.insert(RuuEntry {
            seq,
            ctx: self.ctx,
            pc: fetched.pc,
            inst: fetched.inst,
            state,
            pending,
            complete_at: 0,
            eff_addr,
            wrong_path: false,
            is_halt: false,
            is_trigger_dload: is_trigger,
            dst_val: None,
            dispatch_cycle: pipe.cycle,
            mem_missed: false,
            dload_owner: owner,
            fetch_cycle: fetched.fetch_cycle,
            issue_cycle: 0,
            episode: self.episode_id,
        });
        if let Some(d) = fetched.inst.dst() {
            pipe.ctxs[ctx_idx].rename[d.index()] = Some(id);
        }
        if fetched.inst.op.is_store() {
            if let Some(addr) = eff_addr {
                pipe.ctxs[ctx_idx]
                    .stores
                    .push((id, addr, fetched.inst.op.mem_width()));
            }
        }
        for &d in &deps {
            pipe.ruu.add_consumer(d, id);
        }
        if state == EState::Ready {
            pipe.ctxs[ctx_idx].ready.insert(id);
        }
        pipe.ctxs[ctx_idx].order.push_back(id);
    }
}

impl FrontEndExt for SpearFrontEnd<'_> {
    fn pre_decode(&self, pc: u32) -> PreDecode {
        PreDecode {
            marked: self.marked_pcs.get(pc as usize).copied().unwrap_or(false),
            dload: self.dload_idx.contains_key(&pc),
        }
    }

    /// PD: a d-load detection may trigger pre-execution (§3.2), or re-arm
    /// a flush-orphaned episode onto this fresh instance.
    fn on_dload_fetched(&mut self, pipe: &mut Pipeline, ifq_seq: u64, pc: u32) {
        let threshold = (pipe.ifq.capacity() as f64 * self.cfg.trigger_fraction) as usize;
        if self.retarget_deadline.is_some() && self.mode_dload_pc() == Some(pc) {
            // Re-arm only once the queue again holds enough slack for the
            // refetched instance to be worth chasing.
            if pipe.ifq.len() >= threshold {
                self.rearm_trigger(pipe, ifq_seq);
            }
        } else {
            let pt_idx = self.dload_idx[&pc];
            self.consider_trigger(pipe, ifq_seq, pt_idx);
        }
    }

    fn update(&mut self, pipe: &mut Pipeline) {
        if let Some(deadline) = self.retarget_deadline {
            if pipe.cycle > deadline {
                self.retarget_deadline = None;
                if self.mode != Mode::Normal {
                    if let Some(pc) = self.mode_dload_pc() {
                        self.episode_tally.entry(pc).or_default().aborted += 1;
                    }
                    self.mode = Mode::Normal;
                    pipe.stats.preexec_aborted_flush += 1;
                    self.record_episode_end(pipe);
                }
            }
        }
        match self.mode.clone() {
            Mode::DrainWait {
                dload_seq,
                dload_pc,
                pt_idx,
                deadline,
            } => {
                let drained = self.pt_entries[pt_idx].live_ins.iter().all(|r| {
                    match pipe.ctxs[MAIN_CTX.0].rename[r.index()] {
                        None => true,
                        Some(p) => pipe.ruu.get(p).is_none_or(|e| e.state == EState::Done),
                    }
                });
                if drained || pipe.cycle >= deadline {
                    let n = self.pt_entries[pt_idx].live_ins.len() as u32;
                    let per = self.cfg.livein_cycles_per_reg;
                    self.mode = Mode::CopyLiveIns {
                        remaining: n * per,
                        dload_seq,
                        dload_pc,
                        pt_idx,
                    };
                }
            }
            Mode::CopyLiveIns {
                remaining,
                dload_seq,
                dload_pc,
                pt_idx,
            } => {
                if remaining > 0 {
                    pipe.stats.livein_copy_cycles += 1;
                    self.mode = Mode::CopyLiveIns {
                        remaining: remaining - 1,
                        dload_seq,
                        dload_pc,
                        pt_idx,
                    };
                } else {
                    // Copy each live-in's *freshest completed* value: the
                    // youngest completed in-flight writer's result (read
                    // from its physical register), else the committed
                    // architectural value. In-flight-but-incomplete
                    // writers have no forwardable value yet.
                    let entry = &self.pt_entries[pt_idx];
                    let vals: Vec<(spear_isa::Reg, u64)> = entry
                        .live_ins
                        .iter()
                        .map(|&r| (r, pipe.freshest_value(r)))
                        .collect();
                    let n = entry.live_ins.len();
                    let ctx = &mut pipe.ctxs[self.ctx.0];
                    ctx.reset_spec_state();
                    for (r, v) in vals {
                        ctx.regs.write_u64(r, v);
                    }
                    pipe.ifq.reset_scan();
                    pipe.trace_event(|cycle| Event::LiveInsCopied { cycle, count: n });
                    self.mode = Mode::PreExec {
                        dload_seq,
                        dload_pc,
                        extraction_done: false,
                    };
                }
            }
            Mode::Normal | Mode::PreExec { .. } => {}
        }
    }

    /// PE extraction (§3.2): pull up to `pe_bandwidth` marked entries
    /// from the IFQ scan position into the p-thread RUU.
    fn extract(&mut self, pipe: &mut Pipeline) -> DecodePort {
        let Mode::PreExec {
            dload_seq,
            dload_pc,
            extraction_done,
        } = self.mode
        else {
            return DecodePort::default();
        };
        if extraction_done {
            return DecodePort::default();
        }
        let pth_cap = self.cfg.pthread_ruu_size;
        let mut used = 0;
        while used < self.cfg.pe_bandwidth {
            if pipe.ctxs[self.ctx.0].order.len() >= pth_cap {
                break;
            }
            let Some(entry) = pipe.ifq.extract_next_marked() else {
                break;
            };
            used += 1;
            let is_trigger = entry.seq == dload_seq;
            let pc = entry.pc;
            let ctx = self.ctx.0;
            self.episode_extracted += 1;
            pipe.trace_event(|cycle| Event::Extract {
                cycle,
                pc,
                is_trigger,
                ctx,
            });
            self.dispatch_pthread(pipe, &entry, is_trigger);
            if is_trigger {
                if let Mode::PreExec { .. } = self.mode {
                    self.mode = Mode::PreExec {
                        dload_seq,
                        dload_pc,
                        extraction_done: true,
                    };
                }
                break;
            }
        }
        DecodePort { pe_used: used }
    }

    /// A marked instruction consumed by main decode while the PE is
    /// active was missed; if it is the triggering d-load, the episode can
    /// never finish — abort (or re-target) it.
    fn on_main_decode(&mut self, pipe: &mut Pipeline, seq: u64, marked: bool) {
        match self.mode {
            Mode::PreExec {
                dload_seq,
                dload_pc,
                extraction_done,
            } => {
                if marked {
                    pipe.stats.missed_extractions += 1;
                }
                if !extraction_done && seq == dload_seq {
                    self.retarget_or_abort(pipe, dload_pc);
                }
            }
            Mode::DrainWait {
                dload_seq,
                dload_pc,
                ..
            }
            | Mode::CopyLiveIns {
                dload_seq,
                dload_pc,
                ..
            } => {
                if seq == dload_seq {
                    self.retarget_or_abort(pipe, dload_pc);
                }
            }
            Mode::Normal => {}
        }
    }

    /// An active episode loses its IFQ entries, including the remembered
    /// trigger d-load entry. Paper behaviour: the episode dies with the
    /// queue. With the `rearm_after_flush` extension the p-thread context
    /// survives and the PD re-arms the trigger onto the next fetched
    /// instance of the same static d-load (abandoned if none shows up
    /// within the deadline).
    fn on_flush(&mut self, pipe: &mut Pipeline) {
        if self.mode == Mode::Normal {
            return;
        }
        if self.cfg.rearm_after_flush {
            self.retarget_deadline = Some(pipe.cycle + RETARGET_WINDOW);
        } else {
            if let Some(pc) = self.mode_dload_pc() {
                self.episode_tally.entry(pc).or_default().aborted += 1;
            }
            self.mode = Mode::Normal;
            pipe.stats.preexec_aborted_flush += 1;
            self.record_episode_end(pipe);
            pipe.trace_event(|cycle| Event::EpisodeAborted {
                cycle,
                reason: AbortReason::Flush,
            });
        }
    }

    /// The trigger d-load's retirement from the p-thread RUU completes
    /// the episode.
    fn on_ctx_retired(&mut self, pipe: &mut Pipeline, entry: &RuuEntry) {
        if !entry.is_trigger_dload {
            return;
        }
        if let Mode::PreExec { dload_pc, .. } = self.mode {
            self.mode = Mode::Normal;
            pipe.stats.preexec_completed += 1;
            self.episode_tally.entry(dload_pc).or_default().completed += 1;
            self.record_episode_end(pipe);
            pipe.trace_event(|cycle| Event::EpisodeComplete { cycle });
        }
    }

    /// Per-d-load effectiveness profiles, one row per p-thread table
    /// entry, sorted by static PC.
    fn harvest_profiles(&self, hier: &Hierarchy) -> Vec<DloadProfile> {
        let mut pcs: Vec<u32> = self.dload_idx.keys().copied().collect();
        pcs.sort_unstable();
        pcs.into_iter()
            .map(|pc| {
                let p = hier.dload_profile(pc);
                let t = self.episode_tally.get(&pc).copied().unwrap_or_default();
                DloadProfile {
                    dload_pc: pc,
                    demand_misses: hier.pc_misses.get(pc),
                    episodes_triggered: t.triggered,
                    episodes_completed: t.completed,
                    episodes_aborted: t.aborted,
                    pthread_loads: p.pthread_loads,
                    timely_prefetches: p.timely,
                    late_prefetches: p.late,
                    useless_prefetches: p.useless,
                }
            })
            .collect()
    }

    fn mode_name(&self) -> String {
        match self.mode {
            Mode::Normal => "normal".to_string(),
            Mode::DrainWait { .. } => format!("drain@{}", self.ctx),
            Mode::CopyLiveIns { .. } => format!("copy@{}", self.ctx),
            Mode::PreExec { .. } => format!("preexec@{}", self.ctx),
        }
    }
}
