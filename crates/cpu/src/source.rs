//! The instruction-supply boundary: where the pipeline gets
//! instructions and their committed-path effects from.
//!
//! The core is execution-driven with an execute-at-dispatch oracle (see
//! [`crate::core`]): fetch needs an *image lookup* (true path and wrong
//! path alike), and dispatch needs a *committed-path oracle* — the next
//! PC, the effective address, and memory effects of each true-path
//! instruction in program order. [`ExecSource`] abstracts exactly those
//! two capabilities, so the rest of the pipeline provably does not care
//! where instructions come from:
//!
//! * [`ProgramSource`] — today's behavior, bit-identical: the oracle is
//!   [`spear_exec::exec_inst`] over the live register file and memory
//!   image.
//! * [`TraceSource`] — replay of a recorded `.spt` committed path
//!   ([`spear_trace::TraceFile`]): the oracle pops pre-decoded records
//!   (next PC, effective address, store data) and applies recorded
//!   store data to the memory image, so architectural memory stays
//!   exact without re-executing semantics. Wrong-path fetch synthesizes
//!   from the embedded program image, so misprediction behavior is
//!   preserved. Register values are *not* tracked (they are
//!   timing-irrelevant to the baseline pipeline: `dst_val` feeds only
//!   commit-order register reconstruction and SPEAR live-in copies), so
//!   [`ExecSource::tracks_registers`] gates the dispatch-time register
//!   readback.
//!
//! The oracle's per-instruction cursor is the committed-instruction
//! index, which is what checkpoint format v4 snapshots so a trace-backed
//! campaign cell can resume replay mid-stream.

use crate::core::SimError;
use spear_exec::{exec_inst, DataMem, ExecError, Memory, Outcome, RegFile};
use spear_isa::{Inst, Program};
use spear_trace::{Rec, TraceFile};

/// A pluggable supply of instructions and committed-path effects.
pub trait ExecSource {
    /// Fetch-image lookup at `pc` — consulted by the fetch stage for
    /// true-path and wrong-path instructions alike.
    fn fetch_inst(&self, pc: u32) -> Option<Inst>;

    /// Committed-path oracle: account one true-path main-context
    /// instruction in program order, applying its memory effects to
    /// `mem` (and, if this source tracks registers, its register
    /// effects to `regs`).
    fn step_main(
        &mut self,
        inst: &Inst,
        pc: u32,
        regs: &mut RegFile,
        mem: &mut Memory,
    ) -> Result<Outcome, SimError>;

    /// Whether `regs` carries live architectural values after
    /// [`ExecSource::step_main`] (gates dispatch's `dst_val` readback).
    fn tracks_registers(&self) -> bool;

    /// True-path instructions consumed so far — the replay cursor a
    /// checkpoint snapshot records.
    fn cursor(&self) -> u64;

    /// Short label for diagnostics ("program", "trace").
    fn name(&self) -> &'static str;
}

/// The execute-at-dispatch source: instructions come from the program
/// image and the oracle *is* the ISA semantics. Bit-identical to the
/// pre-`ExecSource` pipeline.
pub struct ProgramSource<'p> {
    program: &'p Program,
    stepped: u64,
}

impl<'p> ProgramSource<'p> {
    /// Source over `program`'s image and semantics.
    pub fn new(program: &'p Program) -> ProgramSource<'p> {
        ProgramSource {
            program,
            stepped: 0,
        }
    }
}

impl ExecSource for ProgramSource<'_> {
    fn fetch_inst(&self, pc: u32) -> Option<Inst> {
        self.program.fetch(pc).copied()
    }

    fn step_main(
        &mut self,
        inst: &Inst,
        pc: u32,
        regs: &mut RegFile,
        mem: &mut Memory,
    ) -> Result<Outcome, SimError> {
        self.stepped += 1;
        exec_inst(inst, pc, regs, mem).map_err(|fault| SimError::Exec(ExecError::Mem { pc, fault }))
    }

    fn tracks_registers(&self) -> bool {
        true
    }

    fn cursor(&self) -> u64 {
        self.stepped
    }

    fn name(&self) -> &'static str {
        "program"
    }
}

/// The trace-replay source: the committed path comes from recorded
/// `.spt` records; the fetch image is the program embedded in the trace.
pub struct TraceSource<'p> {
    program: &'p Program,
    recs: &'p [Rec],
    cursor: usize,
    /// PC the next record must dispatch at (`None` disables the check
    /// only before the first step of a cursor-0 source with no records).
    expect_pc: Option<u32>,
}

impl<'p> TraceSource<'p> {
    /// Replay `tf` from its first record.
    pub fn new(tf: &'p TraceFile) -> TraceSource<'p> {
        TraceSource {
            program: &tf.binary.program,
            recs: &tf.recs,
            cursor: 0,
            expect_pc: Some(tf.start_pc),
        }
    }

    /// Replay `tf` starting at record `cursor` — the checkpoint-restore
    /// entry point (`cursor` = instructions committed before the
    /// checkpoint). Fails if the trace is shorter than the cursor.
    pub fn at_cursor(tf: &'p TraceFile, cursor: u64) -> Result<TraceSource<'p>, String> {
        if cursor > tf.recs.len() as u64 {
            return Err(format!(
                "trace cursor {cursor} is beyond the trace's {} records",
                tf.recs.len()
            ));
        }
        let expect_pc = if cursor == 0 {
            Some(tf.start_pc)
        } else {
            Some(tf.recs[cursor as usize - 1].next_pc)
        };
        Ok(TraceSource {
            program: &tf.binary.program,
            recs: &tf.recs,
            cursor: cursor as usize,
            expect_pc,
        })
    }
}

impl ExecSource for TraceSource<'_> {
    fn fetch_inst(&self, pc: u32) -> Option<Inst> {
        // Wrong-path synthesis rule: any PC resolves against the
        // embedded image, exactly like hardware running ahead of a
        // mispredicted branch.
        self.program.fetch(pc).copied()
    }

    fn step_main(
        &mut self,
        inst: &Inst,
        pc: u32,
        _regs: &mut RegFile,
        mem: &mut Memory,
    ) -> Result<Outcome, SimError> {
        if let Some(exp) = self.expect_pc {
            if pc != exp {
                return Err(SimError::Trace(format!(
                    "committed path diverged from the trace at record {}: \
                     dispatching pc {pc}, trace expects pc {exp}",
                    self.cursor
                )));
            }
        }
        let Some(rec) = self.recs.get(self.cursor) else {
            return Err(SimError::Trace(format!(
                "trace exhausted after {} records (true path reached pc {pc})",
                self.cursor
            )));
        };
        self.cursor += 1;
        self.expect_pc = Some(rec.next_pc);
        if let (Some(ea), Some(v)) = (rec.eff_addr, rec.store) {
            mem.store(ea, inst.op.mem_width(), v).map_err(|fault| {
                SimError::Trace(format!("recorded store unreplayable at pc {pc}: {fault}"))
            })?;
        }
        Ok(Outcome {
            next_pc: rec.next_pc,
            eff_addr: rec.eff_addr,
            taken: Some(rec.taken),
            halted: rec.halted,
        })
    }

    fn tracks_registers(&self) -> bool {
        false
    }

    fn cursor(&self) -> u64 {
        self.cursor as u64
    }

    fn name(&self) -> &'static str {
        "trace"
    }
}
