//! The five machine models of the evaluation.
//!
//! Lives in `spear-cpu` (rather than the top-level `spear` crate, which
//! re-exports it) so lower layers — the campaign engine and the campaign
//! server — can resolve machine names to [`CoreConfig`]s without a
//! dependency cycle.

use crate::config::CoreConfig;
use serde::{Deserialize, Serialize};
use spear_mem::LatencyConfig;

/// A machine model from the paper's evaluation (Figures 6 and 7).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Machine {
    /// The baseline superscalar (Table 2, no SPEAR hardware).
    Baseline,
    /// SPEAR with a 128-entry IFQ.
    Spear128,
    /// SPEAR with a 256-entry IFQ.
    Spear256,
    /// SPEAR-128 with dedicated p-thread functional units (Figure 7).
    SpearSf128,
    /// SPEAR-256 with dedicated p-thread functional units (Figure 7).
    SpearSf256,
}

impl Machine {
    /// The three machines of Figure 6 / Table 3 / Figure 8 / Figure 9.
    pub const FIG6: [Machine; 3] = [Machine::Baseline, Machine::Spear128, Machine::Spear256];

    /// All five machines (Figure 7).
    pub const ALL: [Machine; 5] = [
        Machine::Baseline,
        Machine::Spear128,
        Machine::Spear256,
        Machine::SpearSf128,
        Machine::SpearSf256,
    ];

    /// The machine's display name (matching the paper's labels).
    pub fn name(self) -> &'static str {
        match self {
            Machine::Baseline => "superscalar",
            Machine::Spear128 => "SPEAR-128",
            Machine::Spear256 => "SPEAR-256",
            Machine::SpearSf128 => "SPEAR.sf-128",
            Machine::SpearSf256 => "SPEAR.sf-256",
        }
    }

    /// Parse the command-line / wire spelling of a machine name
    /// (`baseline`, `spear-128`, ... as accepted by `spear-sim -m`).
    /// Display names ([`Machine::name`]) are accepted too, so job specs
    /// echoed from status endpoints resolve back.
    pub fn from_cli_name(s: &str) -> Option<Machine> {
        match s {
            "baseline" | "superscalar" => Some(Machine::Baseline),
            "spear-128" | "SPEAR-128" => Some(Machine::Spear128),
            "spear-256" | "SPEAR-256" => Some(Machine::Spear256),
            "spear-sf-128" | "spear.sf-128" | "SPEAR.sf-128" => Some(Machine::SpearSf128),
            "spear-sf-256" | "spear.sf-256" | "SPEAR.sf-256" => Some(Machine::SpearSf256),
            _ => None,
        }
    }

    /// True for the models with SPEAR hardware.
    pub fn is_spear(self) -> bool {
        self != Machine::Baseline
    }

    /// Build the core configuration, optionally overriding the memory
    /// latencies (the Figure 9 sweep).
    pub fn config(self, latency: Option<LatencyConfig>) -> CoreConfig {
        let mut cfg = match self {
            Machine::Baseline => CoreConfig::baseline(),
            Machine::Spear128 => CoreConfig::spear(128),
            Machine::Spear256 => CoreConfig::spear(256),
            Machine::SpearSf128 => CoreConfig::spear_sf(128),
            Machine::SpearSf256 => CoreConfig::spear_sf(256),
        };
        if let Some(lat) = latency {
            cfg.hier.latency = lat;
        }
        cfg
    }
}

impl std::fmt::Display for Machine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_match_paper_labels() {
        assert_eq!(Machine::Spear128.name(), "SPEAR-128");
        assert_eq!(Machine::SpearSf256.name(), "SPEAR.sf-256");
    }

    #[test]
    fn cli_names_round_trip_through_display_names() {
        for m in Machine::ALL {
            assert_eq!(Machine::from_cli_name(m.name()), Some(m), "{m}");
        }
        assert_eq!(Machine::from_cli_name("spear-128"), Some(Machine::Spear128));
        assert_eq!(Machine::from_cli_name("baseline"), Some(Machine::Baseline));
        assert_eq!(Machine::from_cli_name("warp-drive"), None);
    }

    #[test]
    fn configs_reflect_the_model() {
        assert!(Machine::Baseline.config(None).spear.is_none());
        let sf = Machine::SpearSf256.config(None);
        assert!(sf.spear.is_some());
        assert!(sf.separate_fu);
        assert_eq!(sf.ifq_size, 256);
    }

    #[test]
    fn latency_override_applies() {
        let cfg = Machine::Spear128.config(Some(LatencyConfig::sweep_point(200)));
        assert_eq!(cfg.hier.latency.memory, 200);
        assert_eq!(cfg.hier.latency.l2_hit, 20);
    }
}
