//! The cycle-level out-of-order SMT core with the SPEAR front end.
//!
//! # Pipeline model
//!
//! `fetch → pre-decode/IFQ → decode/rename/dispatch → issue → execute →
//! writeback → commit`, modelled execution-driven in the `sim-outorder`
//! style:
//!
//! * **Execute-at-dispatch oracle timing.** True-path main-thread
//!   instructions execute functionally (via [`spear_exec::exec_inst`] — the
//!   same semantics as the golden model) in program order at dispatch;
//!   the rest of the pipeline provides timing. Branch outcomes are thus
//!   known at dispatch; *recovery timing* is charged at the branch's
//!   writeback, and the machine fetches and dispatches real wrong-path
//!   instructions in between (they consume resources but never execute
//!   functionally and never touch the D-cache).
//! * **Stores update the functional memory image at dispatch** (in program
//!   order), with commit-order architectural state reconstructed in
//!   `commit_regs` for live-in copies and final-state checks.
//!
//! # SPEAR additions (§3)
//!
//! * Pre-decode marks IFQ entries whose PC is in the p-thread table and
//!   detects delinquent loads (PD).
//! * A d-load detection triggers pre-execution when the IFQ holds at least
//!   `trigger_fraction × ifq_size` instructions; the machine then waits for
//!   the at-trigger RUU snapshot to drain, copies live-ins (one
//!   cycle per register), and activates the P-thread Extractor.
//! * The PE scans from the IFQ head, extracting up to `pe_bandwidth`
//!   marked instructions per cycle into the p-thread context (thread id 1,
//!   own RUU, own rename table, private store overlay). Extraction shares
//!   the decode bandwidth: main decode gets whatever the PE left.
//! * P-thread instructions get issue priority; their loads access the
//!   shared L1D — that is the prefetch effect.
//! * The episode ends when the triggering d-load retires from the p-thread
//!   RUU, or aborts on an IFQ flush or if main decode consumes the
//!   triggering d-load first.

use crate::config::{CoreConfig, SpearConfig};
use crate::fu::FuPool;
use crate::ifq::{Ifq, IfqEntry};
use crate::stats::{CoreStats, DloadProfile, RunExit, StallCause};
use crate::trace::{AbortReason, Event, Trace};
use spear_bpred::Predictor;
use spear_exec::{exec_inst, DataMem, ExecError, MemFault, Memory, RegFile};
use spear_isa::pthread::PThreadEntry;
use spear_isa::reg::NUM_REGS;
use spear_isa::{FuClass, Inst, Opcode, Program, SpearBinary};
use spear_mem::{AccessKind, Hierarchy};
use std::collections::{BTreeSet, HashMap, VecDeque};

/// Which hardware context an in-flight instruction belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Thread {
    /// Thread id 0 — the main program.
    Main,
    /// Thread id 1 — the prefetching thread.
    Pthread,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum EState {
    Waiting,
    Ready,
    Executing,
    Done,
}

/// One RUU (reorder-buffer / scheduler) entry.
#[derive(Clone, Debug)]
struct RuuEntry {
    seq: u64,
    thread: Thread,
    pc: u32,
    inst: Inst,
    state: EState,
    pending: u32,
    complete_at: u64,
    eff_addr: Option<u64>,
    wrong_path: bool,
    is_halt: bool,
    /// P-thread entry that terminates the pre-execution episode.
    is_trigger_dload: bool,
    /// Architectural result, applied to `commit_regs` at commit.
    dst_val: Option<(spear_isa::Reg, u64)>,
    /// Cycle the entry was dispatched into the RUU (cycle accounting:
    /// distinguishes "never had an issue opportunity" from contention).
    dispatch_cycle: u64,
    /// Set at issue if this memory operation's access went past the L1
    /// (or merged into an in-flight fill) — the commit-head signal for
    /// the d-load-miss CPI-stack bucket.
    mem_missed: bool,
    /// For p-thread entries: the static d-load PC of the episode that
    /// extracted it, attributing its prefetches in the per-d-load
    /// effectiveness profiles.
    dload_owner: Option<u32>,
}

/// Per-d-load episode outcome tally (harvested into
/// [`crate::stats::DloadProfile`] at the end of a run).
#[derive(Clone, Copy, Debug, Default)]
struct EpisodeTally {
    triggered: u64,
    completed: u64,
    aborted: u64,
}

/// P-thread memory view: reads fall through a private byte overlay to the
/// shared memory image; writes land only in the overlay. This is the
/// paper's "only updates the data cache without changing the semantic
/// state" isolation.
struct PthreadView<'a> {
    overlay: &'a mut HashMap<u64, u8>,
    mem: &'a Memory,
}

impl DataMem for PthreadView<'_> {
    fn load(&mut self, addr: u64, width: usize) -> Result<u64, MemFault> {
        let mut buf = [0u8; 8];
        for (i, b) in buf.iter_mut().enumerate().take(width) {
            let a = addr.wrapping_add(i as u64);
            *b = match self.overlay.get(&a) {
                Some(&v) => v,
                None => self.mem.peek(a, 1).map_err(|_| MemFault {
                    addr,
                    width,
                    is_store: false,
                })? as u8,
            };
        }
        Ok(u64::from_le_bytes(buf))
    }

    fn store(&mut self, addr: u64, width: usize, value: u64) -> Result<(), MemFault> {
        // Bounds-check against the real image so runaway speculative
        // stores fault (and get dropped) instead of growing the overlay.
        self.mem.peek(addr, width).map_err(|_| MemFault {
            addr,
            width,
            is_store: true,
        })?;
        for (i, b) in value.to_le_bytes().iter().enumerate().take(width) {
            self.overlay.insert(addr.wrapping_add(i as u64), *b);
        }
        Ok(())
    }
}

/// SPEAR trigger/extraction state machine (§3.2).
#[derive(Clone, Debug, PartialEq, Eq)]
enum Mode {
    /// No episode in progress; the PD may accept a trigger.
    Normal,
    /// Waiting until the last producers of the live-in registers have
    /// completed (bounded by the live-in wait limit), so their
    /// dispatch-point values are available to copy.
    DrainWait {
        dload_seq: u64,
        dload_pc: u32,
        pt_idx: usize,
        deadline: u64,
    },
    /// Copying live-in registers, one cycle each.
    CopyLiveIns {
        remaining: u32,
        dload_seq: u64,
        dload_pc: u32,
        pt_idx: usize,
    },
    /// PE active (or drained after extracting the d-load).
    PreExec {
        dload_seq: u64,
        dload_pc: u32,
        extraction_done: bool,
    },
}

/// Simulation errors — all indicate workload or harness bugs, not
/// architectural events.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The main thread's functional execution faulted.
    Exec(ExecError),
    /// No main-thread instruction committed for a long time.
    Deadlock {
        /// Cycle at which the watchdog fired.
        cycle: u64,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Exec(e) => write!(f, "functional execution failed: {e}"),
            SimError::Deadlock { cycle } => write!(f, "pipeline deadlock at cycle {cycle}"),
        }
    }
}

impl std::error::Error for SimError {}

/// Result of a completed run.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Why the run stopped.
    pub exit: RunExit,
    /// All counters.
    pub stats: CoreStats,
}

/// The simulator.
pub struct Core<'p> {
    cfg: CoreConfig,
    spear: Option<SpearConfig>,
    program: &'p Program,
    pt_entries: &'p [PThreadEntry],
    /// Per-PC: bit set if the PC is in any p-thread member set.
    marked_pcs: Vec<bool>,
    /// Per-PC: index into `pt_entries` if the PC is a delinquent load.
    dload_idx: HashMap<u32, usize>,

    // ---- front end ----
    predictor: Predictor,
    ifq: Ifq,
    fetch_pc: u32,
    fetch_ready_at: u64,
    fetch_halted: bool,
    last_fetch_block: Option<u64>,

    // ---- functional state ----
    /// Dispatch-order register state (main thread).
    regs: RegFile,
    /// Commit-order register state (live-in source; final arch state).
    commit_regs: RegFile,
    /// Shared functional memory image (written at dispatch).
    mem: Memory,
    /// P-thread register context.
    pth_regs: RegFile,
    /// P-thread private store overlay.
    pth_overlay: HashMap<u64, u8>,

    // ---- backend ----
    entries: HashMap<u64, RuuEntry>,
    main_order: VecDeque<u64>,
    pth_order: VecDeque<u64>,
    consumers: HashMap<u64, Vec<u64>>,
    ready_main: BTreeSet<u64>,
    ready_pth: BTreeSet<u64>,
    stores_main: Vec<(u64, u64, usize)>,
    stores_pth: Vec<(u64, u64, usize)>,
    rename_main: [Option<u64>; NUM_REGS],
    rename_pth: [Option<u64>; NUM_REGS],
    fus: FuPool,
    fus_pth: Option<FuPool>,
    hier: Hierarchy,

    // ---- control ----
    mode: Mode,
    /// Cycle the current episode's trigger was accepted (for the episode
    /// duration histogram).
    episode_start: u64,
    /// Instructions extracted so far in the current episode.
    episode_extracted: u64,
    /// Set after an IFQ flush while an episode is active: the episode's
    /// trigger must be re-armed onto a refetched d-load instance before
    /// this cycle, or the episode aborts.
    retarget_deadline: Option<u64>,
    wrongpath: bool,
    halt_dispatched: bool,
    pending_recovery: Option<(u64, u32)>,
    /// Set by a misprediction flush, cleared when dispatch next inserts a
    /// main-thread instruction: the window where an empty RUU is charged
    /// to the post-flush refill rather than generic front-end causes.
    post_flush_refill: bool,
    /// Whether the p-thread issued a memory / any operation during the
    /// previous cycle's issue phase (read by this cycle's commit-slot
    /// classification, which runs first).
    pth_issued_mem_last: bool,
    pth_issued_any_last: bool,
    /// Per-d-load episode outcomes.
    episode_tally: HashMap<u32, EpisodeTally>,
    cycle: u64,
    next_seq: u64,
    last_commit_cycle: u64,
    halted: bool,

    /// Counters.
    pub stats: CoreStats,
    /// Optional episode trace (see [`Core::enable_trace`]).
    trace: Option<Trace>,
}

const DEADLOCK_CYCLES: u64 = 200_000;

/// Cycles an in-progress episode may wait for its d-load to be refetched
/// after an IFQ flush before it is abandoned.
const RETARGET_WINDOW: u64 = 512;

impl<'p> Core<'p> {
    /// Build a core for `binary` under `cfg`. A binary with an empty
    /// p-thread table (or `cfg.spear == None`) behaves as the baseline
    /// superscalar.
    pub fn new(binary: &'p SpearBinary, cfg: CoreConfig) -> Core<'p> {
        let program = &binary.program;
        let mut marked_pcs = vec![false; program.len()];
        let mut dload_idx = HashMap::new();
        if cfg.spear.is_some() {
            for (i, e) in binary.table.entries.iter().enumerate() {
                dload_idx.insert(e.dload_pc, i);
                for &m in &e.members {
                    if let Some(slot) = marked_pcs.get_mut(m as usize) {
                        *slot = true;
                    }
                }
            }
        }
        let fus_pth = cfg.separate_fu.then(|| FuPool::new(&cfg));
        Core {
            spear: cfg.spear,
            predictor: Predictor::new(cfg.bpred),
            ifq: Ifq::new(cfg.ifq_size),
            fetch_pc: program.entry,
            fetch_ready_at: 0,
            fetch_halted: false,
            last_fetch_block: None,
            regs: RegFile::new(),
            commit_regs: RegFile::new(),
            mem: Memory::from_image(&program.data),
            pth_regs: RegFile::new(),
            pth_overlay: HashMap::new(),
            entries: HashMap::new(),
            main_order: VecDeque::new(),
            pth_order: VecDeque::new(),
            consumers: HashMap::new(),
            ready_main: BTreeSet::new(),
            ready_pth: BTreeSet::new(),
            stores_main: Vec::new(),
            stores_pth: Vec::new(),
            rename_main: [None; NUM_REGS],
            rename_pth: [None; NUM_REGS],
            fus: FuPool::new(&cfg),
            fus_pth,
            hier: Hierarchy::new(cfg.hier),
            mode: Mode::Normal,
            episode_start: 0,
            episode_extracted: 0,
            retarget_deadline: None,
            wrongpath: false,
            halt_dispatched: false,
            pending_recovery: None,
            post_flush_refill: false,
            pth_issued_mem_last: false,
            pth_issued_any_last: false,
            episode_tally: HashMap::new(),
            cycle: 0,
            next_seq: 1,
            last_commit_cycle: 0,
            halted: false,
            stats: CoreStats::default(),
            trace: None,
            program,
            pt_entries: &binary.table.entries,
            marked_pcs,
            dload_idx,
            cfg,
        }
    }

    /// Run until the program halts or a budget is hit.
    pub fn run(&mut self, max_cycles: u64, max_insts: u64) -> Result<RunResult, SimError> {
        while !self.halted {
            if self.cycle >= max_cycles {
                return Ok(self.finish(RunExit::CycleBudget));
            }
            if self.stats.committed >= max_insts {
                return Ok(self.finish(RunExit::InstBudget));
            }
            self.step_cycle()?;
        }
        Ok(self.finish(RunExit::Halted))
    }

    /// Advance one cycle.
    pub fn step_cycle(&mut self) -> Result<(), SimError> {
        self.cycle += 1;
        self.stats.cycles = self.cycle;
        self.commit();
        self.writeback();
        self.update_mode();
        self.issue();
        let pe_used = self.pe_extract();
        self.dispatch(pe_used)?;
        self.fetch();
        // Stream the cache-line fills this cycle produced (only when a
        // trace sink is attached; the hierarchy log is off otherwise).
        if let Some(t) = &mut self.trace {
            if t.has_sink() {
                let cycle = self.cycle;
                for f in self.hier.drain_fills() {
                    t.stream(Event::Fill {
                        cycle,
                        block_addr: f.block_addr,
                        latency: f.latency,
                        pthread: f.pthread,
                    });
                }
            }
        }
        if self.cycle - self.last_commit_cycle > DEADLOCK_CYCLES && !self.halted {
            return Err(SimError::Deadlock { cycle: self.cycle });
        }
        Ok(())
    }

    fn finish(&mut self, exit: RunExit) -> RunResult {
        // Prefetches still unclaimed when the run ends never helped
        // anyone — close the timely/late/useless partition.
        self.hier.drain_pending_prefetches();
        self.stats.bpred = self.predictor.stats;
        self.stats.l1d = self.hier.l1d.stats;
        self.stats.l2 = self.hier.l2.stats;
        self.stats.l1d_main_misses = self.hier.pc_misses.total();
        self.stats.l1d_pthread_misses = self.hier.pthread_misses;
        self.stats.useful_prefetches = self.hier.useful_prefetches;
        self.stats.late_prefetches = self.hier.late_prefetches;
        // Per-d-load effectiveness profiles, one row per p-thread table
        // entry, sorted by static PC.
        let mut pcs: Vec<u32> = self.dload_idx.keys().copied().collect();
        pcs.sort_unstable();
        self.stats.dload_profiles = pcs
            .into_iter()
            .map(|pc| {
                let p = self.hier.dload_profile(pc);
                let t = self.episode_tally.get(&pc).copied().unwrap_or_default();
                DloadProfile {
                    dload_pc: pc,
                    demand_misses: self.hier.pc_misses.get(pc),
                    episodes_triggered: t.triggered,
                    episodes_completed: t.completed,
                    episodes_aborted: t.aborted,
                    pthread_loads: p.pthread_loads,
                    timely_prefetches: p.timely,
                    late_prefetches: p.late,
                    useless_prefetches: p.useless,
                }
            })
            .collect();
        if let Some(t) = &mut self.trace {
            t.flush();
        }
        RunResult {
            exit,
            stats: self.stats.clone(),
        }
    }

    /// Committed architectural register state (for differential tests).
    pub fn commit_regs(&self) -> &RegFile {
        &self.commit_regs
    }

    /// Instructions committed so far (for lockstep differential tests
    /// that advance a golden interpreter between cycles).
    pub fn committed(&self) -> u64 {
        self.stats.committed
    }

    /// Functional memory image (equals architectural memory at halt).
    pub fn memory(&self) -> &Memory {
        &self.mem
    }

    /// Architectural checksum comparable with
    /// `spear_exec::Interp::state_checksum`.
    pub fn state_checksum(&self) -> u64 {
        self.commit_regs
            .checksum()
            .rotate_left(17)
            .wrapping_add(self.mem.checksum())
    }

    /// The cache hierarchy (miss statistics).
    pub fn hierarchy(&self) -> &Hierarchy {
        &self.hier
    }

    /// Mutable hierarchy access, for seeding warm cache contents from a
    /// checkpoint before the first cycle (see `spear-campaign`).
    pub fn hierarchy_mut(&mut self) -> &mut Hierarchy {
        &mut self.hier
    }

    /// Mutable predictor access, for seeding warm branch-predictor state
    /// from a checkpoint before the first cycle.
    pub fn predictor_mut(&mut self) -> &mut Predictor {
        &mut self.predictor
    }

    /// Seed a freshly built core with a mid-program architectural state:
    /// both register files (dispatch-order and commit-order start equal —
    /// nothing is in flight), the memory image, and the fetch PC. The
    /// cycle counter and statistics stay at zero, so a subsequent
    /// [`Core::run`] measures exactly the restored region: the interval's
    /// instruction budget is simply `max_insts` and the exact-slot CPI
    /// invariant holds over the interval on its own.
    ///
    /// Panics if called after simulation has started — mid-flight restore
    /// is not a supported operation (checkpoints are quiesced states).
    pub fn restore_arch_state(&mut self, regs: &RegFile, mem: Memory, pc: u32) {
        assert_eq!(
            self.cycle, 0,
            "architectural restore must precede the first simulated cycle"
        );
        assert_eq!(
            mem.len(),
            self.mem.len(),
            "restored memory image must match the program's data size"
        );
        self.regs = regs.clone();
        self.commit_regs = regs.clone();
        self.mem = mem;
        self.fetch_pc = pc;
    }

    /// Current IFQ occupancy (observability for viewers/tests).
    pub fn ifq_len(&self) -> usize {
        self.ifq.len()
    }

    /// Main-thread RUU occupancy.
    pub fn ruu_len(&self) -> usize {
        self.main_order.len()
    }

    /// P-thread RUU occupancy.
    pub fn pthread_ruu_len(&self) -> usize {
        self.pth_order.len()
    }

    /// Short name of the SPEAR front-end state ("normal", "drain",
    /// "copy", "preexec").
    pub fn mode_name(&self) -> &'static str {
        match self.mode {
            Mode::Normal => "normal",
            Mode::DrainWait { .. } => "drain",
            Mode::CopyLiveIns { .. } => "copy",
            Mode::PreExec { .. } => "preexec",
        }
    }

    /// Cycles simulated so far.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// True once the program's `halt` has committed.
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// Keep a bounded log of SPEAR front-end events (trigger, live-in
    /// copy, extraction, episode end, flush).
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace = Some(Trace::new(capacity));
    }

    /// Stream every trace event — the episode events plus high-volume
    /// pipeline events (per-instruction commits, cache-line fills) — as
    /// one JSON object per line to `sink`. Composes with
    /// [`Core::enable_trace`]; without it, only the sink sees events
    /// (the in-memory ring stays empty).
    pub fn set_trace_sink(&mut self, sink: Box<dyn std::io::Write + Send>) {
        let t = self.trace.get_or_insert_with(|| Trace::new(0));
        t.set_sink(sink);
        self.hier.enable_fill_log();
    }

    /// The recorded trace, if enabled.
    pub fn trace(&self) -> Option<&Trace> {
        self.trace.as_ref()
    }

    #[inline]
    fn trace_event(&mut self, f: impl FnOnce(u64) -> Event) {
        if let Some(t) = &mut self.trace {
            let cycle = self.cycle;
            t.record(f(cycle));
        }
    }

    /// Like [`Core::trace_event`] but sink-only, for per-instruction
    /// pipeline events too frequent for the bounded ring.
    #[inline]
    fn stream_event(&mut self, f: impl FnOnce(u64) -> Event) {
        if let Some(t) = &mut self.trace {
            if t.has_sink() {
                let cycle = self.cycle;
                t.stream(f(cycle));
            }
        }
    }

    // =================================================================
    // Commit
    // =================================================================

    fn commit(&mut self) {
        let width = self.cfg.commit_width;
        let mut budget = width;
        let mut halted_now = false;
        while budget > 0 {
            let Some(&seq) = self.main_order.front() else {
                break;
            };
            let e = &self.entries[&seq];
            if e.state != EState::Done {
                break;
            }
            let e = self.entries.remove(&seq).expect("front entry exists");
            self.main_order.pop_front();
            self.consumers.remove(&seq);
            debug_assert_eq!(e.seq, seq);
            debug_assert!(!e.wrong_path, "wrong-path entry reached commit");
            if let Some((r, v)) = e.dst_val {
                self.commit_regs.write_u64(r, v);
            }
            self.stats.committed += 1;
            self.last_commit_cycle = self.cycle;
            if e.inst.op.is_load() {
                self.stats.committed_loads += 1;
            }
            if e.inst.op.is_store() {
                self.stats.committed_stores += 1;
            }
            if e.inst.op.is_ctrl() {
                self.stats.committed_branches += 1;
            }
            budget -= 1;
            let pc = e.pc;
            self.stream_event(|cycle| Event::Commit { cycle, pc });
            if e.is_halt {
                self.halted = true;
                halted_now = true;
                break;
            }
        }
        // CPI-stack slot accounting: every cycle has `width` commit
        // slots; the unused ones are charged to exactly one cause, so
        // `useful_slots + lost == cycles * width` holds strictly.
        let used = (width - budget) as u64;
        self.stats.cycle_account.useful_slots += used;
        let lost = budget as u64;
        if lost > 0 {
            let cause = if halted_now {
                // The program is over; the rest of the final cycle's
                // slots have nothing left to commit.
                StallCause::FrontendOther
            } else {
                self.classify_commit_stall()
            };
            self.stats.cycle_account.charge(cause, lost);
        }
        if halted_now {
            return;
        }
        // P-thread retirement (does not consume main commit bandwidth: the
        // p-thread writes no architectural state, its "retire" just frees
        // the RUU entry).
        while let Some(&seq) = self.pth_order.front() {
            if self.entries[&seq].state != EState::Done {
                break;
            }
            let e = self.entries.remove(&seq).expect("front entry exists");
            self.pth_order.pop_front();
            self.consumers.remove(&seq);
            if e.is_trigger_dload {
                if let Mode::PreExec { dload_pc, .. } = self.mode {
                    self.mode = Mode::Normal;
                    self.stats.preexec_completed += 1;
                    self.episode_tally.entry(dload_pc).or_default().completed += 1;
                    self.record_episode_end();
                    self.trace_event(|cycle| Event::EpisodeComplete { cycle });
                }
            }
        }
    }

    /// Attribute this cycle's lost commit slots to one cause, judged from
    /// the commit head (or the front-end state when the window is empty).
    /// The head is never `Waiting`: its producers are older, hence
    /// already completed.
    fn classify_commit_stall(&self) -> StallCause {
        if let Some(&head) = self.main_order.front() {
            let e = &self.entries[&head];
            if self.pending_recovery.is_some_and(|(b, _)| b == head) {
                // Commit is blocked on the unresolved mispredicted
                // branch itself.
                return StallCause::BranchRecovery;
            }
            match e.state {
                EState::Executing => {
                    if e.mem_missed {
                        StallCause::DloadMiss
                    } else {
                        StallCause::FuBusy
                    }
                }
                EState::Ready => {
                    // Dispatched after the most recent issue phase: the
                    // head never had an issue opportunity — pipeline
                    // refill, not contention.
                    if e.dispatch_cycle + 1 >= self.cycle {
                        StallCause::FrontendOther
                    } else if e.inst.op.is_mem() {
                        if self.pth_issued_mem_last {
                            StallCause::PthreadContention
                        } else {
                            StallCause::MemPortContention
                        }
                    } else if self.pth_issued_any_last {
                        StallCause::PthreadContention
                    } else {
                        StallCause::FuBusy
                    }
                }
                // Waiting/Done heads are unreachable here (producers are
                // older; Done would have committed) — keep the stack
                // total correct regardless.
                EState::Waiting | EState::Done => StallCause::FrontendOther,
            }
        } else if self.post_flush_refill {
            StallCause::IfqEmptyAfterFlush
        } else if self.cycle <= self.fetch_ready_at {
            StallCause::IcacheStall
        } else {
            StallCause::FrontendOther
        }
    }

    // =================================================================
    // Writeback + misprediction recovery
    // =================================================================

    fn writeback(&mut self) {
        let now = self.cycle;
        let mut completed: Vec<u64> = Vec::new();
        for (&seq, e) in self.entries.iter_mut() {
            if e.state == EState::Executing && e.complete_at <= now {
                e.state = EState::Done;
                completed.push(seq);
            }
        }
        completed.sort_unstable();
        for seq in completed {
            if let Some(consumers) = self.consumers.get(&seq) {
                for &c in consumers.clone().iter() {
                    if let Some(ce) = self.entries.get_mut(&c) {
                        ce.pending = ce.pending.saturating_sub(1);
                        if ce.pending == 0 && ce.state == EState::Waiting {
                            ce.state = EState::Ready;
                            match ce.thread {
                                Thread::Main => self.ready_main.insert(c),
                                Thread::Pthread => self.ready_pth.insert(c),
                            };
                        }
                    }
                }
            }
            // Completed stores no longer gate younger loads.
            self.stores_main.retain(|&(s, _, _)| s != seq);
            self.stores_pth.retain(|&(s, _, _)| s != seq);
        }
        // Fire the (single) pending recovery if its branch has resolved.
        if let Some((bseq, target)) = self.pending_recovery {
            if self
                .entries
                .get(&bseq)
                .is_some_and(|e| e.state == EState::Done)
            {
                self.recover(bseq, target);
            }
        }
    }

    fn recover(&mut self, branch_seq: u64, target: u32) {
        self.stats.recoveries += 1;
        // Squash main-thread entries younger than the branch. The p-thread
        // is an independent hardware context: its in-flight instructions
        // only prefetch, so front-end recovery does not touch them.
        let squash: Vec<u64> = self
            .entries
            .iter()
            .filter(|(&s, e)| s > branch_seq && e.thread == Thread::Main)
            .map(|(&s, _)| s)
            .collect();
        for s in &squash {
            self.entries.remove(s);
            self.consumers.remove(s);
        }
        self.stats.squashed += squash.len() as u64;
        self.main_order.retain(|s| !squash.contains(s));
        self.ready_main.retain(|s| *s <= branch_seq);
        self.stores_main.retain(|&(s, _, _)| s <= branch_seq);
        for r in self.rename_main.iter_mut() {
            if r.is_some_and(|s| s > branch_seq) {
                *r = None;
            }
        }
        // Flush the front end and restart at the true target.
        self.ifq.flush();
        self.fetch_pc = target;
        self.fetch_ready_at = self.cycle + 1;
        self.fetch_halted = false;
        self.last_fetch_block = None;
        self.predictor.recover();
        self.wrongpath = false;
        self.pending_recovery = None;
        self.post_flush_refill = true;
        // An active SPEAR episode loses its IFQ entries, including the
        // remembered trigger d-load entry. Paper behaviour: the episode
        // dies with the queue. With the `rearm_after_flush` extension the
        // p-thread context survives and the PD re-arms the trigger onto
        // the next fetched instance of the same static d-load (abandoned
        // if none shows up within the deadline).
        if self.mode != Mode::Normal {
            if self.spear.is_some_and(|sp| sp.rearm_after_flush) {
                self.retarget_deadline = Some(self.cycle + RETARGET_WINDOW);
            } else {
                if let Some(pc) = self.mode_dload_pc() {
                    self.episode_tally.entry(pc).or_default().aborted += 1;
                }
                self.mode = Mode::Normal;
                self.stats.preexec_aborted_flush += 1;
                self.record_episode_end();
                self.trace_event(|cycle| Event::EpisodeAborted {
                    cycle,
                    reason: AbortReason::Flush,
                });
            }
        }
        self.trace_event(|cycle| Event::Flush {
            cycle,
            redirect_pc: target,
        });
    }

    // =================================================================
    // SPEAR mode transitions
    // =================================================================

    fn update_mode(&mut self) {
        if let Some(deadline) = self.retarget_deadline {
            if self.cycle > deadline {
                self.retarget_deadline = None;
                if self.mode != Mode::Normal {
                    if let Some(pc) = self.mode_dload_pc() {
                        self.episode_tally.entry(pc).or_default().aborted += 1;
                    }
                    self.mode = Mode::Normal;
                    self.stats.preexec_aborted_flush += 1;
                    self.record_episode_end();
                }
            }
        }
        match self.mode.clone() {
            Mode::DrainWait {
                dload_seq,
                dload_pc,
                pt_idx,
                deadline,
            } => {
                let drained = self.pt_entries[pt_idx].live_ins.iter().all(|r| {
                    match self.rename_main[r.index()] {
                        None => true,
                        Some(p) => self.entries.get(&p).is_none_or(|e| e.state == EState::Done),
                    }
                });
                if drained || self.cycle >= deadline {
                    let n = self.pt_entries[pt_idx].live_ins.len() as u32;
                    let per = self.spear.as_ref().map_or(1, |s| s.livein_cycles_per_reg);
                    self.mode = Mode::CopyLiveIns {
                        remaining: n * per,
                        dload_seq,
                        dload_pc,
                        pt_idx,
                    };
                }
            }
            Mode::CopyLiveIns {
                remaining,
                dload_seq,
                dload_pc,
                pt_idx,
            } => {
                if remaining > 0 {
                    self.stats.livein_copy_cycles += 1;
                    self.mode = Mode::CopyLiveIns {
                        remaining: remaining - 1,
                        dload_seq,
                        dload_pc,
                        pt_idx,
                    };
                } else {
                    // Copy each live-in's *freshest completed* value: the
                    // youngest completed in-flight writer's result (read
                    // from its physical register), else the committed
                    // architectural value. In-flight-but-incomplete
                    // writers have no forwardable value yet.
                    let entry = &self.pt_entries[pt_idx];
                    self.pth_regs = RegFile::new();
                    for &r in &entry.live_ins {
                        self.pth_regs.write_u64(r, self.freshest_value(r));
                    }
                    self.pth_overlay.clear();
                    self.rename_pth = [None; NUM_REGS];
                    self.ifq.reset_scan();
                    let n = entry.live_ins.len();
                    self.trace_event(|cycle| Event::LiveInsCopied { cycle, count: n });
                    self.mode = Mode::PreExec {
                        dload_seq,
                        dload_pc,
                        extraction_done: false,
                    };
                }
            }
            Mode::Normal | Mode::PreExec { .. } => {}
        }
    }

    // =================================================================
    // Issue
    // =================================================================

    fn issue(&mut self) {
        self.pth_issued_mem_last = false;
        self.pth_issued_any_last = false;
        let mut budget = self.cfg.issue_width;
        // Scheduling priority (§3.3, "the instructions from the p-thread
        // are selected for execution first") applies to the p-thread's
        // *memory operations* — the prefetches that are the point of
        // pre-execution — capped at its share of the issue width. Its
        // compute operations fill whatever functional-unit slots the main
        // thread leaves idle, so a compute-heavy slice cannot starve the
        // main thread on a scarce unit (see DESIGN.md).
        let pth_cap = self
            .spear
            .and_then(|sp| sp.pthread_issue_cap)
            .unwrap_or(usize::MAX)
            .min(budget);
        let full_priority = self.spear.is_some_and(|sp| sp.full_priority);
        let mut pth_used = 0;
        let pth: Vec<u64> = self.ready_pth.iter().copied().collect();
        for &seq in &pth {
            if pth_used >= pth_cap {
                break;
            }
            let is_mem = self.entries[&seq].inst.op.is_mem();
            if !full_priority && !is_mem {
                continue;
            }
            if self.try_issue(seq, Thread::Pthread) {
                pth_used += 1;
                budget -= 1;
                self.pth_issued_any_last = true;
                if is_mem {
                    self.pth_issued_mem_last = true;
                }
            }
        }
        let main: Vec<u64> = self.ready_main.iter().copied().collect();
        for seq in main {
            if budget == 0 {
                break;
            }
            if self.try_issue(seq, Thread::Main) {
                budget -= 1;
            }
        }
        for &seq in &pth {
            if budget == 0 || pth_used >= pth_cap {
                break;
            }
            if self
                .entries
                .get(&seq)
                .is_none_or(|e| e.inst.op.is_mem() || e.state != EState::Ready)
            {
                continue;
            }
            if self.try_issue(seq, Thread::Pthread) {
                pth_used += 1;
                budget -= 1;
                self.pth_issued_any_last = true;
            }
        }
    }

    fn try_issue(&mut self, seq: u64, thread: Thread) -> bool {
        let now = self.cycle;
        let e = self.entries.get(&seq).expect("ready entry exists");
        let class = e.inst.op.fu_class();
        let is_sqrt = e.inst.op == Opcode::Fsqrt;
        let is_mem = e.inst.op.is_mem();
        let (eff_addr, pc, wrong_path, is_store) =
            (e.eff_addr, e.pc, e.wrong_path, e.inst.op.is_store());
        let dload_owner = e.dload_owner;

        // Latency: memory ops ask the hierarchy; the rest use class
        // latencies. Wrong-path memory ops are charged an L1 hit and do
        // not disturb the caches.
        let occupy: u64;
        let latency: u64;
        if is_mem {
            occupy = 1;
            latency = if wrong_path {
                self.hier.latency.l1_hit as u64
            } else if let Some(eff) = eff_addr {
                let kind = if is_store {
                    AccessKind::Write
                } else {
                    AccessKind::Read
                };
                // The cache access happens at issue; peek the FU first so
                // a rejected issue does not touch the cache.
                let pool = match (thread, &mut self.fus_pth) {
                    (Thread::Pthread, Some(p)) => p,
                    _ => &mut self.fus,
                };
                if !pool.acquire(class, now, 1) {
                    return false;
                }
                let is_pth = thread == Thread::Pthread;
                if is_pth {
                    self.hier.set_prefetch_owner(dload_owner);
                }
                let l1_hit = self.hier.latency.l1_hit;
                let acc = self.hier.access_data(eff, kind, pc, is_pth, now);
                let e = self.entries.get_mut(&seq).expect("entry exists");
                e.state = EState::Executing;
                e.complete_at = now + acc.latency as u64;
                // Anything slower than an L1 hit (true miss or a delayed
                // hit merging into an in-flight fill) counts as an
                // outstanding-miss cause for the CPI stack.
                e.mem_missed = acc.latency > l1_hit;
                match thread {
                    Thread::Main => self.ready_main.remove(&seq),
                    Thread::Pthread => self.ready_pth.remove(&seq),
                };
                return true;
            } else {
                // A memory op with no resolved address (never on the true
                // path): treat as an L1 hit.
                self.hier.latency.l1_hit as u64
            };
        } else {
            latency = self.cfg.lat.for_class(class, is_sqrt) as u64;
            occupy = match class {
                FuClass::IntDiv | FuClass::FpDiv => latency,
                _ => 1,
            };
        }

        let pool = match (thread, &mut self.fus_pth) {
            (Thread::Pthread, Some(p)) => p,
            _ => &mut self.fus,
        };
        if !pool.acquire(class, now, occupy) {
            return false;
        }
        let e = self.entries.get_mut(&seq).expect("entry exists");
        e.state = EState::Executing;
        e.complete_at = now + latency.max(1);
        match thread {
            Thread::Main => self.ready_main.remove(&seq),
            Thread::Pthread => self.ready_pth.remove(&seq),
        };
        true
    }

    // =================================================================
    // PE extraction (p-thread dispatch)
    // =================================================================

    fn pe_extract(&mut self) -> usize {
        let Mode::PreExec {
            dload_seq,
            dload_pc,
            extraction_done,
        } = self.mode
        else {
            return 0;
        };
        if extraction_done {
            return 0;
        }
        let Some(spear) = self.spear else { return 0 };
        let pth_cap = spear.pthread_ruu_size;
        let mut used = 0;
        while used < spear.pe_bandwidth {
            if self.pth_order.len() >= pth_cap {
                break;
            }
            let Some(entry) = self.ifq.extract_next_marked() else {
                break;
            };
            used += 1;
            let is_trigger = entry.seq == dload_seq;
            let pc = entry.pc;
            self.episode_extracted += 1;
            self.trace_event(|cycle| Event::Extract {
                cycle,
                pc,
                is_trigger,
            });
            self.dispatch_pthread(&entry, is_trigger);
            if is_trigger {
                if let Mode::PreExec { .. } = self.mode {
                    self.mode = Mode::PreExec {
                        dload_seq,
                        dload_pc,
                        extraction_done: true,
                    };
                }
                break;
            }
        }
        used
    }

    fn dispatch_pthread(&mut self, fetched: &IfqEntry, is_trigger: bool) {
        let owner = self.mode_dload_pc();
        // Functional execution against the p-thread context. Faulting
        // speculative accesses are simply dropped (no fault is ever raised
        // architecturally by the p-thread).
        let mut view = PthreadView {
            overlay: &mut self.pth_overlay,
            mem: &self.mem,
        };
        let outcome = exec_inst(&fetched.inst, fetched.pc, &mut self.pth_regs, &mut view);
        let eff_addr = match outcome {
            Ok(o) => o.eff_addr,
            Err(_) => {
                self.stats.pthread_faults += 1;
                if is_trigger {
                    // The episode cannot prefetch its own d-load; give up.
                    if let Some(pc) = owner {
                        self.episode_tally.entry(pc).or_default().aborted += 1;
                    }
                    self.mode = Mode::Normal;
                    self.stats.preexec_aborted_missed += 1;
                    self.record_episode_end();
                    self.trace_event(|cycle| Event::EpisodeAborted {
                        cycle,
                        reason: AbortReason::Fault,
                    });
                }
                return;
            }
        };
        let seq = self.next_seq;
        self.next_seq += 1;
        self.stats.pthread_insts += 1;
        if fetched.inst.op.is_load() {
            self.stats.pthread_loads += 1;
        }
        let mut deps: Vec<u64> = Vec::new();
        for src in fetched.inst.live_srcs() {
            if let Some(p) = self.rename_pth[src.index()] {
                if self
                    .entries
                    .get(&p)
                    .is_some_and(|pe| pe.state != EState::Done)
                {
                    deps.push(p);
                }
            }
        }
        if fetched.inst.op.is_load() {
            if let Some(addr) = eff_addr {
                let w = fetched.inst.op.mem_width() as u64;
                for &(sseq, saddr, swidth) in &self.stores_pth {
                    if addr < saddr + swidth as u64 && saddr < addr + w {
                        deps.push(sseq);
                    }
                }
            }
        }
        deps.sort_unstable();
        deps.dedup();
        if let Some(d) = fetched.inst.dst() {
            self.rename_pth[d.index()] = Some(seq);
        }
        if fetched.inst.op.is_store() {
            if let Some(addr) = eff_addr {
                self.stores_pth
                    .push((seq, addr, fetched.inst.op.mem_width()));
            }
        }
        let pending = deps.len() as u32;
        for d in &deps {
            self.consumers.entry(*d).or_default().push(seq);
        }
        let state = if pending == 0 {
            EState::Ready
        } else {
            EState::Waiting
        };
        if state == EState::Ready {
            self.ready_pth.insert(seq);
        }
        self.entries.insert(
            seq,
            RuuEntry {
                seq,
                thread: Thread::Pthread,
                pc: fetched.pc,
                inst: fetched.inst,
                state,
                pending,
                complete_at: 0,
                eff_addr,
                wrong_path: false,
                is_halt: false,
                is_trigger_dload: is_trigger,
                dst_val: None,
                dispatch_cycle: self.cycle,
                mem_missed: false,
                dload_owner: owner,
            },
        );
        self.pth_order.push_back(seq);
    }

    // =================================================================
    // Main-thread dispatch
    // =================================================================

    fn dispatch(&mut self, pe_used: usize) -> Result<(), SimError> {
        let mut budget = self.cfg.decode_width.saturating_sub(pe_used);
        while budget > 0 {
            if self.main_order.len() >= self.cfg.ruu_size {
                // Auxiliary counter (not part of the slot-cause sum): the
                // window blocked dispatch while work was waiting.
                if !self.ifq.is_empty() {
                    self.stats.cycle_account.ruu_full_cycles += 1;
                }
                break;
            }
            let Some(front) = self.ifq.front() else { break };
            let front_seq = front.seq;
            let front_marked = front.marked;
            let e = self.ifq.pop_front().expect("front exists");
            budget -= 1;

            // A marked instruction consumed by main decode while the PE is
            // active was missed; if it is the triggering d-load, the
            // episode can never finish — abort it.
            match self.mode {
                Mode::PreExec {
                    dload_seq,
                    dload_pc,
                    extraction_done,
                } => {
                    if front_marked {
                        self.stats.missed_extractions += 1;
                    }
                    if !extraction_done && front_seq == dload_seq {
                        self.retarget_or_abort(dload_pc);
                    }
                }
                Mode::DrainWait {
                    dload_seq,
                    dload_pc,
                    ..
                }
                | Mode::CopyLiveIns {
                    dload_seq,
                    dload_pc,
                    ..
                } => {
                    if front_seq == dload_seq {
                        self.retarget_or_abort(dload_pc);
                    }
                }
                Mode::Normal => {}
            }

            self.dispatch_main(e)?;
        }
        Ok(())
    }

    fn dispatch_main(&mut self, fetched: IfqEntry) -> Result<(), SimError> {
        self.post_flush_refill = false;
        let seq = self.next_seq;
        self.next_seq += 1;
        let wrong_path = self.wrongpath || self.halt_dispatched;
        let mut eff_addr = None;
        let mut is_halt = false;
        let mut dst_val = None;

        if !wrong_path {
            let outcome = exec_inst(&fetched.inst, fetched.pc, &mut self.regs, &mut self.mem)
                .map_err(|fault| {
                    SimError::Exec(ExecError::Mem {
                        pc: fetched.pc,
                        fault,
                    })
                })?;
            eff_addr = outcome.eff_addr;
            if let Some(d) = fetched.inst.dst() {
                dst_val = Some((d, self.regs.read_u64(d)));
            }
            if fetched.inst.op.is_ctrl() {
                self.predictor.update(
                    fetched.pc,
                    &fetched.inst,
                    outcome.taken.unwrap_or(true),
                    outcome.next_pc,
                    Some(fetched.pred),
                );
                if fetched.pred.next_pc != outcome.next_pc {
                    self.wrongpath = true;
                    self.pending_recovery = Some((seq, outcome.next_pc));
                }
            }
            if outcome.halted {
                is_halt = true;
                self.halt_dispatched = true;
            }
        }

        let mut deps: Vec<u64> = Vec::new();
        for src in fetched.inst.live_srcs() {
            if let Some(p) = self.rename_main[src.index()] {
                if self
                    .entries
                    .get(&p)
                    .is_some_and(|pe| pe.state != EState::Done)
                {
                    deps.push(p);
                }
            }
        }
        if fetched.inst.op.is_load() && !wrong_path {
            if let Some(addr) = eff_addr {
                let w = fetched.inst.op.mem_width() as u64;
                for &(sseq, saddr, swidth) in &self.stores_main {
                    if addr < saddr + swidth as u64 && saddr < addr + w {
                        deps.push(sseq);
                    }
                }
            }
        }
        deps.sort_unstable();
        deps.dedup();
        if let Some(d) = fetched.inst.dst() {
            self.rename_main[d.index()] = Some(seq);
        }
        if fetched.inst.op.is_store() && !wrong_path {
            if let Some(addr) = eff_addr {
                self.stores_main
                    .push((seq, addr, fetched.inst.op.mem_width()));
            }
        }
        let pending = deps.len() as u32;
        for d in &deps {
            self.consumers.entry(*d).or_default().push(seq);
        }
        let state = if pending == 0 {
            EState::Ready
        } else {
            EState::Waiting
        };
        if state == EState::Ready {
            self.ready_main.insert(seq);
        }
        self.entries.insert(
            seq,
            RuuEntry {
                seq,
                thread: Thread::Main,
                pc: fetched.pc,
                inst: fetched.inst,
                state,
                pending,
                complete_at: 0,
                eff_addr,
                wrong_path,
                is_halt,
                is_trigger_dload: false,
                dst_val,
                dispatch_cycle: self.cycle,
                mem_missed: false,
                dload_owner: None,
            },
        );
        self.main_order.push_back(seq);
        Ok(())
    }

    // =================================================================
    // Fetch + pre-decode
    // =================================================================

    fn fetch(&mut self) {
        if self.fetch_halted || self.cycle < self.fetch_ready_at {
            return;
        }
        let block_bytes = self.hier.l1i.geometry().block_bytes as u64;
        for _ in 0..self.cfg.fetch_width {
            if self.ifq.is_full() {
                break;
            }
            let pc = self.fetch_pc;
            let Some(&inst) = self.program.fetch(pc) else {
                // Runaway (wrong-path) PC: nothing to fetch until redirect.
                break;
            };
            // Instruction cache: charged once per block transition.
            let addr = Program::inst_addr(pc);
            let block = addr / block_bytes;
            if self.last_fetch_block != Some(block) {
                let acc = self.hier.access_inst(addr);
                self.last_fetch_block = Some(block);
                if acc.latency > self.hier.latency.l1_hit {
                    // Miss: stall fetch; the line is filled, so the retry
                    // hits.
                    self.fetch_ready_at = self.cycle + acc.latency as u64;
                    break;
                }
            }
            let pred = self.predictor.predict(pc, &inst);
            let seq = self.next_fetch_seq();
            self.stats.fetched += 1;
            let marked = self.marked_pcs.get(pc as usize).copied().unwrap_or(false);
            let dload = self.dload_idx.get(&pc).copied();
            self.ifq.push(IfqEntry {
                seq,
                pc,
                inst,
                pred,
                marked,
                is_dload: dload.is_some(),
            });
            // PD: d-load detection may trigger pre-execution (§3.2), or
            // re-arm a flush-orphaned episode onto this fresh instance.
            if let Some(pt_idx) = dload {
                let threshold = self
                    .spear
                    .map(|sp| (self.ifq.capacity() as f64 * sp.trigger_fraction) as usize)
                    .unwrap_or(usize::MAX);
                if self.retarget_deadline.is_some() && self.mode_dload_pc() == Some(pc) {
                    // Re-arm only once the queue again holds enough slack
                    // for the refetched instance to be worth chasing.
                    if self.ifq.len() >= threshold {
                        self.rearm_trigger(seq);
                    }
                } else {
                    self.consider_trigger(seq, pt_idx);
                }
            }
            if inst.op == Opcode::Halt {
                self.fetch_halted = true;
                break;
            }
            self.fetch_pc = pred.next_pc;
            // A predicted-taken transfer ends the fetch cycle.
            if pred.next_pc != pc + 1 {
                break;
            }
        }
    }

    /// Fetch-sequence numbers share the dispatch counter's namespace but
    /// must order *fetch* time; we reserve a unique number per fetched
    /// instruction by bumping the same counter (dispatch re-numbers for
    /// the RUU, so only uniqueness and monotonicity matter here).
    fn next_fetch_seq(&mut self) -> u64 {
        let s = self.next_seq;
        self.next_seq += 1;
        s
    }

    fn consider_trigger(&mut self, ifq_seq: u64, pt_idx: usize) {
        let Some(spear) = self.spear else { return };
        if self.mode != Mode::Normal {
            self.stats.triggers_ignored_busy += 1;
            return;
        }
        let threshold = (self.ifq.capacity() as f64 * spear.trigger_fraction) as usize;
        if self.ifq.len() < threshold {
            self.stats.triggers_rejected_occupancy += 1;
            return;
        }
        let dload_pc = self.pt_entries[pt_idx].dload_pc;
        let deadline = self.cycle + spear.livein_wait_limit as u64;
        let occupancy = self.ifq.len();
        self.mode = Mode::DrainWait {
            dload_seq: ifq_seq,
            dload_pc,
            pt_idx,
            deadline,
        };
        self.stats.triggers_accepted += 1;
        self.episode_tally.entry(dload_pc).or_default().triggered += 1;
        self.episode_start = self.cycle;
        self.episode_extracted = 0;
        self.trace_event(|cycle| Event::Trigger {
            cycle,
            dload_pc,
            occupancy,
        });
    }

    /// The freshest forwardable value of register `r`: the youngest
    /// *completed* in-flight writer's result, falling back to the
    /// committed architectural value. If the youngest dispatched writer
    /// has completed this equals the dispatch-point value.
    fn freshest_value(&self, r: spear_isa::Reg) -> u64 {
        for &seq in self.main_order.iter().rev() {
            let e = &self.entries[&seq];
            if let Some((dst, v)) = e.dst_val {
                if dst == r {
                    if e.state == EState::Done {
                        return v;
                    }
                    // Younger-but-incomplete writer: keep looking for an
                    // older completed one.
                    continue;
                }
            }
        }
        self.commit_regs.read_u64(r)
    }

    /// Record the episode-duration and extraction histograms at episode
    /// end (completion or abort).
    fn record_episode_end(&mut self) {
        let dur = self.cycle.saturating_sub(self.episode_start);
        self.stats.episode_cycles.record(dur);
        self.stats
            .episode_extractions
            .record(self.episode_extracted);
    }

    /// The static d-load PC of the active episode, if any.
    fn mode_dload_pc(&self) -> Option<u32> {
        match self.mode {
            Mode::DrainWait { dload_pc, .. }
            | Mode::CopyLiveIns { dload_pc, .. }
            | Mode::PreExec { dload_pc, .. } => Some(dload_pc),
            Mode::Normal => None,
        }
    }

    /// Re-arm a flush-orphaned episode onto a freshly fetched instance of
    /// its d-load.
    fn rearm_trigger(&mut self, seq: u64) {
        self.retarget_deadline = None;
        self.stats.preexec_retargets += 1;
        match self.mode {
            Mode::DrainWait {
                dload_pc,
                pt_idx,
                deadline,
                ..
            } => {
                self.mode = Mode::DrainWait {
                    dload_seq: seq,
                    dload_pc,
                    pt_idx,
                    deadline,
                };
            }
            Mode::CopyLiveIns {
                remaining,
                dload_pc,
                pt_idx,
                ..
            } => {
                self.mode = Mode::CopyLiveIns {
                    remaining,
                    dload_seq: seq,
                    dload_pc,
                    pt_idx,
                };
            }
            Mode::PreExec {
                dload_pc,
                extraction_done,
                ..
            } => {
                // If the d-load was already extracted the episode is just
                // waiting for retirement; no re-arm needed.
                if !extraction_done {
                    self.mode = Mode::PreExec {
                        dload_seq: seq,
                        dload_pc,
                        extraction_done,
                    };
                }
            }
            Mode::Normal => {}
        }
    }

    /// The main thread decoded the episode's triggering d-load before the
    /// PE could extract it. Paper behaviour: the episode aborts. With the
    /// `retarget_missed` extension the trigger logic re-targets the
    /// youngest still-marked instance of the same static d-load in the
    /// IFQ instead.
    fn retarget_or_abort(&mut self, dload_pc: u32) {
        if !self.spear.is_some_and(|sp| sp.retarget_missed) {
            self.episode_tally.entry(dload_pc).or_default().aborted += 1;
            self.mode = Mode::Normal;
            self.stats.preexec_aborted_missed += 1;
            self.record_episode_end();
            self.trace_event(|cycle| Event::EpisodeAborted {
                cycle,
                reason: AbortReason::MissedTrigger,
            });
            return;
        }
        let newest = self
            .ifq
            .iter()
            .filter(|e| e.is_dload && e.pc == dload_pc && e.marked)
            .map(|e| e.seq)
            .max();
        match newest {
            Some(seq) => match self.mode {
                Mode::DrainWait {
                    pt_idx, deadline, ..
                } => {
                    self.mode = Mode::DrainWait {
                        dload_seq: seq,
                        dload_pc,
                        pt_idx,
                        deadline,
                    };
                }
                Mode::CopyLiveIns {
                    remaining, pt_idx, ..
                } => {
                    self.mode = Mode::CopyLiveIns {
                        remaining,
                        dload_seq: seq,
                        dload_pc,
                        pt_idx,
                    };
                }
                Mode::PreExec {
                    extraction_done, ..
                } => {
                    self.mode = Mode::PreExec {
                        dload_seq: seq,
                        dload_pc,
                        extraction_done,
                    };
                }
                Mode::Normal => {}
            },
            None => {
                self.episode_tally.entry(dload_pc).or_default().aborted += 1;
                self.mode = Mode::Normal;
                self.stats.preexec_aborted_missed += 1;
                self.record_episode_end();
            }
        }
    }
}
