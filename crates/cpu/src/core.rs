//! The simulator façade: the per-cycle stage loop over a
//! [`crate::pipeline::Pipeline`] driven by a pluggable front-end
//! extension.
//!
//! # Pipeline model
//!
//! `fetch → pre-decode/IFQ → decode/rename/dispatch → issue → execute →
//! writeback → commit`, modelled execution-driven in the `sim-outorder`
//! style:
//!
//! * **Execute-at-dispatch oracle timing.** True-path main-context
//!   instructions execute functionally (via [`spear_exec::exec_inst`] — the
//!   same semantics as the golden model) in program order at dispatch;
//!   the rest of the pipeline provides timing. Branch outcomes are thus
//!   known at dispatch; *recovery timing* is charged at the branch's
//!   writeback, and the machine fetches and dispatches real wrong-path
//!   instructions in between (they consume resources but never execute
//!   functionally and never touch the D-cache).
//! * **Stores update the functional memory image at dispatch** (in program
//!   order), with commit-order architectural state reconstructed in
//!   `commit_regs` for live-in copies and final-state checks.
//!
//! The stages live in [`crate::stage`] as free functions over the shared
//! pipeline state; everything SPEAR-specific lives in [`crate::spear`]
//! behind the [`crate::frontend::FrontEndExt`] trait. A binary with
//! `cfg.spear == None` runs the no-op [`BaselineFrontEnd`] and behaves as
//! the baseline superscalar.

use crate::config::CoreConfig;
use crate::ctx::{MAIN_CTX, PTHREAD_CTX};
use crate::frontend::{BaselineFrontEnd, FrontEndExt};
use crate::pipeline::Pipeline;
use crate::spear::SpearFrontEnd;
use crate::stage;
use crate::stats::{CoreStats, RunExit};
use crate::trace::{Event, Trace};
use spear_bpred::Predictor;
use spear_exec::{ExecError, Memory, RegFile};
use spear_isa::SpearBinary;
use spear_mem::Hierarchy;

/// Simulation errors — all indicate workload or harness bugs, not
/// architectural events.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The main thread's functional execution faulted.
    Exec(ExecError),
    /// No main-thread instruction committed for a long time.
    Deadlock {
        /// Cycle at which the watchdog fired.
        cycle: u64,
    },
    /// The trace-replay instruction source could not supply the
    /// committed path (exhausted, diverged, or unreplayable record).
    Trace(String),
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Exec(e) => write!(f, "functional execution failed: {e}"),
            SimError::Deadlock { cycle } => write!(f, "pipeline deadlock at cycle {cycle}"),
            SimError::Trace(msg) => write!(f, "trace replay failed: {msg}"),
        }
    }
}

impl std::error::Error for SimError {}

/// Result of a completed run.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Why the run stopped.
    pub exit: RunExit,
    /// All counters.
    pub stats: CoreStats,
}

const DEADLOCK_CYCLES: u64 = 200_000;

/// The simulator: shared pipeline state plus the front-end extension
/// driving its speculative contexts.
pub struct Core<'p> {
    pipe: Pipeline<'p>,
    fe: Box<dyn FrontEndExt + 'p>,
}

impl<'p> Core<'p> {
    /// Build a core for `binary` under `cfg`. A binary with an empty
    /// p-thread table (or `cfg.spear == None`) behaves as the baseline
    /// superscalar.
    pub fn new(binary: &'p SpearBinary, cfg: CoreConfig) -> Core<'p> {
        let source = Box::new(crate::source::ProgramSource::new(&binary.program));
        Core::with_source(binary, cfg, source)
    }

    /// Build a core whose instruction supply is an explicit
    /// [`crate::source::ExecSource`] — e.g. a
    /// [`crate::source::TraceSource`] replaying a recorded `.spt`
    /// committed path. `binary` must be the source's own image (for a
    /// trace, the binary embedded in the trace file): it seeds the entry
    /// PC, the initial data image, and the SPEAR p-thread table.
    pub fn with_source(
        binary: &'p SpearBinary,
        cfg: CoreConfig,
        source: Box<dyn crate::source::ExecSource + 'p>,
    ) -> Core<'p> {
        let fe: Box<dyn FrontEndExt + 'p> = match cfg.spear {
            Some(sp) => {
                assert!(
                    cfg.num_contexts > PTHREAD_CTX.0,
                    "the SPEAR front end needs a speculative context"
                );
                Box::new(SpearFrontEnd::new(
                    sp,
                    &binary.table.entries,
                    binary.program.len(),
                ))
            }
            None => Box::new(BaselineFrontEnd),
        };
        let is_spear = cfg.spear.is_some();
        let mut pipe = Pipeline::with_source(&binary.program, source, cfg);
        if is_spear {
            // Pre-size the hierarchy's per-d-load profile map: the key
            // set is exactly the table's d-load PCs, so seeding it here
            // keeps the hot classification paths from ever rehashing.
            pipe.hier
                .seed_dload_profiles(binary.table.entries.iter().map(|e| e.dload_pc));
        }
        Core { pipe, fe }
    }

    /// Run until the program halts or a budget is hit.
    pub fn run(&mut self, max_cycles: u64, max_insts: u64) -> Result<RunResult, SimError> {
        while !self.pipe.halted {
            if self.pipe.cycle >= max_cycles {
                return Ok(self.finish(RunExit::CycleBudget));
            }
            if self.pipe.stats.committed >= max_insts {
                return Ok(self.finish(RunExit::InstBudget));
            }
            self.step_cycle()?;
        }
        Ok(self.finish(RunExit::Halted))
    }

    /// Advance one cycle: commit → writeback → front-end update → issue →
    /// extraction → dispatch → fetch.
    pub fn step_cycle(&mut self) -> Result<(), SimError> {
        let pipe = &mut self.pipe;
        let fe = self.fe.as_mut();
        pipe.cycle += 1;
        pipe.stats.cycles = pipe.cycle;
        stage::commit::run(pipe, fe);
        stage::writeback::run(pipe, fe);
        fe.update(pipe);
        stage::issue::run(pipe);
        let port = fe.extract(pipe);
        stage::dispatch::run(pipe, fe, port)?;
        stage::fetch::run(pipe, fe);
        // Stream the cache-line fills this cycle produced (only when a
        // trace sink is attached; the hierarchy log is off otherwise).
        if let Some(t) = &mut pipe.trace {
            if t.has_sink() {
                let cycle = pipe.cycle;
                for f in pipe.hier.drain_fills() {
                    t.stream(Event::Fill {
                        cycle,
                        block_addr: f.block_addr,
                        latency: f.latency,
                        pthread: f.pthread,
                        ctx: if f.pthread { PTHREAD_CTX.0 } else { MAIN_CTX.0 },
                    });
                }
            }
        }
        // End-of-cycle observability hook: counter samples and window
        // boundaries. One branch when disabled.
        if pipe.obs.is_some() {
            crate::obs::on_cycle_end(pipe);
        }
        if pipe.cycle - pipe.last_commit_cycle > DEADLOCK_CYCLES && !pipe.halted {
            return Err(SimError::Deadlock { cycle: pipe.cycle });
        }
        Ok(())
    }

    fn finish(&mut self, exit: RunExit) -> RunResult {
        let pipe = &mut self.pipe;
        // Close the in-progress partial telemetry window (before the
        // stats are cloned) so windows partition the run exactly.
        if pipe.obs.is_some() {
            crate::obs::on_run_end(pipe);
        }
        // Prefetches still unclaimed when the run ends never helped
        // anyone — close the timely/late/useless partition.
        pipe.hier.drain_pending_prefetches();
        pipe.stats.bpred = pipe.predictor.stats;
        pipe.stats.bpred_detail = pipe.predictor.detail();
        pipe.stats.l1d = pipe.hier.l1d.stats;
        pipe.stats.l2 = pipe.hier.l2.stats;
        pipe.stats.l1d_main_misses = pipe.hier.pc_misses.total();
        pipe.stats.l1d_pthread_misses = pipe.hier.pthread_misses;
        pipe.stats.useful_prefetches = pipe.hier.useful_prefetches;
        pipe.stats.late_prefetches = pipe.hier.late_prefetches;
        pipe.stats.dload_profiles = self.fe.harvest_profiles(&pipe.hier);
        if let Some(t) = &mut pipe.trace {
            t.flush();
        }
        RunResult {
            exit,
            stats: pipe.stats.clone(),
        }
    }

    /// All counters.
    pub fn stats(&self) -> &CoreStats {
        &self.pipe.stats
    }

    /// Committed architectural register state (for differential tests).
    pub fn commit_regs(&self) -> &RegFile {
        &self.pipe.commit_regs
    }

    /// Instructions committed so far (for lockstep differential tests
    /// that advance a golden interpreter between cycles).
    pub fn committed(&self) -> u64 {
        self.pipe.stats.committed
    }

    /// Functional memory image (equals architectural memory at halt).
    pub fn memory(&self) -> &Memory {
        &self.pipe.mem
    }

    /// Architectural checksum comparable with
    /// `spear_exec::Interp::state_checksum`.
    pub fn state_checksum(&self) -> u64 {
        self.pipe
            .commit_regs
            .checksum()
            .rotate_left(17)
            .wrapping_add(self.pipe.mem.checksum())
    }

    /// The cache hierarchy (miss statistics).
    pub fn hierarchy(&self) -> &Hierarchy {
        &self.pipe.hier
    }

    /// Mutable hierarchy access, for seeding warm cache contents from a
    /// checkpoint before the first cycle (see `spear-campaign`).
    pub fn hierarchy_mut(&mut self) -> &mut Hierarchy {
        &mut self.pipe.hier
    }

    /// Mutable predictor access, for seeding warm branch-predictor state
    /// from a checkpoint before the first cycle.
    pub fn predictor_mut(&mut self) -> &mut Predictor {
        &mut self.pipe.predictor
    }

    /// Seed a freshly built core with a mid-program architectural state:
    /// both register files (dispatch-order and commit-order start equal —
    /// nothing is in flight), the memory image, and the fetch PC. The
    /// cycle counter and statistics stay at zero, so a subsequent
    /// [`Core::run`] measures exactly the restored region: the interval's
    /// instruction budget is simply `max_insts` and the exact-slot CPI
    /// invariant holds over the interval on its own.
    ///
    /// Panics if called after simulation has started — mid-flight restore
    /// is not a supported operation (checkpoints are quiesced states).
    pub fn restore_arch_state(&mut self, regs: &RegFile, mem: Memory, pc: u32) {
        assert_eq!(
            self.pipe.cycle, 0,
            "architectural restore must precede the first simulated cycle"
        );
        assert_eq!(
            mem.len(),
            self.pipe.mem.len(),
            "restored memory image must match the program's data size"
        );
        self.pipe.ctxs[MAIN_CTX.0].regs = regs.clone();
        self.pipe.commit_regs = regs.clone();
        self.pipe.mem = mem;
        self.pipe.fetch.pc = pc;
    }

    /// Current IFQ occupancy (observability for viewers/tests).
    pub fn ifq_len(&self) -> usize {
        self.pipe.ifq.len()
    }

    /// Main-context RUU occupancy.
    pub fn ruu_len(&self) -> usize {
        self.pipe.main_ctx().order.len()
    }

    /// P-thread-context RUU occupancy.
    pub fn pthread_ruu_len(&self) -> usize {
        self.pipe
            .ctxs
            .get(PTHREAD_CTX.0)
            .map_or(0, |c| c.order.len())
    }

    /// Short name of the front-end state ("normal", or the active phase
    /// and its target context, e.g. "preexec@ctx1").
    pub fn mode_name(&self) -> String {
        self.fe.mode_name()
    }

    /// Short label of the instruction supply ("program", "trace").
    pub fn source_name(&self) -> &'static str {
        self.pipe.source.name()
    }

    /// The instruction supply's replay cursor: true-path instructions
    /// its oracle has consumed (dispatch-order, so ≥ `committed()`).
    pub fn source_cursor(&self) -> u64 {
        self.pipe.source.cursor()
    }

    /// Cycles simulated so far.
    pub fn cycle(&self) -> u64 {
        self.pipe.cycle
    }

    /// True once the program's `halt` has committed.
    pub fn halted(&self) -> bool {
        self.pipe.halted
    }

    /// Keep a bounded log of SPEAR front-end events (trigger, live-in
    /// copy, extraction, episode end, flush).
    pub fn enable_trace(&mut self, capacity: usize) {
        self.pipe.trace = Some(Trace::new(capacity));
    }

    /// Stream every trace event — the episode events plus high-volume
    /// pipeline events (per-instruction commits, cache-line fills) — as
    /// one JSON object per line to `sink`. Composes with
    /// [`Core::enable_trace`]; without it, only the sink sees events
    /// (the in-memory ring stays empty).
    pub fn set_trace_sink(&mut self, sink: Box<dyn std::io::Write + Send>) {
        let t = self.pipe.trace.get_or_insert_with(|| Trace::new(0));
        t.set_sink(sink);
        self.pipe.hier.enable_fill_log();
    }

    /// The recorded trace, if enabled.
    pub fn trace(&self) -> Option<&Trace> {
        self.pipe.trace.as_ref()
    }

    /// Collect per-instruction pipeline lifecycle records (and counter
    /// samples) for the Konata/Perfetto exporters, retaining at most
    /// `cap` of each.
    pub fn enable_lifecycle(&mut self, cap: usize) {
        self.pipe
            .obs
            .get_or_insert_with(Default::default)
            .enable_lifecycle(cap);
    }

    /// Accumulate windowed interval telemetry into
    /// [`CoreStats::windows`], closing a window every `len` cycles (and
    /// streaming each closed window to the trace sink, if one is
    /// attached).
    pub fn enable_windows(&mut self, len: u64) {
        self.pipe
            .obs
            .get_or_insert_with(Default::default)
            .enable_windows(len);
    }

    /// The observability state (lifecycle records, counter samples), if
    /// enabled.
    pub fn obs(&self) -> Option<&crate::obs::Obs> {
        self.pipe.obs.as_deref()
    }
}
