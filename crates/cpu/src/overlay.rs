//! The speculative store overlay: a chunked sparse byte store.
//!
//! Speculative contexts isolate their stores in a private overlay so
//! pre-execution can only prefetch, never change semantic state. The
//! overlay used to be a `HashMap<u64, u8>` — one SipHash probe *per
//! byte* on every p-thread load and store. [`Overlay`] keeps the same
//! byte-granular semantics on a page-granular layout: bytes live in
//! 64-byte chunks (a presence bitmask plus the data), and chunks are
//! found through a small open-addressed index keyed by chunk base
//! address. Episodes clear the overlay constantly
//! ([`crate::ctx::HwContext::reset_spec_state`]); `clear` keeps both
//! the chunk storage and the index allocation, so steady-state episodes
//! allocate nothing.

const CHUNK_BYTES: u64 = 64;
const EMPTY: u32 = u32::MAX;

/// One 64-byte span of overlaid bytes.
#[derive(Clone, Debug)]
struct Chunk {
    /// Chunk base address (multiple of 64).
    base: u64,
    /// Bit `i` set ⇔ byte `base + i` is present.
    present: u64,
    /// The overlaid bytes (valid where `present` is set).
    data: [u8; CHUNK_BYTES as usize],
}

/// A sparse byte store over 64-byte chunks with an open-addressed
/// chunk index. Matches the observable behavior of a `HashMap<u64, u8>`
/// byte map: `get` returns a byte only if it was `insert`ed since the
/// last `clear`.
#[derive(Clone, Debug)]
pub struct Overlay {
    chunks: Vec<Chunk>,
    /// Open-addressed index: slot → chunk number (or `EMPTY`).
    /// Power-of-two sized, linear probing, grown at 50% load.
    index: Vec<u32>,
}

impl Default for Overlay {
    fn default() -> Overlay {
        Overlay::new()
    }
}

impl Overlay {
    /// An empty overlay.
    pub fn new() -> Overlay {
        Overlay {
            chunks: Vec::new(),
            index: vec![EMPTY; 16],
        }
    }

    /// Number of overlaid bytes.
    pub fn len(&self) -> usize {
        self.chunks
            .iter()
            .map(|c| c.present.count_ones() as usize)
            .sum()
    }

    /// True when no byte is overlaid.
    pub fn is_empty(&self) -> bool {
        self.chunks.is_empty()
    }

    /// Drop every overlaid byte, keeping chunk and index capacity.
    pub fn clear(&mut self) {
        self.chunks.clear();
        self.index.fill(EMPTY);
    }

    #[inline]
    fn slot_of(&self, base: u64) -> usize {
        // Multiplicative hash; the index length is a power of two.
        let h = base.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        (h >> 32) as usize & (self.index.len() - 1)
    }

    /// The chunk number holding `base`, if indexed.
    #[inline]
    fn find(&self, base: u64) -> Option<u32> {
        let mask = self.index.len() - 1;
        let mut slot = self.slot_of(base);
        loop {
            match self.index[slot] {
                EMPTY => return None,
                c if self.chunks[c as usize].base == base => return Some(c),
                _ => slot = (slot + 1) & mask,
            }
        }
    }

    /// The overlaid byte at `addr`, if present.
    #[inline]
    pub fn get(&self, addr: u64) -> Option<u8> {
        let base = addr & !(CHUNK_BYTES - 1);
        let c = &self.chunks[self.find(base)? as usize];
        let bit = (addr & (CHUNK_BYTES - 1)) as u32;
        (c.present >> bit & 1 == 1).then(|| c.data[bit as usize])
    }

    /// Overlay `value` at `addr`.
    pub fn insert(&mut self, addr: u64, value: u8) {
        let base = addr & !(CHUNK_BYTES - 1);
        let bit = (addr & (CHUNK_BYTES - 1)) as u32;
        let c = match self.find(base) {
            Some(c) => c as usize,
            None => self.insert_chunk(base),
        };
        let chunk = &mut self.chunks[c];
        chunk.present |= 1u64 << bit;
        chunk.data[bit as usize] = value;
    }

    /// Add an empty chunk for `base` to the index, growing it at 50%
    /// load, and return the chunk number.
    fn insert_chunk(&mut self, base: u64) -> usize {
        if (self.chunks.len() + 1) * 2 > self.index.len() {
            self.grow();
        }
        let c = self.chunks.len() as u32;
        self.chunks.push(Chunk {
            base,
            present: 0,
            data: [0; CHUNK_BYTES as usize],
        });
        let mask = self.index.len() - 1;
        let mut slot = self.slot_of(base);
        while self.index[slot] != EMPTY {
            slot = (slot + 1) & mask;
        }
        self.index[slot] = c;
        c as usize
    }

    fn grow(&mut self) {
        let new_len = self.index.len() * 2;
        self.index.clear();
        self.index.resize(new_len, EMPTY);
        let mask = new_len - 1;
        for (c, chunk) in self.chunks.iter().enumerate() {
            let mut slot = {
                let h = chunk.base.wrapping_mul(0x9E37_79B9_7F4A_7C15);
                (h >> 32) as usize & mask
            };
            while self.index[slot] != EMPTY {
                slot = (slot + 1) & mask;
            }
            self.index[slot] = c as u32;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_are_present_only_after_insert() {
        let mut o = Overlay::new();
        assert!(o.is_empty());
        assert_eq!(o.get(0x40), None);
        o.insert(0x40, 7);
        assert_eq!(o.get(0x40), Some(7));
        assert_eq!(o.get(0x41), None, "neighbor byte in the same chunk");
        o.insert(0x40, 9);
        assert_eq!(o.get(0x40), Some(9), "insert overwrites");
        assert_eq!(o.len(), 1);
    }

    #[test]
    fn clear_empties_but_keeps_working() {
        let mut o = Overlay::new();
        for a in 0..300u64 {
            o.insert(a * 7, a as u8);
        }
        assert_eq!(o.len(), 300);
        o.clear();
        assert!(o.is_empty());
        assert_eq!(o.get(7), None);
        o.insert(7, 1);
        assert_eq!(o.get(7), Some(1));
    }

    #[test]
    fn matches_hashmap_reference_across_many_chunks() {
        use std::collections::HashMap;
        let mut o = Overlay::new();
        let mut m: HashMap<u64, u8> = HashMap::new();
        let mut x = 0x1234_5678_u64;
        for i in 0..5000u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let addr = x % 10_000;
            o.insert(addr, i as u8);
            m.insert(addr, i as u8);
        }
        for a in 0..10_000u64 {
            assert_eq!(o.get(a), m.get(&a).copied(), "addr {a}");
        }
        assert_eq!(o.len(), m.len());
    }
}
