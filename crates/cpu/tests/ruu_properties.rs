//! Property-based tests of the slab RUU ([`spear_cpu::ruu::Ruu`]) and
//! its intrusive consumer lists against a plain `HashMap` reference
//! model — the data structure the slab replaced — under random
//! interleavings of insert, wakeup-edge recording, completion (wake +
//! retire), squash and stale-id probing.

use proptest::prelude::*;
use spear_cpu::pipeline::{EState, RuuEntry};
use spear_cpu::ruu::{Ruu, SeqId};
use spear_cpu::MAIN_CTX;
use spear_isa::reg::{R0, R1};
use spear_isa::{Inst, Opcode};
use std::collections::{BTreeMap, HashMap};

#[derive(Clone, Debug)]
enum Op {
    /// Dispatch a fresh entry (globally unique seq).
    Insert,
    /// Record a wakeup edge producer -> consumer (both picked among the
    /// live entries by index).
    AddConsumer(usize, usize),
    /// Complete a live entry: wake its consumers, then retire it.
    Complete(usize),
    /// Squash a live entry (no wakeup — its edges die with it).
    Squash(usize),
    /// Probe a previously removed id: it must miss even if the slot was
    /// since recycled.
    StaleProbe(usize),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => Just(Op::Insert),
        3 => (any::<usize>(), any::<usize>()).prop_map(|(p, c)| Op::AddConsumer(p, c)),
        2 => any::<usize>().prop_map(Op::Complete),
        2 => any::<usize>().prop_map(Op::Squash),
        1 => any::<usize>().prop_map(Op::StaleProbe),
    ]
}

fn entry(seq: u64) -> RuuEntry {
    RuuEntry {
        seq,
        ctx: MAIN_CTX,
        pc: 0,
        inst: Inst::new(Opcode::Addi, R1, R0, R0, 1),
        state: EState::Waiting,
        pending: 0,
        complete_at: 0,
        eff_addr: None,
        wrong_path: false,
        is_halt: false,
        is_trigger_dload: false,
        dst_val: None,
        dispatch_cycle: 0,
        mem_missed: false,
        dload_owner: None,
        fetch_cycle: 0,
        issue_cycle: 0,
        episode: 0,
    }
}

/// The reference: the `HashMap` pair the scheduler used before the slab.
#[derive(Default)]
struct RefModel {
    /// seq -> (state, pending). `BTreeMap` so iteration order is the
    /// sequence order ordered id containers must reproduce.
    entries: BTreeMap<u64, (EState, u32)>,
    /// producer seq -> consumer seqs.
    edges: HashMap<u64, Vec<u64>>,
}

/// Pick the `i`-th live seq (model iteration order), if any.
fn pick(model: &RefModel, i: usize) -> Option<u64> {
    if model.entries.is_empty() {
        return None;
    }
    model.entries.keys().nth(i % model.entries.len()).copied()
}

proptest! {
    /// After every op the slab agrees with the reference model on: the
    /// live key set, each entry's state and pending count, each
    /// producer's consumer list, and sequence ordering of ids. Stale
    /// ids (squashed or retired, slot possibly recycled) always miss.
    #[test]
    fn slab_matches_hashmap_reference(ops in proptest::collection::vec(arb_op(), 0..400)) {
        let mut ruu = Ruu::new();
        let mut model = RefModel::default();
        let mut ids: HashMap<u64, SeqId> = HashMap::new();
        // Every id ever issued: edge lists legitimately keep ids of
        // consumers that have since been squashed or retired (wakeup
        // drops them via the generation check), so the expected lists
        // must be built from the full history, not just the live set.
        let mut all_ids: HashMap<u64, SeqId> = HashMap::new();
        let mut dead: Vec<SeqId> = Vec::new();
        let mut next_seq = 0u64;

        for op in ops {
            match op {
                Op::Insert => {
                    let id = ruu.insert(entry(next_seq));
                    prop_assert_eq!(id.seq, next_seq);
                    model.entries.insert(next_seq, (EState::Waiting, 0));
                    ids.insert(next_seq, id);
                    all_ids.insert(next_seq, id);
                    next_seq += 1;
                }
                Op::AddConsumer(p, c) => {
                    let (Some(ps), Some(cs)) = (pick(&model, p), pick(&model, c)) else {
                        continue;
                    };
                    ruu.add_consumer(ids[&ps], ids[&cs]);
                    model.edges.entry(ps).or_default().push(cs);
                    model.entries.get_mut(&cs).unwrap().1 += 1;
                    ruu.get_mut(ids[&cs]).unwrap().pending += 1;
                }
                Op::Complete(p) => {
                    let Some(ps) = pick(&model, p) else { continue };
                    let id = ids[&ps];
                    // Wake: exactly what stage/writeback.rs does.
                    let consumers = ruu.take_consumers(id);
                    let expected: Vec<SeqId> = model
                        .edges
                        .remove(&ps)
                        .unwrap_or_default()
                        .iter()
                        .map(|s| all_ids[s])
                        .collect();
                    prop_assert_eq!(&consumers, &expected, "edge list for #{}", ps);
                    for &c in &consumers {
                        if let Some(ce) = ruu.get_mut(c) {
                            ce.pending = ce.pending.saturating_sub(1);
                            if ce.pending == 0 && ce.state == EState::Waiting {
                                ce.state = EState::Ready;
                            }
                        }
                        if let Some(m) = model.entries.get_mut(&c.seq) {
                            m.1 = m.1.saturating_sub(1);
                            if m.1 == 0 && m.0 == EState::Waiting {
                                m.0 = EState::Ready;
                            }
                        }
                    }
                    ruu.put_consumers(id, consumers);
                    // Retire.
                    prop_assert!(ruu.remove(id).is_some());
                    model.entries.remove(&ps);
                    ids.remove(&ps);
                    dead.push(id);
                }
                Op::Squash(i) => {
                    let Some(s) = pick(&model, i) else { continue };
                    let id = ids[&s];
                    let removed = ruu.remove(id).expect("live entry");
                    prop_assert_eq!(removed.seq, s);
                    model.entries.remove(&s);
                    model.edges.remove(&s);
                    ids.remove(&s);
                    dead.push(id);
                }
                Op::StaleProbe(i) => {
                    if dead.is_empty() {
                        continue;
                    }
                    let id = dead[i % dead.len()];
                    prop_assert!(ruu.get(id).is_none(), "stale id #{} visible", id.seq);
                    prop_assert!(ruu.remove(id).is_none(), "stale remove removed something");
                    // An edge under a dead producer is unobservable, like
                    // a map insert under a removed key.
                    ruu.add_consumer(id, id);
                }
            }

            // Full-state comparison against the reference.
            prop_assert_eq!(ruu.len(), model.entries.len());
            let mut live: Vec<SeqId> = ruu.iter().map(|(id, _)| id).collect();
            live.sort_unstable();
            let expected: Vec<SeqId> = model.entries.keys().map(|s| ids[s]).collect();
            prop_assert_eq!(&live, &expected, "live id set / sequence order diverged");
            for (&seq, &(state, pending)) in &model.entries {
                let e = ruu.get(ids[&seq]).expect("model entry is live");
                prop_assert_eq!(e.seq, seq);
                prop_assert_eq!(e.state, state, "state of #{}", seq);
                prop_assert_eq!(e.pending, pending, "pending of #{}", seq);
            }
        }
    }
}
