//! Property-based tests of the IFQ's FIFO and extraction invariants under
//! arbitrary interleavings of push / pop / extract / reset / flush.

use proptest::prelude::*;
use spear_bpred::Prediction;
use spear_cpu::ifq::{Ifq, IfqEntry};
use spear_isa::Inst;

#[derive(Clone, Debug)]
enum Op {
    Push { marked: bool },
    Pop,
    Extract,
    ResetScan,
    Flush,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => any::<bool>().prop_map(|marked| Op::Push { marked }),
        2 => Just(Op::Pop),
        2 => Just(Op::Extract),
        1 => Just(Op::ResetScan),
        1 => Just(Op::Flush),
    ]
}

fn entry(seq: u64, marked: bool) -> IfqEntry {
    IfqEntry {
        seq,
        pc: seq as u32,
        inst: Inst::nop(),
        pred: Prediction {
            next_pc: seq as u32 + 1,
            taken: None,
        },
        marked,
        is_dload: false,
        fetch_cycle: 0,
    }
}

proptest! {
    /// Under any op sequence: pops come out in push (seq) order; no entry
    /// is ever extracted twice; extracted entries were pushed marked;
    /// occupancy never exceeds capacity.
    #[test]
    fn fifo_and_extraction_invariants(ops in proptest::collection::vec(arb_op(), 0..300)) {
        let cap = 8;
        let mut q = Ifq::new(cap);
        let mut next_seq = 0u64;
        let mut last_popped: Option<u64> = None;
        let mut extracted = std::collections::HashSet::new();
        let mut pushed_marked = std::collections::HashSet::new();

        for op in ops {
            match op {
                Op::Push { marked } => {
                    if !q.is_full() {
                        if marked {
                            pushed_marked.insert(next_seq);
                        }
                        q.push(entry(next_seq, marked));
                        next_seq += 1;
                    }
                }
                Op::Pop => {
                    if let Some(e) = q.pop_front() {
                        if let Some(prev) = last_popped {
                            prop_assert!(e.seq > prev, "FIFO order violated");
                        }
                        last_popped = Some(e.seq);
                    }
                }
                Op::Extract => {
                    if let Some(e) = q.extract_next_marked() {
                        prop_assert!(
                            extracted.insert(e.seq),
                            "entry {} extracted twice", e.seq
                        );
                        prop_assert!(
                            pushed_marked.contains(&e.seq),
                            "extracted an unmarked entry"
                        );
                    }
                }
                Op::ResetScan => q.reset_scan(),
                Op::Flush => {
                    q.flush();
                    // FIFO ordering restarts after a flush in the sense
                    // that remaining pops still come from later pushes,
                    // which have larger seqs — invariant holds as-is.
                }
            }
            prop_assert!(q.len() <= cap);
        }
    }

    /// Extraction with periodic scan resets still never double-extracts
    /// (the indicator, not the scan position, is the guard).
    #[test]
    fn reset_never_causes_double_extraction(marks in proptest::collection::vec(any::<bool>(), 1..64)) {
        let mut q = Ifq::new(64);
        for (i, &m) in marks.iter().enumerate() {
            q.push(entry(i as u64, m));
        }
        let mut seen = std::collections::HashSet::new();
        for round in 0..4 {
            q.reset_scan();
            while let Some(e) = q.extract_next_marked() {
                prop_assert!(seen.insert(e.seq), "round {round}: {} again", e.seq);
            }
        }
        let expected: usize = marks.iter().filter(|&&m| m).count();
        prop_assert_eq!(seen.len(), expected);
    }
}
