//! Differential fuzzing: random structured programs run through the
//! cycle-level core — baseline and SPEAR with *compiler-generated*
//! p-thread tables — must match the golden interpreter's architectural
//! state exactly. This is the widest net over pipeline corner cases
//! (mispredict recovery under episodes, store/load overlap, halt on the
//! wrong path, p-thread faults, ...).

use proptest::prelude::*;
use spear_compiler::{CompilerConfig, SpearCompiler};
use spear_cpu::{Core, CoreConfig, RunExit};
use spear_exec::Interp;
use spear_isa::asm::Asm;
use spear_isa::reg::*;
use spear_isa::{Program, SpearBinary};

/// Random structured programs: chains of straight-line code, diamonds,
/// counted loops with loads/stores, gathers over a large array, and
/// call/return pairs. Always halts.
fn arb_program() -> impl Strategy<Value = Program> {
    (proptest::collection::vec(0u8..5, 1..7), any::<u64>()).prop_map(|(segments, seed)| {
        let mut a = Asm::new();
        let data: Vec<u64> = (0..512u64).map(|i| i.wrapping_mul(seed | 1)).collect();
        let d = a.alloc_u64("data", &data);
        let big = a.reserve("big", 1 << 20);
        a.li(R10, seed as i64); // accumulator
        a.li(R20, d as i64);
        a.li(R21, big as i64);
        let mut fns = Vec::new();
        for (i, seg) in segments.iter().enumerate() {
            match seg {
                0 => {
                    a.addi(R10, R10, 3);
                    a.muli(R11, R10, 7);
                    a.xor(R10, R10, R11);
                }
                1 => {
                    let t = format!("t{i}");
                    let j = format!("j{i}");
                    a.andi(R11, R10, 3);
                    a.beq(R11, R0, &t);
                    a.addi(R10, R10, 5);
                    a.j(&j);
                    a.label(&t);
                    a.slli(R10, R10, 1);
                    a.label(&j);
                }
                2 => {
                    // Counted loop, sequential loads + stores.
                    let l = format!("l{i}");
                    a.li(R12, 24);
                    a.mv(R13, R20);
                    a.label(&l);
                    a.ld(R14, R13, 0);
                    a.add(R10, R10, R14);
                    a.sd(R10, R13, 8);
                    a.addi(R13, R13, 16);
                    a.addi(R12, R12, -1);
                    a.bne(R12, R0, &l);
                }
                3 => {
                    // Gather loop over the big array (misses →
                    // delinquent loads → real p-threads).
                    let l = format!("g{i}");
                    a.li(R12, 40);
                    a.li(R15, (seed | 1) as i64);
                    a.label(&l);
                    a.muli(R15, R15, 6364136223846793005);
                    a.addi(R15, R15, 1442695040888963407);
                    a.srli(R16, R15, 24);
                    a.andi(R16, R16, (1 << 20) - 8);
                    a.add(R16, R21, R16);
                    a.ld(R17, R16, 0);
                    a.add(R10, R10, R17);
                    a.addi(R12, R12, -1);
                    a.bne(R12, R0, &l);
                }
                _ => {
                    // Call/return pair.
                    let f = format!("f{i}");
                    let over = format!("o{i}");
                    a.jal(R31, &f);
                    a.j(&over);
                    fns.push((f.clone(), i));
                    a.label(&f);
                    a.addi(R10, R10, 11);
                    a.jr(R31);
                    a.label(&over);
                }
            }
        }
        a.halt();
        a.finish().expect("generated program assembles")
    })
}

fn golden(p: &Program) -> (u64, u64) {
    let mut i = Interp::new(p);
    i.run(50_000_000).expect("golden");
    assert!(i.halted);
    (i.icount, i.state_checksum())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn baseline_equivalent_on_random_programs(p in arb_program()) {
        let (icount, checksum) = golden(&p);
        let binary = SpearBinary::plain(p);
        let mut core = Core::new(&binary, CoreConfig::baseline());
        let res = core.run(50_000_000, u64::MAX).expect("sim");
        prop_assert_eq!(res.exit, RunExit::Halted);
        prop_assert_eq!(res.stats.committed, icount);
        prop_assert_eq!(core.state_checksum(), checksum);
    }

    #[test]
    fn spear_equivalent_on_random_programs_with_compiled_tables(p in arb_program()) {
        let (icount, checksum) = golden(&p);
        // Aggressive selection so even small programs get p-threads.
        let mut ccfg = CompilerConfig::default();
        ccfg.slicer.dload_min_misses = 4;
        ccfg.slicer.dload_miss_fraction = 0.0;
        let (binary, _) = SpearCompiler::new(ccfg).compile(&p).expect("compile");
        for cfg in [CoreConfig::spear(128), CoreConfig::spear_sf(256)] {
            let mut core = Core::new(&binary, cfg);
            let res = core.run(50_000_000, u64::MAX).expect("sim");
            prop_assert_eq!(res.exit, RunExit::Halted);
            prop_assert_eq!(res.stats.committed, icount);
            prop_assert_eq!(core.state_checksum(), checksum);
        }
    }

    #[test]
    fn extensions_preserve_equivalence(p in arb_program()) {
        let (icount, checksum) = golden(&p);
        let mut ccfg = CompilerConfig::default();
        ccfg.slicer.dload_min_misses = 4;
        ccfg.slicer.dload_miss_fraction = 0.0;
        let (binary, _) = SpearCompiler::new(ccfg).compile(&p).expect("compile");
        let mut cfg = CoreConfig::spear(128);
        {
            let sp = cfg.spear.as_mut().unwrap();
            sp.rearm_after_flush = true;
            sp.retarget_missed = true;
        }
        let mut core = Core::new(&binary, cfg);
        let res = core.run(50_000_000, u64::MAX).expect("sim");
        prop_assert_eq!(res.exit, RunExit::Halted);
        prop_assert_eq!(res.stats.committed, icount);
        prop_assert_eq!(core.state_checksum(), checksum);
    }
}
