//! Chunk-boundary behavior of the speculative store overlay.
//!
//! The overlay stores bytes in 64-byte chunks with a presence bitmask.
//! These tests pin the two easy-to-break edges: multi-byte stores that
//! straddle two chunks (the store must split per byte, both chunks must
//! be indexed), and read-before-write within a chunk that already exists
//! (bytes whose presence bit is clear must fall through, not read the
//! chunk's zeroed backing array).

use spear_cpu::overlay::Overlay;
use spear_cpu::spear::PthreadView;
use spear_exec::{DataMem, Memory};

const CHUNK: u64 = 64;

// --- Raw overlay: straddling inserts ----------------------------------

#[test]
fn bytes_across_a_chunk_boundary_live_in_two_chunks() {
    let mut o = Overlay::new();
    // Bytes 62..=65 span the chunk-0 / chunk-64 boundary.
    for (i, a) in (62..66u64).enumerate() {
        o.insert(a, 0xA0 + i as u8);
    }
    assert_eq!(o.get(62), Some(0xA0));
    assert_eq!(o.get(63), Some(0xA1), "last byte of the first chunk");
    assert_eq!(o.get(64), Some(0xA2), "first byte of the second chunk");
    assert_eq!(o.get(65), Some(0xA3));
    assert_eq!(o.len(), 4);
    // Neighbors on both sides stay absent.
    assert_eq!(o.get(61), None);
    assert_eq!(o.get(66), None);
}

#[test]
fn presence_is_per_byte_not_per_chunk() {
    let mut o = Overlay::new();
    o.insert(130, 9); // chunk [128, 192) now exists
                      // Every other byte of that chunk must still read as absent even
                      // though the chunk's backing array physically holds zeros for them.
    for a in 128..192u64 {
        if a == 130 {
            assert_eq!(o.get(a), Some(9));
        } else {
            assert_eq!(o.get(a), None, "byte {a} was never written");
        }
    }
}

#[test]
fn straddling_writes_match_a_byte_map_at_every_alignment() {
    use std::collections::HashMap;
    // Sweep 1/2/4/8-byte stores across several chunk boundaries at every
    // offset, mirrored into a plain byte map.
    let mut o = Overlay::new();
    let mut m: HashMap<u64, u8> = HashMap::new();
    let mut val = 0u8;
    for width in [1u64, 2, 4, 8] {
        for start in (CHUNK - 8)..(CHUNK + 8) {
            for base_chunk in [0u64, 3, 7] {
                let addr = base_chunk * CHUNK + start;
                for i in 0..width {
                    val = val.wrapping_add(41);
                    o.insert(addr + i, val);
                    m.insert(addr + i, val);
                }
            }
        }
    }
    for a in 0..10 * CHUNK {
        assert_eq!(o.get(a), m.get(&a).copied(), "addr {a}");
    }
    assert_eq!(o.len(), m.len());
}

#[test]
fn clear_forgets_straddling_state() {
    let mut o = Overlay::new();
    for a in 60..70u64 {
        o.insert(a, 1);
    }
    o.clear();
    for a in 60..70u64 {
        assert_eq!(o.get(a), None);
    }
    // Re-straddling after clear works from scratch.
    o.insert(63, 5);
    o.insert(64, 6);
    assert_eq!(o.get(63), Some(5));
    assert_eq!(o.get(64), Some(6));
    assert_eq!(o.len(), 2);
}

// --- Through the p-thread view: straddling stores and loads -----------

/// A memory image whose byte at address `a` is `a as u8` (recognizable
/// fall-through values).
fn ramp_memory(len: usize) -> Memory {
    Memory::from_bytes((0..len).map(|a| a as u8).collect())
}

#[test]
fn eight_byte_store_straddling_two_chunks_round_trips() {
    let mem = ramp_memory(256);
    let mut overlay = Overlay::new();
    let mut v = PthreadView {
        overlay: &mut overlay,
        mem: &mem,
    };
    // Bytes 60..68: four in chunk [0,64), four in chunk [64,128).
    v.store(60, 8, 0x1122_3344_5566_7788).unwrap();
    assert_eq!(v.load(60, 8).unwrap(), 0x1122_3344_5566_7788);
    // Per-byte little-endian split across the boundary.
    assert_eq!(overlay.get(60), Some(0x88));
    assert_eq!(overlay.get(63), Some(0x55), "last byte of chunk 0");
    assert_eq!(overlay.get(64), Some(0x44), "first byte of chunk 1");
    assert_eq!(overlay.get(67), Some(0x11));
    assert_eq!(overlay.get(59), None);
    assert_eq!(overlay.get(68), None);
    assert_eq!(overlay.len(), 8);
    // The shared image never sees speculative bytes.
    for a in 60..68u64 {
        assert_eq!(mem.peek(a, 1).unwrap(), a, "real memory untouched");
    }
}

#[test]
fn straddling_load_mixes_overlay_and_fallthrough_bytes() {
    let mem = ramp_memory(256);
    let mut overlay = Overlay::new();
    let mut v = PthreadView {
        overlay: &mut overlay,
        mem: &mem,
    };
    // Overlay only the two bytes below the boundary; the load at 62
    // spans 62..70, so bytes 64.. must fall through to the ramp image
    // even though the store created no chunk at 64.
    v.store(62, 2, 0xBBAA).unwrap();
    let got = v.load(62, 8).unwrap();
    let expect = u64::from_le_bytes([0xAA, 0xBB, 64, 65, 66, 67, 68, 69]);
    assert_eq!(got, expect);
}

#[test]
fn read_before_write_falls_through_within_an_existing_chunk() {
    let mem = ramp_memory(256);
    let mut overlay = Overlay::new();
    let mut v = PthreadView {
        overlay: &mut overlay,
        mem: &mem,
    };
    // One byte written in the middle of chunk [64,128).
    v.store(100, 1, 0xEE).unwrap();
    // A wide load covering it: every other byte falls through to the
    // image — the chunk's zeroed backing array must never leak.
    let got = v.load(96, 8).unwrap();
    let expect = u64::from_le_bytes([96, 97, 98, 99, 0xEE, 101, 102, 103]);
    assert_eq!(got, expect);
    // Read-before-write on the untouched half of the chunk.
    assert_eq!(
        v.load(64, 8).unwrap(),
        u64::from_le_bytes([64, 65, 66, 67, 68, 69, 70, 71])
    );
}
