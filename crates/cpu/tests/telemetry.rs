//! Telemetry-layer tests: the CPI-stack slot invariant, per-d-load
//! prefetch profile partitions, JSON round-tripping of the full stats
//! block, and the JSONL trace sink — all on deterministic hand-built
//! programs.

use spear_cpu::{Core, CoreConfig, CoreStats, RunExit};
use spear_isa::asm::Asm;
use spear_isa::pthread::{PThreadEntry, PThreadTable};
use spear_isa::reg::*;
use spear_isa::{Program, SpearBinary};
use std::io::Write;
use std::sync::{Arc, Mutex};

fn run_core(binary: &SpearBinary, cfg: CoreConfig) -> spear_cpu::RunResult {
    let mut core = Core::new(binary, cfg);
    core.run(50_000_000, u64::MAX).expect("simulation error")
}

/// Pointer chase over a shuffled ring: one guaranteed miss per iteration.
fn pointer_chase(nodes: usize, steps: i64) -> Program {
    let mut a = Asm::new();
    let stride = 97u64;
    let mut bytes = vec![0u8; nodes * 64];
    for i in 0..nodes {
        let next = (((i as u64 + stride) % nodes as u64) * 64) % (nodes as u64 * 64);
        bytes[i * 64..i * 64 + 8].copy_from_slice(&next.to_le_bytes());
    }
    let base = a.alloc_bytes("ring", &bytes);
    a.li(R1, base as i64);
    a.li(R2, steps);
    a.li(R4, base as i64);
    a.label("loop");
    a.ld(R3, R1, 0);
    a.add(R1, R4, R3);
    a.addi(R2, R2, -1);
    a.bne(R2, R0, "loop");
    a.halt();
    a.finish().unwrap()
}

/// Indexed gather with a hand-built p-thread table (same shape as the
/// pipeline tests): the d-load misses on nearly every iteration.
fn gather_spear(x_elems: usize, iters: usize) -> SpearBinary {
    let mut a = Asm::new();
    let idx: Vec<u64> = (0..iters)
        .map(|i| {
            let mut v = i as u64 + 0x9E37;
            v ^= v << 13;
            v ^= v >> 7;
            v ^= v << 17;
            v % x_elems as u64
        })
        .collect();
    let xs: Vec<u64> = (0..x_elems as u64).map(|i| i * 7 + 3).collect();
    let idx_base = a.alloc_u64("idx", &idx);
    let x_base = a.alloc_u64("x", &xs);
    a.li(R1, idx_base as i64);
    a.li(R2, x_base as i64);
    a.li(R3, iters as i64);
    a.li(R4, 0);
    a.li(R8, 3);
    a.label("loop");
    a.ld(R5, R1, 0);
    a.slli(R6, R5, 3);
    a.add(R6, R2, R6);
    a.ld(R7, R6, 0); // THE d-load
    a.add(R4, R4, R7);
    a.mul(R9, R4, R8);
    a.mul(R9, R9, R8);
    a.mul(R9, R9, R8);
    a.mul(R9, R9, R8);
    a.xor(R4, R4, R9);
    a.addi(R1, R1, 8);
    a.addi(R3, R3, -1);
    a.bne(R3, R0, "loop");
    a.halt();
    let program = a.finish().unwrap();
    let loop_pc = *program.labels.get("loop").unwrap();
    let table = PThreadTable {
        entries: vec![PThreadEntry {
            dload_pc: loop_pc + 3,
            members: vec![loop_pc, loop_pc + 1, loop_pc + 2, loop_pc + 3, loop_pc + 10],
            live_ins: vec![R1, R2],
            ..Default::default()
        }],
    };
    let b = SpearBinary { program, table };
    b.validate().expect("hand-built table is consistent");
    b
}

/// The slot invariant that makes the CPI stack trustworthy.
fn assert_slot_invariant(stats: &CoreStats, commit_width: usize) {
    let acct = &stats.cycle_account;
    assert_eq!(
        acct.useful_slots + acct.lost_slots(),
        stats.cycles * commit_width as u64,
        "every commit slot of every cycle must be accounted exactly once"
    );
    assert_eq!(
        acct.useful_slots, stats.committed,
        "useful slots are exactly the committed instructions"
    );
}

#[test]
fn cpi_stack_invariant_holds_on_baseline() {
    let cfg = CoreConfig::baseline();
    let width = cfg.commit_width;
    let res = run_core(&SpearBinary::plain(pointer_chase(4096, 3000)), cfg);
    assert_eq!(res.exit, RunExit::Halted);
    assert_slot_invariant(&res.stats, width);
    // A pointer chase is memory-bound: the d-load-miss bucket must
    // dominate the stack.
    let acct = &res.stats.cycle_account;
    assert!(
        acct.dload_miss > acct.lost_slots() / 2,
        "pointer chase should lose most slots to d-load misses: {acct:?}"
    );
    assert!(acct.branch_recovery > 0 || res.stats.recoveries == 0);
}

#[test]
fn cpi_stack_invariant_holds_under_spear() {
    let b = gather_spear(1 << 16, 4000);
    let cfg = CoreConfig::spear(128);
    let width = cfg.commit_width;
    let res = run_core(&b, cfg);
    assert_eq!(res.exit, RunExit::Halted);
    assert_slot_invariant(&res.stats, width);
    assert!(
        res.stats.cycle_account.dload_miss > 0,
        "the gather still has miss stalls"
    );
}

#[test]
fn spear_recovers_dload_miss_slot_cycles() {
    // The observability tentpole's point: the SPEAR speedup on a
    // memory-bound kernel shows up as a *smaller d-load-miss bucket*,
    // not just a bigger IPC.
    let b = gather_spear(1 << 16, 4000);
    let base = run_core(
        &SpearBinary::plain(b.program.clone()),
        CoreConfig::baseline(),
    );
    let spear = run_core(&b, CoreConfig::spear(128));
    assert!(
        spear.stats.cycle_account.dload_miss < base.stats.cycle_account.dload_miss,
        "pre-execution must shrink the d-load-miss bucket: base {} -> spear {}",
        base.stats.cycle_account.dload_miss,
        spear.stats.cycle_account.dload_miss
    );
}

#[test]
fn dload_profiles_partition_and_match_globals() {
    let b = gather_spear(1 << 16, 4000);
    let res = run_core(&b, CoreConfig::spear(128));
    let profiles = &res.stats.dload_profiles;
    assert_eq!(profiles.len(), 1, "one static d-load in the table");
    let p = &profiles[0];
    assert_eq!(
        p.timely_prefetches + p.late_prefetches + p.useless_prefetches,
        p.pthread_loads,
        "every p-thread load classifies exactly once: {p:?}"
    );
    assert!(p.pthread_loads > 0);
    assert!(p.timely_prefetches > 0, "the gather slice runs ahead");
    assert!(p.demand_misses > 0);
    // Episode tallies reconcile with the global counters.
    assert_eq!(p.episodes_triggered, res.stats.triggers_accepted);
    assert_eq!(p.episodes_completed, res.stats.preexec_completed);
    assert_eq!(
        p.episodes_aborted,
        res.stats.preexec_aborted_flush + res.stats.preexec_aborted_missed
    );
    // The per-profile classification totals also reconcile globally:
    // timely/late match the hierarchy-wide consumed-prefetch counters.
    assert_eq!(p.timely_prefetches, res.stats.useful_prefetches);
    assert_eq!(p.late_prefetches, res.stats.late_prefetches);
}

#[test]
fn core_stats_round_trip_through_json() {
    let b = gather_spear(1 << 15, 2000);
    let res = run_core(&b, CoreConfig::spear(128));
    let json = serde::json::to_string_pretty(&res.stats);
    let back: CoreStats = serde::json::from_str(&json).expect("valid JSON");
    assert_eq!(res.stats, back, "CoreStats must survive a JSON round trip");
}

/// Shared in-memory sink so the test can read what the core streamed.
#[derive(Clone, Default)]
struct Shared(Arc<Mutex<Vec<u8>>>);

impl Write for Shared {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[test]
fn trace_sink_streams_parseable_jsonl() {
    let b = gather_spear(1 << 15, 1500);
    let mut core = Core::new(&b, CoreConfig::spear(128));
    let sink = Shared::default();
    core.set_trace_sink(Box::new(sink.clone()));
    let res = core.run(50_000_000, u64::MAX).unwrap();
    assert_eq!(res.exit, RunExit::Halted);
    let bytes = sink.0.lock().unwrap().clone();
    let text = String::from_utf8(bytes).expect("utf-8 JSONL");
    let mut commits = 0u64;
    let mut fills = 0u64;
    let mut triggers = 0u64;
    for line in text.lines() {
        let v = serde::json::parse(line).expect("every line is valid JSON");
        let event = v.field("event").expect("tagged");
        match event {
            serde::Value::Str(s) => match s.as_str() {
                "commit" => commits += 1,
                "fill" => fills += 1,
                "trigger" => triggers += 1,
                _ => {}
            },
            other => panic!("event tag must be a string: {other:?}"),
        }
    }
    assert_eq!(
        commits, res.stats.committed,
        "one commit event per committed inst"
    );
    assert!(fills > 0, "cache fills must stream");
    assert_eq!(triggers, res.stats.triggers_accepted);
}

#[test]
fn windows_partition_the_run_exactly() {
    let b = gather_spear(1 << 16, 4000);
    let cfg = CoreConfig::spear(128);
    let width = cfg.commit_width;
    let mut core = Core::new(&b, cfg);
    core.enable_windows(1000);
    let res = core.run(50_000_000, u64::MAX).unwrap();
    assert_eq!(res.exit, RunExit::Halted);
    let windows = &res.stats.windows;
    assert!(windows.len() > 1, "a multi-thousand-cycle run has windows");
    assert_eq!(
        windows.iter().map(|w| w.cycles).sum::<u64>(),
        res.stats.cycles,
        "windows cover every cycle exactly once"
    );
    assert_eq!(
        windows.iter().map(|w| w.committed).sum::<u64>(),
        res.stats.committed,
        "per-window committed counts sum to the global total"
    );
    assert_eq!(
        windows.iter().map(|w| w.l1d_misses).sum::<u64>(),
        res.stats.l1d.read_misses + res.stats.l1d.write_misses,
        "per-window L1D misses sum to the cache totals"
    );
    assert_eq!(
        windows.iter().map(|w| w.triggers_accepted).sum::<u64>(),
        res.stats.triggers_accepted
    );
    for (i, w) in windows.iter().enumerate() {
        assert_eq!(w.index, i as u64, "window indices are contiguous");
        assert_eq!(
            w.cycle_account.total_slots(),
            w.cycles * width as u64,
            "the exact-slot invariant holds per window"
        );
    }
    for pair in windows.windows(2) {
        assert_eq!(
            pair[0].start_cycle + pair[0].cycles,
            pair[1].start_cycle,
            "windows tile the timeline without gaps"
        );
        assert_eq!(pair[0].cycles, 1000, "only the last window may be partial");
    }
    res.stats
        .check_invariants(width)
        .expect("window invariants are part of the standard check");
    // And the windowed stats still round-trip through the envelope.
    let json = serde::json::to_string(&res.stats);
    let back: CoreStats = serde::json::from_str(&json).unwrap();
    assert_eq!(res.stats, back);
}

#[test]
fn window_events_stream_to_the_sink() {
    let b = gather_spear(1 << 15, 1500);
    let mut core = Core::new(&b, CoreConfig::spear(128));
    let sink = Shared::default();
    core.set_trace_sink(Box::new(sink.clone()));
    core.enable_windows(2000);
    let res = core.run(50_000_000, u64::MAX).unwrap();
    let text = String::from_utf8(sink.0.lock().unwrap().clone()).unwrap();
    let mut window_rows = 0usize;
    for line in text.lines() {
        let v = serde::json::parse(line).expect("valid JSON");
        if v.field("event").unwrap() == &serde::Value::Str("window".into()) {
            let idx = match v.field("index").unwrap() {
                serde::Value::U64(n) => *n,
                other => panic!("index must be a u64: {other:?}"),
            };
            assert_eq!(idx, window_rows as u64, "rows stream in window order");
            window_rows += 1;
        }
    }
    assert_eq!(
        window_rows,
        res.stats.windows.len(),
        "every closed window streams exactly one JSONL row"
    );
}

#[test]
fn lifecycle_records_cover_the_run_with_ordered_stamps() {
    let b = gather_spear(1 << 16, 3000);
    let mut core = Core::new(&b, CoreConfig::spear(128));
    core.enable_lifecycle(1_000_000);
    let res = core.run(50_000_000, u64::MAX).unwrap();
    assert_eq!(res.exit, RunExit::Halted);
    let obs = core.obs().expect("lifecycle enabled");
    let log = obs.lifecycle.as_ref().expect("lifecycle enabled");
    assert_eq!(log.dropped, 0, "cap not hit at this size");
    let records = &log.records;
    let main_committed = records.iter().filter(|r| r.ctx == 0 && !r.squashed).count() as u64;
    assert_eq!(
        main_committed, res.stats.committed,
        "one record per committed main-thread instruction"
    );
    let squashed = records.iter().filter(|r| r.squashed).count() as u64;
    assert_eq!(squashed, res.stats.squashed, "one record per squash");
    // P-thread entries only leave the RUU through speculative
    // retirement; any still in flight at halt leave no record.
    let pthread = records.iter().filter(|r| r.ctx > 0).count() as u64;
    assert!(pthread > 0, "p-thread retirements are recorded too");
    assert!(pthread <= res.stats.pthread_insts);
    for r in records {
        assert!(r.fetch_cycle <= r.dispatch_cycle, "{r:?}");
        if r.issue_cycle > 0 {
            assert!(r.dispatch_cycle <= r.issue_cycle, "{r:?}");
        }
        if r.complete_cycle > 0 {
            assert!(r.issue_cycle > 0, "completion implies issue: {r:?}");
            assert!(r.issue_cycle < r.complete_cycle, "{r:?}");
            assert!(r.complete_cycle <= r.end_cycle, "{r:?}");
        }
        if !r.squashed {
            assert!(r.complete_cycle > 0, "retirement implies completion: {r:?}");
        }
        if r.ctx > 0 {
            assert!(r.episode > 0, "p-thread records carry an episode id");
        } else {
            assert_eq!(r.episode, 0, "main-context records carry none");
        }
    }
    // Episode ids are monotonically non-decreasing in retirement order
    // and cover every accepted trigger that retired instructions.
    let max_episode = records.iter().map(|r| r.episode).max().unwrap_or(0);
    assert!(max_episode as u64 <= res.stats.triggers_accepted);
    assert!(max_episode > 0, "the gather triggers episodes");
    assert!(
        !obs.lifecycle.as_ref().unwrap().samples.is_empty(),
        "counter samples were collected"
    );
}
