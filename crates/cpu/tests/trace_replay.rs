//! Trace-driven replay equivalence: a baseline core driven by a
//! recorded `.spt` committed path must produce the *byte-identical*
//! stats envelope of the execute-at-dispatch run it replays — the
//! pipeline provably does not care where instructions come from.

use spear_cpu::{Core, Machine, StatsExport, TraceSource};
use spear_isa::asm::Asm;
use spear_isa::reg::*;
use spear_isa::SpearBinary;
use spear_trace::{record, TraceFile};

/// A pointer-chase-flavoured kernel: dependent loads, a store per
/// iteration, and two branch patterns (inner conditional + loop back
/// edge) so the predictor, the D-cache, and store-to-load forwarding
/// all see real traffic.
fn kernel() -> SpearBinary {
    let mut a = Asm::new();
    let xs: Vec<u64> = (0..64).map(|i| (i * 2654435761) % 977).collect();
    let base = a.alloc_u64("xs", &xs);
    let out = a.reserve("out", 8 * 64);
    a.li(R1, base as i64);
    a.li(R2, out as i64);
    a.li(R3, 64);
    a.li(R5, 0);
    a.label("loop");
    a.ld(R4, R1, 0);
    a.andi(R6, R4, 1);
    a.beq(R6, R0, "even");
    a.add(R5, R5, R4);
    a.label("even");
    a.sd(R5, R2, 0);
    a.addi(R1, R1, 8);
    a.addi(R2, R2, 8);
    a.addi(R3, R3, -1);
    a.bne(R3, R0, "loop");
    a.halt();
    SpearBinary::plain(a.finish().unwrap())
}

fn envelope(machine: Machine, core_res: (spear_cpu::RunResult, u64)) -> String {
    let (res, _checksum) = core_res;
    StatsExport::new("kernel", machine.name(), 100, res.exit, res.stats).to_json()
}

fn run_program(binary: &SpearBinary, machine: Machine) -> (spear_cpu::RunResult, u64) {
    let mut core = Core::new(binary, machine.config(None));
    let res = core.run(u64::MAX, u64::MAX).expect("program run");
    let ck = core.state_checksum();
    (res, ck)
}

fn run_trace(tf: &TraceFile, machine: Machine) -> (spear_cpu::RunResult, u64) {
    let source = Box::new(TraceSource::new(tf));
    let mut core = Core::with_source(&tf.binary, machine.config(None), source);
    let res = core.run(u64::MAX, u64::MAX).expect("trace run");
    let ck = core.memory().checksum();
    (res, ck)
}

#[test]
fn baseline_replay_envelope_is_byte_identical() {
    let binary = kernel();
    let (bytes, stats) = record(&binary, u64::MAX).expect("records");
    assert!(stats.halted);
    let tf = TraceFile::decode(&bytes).expect("decodes");

    let prog = run_program(&binary, Machine::Baseline);
    let trace = run_trace(&tf, Machine::Baseline);

    // Architectural memory stays exact under replay (store data is
    // recorded), even though registers are not tracked.
    let mut core = Core::new(&binary, Machine::Baseline.config(None));
    core.run(u64::MAX, u64::MAX).unwrap();
    assert_eq!(core.memory().checksum(), trace.1, "replay memory image");

    assert_eq!(
        envelope(Machine::Baseline, prog),
        envelope(Machine::Baseline, trace),
        "baseline stats envelope must not depend on the instruction source"
    );
}

#[test]
fn replay_cursor_tracks_the_true_path() {
    let binary = kernel();
    let (bytes, rec_stats) = record(&binary, u64::MAX).unwrap();
    let tf = TraceFile::decode(&bytes).unwrap();
    let source = Box::new(TraceSource::new(&tf));
    let mut core = Core::with_source(&tf.binary, Machine::Baseline.config(None), source);
    core.run(u64::MAX, u64::MAX).unwrap();
    assert_eq!(core.source_name(), "trace");
    assert_eq!(
        core.source_cursor(),
        rec_stats.insts,
        "every recorded instruction is consumed exactly once"
    );
}

#[test]
fn mid_trace_cursor_resume_requires_matching_pc() {
    let binary = kernel();
    let (bytes, _) = record(&binary, u64::MAX).unwrap();
    let tf = TraceFile::decode(&bytes).unwrap();

    // A cursor beyond the trace is rejected up front.
    let err = match TraceSource::at_cursor(&tf, tf.recs.len() as u64 + 1) {
        Err(e) => e,
        Ok(_) => panic!("cursor beyond the trace must be rejected"),
    };
    assert!(err.contains("beyond"), "{err}");

    // Resuming at a cursor whose expected PC does not match the fetch
    // PC fails loudly at the first dispatched instruction instead of
    // silently replaying the wrong region.
    let source = Box::new(TraceSource::at_cursor(&tf, 10).expect("valid cursor"));
    let mut core = Core::with_source(&tf.binary, Machine::Baseline.config(None), source);
    // Fetch starts at the program entry (pc of record 0), but the
    // cursor claims record 10: divergence.
    let err = core.run(u64::MAX, u64::MAX).expect_err("cursor mismatch");
    let msg = err.to_string();
    assert!(
        msg.contains("diverged") && msg.contains("trace"),
        "divergence must be loud and name the trace: {msg}"
    );
}

#[test]
fn spear_machines_replay_deterministically() {
    // Under SPEAR front ends the p-thread contexts run semantics over
    // register live-ins the replay does not track, so stats are allowed
    // to differ from the program-driven run — but replay must still be
    // deterministic and architecturally exact on memory.
    let binary = kernel();
    let (bytes, _) = record(&binary, u64::MAX).unwrap();
    let tf = TraceFile::decode(&bytes).unwrap();

    let a = run_trace(&tf, Machine::Spear128);
    let b = run_trace(&tf, Machine::Spear128);
    assert_eq!(
        envelope(Machine::Spear128, a),
        envelope(Machine::Spear128, b),
        "trace replay under SPEAR must be deterministic"
    );
}
