//! Lockstep differential testing: the cycle core and the functional
//! interpreter advance together, and the committed architectural
//! register state must be identical after *every* commit — not just at
//! halt. This pins down exactly which commit diverges when a pipeline
//! bug slips in, where the end-state checks in `random_programs.rs`
//! only say "something, somewhere, went wrong".
//!
//! Memory is compared at halt (the core writes its functional memory
//! image speculatively at dispatch, so mid-run memory equality is not an
//! invariant; committed registers are).

use proptest::prelude::*;
use spear_compiler::{CompilerConfig, SpearCompiler};
use spear_cpu::{Core, CoreConfig};
use spear_exec::Interp;
use spear_isa::asm::Asm;
use spear_isa::reg::*;
use spear_isa::{Program, SpearBinary};

/// Random structured programs mixing ALU chains, data-dependent
/// branches, counted load/store loops, and call/return pairs. Always
/// halts.
fn arb_program() -> impl Strategy<Value = Program> {
    (proptest::collection::vec(0u8..4, 1..6), any::<u64>()).prop_map(|(segments, seed)| {
        let mut a = Asm::new();
        let data: Vec<u64> = (0..256u64).map(|i| i.wrapping_mul(seed | 1)).collect();
        let d = a.alloc_u64("data", &data);
        a.li(R10, seed as i64);
        a.li(R20, d as i64);
        for (i, seg) in segments.iter().enumerate() {
            match seg {
                0 => {
                    a.addi(R10, R10, 3);
                    a.muli(R11, R10, 7);
                    a.xor(R10, R10, R11);
                }
                1 => {
                    let t = format!("t{i}");
                    let j = format!("j{i}");
                    a.andi(R11, R10, 3);
                    a.beq(R11, R0, &t);
                    a.addi(R10, R10, 5);
                    a.j(&j);
                    a.label(&t);
                    a.slli(R10, R10, 1);
                    a.label(&j);
                }
                2 => {
                    let l = format!("l{i}");
                    a.li(R12, 16);
                    a.mv(R13, R20);
                    a.label(&l);
                    a.ld(R14, R13, 0);
                    a.add(R10, R10, R14);
                    a.sd(R10, R13, 8);
                    a.addi(R13, R13, 16);
                    a.addi(R12, R12, -1);
                    a.bne(R12, R0, &l);
                }
                _ => {
                    let f = format!("f{i}");
                    let over = format!("o{i}");
                    a.jal(R31, &f);
                    a.j(&over);
                    a.label(&f);
                    a.addi(R10, R10, 11);
                    a.jr(R31);
                    a.label(&over);
                }
            }
        }
        a.halt();
        a.finish().expect("generated program assembles")
    })
}

/// Step the core cycle by cycle; after each cycle, advance the golden
/// interpreter to the core's commit count and compare the full committed
/// register file. Returns the total committed instruction count.
fn lockstep(binary: &SpearBinary, cfg: CoreConfig, label: &str) -> u64 {
    let mut interp = Interp::new(&binary.program);
    let mut core = Core::new(binary, cfg);
    let mut committed: u64 = 0;
    while !core.halted() {
        assert!(core.cycle() < 10_000_000, "{label}: cycle budget exceeded");
        core.step_cycle().expect("simulation step");
        let now = core.committed();
        while committed < now {
            assert!(!interp.halted, "{label}: core committed past golden halt");
            interp.step().expect("golden step");
            committed += 1;
        }
        if now > 0 {
            assert_eq!(
                core.commit_regs().to_bits(),
                interp.regs.to_bits(),
                "{label}: committed registers diverge at commit {} (cycle {})",
                now,
                core.cycle()
            );
        }
    }
    assert!(interp.halted, "{label}: golden interpreter must halt too");
    assert_eq!(committed, interp.icount, "{label}: commit count");
    assert_eq!(
        core.memory().checksum(),
        interp.mem.checksum(),
        "{label}: memory image at halt"
    );
    committed
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn baseline_lockstep_on_random_programs(p in arb_program()) {
        let binary = SpearBinary::plain(p);
        lockstep(&binary, CoreConfig::baseline(), "baseline");
    }

    #[test]
    fn spear_lockstep_on_random_programs(p in arb_program()) {
        // Aggressive selection so even small programs get p-threads: the
        // point is that pre-execution stays architecturally invisible at
        // every single commit.
        let mut ccfg = CompilerConfig::default();
        ccfg.slicer.dload_min_misses = 4;
        ccfg.slicer.dload_miss_fraction = 0.0;
        let (binary, _) = SpearCompiler::new(ccfg).compile(&p).expect("compile");
        lockstep(&binary, CoreConfig::spear(128), "spear-128");
    }
}

/// A deterministic (non-proptest) case that exercises a long loop, so the
/// lockstep walk is guaranteed to cross many mispredict recoveries.
#[test]
fn lockstep_long_loop() {
    let mut a = Asm::new();
    let data: Vec<u64> = (0..128u64).map(|i| i * 3).collect();
    let d = a.alloc_u64("data", &data);
    a.li(R10, 0);
    a.li(R20, d as i64);
    a.li(R12, 200);
    a.label("loop");
    a.andi(R11, R12, 7);
    a.beq(R11, R0, "skip");
    a.ld(R14, R20, 0);
    a.add(R10, R10, R14);
    a.label("skip");
    a.addi(R12, R12, -1);
    a.bne(R12, R0, "loop");
    a.halt();
    let p = a.finish().expect("assembles");
    let committed = lockstep(&SpearBinary::plain(p), CoreConfig::baseline(), "long-loop");
    assert!(committed > 800, "loop actually ran: {committed}");
}
