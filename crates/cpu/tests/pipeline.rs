//! Pipeline-level tests: architectural equivalence with the golden model,
//! baseline timing sanity, and SPEAR episode mechanics on hand-built
//! programs and p-thread tables.

use spear_cpu::{Core, CoreConfig, RunExit};
use spear_exec::Interp;
use spear_isa::asm::Asm;
use spear_isa::pthread::{PThreadEntry, PThreadTable};
use spear_isa::reg::*;
use spear_isa::{Program, SpearBinary};

fn run_core(binary: &SpearBinary, cfg: CoreConfig) -> spear_cpu::RunResult {
    let mut core = Core::new(binary, cfg);
    core.run(50_000_000, u64::MAX).expect("simulation error")
}

fn assert_equivalent(program: &Program, cfg: CoreConfig) -> spear_cpu::RunResult {
    let binary = SpearBinary::plain(program.clone());
    let mut core = Core::new(&binary, cfg);
    let res = core.run(50_000_000, u64::MAX).expect("simulation error");
    assert_eq!(res.exit, RunExit::Halted);

    let mut golden = Interp::new(program);
    golden.run(u64::MAX).expect("golden run");
    assert_eq!(
        res.stats.committed, golden.icount,
        "committed instruction count must match the golden model"
    );
    assert_eq!(
        core.state_checksum(),
        golden.state_checksum(),
        "architectural state must match the golden model"
    );
    res
}

/// Straight-line arithmetic, no branches.
fn straightline() -> Program {
    let mut a = Asm::new();
    a.alloc_u64("pad", &[0; 16]);
    a.li(R1, 10);
    a.li(R2, 32);
    a.add(R3, R1, R2);
    a.mul(R4, R3, R3);
    a.sub(R5, R4, R1);
    a.div(R6, R4, R2);
    a.li(R7, 0);
    a.sd(R6, R7, 0);
    a.halt();
    a.finish().unwrap()
}

/// A counted loop with independent memory traffic (well-predicted,
/// cache-friendly, plenty of ILP).
fn counted_loop(n: i64) -> Program {
    let mut a = Asm::new();
    let xs: Vec<u64> = (0..n as u64).map(|i| i * 3 + 1).collect();
    let src = a.alloc_u64("src", &xs);
    let dst = a.reserve("dst", (n as u64) * 8 + 8);
    a.li(R1, src as i64);
    a.li(R6, dst as i64);
    a.li(R2, 0); // i
    a.li(R3, n); // n
    a.li(R4, 0); // acc
    a.label("loop");
    a.ld(R5, R1, 0);
    a.add(R4, R4, R5);
    a.xor(R7, R5, R2);
    a.sd(R7, R6, 0);
    a.addi(R1, R1, 8);
    a.addi(R6, R6, 8);
    a.addi(R2, R2, 1);
    a.blt(R2, R3, "loop");
    a.halt();
    a.finish().unwrap()
}

/// A data-dependent branch pattern (mispredictions guaranteed).
fn noisy_branches() -> Program {
    let mut a = Asm::new();
    // xorshift-ish PRNG drives an unpredictable branch.
    a.li(R1, 0x9E3779B9);
    a.li(R2, 0); // even counter
    a.li(R3, 0); // odd counter
    a.li(R4, 200); // iterations
    a.label("loop");
    // r1 = r1 ^ (r1 << 13); r1 = r1 ^ (r1 >> 7)
    a.slli(R5, R1, 13);
    a.xor(R1, R1, R5);
    a.srli(R5, R1, 7);
    a.xor(R1, R1, R5);
    a.andi(R6, R1, 1);
    a.beq(R6, R0, "even");
    a.addi(R3, R3, 1);
    a.j("join");
    a.label("even");
    a.addi(R2, R2, 1);
    a.label("join");
    a.addi(R4, R4, -1);
    a.bne(R4, R0, "loop");
    a.halt();
    a.finish().unwrap()
}

/// Calls and returns through the RAS.
fn call_ret() -> Program {
    let mut a = Asm::new();
    a.li(R10, 0);
    a.li(R4, 50);
    a.label("loop");
    a.jal(R31, "fn");
    a.addi(R4, R4, -1);
    a.bne(R4, R0, "loop");
    a.halt();
    a.label("fn");
    a.addi(R10, R10, 7);
    a.jr(R31);
    a.finish().unwrap()
}

/// FP kernel (dot product).
fn fp_kernel() -> Program {
    let mut a = Asm::new();
    let n = 64usize;
    let xs: Vec<f64> = (0..n).map(|i| i as f64 * 0.5).collect();
    let ys: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
    let xa = a.alloc_f64("xs", &xs);
    let ya = a.alloc_f64("ys", &ys);
    let out = a.reserve("out", 8);
    a.li(R1, xa as i64);
    a.li(R2, ya as i64);
    a.li(R3, n as i64);
    a.fcvt_d_l(F1, R0); // acc = 0.0
    a.label("loop");
    a.fld(F2, R1, 0);
    a.fld(F3, R2, 0);
    a.fmul(F4, F2, F3);
    a.fadd(F1, F1, F4);
    a.addi(R1, R1, 8);
    a.addi(R2, R2, 8);
    a.addi(R3, R3, -1);
    a.bne(R3, R0, "loop");
    a.li(R4, out as i64);
    a.fsd(F1, R4, 0);
    a.halt();
    a.finish().unwrap()
}

/// Pointer chase over a large shuffled ring: guaranteed cache misses in a
/// single delinquent load, with a tiny backward slice — the SPEAR sweet
/// spot.
fn pointer_chase(nodes: usize, steps: i64) -> Program {
    let mut a = Asm::new();
    // node i holds the byte address of the next node, stride-permuted so
    // consecutive accesses land in different cache sets and exceed L1/L2.
    let mut next = vec![0u64; nodes];
    // A fixed odd stride coprime with `nodes` forms a single cycle.
    let stride = 97;
    assert_eq!(num_gcd(stride, nodes as u64), 1);
    for (i, n) in next.iter_mut().enumerate() {
        *n = (((i as u64 + stride) % nodes as u64) * 64) % (nodes as u64 * 64);
    }
    // Lay out nodes 64 bytes apart (one per L2 block).
    let mut bytes = vec![0u8; nodes * 64];
    for (i, &n) in next.iter().enumerate() {
        bytes[i * 64..i * 64 + 8].copy_from_slice(&n.to_le_bytes());
    }
    let base = a.alloc_bytes("ring", &bytes);
    a.li(R1, base as i64); // cursor
    a.li(R2, steps);
    a.li(R4, base as i64);
    a.label("loop");
    a.ld(R3, R1, 0); // the delinquent load: next pointer
    a.add(R1, R4, R3); // absolute address of next node
    a.addi(R2, R2, -1);
    a.bne(R2, R0, "loop");
    a.halt();
    a.finish().unwrap()
}

fn num_gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        num_gcd(b, a % b)
    }
}

/// Indexed gather with a compute body: `acc += x[idx[i]]` plus a chained
/// multiply tail. The gather load misses on nearly every iteration while
/// its backward slice (index load + address arithmetic) is tiny and
/// iteration-independent — the paper's delinquent-load pattern.
fn indexed_gather(x_elems: usize, iters: usize) -> Program {
    let mut a = Asm::new();
    // Pseudo-random indices spread over the (cache-exceeding) x array.
    let idx: Vec<u64> = (0..iters)
        .map(|i| {
            let mut v = i as u64 + 0x9E37;
            v ^= v << 13;
            v ^= v >> 7;
            v ^= v << 17;
            v % x_elems as u64
        })
        .collect();
    let xs: Vec<u64> = (0..x_elems as u64).map(|i| i * 7 + 3).collect();
    let idx_base = a.alloc_u64("idx", &idx);
    let x_base = a.alloc_u64("x", &xs);
    a.li(R1, idx_base as i64); // index cursor
    a.li(R2, x_base as i64); // x base
    a.li(R3, iters as i64); // remaining
    a.li(R4, 0); // acc
    a.li(R8, 3); // multiplier for the compute body
    a.label("loop");
    a.ld(R5, R1, 0); // slice: index (sequential, hits)
    a.slli(R6, R5, 3); // slice: byte offset
    a.add(R6, R2, R6); // slice: address
    a.ld(R7, R6, 0); // slice: THE d-load (random, misses)
    a.add(R4, R4, R7);
    // Compute body: a dependent multiply chain the main thread must chew
    // through each iteration (the p-thread skips all of this).
    a.mul(R9, R4, R8);
    a.mul(R9, R9, R8);
    a.mul(R9, R9, R8);
    a.mul(R9, R9, R8);
    a.xor(R4, R4, R9);
    a.addi(R1, R1, 8);
    a.addi(R3, R3, -1);
    a.bne(R3, R0, "loop");
    a.halt();
    a.finish().unwrap()
}

/// The SPEAR binary for [`indexed_gather`]: slice = {index load, shift,
/// add, d-load, index-cursor increment}; live-ins = index cursor and x
/// base. The cursor increment must be in the slice — without it every
/// extracted instance would recompute the same address.
fn gather_spear(x_elems: usize, iters: usize) -> SpearBinary {
    let program = indexed_gather(x_elems, iters);
    let loop_pc = *program.labels.get("loop").unwrap();
    let addi_pc = loop_pc + 10; // addi r1, r1, 8
    let table = PThreadTable {
        entries: vec![PThreadEntry {
            dload_pc: loop_pc + 3,
            members: vec![loop_pc, loop_pc + 1, loop_pc + 2, loop_pc + 3, addi_pc],
            live_ins: vec![R1, R2],
            ..Default::default()
        }],
    };
    let b = SpearBinary { program, table };
    b.validate().expect("hand-built table is consistent");
    b
}

// ====================================================================
// Differential equivalence
// ====================================================================

#[test]
fn straightline_matches_golden() {
    assert_equivalent(&straightline(), CoreConfig::baseline());
}

#[test]
fn counted_loop_matches_golden() {
    assert_equivalent(&counted_loop(500), CoreConfig::baseline());
}

#[test]
fn noisy_branches_match_golden() {
    let res = assert_equivalent(&noisy_branches(), CoreConfig::baseline());
    assert!(
        res.stats.recoveries > 10,
        "mispredictions must occur: {}",
        res.stats.recoveries
    );
    assert!(res.stats.squashed > 0, "wrong-path work must be squashed");
}

#[test]
fn call_ret_matches_golden() {
    assert_equivalent(&call_ret(), CoreConfig::baseline());
}

#[test]
fn fp_kernel_matches_golden() {
    assert_equivalent(&fp_kernel(), CoreConfig::baseline());
}

#[test]
fn pointer_chase_matches_golden() {
    assert_equivalent(&pointer_chase(4096, 3000), CoreConfig::baseline());
}

// ====================================================================
// Baseline timing sanity
// ====================================================================

#[test]
fn superscalar_extracts_ilp_from_alu_loop() {
    // Six independent addis + induction + branch: 8 IntAlu-class ops per
    // iteration over 4 ALUs bounds the machine at IPC 4; it should land
    // well above scalar.
    let mut a = Asm::new();
    a.li(R2, 0);
    a.li(R3, 2000);
    a.label("loop");
    a.addi(R5, R2, 1);
    a.addi(R6, R2, 2);
    a.addi(R7, R2, 3);
    a.addi(R8, R2, 4);
    a.addi(R9, R2, 5);
    a.addi(R10, R2, 6);
    a.addi(R2, R2, 1);
    a.blt(R2, R3, "loop");
    a.halt();
    let p = a.finish().unwrap();
    let res = run_core(&SpearBinary::plain(p), CoreConfig::baseline());
    assert!(
        res.stats.ipc() > 2.5,
        "8-wide machine should exceed IPC 2.5 on independent ALU code, got {:.2}",
        res.stats.ipc()
    );
}

#[test]
fn cache_misses_hurt_ipc() {
    let hot = counted_loop(2000); // sequential, cache friendly
    let cold = pointer_chase(8192, 2000); // one miss per iteration
    let hot_ipc = run_core(&SpearBinary::plain(hot), CoreConfig::baseline())
        .stats
        .ipc();
    let cold_ipc = run_core(&SpearBinary::plain(cold), CoreConfig::baseline())
        .stats
        .ipc();
    assert!(
        cold_ipc < hot_ipc / 2.0,
        "pointer chase ({cold_ipc:.3}) should be much slower than streaming ({hot_ipc:.3})"
    );
}

#[test]
fn longer_memory_latency_reduces_ipc() {
    let p = pointer_chase(8192, 2000);
    let b = SpearBinary::plain(p);
    let short = {
        let mut cfg = CoreConfig::baseline();
        cfg.hier.latency = spear_mem::LatencyConfig::sweep_point(40);
        run_core(&b, cfg).stats.ipc()
    };
    let long = {
        let mut cfg = CoreConfig::baseline();
        cfg.hier.latency = spear_mem::LatencyConfig::sweep_point(200);
        run_core(&b, cfg).stats.ipc()
    };
    assert!(
        long < short,
        "IPC at 200-cycle memory ({long:.3}) must be below 40-cycle ({short:.3})"
    );
}

#[test]
fn branch_predictor_learns_loop() {
    let p = counted_loop(2000);
    let res = run_core(&SpearBinary::plain(p), CoreConfig::baseline());
    assert!(
        res.stats.branch_hit_ratio() > 0.99,
        "backward loop branch should be nearly perfect, got {:.4}",
        res.stats.branch_hit_ratio()
    );
}

// ====================================================================
// SPEAR mechanics
// ====================================================================

#[test]
fn spear_triggers_and_completes_episodes() {
    let b = gather_spear(1 << 16, 4000);
    let res = run_core(&b, CoreConfig::spear(128));
    assert!(
        res.stats.triggers_accepted > 0,
        "d-load detection must trigger"
    );
    assert!(
        res.stats.preexec_completed > 0,
        "episodes must run to d-load retirement: {:?}",
        (
            res.stats.triggers_accepted,
            res.stats.preexec_aborted_flush,
            res.stats.preexec_aborted_missed
        )
    );
    assert!(res.stats.pthread_insts > 0);
    assert!(res.stats.pthread_loads > 0, "prefetches must be issued");
}

#[test]
fn spear_preserves_architectural_state() {
    let b = gather_spear(1 << 15, 3000);
    let mut core = Core::new(&b, CoreConfig::spear(128));
    let res = core.run(50_000_000, u64::MAX).unwrap();
    assert_eq!(res.exit, RunExit::Halted);
    let mut golden = Interp::new(&b.program);
    golden.run(u64::MAX).unwrap();
    assert_eq!(res.stats.committed, golden.icount);
    assert_eq!(
        core.state_checksum(),
        golden.state_checksum(),
        "p-thread must never change the semantic state"
    );
}

#[test]
fn spear_speeds_up_gather() {
    let b = gather_spear(1 << 16, 4000);
    let base = {
        let plain = SpearBinary::plain(b.program.clone());
        run_core(&plain, CoreConfig::baseline())
    };
    let spear = run_core(&b, CoreConfig::spear(128));
    assert!(
        spear.stats.ipc() > base.stats.ipc(),
        "SPEAR ({:.4}) must beat baseline ({:.4}) on the gather",
        spear.stats.ipc(),
        base.stats.ipc()
    );
}

#[test]
fn spear_reduces_main_thread_misses() {
    let b = gather_spear(1 << 16, 4000);
    let base = {
        let plain = SpearBinary::plain(b.program.clone());
        run_core(&plain, CoreConfig::baseline())
    };
    let spear = run_core(&b, CoreConfig::spear(128));
    assert!(
        spear.stats.l1d_main_misses < base.stats.l1d_main_misses,
        "SPEAR main-thread misses ({}) must be below baseline ({})",
        spear.stats.l1d_main_misses,
        base.stats.l1d_main_misses
    );
}

#[test]
fn empty_table_behaves_like_baseline() {
    let p = pointer_chase(4096, 2000);
    let plain = SpearBinary::plain(p);
    let base = run_core(&plain, CoreConfig::baseline());
    let spear_no_table = run_core(&plain, CoreConfig::spear(128));
    assert_eq!(base.stats.committed, spear_no_table.stats.committed);
    assert_eq!(
        base.stats.cycles, spear_no_table.stats.cycles,
        "SPEAR hardware with no p-threads must be cycle-identical to baseline"
    );
    assert_eq!(spear_no_table.stats.triggers_accepted, 0);
}

#[test]
fn separate_fu_model_also_works() {
    let b = gather_spear(1 << 15, 2000);
    let res = run_core(&b, CoreConfig::spear_sf(128));
    assert!(res.stats.preexec_completed > 0);
    let mut golden = Interp::new(&b.program);
    golden.run(u64::MAX).unwrap();
    assert_eq!(res.stats.committed, golden.icount);
}

#[test]
fn four_context_core_runs_to_completion() {
    // Contexts beyond ctx1 are idle with the current SPEAR front end, but
    // an N-way core must still build, run a full SPEAR workload to halt,
    // and stay architecturally exact.
    let b = gather_spear(1 << 15, 3000);
    let mut cfg = CoreConfig::spear(128);
    cfg.num_contexts = 4;
    let mut core = Core::new(&b, cfg);
    let res = core.run(50_000_000, u64::MAX).unwrap();
    assert_eq!(res.exit, RunExit::Halted);
    assert!(res.stats.preexec_completed > 0, "episodes must still run");
    let mut golden = Interp::new(&b.program);
    golden.run(u64::MAX).unwrap();
    assert_eq!(res.stats.committed, golden.icount);
    assert_eq!(core.state_checksum(), golden.state_checksum());
}

#[test]
fn determinism_same_seed_same_cycles() {
    let b = gather_spear(1 << 15, 2000);
    let r1 = run_core(&b, CoreConfig::spear(256));
    let r2 = run_core(&b, CoreConfig::spear(256));
    assert_eq!(r1.stats.cycles, r2.stats.cycles);
    assert_eq!(r1.stats.l1d_main_misses, r2.stats.l1d_main_misses);
    assert_eq!(r1.stats.triggers_accepted, r2.stats.triggers_accepted);
}

/// An FP-dense kernel whose slice covers nearly the whole body — the
/// fft-like contention case.
fn fp_dense_gather(iters: i64) -> SpearBinary {
    let mut a = Asm::new();
    let xs: Vec<f64> = (0..(1 << 15)).map(|i| i as f64 * 0.01).collect();
    let xb = a.alloc_f64("x", &xs);
    a.li(R1, xb as i64);
    a.li(R3, iters);
    a.li(R5, 1);
    a.fcvt_d_l(F1, R0);
    a.label("loop");
    // Address chain (slice) mixed with an FP chain the main thread needs.
    a.muli(R5, R5, 6364136223846793005);
    a.srli(R6, R5, 17);
    a.andi(R6, R6, (1 << 15) - 1);
    a.slli(R6, R6, 3);
    a.add(R6, R1, R6);
    a.fld(F2, R6, 0); // d-load
    a.fmul(F3, F2, F2);
    a.fmul(F3, F3, F2);
    a.fadd(F1, F1, F3);
    a.addi(R3, R3, -1);
    a.bne(R3, R0, "loop");
    a.halt();
    let program = a.finish().unwrap();
    let loop_pc = *program.labels.get("loop").unwrap();
    // Slice = everything except the final fadd/loop control: the
    // compute-dense pathological case.
    let members: Vec<u32> = (loop_pc..loop_pc + 9).collect();
    let table = PThreadTable {
        entries: vec![PThreadEntry {
            dload_pc: loop_pc + 5,
            members,
            live_ins: vec![R1, R5],
            ..Default::default()
        }],
    };
    let b = SpearBinary { program, table };
    b.validate().unwrap();
    b
}

#[test]
fn full_priority_hurts_compute_dense_slices_and_sf_restores() {
    let b = fp_dense_gather(4000);
    let base = run_core(
        &SpearBinary::plain(b.program.clone()),
        CoreConfig::baseline(),
    )
    .stats
    .ipc();
    let mut full = CoreConfig::spear(128);
    full.spear.as_mut().unwrap().full_priority = true;
    let shared = run_core(&b, full.clone()).stats.ipc();
    let mut full_sf = CoreConfig::spear_sf(128);
    full_sf.spear.as_mut().unwrap().full_priority = true;
    let sf = run_core(&b, full_sf).stats.ipc();
    assert!(
        sf > shared,
        "dedicated FUs must relieve full-priority contention: shared {shared:.4}, sf {sf:.4}"
    );
    assert!(
        sf >= base * 0.95,
        "with its own units the p-thread must not hurt the main thread: base {base:.4}, sf {sf:.4}"
    );
}

#[test]
fn episode_histograms_populate() {
    let b = gather_spear(1 << 15, 3000);
    let res = run_core(&b, CoreConfig::spear(128));
    let episodes = res.stats.preexec_completed
        + res.stats.preexec_aborted_flush
        + res.stats.preexec_aborted_missed;
    assert_eq!(res.stats.episode_cycles.count(), episodes);
    assert_eq!(res.stats.episode_extractions.count(), episodes);
    assert!(res.stats.episode_extractions.mean() > 1.0);
    assert!(res.stats.episode_cycles.max() >= res.stats.episode_cycles.percentile_bound(0.5));
}

#[test]
fn prefetch_effectiveness_counters_consistent() {
    let b = gather_spear(1 << 16, 4000);
    let res = run_core(&b, CoreConfig::spear(256));
    let consumed = res.stats.useful_prefetches + res.stats.late_prefetches;
    assert!(consumed > 0, "some prefetches must be consumed");
    assert!(
        consumed <= res.stats.pthread_loads,
        "cannot consume more prefetches than were issued"
    );
}

#[test]
fn stride_prefetcher_accelerates_sequential_baseline() {
    // A long strided walk: the conventional prefetcher alone should gain.
    let mut a = Asm::new();
    let buf = a.reserve("buf", 1 << 22);
    a.li(R1, buf as i64);
    a.li(R2, 30_000);
    a.label("loop");
    a.ld(R3, R1, 0);
    a.add(R4, R4, R3);
    a.addi(R1, R1, 128);
    a.addi(R2, R2, -1);
    a.bne(R2, R0, "loop");
    a.halt();
    let b = SpearBinary::plain(a.finish().unwrap());
    let base = run_core(&b, CoreConfig::baseline()).stats.ipc();
    let mut cfg = CoreConfig::baseline();
    // A deep prefetch degree so fills land well ahead of the demand
    // stream (the default degree of 2 only shaves partial latency).
    cfg.hier.stride_prefetch = Some(spear_mem::StrideConfig {
        degree: 8,
        ..Default::default()
    });
    let pf = run_core(&b, cfg).stats.ipc();
    assert!(
        pf > base * 1.05,
        "stride prefetching must help a constant stride: {base:.4} -> {pf:.4}"
    );
}

#[test]
fn impossible_occupancy_threshold_rejects_all_triggers() {
    let b = gather_spear(1 << 15, 2000);
    let mut cfg = CoreConfig::spear(128);
    cfg.spear.as_mut().unwrap().trigger_fraction = 1.5; // > full queue
    let res = run_core(&b, cfg);
    assert_eq!(res.stats.triggers_accepted, 0);
    assert!(res.stats.triggers_rejected_occupancy > 0);
    assert_eq!(res.stats.pthread_insts, 0, "no episodes ever start");
}

#[test]
fn zero_livein_wait_limit_still_works() {
    // With no wait at all, the copy falls back to the freshest completed
    // values immediately — episodes must still run and stay correct.
    let b = gather_spear(1 << 15, 2000);
    let mut cfg = CoreConfig::spear(128);
    cfg.spear.as_mut().unwrap().livein_wait_limit = 0;
    let mut core = Core::new(&b, cfg);
    let res = core.run(50_000_000, u64::MAX).unwrap();
    assert!(res.stats.preexec_completed > 0);
    let mut golden = Interp::new(&b.program);
    golden.run(u64::MAX).unwrap();
    assert_eq!(core.state_checksum(), golden.state_checksum());
}

#[test]
fn pe_bandwidth_one_still_completes_episodes() {
    let b = gather_spear(1 << 15, 2000);
    let mut cfg = CoreConfig::spear(128);
    cfg.spear.as_mut().unwrap().pe_bandwidth = 1;
    let res = run_core(&b, cfg);
    assert!(
        res.stats.preexec_completed + res.stats.preexec_aborted_missed > 0,
        "episodes must at least be attempted"
    );
}

#[test]
fn trace_records_full_episode_lifecycle() {
    let b = gather_spear(1 << 15, 2000);
    let mut core = Core::new(&b, CoreConfig::spear(128));
    core.enable_trace(100_000);
    core.run(50_000_000, u64::MAX).unwrap();
    let t = core.trace().unwrap();
    use spear_cpu::trace::Event;
    let mut kinds = [0u64; 4];
    for e in t.events() {
        match e {
            Event::Trigger { .. } => kinds[0] += 1,
            Event::LiveInsCopied { .. } => kinds[1] += 1,
            Event::Extract { .. } => kinds[2] += 1,
            Event::EpisodeComplete { .. } => kinds[3] += 1,
            _ => {}
        }
    }
    assert!(
        kinds.iter().all(|&k| k > 0),
        "all lifecycle stages traced: {kinds:?}"
    );
    assert!(kinds[2] >= kinds[3], "extractions >= completions");
}

#[test]
fn cycle_budget_exit() {
    let p = counted_loop(100_000);
    let b = SpearBinary::plain(p);
    let mut core = Core::new(&b, CoreConfig::baseline());
    let res = core.run(1_000, u64::MAX).unwrap();
    assert_eq!(res.exit, RunExit::CycleBudget);
    assert_eq!(res.stats.cycles, 1_000);
}

#[test]
fn inst_budget_exit() {
    let p = counted_loop(100_000);
    let b = SpearBinary::plain(p);
    let mut core = Core::new(&b, CoreConfig::baseline());
    let res = core.run(u64::MAX, 5_000).unwrap();
    assert_eq!(res.exit, RunExit::InstBudget);
    assert!(res.stats.committed >= 5_000);
}
