//! Checkpoint v4: the trace-cursor snapshot. A v4 document records how
//! many instructions had retired when the checkpoint was captured — the
//! exact record index a [`spear_cpu::TraceSource`] must resume from when
//! a campaign cell replays a recorded trace instead of executing the
//! program. Older v3 documents (no cursor) must be rejected loudly by
//! version, and a document whose cursor disagrees with its instruction
//! index must be rejected before it can seed a misaligned replay.

use spear_bpred::PredictorConfig;
use spear_campaign::checkpoint::{capture_interval_checkpoints, Checkpoint, CHECKPOINT_VERSION};
use spear_campaign::record_trace;
use spear_cpu::{Core, CoreConfig, RunExit, TraceSource};
use spear_isa::asm::Asm;
use spear_isa::reg::*;
use spear_isa::{Program, SpearBinary};
use spear_mem::HierConfig;

/// A short reduction loop: enough retired instructions that mid-run
/// checkpoints land at a nonzero trace cursor.
fn loop_program() -> Program {
    let mut a = Asm::new();
    let xs = a.alloc_u64("xs", &[3, 1, 4, 1, 5, 9, 2, 6]);
    a.li(R1, xs as i64);
    a.li(R3, 8);
    a.li(R5, 0);
    a.label("sum");
    a.ld(R4, R1, 0);
    a.add(R5, R5, R4);
    a.addi(R1, R1, 8);
    a.addi(R3, R3, -1);
    a.bne(R3, R0, "sum");
    a.halt();
    a.finish().unwrap()
}

/// All warm checkpoints of the loop, boundaries every 10 instructions.
fn checkpoints() -> Vec<Checkpoint> {
    let p = loop_program();
    capture_interval_checkpoints(
        &p,
        "loop",
        HierConfig::paper(),
        PredictorConfig::paper(),
        10,
        1,
        100_000,
    )
    .expect("functional pass")
    .checkpoints
}

#[test]
fn cursor_tracks_the_instruction_index_and_round_trips() {
    let cps = checkpoints();
    assert!(cps.len() > 1, "loop spans several intervals");
    for cp in &cps {
        assert_eq!(
            cp.trace_cursor, cp.inst_index,
            "capture pins the cursor to the retired-instruction count"
        );
        let back = Checkpoint::from_json(&cp.to_json()).expect("parse own output");
        assert_eq!(back.trace_cursor, cp.trace_cursor);
    }
    // Mid-run checkpoints carry a genuinely nonzero cursor.
    assert!(cps.last().unwrap().trace_cursor > 0);
}

#[test]
fn v3_documents_are_rejected_loudly_by_version() {
    // A *real* v4 document downgraded only in its version field — the
    // shape a leftover pre-trace campaign directory would have. The gate
    // must fire on the number alone, not on the (coincidentally present)
    // cursor field.
    let cp = checkpoints().last().unwrap().clone();
    assert_eq!(CHECKPOINT_VERSION, 4);
    let v4 = cp.to_json();
    let v3 = v4.replace("\"version\":4,", "\"version\":3,");
    assert_ne!(v3, v4, "the version field must appear in the document");
    let err = Checkpoint::from_json(&v3).expect_err("v3 must be rejected");
    assert!(
        err.contains("version 3 unsupported (expected 4)"),
        "rejection must name both versions: {err}"
    );
}

#[test]
fn cursor_index_disagreement_is_rejected_naming_both_numbers() {
    let cp = checkpoints().last().unwrap().clone();
    assert!(cp.trace_cursor > 0);
    let json = cp.to_json();
    let needle = format!("\"trace_cursor\":{}", cp.trace_cursor);
    let spliced = json.replace(
        &needle,
        &format!("\"trace_cursor\":{}", cp.trace_cursor + 7),
    );
    assert_ne!(
        spliced, json,
        "the cursor field must appear in the document"
    );
    let err = Checkpoint::from_json(&spliced).expect_err("mismatched cursor");
    assert!(
        err.contains(&format!("{}", cp.trace_cursor + 7))
            && err.contains(&format!("{}", cp.inst_index)),
        "rejection must name both numbers: {err}"
    );
}

#[test]
fn restored_cursor_seeds_a_trace_replay_that_reaches_halt() {
    // End to end: record the loop's committed path, restore a mid-run
    // checkpoint into a trace-driven core positioned at the checkpoint's
    // cursor, and run to completion. A misaligned cursor would trip the
    // replay-divergence guard instead of halting.
    let binary = SpearBinary::plain(loop_program());
    let tf = record_trace("loop", &binary, 1_000_000).expect("record");
    let cps = checkpoints();
    let cp = &cps[cps.len() / 2];
    assert!(cp.trace_cursor > 0 && (cp.trace_cursor as usize) < tf.recs.len());

    let src = TraceSource::at_cursor(&tf, cp.trace_cursor).expect("cursor in range");
    let mut core = Core::with_source(&binary, CoreConfig::baseline(), Box::new(src));
    cp.restore_into(&mut core).expect("restore");
    let res = core
        .run(1_000_000, u64::MAX)
        .expect("replay from mid-run cursor");
    assert_eq!(
        res.exit,
        RunExit::Halted,
        "replay must reach the recorded halt"
    );

    // A cursor past the end of the recording is rejected up front.
    match TraceSource::at_cursor(&tf, tf.recs.len() as u64 + 1) {
        Ok(_) => panic!("cursor beyond trace end must be rejected"),
        Err(err) => assert!(err.contains("cursor"), "{err}"),
    }
}
