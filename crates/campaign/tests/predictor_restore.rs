//! Checkpoint/predictor compatibility: a checkpoint carries the warm
//! state of the *specific* predictor that was configured when it was
//! captured. Restoring it into a core configured with a different
//! predictor kind — or the same kind at a different geometry — must fail
//! loudly instead of silently seeding garbage tables, because a campaign
//! resumed with an edited `--bpreds` list would otherwise produce
//! subtly-wrong hit rates with no error anywhere.

use spear_bpred::PredictorConfig;
use spear_campaign::checkpoint::capture_interval_checkpoints;
use spear_cpu::{Core, CoreConfig};
use spear_isa::asm::Asm;
use spear_isa::reg::*;
use spear_isa::{Program, SpearBinary};
use spear_mem::HierConfig;

/// A short reduction loop: enough conditional branches to train warm
/// predictor state during the functional pass.
fn loop_program() -> Program {
    let mut a = Asm::new();
    let xs = a.alloc_u64("xs", &[3, 1, 4, 1, 5, 9, 2, 6]);
    a.li(R1, xs as i64);
    a.li(R3, 8);
    a.li(R5, 0);
    a.label("sum");
    a.ld(R4, R1, 0);
    a.add(R5, R5, R4);
    a.addi(R1, R1, 8);
    a.addi(R3, R3, -1);
    a.bne(R3, R0, "sum");
    a.halt();
    a.finish().unwrap()
}

/// Warm checkpoints of the loop captured under `bpred`.
fn checkpoint_with(bpred: PredictorConfig) -> spear_campaign::checkpoint::Checkpoint {
    let p = loop_program();
    let set = capture_interval_checkpoints(&p, "loop", HierConfig::paper(), bpred, 10, 1, 100_000)
        .expect("functional pass");
    set.checkpoints
        .last()
        .expect("checkpoints captured")
        .clone()
}

/// A fresh cycle core over the same program, configured with `bpred`.
fn core_with(binary: &SpearBinary, bpred: PredictorConfig) -> Core<'_> {
    let mut cfg = CoreConfig::baseline();
    cfg.bpred = bpred;
    Core::new(binary, cfg)
}

#[test]
fn matching_predictor_restores_cleanly() {
    let cp = checkpoint_with(PredictorConfig::paper());
    let binary = SpearBinary::plain(loop_program());
    let mut core = core_with(&binary, PredictorConfig::paper());
    cp.restore_into(&mut core)
        .expect("matching kind + geometry");
}

#[test]
fn kind_mismatch_is_rejected_loudly() {
    // Warm bimodal state must never seed a TAGE predictor (and vice
    // versa) — the error must name both kinds so the operator can see
    // which side is stale.
    let bimodal = PredictorConfig::paper();
    let tage = PredictorConfig::paper().with_spec("tage").unwrap();
    let binary = SpearBinary::plain(loop_program());

    let cp = checkpoint_with(bimodal);
    let mut core = core_with(&binary, tage);
    let err = cp.restore_into(&mut core).expect_err("bimodal -> tage");
    assert!(
        err.contains("predictor restore"),
        "error must come from the predictor layer: {err}"
    );
    assert!(
        err.contains("bimodal") && err.contains("tage"),
        "error must name both kinds: {err}"
    );

    let cp = checkpoint_with(tage);
    let mut core = core_with(&binary, bimodal);
    let err = cp.restore_into(&mut core).expect_err("tage -> bimodal");
    assert!(
        err.contains("bimodal") && err.contains("tage"),
        "error must name both kinds: {err}"
    );
}

#[test]
fn geometry_mismatch_within_a_kind_is_rejected_loudly() {
    // Same kind, different table sizing: a 1024-entry bimodal snapshot
    // must not restore into the paper's 2048-entry table.
    let small = PredictorConfig {
        table_size: 1024,
        ..PredictorConfig::paper()
    };
    let cp = checkpoint_with(small);
    let binary = SpearBinary::plain(loop_program());
    let mut core = core_with(&binary, PredictorConfig::paper());
    let err = cp
        .restore_into(&mut core)
        .expect_err("1024 -> 2048 bimodal");
    assert!(
        err.contains("predictor restore"),
        "error must come from the predictor layer: {err}"
    );
    assert!(
        err.contains("1024") && err.contains("2048"),
        "error must name both sizes: {err}"
    );
}

#[test]
fn tage_geometry_mismatch_is_rejected_loudly() {
    // Same TAGE kind, different tagged-table count.
    let fat = PredictorConfig::paper()
        .with_spec("tage:tables=6,bits=10,tag=8,hmin=4,hmax=64,decay=262144")
        .unwrap();
    let default = PredictorConfig::paper().with_spec("tage").unwrap();
    let cp = checkpoint_with(fat);
    let binary = SpearBinary::plain(loop_program());
    let mut core = core_with(&binary, default);
    let err = cp.restore_into(&mut core).expect_err("6-table -> 4-table");
    assert!(
        err.contains("tagged tables"),
        "error must point at the table-count mismatch: {err}"
    );
}
