//! Checkpoint v4 on-disk format, end to end: a sparse memory image must
//! round-trip byte-identically through the zero-eliding RLE-hex encoding
//! at a fraction of the naive-hex size, and stale-version documents must
//! fail loudly by version before any field is decoded.

use spear_bpred::PredictorConfig;
use spear_campaign::checkpoint::{capture_interval_checkpoints, Checkpoint, CHECKPOINT_VERSION};
use spear_isa::asm::Asm;
use spear_isa::reg::*;
use spear_isa::Program;
use spear_mem::HierConfig;

const BIG_BYTES: u64 = 512 * 1024;

/// A program whose data image is dominated by an untouched 512 KiB
/// reserve, with a handful of nonzero words scattered through it at a
/// 64 KiB stride — the shape real workload images have (sparse, mostly
/// zero) and the case the RLE-hex encoding exists for.
fn sparse_program() -> Program {
    let mut a = Asm::new();
    let xs = a.alloc_u64("xs", &[3, 1, 4, 1, 5, 9, 2, 6]);
    let big = a.reserve("big", BIG_BYTES);
    a.li(R1, big as i64);
    a.li(R2, 0x00C0_FFEE);
    a.li(R3, 8); // scattered stores, one per 64 KiB page
    a.label("scatter");
    a.sd(R2, R1, 0);
    a.addi(R2, R2, 17);
    a.addi(R1, R1, 64 * 1024);
    a.addi(R3, R3, -1);
    a.bne(R3, R0, "scatter");
    // A short reduction loop for warm predictor and cache state.
    a.li(R1, xs as i64);
    a.li(R3, 8);
    a.li(R5, 0);
    a.label("sum");
    a.ld(R4, R1, 0);
    a.add(R5, R5, R4);
    a.addi(R1, R1, 8);
    a.addi(R3, R3, -1);
    a.bne(R3, R0, "sum");
    a.halt();
    a.finish().unwrap()
}

/// A mid-run checkpoint of the sparse program, carrying both the
/// scattered stores and warm microarchitectural state.
fn sparse_checkpoint() -> Checkpoint {
    let p = sparse_program();
    let set = capture_interval_checkpoints(
        &p,
        "sparse",
        HierConfig::paper(),
        PredictorConfig::paper(),
        20, // interval: checkpoint boundaries every 20 instructions
        1,
        1_000_000,
    )
    .expect("functional pass");
    // Pick the last checkpoint: all eight scattered stores have landed
    // and the sum loop has trained the predictor.
    set.checkpoints
        .last()
        .expect("checkpoints captured")
        .clone()
}

#[test]
fn sparse_image_round_trips_byte_identically() {
    let cp = sparse_checkpoint();
    assert!(
        cp.mem.as_bytes().len() as u64 >= BIG_BYTES,
        "the image must contain the 512 KiB reserve"
    );
    let json = cp.to_json();
    let back = Checkpoint::from_json(&json).expect("parse own output");

    // Every field survives, the memory image byte for byte.
    assert_eq!(back.workload, cp.workload);
    assert_eq!(back.inst_index, cp.inst_index);
    assert_eq!(back.pc, cp.pc);
    assert_eq!(back.regs, cp.regs);
    assert_eq!(back.mem.as_bytes(), cp.mem.as_bytes());
    assert_eq!(back.hier, cp.hier);
    assert_eq!(back.pred, cp.pred);

    // Serialization is a fixed point: decode→encode reproduces the
    // document byte-identically (no drift across save/load cycles).
    assert_eq!(back.to_json(), json);
}

#[test]
fn zero_pages_shrink_the_document_far_below_naive_hex() {
    let cp = sparse_checkpoint();
    let json = cp.to_json();
    // Naive v1 spelled every byte as two hex characters; the scattered
    // stores touch ~64 bytes of the 512 KiB reserve, so v2 must encode
    // the image in a small fraction of that.
    let naive_hex_chars = 2 * cp.mem.as_bytes().len();
    assert!(naive_hex_chars >= 2 * BIG_BYTES as usize);
    assert!(
        json.len() < naive_hex_chars / 10,
        "sparse image should elide zero runs: {} chars vs {} naive",
        json.len(),
        naive_hex_chars
    );
}

#[test]
fn stale_document_is_rejected_loudly_by_version() {
    // A *real* v4 document downgraded only in its version field — the
    // gate must fire on the number alone, before any field decoding
    // could produce a confusing missing-field error.
    let cp = sparse_checkpoint();
    assert_eq!(CHECKPOINT_VERSION, 4);
    let v4 = cp.to_json();
    let v1 = v4.replace("\"version\":4,", "\"version\":1,");
    assert_ne!(v1, v4, "the version field must appear in the document");
    let err = Checkpoint::from_json(&v1).expect_err("v1 must be rejected");
    assert!(
        err.contains("version 1 unsupported (expected 4)"),
        "rejection must name both versions: {err}"
    );
}

#[test]
fn truncated_and_corrupt_documents_fail_without_panicking() {
    let cp = sparse_checkpoint();
    let json = cp.to_json();
    // Truncation at any prefix must error, not panic.
    for cut in [0, 1, json.len() / 2, json.len() - 1] {
        assert!(Checkpoint::from_json(&json[..cut]).is_err(), "cut at {cut}");
    }
    // A corrupted RLE token inside the memory image must error.
    let corrupt = json.replacen('z', "y", 1);
    assert_ne!(corrupt, json, "image should contain a zero-run token");
    assert!(Checkpoint::from_json(&corrupt).is_err());
}
