//! Basic-block-vector stability across instruction supplies.
//!
//! SimPoint phase clustering keys everything off block ids, which are
//! basic-block entry PCs of the *committed* path. Those ids must be a
//! pure function of the committed instruction stream: collecting BBVs
//! twice from the interpreter must agree exactly, replaying the
//! committed path out of a recorded `.spt` trace must reproduce the
//! same vectors id-for-id and count-for-count, and the clustering-time
//! warming pass must see the same stream length the BBV pass tiled —
//! otherwise representative boundaries would drift between passes and
//! the phase weights would blend the wrong intervals.

use spear_campaign::capture_checkpoints_at;
use spear_compiler::{CompilerConfig, SpearCompiler};
use spear_exec::{collect_bbvs, BbvCollector};
use spear_workloads::by_name;

const BUDGET: u64 = 50_000_000;
const INTERVAL: u64 = 20_000;

fn field_binary() -> spear_isa::SpearBinary {
    let w = by_name("field").unwrap();
    let (compiled, _) = SpearCompiler::new(CompilerConfig::default())
        .compile(&w.profile_program())
        .unwrap();
    SpearCompiler::attach(w.eval_program(), compiled.table)
}

#[test]
fn bbv_collection_is_deterministic() {
    let binary = field_binary();
    let (a, total_a) = collect_bbvs(&binary.program, INTERVAL, BUDGET).unwrap();
    let (b, total_b) = collect_bbvs(&binary.program, INTERVAL, BUDGET).unwrap();
    assert_eq!(total_a, total_b);
    assert_eq!(a, b, "two BBV passes over the same program must agree");
    assert_eq!(a.iter().map(|iv| iv.len).sum::<u64>(), total_a);
}

#[test]
fn replayed_trace_reproduces_interpreter_block_ids() {
    let binary = field_binary();
    let (direct, total) = collect_bbvs(&binary.program, INTERVAL, BUDGET).unwrap();

    // Record the committed path, then drive a second collector from the
    // decoded trace alone: current PC walks `start_pc` → `rec.next_pc`,
    // and control-ness comes from the static instruction text — exactly
    // what a trace-driven front end knows.
    let (bytes, rstats) = spear_trace::record(&binary, BUDGET).unwrap();
    assert!(rstats.halted, "workload must halt inside the budget");
    assert_eq!(
        rstats.insts, total,
        "the trace records the same stream the BBV pass tiled"
    );
    let tf = spear_trace::TraceFile::decode(&bytes).unwrap();
    let mut collector = BbvCollector::new(INTERVAL);
    let mut pc = tf.start_pc;
    for rec in &tf.recs {
        let inst = &tf.binary.program.insts[pc as usize];
        collector.observe_committed(pc, inst.op.is_ctrl());
        pc = rec.next_pc;
    }
    let replayed = collector.finish();
    assert_eq!(
        replayed, direct,
        "block ids and counts must be identical under the replay supply"
    );
}

#[test]
fn warming_pass_sees_the_stream_the_bbv_pass_tiled() {
    let binary = field_binary();
    let (bbvs, total) = collect_bbvs(&binary.program, INTERVAL, BUDGET).unwrap();
    // Checkpoint at a few BBV interval starts, the way the simpoint
    // prepare path checkpoints representative boundaries.
    let boundaries: Vec<u64> = bbvs.iter().step_by(2).map(|iv| iv.start_inst).collect();
    let set = capture_checkpoints_at(
        &binary.program,
        "field",
        spear_mem::HierConfig::paper(),
        spear_bpred::PredictorConfig::paper(),
        &boundaries,
        BUDGET,
    )
    .unwrap();
    assert_eq!(set.total_insts, total, "both passes run the same stream");
    assert_eq!(set.checkpoints.len(), boundaries.len());
    for (cp, &b) in set.checkpoints.iter().zip(&boundaries) {
        assert_eq!(cp.inst_index, b, "checkpoints land exactly on BBV starts");
    }
}
