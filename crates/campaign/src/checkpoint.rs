//! Checkpoints: architectural + warm microarchitectural state captured
//! after a functional fast-forward, restorable into the cycle core.
//!
//! A checkpoint holds everything needed to start cycle-level simulation
//! mid-program:
//!
//! - **architectural state** — the register file, the full memory image
//!   and the next PC, produced by the functional [`Interp`];
//! - **warm microarchitectural state** — cache hierarchy contents (tags,
//!   validity, dirtiness, LRU order) and branch-predictor state
//!   (direction counters, BTB, return stack), accumulated by a
//!   [`Warmer`] that observes every functionally executed instruction.
//!
//! Warm state is deliberately *quiesced*: nothing is in flight. In-flight
//! fills, prefetch ownership and all statistics are reset on restore so a
//! restored simulation measures only its own region. The warm substrate
//! (Table 2 cache geometry + predictor sizing) is shared by all five
//! evaluated machine models and is independent of the memory-latency
//! sweep, so one functional pass per workload yields checkpoints reusable
//! across every (machine, latency) point of a campaign.

use serde::{Deserialize, Serialize};
use spear_bpred::{Predictor, PredictorConfig, PredictorSnapshot};
use spear_cpu::Core;
use spear_exec::{Interp, Memory, RegFile, StepInfo};
use spear_isa::Program;
use spear_mem::{AccessKind, HierConfig, HierSnapshot, Hierarchy};

/// Version of the checkpoint JSON format. Bump on any breaking change.
///
/// v1 stored the memory image as plain hex (two characters per byte,
/// even for the untouched zero pages that dominate a data image); v2
/// stores zero-eliding RLE-hex (see [`to_rle_hex`]); v3 replaces the
/// flat bimodal/gshare predictor snapshot with the kind-tagged
/// polymorphic `PredictorSnapshot` (direction state under a `dir`
/// envelope whose `kind` tag names the predictor, so a checkpoint can
/// never silently restore into the wrong predictor); v4 adds the
/// trace-cursor snapshot — the retired-instruction index a trace-driven
/// front end must resume replay at — so a trace-backed campaign cell can
/// restore mid-stream, and rejects documents whose cursor disagrees with
/// the instruction index. Old documents are rejected loudly by version
/// before any field is decoded.
pub const CHECKPOINT_VERSION: u32 = 4;

/// A restorable simulation state at an instruction boundary.
#[derive(Clone, Debug)]
pub struct Checkpoint {
    /// Workload name this checkpoint belongs to.
    pub workload: String,
    /// Instructions retired before this point (the interval boundary).
    pub inst_index: u64,
    /// Replay cursor for a trace-driven front end: the record index a
    /// `.spt` replay must resume at. Equal to [`Checkpoint::inst_index`]
    /// by construction (a trace stores one record per retired
    /// instruction); persisted separately so a tampered or
    /// wrongly-spliced document is rejected instead of silently
    /// replaying the wrong stream position.
    pub trace_cursor: u64,
    /// Next PC.
    pub pc: u32,
    /// Architectural register file.
    pub regs: RegFile,
    /// Full data-memory image.
    pub mem: Memory,
    /// Warm cache hierarchy contents.
    pub hier: HierSnapshot,
    /// Warm branch-predictor state.
    pub pred: PredictorSnapshot,
}

impl Checkpoint {
    /// Capture the current state of a functional fast-forward.
    pub fn capture(workload: &str, interp: &Interp<'_>, warmer: &Warmer) -> Checkpoint {
        Checkpoint {
            workload: workload.to_string(),
            inst_index: interp.icount,
            trace_cursor: interp.icount,
            pc: interp.pc,
            regs: interp.regs.clone(),
            mem: interp.mem.clone(),
            hier: warmer.hier_snapshot(),
            pred: warmer.pred_snapshot(),
        }
    }

    /// Seed a freshly built cycle core with this checkpoint: both
    /// register files, the memory image, the fetch PC, warm caches and
    /// warm predictor tables. The core must not have simulated a cycle
    /// yet; its statistics stay zeroed so a subsequent run measures
    /// exactly the restored interval.
    pub fn restore_into(&self, core: &mut Core<'_>) -> Result<(), String> {
        core.restore_arch_state(&self.regs, self.mem.clone(), self.pc);
        core.hierarchy_mut()
            .restore(&self.hier)
            .map_err(|e| format!("hierarchy restore: {e}"))?;
        core.predictor_mut()
            .restore(&self.pred)
            .map_err(|e| format!("predictor restore: {e}"))?;
        Ok(())
    }

    /// Resume a functional interpreter from this checkpoint (for chained
    /// fast-forwarding without re-executing from instruction 0).
    pub fn resume_interp<'p>(&self, program: &'p Program) -> Interp<'p> {
        Interp::from_state(
            program,
            self.regs.clone(),
            self.mem.clone(),
            self.pc,
            self.inst_index,
        )
    }

    /// Serialize to a self-contained JSON document (memory RLE-hex
    /// encoded — zero runs elided, see [`to_rle_hex`]).
    pub fn to_json(&self) -> String {
        let doc = CheckpointDoc {
            version: CHECKPOINT_VERSION,
            workload: self.workload.clone(),
            inst_index: self.inst_index,
            trace_cursor: self.trace_cursor,
            pc: self.pc,
            regs: self.regs.to_bits(),
            mem_rle: to_rle_hex(self.mem.as_bytes()),
            hier: self.hier.clone(),
            pred: self.pred.clone(),
        };
        serde::json::to_string(&doc)
    }

    /// Parse a document produced by [`Checkpoint::to_json`].
    ///
    /// The version gate runs before full field decoding, so an old
    /// document fails with an explicit version message rather than an
    /// incidental missing-field error.
    pub fn from_json(s: &str) -> Result<Checkpoint, String> {
        let v = serde::json::parse(s).map_err(|e| format!("checkpoint parse: {e:?}"))?;
        let version = v
            .field("version")
            .and_then(u32::from_value)
            .map_err(|e| format!("checkpoint parse: {e:?}"))?;
        if version != CHECKPOINT_VERSION {
            return Err(format!(
                "checkpoint version {version} unsupported (expected {CHECKPOINT_VERSION})"
            ));
        }
        let doc = CheckpointDoc::from_value(&v).map_err(|e| format!("checkpoint parse: {e:?}"))?;
        if doc.trace_cursor != doc.inst_index {
            return Err(format!(
                "checkpoint trace cursor {} does not match instruction index {} — \
                 refusing a cursor-mismatched restore",
                doc.trace_cursor, doc.inst_index
            ));
        }
        Ok(Checkpoint {
            workload: doc.workload,
            inst_index: doc.inst_index,
            trace_cursor: doc.trace_cursor,
            pc: doc.pc,
            regs: RegFile::from_bits(&doc.regs)?,
            mem: Memory::from_bytes(from_rle_hex(&doc.mem_rle)?),
            hier: doc.hier,
            pred: doc.pred,
        })
    }
}

/// The on-disk shape of a checkpoint (vendored-serde friendly: named
/// fields, scalars, `Vec`s and strings only).
#[derive(Serialize, Deserialize)]
struct CheckpointDoc {
    version: u32,
    workload: String,
    inst_index: u64,
    trace_cursor: u64,
    pc: u32,
    regs: Vec<u64>,
    mem_rle: String,
    hier: HierSnapshot,
    pred: PredictorSnapshot,
}

/// Minimum zero-run length worth a `z<len>.` token. A run of `n` zero
/// bytes costs `2n` characters as hex and `2 + digits(n)` as a token,
/// so two bytes is already a win.
const MIN_ZERO_RUN: usize = 2;

/// Encode a byte image as zero-eliding RLE-hex: literal stretches are
/// plain lowercase hex (two characters per byte) and every run of
/// [`MIN_ZERO_RUN`]-or-more zero bytes becomes a `z<len>.` token. Hex
/// digits never include `z` or `.`, so decoding is unambiguous. Data
/// images are dominated by untouched zero pages, which this shrinks
/// from two characters per byte to a handful per run.
fn to_rle_hex(bytes: &[u8]) -> String {
    const DIGITS: &[u8; 16] = b"0123456789abcdef";
    let mut s = String::new();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == 0 {
            let run = bytes[i..].iter().take_while(|&&b| b == 0).count();
            if run >= MIN_ZERO_RUN {
                s.push('z');
                s.push_str(&run.to_string());
                s.push('.');
                i += run;
                continue;
            }
        }
        s.push(DIGITS[(bytes[i] >> 4) as usize] as char);
        s.push(DIGITS[(bytes[i] & 0xF) as usize] as char);
        i += 1;
    }
    s
}

/// Decode [`to_rle_hex`] output back into the byte image.
fn from_rle_hex(s: &str) -> Result<Vec<u8>, String> {
    let nibble = |c: u8| -> Result<u8, String> {
        match c {
            b'0'..=b'9' => Ok(c - b'0'),
            b'a'..=b'f' => Ok(c - b'a' + 10),
            b'A'..=b'F' => Ok(c - b'A' + 10),
            _ => Err(format!("invalid hex digit {:?}", c as char)),
        }
    };
    let raw = s.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < raw.len() {
        if raw[i] == b'z' {
            let end = raw[i + 1..]
                .iter()
                .position(|&c| c == b'.')
                .map(|p| i + 1 + p)
                .ok_or("unterminated zero-run token in memory image")?;
            let run: usize = s[i + 1..end]
                .parse()
                .map_err(|_| format!("bad zero-run length {:?}", &s[i + 1..end]))?;
            out.resize(out.len() + run, 0);
            i = end + 1;
        } else {
            if i + 1 >= raw.len() {
                return Err("odd-length hex stretch in memory image".to_string());
            }
            out.push((nibble(raw[i])? << 4) | nibble(raw[i + 1])?);
            i += 2;
        }
    }
    Ok(out)
}

/// Accumulates warm microarchitectural state during a functional
/// fast-forward, mirroring what the cycle core's front end and memory
/// system would have learned over the same instruction stream:
///
/// - every load/store is pushed through a scratch [`Hierarchy`] (demand
///   path, no p-thread traffic — functional warming predates any
///   pre-execution);
/// - instruction fetch touches the L1I once per block transition, the
///   same charging rule the core's fetch stage uses;
/// - every control instruction is predicted then resolved, so direction
///   counters, the BTB and the return stack track the true path.
///
/// Warming time advances by one "cycle" per instruction, so outstanding
/// fills expire after a bounded window and the final state is quiesced.
pub struct Warmer {
    hier: Hierarchy,
    pred: Predictor,
    last_fetch_block: Option<u64>,
    now: u64,
}

impl Warmer {
    /// A cold warmer over the given substrate configuration.
    pub fn new(hier_cfg: HierConfig, bpred_cfg: PredictorConfig) -> Warmer {
        Warmer {
            hier: Hierarchy::new(hier_cfg),
            pred: Predictor::new(bpred_cfg),
            last_fetch_block: None,
            now: 0,
        }
    }

    /// Observe one functionally executed instruction.
    pub fn observe(&mut self, si: &StepInfo) {
        self.now += 1;
        // Instruction side: one L1I access per block transition.
        let addr = Program::inst_addr(si.pc);
        let block = addr / self.hier.l1i.geometry().block_bytes as u64;
        if self.last_fetch_block != Some(block) {
            self.hier.access_inst(addr);
            self.last_fetch_block = Some(block);
        }
        // Branch predictor: predict (keeps the RAS in step with calls and
        // returns), then resolve with the architectural outcome.
        if si.inst.op.is_ctrl() {
            let pred = self.pred.predict(si.pc, &si.inst);
            let taken = si.outcome.taken.unwrap_or(true);
            self.pred
                .update(si.pc, &si.inst, taken, si.outcome.next_pc, Some(pred));
        }
        // Data side: demand accesses at functional time.
        if let Some(ea) = si.outcome.eff_addr {
            let kind = if si.inst.op.is_store() {
                AccessKind::Write
            } else {
                AccessKind::Read
            };
            self.hier.access_data(ea, kind, si.pc, false, self.now);
        }
    }

    /// Warm cache contents accumulated so far.
    pub fn hier_snapshot(&self) -> HierSnapshot {
        self.hier.snapshot()
    }

    /// Warm predictor state accumulated so far.
    pub fn pred_snapshot(&self) -> PredictorSnapshot {
        self.pred.snapshot()
    }
}

/// All checkpoints needed to cycle-simulate the sampled intervals of one
/// workload, plus the workload's true dynamic length.
#[derive(Clone, Debug)]
pub struct CheckpointSet {
    /// One checkpoint per *sampled* interval, at its start boundary,
    /// ascending by [`Checkpoint::inst_index`].
    pub checkpoints: Vec<Checkpoint>,
    /// Total dynamic instructions to `halt`.
    pub total_insts: u64,
}

impl CheckpointSet {
    /// The checkpoint at exactly `inst_index`, if one was captured.
    pub fn at(&self, inst_index: u64) -> Option<&Checkpoint> {
        self.checkpoints
            .binary_search_by_key(&inst_index, |c| c.inst_index)
            .ok()
            .map(|i| &self.checkpoints[i])
    }
}

/// Run one functional pass over `program`, capturing a checkpoint at the
/// start of every sampled interval: boundaries are multiples of
/// `interval_len`, and interval `k` is sampled when `k % stride == 0`.
/// The pass drives the [`Warmer`] over every instruction (including the
/// skipped intervals — warming is continuous even where cycle simulation
/// is not), so each checkpoint carries fully warm state.
///
/// `max_insts` bounds runaway programs; reaching it is an error (a
/// campaign needs the true program length to weight its aggregate).
pub fn capture_interval_checkpoints(
    program: &Program,
    workload: &str,
    hier_cfg: HierConfig,
    bpred_cfg: PredictorConfig,
    interval_len: u64,
    stride: u64,
    max_insts: u64,
) -> Result<CheckpointSet, String> {
    assert!(interval_len > 0, "interval length must be nonzero");
    assert!(stride > 0, "stride must be nonzero");
    let mut interp = Interp::new(program);
    let mut warmer = Warmer::new(hier_cfg, bpred_cfg);
    let mut checkpoints = Vec::new();
    loop {
        if interp.halted {
            break;
        }
        if interp.icount >= max_insts {
            return Err(format!(
                "{workload}: functional pass exceeded {max_insts} instructions without halting"
            ));
        }
        if interp.icount.is_multiple_of(interval_len)
            && (interp.icount / interval_len).is_multiple_of(stride)
        {
            checkpoints.push(Checkpoint::capture(workload, &interp, &warmer));
        }
        let si = interp
            .step()
            .map_err(|e| format!("{workload}: functional pass failed: {e}"))?;
        warmer.observe(&si);
    }
    Ok(CheckpointSet {
        checkpoints,
        total_insts: interp.icount,
    })
}

/// Run one functional pass over `program`, capturing a checkpoint at each
/// of the explicitly named instruction `boundaries` (ascending, deduped by
/// the caller — typically the start instructions of SimPoint
/// representative intervals). Like [`capture_interval_checkpoints`], the
/// [`Warmer`] observes *every* instruction, so each checkpoint carries the
/// warm state of the whole prefix, not just the sampled regions.
///
/// Boundaries at or past the program's halt point are an error: a phase
/// representative must exist inside the dynamic stream that produced it.
pub fn capture_checkpoints_at(
    program: &Program,
    workload: &str,
    hier_cfg: HierConfig,
    bpred_cfg: PredictorConfig,
    boundaries: &[u64],
    max_insts: u64,
) -> Result<CheckpointSet, String> {
    debug_assert!(
        boundaries.windows(2).all(|w| w[0] < w[1]),
        "boundaries must be ascending and unique"
    );
    let mut interp = Interp::new(program);
    let mut warmer = Warmer::new(hier_cfg, bpred_cfg);
    let mut checkpoints = Vec::new();
    let mut next = 0usize;
    loop {
        if interp.halted {
            break;
        }
        if interp.icount >= max_insts {
            return Err(format!(
                "{workload}: functional pass exceeded {max_insts} instructions without halting"
            ));
        }
        if next < boundaries.len() && interp.icount == boundaries[next] {
            checkpoints.push(Checkpoint::capture(workload, &interp, &warmer));
            next += 1;
        }
        let si = interp
            .step()
            .map_err(|e| format!("{workload}: functional pass failed: {e}"))?;
        warmer.observe(&si);
    }
    if next < boundaries.len() {
        return Err(format!(
            "{workload}: checkpoint boundary {} lies at or past the program's halt point ({})",
            boundaries[next], interp.icount
        ));
    }
    Ok(CheckpointSet {
        checkpoints,
        total_insts: interp.icount,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use spear_isa::asm::Asm;
    use spear_isa::reg::*;

    /// A pointer-chase over an array large enough to leave warm cache
    /// state behind, with a loop branch for the predictor.
    fn chase_program(n: u64) -> Program {
        let mut a = Asm::new();
        let xs: Vec<u64> = (0..n).map(|i| i.wrapping_mul(2654435761) % 97).collect();
        let base = a.alloc_u64("xs", &xs);
        let out = a.reserve("out", 8);
        a.li(R1, base as i64);
        a.li(R2, 0);
        a.li(R3, n as i64);
        a.label("loop");
        a.ld(R4, R1, 0);
        a.add(R2, R2, R4);
        a.addi(R1, R1, 8);
        a.addi(R3, R3, -1);
        a.bne(R3, R0, "loop");
        a.li(R5, out as i64);
        a.sd(R2, R5, 0);
        a.halt();
        a.finish().unwrap()
    }

    #[test]
    fn rle_hex_round_trip() {
        // All byte values, with zero runs of every interesting length
        // (none, single, exactly MIN_ZERO_RUN, long) spliced between.
        let mut bytes: Vec<u8> = (0..=255).collect();
        bytes.splice(0..0, [0u8; 1]);
        bytes.extend([0u8; 2]);
        bytes.push(7);
        bytes.extend([0u8; 4096]);
        assert_eq!(from_rle_hex(&to_rle_hex(&bytes)).unwrap(), bytes);
        assert_eq!(from_rle_hex(&to_rle_hex(&[])).unwrap(), Vec::<u8>::new());
        assert!(from_rle_hex("0").is_err(), "odd literal stretch rejected");
        assert!(from_rle_hex("qq").is_err(), "non-hex rejected");
        assert!(from_rle_hex("z12").is_err(), "unterminated run rejected");
        assert!(from_rle_hex("z.").is_err(), "empty run length rejected");
    }

    #[test]
    fn zero_pages_are_elided_not_spelled_out() {
        let mut bytes = vec![0u8; 64 * 1024];
        bytes[123] = 0xAB;
        let enc = to_rle_hex(&bytes);
        assert!(
            enc.len() < 64,
            "a near-empty 64 KiB image must encode in a few tokens, got {} chars",
            enc.len()
        );
        assert_eq!(from_rle_hex(&enc).unwrap(), bytes);
    }

    #[test]
    fn v1_checkpoint_documents_fail_loudly_by_version() {
        // A minimal v1-shaped document (hex memory image, version 1).
        let v1 = r#"{"version": 1, "workload": "chase", "inst_index": 0, "pc": 0,
                     "regs": [], "mem_hex": "00ff"}"#;
        let err = Checkpoint::from_json(v1).unwrap_err();
        assert!(
            err.contains("version 1 unsupported (expected 4)"),
            "the version gate must fire before field decoding: {err}"
        );
    }

    #[test]
    fn capture_covers_sampled_intervals_and_total_length() {
        let p = chase_program(100);
        let set = capture_interval_checkpoints(
            &p,
            "chase",
            HierConfig::paper(),
            PredictorConfig::paper(),
            100,
            2,
            1_000_000,
        )
        .unwrap();
        // 100-iteration loop: 3 + 100*5 + 2 + 1 = 506 instructions.
        assert_eq!(set.total_insts, 506);
        // Intervals 0..6; sampled 0, 2, 4 (stride 2).
        let idx: Vec<u64> = set.checkpoints.iter().map(|c| c.inst_index).collect();
        assert_eq!(idx, vec![0, 200, 400]);
        assert!(set.at(200).is_some());
        assert!(set.at(100).is_none());
    }

    #[test]
    fn capture_at_explicit_boundaries_matches_interval_capture() {
        let p = chase_program(100);
        // The interval pass at (100, stride 2) captures at 0, 200, 400.
        let by_interval = capture_interval_checkpoints(
            &p,
            "chase",
            HierConfig::paper(),
            PredictorConfig::paper(),
            100,
            2,
            1_000_000,
        )
        .unwrap();
        let by_boundary = capture_checkpoints_at(
            &p,
            "chase",
            HierConfig::paper(),
            PredictorConfig::paper(),
            &[0, 200, 400],
            1_000_000,
        )
        .unwrap();
        assert_eq!(by_boundary.total_insts, by_interval.total_insts);
        assert_eq!(by_boundary.checkpoints.len(), 3);
        for (a, b) in by_boundary.checkpoints.iter().zip(&by_interval.checkpoints) {
            // Same boundary + same warming history => identical documents.
            assert_eq!(a.to_json(), b.to_json());
        }
        // A boundary past halt is a loud error, not a silent omission.
        let err = capture_checkpoints_at(
            &p,
            "chase",
            HierConfig::paper(),
            PredictorConfig::paper(),
            &[0, 1_000_000 - 1],
            1_000_000,
        )
        .unwrap_err();
        assert!(err.contains("halt point"), "{err}");
    }

    #[test]
    fn checkpoint_resumes_functional_execution_exactly() {
        let p = chase_program(50);
        let set = capture_interval_checkpoints(
            &p,
            "chase",
            HierConfig::paper(),
            PredictorConfig::paper(),
            64,
            1,
            1_000_000,
        )
        .unwrap();
        // Reference: uninterrupted run.
        let mut whole = Interp::new(&p);
        whole.run(u64::MAX).unwrap();
        // Resume from the second checkpoint and run to halt: identical
        // final architectural state.
        let cp = &set.checkpoints[1];
        let mut resumed = cp.resume_interp(&p);
        assert_eq!(resumed.icount, cp.inst_index);
        resumed.run(u64::MAX).unwrap();
        assert_eq!(resumed.icount, whole.icount);
        assert_eq!(resumed.state_checksum(), whole.state_checksum());
    }

    #[test]
    fn json_round_trip_preserves_everything() {
        let p = chase_program(40);
        let set = capture_interval_checkpoints(
            &p,
            "chase",
            HierConfig::paper(),
            PredictorConfig::paper(),
            100,
            1,
            1_000_000,
        )
        .unwrap();
        let cp = &set.checkpoints[1];
        let back = Checkpoint::from_json(&cp.to_json()).expect("round trip");
        assert_eq!(back.workload, cp.workload);
        assert_eq!(back.inst_index, cp.inst_index);
        assert_eq!(back.trace_cursor, cp.trace_cursor);
        assert_eq!(back.pc, cp.pc);
        assert_eq!(back.regs, cp.regs);
        assert_eq!(back.mem, cp.mem);
        assert_eq!(back.hier, cp.hier);
        assert_eq!(back.pred, cp.pred);
    }

    #[test]
    fn warm_checkpoint_carries_cache_and_predictor_state() {
        let p = chase_program(100);
        let set = capture_interval_checkpoints(
            &p,
            "chase",
            HierConfig::paper(),
            PredictorConfig::paper(),
            200,
            1,
            1_000_000,
        )
        .unwrap();
        let cold = &set.checkpoints[0];
        let warm = &set.checkpoints[1];
        assert_eq!(cold.inst_index, 0);
        // The cold checkpoint has empty caches; the warm one does not.
        let cold_valid: u32 = cold.hier.l1d.flags.iter().map(|&f| (f & 1) as u32).sum();
        let warm_valid: u32 = warm.hier.l1d.flags.iter().map(|&f| (f & 1) as u32).sum();
        assert_eq!(cold_valid, 0);
        assert!(warm_valid > 0, "functional warming filled L1D lines");
        // The loop branch trained the bimodal table away from its reset
        // state (all counters weakly-not-taken = 1).
        let spear_bpred::DirSnapshot::Bimodal { counters } = &warm.pred.dir else {
            panic!("paper default is bimodal, got {:?}", warm.pred.dir.kind());
        };
        assert!(counters.iter().any(|&c| c != 1));
    }

    #[test]
    fn warming_respects_the_configured_predictor_kind() {
        let p = chase_program(100);
        let cfg = PredictorConfig::paper().with_spec("tage").unwrap();
        let set =
            capture_interval_checkpoints(&p, "chase", HierConfig::paper(), cfg, 200, 1, 1_000_000)
                .unwrap();
        let warm = &set.checkpoints[1];
        assert_eq!(warm.pred.dir.kind(), spear_bpred::PredictorKind::Tage);
        // And the tagged payload survives the JSON round trip.
        let back = Checkpoint::from_json(&warm.to_json()).expect("round trip");
        assert_eq!(back.pred, warm.pred);
    }
}
