//! The checkpoint-shard cache: warm per-workload state (compiled binary,
//! functional-pass checkpoints, interval plan) built once and shared
//! read-only across every cell of every job that needs it.
//!
//! Phase 1 of a campaign — compile the p-thread table, run the functional
//! pass, capture warm checkpoints — is the expensive fixed cost of a
//! sweep, and it depends only on `(workload, predictor, interval_len,
//! stride)`, never on the (machine, latency) grid. (The predictor is part
//! of the key because the warmer trains the *configured* predictor, so
//! warm checkpoints differ per predictor spec.) A resident server running
//! many jobs over the same workloads would otherwise pay it once per job;
//! with the cache it pays once per shard, and a 10k–1M-cell grid runs in
//! O(shards) memory.
//!
//! Eviction is least-recently-used under a byte budget (sizes estimated
//! by [`WorkloadData::approx_bytes`]). An entry being *used* by a running
//! job is an `Arc` clone, so eviction never invalidates in-flight work —
//! it only drops the cache's own reference.

use crate::engine::WorkloadData;
use crate::sample::SampleSpec;
use parking_lot::Mutex;
use std::sync::Arc;

/// Cache key: the parameters phase-1 state actually depends on —
/// workload spec, canonical predictor spec label, instruction-supply
/// discriminator (`program`, or `trace` when the shard also carries a
/// recorded replay stream), SimPoint discriminator (`off`, or the
/// clustering label `k<k>:seed<seed>` — simpoint shards carry different
/// checkpoints and weights), interval length, stride.
type ShardKey = (String, String, String, String, u64, u64);

/// Cumulative cache counters, for `/metrics`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardCacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that had to build the shard.
    pub misses: u64,
    /// Entries evicted to stay under the byte budget.
    pub evictions: u64,
    /// Estimated bytes currently resident.
    pub resident_bytes: u64,
    /// Entries currently resident.
    pub entries: u64,
}

struct Entry {
    key: ShardKey,
    data: Arc<WorkloadData>,
    bytes: u64,
}

struct Inner {
    /// Most-recently-used last.
    entries: Vec<Entry>,
    bytes: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

/// An LRU cache of [`WorkloadData`] shards under a byte budget.
pub struct ShardCache {
    budget: u64,
    inner: Mutex<Inner>,
}

impl ShardCache {
    /// A cache that keeps at most ~`budget_bytes` of estimated shard
    /// state resident (a single shard larger than the whole budget is
    /// still cached — the budget bounds the *sum*, evicting down to one
    /// entry at minimum).
    pub fn new(budget_bytes: u64) -> ShardCache {
        ShardCache {
            budget: budget_bytes,
            inner: Mutex::new(Inner {
                entries: Vec::new(),
                bytes: 0,
                hits: 0,
                misses: 0,
                evictions: 0,
            }),
        }
    }

    /// The configured byte budget.
    pub fn budget_bytes(&self) -> u64 {
        self.budget
    }

    /// Fetch the shard for `(workload, bpred, supply, simpoint,
    /// sample)`, building it with `build` on a miss. `supply`
    /// discriminates shards that carry a recorded replay trace (`trace`)
    /// from plain program-driven ones (`program`), and `simpoint` keys
    /// phase-clustered shards (checkpoints at representative boundaries,
    /// population-count weights) apart from systematic ones (`off`) —
    /// neither pair is interchangeable, so they cache separately.
    /// Building happens *outside* the cache lock so a slow
    /// functional pass never blocks hits on other shards; if two threads
    /// race to build the same key, the first insert wins and the loser's
    /// copy is dropped.
    pub fn get_or_create(
        &self,
        workload: &str,
        bpred: &str,
        supply: &str,
        simpoint: &str,
        sample: &SampleSpec,
        build: impl FnOnce() -> Result<WorkloadData, String>,
    ) -> Result<Arc<WorkloadData>, String> {
        let key: ShardKey = (
            workload.to_string(),
            bpred.to_string(),
            supply.to_string(),
            simpoint.to_string(),
            sample.interval_len,
            sample.stride,
        );
        {
            let mut g = self.inner.lock();
            if let Some(i) = g.entries.iter().position(|e| e.key == key) {
                g.hits += 1;
                // Touch: move to most-recently-used.
                let e = g.entries.remove(i);
                let data = e.data.clone();
                g.entries.push(e);
                return Ok(data);
            }
            g.misses += 1;
        }
        let built = Arc::new(build()?);
        let bytes = built.approx_bytes();
        let mut g = self.inner.lock();
        if let Some(i) = g.entries.iter().position(|e| e.key == key) {
            // Lost a build race; keep the incumbent.
            let e = g.entries.remove(i);
            let data = e.data.clone();
            g.entries.push(e);
            return Ok(data);
        }
        g.entries.push(Entry {
            key,
            data: built.clone(),
            bytes,
        });
        g.bytes += bytes;
        while g.bytes > self.budget && g.entries.len() > 1 {
            let victim = g.entries.remove(0);
            g.bytes -= victim.bytes;
            g.evictions += 1;
        }
        Ok(built)
    }

    /// Current counters.
    pub fn stats(&self) -> ShardCacheStats {
        let g = self.inner.lock();
        ShardCacheStats {
            hits: g.hits,
            misses: g.misses,
            evictions: g.evictions,
            resident_bytes: g.bytes,
            entries: g.entries.len() as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::CheckpointSet;
    use spear_isa::{PThreadTable, Program, SpearBinary};

    /// A synthetic shard whose approx_bytes is the per-checkpoint flat
    /// overhead times `checkpoints` (no memory images).
    fn shard(name: &str) -> WorkloadData {
        WorkloadData {
            name: name.to_string(),
            bpred: "bimodal".to_string(),
            binary: SpearBinary {
                program: Program::default(),
                table: PThreadTable::default(),
            },
            set: CheckpointSet {
                checkpoints: Vec::new(),
                total_insts: 0,
            },
            intervals: Vec::new(),
            weights: Vec::new(),
            trace: None,
        }
    }

    fn spec() -> SampleSpec {
        SampleSpec {
            interval_len: 1000,
            stride: 1,
        }
    }

    #[test]
    fn hits_after_first_build_and_counts() {
        let cache = ShardCache::new(u64::MAX);
        let a1 = cache
            .get_or_create("a", "bimodal", "program", "off", &spec(), || Ok(shard("a")))
            .unwrap();
        let a2 = cache
            .get_or_create("a", "bimodal", "program", "off", &spec(), || {
                panic!("must not rebuild")
            })
            .unwrap();
        assert!(Arc::ptr_eq(&a1, &a2), "same shared shard");
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
    }

    #[test]
    fn distinct_sample_specs_are_distinct_shards() {
        let cache = ShardCache::new(u64::MAX);
        cache
            .get_or_create("a", "bimodal", "program", "off", &spec(), || Ok(shard("a")))
            .unwrap();
        let other = SampleSpec {
            interval_len: 500,
            stride: 2,
        };
        cache
            .get_or_create("a", "bimodal", "program", "off", &other, || Ok(shard("a")))
            .unwrap();
        assert_eq!(cache.stats().entries, 2);
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn distinct_predictor_specs_are_distinct_shards() {
        let cache = ShardCache::new(u64::MAX);
        cache
            .get_or_create("a", "bimodal", "program", "off", &spec(), || Ok(shard("a")))
            .unwrap();
        cache
            .get_or_create("a", "tage", "program", "off", &spec(), || Ok(shard("a")))
            .unwrap();
        assert_eq!(cache.stats().entries, 2, "warm state is per predictor");
        assert_eq!(cache.stats().misses, 2);
        cache
            .get_or_create("a", "tage", "program", "off", &spec(), || panic!("cached"))
            .unwrap();
    }

    #[test]
    fn distinct_supplies_are_distinct_shards() {
        // A program-only shard cannot serve trace-backed cells (no
        // recorded replay stream attached), so the supply discriminator
        // must key them apart.
        let cache = ShardCache::new(u64::MAX);
        cache
            .get_or_create("a", "bimodal", "program", "off", &spec(), || Ok(shard("a")))
            .unwrap();
        cache
            .get_or_create("a", "bimodal", "trace", "off", &spec(), || Ok(shard("a")))
            .unwrap();
        assert_eq!(cache.stats().entries, 2, "supply is part of the key");
        assert_eq!(cache.stats().misses, 2);
        cache
            .get_or_create("a", "bimodal", "trace", "off", &spec(), || panic!("cached"))
            .unwrap();
    }

    #[test]
    fn distinct_simpoint_labels_are_distinct_shards() {
        // A systematic shard checkpoints every sampled interval start; a
        // simpoint shard only representative boundaries, with weights.
        // Different clustering parameters also differ from each other.
        let cache = ShardCache::new(u64::MAX);
        cache
            .get_or_create("a", "bimodal", "program", "off", &spec(), || Ok(shard("a")))
            .unwrap();
        cache
            .get_or_create("a", "bimodal", "program", "k4:seed42", &spec(), || {
                Ok(shard("a"))
            })
            .unwrap();
        cache
            .get_or_create("a", "bimodal", "program", "k4:seed7", &spec(), || {
                Ok(shard("a"))
            })
            .unwrap();
        assert_eq!(cache.stats().entries, 3, "simpoint is part of the key");
        assert_eq!(cache.stats().misses, 3);
        cache
            .get_or_create("a", "bimodal", "program", "k4:seed42", &spec(), || {
                panic!("cached")
            })
            .unwrap();
    }

    #[test]
    fn build_errors_are_propagated_and_not_cached() {
        let cache = ShardCache::new(u64::MAX);
        let err = cache
            .get_or_create("a", "bimodal", "program", "off", &spec(), || {
                Err("compile failed".to_string())
            })
            .unwrap_err();
        assert!(err.contains("compile failed"));
        // A later attempt builds again (and can succeed).
        cache
            .get_or_create("a", "bimodal", "program", "off", &spec(), || Ok(shard("a")))
            .unwrap();
        assert_eq!(cache.stats().misses, 2);
        assert_eq!(cache.stats().entries, 1);
    }

    #[test]
    fn lru_eviction_respects_the_byte_budget_and_keeps_hot_entries() {
        // Zero budget: every insert evicts down to a single entry.
        let cache = ShardCache::new(0);
        cache
            .get_or_create("a", "bimodal", "program", "off", &spec(), || Ok(shard("a")))
            .unwrap();
        cache
            .get_or_create("b", "bimodal", "program", "off", &spec(), || Ok(shard("b")))
            .unwrap();
        let s = cache.stats();
        assert_eq!(s.entries, 1, "budget forces eviction to one entry");
        assert_eq!(s.evictions, 1);
        // The survivor is the most recent one ("b"): "a" must rebuild.
        let rebuilt = std::cell::Cell::new(false);
        cache
            .get_or_create("a", "bimodal", "program", "off", &spec(), || {
                rebuilt.set(true);
                Ok(shard("a"))
            })
            .unwrap();
        assert!(rebuilt.get(), "evicted entry rebuilds");
        cache
            .get_or_create("a", "bimodal", "program", "off", &spec(), || {
                panic!("now cached")
            })
            .unwrap();
    }

    #[test]
    fn in_flight_arcs_survive_eviction() {
        let cache = ShardCache::new(0);
        let held = cache
            .get_or_create("a", "bimodal", "program", "off", &spec(), || Ok(shard("a")))
            .unwrap();
        cache
            .get_or_create("b", "bimodal", "program", "off", &spec(), || Ok(shard("b")))
            .unwrap();
        // "a" was evicted from the cache, but our Arc still works.
        assert_eq!(held.name, "a");
    }
}
