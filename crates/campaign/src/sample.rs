//! Interval sampling: split a workload's dynamic instruction stream into
//! fixed-length intervals, pick a deterministic subset to cycle-simulate,
//! and aggregate per-interval statistics into one weighted estimate.
//!
//! The scheme is systematic sampling in the SMARTS tradition: functional
//! execution (with continuous cache/predictor warming) covers every
//! instruction once per workload, and the expensive cycle model runs only
//! on every `stride`-th interval. Each simulated interval starts from a
//! warm checkpoint and satisfies the exact-slot CPI invariant
//! `useful_slots + lost_slots() == cycles * commit_width` on its own;
//! because aggregation is a plain sum over intervals (see
//! [`spear_cpu::CoreStats::merge`]), the invariant also holds on the
//! weighted aggregate. The aggregate IPC estimate is
//! `sum(committed) / sum(cycles)` over the sampled intervals.

use crate::engine::CellResult;
use spear_cpu::CoreStats;

/// How to sample a workload.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SampleSpec {
    /// Instructions per interval.
    pub interval_len: u64,
    /// Cycle-simulate every `stride`-th interval (1 = every interval,
    /// i.e. full coverage split into resumable cells).
    pub stride: u64,
}

impl SampleSpec {
    /// Every interval simulated — full coverage, checkpointed into
    /// resumable cells (no sampling bias at all).
    pub fn full(interval_len: u64) -> SampleSpec {
        SampleSpec {
            interval_len,
            stride: 1,
        }
    }
}

/// One sampled interval of a workload.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interval {
    /// Interval index (over *all* intervals, sampled or not).
    pub index: u64,
    /// First instruction of the interval.
    pub start_inst: u64,
    /// Instructions to simulate (the final interval may be short).
    pub len: u64,
}

/// The sampled intervals of a workload of `total_insts` instructions.
pub fn plan_intervals(total_insts: u64, spec: &SampleSpec) -> Vec<Interval> {
    assert!(spec.interval_len > 0, "interval length must be nonzero");
    assert!(spec.stride > 0, "stride must be nonzero");
    let mut out = Vec::new();
    let mut index = 0;
    let mut start = 0;
    while start < total_insts {
        let len = spec.interval_len.min(total_insts - start);
        if index % spec.stride == 0 {
            out.push(Interval {
                index,
                start_inst: start,
                len,
            });
        }
        index += 1;
        start += spec.interval_len;
    }
    out
}

/// The weighted aggregate of one (workload, machine, predictor, latency)
/// group of cell results.
#[derive(Clone, Debug)]
pub struct Aggregate {
    /// Workload name.
    pub workload: String,
    /// Machine model name.
    pub machine: String,
    /// Canonical branch-predictor spec label (`bimodal` for the paper
    /// default).
    pub bpred: String,
    /// Instruction-supply front end (`program` or `trace`).
    pub frontend: String,
    /// Main-memory latency in cycles.
    pub mem_latency: u32,
    /// Summed statistics over the group's sampled intervals.
    pub stats: CoreStats,
    /// Number of cells (simulated intervals) in the sum.
    pub cells: u64,
    /// Summed cell weights — the number of whole-program intervals the
    /// blend stands for. Equal to `cells` outside SimPoint campaigns.
    pub weight: u64,
    /// Instructions the cells were budgeted to simulate.
    pub target_insts: u64,
    /// Summed wall-clock time spent simulating the cells, in ms.
    pub wall_ms: u64,
}

impl Aggregate {
    /// The sampled IPC estimate: `sum(committed) / sum(cycles)`.
    pub fn ipc(&self) -> f64 {
        self.stats.ipc()
    }

    /// Simulation throughput over the group: committed
    /// kilo-instructions per host-second of summed cell wall time.
    /// Observational only (wall time varies run to run), so it is
    /// reported on stdout but never written into the deterministic
    /// aggregate envelope files.
    pub fn kips(&self) -> f64 {
        let secs = (self.wall_ms as f64 / 1000.0).max(1e-9);
        self.stats.committed as f64 / secs / 1000.0
    }
}

/// Fold per-cell results into one [`Aggregate`] per (workload, machine,
/// predictor, frontend, latency) group.
///
/// Deterministic by construction: cells are sorted by their full key
/// before merging, so the output is byte-identical no matter how many
/// worker threads produced the results or in what order the JSONL lines
/// landed on disk.
pub fn aggregate(results: &[CellResult]) -> Vec<Aggregate> {
    let mut sorted: Vec<&CellResult> = results.iter().collect();
    sorted.sort_by(|a, b| {
        (
            &a.workload,
            &a.machine,
            &a.bpred,
            &a.frontend,
            a.mem_latency,
            a.interval,
        )
            .cmp(&(
                &b.workload,
                &b.machine,
                &b.bpred,
                &b.frontend,
                b.mem_latency,
                b.interval,
            ))
    });
    let mut out: Vec<Aggregate> = Vec::new();
    for cell in sorted {
        let key_matches = out.last().is_some_and(|a| {
            a.workload == cell.workload
                && a.machine == cell.machine
                && a.bpred == cell.bpred
                && a.frontend == cell.frontend
                && a.mem_latency == cell.mem_latency
        });
        if !key_matches {
            out.push(Aggregate {
                workload: cell.workload.clone(),
                machine: cell.machine.clone(),
                bpred: cell.bpred.clone(),
                frontend: cell.frontend.clone(),
                mem_latency: cell.mem_latency,
                stats: CoreStats::default(),
                cells: 0,
                weight: 0,
                target_insts: 0,
                wall_ms: 0,
            });
        }
        let agg = out.last_mut().expect("pushed above");
        // A plain campaign cell has weight 1 and this is an exact merge;
        // a SimPoint representative carries the population count of its
        // phase and is scale-summed (bit-exact equivalent of merging the
        // cell `weight` times — see `CoreStats::merge_scaled`).
        agg.stats.merge_scaled(&cell.stats, cell.weight);
        agg.cells += 1;
        agg.weight += cell.weight;
        agg.target_insts += cell.target_insts * cell.weight;
        agg.wall_ms += cell.wall_ms;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use spear_cpu::RunExit;

    #[test]
    fn plan_covers_every_instruction_at_stride_one() {
        let spec = SampleSpec::full(100);
        let ivs = plan_intervals(250, &spec);
        assert_eq!(ivs.len(), 3);
        assert_eq!(
            ivs[0],
            Interval {
                index: 0,
                start_inst: 0,
                len: 100
            }
        );
        assert_eq!(
            ivs[2],
            Interval {
                index: 2,
                start_inst: 200,
                len: 50
            }
        );
        let covered: u64 = ivs.iter().map(|i| i.len).sum();
        assert_eq!(covered, 250);
    }

    #[test]
    fn plan_samples_every_stride_th_interval() {
        let spec = SampleSpec {
            interval_len: 10,
            stride: 3,
        };
        let ivs = plan_intervals(95, &spec);
        let idx: Vec<u64> = ivs.iter().map(|i| i.index).collect();
        assert_eq!(idx, vec![0, 3, 6, 9]);
        assert_eq!(ivs.last().unwrap().len, 5, "tail interval is short");
    }

    #[test]
    fn empty_program_plans_nothing() {
        assert!(plan_intervals(0, &SampleSpec::full(64)).is_empty());
    }

    fn cell(w: &str, m: &str, lat: u32, iv: u64, cycles: u64, committed: u64) -> CellResult {
        CellResult {
            schema_version: crate::engine::CELL_SCHEMA_VERSION,
            workload: w.to_string(),
            machine: m.to_string(),
            bpred: "bimodal".to_string(),
            frontend: "program".to_string(),
            mem_latency: lat,
            interval: iv,
            start_inst: iv * 100,
            target_insts: committed,
            weight: 1,
            exit: RunExit::InstBudget,
            wall_ms: 1,
            stats: CoreStats {
                cycles,
                committed,
                ..Default::default()
            },
        }
    }

    #[test]
    fn aggregate_groups_and_weights_by_cycles() {
        // Shuffled input order must not matter.
        let results = vec![
            cell("mcf", "baseline", 120, 2, 400, 100),
            cell("em3d", "baseline", 120, 0, 50, 100),
            cell("mcf", "baseline", 120, 0, 100, 100),
            cell("mcf", "SPEAR-128", 120, 0, 80, 100),
        ];
        let aggs = aggregate(&results);
        assert_eq!(aggs.len(), 3);
        // Sorted by (workload, machine, latency).
        assert_eq!(aggs[0].workload, "em3d");
        assert_eq!(aggs[1].machine, "SPEAR-128");
        let mcf_base = &aggs[2];
        assert_eq!(mcf_base.cells, 2);
        assert_eq!(mcf_base.stats.cycles, 500);
        assert_eq!(mcf_base.stats.committed, 200);
        assert!((mcf_base.ipc() - 0.4).abs() < 1e-12);
        // Throughput: 200 insts over 2 ms of wall time = 100 KIPS.
        assert_eq!(mcf_base.wall_ms, 2);
        assert!((mcf_base.kips() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn weighted_cells_blend_as_if_repeated() {
        // One representative with weight 3 must aggregate exactly like
        // three copies of the same weight-1 cell.
        let mut rep = cell("mcf", "baseline", 120, 0, 100, 100);
        rep.weight = 3;
        let weighted = aggregate(&[rep.clone(), cell("mcf", "baseline", 120, 3, 40, 100)]);
        let mut copy = rep;
        copy.weight = 1;
        let expanded = aggregate(&[
            copy.clone(),
            {
                let mut c = copy.clone();
                c.interval = 1;
                c
            },
            {
                let mut c = copy;
                c.interval = 2;
                c
            },
            cell("mcf", "baseline", 120, 3, 40, 100),
        ]);
        assert_eq!(weighted.len(), 1);
        assert_eq!(weighted[0].stats.cycles, expanded[0].stats.cycles);
        assert_eq!(weighted[0].stats.committed, expanded[0].stats.committed);
        assert_eq!(weighted[0].target_insts, expanded[0].target_insts);
        assert_eq!(weighted[0].target_insts, 400);
        assert!((weighted[0].ipc() - expanded[0].ipc()).abs() < 1e-15);
        // Cell count reflects cells actually simulated, not phase sizes.
        assert_eq!(weighted[0].cells, 2);
        assert_eq!(expanded[0].cells, 4);
    }

    #[test]
    fn aggregate_keeps_frontend_groups_apart() {
        let mut trace = cell("mcf", "baseline", 120, 0, 100, 100);
        trace.frontend = "trace".to_string();
        let results = vec![cell("mcf", "baseline", 120, 0, 100, 100), trace];
        let aggs = aggregate(&results);
        assert_eq!(aggs.len(), 2, "frontend is part of the group key");
        assert_eq!(aggs[0].frontend, "program");
        assert_eq!(aggs[1].frontend, "trace");
        assert_eq!(aggs[0].cells, 1);
    }

    #[test]
    fn aggregate_keeps_predictor_groups_apart() {
        let mut tage = cell("mcf", "baseline", 120, 0, 100, 100);
        tage.bpred = "tage".to_string();
        let results = vec![cell("mcf", "baseline", 120, 0, 100, 100), tage];
        let aggs = aggregate(&results);
        assert_eq!(aggs.len(), 2, "predictor is part of the group key");
        assert_eq!(aggs[0].bpred, "bimodal");
        assert_eq!(aggs[1].bpred, "tage");
        assert_eq!(aggs[0].cells, 1);
    }
}
