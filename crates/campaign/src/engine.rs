//! The resumable campaign engine: a crash-safe work queue over
//! (workload, machine, predictor, frontend, latency, interval) cells.
//!
//! A campaign lives in a directory:
//!
//! ```text
//! campaign-dir/
//!   manifest.json    # the campaign spec fingerprint (guards resume)
//!   cells.jsonl      # one CellResult per line, appended as cells finish
//! ```
//!
//! Every finished cell is appended to `cells.jsonl` and flushed before
//! the worker takes more work, so killing the process at any moment loses
//! at most the cells still in flight. On restart the engine replays the
//! file, skips every completed cell (a truncated final line — the
//! signature of a mid-write crash — is tolerated and re-run), and
//! continues. Two phases:
//!
//! 1. **prepare** (one job per workload × predictor spec, parallel):
//!    compile the p-thread table, then one functional pass capturing a
//!    warm checkpoint at each sampled interval start (see
//!    [`crate::checkpoint`]);
//! 2. **simulate** (one job per cell, parallel): build a core, restore
//!    the interval's checkpoint, run for the interval's instruction
//!    budget, persist the statistics.
//!
//! Checkpoints are keyed by (workload, predictor spec): the cache
//! geometry is identical across the five machine models and the latency
//! sweep, but the warmer trains the *configured* predictor, so a
//! predictor sweep needs one functional pass per distinct spec. Each
//! pass still serves every (machine, latency) point that uses the same
//! predictor.

use crate::checkpoint::{capture_checkpoints_at, capture_interval_checkpoints, CheckpointSet};
use crate::sample::{aggregate, plan_intervals, Aggregate, Interval, SampleSpec};
use crate::shard_cache::ShardCache;
use crate::trace_cache::{record_trace, TraceCache};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use spear_compiler::{CompilerConfig, SpearCompiler};
use spear_cpu::{Core, CoreConfig, CoreStats, RunExit, SimpointBlock, StatsExport, TraceSource};
use spear_isa::SpearBinary;
use spear_trace::TraceFile;
use std::collections::HashSet;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Version of the per-cell JSONL record format. Bump on breaking change.
///
/// v1 keyed cells by (workload, machine, latency, interval); v2 adds the
/// branch-predictor spec label as a first-class axis of the cell key and
/// the manifest fingerprint; v3 adds the instruction-supply front end
/// (`program` or `trace`) to both.
pub const CELL_SCHEMA_VERSION: u32 = 3;

/// Cycle ceiling per cell, so one pathological cell cannot hang a
/// campaign (same ceiling the full-run experiment runner uses).
const MAX_CELL_CYCLES: u64 = 200_000_000;

/// Instruction ceiling for the functional pass.
const MAX_FUNCTIONAL_INSTS: u64 = 1_000_000_000;

/// Finished cells between heartbeat rewrites of `progress.json` /
/// `metrics.prom` (a final heartbeat is always written at the end).
const HEARTBEAT_EVERY_CELLS: u64 = 10;

/// One (machine, latency) point of the sweep, with its fully resolved
/// core configuration. The `machine` and `mem_latency` fields are the
/// cell key; `config` is what actually runs.
#[derive(Clone, Debug)]
pub struct MachinePoint {
    /// Machine model name (e.g. `SPEAR-128`).
    pub machine: String,
    /// Main-memory latency in cycles (the key of the Figure 9 sweep).
    pub mem_latency: u32,
    /// The resolved configuration (latency already applied).
    pub config: CoreConfig,
}

/// SimPoint phase-clustering parameters for a `--simpoint` campaign.
///
/// With this set, the prepare phase slices every workload's committed
/// stream into BBV intervals (one per `sample.interval_len`
/// instructions), clusters them into phases with a seeded k-means (see
/// `spear_simpoint`), and cycle-simulates only one *representative*
/// interval per phase. Each representative's cell carries its phase's
/// population count as a weight, and the aggregate reconstitutes
/// whole-program statistics as the weight-blended sum.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SimpointSpec {
    /// Number of phases; 0 chooses k automatically by BIC.
    pub k: u64,
    /// Clusterer seed (projection axes + deterministic k-means).
    pub seed: u64,
}

impl Default for SimpointSpec {
    fn default() -> SimpointSpec {
        SimpointSpec { k: 0, seed: 42 }
    }
}

impl SimpointSpec {
    /// Canonical one-string form, used as the manifest fingerprint field
    /// and the shard-cache discriminator (e.g. `k4:seed42`; `k0` = auto).
    pub fn label(&self) -> String {
        format!("k{}:seed{}", self.k, self.seed)
    }
}

/// What a campaign runs.
#[derive(Clone, Debug)]
pub struct CampaignSpec {
    /// Workload specs: plain abbreviations (`mcf`) or scale-suffixed
    /// (`mcf@x100`), resolved via `spear_workloads::by_spec`.
    pub workloads: Vec<String>,
    /// The (machine, latency) sweep points.
    pub points: Vec<MachinePoint>,
    /// Instruction-supply front ends to sweep (`program`, `trace`).
    /// Empty normalizes to `["program"]`, the historical behavior.
    /// `trace` cells replay a recorded committed path instead of
    /// executing semantics; the trace is recorded once per workload
    /// during the prepare phase (or fetched from a [`TraceCache`]).
    pub frontends: Vec<String>,
    /// Interval sampling parameters.
    pub sample: SampleSpec,
    /// Worker threads (0 = all available cores).
    pub threads: usize,
    /// Stop after executing this many cells in this invocation (used to
    /// exercise crash-resume in tests and CI; `None` = run to the end).
    pub max_cells: Option<u64>,
    /// Windowed-telemetry length in cycles for every cell (`None` =
    /// windows off). Part of the manifest fingerprint: window shape
    /// changes the persisted stats, so a resume must match.
    pub window: Option<u64>,
    /// SimPoint phase clustering (`None` = systematic sampling as
    /// before). Part of the manifest fingerprint. Requires `stride == 1`
    /// (clustering *is* the sampling policy) and is incompatible with
    /// `window` (windowed telemetry is a cycle partition of one run and
    /// cannot be weight-blended).
    pub simpoint: Option<SimpointSpec>,
}

/// One completed cell, as persisted to `cells.jsonl`.
///
/// Serialization is hand-written (not derived) so the SimPoint `weight`
/// field is *omitted* when 1: every record a non-simpoint campaign
/// writes keeps its exact historical bytes, and records from older
/// writers parse back with the implied unit weight.
#[derive(Clone, Debug, PartialEq)]
pub struct CellResult {
    /// Record format version ([`CELL_SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Workload name.
    pub workload: String,
    /// Machine model name.
    pub machine: String,
    /// Canonical branch-predictor spec label (`bimodal` for the paper
    /// default; see `spear_bpred::PredictorConfig::spec_label`).
    pub bpred: String,
    /// Instruction-supply front end (`program` or `trace`).
    pub frontend: String,
    /// Main-memory latency in cycles.
    pub mem_latency: u32,
    /// Interval index within the workload.
    pub interval: u64,
    /// First instruction of the interval.
    pub start_inst: u64,
    /// Instructions the cell was budgeted to simulate.
    pub target_insts: u64,
    /// How many whole-program intervals this cell stands for: 1 for a
    /// plain campaign cell, the phase's population count for a SimPoint
    /// representative. Aggregation scale-sums the cell's statistics by
    /// this factor (see `spear_cpu::CoreStats::merge_scaled`).
    pub weight: u64,
    /// How the cell's simulation ended (`InstBudget` for interior
    /// intervals, `Halted` for the final one).
    pub exit: RunExit,
    /// Wall-clock simulation time for this cell, in milliseconds.
    pub wall_ms: u64,
    /// Full simulator statistics for the interval.
    pub stats: CoreStats,
}

impl Serialize for CellResult {
    fn to_value(&self) -> serde::Value {
        let mut fields = vec![
            ("schema_version".to_string(), self.schema_version.to_value()),
            ("workload".to_string(), self.workload.to_value()),
            ("machine".to_string(), self.machine.to_value()),
            ("bpred".to_string(), self.bpred.to_value()),
            ("frontend".to_string(), self.frontend.to_value()),
            ("mem_latency".to_string(), self.mem_latency.to_value()),
            ("interval".to_string(), self.interval.to_value()),
            ("start_inst".to_string(), self.start_inst.to_value()),
            ("target_insts".to_string(), self.target_insts.to_value()),
        ];
        if self.weight != 1 {
            fields.push(("weight".to_string(), self.weight.to_value()));
        }
        fields.push(("exit".to_string(), self.exit.to_value()));
        fields.push(("wall_ms".to_string(), self.wall_ms.to_value()));
        fields.push(("stats".to_string(), self.stats.to_value()));
        serde::Value::Object(fields)
    }
}

impl Deserialize for CellResult {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        Ok(CellResult {
            schema_version: u32::from_value(v.field("schema_version")?)?,
            workload: String::from_value(v.field("workload")?)?,
            machine: String::from_value(v.field("machine")?)?,
            bpred: String::from_value(v.field("bpred")?)?,
            frontend: String::from_value(v.field("frontend")?)?,
            mem_latency: u32::from_value(v.field("mem_latency")?)?,
            interval: u64::from_value(v.field("interval")?)?,
            start_inst: u64::from_value(v.field("start_inst")?)?,
            target_insts: u64::from_value(v.field("target_insts")?)?,
            // Absent in records from non-simpoint campaigns and older
            // writers: both mean the unit weight.
            weight: match v.field("weight") {
                Ok(val) => u64::from_value(val)?,
                Err(_) => 1,
            },
            exit: RunExit::from_value(v.field("exit")?)?,
            wall_ms: u64::from_value(v.field("wall_ms")?)?,
            stats: CoreStats::from_value(v.field("stats")?)?,
        })
    }
}

type CellKey = (String, String, String, String, u32, u64);

impl CellResult {
    /// The cell's identity within a campaign.
    pub fn key(&self) -> CellKey {
        (
            self.workload.clone(),
            self.machine.clone(),
            self.bpred.clone(),
            self.frontend.clone(),
            self.mem_latency,
            self.interval,
        )
    }
}

/// Live progress, handed to the `on_progress` callback after every cell.
#[derive(Clone, Copy, Debug)]
pub struct ProgressSnapshot {
    /// Cells finished (including ones skipped as already done).
    pub done: u64,
    /// Total cells in the campaign.
    pub total: u64,
    /// Cells executed by this invocation.
    pub executed: u64,
    /// Wall-clock time since this invocation started, in ms.
    pub elapsed_ms: u64,
    /// Estimated remaining time, from the mean per-cell wall time of the
    /// cells executed so far divided across the worker threads (`None`
    /// until the first cell finishes).
    pub eta_ms: Option<u64>,
}

/// Per-workload simulation time over the whole campaign directory.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct WorkloadTiming {
    /// Workload name.
    pub workload: String,
    /// Cells recorded for this workload.
    pub cells: u64,
    /// Summed per-cell wall time, in ms.
    pub wall_ms: u64,
}

/// What one `Campaign::run` invocation did.
#[derive(Clone, Debug)]
pub struct RunSummary {
    /// Total cells in the campaign.
    pub total_cells: u64,
    /// Cells executed by this invocation.
    pub executed: u64,
    /// Cells skipped because a prior invocation had completed them.
    pub skipped: u64,
    /// True if `max_cells` stopped this invocation before the campaign
    /// finished (pending cells remain for a future resume).
    pub interrupted: bool,
    /// Every cell result now on disk (prior + new).
    pub results: Vec<CellResult>,
    /// Per-workload timing over `results`, sorted by workload name.
    pub timings: Vec<WorkloadTiming>,
    /// Wall-clock time of this invocation, in ms.
    pub elapsed_ms: u64,
}

impl RunSummary {
    /// Weighted aggregates over all cells on disk (see
    /// [`crate::sample::aggregate`]).
    pub fn aggregates(&self) -> Vec<Aggregate> {
        aggregate(&self.results)
    }
}

/// One sweep point as pinned by the manifest: machine model, predictor
/// spec label, memory latency. (A named struct rather than a tuple —
/// the vendored serde derives only pair tuples.)
#[derive(PartialEq, Serialize, Deserialize)]
struct ManifestPoint {
    machine: String,
    bpred: String,
    mem_latency: u32,
}

/// The manifest pins the campaign's shape so a resume into the wrong
/// directory fails loudly instead of silently mixing results.
///
/// Hand-written serde: the `simpoint` fingerprint field is omitted when
/// the campaign does not cluster, so non-simpoint manifests keep their
/// exact historical bytes (and parse back under older readers).
#[derive(PartialEq)]
struct ManifestDoc {
    version: u32,
    workloads: Vec<String>,
    points: Vec<ManifestPoint>,
    frontends: Vec<String>,
    interval_len: u64,
    stride: u64,
    window: Option<u64>,
    simpoint: Option<String>,
}

impl Serialize for ManifestDoc {
    fn to_value(&self) -> serde::Value {
        let mut fields = vec![
            ("version".to_string(), self.version.to_value()),
            ("workloads".to_string(), self.workloads.to_value()),
            ("points".to_string(), self.points.to_value()),
            ("frontends".to_string(), self.frontends.to_value()),
            ("interval_len".to_string(), self.interval_len.to_value()),
            ("stride".to_string(), self.stride.to_value()),
            // `window` predates `simpoint` and has always been emitted
            // (as null when off), so it stays unconditional.
            ("window".to_string(), self.window.to_value()),
        ];
        if let Some(s) = &self.simpoint {
            fields.push(("simpoint".to_string(), s.to_value()));
        }
        serde::Value::Object(fields)
    }
}

impl Deserialize for ManifestDoc {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        Ok(ManifestDoc {
            version: u32::from_value(v.field("version")?)?,
            workloads: Vec::<String>::from_value(v.field("workloads")?)?,
            points: Vec::<ManifestPoint>::from_value(v.field("points")?)?,
            frontends: Vec::<String>::from_value(v.field("frontends")?)?,
            interval_len: u64::from_value(v.field("interval_len")?)?,
            stride: u64::from_value(v.field("stride")?)?,
            window: Option::<u64>::from_value(v.field("window")?)?,
            // Absent in manifests from non-simpoint campaigns and older
            // writers.
            simpoint: match v.field("simpoint") {
                Ok(val) => Option::<String>::from_value(val)?,
                Err(_) => None,
            },
        })
    }
}

/// A campaign bound to its directory.
pub struct Campaign {
    dir: PathBuf,
    spec: CampaignSpec,
}

/// Everything phase 1 prepares for one workload: the compiled binary
/// with its p-thread table, the warm checkpoint shards, and the sampled
/// interval plan. Shared read-only across every cell that needs it (and,
/// through a [`ShardCache`], across every *job* that needs it).
#[derive(Debug)]
pub struct WorkloadData {
    /// Workload name.
    pub name: String,
    /// Canonical spec label of the predictor the warmer trained (the
    /// checkpoints carry this predictor's state).
    pub bpred: String,
    /// Evaluation binary with the compiled p-thread table attached.
    pub binary: SpearBinary,
    /// Warm checkpoints at each sampled interval start.
    pub set: CheckpointSet,
    /// The sampled interval plan (under SimPoint: the representative
    /// interval of each phase, ascending by start instruction).
    pub intervals: Vec<Interval>,
    /// Per-interval aggregation weight, parallel to `intervals`: the
    /// phase population count under SimPoint. Empty means all-unit
    /// weights (the plain campaign case).
    pub weights: Vec<u64>,
    /// The recorded replay trace, present only when the campaign sweeps
    /// the `trace` front end (shards built without it cannot serve
    /// trace-backed cells, which is why the shard-cache key carries the
    /// supply discriminator).
    pub trace: Option<Arc<TraceFile>>,
}

impl WorkloadData {
    /// Approximate resident size in bytes, for the [`ShardCache`] LRU
    /// budget. Dominated by the per-checkpoint memory images; the binary
    /// and plan are a flat base charge, and cache/predictor snapshots a
    /// flat overhead per checkpoint, rather than measured field by field.
    pub fn approx_bytes(&self) -> u64 {
        const BASE_OVERHEAD: u64 = 64 * 1024;
        const PER_CHECKPOINT_OVERHEAD: u64 = 256 * 1024;
        BASE_OVERHEAD
            + self
                .set
                .checkpoints
                .iter()
                .map(|c| c.mem.as_bytes().len() as u64 + PER_CHECKPOINT_OVERHEAD)
                .sum::<u64>()
    }
}

/// One unit of phase-2 work. `w` indexes the prepared shard list
/// (workload-major, predictor-minor), `p` the sweep points, `f` the
/// spec's front-end list.
struct Cell {
    w: usize,
    p: usize,
    f: usize,
    interval: Interval,
    weight: u64,
}

impl Campaign {
    /// Bind a spec to a directory (created on [`Campaign::run`]).
    pub fn new(dir: impl Into<PathBuf>, spec: CampaignSpec) -> Campaign {
        Campaign {
            dir: dir.into(),
            spec,
        }
    }

    /// The campaign directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The spec's front-end list, normalized: empty means the historical
    /// program-driven campaign.
    fn frontends(&self) -> Vec<String> {
        if self.spec.frontends.is_empty() {
            vec!["program".to_string()]
        } else {
            self.spec.frontends.clone()
        }
    }

    fn manifest(&self) -> ManifestDoc {
        ManifestDoc {
            version: CELL_SCHEMA_VERSION,
            workloads: self.spec.workloads.clone(),
            frontends: self.frontends(),
            points: self
                .spec
                .points
                .iter()
                .map(|p| ManifestPoint {
                    machine: p.machine.clone(),
                    bpred: p.config.bpred.spec_label(),
                    mem_latency: p.mem_latency,
                })
                .collect(),
            interval_len: self.spec.sample.interval_len,
            stride: self.spec.sample.stride,
            window: self.spec.window,
            simpoint: self.spec.simpoint.map(|s| s.label()),
        }
    }

    fn check_or_write_manifest(&self) -> Result<(), String> {
        let path = self.dir.join("manifest.json");
        let mine = serde::json::to_string_pretty(&self.manifest());
        match std::fs::read_to_string(&path) {
            Ok(existing) => {
                let theirs: ManifestDoc = serde::json::from_str(&existing)
                    .map_err(|e| format!("corrupt manifest {}: {e:?}", path.display()))?;
                if theirs != self.manifest() {
                    return Err(format!(
                        "campaign directory {} was created for a different spec; \
                         use a fresh directory",
                        self.dir.display()
                    ));
                }
                Ok(())
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => std::fs::write(&path, mine)
                .map_err(|e| format!("cannot write {}: {e}", path.display())),
            Err(e) => Err(format!("cannot read {}: {e}", path.display())),
        }
    }

    /// Replay `cells.jsonl`: every parseable line is a completed cell. A
    /// final truncated line (mid-write crash) is tolerated and its cell
    /// re-run; a malformed line elsewhere is an error.
    pub fn load_results(&self) -> Result<Vec<CellResult>, String> {
        let path = self.dir.join("cells.jsonl");
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(format!("cannot read {}: {e}", path.display())),
        };
        let lines: Vec<&str> = text.lines().filter(|l| !l.trim().is_empty()).collect();
        let mut out = Vec::with_capacity(lines.len());
        for (i, line) in lines.iter().enumerate() {
            match serde::json::from_str::<CellResult>(line) {
                Ok(cell) => out.push(cell),
                Err(_) if i + 1 == lines.len() => break, // truncated tail
                Err(e) => {
                    return Err(format!(
                        "{}: malformed record on line {}: {e:?}",
                        path.display(),
                        i + 1
                    ))
                }
            }
        }
        Ok(out)
    }

    /// Weighted aggregates over every cell currently on disk.
    pub fn aggregates(&self) -> Result<Vec<Aggregate>, String> {
        Ok(aggregate(&self.load_results()?))
    }

    /// Physically truncate a torn trailing line off `cells.jsonl` (the
    /// signature of a kill mid-append). [`Campaign::load_results`] already
    /// *tolerates* a torn tail, but without truncation the next append
    /// would glue a fresh record onto the partial line, corrupting a
    /// record permanently — so a resume must repair the file first.
    /// Returns the number of bytes cut, if any.
    fn repair_torn_tail(&self) -> Result<Option<u64>, String> {
        let path = self.dir.join("cells.jsonl");
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(format!("cannot read {}: {e}", path.display())),
        };
        // Find the last non-empty line and its byte offset.
        let mut last: Option<(usize, &str)> = None;
        let mut offset = 0;
        for line in text.split_inclusive('\n') {
            if !line.trim().is_empty() {
                last = Some((offset, line.trim_end_matches(['\n', '\r'])));
            }
            offset += line.len();
        }
        let Some((start, line)) = last else {
            return Ok(None);
        };
        if serde::json::from_str::<CellResult>(line).is_ok() {
            return Ok(None);
        }
        let cut = (text.len() - start) as u64;
        let f = std::fs::OpenOptions::new()
            .write(true)
            .open(&path)
            .map_err(|e| format!("cannot open {} for repair: {e}", path.display()))?;
        f.set_len(start as u64)
            .map_err(|e| format!("cannot truncate {}: {e}", path.display()))?;
        Ok(Some(cut))
    }

    /// Run (or resume) the campaign. `on_progress` is invoked after every
    /// executed cell.
    pub fn run(
        &self,
        on_progress: Option<&(dyn Fn(&ProgressSnapshot) + Sync)>,
    ) -> Result<RunSummary, String> {
        self.run_with(&RunOptions {
            on_progress,
            ..RunOptions::default()
        })
    }

    /// Run (or resume) the campaign with the full option set: progress
    /// callbacks, cooperative cancellation, and a cross-job checkpoint-
    /// shard cache.
    pub fn run_with(&self, opts: &RunOptions<'_>) -> Result<RunSummary, String> {
        let on_progress = opts.on_progress;
        let t0 = Instant::now();
        if self.spec.workloads.is_empty() || self.spec.points.is_empty() {
            return Err("campaign needs at least one workload and one machine point".into());
        }
        let frontends = self.frontends();
        for f in &frontends {
            if f != "program" && f != "trace" {
                return Err(format!(
                    "unknown front end `{f}` (expected `program` or `trace`)"
                ));
            }
            if frontends.iter().filter(|g| *g == f).count() > 1 {
                return Err(format!("front end `{f}` listed more than once"));
            }
        }
        if self.spec.simpoint.is_some() {
            if self.spec.window.is_some() {
                return Err("--simpoint is incompatible with --window: windowed \
                            telemetry is a cycle partition of one run and cannot \
                            be weight-blended across phase representatives"
                    .into());
            }
            if self.spec.sample.stride != 1 {
                return Err(format!(
                    "--simpoint requires stride 1 (phase clustering replaces \
                     systematic sampling), got stride {}",
                    self.spec.sample.stride
                ));
            }
        }
        let needs_trace = frontends.iter().any(|f| f == "trace");
        std::fs::create_dir_all(&self.dir)
            .map_err(|e| format!("cannot create {}: {e}", self.dir.display()))?;
        self.check_or_write_manifest()?;
        if let Some(cut) = self.repair_torn_tail()? {
            eprintln!(
                "campaign {}: truncated a torn {cut}-byte trailing record in \
                 cells.jsonl (crash mid-append); its cell will re-run",
                self.dir.display()
            );
        }
        let prior = self.load_results()?;
        let done: HashSet<CellKey> = prior.iter().map(|c| c.key()).collect();

        let threads = if self.spec.threads == 0 {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(4)
        } else {
            self.spec.threads
        };

        // Phase 1: compile + functional checkpointing, one job per
        // (workload, distinct predictor spec) — the warmer trains the
        // configured predictor, so each spec needs its own warm shards.
        // With a shard cache, warm state built by an earlier job (or an
        // earlier workload of this one) is reused instead of rebuilt.
        let sample = self.spec.sample;
        let mut bpreds: Vec<(String, spear_bpred::PredictorConfig)> = Vec::new();
        for p in &self.spec.points {
            let label = p.config.bpred.spec_label();
            if !bpreds.iter().any(|(l, _)| *l == label) {
                bpreds.push((label, p.config.bpred));
            }
        }
        // Which prepared shard each sweep point uses.
        let point_shard: Vec<usize> = self
            .spec
            .points
            .iter()
            .map(|p| {
                let label = p.config.bpred.spec_label();
                bpreds.iter().position(|(l, _)| *l == label).expect("seen")
            })
            .collect();
        let prep: Vec<(String, spear_bpred::PredictorConfig)> = self
            .spec
            .workloads
            .iter()
            .flat_map(|name| bpreds.iter().map(move |(_, cfg)| (name.clone(), *cfg)))
            .collect();
        // Shards built with a trace attached also serve program cells,
        // but not vice versa — the supply discriminator keys them apart
        // in the shard cache.
        let supply = if needs_trace { "trace" } else { "program" };
        let simpoint = self.spec.simpoint;
        // Simpoint shards carry different checkpoints and weights than
        // plain shards of the same (workload, predictor, supply), so the
        // clustering parameters discriminate the cache key ("off" when
        // the campaign does not cluster).
        let sp_label = simpoint.map_or_else(|| "off".to_string(), |s| s.label());
        let prepared: Vec<Result<Arc<WorkloadData>, String>> =
            parallel_map(&prep, threads, |(name, cfg)| {
                let build =
                    || prepare_workload(name, *cfg, &sample, simpoint, needs_trace, opts.traces);
                match opts.cache {
                    Some(cache) => cache.get_or_create(
                        name,
                        &cfg.spec_label(),
                        supply,
                        &sp_label,
                        &sample,
                        build,
                    ),
                    None => build().map(Arc::new),
                }
            });
        let mut wds = Vec::with_capacity(prepared.len());
        for r in prepared {
            wds.push(r?);
        }

        // Enumerate cells in deterministic order and drop completed ones.
        let mut pending = Vec::new();
        let mut total: u64 = 0;
        for w in 0..self.spec.workloads.len() {
            for (p, point) in self.spec.points.iter().enumerate() {
                let shard = w * bpreds.len() + point_shard[p];
                let wd = &wds[shard];
                for (f, frontend) in frontends.iter().enumerate() {
                    for (i, &interval) in wd.intervals.iter().enumerate() {
                        total += 1;
                        let key = (
                            wd.name.clone(),
                            point.machine.clone(),
                            wd.bpred.clone(),
                            frontend.clone(),
                            point.mem_latency,
                            interval.index,
                        );
                        if !done.contains(&key) {
                            pending.push(Cell {
                                w: shard,
                                p,
                                f,
                                interval,
                                weight: wd.weights.get(i).copied().unwrap_or(1),
                            });
                        }
                    }
                }
            }
        }
        let skipped = total - pending.len() as u64;

        // Phase 2: the cell work queue.
        let results_path = self.dir.join("cells.jsonl");
        let sink = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&results_path)
            .map_err(|e| format!("cannot open {}: {e}", results_path.display()))?;
        let sink = Mutex::new(sink);
        let new_results: Mutex<Vec<CellResult>> = Mutex::new(Vec::new());
        let first_error: Mutex<Option<String>> = Mutex::new(None);
        let next = AtomicUsize::new(0);
        let executed = AtomicU64::new(0);
        let done_count = AtomicU64::new(skipped);
        let wall_sum_ms = AtomicU64::new(0);
        let committed_sum = AtomicU64::new(0);
        let stop = AtomicBool::new(false);
        let budget = self.spec.max_cells.unwrap_or(u64::MAX);
        let points = &self.spec.points;
        let wds_ref = &wds;
        let window = self.spec.window;
        // One writer at a time keeps the temp-file dance race-free;
        // heartbeats are advisory, so their IO errors never stop a run.
        let heartbeat = Mutex::new(String::new());
        let beat = |last_cell: &str| {
            let ex = executed.load(Ordering::SeqCst).min(budget);
            let d = done_count.load(Ordering::SeqCst);
            let elapsed_ms = t0.elapsed().as_millis() as u64;
            let committed = committed_sum.load(Ordering::SeqCst);
            let kips = if elapsed_ms > 0 {
                committed as f64 / elapsed_ms as f64
            } else {
                0.0
            };
            let _ = write_heartbeat(
                &self.dir,
                &HeartbeatDoc {
                    done: d,
                    total,
                    executed: ex,
                    threads: threads as u64,
                    elapsed_ms,
                    eta_ms: eta_ms(wall_sum_ms.load(Ordering::SeqCst), ex, total - d, threads),
                    committed_insts: committed,
                    kips,
                    kips_per_shard: kips / threads as f64,
                    last_cell: last_cell.to_string(),
                },
            );
        };

        let cancel = opts.cancel;
        crossbeam::scope(|scope| {
            for _ in 0..threads.min(pending.len().max(1)) {
                scope.spawn(|_| loop {
                    // A cancel drains like `max_cells`: in-flight cells
                    // finish and are persisted; nothing new is claimed.
                    if stop.load(Ordering::SeqCst)
                        || cancel.is_some_and(|c| c.load(Ordering::SeqCst))
                    {
                        break;
                    }
                    // Claim an execution slot against the cell budget
                    // before claiming a cell, so `max_cells` is exact.
                    if executed.fetch_add(1, Ordering::SeqCst) >= budget {
                        executed.fetch_sub(1, Ordering::SeqCst);
                        stop.store(true, Ordering::SeqCst);
                        break;
                    }
                    let i = next.fetch_add(1, Ordering::SeqCst);
                    if i >= pending.len() {
                        executed.fetch_sub(1, Ordering::SeqCst);
                        break;
                    }
                    let cell = &pending[i];
                    match run_cell(
                        &wds_ref[cell.w],
                        &points[cell.p],
                        &frontends[cell.f],
                        cell.interval,
                        cell.weight,
                        window,
                    ) {
                        Ok(res) => {
                            let line = serde::json::to_string(&res);
                            {
                                let mut f = sink.lock();
                                let io = writeln!(f, "{line}").and_then(|_| f.flush());
                                if let Err(e) = io {
                                    *first_error.lock() =
                                        Some(format!("cannot append cell result: {e}"));
                                    stop.store(true, Ordering::SeqCst);
                                    break;
                                }
                            }
                            let fingerprint = format!(
                                "{}/{}/{}/{}/{}/{}",
                                res.workload,
                                res.machine,
                                res.bpred,
                                res.frontend,
                                res.mem_latency,
                                res.interval
                            );
                            wall_sum_ms.fetch_add(res.wall_ms, Ordering::SeqCst);
                            committed_sum.fetch_add(res.stats.committed, Ordering::SeqCst);
                            new_results.lock().push(res);
                            let d = done_count.fetch_add(1, Ordering::SeqCst) + 1;
                            if d.is_multiple_of(HEARTBEAT_EVERY_CELLS) {
                                let mut last = heartbeat.lock();
                                *last = fingerprint.clone();
                                beat(&last);
                            } else {
                                *heartbeat.lock() = fingerprint;
                            }
                            if let Some(cb) = on_progress {
                                let ex = executed.load(Ordering::SeqCst).min(budget);
                                cb(&ProgressSnapshot {
                                    done: d,
                                    total,
                                    executed: ex,
                                    elapsed_ms: t0.elapsed().as_millis() as u64,
                                    eta_ms: eta_ms(
                                        wall_sum_ms.load(Ordering::SeqCst),
                                        ex,
                                        total - d,
                                        threads,
                                    ),
                                });
                            }
                        }
                        Err(e) => {
                            let mut slot = first_error.lock();
                            if slot.is_none() {
                                *slot = Some(e);
                            }
                            stop.store(true, Ordering::SeqCst);
                            break;
                        }
                    }
                });
            }
        })
        .expect("campaign worker panicked");

        // Final heartbeat so `progress.json` reflects the end state even
        // when the cell count never hit the heartbeat interval.
        beat(&heartbeat.lock().clone());

        if let Some(e) = first_error.into_inner() {
            return Err(e);
        }
        let new = new_results.into_inner();
        let executed = new.len() as u64;
        let interrupted = executed + skipped < total;
        let mut results = prior;
        results.extend(new);
        let timings = workload_timings(&results);
        Ok(RunSummary {
            total_cells: total,
            executed,
            skipped,
            interrupted,
            results,
            timings,
            elapsed_ms: t0.elapsed().as_millis() as u64,
        })
    }
}

/// Knobs for [`Campaign::run_with`], beyond what the spec pins.
#[derive(Default)]
pub struct RunOptions<'a> {
    /// Invoked after every executed cell with live progress.
    pub on_progress: Option<&'a (dyn Fn(&ProgressSnapshot) + Sync)>,
    /// Cooperative cancellation: once set, workers stop claiming cells;
    /// in-flight cells finish and are flushed, so the run ends in a
    /// cleanly resumable state (`interrupted` in the summary).
    pub cancel: Option<&'a AtomicBool>,
    /// Checkpoint-shard cache shared across runs: warm state is built
    /// once per (workload, interval, stride) and reused read-only.
    pub cache: Option<&'a ShardCache>,
    /// Trace cache shared across runs: the replay stream of a workload
    /// is recorded once and reused by every trace-backed job.
    pub traces: Option<&'a TraceCache>,
}

/// Write one versioned stats-JSON envelope per (workload, machine,
/// latency) aggregate under `<dir>/aggregates/`, exactly as the
/// `spear-sim campaign` CLI does — the campaign server calls the same
/// function, which is what makes server and CLI aggregate files
/// byte-identical by construction. Returns the paths written, in
/// aggregate order.
///
/// `simpoint` is the campaign's clustering spec paired with its interval
/// length: when set, every envelope gains the additive `simpoint`
/// provenance block. `None` (every non-simpoint campaign) leaves the
/// envelopes byte-identical to the historical schema.
pub fn write_aggregate_envelopes(
    dir: &Path,
    results: &[CellResult],
    simpoint: Option<(SimpointSpec, u64)>,
) -> Result<Vec<PathBuf>, String> {
    let aggs = aggregate(results);
    let agg_dir = dir.join("aggregates");
    std::fs::create_dir_all(&agg_dir)
        .map_err(|e| format!("cannot create {}: {e}", agg_dir.display()))?;
    let mut written = Vec::with_capacity(aggs.len());
    for a in &aggs {
        // An aggregate reached the workload's halt only if its group
        // contains the final (halting) interval.
        let halted = results.iter().any(|c| {
            c.workload == a.workload
                && c.machine == a.machine
                && c.bpred == a.bpred
                && c.frontend == a.frontend
                && c.mem_latency == a.mem_latency
                && c.exit == RunExit::Halted
        });
        let mut doc = StatsExport::new(
            a.workload.clone(),
            &a.machine,
            a.mem_latency,
            if halted {
                RunExit::Halted
            } else {
                RunExit::InstBudget
            },
            a.stats.clone(),
        )
        .with_bpred(&a.bpred)
        .with_frontend(&a.frontend);
        if let Some((sp, interval_len)) = simpoint {
            doc = doc.with_simpoint(SimpointBlock {
                k: sp.k,
                seed: sp.seed,
                interval_len,
                phases: a.cells,
                intervals: a.weight,
            });
        }
        // Default-axis groups (bimodal predictor, program front end)
        // keep the historical filename; other predictors insert their
        // sanitized spec label and other front ends their name, so a
        // sweep's groups never collide.
        let mut stem = format!("{}-{}", a.workload, a.machine.replace('.', "_"));
        if a.bpred != "bimodal" {
            stem.push('-');
            stem.push_str(&a.bpred.replace([':', ',', '='], "_"));
        }
        if a.frontend != "program" {
            stem.push('-');
            stem.push_str(&a.frontend);
        }
        let file = agg_dir.join(format!("{stem}-{}.json", a.mem_latency));
        std::fs::write(&file, doc.to_json())
            .map_err(|e| format!("cannot write {}: {e}", file.display()))?;
        written.push(file);
    }
    Ok(written)
}

/// Estimated remaining campaign wall time: mean per-cell simulation time
/// of the cells executed so far, divided across the worker threads.
/// `None` until the first cell finishes (and under a degenerate zero
/// thread count), so a fresh campaign never reports a bogus 0ms ETA.
pub fn eta_ms(wall_sum_ms: u64, executed: u64, remaining: u64, threads: usize) -> Option<u64> {
    if executed == 0 || threads == 0 {
        return None;
    }
    let per_cell = wall_sum_ms as f64 / executed as f64;
    Some((per_cell * remaining as f64 / threads as f64) as u64)
}

/// The campaign heartbeat persisted as `progress.json` (see
/// [`write_heartbeat`]).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct HeartbeatDoc {
    /// Cells finished (including ones skipped as already done).
    pub done: u64,
    /// Total cells in the campaign.
    pub total: u64,
    /// Cells executed by this invocation.
    pub executed: u64,
    /// Worker threads in use.
    pub threads: u64,
    /// Wall-clock time since this invocation started, in ms.
    pub elapsed_ms: u64,
    /// Estimated remaining time ([`eta_ms`]); `null` until known.
    pub eta_ms: Option<u64>,
    /// Committed instructions simulated by this invocation.
    pub committed_insts: u64,
    /// Simulation throughput: committed kilo-instructions per
    /// wall-clock second, summed over all shards.
    pub kips: f64,
    /// [`HeartbeatDoc::kips`] divided by the worker count — the mean
    /// per-shard throughput.
    pub kips_per_shard: f64,
    /// Key of the most recently finished cell
    /// (`workload/machine/bpred/frontend/mem_latency/interval`); empty
    /// before the first one.
    pub last_cell: String,
}

/// Atomically (write-to-temp + rename) rewrite the campaign heartbeat:
/// `progress.json` for machines and `metrics.prom` (Prometheus text
/// exposition format) for scrapers. A reader never observes a torn
/// file. Heartbeats are advisory: callers may ignore the error.
pub fn write_heartbeat(dir: &Path, hb: &HeartbeatDoc) -> Result<(), String> {
    let atomic = |name: &str, contents: String| -> Result<(), String> {
        let tmp = dir.join(format!("{name}.tmp"));
        let fin = dir.join(name);
        std::fs::write(&tmp, contents)
            .map_err(|e| format!("cannot write {}: {e}", tmp.display()))?;
        std::fs::rename(&tmp, &fin)
            .map_err(|e| format!("cannot rename {} -> {}: {e}", tmp.display(), fin.display()))
    };
    atomic("progress.json", serde::json::to_string_pretty(hb))?;
    let mut prom = String::new();
    let mut gauge = |name: &str, help: &str, value: String| {
        prom.push_str(&format!(
            "# HELP {name} {help}\n# TYPE {name} gauge\n{name} {value}\n"
        ));
    };
    gauge(
        "spear_campaign_cells_done",
        "Cells finished, including previously completed ones.",
        hb.done.to_string(),
    );
    gauge(
        "spear_campaign_cells_total",
        "Total cells in the campaign.",
        hb.total.to_string(),
    );
    gauge(
        "spear_campaign_cells_executed",
        "Cells executed by this invocation.",
        hb.executed.to_string(),
    );
    gauge(
        "spear_campaign_threads",
        "Worker threads in use.",
        hb.threads.to_string(),
    );
    gauge(
        "spear_campaign_elapsed_ms",
        "Wall-clock ms since this invocation started.",
        hb.elapsed_ms.to_string(),
    );
    gauge(
        "spear_campaign_eta_ms",
        "Estimated remaining ms (absent until the first cell finishes).",
        match hb.eta_ms {
            Some(v) => v.to_string(),
            None => "NaN".to_string(),
        },
    );
    gauge(
        "spear_campaign_committed_insts",
        "Committed instructions simulated by this invocation.",
        hb.committed_insts.to_string(),
    );
    gauge(
        "spear_campaign_kips",
        "Committed kilo-instructions per wall-clock second, all shards.",
        format!("{:.3}", hb.kips),
    );
    gauge(
        "spear_campaign_kips_per_shard",
        "Mean per-shard simulation throughput in KIPS.",
        format!("{:.3}", hb.kips_per_shard),
    );
    atomic("metrics.prom", prom)
}

/// Per-workload wall-time table over a set of cell results, sorted by
/// workload name.
pub fn workload_timings(results: &[CellResult]) -> Vec<WorkloadTiming> {
    let mut out: Vec<WorkloadTiming> = Vec::new();
    for r in results {
        match out.binary_search_by(|t| t.workload.as_str().cmp(&r.workload)) {
            Ok(i) => {
                out[i].cells += 1;
                out[i].wall_ms += r.wall_ms;
            }
            Err(i) => out.insert(
                i,
                WorkloadTiming {
                    workload: r.workload.clone(),
                    cells: 1,
                    wall_ms: r.wall_ms,
                },
            ),
        }
    }
    out
}

/// Phase 1 for one (workload, predictor spec): compile the p-thread
/// table against the profiling input, attach it to the evaluation image,
/// and capture warm checkpoints at every sampled interval boundary. The
/// warmer trains `bpred_cfg`'s predictor, so the checkpoints restore
/// only into cores configured with the same spec. When the campaign
/// sweeps the `trace` front end, the workload's committed path is also
/// recorded (or fetched from `traces`) so trace-backed cells can replay
/// it.
fn prepare_workload(
    name: &str,
    bpred_cfg: spear_bpred::PredictorConfig,
    sample: &SampleSpec,
    simpoint: Option<SimpointSpec>,
    needs_trace: bool,
    traces: Option<&TraceCache>,
) -> Result<WorkloadData, String> {
    let (w, scale) =
        spear_workloads::by_spec(name).ok_or_else(|| format!("unknown workload `{name}`"))?;
    let profile = w.profile_program();
    let (compiled, _report) = SpearCompiler::new(CompilerConfig::default())
        .compile(&profile)
        .map_err(|e| format!("{name}: compile failed: {e}"))?;
    let binary = SpearCompiler::attach(w.eval_program_scaled(scale), compiled.table);
    // The cache substrate is machine-independent (Table 2 geometry is
    // shared by every evaluated model), so these checkpoints serve all
    // (machine, latency) points that share the predictor spec.
    let (set, intervals, weights) = match simpoint {
        None => {
            let set = capture_interval_checkpoints(
                &binary.program,
                name,
                spear_mem::HierConfig::paper(),
                bpred_cfg,
                sample.interval_len,
                sample.stride,
                MAX_FUNCTIONAL_INSTS,
            )?;
            let intervals = plan_intervals(set.total_insts, sample);
            debug_assert_eq!(intervals.len(), set.checkpoints.len());
            (set, intervals, Vec::new())
        }
        Some(sp) => {
            debug_assert_eq!(sample.stride, 1, "validated by run_with");
            // Pass A (functional only, no warming): slice the committed
            // stream into basic-block vectors and cluster them into
            // phases. The partial tail interval clusters with the rest —
            // projection is frequency-normalized, so a short interval
            // compares by profile, not length.
            let (bbvs, total_a) = spear_exec::collect_bbvs(
                &binary.program,
                sample.interval_len,
                MAX_FUNCTIONAL_INSTS,
            )
            .map_err(|e| format!("{name}: BBV pass failed: {e}"))?;
            let matrix: Vec<Vec<(u64, u64)>> = bbvs.iter().map(|b| b.counts.clone()).collect();
            let cfg = spear_simpoint::SimpointConfig {
                k: sp.k as usize,
                seed: sp.seed,
                ..Default::default()
            };
            let clustering = spear_simpoint::cluster(&matrix, &cfg);
            // One representative interval per phase, carrying the phase's
            // population count as its aggregation weight; ascending by
            // start instruction so pass B captures in stream order.
            let mut reps: Vec<(Interval, u64)> = clustering
                .representatives
                .iter()
                .zip(&clustering.counts)
                .map(|(&r, &count)| {
                    let b = &bbvs[r];
                    (
                        Interval {
                            index: b.index,
                            start_inst: b.start_inst,
                            len: b.len,
                        },
                        count,
                    )
                })
                .collect();
            reps.sort_by_key(|(iv, _)| iv.start_inst);
            let boundaries: Vec<u64> = reps.iter().map(|(iv, _)| iv.start_inst).collect();
            // Pass B: one warming pass over the whole stream, capturing a
            // checkpoint only at each representative's start boundary.
            let set = capture_checkpoints_at(
                &binary.program,
                name,
                spear_mem::HierConfig::paper(),
                bpred_cfg,
                &boundaries,
                MAX_FUNCTIONAL_INSTS,
            )?;
            if set.total_insts != total_a {
                return Err(format!(
                    "{name}: BBV pass ran {total_a} instructions but the \
                     checkpoint pass ran {} — non-deterministic workload?",
                    set.total_insts
                ));
            }
            let (intervals, weights) = reps.into_iter().unzip();
            (set, intervals, weights)
        }
    };
    let trace = if needs_trace {
        Some(match traces {
            Some(tc) => tc.get_or_record(name, &binary, MAX_FUNCTIONAL_INSTS)?,
            None => Arc::new(record_trace(name, &binary, MAX_FUNCTIONAL_INSTS)?),
        })
    } else {
        None
    };
    Ok(WorkloadData {
        name: name.to_string(),
        bpred: bpred_cfg.spec_label(),
        binary,
        set,
        intervals,
        weights,
        trace,
    })
}

/// Phase 2 for one cell: restore the interval's checkpoint into a fresh
/// core — program-driven or replaying the recorded trace from the
/// checkpoint's cursor — and simulate the interval's instruction budget.
fn run_cell(
    wd: &WorkloadData,
    point: &MachinePoint,
    frontend: &str,
    interval: Interval,
    weight: u64,
    window: Option<u64>,
) -> Result<CellResult, String> {
    debug_assert_eq!(
        wd.bpred,
        point.config.bpred.spec_label(),
        "cell paired with a shard warmed for a different predictor"
    );
    let cp = wd.set.at(interval.start_inst).ok_or_else(|| {
        format!(
            "{}: no checkpoint at instruction {}",
            wd.name, interval.start_inst
        )
    })?;
    let t0 = Instant::now();
    let mut core = match frontend {
        "trace" => {
            let tf = wd
                .trace
                .as_ref()
                .ok_or_else(|| format!("{}: shard carries no recorded trace", wd.name))?;
            let src = TraceSource::at_cursor(tf, cp.trace_cursor)
                .map_err(|e| format!("{} interval {}: {e}", wd.name, interval.index))?;
            Core::with_source(&wd.binary, point.config.clone(), Box::new(src))
        }
        _ => Core::new(&wd.binary, point.config.clone()),
    };
    cp.restore_into(&mut core)?;
    if let Some(len) = window {
        core.enable_windows(len);
    }
    let res = core
        .run(MAX_CELL_CYCLES, interval.len)
        .map_err(|e| format!("{} on {}: {e}", wd.name, point.machine))?;
    if res.exit == RunExit::CycleBudget {
        return Err(format!(
            "{} on {} interval {}: cycle ceiling hit before the instruction budget",
            wd.name, point.machine, interval.index
        ));
    }
    Ok(CellResult {
        schema_version: CELL_SCHEMA_VERSION,
        workload: wd.name.clone(),
        machine: point.machine.clone(),
        bpred: wd.bpred.clone(),
        frontend: frontend.to_string(),
        mem_latency: point.mem_latency,
        interval: interval.index,
        start_inst: interval.start_inst,
        target_insts: interval.len,
        weight,
        exit: res.exit,
        wall_ms: t0.elapsed().as_millis() as u64,
        stats: res.stats,
    })
}

/// Run `f` over `items` on `threads` workers, preserving order.
fn parallel_map<T: Sync, R: Send>(
    items: &[T],
    threads: usize,
    f: impl Fn(&T) -> R + Sync,
) -> Vec<R> {
    let n = items.len();
    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<Option<R>>> = Mutex::new((0..n).map(|_| None).collect());
    crossbeam::scope(|scope| {
        for _ in 0..threads.min(n.max(1)) {
            scope.spawn(|_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let r = f(&items[i]);
                results.lock()[i] = Some(r);
            });
        }
    })
    .expect("worker panicked");
    results
        .into_inner()
        .into_iter()
        .map(|r| r.expect("all slots filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eta_is_unknown_before_the_first_cell_and_under_zero_threads() {
        assert_eq!(eta_ms(0, 0, 100, 4), None, "no data yet");
        assert_eq!(eta_ms(500, 0, 100, 4), None, "zero executed");
        assert_eq!(eta_ms(500, 5, 100, 0), None, "degenerate thread count");
    }

    #[test]
    fn eta_divides_mean_cell_time_across_threads() {
        // 10 cells took 1000ms -> 100ms/cell; 40 remain on 4 threads.
        assert_eq!(eta_ms(1000, 10, 40, 4), Some(1000));
        assert_eq!(eta_ms(1000, 10, 0, 4), Some(0), "nothing remaining");
    }

    #[test]
    fn heartbeat_files_are_written_atomically_and_parse_back() {
        let dir = std::env::temp_dir().join(format!("spear-heartbeat-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let hb = HeartbeatDoc {
            done: 12,
            total: 48,
            executed: 12,
            threads: 4,
            elapsed_ms: 6_000,
            eta_ms: eta_ms(6_000, 12, 36, 4),
            committed_insts: 1_200_000,
            kips: 200.0,
            kips_per_shard: 50.0,
            last_cell: "pointer/SPEAR-128/bimodal/program/120/3".into(),
        };
        write_heartbeat(&dir, &hb).unwrap();
        // The temp files were renamed away, not left behind.
        assert!(!dir.join("progress.json.tmp").exists());
        assert!(!dir.join("metrics.prom.tmp").exists());
        let back: HeartbeatDoc =
            serde::json::from_str(&std::fs::read_to_string(dir.join("progress.json")).unwrap())
                .unwrap();
        assert_eq!(back, hb);
        assert_eq!(back.eta_ms, Some(4_500));
        let prom = std::fs::read_to_string(dir.join("metrics.prom")).unwrap();
        assert!(
            prom.contains("# TYPE spear_campaign_cells_done gauge"),
            "{prom}"
        );
        assert!(prom.contains("spear_campaign_cells_done 12"), "{prom}");
        assert!(prom.contains("spear_campaign_kips 200.000"), "{prom}");
        assert!(prom.contains("spear_campaign_eta_ms 4500"), "{prom}");
        // An unknown ETA renders as NaN, the Prometheus idiom for
        // "no value", never as a parse-breaking empty sample.
        let cold = HeartbeatDoc { eta_ms: None, ..hb };
        write_heartbeat(&dir, &cold).unwrap();
        let prom = std::fs::read_to_string(dir.join("metrics.prom")).unwrap();
        assert!(prom.contains("spear_campaign_eta_ms NaN"), "{prom}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
