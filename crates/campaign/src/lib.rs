//! # spear-campaign — checkpointed sampled simulation and resumable campaigns
//!
//! Full-program cycle simulation of the evaluation grid (15 workloads ×
//! 5 machines × the latency sweep) is the bottleneck of every experiment
//! in the paper. This crate cuts that cost along two independent axes:
//!
//! * **Sampling** ([`sample`]): split each workload's dynamic instruction
//!   stream into fixed-length intervals and cycle-simulate only every
//!   `stride`-th one, SMARTS-style. The functional pass still touches
//!   every instruction, continuously warming the caches and the branch
//!   predictor, so each simulated interval starts from representative
//!   microarchitectural state rather than a cold machine.
//! * **Checkpointing** ([`checkpoint`]): the warm state at each sampled
//!   interval boundary — architectural registers, memory image, PC, plus
//!   cache contents/LRU and predictor tables — is captured once per
//!   (workload, predictor spec) and restored into a fresh cycle core per
//!   (machine, latency) cell. The cache substrate is machine-independent
//!   (Table 2 geometry is shared by all five models), so one functional
//!   pass serves every sweep point that shares the predictor.
//!
//! The [`engine`] module turns the resulting (workload, machine,
//! predictor, latency, interval) cells into a crash-safe parallel work
//! queue: each
//! finished cell is flushed to an append-only `cells.jsonl` in the
//! campaign directory, and a restarted campaign skips everything already
//! on disk. Aggregation sorts cells by their full key before merging, so
//! the final statistics are byte-identical regardless of thread count or
//! completion order — and the exact-slot CPI accounting invariant holds
//! on the aggregate because it holds per interval and merging is a plain
//! sum.

pub mod checkpoint;
pub mod engine;
pub mod sample;
pub mod shard_cache;
pub mod trace_cache;

pub use checkpoint::{
    capture_checkpoints_at, capture_interval_checkpoints, Checkpoint, CheckpointSet, Warmer,
};
pub use engine::{
    eta_ms, workload_timings, write_aggregate_envelopes, write_heartbeat, Campaign, CampaignSpec,
    CellResult, HeartbeatDoc, MachinePoint, ProgressSnapshot, RunOptions, RunSummary, SimpointSpec,
    WorkloadData, WorkloadTiming, CELL_SCHEMA_VERSION,
};
pub use sample::{aggregate, plan_intervals, Aggregate, Interval, SampleSpec};
pub use shard_cache::{ShardCache, ShardCacheStats};
pub use trace_cache::{record_trace, TraceCache, TraceCacheStats};

#[cfg(test)]
mod engine_tests {
    use super::*;
    use spear_cpu::CoreConfig;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("spear-campaign-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn small_spec(threads: usize, max_cells: Option<u64>) -> CampaignSpec {
        CampaignSpec {
            workloads: vec!["pointer".into(), "update".into()],
            points: vec![
                MachinePoint {
                    machine: "superscalar".into(),
                    mem_latency: 120,
                    config: CoreConfig::baseline(),
                },
                MachinePoint {
                    machine: "SPEAR-128".into(),
                    mem_latency: 120,
                    config: CoreConfig::spear(128),
                },
            ],
            frontends: vec!["program".into()],
            sample: SampleSpec {
                interval_len: 20_000,
                stride: 2,
            },
            threads,
            max_cells,
            window: None,
            simpoint: None,
        }
    }

    /// Strip the wall-clock fields so runs can be compared for semantic
    /// equality.
    fn comparable(aggs: &[Aggregate]) -> Vec<String> {
        aggs.iter()
            .map(|a| {
                format!(
                    "{}|{}|{}|{}|{}|{}|{}|{}",
                    a.workload,
                    a.machine,
                    a.bpred,
                    a.frontend,
                    a.mem_latency,
                    a.cells,
                    a.target_insts,
                    serde::json::to_string(&a.stats)
                )
            })
            .collect()
    }

    #[test]
    fn campaign_runs_resumes_after_interruption_and_matches_uninterrupted() {
        // Reference: one uninterrupted run.
        let ref_dir = temp_dir("ref");
        let full = Campaign::new(&ref_dir, small_spec(2, None))
            .run(None)
            .expect("uninterrupted run");
        assert!(!full.interrupted);
        assert_eq!(full.executed, full.total_cells);
        let want = comparable(&full.aggregates());

        // Interrupted run: stop after 3 cells, then resume to the end.
        let dir = temp_dir("resume");
        let first = Campaign::new(&dir, small_spec(2, Some(3)))
            .run(None)
            .expect("interrupted run");
        assert!(first.interrupted);
        assert_eq!(first.executed, 3);
        let second = Campaign::new(&dir, small_spec(2, None))
            .run(None)
            .expect("resumed run");
        assert!(!second.interrupted);
        assert_eq!(second.skipped, 3, "resume must skip the finished cells");
        assert_eq!(
            second.executed + second.skipped,
            second.total_cells,
            "resume must finish exactly the remaining cells"
        );
        assert_eq!(comparable(&second.aggregates()), want);

        let _ = std::fs::remove_dir_all(&ref_dir);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn campaign_aggregates_identical_across_thread_counts() {
        let d1 = temp_dir("t1");
        let dn = temp_dir("tn");
        let serial = Campaign::new(&d1, small_spec(1, None)).run(None).unwrap();
        let parallel = Campaign::new(&dn, small_spec(4, None)).run(None).unwrap();
        assert_eq!(
            comparable(&serial.aggregates()),
            comparable(&parallel.aggregates())
        );
        let _ = std::fs::remove_dir_all(&d1);
        let _ = std::fs::remove_dir_all(&dn);
    }

    #[test]
    fn campaign_tolerates_truncated_tail_line_and_reruns_that_cell() {
        let dir = temp_dir("trunc");
        let spec = small_spec(1, None);
        let full = Campaign::new(&dir, spec.clone()).run(None).unwrap();
        let want = comparable(&full.aggregates());

        // Chop the last line mid-record, as a crash during the final
        // append would.
        let path = dir.join("cells.jsonl");
        let text = std::fs::read_to_string(&path).unwrap();
        let cut = text.len() - 40;
        std::fs::write(&path, &text[..cut]).unwrap();

        let resumed = Campaign::new(&dir, spec.clone()).run(None).unwrap();
        assert_eq!(resumed.executed, 1, "exactly the damaged cell re-runs");
        assert_eq!(comparable(&resumed.aggregates()), want);

        // The torn tail must have been physically truncated before the
        // re-run appended, or the partial line and the fresh record would
        // have been glued into one permanently malformed line. Re-reading
        // from disk (not the in-memory summary) proves the file healed.
        let on_disk = Campaign::new(&dir, spec.clone()).load_results().unwrap();
        assert_eq!(
            on_disk.len() as u64,
            full.total_cells,
            "every record on disk parses after a torn-tail resume"
        );
        for line in std::fs::read_to_string(&path).unwrap().lines() {
            serde::json::from_str::<engine::CellResult>(line).expect("no glued records");
        }
        let again = Campaign::new(&dir, spec).run(None).unwrap();
        assert_eq!(again.executed, 0, "nothing left to re-run");
        assert_eq!(comparable(&again.aggregates()), want);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn campaign_rejects_mismatched_manifest() {
        let dir = temp_dir("manifest");
        Campaign::new(&dir, small_spec(1, Some(1)))
            .run(None)
            .unwrap();
        let mut other = small_spec(1, Some(1));
        other.sample.interval_len = 999;
        let err = Campaign::new(&dir, other).run(None).unwrap_err();
        assert!(err.contains("different spec"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn windowed_campaign_partitions_cells_and_is_deterministic_and_resumable() {
        // Two window lengths bracket the checkpoint-restore cases: a
        // tiny one so every cell closes many full windows and ends
        // mid-window, and a huge one so each cell holds exactly one
        // partial window closed at the interval boundary.
        for (tag, len) in [("tiny", 257u64), ("huge", 1 << 40)] {
            let spec = |threads: usize, max_cells: Option<u64>| {
                let mut s = small_spec(threads, max_cells);
                s.window = Some(len);
                s
            };
            let ref_dir = temp_dir(&format!("win-ref-{tag}"));
            let serial = Campaign::new(&ref_dir, spec(1, None)).run(None).unwrap();
            let want = comparable(&serial.aggregates());
            for c in &serial.results {
                let width = if c.machine == "superscalar" {
                    spear_cpu::CoreConfig::baseline().commit_width
                } else {
                    spear_cpu::CoreConfig::spear(128).commit_width
                };
                c.stats
                    .check_invariants(width)
                    .expect("per-cell window partition holds after checkpoint restore");
                assert!(!c.stats.windows.is_empty());
                let committed: u64 = c.stats.windows.iter().map(|w| w.committed).sum();
                assert_eq!(committed, c.stats.committed);
                if len == 1 << 40 {
                    assert_eq!(c.stats.windows.len(), 1, "one partial window per cell");
                }
            }

            // Byte-identical aggregates across 2- and 4-thread runs
            // (`comparable` serializes the stats, windows included).
            for threads in [2usize, 4] {
                let dir = temp_dir(&format!("win-t{threads}-{tag}"));
                let run = Campaign::new(&dir, spec(threads, None)).run(None).unwrap();
                assert_eq!(comparable(&run.aggregates()), want, "{threads} threads");
                let _ = std::fs::remove_dir_all(&dir);
            }

            // Interrupt mid-campaign and resume: the restored cells'
            // windows must reproduce the uninterrupted aggregate.
            let dir = temp_dir(&format!("win-resume-{tag}"));
            let first = Campaign::new(&dir, spec(2, Some(3))).run(None).unwrap();
            assert!(first.interrupted);
            let second = Campaign::new(&dir, spec(2, None)).run(None).unwrap();
            assert!(!second.interrupted);
            assert_eq!(comparable(&second.aggregates()), want);

            // A windowless spec must not resume a windowed directory:
            // the manifest fingerprints the window shape.
            let err = Campaign::new(&dir, small_spec(1, None))
                .run(None)
                .unwrap_err();
            assert!(err.contains("different spec"), "{err}");

            let _ = std::fs::remove_dir_all(&ref_dir);
            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    #[test]
    fn campaign_writes_heartbeat_files_with_the_final_state() {
        let dir = temp_dir("beat");
        let summary = Campaign::new(&dir, small_spec(2, None)).run(None).unwrap();
        let hb: HeartbeatDoc =
            serde::json::from_str(&std::fs::read_to_string(dir.join("progress.json")).unwrap())
                .expect("progress.json parses");
        assert_eq!(hb.total, summary.total_cells);
        assert_eq!(hb.done, summary.total_cells, "final heartbeat sees the end");
        assert_eq!(hb.executed, summary.executed);
        assert!(hb.committed_insts > 0);
        assert!(hb.kips > 0.0);
        assert_eq!(
            hb.last_cell.split('/').count(),
            6,
            "workload/machine/bpred/frontend/latency/interval: {}",
            hb.last_cell
        );
        let prom = std::fs::read_to_string(dir.join("metrics.prom")).unwrap();
        assert!(
            prom.contains(&format!(
                "spear_campaign_cells_total {}",
                summary.total_cells
            )),
            "{prom}"
        );
        assert!(prom.contains("# TYPE spear_campaign_kips gauge"), "{prom}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn trace_frontend_cells_match_program_cells_on_the_baseline_machine() {
        let dir = temp_dir("trace-fe");
        let mut spec = small_spec(2, None);
        spec.workloads = vec!["pointer".into()];
        spec.points.truncate(1); // the baseline superscalar point
        spec.frontends = vec!["program".into(), "trace".into()];
        let summary = Campaign::new(&dir, spec.clone()).run(None).unwrap();
        let aggs = summary.aggregates();
        assert_eq!(aggs.len(), 2, "one aggregate per front end");
        let prog = aggs.iter().find(|a| a.frontend == "program").unwrap();
        let trace = aggs.iter().find(|a| a.frontend == "trace").unwrap();
        assert!(prog.cells > 0 && prog.cells == trace.cells);
        assert_eq!(
            serde::json::to_string(&prog.stats),
            serde::json::to_string(&trace.stats),
            "baseline timing must not depend on the instruction source"
        );

        // The aggregate envelope files keep the historical name for the
        // program group and insert the front end for the trace group.
        let files = write_aggregate_envelopes(&dir, &summary.results, None).unwrap();
        let names: Vec<String> = files
            .iter()
            .map(|p| p.file_name().unwrap().to_string_lossy().into_owned())
            .collect();
        assert!(
            names.contains(&"pointer-superscalar-120.json".to_string()),
            "{names:?}"
        );
        assert!(
            names.contains(&"pointer-superscalar-trace-120.json".to_string()),
            "{names:?}"
        );

        // The frontend axis participates in resume identity: a re-run
        // has nothing left, and a program-only spec must not resume a
        // two-frontend directory.
        let again = Campaign::new(&dir, spec.clone()).run(None).unwrap();
        assert_eq!(again.executed, 0, "every (frontend, interval) cell done");
        let mut other = spec;
        other.frontends = vec!["program".into()];
        let err = Campaign::new(&dir, other).run(None).unwrap_err();
        assert!(err.contains("different spec"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bogus_frontends_are_rejected_before_any_work() {
        let dir = temp_dir("bad-fe");
        let mut spec = small_spec(1, None);
        spec.frontends = vec!["oracle".into()];
        let err = Campaign::new(&dir, spec).run(None).unwrap_err();
        assert!(err.contains("unknown front end `oracle`"), "{err}");
        let mut spec = small_spec(1, None);
        spec.frontends = vec!["trace".into(), "trace".into()];
        let err = Campaign::new(&dir, spec).run(None).unwrap_err();
        assert!(err.contains("listed more than once"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn trace_campaigns_share_the_trace_cache_across_jobs() {
        let traces = TraceCache::new(u64::MAX);
        let mut spec = small_spec(2, None);
        spec.workloads = vec!["pointer".into()];
        spec.points.truncate(1);
        spec.frontends = vec!["trace".into()];
        let opts = || RunOptions {
            traces: Some(&traces),
            ..RunOptions::default()
        };
        let d1 = temp_dir("share-1");
        let d2 = temp_dir("share-2");
        let a = Campaign::new(&d1, spec.clone()).run_with(&opts()).unwrap();
        let b = Campaign::new(&d2, spec).run_with(&opts()).unwrap();
        assert_eq!(comparable(&a.aggregates()), comparable(&b.aggregates()));
        let ts = traces.stats();
        assert_eq!(
            (ts.misses, ts.hits),
            (1, 1),
            "one recording serves both jobs: {ts:?}"
        );
        let _ = std::fs::remove_dir_all(&d1);
        let _ = std::fs::remove_dir_all(&d2);
    }

    fn simpoint_spec(threads: usize, max_cells: Option<u64>) -> CampaignSpec {
        let mut s = small_spec(threads, max_cells);
        s.sample.stride = 1;
        s.simpoint = Some(SimpointSpec { k: 3, seed: 42 });
        s
    }

    #[test]
    fn simpoint_campaign_runs_fewer_cells_resumes_and_is_thread_deterministic() {
        // Reference: the full (stride-1) campaign, for the cell count.
        let full_dir = temp_dir("sp-full");
        let mut full_spec = small_spec(1, None);
        full_spec.sample.stride = 1;
        let full = Campaign::new(&full_dir, full_spec).run(None).unwrap();

        let ref_dir = temp_dir("sp-ref");
        let sp = Campaign::new(&ref_dir, simpoint_spec(1, None))
            .run(None)
            .unwrap();
        assert!(
            sp.total_cells < full.total_cells,
            "simpoint must simulate fewer cells than full coverage \
             ({} vs {})",
            sp.total_cells,
            full.total_cells
        );
        // Every representative carries its phase's population count, and
        // per workload group the weights cover the whole program.
        let sp_aggs = sp.aggregates();
        let full_aggs = full.aggregates();
        for (s, f) in sp_aggs.iter().zip(&full_aggs) {
            assert_eq!(
                (s.workload.as_str(), s.machine.as_str()),
                (f.workload.as_str(), f.machine.as_str())
            );
            assert_eq!(s.weight, f.cells, "weights cover every interval");
            // The blend's instruction budget is Σ weight × rep_len: the
            // short tail interval may be stood for by a full-length
            // representative (or represent full ones itself), so the
            // reconstituted budget is the true total ± one interval per
            // phase, not exact.
            assert!(
                s.target_insts.abs_diff(f.target_insts) < s.cells * 20_000,
                "whole-program budget: {} vs {}",
                s.target_insts,
                f.target_insts
            );
            assert!(s.cells <= 3, "at most k representatives per group");
            let rel = (s.ipc() - f.ipc()).abs() / f.ipc();
            assert!(
                rel < 0.25,
                "{}/{}: blended IPC {} vs full {} ({}% off)",
                s.workload,
                s.machine,
                s.ipc(),
                f.ipc(),
                rel * 100.0
            );
        }
        // The blended statistics still satisfy the exact-slot invariant.
        for a in &sp_aggs {
            let width = if a.machine == "superscalar" {
                spear_cpu::CoreConfig::baseline().commit_width
            } else {
                spear_cpu::CoreConfig::spear(128).commit_width
            };
            a.stats.check_invariants(width).expect("scaled invariants");
        }
        let want = comparable(&sp_aggs);

        // Thread-count determinism, byte-for-byte.
        let dn = temp_dir("sp-t4");
        let parallel = Campaign::new(&dn, simpoint_spec(4, None))
            .run(None)
            .unwrap();
        assert_eq!(comparable(&parallel.aggregates()), want);

        // Interrupt + resume converges to the same aggregates.
        let dir = temp_dir("sp-resume");
        let first = Campaign::new(&dir, simpoint_spec(2, Some(2)))
            .run(None)
            .unwrap();
        assert!(first.interrupted);
        let second = Campaign::new(&dir, simpoint_spec(2, None))
            .run(None)
            .unwrap();
        assert!(!second.interrupted);
        assert_eq!(comparable(&second.aggregates()), want);

        // The manifest fingerprints the clustering: neither a plain spec
        // nor different clustering parameters may resume this directory.
        let mut plain = small_spec(1, None);
        plain.sample.stride = 1;
        let err = Campaign::new(&dir, plain).run(None).unwrap_err();
        assert!(err.contains("different spec"), "{err}");
        let mut other = simpoint_spec(1, None);
        other.simpoint = Some(SimpointSpec { k: 3, seed: 7 });
        let err = Campaign::new(&dir, other).run(None).unwrap_err();
        assert!(err.contains("different spec"), "{err}");

        // Envelopes gain the additive simpoint block; weight-carrying
        // records on disk round-trip through the cell schema.
        let files = write_aggregate_envelopes(
            &dir,
            &second.results,
            Some((SimpointSpec { k: 3, seed: 42 }, 20_000)),
        )
        .unwrap();
        let doc = spear_cpu::StatsExport::from_json(&std::fs::read_to_string(&files[0]).unwrap())
            .expect("envelope parses");
        let block = doc.simpoint.expect("simpoint block present");
        assert_eq!((block.k, block.seed, block.interval_len), (3, 42, 20_000));
        assert!(block.phases <= block.intervals);
        for line in std::fs::read_to_string(dir.join("cells.jsonl"))
            .unwrap()
            .lines()
        {
            let cell: engine::CellResult = serde::json::from_str(line).unwrap();
            assert!(cell.weight >= 1);
        }
        assert!(
            second.results.iter().any(|c| c.weight > 1),
            "a 3-phase clustering of >3 intervals must weight some cell"
        );

        let _ = std::fs::remove_dir_all(&full_dir);
        let _ = std::fs::remove_dir_all(&ref_dir);
        let _ = std::fs::remove_dir_all(&dn);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn simpoint_rejects_windows_and_nonunit_strides() {
        let dir = temp_dir("sp-reject");
        let mut spec = simpoint_spec(1, None);
        spec.window = Some(1000);
        let err = Campaign::new(&dir, spec).run(None).unwrap_err();
        assert!(err.contains("incompatible with --window"), "{err}");
        let mut spec = simpoint_spec(1, None);
        spec.sample.stride = 2;
        let err = Campaign::new(&dir, spec).run(None).unwrap_err();
        assert!(err.contains("requires stride 1"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn scaled_workload_specs_run_and_keep_their_identity() {
        let dir = temp_dir("scaled");
        let mut spec = small_spec(2, None);
        spec.workloads = vec!["pointer".into(), "pointer@x2".into()];
        spec.points.truncate(1);
        let summary = Campaign::new(&dir, spec).run(None).unwrap();
        let aggs = summary.aggregates();
        assert_eq!(aggs.len(), 2, "base and scaled are distinct groups");
        let base = aggs.iter().find(|a| a.workload == "pointer").unwrap();
        let scaled = aggs.iter().find(|a| a.workload == "pointer@x2").unwrap();
        assert!(
            scaled.target_insts > base.target_insts,
            "the scale knob must grow the evaluation run: {} vs {}",
            scaled.target_insts,
            base.target_insts
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn progress_callback_reports_monotone_done_and_eta() {
        let dir = temp_dir("progress");
        let calls = AtomicU64::new(0);
        let summary = Campaign::new(&dir, small_spec(1, None))
            .run(Some(&|p: &ProgressSnapshot| {
                calls.fetch_add(1, Ordering::SeqCst);
                assert!(p.done <= p.total);
                assert!(p.eta_ms.is_some(), "ETA available after first cell");
            }))
            .unwrap();
        assert_eq!(calls.load(Ordering::SeqCst), summary.executed);
        assert!(!summary.timings.is_empty());
        let total_cells: u64 = summary.timings.iter().map(|t| t.cells).sum();
        assert_eq!(total_cells, summary.total_cells);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
