//! The trace cache: recorded `.spt` replay streams built once per
//! workload and shared read-only across every trace-backed cell of every
//! job that needs one.
//!
//! Recording a trace is a full functional pass over the workload (one
//! retired-instruction record per dynamic instruction), so it is the
//! same class of fixed cost as building a checkpoint shard — and, unlike
//! a shard, it depends on *nothing* but the workload: the committed path
//! is architecture-defined, identical across machines, predictors,
//! latencies and sampling plans. A resident server running many
//! trace-backed jobs over the same workloads would otherwise re-record
//! per job; with the cache it records once per workload.
//!
//! Eviction is least-recently-used under a byte budget, mirroring
//! [`crate::shard_cache::ShardCache`]. An entry being used by a running
//! job is an `Arc` clone, so eviction never invalidates in-flight
//! replay.

use parking_lot::Mutex;
use spear_isa::SpearBinary;
use spear_trace::TraceFile;
use std::sync::Arc;

/// Cumulative cache counters, for `/metrics`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TraceCacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that had to record the trace.
    pub misses: u64,
    /// Entries evicted to stay under the byte budget.
    pub evictions: u64,
    /// Estimated bytes currently resident.
    pub resident_bytes: u64,
    /// Entries currently resident.
    pub entries: u64,
}

/// Estimated resident size of a decoded trace: the in-memory record
/// array dominates (the `Rec` struct is ~40 bytes against ~1 payload
/// byte per ALU instruction), plus the embedded image and a flat base.
fn approx_bytes(tf: &TraceFile) -> u64 {
    const BASE_OVERHEAD: u64 = 64 * 1024;
    const PER_REC: u64 = 48;
    BASE_OVERHEAD + tf.recs.len() as u64 * PER_REC + tf.payload_bytes
}

struct Entry {
    /// Workload name — the whole key: the committed path is a function
    /// of the workload's evaluation program alone.
    workload: String,
    data: Arc<TraceFile>,
    bytes: u64,
}

struct Inner {
    /// Most-recently-used last.
    entries: Vec<Entry>,
    bytes: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

/// An LRU cache of recorded [`TraceFile`]s under a byte budget.
pub struct TraceCache {
    budget: u64,
    inner: Mutex<Inner>,
}

impl TraceCache {
    /// A cache that keeps at most ~`budget_bytes` of estimated trace
    /// state resident (a single trace larger than the whole budget is
    /// still cached — the budget bounds the *sum*, evicting down to one
    /// entry at minimum).
    pub fn new(budget_bytes: u64) -> TraceCache {
        TraceCache {
            budget: budget_bytes,
            inner: Mutex::new(Inner {
                entries: Vec::new(),
                bytes: 0,
                hits: 0,
                misses: 0,
                evictions: 0,
            }),
        }
    }

    /// The configured byte budget.
    pub fn budget_bytes(&self) -> u64 {
        self.budget
    }

    /// Fetch the replay trace for `workload`, recording it from `binary`
    /// on a miss. Recording happens *outside* the cache lock so a slow
    /// functional pass never blocks hits on other workloads; if two
    /// threads race to record the same workload, the first insert wins
    /// and the loser's copy is dropped.
    pub fn get_or_record(
        &self,
        workload: &str,
        binary: &SpearBinary,
        max_insts: u64,
    ) -> Result<Arc<TraceFile>, String> {
        {
            let mut g = self.inner.lock();
            if let Some(i) = g.entries.iter().position(|e| e.workload == workload) {
                g.hits += 1;
                // Touch: move to most-recently-used.
                let e = g.entries.remove(i);
                let data = e.data.clone();
                g.entries.push(e);
                return Ok(data);
            }
            g.misses += 1;
        }
        let built = Arc::new(record_trace(workload, binary, max_insts)?);
        let bytes = approx_bytes(&built);
        let mut g = self.inner.lock();
        if let Some(i) = g.entries.iter().position(|e| e.workload == workload) {
            // Lost a record race; keep the incumbent.
            let e = g.entries.remove(i);
            let data = e.data.clone();
            g.entries.push(e);
            return Ok(data);
        }
        g.entries.push(Entry {
            workload: workload.to_string(),
            data: built.clone(),
            bytes,
        });
        g.bytes += bytes;
        while g.bytes > self.budget && g.entries.len() > 1 {
            let victim = g.entries.remove(0);
            g.bytes -= victim.bytes;
            g.evictions += 1;
        }
        Ok(built)
    }

    /// Current counters.
    pub fn stats(&self) -> TraceCacheStats {
        let g = self.inner.lock();
        TraceCacheStats {
            hits: g.hits,
            misses: g.misses,
            evictions: g.evictions,
            resident_bytes: g.bytes,
            entries: g.entries.len() as u64,
        }
    }
}

/// Record `binary`'s committed path and decode it back into a replayable
/// [`TraceFile`] — the same encode→decode round trip a `.spt` on disk
/// takes, so cached and file-loaded traces are indistinguishable.
pub fn record_trace(
    workload: &str,
    binary: &SpearBinary,
    max_insts: u64,
) -> Result<TraceFile, String> {
    let (bytes, stats) =
        spear_trace::record(binary, max_insts).map_err(|e| format!("{workload}: record: {e}"))?;
    if !stats.halted {
        return Err(format!(
            "{workload}: trace recording hit the {max_insts}-instruction budget before halt"
        ));
    }
    TraceFile::decode(&bytes).map_err(|e| format!("{workload}: re-decode of own trace: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use spear_isa::asm::Asm;
    use spear_isa::reg::*;

    fn tiny_binary(iters: i64) -> SpearBinary {
        let mut a = Asm::new();
        a.li(R3, iters);
        a.label("spin");
        a.addi(R3, R3, -1);
        a.bne(R3, R0, "spin");
        a.halt();
        SpearBinary::plain(a.finish().unwrap())
    }

    #[test]
    fn records_once_then_hits() {
        let cache = TraceCache::new(u64::MAX);
        let b = tiny_binary(8);
        let t1 = cache.get_or_record("spin", &b, u64::MAX).unwrap();
        let t2 = cache.get_or_record("spin", &b, u64::MAX).unwrap();
        assert!(Arc::ptr_eq(&t1, &t2), "same shared trace");
        assert!(!t1.recs.is_empty());
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
        assert!(s.resident_bytes > 0);
    }

    #[test]
    fn lru_eviction_respects_the_byte_budget() {
        let cache = TraceCache::new(0);
        cache.get_or_record("a", &tiny_binary(4), u64::MAX).unwrap();
        let held = cache.get_or_record("b", &tiny_binary(6), u64::MAX).unwrap();
        let s = cache.stats();
        assert_eq!(s.entries, 1, "budget forces eviction to one entry");
        assert_eq!(s.evictions, 1);
        // The evicted trace rebuilds; the in-flight Arc still works.
        assert!(!held.recs.is_empty());
        cache.get_or_record("a", &tiny_binary(4), u64::MAX).unwrap();
        assert_eq!(cache.stats().misses, 3);
    }

    #[test]
    fn runaway_recordings_error_instead_of_caching_a_torso() {
        let cache = TraceCache::new(u64::MAX);
        let err = cache
            .get_or_record("spin", &tiny_binary(1000), 5)
            .unwrap_err();
        assert!(err.contains("budget before halt"), "{err}");
        // The failure was not cached.
        assert_eq!(cache.stats().entries, 0);
        cache
            .get_or_record("spin", &tiny_binary(1000), u64::MAX)
            .unwrap();
    }
}
