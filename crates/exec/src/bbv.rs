//! Basic-block-vector (BBV) collection for SimPoint-style phase
//! clustering.
//!
//! A *basic block* here is a maximal run of committed instructions
//! ending at a control-flow instruction, identified by the PC of its
//! first instruction. The committed stream is sliced into fixed-size
//! intervals (default 100k instructions, the classic SimPoint interval),
//! and each interval is summarized as a sparse vector of
//! `(block id, instructions executed in that block)` pairs — the
//! fingerprint that phase clustering (see the `spear-simpoint` crate)
//! groups into program phases.
//!
//! The collector is front-end agnostic: it observes only
//! `(pc, is_ctrl)` of each committed instruction, which the functional
//! interpreter, the cycle core's commit stream, and a decoded `.spt`
//! replay trace all agree on — so block ids are stable across record
//! and replay front ends. It is also `Clone`, and a clone taken
//! mid-interval continues to the exact same totals as the original,
//! which is what lets a checkpoint restore resume BBV collection
//! without re-running the prefix.

use crate::interp::{Interp, StepInfo, Stop};
use spear_isa::Program;
use std::collections::BTreeMap;

/// The classic SimPoint interval: 100k committed instructions.
pub const DEFAULT_BBV_INTERVAL: u64 = 100_000;

/// One interval's basic-block vector.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BbvInterval {
    /// Interval ordinal within the run (0-based).
    pub index: u64,
    /// First committed instruction of the interval.
    pub start_inst: u64,
    /// Committed instructions covered (the final interval of a run may
    /// be shorter than the configured length).
    pub len: u64,
    /// Sparse `(block id, instructions)` pairs, sorted by block id. The
    /// block id is the PC of the block's first instruction; the counts
    /// sum to `len`.
    pub counts: Vec<(u64, u64)>,
}

/// Streaming BBV collector over a committed-instruction stream.
///
/// Feed every committed instruction in order via
/// [`BbvCollector::observe`] (or [`BbvCollector::observe_committed`]
/// when only `(pc, is_ctrl)` is available, e.g. from a decoded trace),
/// then call [`BbvCollector::finish`] to flush the trailing partial
/// interval.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BbvCollector {
    interval_len: u64,
    /// Committed instructions observed so far.
    observed: u64,
    /// PC of the currently open basic block (valid when `block_len > 0`).
    block_start: u32,
    /// Instructions accumulated in the open block.
    block_len: u64,
    /// Instructions accumulated in the open interval.
    in_interval: u64,
    /// Block counts of the open interval.
    current: BTreeMap<u64, u64>,
    /// Closed intervals, in order.
    intervals: Vec<BbvInterval>,
}

impl BbvCollector {
    /// A collector slicing the stream into `interval_len`-instruction
    /// intervals.
    pub fn new(interval_len: u64) -> BbvCollector {
        assert!(interval_len > 0, "BBV interval length must be positive");
        BbvCollector {
            interval_len,
            observed: 0,
            block_start: 0,
            block_len: 0,
            in_interval: 0,
            current: BTreeMap::new(),
            intervals: Vec::new(),
        }
    }

    /// Committed instructions observed so far.
    pub fn observed(&self) -> u64 {
        self.observed
    }

    /// Observe one committed instruction from an interpreter step.
    pub fn observe(&mut self, si: &StepInfo) {
        self.observe_committed(si.pc, si.inst.op.is_ctrl());
    }

    /// Observe one committed instruction given only its PC and whether
    /// it is a control-flow instruction — everything a replayed trace
    /// knows, and everything block identity depends on.
    pub fn observe_committed(&mut self, pc: u32, is_ctrl: bool) {
        if self.block_len == 0 {
            self.block_start = pc;
        }
        self.block_len += 1;
        self.in_interval += 1;
        self.observed += 1;
        let boundary = self.in_interval == self.interval_len;
        if is_ctrl || boundary {
            // A block cut by an interval boundary is charged to each
            // side under the same id (its entry PC), so boundaries tile
            // the stream exactly without inventing instructions.
            *self.current.entry(self.block_start as u64).or_insert(0) += self.block_len;
            self.block_len = 0;
        }
        if boundary {
            self.close_interval();
        }
    }

    fn close_interval(&mut self) {
        let len = self.in_interval;
        let counts: Vec<(u64, u64)> = std::mem::take(&mut self.current).into_iter().collect();
        debug_assert_eq!(counts.iter().map(|&(_, n)| n).sum::<u64>(), len);
        self.intervals.push(BbvInterval {
            index: self.intervals.len() as u64,
            start_inst: self.observed - len,
            len,
            counts,
        });
        self.in_interval = 0;
    }

    /// Flush the open block and the trailing partial interval (if any)
    /// and return every interval in order. The interval lengths tile the
    /// observed stream exactly: they sum to [`BbvCollector::observed`].
    pub fn finish(mut self) -> Vec<BbvInterval> {
        if self.block_len > 0 {
            *self.current.entry(self.block_start as u64).or_insert(0) += self.block_len;
            self.block_len = 0;
        }
        if self.in_interval > 0 {
            self.close_interval();
        }
        self.intervals
    }
}

/// Run `program` through the functional interpreter collecting one BBV
/// per `interval_len` committed instructions. Returns the intervals and
/// the dynamic instruction count. Errors if the program faults or fails
/// to halt within `max_insts`.
pub fn collect_bbvs(
    program: &Program,
    interval_len: u64,
    max_insts: u64,
) -> Result<(Vec<BbvInterval>, u64), String> {
    let mut interp = Interp::new(program);
    let mut collector = BbvCollector::new(interval_len);
    let stop = interp
        .run_with(max_insts, |si, _| collector.observe(si))
        .map_err(|e| format!("BBV pass failed: {e}"))?;
    if stop != Stop::Halted {
        return Err(format!(
            "BBV pass hit the {max_insts}-instruction budget before halt"
        ));
    }
    let total = interp.icount;
    Ok((collector.finish(), total))
}

#[cfg(test)]
mod tests {
    use super::*;
    use spear_isa::asm::Asm;
    use spear_isa::reg::*;

    fn sum_loop(n: u64) -> Program {
        let mut a = Asm::new();
        let xs: Vec<u64> = (1..=n).collect();
        let base = a.alloc_u64("xs", &xs);
        a.li(R1, base as i64);
        a.li(R2, 0);
        a.li(R3, n as i64);
        a.label("loop");
        a.ld(R4, R1, 0);
        a.add(R2, R2, R4);
        a.addi(R1, R1, 8);
        a.addi(R3, R3, -1);
        a.bne(R3, R0, "loop");
        let out = a.reserve("out", 8);
        a.li(R5, out as i64);
        a.sd(R2, R5, 0);
        a.halt();
        a.finish().unwrap()
    }

    fn collect(p: &Program, interval: u64) -> (Vec<BbvInterval>, u64) {
        collect_bbvs(p, interval, 1_000_000).expect("program halts")
    }

    #[test]
    fn intervals_tile_the_committed_stream_exactly() {
        let p = sum_loop(37);
        for interval in [1, 7, 16, 64, 1_000_000] {
            let (ivs, total) = collect(&p, interval);
            let covered: u64 = ivs.iter().map(|iv| iv.len).sum();
            assert_eq!(covered, total, "interval {interval} must tile the stream");
            // And each interval's own counts sum to its length, with
            // contiguous start offsets.
            let mut at = 0;
            for (i, iv) in ivs.iter().enumerate() {
                assert_eq!(iv.index, i as u64);
                assert_eq!(iv.start_inst, at);
                assert_eq!(iv.counts.iter().map(|&(_, n)| n).sum::<u64>(), iv.len);
                assert!(iv.counts.windows(2).all(|w| w[0].0 < w[1].0), "sorted ids");
                at += iv.len;
            }
        }
    }

    #[test]
    fn blocks_are_cut_at_control_flow() {
        let p = sum_loop(5);
        let (ivs, total) = collect(&p, 1_000_000);
        assert_eq!(ivs.len(), 1, "whole run fits one interval");
        let loop_pc = *p.labels.get("loop").unwrap() as u64;
        let body = ivs[0]
            .counts
            .iter()
            .find(|&&(id, _)| id == loop_pc)
            .expect("loop body is its own block");
        // The first iteration falls through from the setup block (one
        // block spanning setup + body, ending at the backward branch);
        // the remaining 4 iterations re-enter at the loop head.
        assert_eq!(body.1, 20);
        assert_eq!(ivs[0].len, total);
    }

    #[test]
    fn collection_is_deterministic() {
        let p = sum_loop(23);
        assert_eq!(collect(&p, 10), collect(&p, 10));
    }

    #[test]
    fn a_clone_resumes_mid_interval_to_identical_totals() {
        let p = sum_loop(29);
        // Reference: one uninterrupted pass.
        let (want, total) = collect(&p, 16);

        // Interrupted pass: stop mid-interval, clone the collector (the
        // checkpoint payload), and resume on a second interpreter from
        // the captured architectural state.
        let cut = total / 2;
        assert!(cut % 16 != 0, "cut must land mid-interval");
        let mut interp = Interp::new(&p);
        let mut collector = BbvCollector::new(16);
        while interp.icount < cut {
            let si = interp.step().unwrap();
            collector.observe(&si);
        }
        let (regs, mem, pc, icount) = (
            interp.regs.clone(),
            interp.mem.clone(),
            interp.pc,
            interp.icount,
        );
        let mut resumed = Interp::from_state(&p, regs, mem, pc, icount);
        let mut resumed_collector = collector.clone();
        resumed
            .run_with(u64::MAX, |si, _| resumed_collector.observe(si))
            .unwrap();
        assert_eq!(resumed_collector.observed(), total);
        assert_eq!(resumed_collector.finish(), want);
    }

    #[test]
    fn partial_tail_interval_is_emitted() {
        let p = sum_loop(3);
        let (ivs, total) = collect(&p, total_minus_one(&p));
        assert_eq!(ivs.len(), 2);
        assert_eq!(ivs[1].len, 1, "one trailing instruction");
        assert_eq!(ivs[0].len + ivs[1].len, total);
    }

    fn total_minus_one(p: &Program) -> u64 {
        let mut i = Interp::new(p);
        i.run(u64::MAX).unwrap();
        i.icount - 1
    }
}
