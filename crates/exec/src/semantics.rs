//! Instruction semantics — the single source of truth.
//!
//! [`exec_inst`] defines what every opcode *does*. The in-order interpreter
//! ([`crate::interp`]), the SPEAR compiler's profiler, and the cycle-level
//! core's dispatch-time execution all call this one function, which is what
//! makes the differential tests between the golden model and the
//! out-of-order core meaningful: there is exactly one implementation of the
//! ISA to agree with.
//!
//! Memory is abstracted behind [`DataMem`] so callers can interpose store
//! overlays (the cycle core's p-thread isolation) or profiling hooks without
//! duplicating semantics.

use crate::regfile::RegFile;
use spear_isa::op::Opcode;
use spear_isa::Inst;
use std::fmt;

/// Raw data-memory access. `load` returns zero-extended bits of `width`
/// bytes; sign extension is applied by the semantics according to the
/// opcode. `width` is 1, 2, 4 or 8.
pub trait DataMem {
    /// Read `width` bytes at `addr`, zero-extended into a `u64`.
    fn load(&mut self, addr: u64, width: usize) -> Result<u64, MemFault>;
    /// Write the low `width` bytes of `value` at `addr`.
    fn store(&mut self, addr: u64, width: usize, value: u64) -> Result<(), MemFault>;
}

/// An out-of-bounds data access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemFault {
    /// Faulting byte address.
    pub addr: u64,
    /// Access width in bytes.
    pub width: usize,
    /// True for stores.
    pub is_store: bool,
}

impl fmt::Display for MemFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} fault: {} bytes at {:#x}",
            if self.is_store { "store" } else { "load" },
            self.width,
            self.addr
        )
    }
}

impl std::error::Error for MemFault {}

/// What one dynamic instruction did.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Outcome {
    /// PC of the next instruction to execute.
    pub next_pc: u32,
    /// Effective address, for loads and stores.
    pub eff_addr: Option<u64>,
    /// For conditional branches: whether the branch was taken.
    pub taken: Option<bool>,
    /// True if this instruction was `halt`.
    pub halted: bool,
}

/// Execute one instruction at `pc` against `regs` and `mem`.
///
/// Returns the [`Outcome`] (control-flow and memory effects); register
/// effects are applied to `regs` directly. On a [`MemFault`] no register or
/// memory state is modified.
pub fn exec_inst(
    inst: &Inst,
    pc: u32,
    regs: &mut RegFile,
    mem: &mut impl DataMem,
) -> Result<Outcome, MemFault> {
    use Opcode::*;
    let fall = pc + 1;
    let mut out = Outcome {
        next_pc: fall,
        eff_addr: None,
        taken: None,
        halted: false,
    };

    // Integer operand helpers.
    let x = |r| regs.read_i64(r);
    let xu = |r| regs.read_u64(r);
    let d = |r| regs.read_f64(r);

    match inst.op {
        // ---- integer register-register -------------------------------
        Add => regs.write_i64(inst.rd, x(inst.rs1).wrapping_add(x(inst.rs2))),
        Sub => regs.write_i64(inst.rd, x(inst.rs1).wrapping_sub(x(inst.rs2))),
        Mul => regs.write_i64(inst.rd, x(inst.rs1).wrapping_mul(x(inst.rs2))),
        Div => {
            // RISC-V semantics: x/0 = -1, MIN/-1 = MIN; never traps.
            let (a, b) = (x(inst.rs1), x(inst.rs2));
            let q = if b == 0 { -1 } else { a.wrapping_div(b) };
            regs.write_i64(inst.rd, q);
        }
        Rem => {
            let (a, b) = (x(inst.rs1), x(inst.rs2));
            let r = if b == 0 { a } else { a.wrapping_rem(b) };
            regs.write_i64(inst.rd, r);
        }
        And => regs.write_i64(inst.rd, x(inst.rs1) & x(inst.rs2)),
        Or => regs.write_i64(inst.rd, x(inst.rs1) | x(inst.rs2)),
        Xor => regs.write_i64(inst.rd, x(inst.rs1) ^ x(inst.rs2)),
        Sll => regs.write_u64(inst.rd, xu(inst.rs1) << (xu(inst.rs2) & 63)),
        Srl => regs.write_u64(inst.rd, xu(inst.rs1) >> (xu(inst.rs2) & 63)),
        Sra => regs.write_i64(inst.rd, x(inst.rs1) >> (xu(inst.rs2) & 63)),
        Slt => regs.write_i64(inst.rd, (x(inst.rs1) < x(inst.rs2)) as i64),
        Sltu => regs.write_i64(inst.rd, (xu(inst.rs1) < xu(inst.rs2)) as i64),

        // ---- integer register-immediate ------------------------------
        Addi => regs.write_i64(inst.rd, x(inst.rs1).wrapping_add(inst.imm)),
        Andi => regs.write_i64(inst.rd, x(inst.rs1) & inst.imm),
        Ori => regs.write_i64(inst.rd, x(inst.rs1) | inst.imm),
        Xori => regs.write_i64(inst.rd, x(inst.rs1) ^ inst.imm),
        Slli => regs.write_u64(inst.rd, xu(inst.rs1) << (inst.imm as u64 & 63)),
        Srli => regs.write_u64(inst.rd, xu(inst.rs1) >> (inst.imm as u64 & 63)),
        Srai => regs.write_i64(inst.rd, x(inst.rs1) >> (inst.imm as u64 & 63)),
        Slti => regs.write_i64(inst.rd, (x(inst.rs1) < inst.imm) as i64),
        Muli => regs.write_i64(inst.rd, x(inst.rs1).wrapping_mul(inst.imm)),
        Li => regs.write_i64(inst.rd, inst.imm),

        // ---- loads ----------------------------------------------------
        Lb | Lbu | Lh | Lhu | Lw | Lwu | Ld | Fld => {
            let addr = (x(inst.rs1)).wrapping_add(inst.imm) as u64;
            let width = inst.op.mem_width();
            let raw = mem.load(addr, width)?;
            out.eff_addr = Some(addr);
            match inst.op {
                Lb => regs.write_i64(inst.rd, raw as u8 as i8 as i64),
                Lh => regs.write_i64(inst.rd, raw as u16 as i16 as i64),
                Lw => regs.write_i64(inst.rd, raw as u32 as i32 as i64),
                Lbu | Lhu | Lwu | Ld => regs.write_u64(inst.rd, raw),
                Fld => regs.write_f64(inst.rd, f64::from_bits(raw)),
                _ => unreachable!(),
            }
        }

        // ---- stores ---------------------------------------------------
        Sb | Sh | Sw | Sd | Fsd => {
            let addr = (x(inst.rs1)).wrapping_add(inst.imm) as u64;
            let width = inst.op.mem_width();
            let bits = if inst.op == Fsd {
                d(inst.rs2).to_bits()
            } else {
                xu(inst.rs2)
            };
            mem.store(addr, width, bits)?;
            out.eff_addr = Some(addr);
        }

        // ---- floating point -------------------------------------------
        Fadd => regs.write_f64(inst.rd, d(inst.rs1) + d(inst.rs2)),
        Fsub => regs.write_f64(inst.rd, d(inst.rs1) - d(inst.rs2)),
        Fmul => regs.write_f64(inst.rd, d(inst.rs1) * d(inst.rs2)),
        Fdiv => regs.write_f64(inst.rd, d(inst.rs1) / d(inst.rs2)),
        Fsqrt => regs.write_f64(inst.rd, d(inst.rs1).sqrt()),
        Fneg => regs.write_f64(inst.rd, -d(inst.rs1)),
        Fabs => regs.write_f64(inst.rd, d(inst.rs1).abs()),
        Fmin => regs.write_f64(inst.rd, d(inst.rs1).min(d(inst.rs2))),
        Fmax => regs.write_f64(inst.rd, d(inst.rs1).max(d(inst.rs2))),
        Fmov => regs.write_f64(inst.rd, d(inst.rs1)),
        Feq => regs.write_i64(inst.rd, (d(inst.rs1) == d(inst.rs2)) as i64),
        Flt => regs.write_i64(inst.rd, (d(inst.rs1) < d(inst.rs2)) as i64),
        Fle => regs.write_i64(inst.rd, (d(inst.rs1) <= d(inst.rs2)) as i64),
        Fcvtdl => regs.write_f64(inst.rd, x(inst.rs1) as f64),
        Fcvtld => regs.write_i64(inst.rd, d(inst.rs1) as i64),

        // ---- control --------------------------------------------------
        Beq | Bne | Blt | Bge | Bltu | Bgeu => {
            let t = match inst.op {
                Beq => x(inst.rs1) == x(inst.rs2),
                Bne => x(inst.rs1) != x(inst.rs2),
                Blt => x(inst.rs1) < x(inst.rs2),
                Bge => x(inst.rs1) >= x(inst.rs2),
                Bltu => xu(inst.rs1) < xu(inst.rs2),
                Bgeu => xu(inst.rs1) >= xu(inst.rs2),
                _ => unreachable!(),
            };
            out.taken = Some(t);
            if t {
                out.next_pc = inst.imm as u32;
            }
        }
        J => out.next_pc = inst.imm as u32,
        Jal => {
            regs.write_i64(inst.rd, fall as i64);
            out.next_pc = inst.imm as u32;
        }
        Jr => out.next_pc = x(inst.rs1) as u32,
        Jalr => {
            let target = x(inst.rs1) as u32;
            regs.write_i64(inst.rd, fall as i64);
            out.next_pc = target;
        }

        // ---- misc -----------------------------------------------------
        Nop => {}
        Halt => {
            out.halted = true;
            out.next_pc = pc;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::Memory;
    use spear_isa::reg::*;

    fn setup() -> (RegFile, Memory) {
        (RegFile::new(), Memory::zeroed(256))
    }

    fn run(inst: Inst, regs: &mut RegFile, mem: &mut Memory) -> Outcome {
        exec_inst(&inst, 10, regs, mem).unwrap()
    }

    #[test]
    fn div_by_zero_is_defined() {
        let (mut r, mut m) = setup();
        r.write_i64(R1, 42);
        run(Inst::new(Opcode::Div, R3, R1, R2, 0), &mut r, &mut m);
        assert_eq!(r.read_i64(R3), -1);
        run(Inst::new(Opcode::Rem, R3, R1, R2, 0), &mut r, &mut m);
        assert_eq!(r.read_i64(R3), 42);
    }

    #[test]
    fn signed_load_extends() {
        let (mut r, mut m) = setup();
        m.store(0, 1, 0xff).unwrap();
        run(Inst::new(Opcode::Lb, R2, R0, R0, 0), &mut r, &mut m);
        assert_eq!(r.read_i64(R2), -1);
        run(Inst::new(Opcode::Lbu, R2, R0, R0, 0), &mut r, &mut m);
        assert_eq!(r.read_i64(R2), 255);
    }

    #[test]
    fn store_then_load_round_trips_f64() {
        let (mut r, mut m) = setup();
        r.write_f64(F1, 2.5);
        r.write_i64(R1, 64);
        run(Inst::new(Opcode::Fsd, R0, R1, F1, 8), &mut r, &mut m);
        run(Inst::new(Opcode::Fld, F2, R1, R0, 8), &mut r, &mut m);
        assert_eq!(r.read_f64(F2), 2.5);
    }

    #[test]
    fn taken_and_untaken_branches() {
        let (mut r, mut m) = setup();
        r.write_i64(R1, 1);
        let out = run(Inst::new(Opcode::Beq, R0, R1, R0, 99), &mut r, &mut m);
        assert_eq!(out.taken, Some(false));
        assert_eq!(out.next_pc, 11);
        let out = run(Inst::new(Opcode::Bne, R0, R1, R0, 99), &mut r, &mut m);
        assert_eq!(out.taken, Some(true));
        assert_eq!(out.next_pc, 99);
    }

    #[test]
    fn jal_links_return_address() {
        let (mut r, mut m) = setup();
        let out = run(Inst::new(Opcode::Jal, R31, R0, R0, 50), &mut r, &mut m);
        assert_eq!(r.read_i64(R31), 11);
        assert_eq!(out.next_pc, 50);
        let out = run(Inst::new(Opcode::Jr, R0, R31, R0, 0), &mut r, &mut m);
        assert_eq!(out.next_pc, 11);
    }

    #[test]
    fn halt_pins_pc() {
        let (mut r, mut m) = setup();
        let out = run(Inst::halt(), &mut r, &mut m);
        assert!(out.halted);
        assert_eq!(out.next_pc, 10);
    }

    #[test]
    fn writes_to_r0_ignored() {
        let (mut r, mut m) = setup();
        run(Inst::new(Opcode::Li, R0, R0, R0, 77), &mut r, &mut m);
        assert_eq!(r.read_i64(R0), 0);
    }

    #[test]
    fn fault_leaves_state_untouched() {
        let (mut r, mut m) = setup();
        r.write_i64(R1, 1_000_000);
        let err = exec_inst(&Inst::new(Opcode::Ld, R2, R1, R0, 0), 0, &mut r, &mut m).unwrap_err();
        assert!(!err.is_store);
        assert_eq!(r.read_i64(R2), 0, "destination untouched on fault");
    }

    #[test]
    fn shift_amounts_mask_to_six_bits() {
        let (mut r, mut m) = setup();
        r.write_i64(R1, 1);
        r.write_i64(R2, 65); // 65 & 63 == 1
        run(Inst::new(Opcode::Sll, R3, R1, R2, 0), &mut r, &mut m);
        assert_eq!(r.read_i64(R3), 2);
    }

    #[test]
    fn fcvt_round_trips_small_ints() {
        let (mut r, mut m) = setup();
        r.write_i64(R1, -7);
        run(Inst::new(Opcode::Fcvtdl, F1, R1, R0, 0), &mut r, &mut m);
        assert_eq!(r.read_f64(F1), -7.0);
        run(Inst::new(Opcode::Fcvtld, R2, F1, R0, 0), &mut r, &mut m);
        assert_eq!(r.read_i64(R2), -7);
    }
}
