//! The in-order functional interpreter — the golden model.
//!
//! Executes a [`Program`] one instruction at a time with architectural
//! semantics only (no timing). Uses:
//!
//! - workload validation (did the kernel compute the right answer),
//! - the SPEAR compiler's profiler (which wraps [`Interp::step`] and watches
//!   [`StepInfo`]),
//! - differential testing: the cycle-level core's committed state must match
//!   this interpreter's final state instruction-for-instruction.

use crate::memory::Memory;
use crate::regfile::RegFile;
use crate::semantics::{exec_inst, MemFault, Outcome};
use spear_isa::{Inst, Program};
use std::fmt;

/// Everything observable about one executed instruction.
#[derive(Debug, Clone, Copy)]
pub struct StepInfo {
    /// PC the instruction executed at.
    pub pc: u32,
    /// The instruction itself.
    pub inst: Inst,
    /// Control/memory outcome.
    pub outcome: Outcome,
}

/// Why execution stopped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stop {
    /// `halt` retired.
    Halted,
    /// The instruction budget was exhausted.
    Budget,
}

/// Execution errors (always programming errors in the workload).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// Data access out of bounds.
    Mem { pc: u32, fault: MemFault },
    /// PC ran outside the program text.
    PcOutOfRange(u32),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Mem { pc, fault } => write!(f, "at pc {pc}: {fault}"),
            ExecError::PcOutOfRange(pc) => write!(f, "pc {pc} out of program text"),
        }
    }
}

impl std::error::Error for ExecError {}

/// The interpreter state.
pub struct Interp<'p> {
    /// Program under execution.
    pub program: &'p Program,
    /// Architectural registers.
    pub regs: RegFile,
    /// Data memory.
    pub mem: Memory,
    /// Next PC.
    pub pc: u32,
    /// Instructions retired so far.
    pub icount: u64,
    /// Set once `halt` retires.
    pub halted: bool,
}

impl<'p> Interp<'p> {
    /// Fresh state at the program entry with its initial data image.
    pub fn new(program: &'p Program) -> Interp<'p> {
        Interp {
            program,
            regs: RegFile::new(),
            mem: Memory::from_image(&program.data),
            pc: program.entry,
            icount: 0,
            halted: false,
        }
    }

    /// Resume from a previously captured architectural state — the
    /// checkpoint-restore entry point. `icount` is carried over so
    /// instruction budgets and interval boundaries keep their absolute
    /// meaning across the save/restore boundary.
    pub fn from_state(
        program: &'p Program,
        regs: RegFile,
        mem: Memory,
        pc: u32,
        icount: u64,
    ) -> Interp<'p> {
        Interp {
            program,
            regs,
            mem,
            pc,
            icount,
            halted: false,
        }
    }

    /// Execute one instruction. Returns what happened; errors are workload
    /// bugs (out-of-bounds access, runaway PC).
    pub fn step(&mut self) -> Result<StepInfo, ExecError> {
        debug_assert!(!self.halted, "stepping a halted interpreter");
        let pc = self.pc;
        let inst = *self.program.fetch(pc).ok_or(ExecError::PcOutOfRange(pc))?;
        let outcome = exec_inst(&inst, pc, &mut self.regs, &mut self.mem)
            .map_err(|fault| ExecError::Mem { pc, fault })?;
        self.pc = outcome.next_pc;
        self.icount += 1;
        self.halted = outcome.halted;
        Ok(StepInfo { pc, inst, outcome })
    }

    /// Run to `halt` or until `max_insts` retire.
    pub fn run(&mut self, max_insts: u64) -> Result<Stop, ExecError> {
        let budget_end = self.icount.saturating_add(max_insts);
        while !self.halted {
            if self.icount >= budget_end {
                return Ok(Stop::Budget);
            }
            self.step()?;
        }
        Ok(Stop::Halted)
    }

    /// Run with a per-instruction observer (the profiler's entry point).
    pub fn run_with(
        &mut self,
        max_insts: u64,
        mut hook: impl FnMut(&StepInfo, &RegFile),
    ) -> Result<Stop, ExecError> {
        let budget_end = self.icount.saturating_add(max_insts);
        while !self.halted {
            if self.icount >= budget_end {
                return Ok(Stop::Budget);
            }
            let si = self.step()?;
            hook(&si, &self.regs);
        }
        Ok(Stop::Halted)
    }

    /// Run until the next time execution reaches `pc` (after at least one
    /// step), `halt`, or the budget. Returns true if `pc` was reached —
    /// a breakpoint for workload debugging.
    pub fn run_until_pc(&mut self, pc: u32, max_insts: u64) -> Result<bool, ExecError> {
        let budget_end = self.icount + max_insts;
        while !self.halted && self.icount < budget_end {
            self.step()?;
            if self.pc == pc {
                return Ok(true);
            }
        }
        Ok(false)
    }

    /// Run until any instruction writes inside `[addr, addr+len)`, `halt`,
    /// or the budget. Returns the PC of the writing instruction — a
    /// memory watchpoint for workload debugging.
    pub fn run_until_write(
        &mut self,
        addr: u64,
        len: u64,
        max_insts: u64,
    ) -> Result<Option<u32>, ExecError> {
        let budget_end = self.icount + max_insts;
        while !self.halted && self.icount < budget_end {
            let si = self.step()?;
            if si.inst.op.is_store() {
                if let Some(ea) = si.outcome.eff_addr {
                    let w = si.inst.op.mem_width() as u64;
                    if ea < addr + len && addr < ea + w {
                        return Ok(Some(si.pc));
                    }
                }
            }
        }
        Ok(None)
    }

    /// Combined architectural checksum (registers + memory), for
    /// differential tests against the cycle-level core.
    pub fn state_checksum(&self) -> u64 {
        self.regs
            .checksum()
            .rotate_left(17)
            .wrapping_add(self.mem.checksum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spear_isa::asm::Asm;
    use spear_isa::reg::*;

    fn sum_loop(n: u64) -> Program {
        let mut a = Asm::new();
        let xs: Vec<u64> = (1..=n).collect();
        let base = a.alloc_u64("xs", &xs);
        a.li(R1, base as i64);
        a.li(R2, 0);
        a.li(R3, n as i64);
        a.label("loop");
        a.ld(R4, R1, 0);
        a.add(R2, R2, R4);
        a.addi(R1, R1, 8);
        a.addi(R3, R3, -1);
        a.bne(R3, R0, "loop");
        let out = a.reserve("out", 8);
        a.li(R5, out as i64);
        a.sd(R2, R5, 0);
        a.halt();
        a.finish().unwrap()
    }

    #[test]
    fn computes_sum() {
        let p = sum_loop(10);
        let mut i = Interp::new(&p);
        assert_eq!(i.run(1_000_000).unwrap(), Stop::Halted);
        let out = p.data_addr("out").unwrap();
        assert_eq!(i.mem.read_u64(out), 55);
        assert_eq!(i.regs.read_i64(R2), 55);
    }

    #[test]
    fn budget_stops_runaway() {
        let mut a = Asm::new();
        a.label("spin");
        a.j("spin");
        a.halt();
        let p = a.finish().unwrap();
        let mut i = Interp::new(&p);
        assert_eq!(i.run(100).unwrap(), Stop::Budget);
        assert_eq!(i.icount, 100);
    }

    #[test]
    fn icount_matches_dynamic_length() {
        let p = sum_loop(7);
        let mut i = Interp::new(&p);
        i.run(u64::MAX).unwrap();
        // 3 setup + 7*5 loop + 2 store setup + 1 halt
        assert_eq!(i.icount, 3 + 35 + 2 + 1);
    }

    #[test]
    fn hook_sees_every_instruction() {
        let p = sum_loop(3);
        let mut i = Interp::new(&p);
        let mut n = 0u64;
        let mut loads = 0u64;
        i.run_with(u64::MAX, |si, _| {
            n += 1;
            if si.inst.op.is_load() {
                loads += 1;
                assert!(si.outcome.eff_addr.is_some());
            }
        })
        .unwrap();
        assert_eq!(n, i.icount);
        assert_eq!(loads, 3);
    }

    #[test]
    fn checksum_deterministic() {
        let p = sum_loop(5);
        let mut i1 = Interp::new(&p);
        let mut i2 = Interp::new(&p);
        i1.run(u64::MAX).unwrap();
        i2.run(u64::MAX).unwrap();
        assert_eq!(i1.state_checksum(), i2.state_checksum());
    }

    #[test]
    fn run_until_pc_breaks_at_loop_head() {
        let p = sum_loop(10);
        let loop_pc = *p.labels.get("loop").unwrap();
        let mut i = Interp::new(&p);
        assert!(i.run_until_pc(loop_pc, 1_000).unwrap());
        assert_eq!(i.pc, loop_pc);
        // Second hit: one full iteration later.
        let at = i.icount;
        assert!(i.run_until_pc(loop_pc, 1_000).unwrap());
        assert_eq!(i.icount - at, 5, "one loop iteration");
    }

    #[test]
    fn run_until_write_watches_result() {
        let p = sum_loop(5);
        let out = p.data_addr("out").unwrap();
        let mut i = Interp::new(&p);
        let pc = i.run_until_write(out, 8, 1_000_000).unwrap();
        assert!(pc.is_some(), "the final store must trip the watchpoint");
        assert_eq!(i.mem.read_u64(out), 15);
    }

    #[test]
    fn watchpoint_misses_other_addresses() {
        let p = sum_loop(5);
        let mut i = Interp::new(&p);
        // Watch an address nothing writes.
        let pc = i.run_until_write(1, 1, 1_000_000).unwrap();
        assert_eq!(pc, None);
        assert!(i.halted);
    }

    #[test]
    fn mem_fault_reports_pc() {
        let mut a = Asm::new();
        a.li(R1, 1 << 40);
        a.ld(R2, R1, 0);
        a.halt();
        let p = a.finish().unwrap();
        let mut i = Interp::new(&p);
        match i.run(100) {
            Err(ExecError::Mem { pc: 1, .. }) => {}
            other => panic!("expected mem fault at pc 1, got {other:?}"),
        }
    }
}
