//! # spear-exec — functional execution of SPEAR programs
//!
//! The architectural golden model:
//!
//! - [`semantics::exec_inst`] — the single implementation of instruction
//!   semantics, shared with the cycle-level core,
//! - [`regfile::RegFile`] — the unified 64-entry register file,
//! - [`memory::Memory`] — flat bounds-checked data memory,
//! - [`interp::Interp`] — the in-order interpreter used for workload
//!   validation, profiling, and differential testing,
//! - [`bbv::BbvCollector`] — basic-block-vector collection over the
//!   committed stream, the input to SimPoint phase clustering.

pub mod bbv;
pub mod interp;
pub mod memory;
pub mod regfile;
pub mod semantics;

pub use bbv::{collect_bbvs, BbvCollector, BbvInterval, DEFAULT_BBV_INTERVAL};
pub use interp::{ExecError, Interp, StepInfo, Stop};
pub use memory::Memory;
pub use regfile::RegFile;
pub use semantics::{exec_inst, DataMem, MemFault, Outcome};
