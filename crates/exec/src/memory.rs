//! Flat data memory.

use crate::semantics::{DataMem, MemFault};
use spear_isa::DataImage;

/// Byte-addressable flat data memory.
///
/// Workload data images are modest (tens of MiB at most), so memory is one
/// contiguous `Vec<u8>` — the fastest structure for a simulator's inner
/// loop, and bounds checks double as fault detection.
#[derive(Clone, PartialEq)]
pub struct Memory {
    bytes: Vec<u8>,
}

impl std::fmt::Debug for Memory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Memory({} bytes)", self.bytes.len())
    }
}

impl Memory {
    /// `size` zero bytes.
    pub fn zeroed(size: usize) -> Memory {
        Memory {
            bytes: vec![0; size],
        }
    }

    /// Materialize a program's initial data image.
    pub fn from_image(img: &DataImage) -> Memory {
        Memory {
            bytes: img.to_bytes(),
        }
    }

    /// Size in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// True if zero-sized.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    #[inline]
    fn range(&self, addr: u64, width: usize, is_store: bool) -> Result<usize, MemFault> {
        let a = addr as usize;
        if addr > usize::MAX as u64
            || a.checked_add(width)
                .is_none_or(|end| end > self.bytes.len())
        {
            Err(MemFault {
                addr,
                width,
                is_store,
            })
        } else {
            Ok(a)
        }
    }

    /// Non-mutating bounds-checked read (used by speculative p-thread
    /// memory views, which must not disturb anything).
    pub fn peek(&self, addr: u64, width: usize) -> Result<u64, MemFault> {
        let a = self.range(addr, width, false)?;
        let mut buf = [0u8; 8];
        buf[..width].copy_from_slice(&self.bytes[a..a + width]);
        Ok(u64::from_le_bytes(buf))
    }

    /// Convenience typed readers for tests and result checking.
    pub fn read_u64(&self, addr: u64) -> u64 {
        let a = addr as usize;
        u64::from_le_bytes(self.bytes[a..a + 8].try_into().unwrap())
    }

    /// Read an `f64` at `addr`.
    pub fn read_f64(&self, addr: u64) -> f64 {
        f64::from_bits(self.read_u64(addr))
    }

    /// Write a `u64` at `addr` (bounds-checked by slice indexing).
    pub fn write_u64(&mut self, addr: u64, v: u64) {
        let a = addr as usize;
        self.bytes[a..a + 8].copy_from_slice(&v.to_le_bytes());
    }

    /// The full byte image (for checkpoint serialization).
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Rebuild a memory from a raw byte image captured by
    /// [`Memory::as_bytes`].
    pub fn from_bytes(bytes: Vec<u8>) -> Memory {
        Memory { bytes }
    }

    /// FNV-1a hash over all bytes, for differential tests.
    pub fn checksum(&self) -> u64 {
        let mut h = 0xcbf29ce484222325u64;
        // Hash 8 bytes at a time for speed; the tail is padded with zeros,
        // which is fine because length is part of the initial state.
        let mut chunks = self.bytes.chunks_exact(8);
        for c in &mut chunks {
            h ^= u64::from_le_bytes(c.try_into().unwrap());
            h = h.wrapping_mul(0x100000001b3);
        }
        let mut tail = [0u8; 8];
        let rem = chunks.remainder();
        tail[..rem.len()].copy_from_slice(rem);
        if !rem.is_empty() {
            h ^= u64::from_le_bytes(tail);
            h = h.wrapping_mul(0x100000001b3);
        }
        h
    }
}

impl DataMem for Memory {
    #[inline]
    fn load(&mut self, addr: u64, width: usize) -> Result<u64, MemFault> {
        let a = self.range(addr, width, false)?;
        let mut buf = [0u8; 8];
        buf[..width].copy_from_slice(&self.bytes[a..a + width]);
        Ok(u64::from_le_bytes(buf))
    }

    #[inline]
    fn store(&mut self, addr: u64, width: usize, value: u64) -> Result<(), MemFault> {
        let a = self.range(addr, width, true)?;
        self.bytes[a..a + width].copy_from_slice(&value.to_le_bytes()[..width]);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_store_round_trip_all_widths() {
        let mut m = Memory::zeroed(64);
        for width in [1usize, 2, 4, 8] {
            let v = 0xDEAD_BEEF_CAFE_F00Du64 & (u64::MAX >> (64 - width * 8));
            m.store(16, width, v).unwrap();
            assert_eq!(m.load(16, width).unwrap(), v, "width {width}");
        }
    }

    #[test]
    fn oob_access_faults() {
        let mut m = Memory::zeroed(16);
        assert!(m.load(9, 8).is_err());
        assert!(m.load(16, 1).is_err());
        assert!(m.store(u64::MAX, 8, 0).is_err());
        assert!(m.load(8, 8).is_ok());
    }

    #[test]
    fn from_image_zero_extends() {
        let img = DataImage {
            init: vec![0xAA],
            size: 32,
        };
        let mut m = Memory::from_image(&img);
        assert_eq!(m.len(), 32);
        assert_eq!(m.load(0, 1).unwrap(), 0xAA);
        assert_eq!(m.load(8, 8).unwrap(), 0);
    }

    #[test]
    fn checksum_sensitive_to_every_byte() {
        let mut m = Memory::zeroed(17);
        let c0 = m.checksum();
        m.store(16, 1, 1).unwrap(); // the chunk tail
        assert_ne!(m.checksum(), c0);
    }

    #[test]
    fn unaligned_access_is_allowed() {
        let mut m = Memory::zeroed(32);
        m.store(3, 8, 0x0102030405060708).unwrap();
        assert_eq!(m.load(3, 8).unwrap(), 0x0102030405060708);
    }
}
