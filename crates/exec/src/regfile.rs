//! The unified architectural register file.

use spear_isa::reg::{Reg, NUM_REGS};

/// 64 architectural registers as raw bits.
///
/// Integer registers hold two's-complement `i64`; FP registers hold `f64`
/// bit patterns. Keeping one `u64` array makes copying live-ins at p-thread
/// trigger time (and whole-file snapshots in tests) trivial.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RegFile {
    bits: [u64; NUM_REGS],
}

impl Default for RegFile {
    fn default() -> Self {
        Self::new()
    }
}

impl RegFile {
    /// All registers zero.
    pub fn new() -> RegFile {
        RegFile {
            bits: [0; NUM_REGS],
        }
    }

    /// Raw bits of `r` (`r0` reads zero).
    #[inline]
    pub fn read_u64(&self, r: Reg) -> u64 {
        if r.is_zero() {
            0
        } else {
            self.bits[r.index()]
        }
    }

    /// Signed integer view.
    #[inline]
    pub fn read_i64(&self, r: Reg) -> i64 {
        self.read_u64(r) as i64
    }

    /// Floating-point view (bit cast).
    #[inline]
    pub fn read_f64(&self, r: Reg) -> f64 {
        f64::from_bits(self.read_u64(r))
    }

    /// Write raw bits (writes to `r0` are discarded).
    #[inline]
    pub fn write_u64(&mut self, r: Reg, v: u64) {
        if !r.is_zero() {
            self.bits[r.index()] = v;
        }
    }

    /// Write a signed integer.
    #[inline]
    pub fn write_i64(&mut self, r: Reg, v: i64) {
        self.write_u64(r, v as u64);
    }

    /// Write a float (bit cast).
    #[inline]
    pub fn write_f64(&mut self, r: Reg, v: f64) {
        self.write_u64(r, v.to_bits());
    }

    /// Copy the named registers from `src` (the p-thread live-in copy).
    pub fn copy_from(&mut self, src: &RegFile, regs: impl IntoIterator<Item = Reg>) {
        for r in regs {
            self.write_u64(r, src.read_u64(r));
        }
    }

    /// All 64 registers as raw bits, index order (for checkpointing).
    pub fn to_bits(&self) -> Vec<u64> {
        self.bits.to_vec()
    }

    /// Rebuild from raw bits captured by [`RegFile::to_bits`]. `r0` is
    /// forced to zero, preserving the hardwired-zero invariant no matter
    /// what the serialized image claims.
    pub fn from_bits(bits: &[u64]) -> Result<RegFile, String> {
        if bits.len() != NUM_REGS {
            return Err(format!(
                "register image has {} entries, expected {NUM_REGS}",
                bits.len()
            ));
        }
        let mut rf = RegFile::new();
        rf.bits.copy_from_slice(bits);
        rf.bits[0] = 0;
        Ok(rf)
    }

    /// FNV-1a hash of the whole file, for differential tests.
    pub fn checksum(&self) -> u64 {
        let mut h = 0xcbf29ce484222325u64;
        for &b in &self.bits {
            h ^= b;
            h = h.wrapping_mul(0x100000001b3);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spear_isa::reg::*;

    #[test]
    fn r0_reads_zero_and_ignores_writes() {
        let mut rf = RegFile::new();
        rf.write_u64(R0, 42);
        assert_eq!(rf.read_u64(R0), 0);
    }

    #[test]
    fn f64_round_trip() {
        let mut rf = RegFile::new();
        rf.write_f64(F7, -0.125);
        assert_eq!(rf.read_f64(F7), -0.125);
    }

    #[test]
    fn int_and_fp_are_separate_storage() {
        let mut rf = RegFile::new();
        rf.write_i64(R5, 99);
        rf.write_f64(F5, 1.0);
        assert_eq!(rf.read_i64(R5), 99);
        assert_eq!(rf.read_f64(F5), 1.0);
    }

    #[test]
    fn copy_from_copies_only_named() {
        let mut a = RegFile::new();
        let mut b = RegFile::new();
        a.write_i64(R1, 11);
        a.write_i64(R2, 22);
        b.copy_from(&a, [R1]);
        assert_eq!(b.read_i64(R1), 11);
        assert_eq!(b.read_i64(R2), 0);
    }

    #[test]
    fn checksum_changes_with_state() {
        let mut rf = RegFile::new();
        let c0 = rf.checksum();
        rf.write_i64(R9, 1);
        assert_ne!(rf.checksum(), c0);
    }
}
