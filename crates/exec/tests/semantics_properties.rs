//! Property tests pinning the ISA semantics to Rust's own integer/float
//! operations — the golden model's golden model.

use proptest::prelude::*;
use spear_exec::{exec_inst, Memory, RegFile};
use spear_isa::reg::*;
use spear_isa::{Inst, Opcode};

fn exec_rrr(op: Opcode, a: i64, b: i64) -> i64 {
    let mut regs = RegFile::new();
    let mut mem = Memory::zeroed(64);
    regs.write_i64(R1, a);
    regs.write_i64(R2, b);
    exec_inst(&Inst::new(op, R3, R1, R2, 0), 0, &mut regs, &mut mem).unwrap();
    regs.read_i64(R3)
}

fn exec_fp(op: Opcode, a: f64, b: f64) -> f64 {
    let mut regs = RegFile::new();
    let mut mem = Memory::zeroed(64);
    regs.write_f64(F1, a);
    regs.write_f64(F2, b);
    exec_inst(&Inst::new(op, F3, F1, F2, 0), 0, &mut regs, &mut mem).unwrap();
    regs.read_f64(F3)
}

proptest! {
    #[test]
    fn integer_ops_match_rust(a in any::<i64>(), b in any::<i64>()) {
        prop_assert_eq!(exec_rrr(Opcode::Add, a, b), a.wrapping_add(b));
        prop_assert_eq!(exec_rrr(Opcode::Sub, a, b), a.wrapping_sub(b));
        prop_assert_eq!(exec_rrr(Opcode::Mul, a, b), a.wrapping_mul(b));
        prop_assert_eq!(exec_rrr(Opcode::And, a, b), a & b);
        prop_assert_eq!(exec_rrr(Opcode::Or, a, b), a | b);
        prop_assert_eq!(exec_rrr(Opcode::Xor, a, b), a ^ b);
        prop_assert_eq!(exec_rrr(Opcode::Slt, a, b), (a < b) as i64);
        prop_assert_eq!(
            exec_rrr(Opcode::Sltu, a, b),
            ((a as u64) < (b as u64)) as i64
        );
    }

    #[test]
    fn division_never_traps(a in any::<i64>(), b in any::<i64>()) {
        let q = exec_rrr(Opcode::Div, a, b);
        let r = exec_rrr(Opcode::Rem, a, b);
        if b == 0 {
            prop_assert_eq!(q, -1);
            prop_assert_eq!(r, a);
        } else {
            prop_assert_eq!(q, a.wrapping_div(b));
            prop_assert_eq!(r, a.wrapping_rem(b));
            if a != i64::MIN || b != -1 {
                prop_assert_eq!(q.wrapping_mul(b).wrapping_add(r), a, "a = q*b + r");
            }
        }
    }

    #[test]
    fn shifts_mask_amount(a in any::<i64>(), s in any::<i64>()) {
        let sh = (s as u64 & 63) as u32;
        prop_assert_eq!(exec_rrr(Opcode::Sll, a, s), ((a as u64) << sh) as i64);
        prop_assert_eq!(exec_rrr(Opcode::Srl, a, s), ((a as u64) >> sh) as i64);
        prop_assert_eq!(exec_rrr(Opcode::Sra, a, s), a >> sh);
    }

    #[test]
    fn fp_ops_match_rust(a in any::<f64>(), b in any::<f64>()) {
        let eq = |x: f64, y: f64| x.to_bits() == y.to_bits() || (x.is_nan() && y.is_nan());
        prop_assert!(eq(exec_fp(Opcode::Fadd, a, b), a + b));
        prop_assert!(eq(exec_fp(Opcode::Fsub, a, b), a - b));
        prop_assert!(eq(exec_fp(Opcode::Fmul, a, b), a * b));
        prop_assert!(eq(exec_fp(Opcode::Fdiv, a, b), a / b));
        prop_assert!(eq(exec_fp(Opcode::Fmin, a, b), a.min(b)));
        prop_assert!(eq(exec_fp(Opcode::Fmax, a, b), a.max(b)));
    }

    #[test]
    fn store_load_round_trip_through_semantics(
        v in any::<u64>(),
        addr in 0u64..56,
    ) {
        let mut regs = RegFile::new();
        let mut mem = Memory::zeroed(64);
        regs.write_i64(R1, addr as i64);
        regs.write_u64(R2, v);
        exec_inst(&Inst::new(Opcode::Sd, R0, R1, R2, 0), 0, &mut regs, &mut mem).unwrap();
        exec_inst(&Inst::new(Opcode::Ld, R3, R1, R0, 0), 0, &mut regs, &mut mem).unwrap();
        prop_assert_eq!(regs.read_u64(R3), v);
    }

    #[test]
    fn narrow_loads_extend_correctly(v in any::<u64>()) {
        let mut regs = RegFile::new();
        let mut mem = Memory::zeroed(64);
        regs.write_u64(R2, v);
        exec_inst(&Inst::new(Opcode::Sd, R0, R0, R2, 0), 0, &mut regs, &mut mem).unwrap();
        let check = |op: Opcode, expect: i64, regs: &mut RegFile, mem: &mut Memory| {
            exec_inst(&Inst::new(op, R3, R0, R0, 0), 0, regs, mem).unwrap();
            regs.read_i64(R3) == expect
        };
        prop_assert!(check(Opcode::Lb, v as u8 as i8 as i64, &mut regs, &mut mem));
        prop_assert!(check(Opcode::Lbu, (v & 0xFF) as i64, &mut regs, &mut mem));
        prop_assert!(check(Opcode::Lh, v as u16 as i16 as i64, &mut regs, &mut mem));
        prop_assert!(check(Opcode::Lhu, (v & 0xFFFF) as i64, &mut regs, &mut mem));
        prop_assert!(check(Opcode::Lw, v as u32 as i32 as i64, &mut regs, &mut mem));
        prop_assert!(check(Opcode::Lwu, (v & 0xFFFF_FFFF) as i64, &mut regs, &mut mem));
    }

    #[test]
    fn branch_direction_matches_comparison(a in any::<i64>(), b in any::<i64>()) {
        let mut regs = RegFile::new();
        let mut mem = Memory::zeroed(8);
        regs.write_i64(R1, a);
        regs.write_i64(R2, b);
        let taken = |op: Opcode, regs: &mut RegFile, mem: &mut Memory| {
            exec_inst(&Inst::new(op, R0, R1, R2, 99), 5, regs, mem)
                .unwrap()
                .taken
                .unwrap()
        };
        prop_assert_eq!(taken(Opcode::Beq, &mut regs, &mut mem), a == b);
        prop_assert_eq!(taken(Opcode::Bne, &mut regs, &mut mem), a != b);
        prop_assert_eq!(taken(Opcode::Blt, &mut regs, &mut mem), a < b);
        prop_assert_eq!(taken(Opcode::Bge, &mut regs, &mut mem), a >= b);
        prop_assert_eq!(taken(Opcode::Bltu, &mut regs, &mut mem), (a as u64) < (b as u64));
        prop_assert_eq!(taken(Opcode::Bgeu, &mut regs, &mut mem), (a as u64) >= (b as u64));
    }
}
