//! Hostile-input handling: truncation at every section boundary, bad
//! magic, unsupported versions, and structural corruption must all
//! produce a typed one-line error — never a panic. The binary maps
//! these to the runtime exit code (3).

use spear_isa::asm::Asm;
use spear_isa::reg::*;
use spear_isa::SpearBinary;
use spear_trace::{record, TraceError, TraceFile, MAGIC, VERSION};

fn sample_trace() -> Vec<u8> {
    let mut a = Asm::new();
    let xs = a.alloc_u64("xs", &[7, 11, 13, 17]);
    a.li(R1, xs as i64);
    a.li(R3, 4);
    a.li(R5, 0);
    a.label("loop");
    a.ld(R4, R1, 0);
    a.add(R5, R5, R4);
    a.addi(R1, R1, 8);
    a.addi(R3, R3, -1);
    a.bne(R3, R0, "loop");
    let out = a.reserve("out", 8);
    a.li(R6, out as i64);
    a.sd(R5, R6, 0);
    a.halt();
    let b = SpearBinary::plain(a.finish().unwrap());
    record(&b, u64::MAX).expect("records").0
}

#[test]
fn bad_magic_is_rejected() {
    let mut bytes = sample_trace();
    bytes[0] ^= 0xff;
    let err = TraceFile::decode(&bytes).expect_err("bad magic");
    assert_eq!(err, TraceError::BadMagic);
    assert!(err.to_string().contains("bad magic"), "{err}");
}

#[test]
fn unsupported_version_is_rejected_and_named() {
    let mut bytes = sample_trace();
    bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
    let err = TraceFile::decode(&bytes).expect_err("bad version");
    assert_eq!(err, TraceError::BadVersion { found: 99 });
    let msg = err.to_string();
    assert!(
        msg.contains("99") && msg.contains(&VERSION.to_string()),
        "diagnostic must name found and expected versions: {msg}"
    );
}

#[test]
fn truncation_at_every_point_is_an_error_never_a_panic() {
    let bytes = sample_trace();
    // Every strict prefix must fail loudly. This sweeps truncation
    // inside the magic, header fields, embedded image, and mid-record.
    for cut in 0..bytes.len() {
        let err = TraceFile::decode(&bytes[..cut])
            .err()
            .unwrap_or_else(|| panic!("prefix of {cut} bytes decoded successfully"));
        let msg = err.to_string();
        assert!(
            !msg.is_empty() && !msg.contains('\n'),
            "one-line diagnostic: {msg:?}"
        );
    }
}

#[test]
fn eof_mid_record_is_reported_as_truncation() {
    let bytes = sample_trace();
    // Chop the last payload byte but also fix up the stored payload
    // length so the cut lands *inside* the record stream rather than at
    // the section boundary.
    let full = TraceFile::decode(&bytes).unwrap();
    assert!(full.payload_bytes > 1, "sample payload too small to cut");

    // Locate the payload-length field: it sits 9 bytes before the
    // payload (length u64, then the encoding byte), and the payload is
    // the last `payload_bytes` of the file.
    let payload_start = bytes.len() - full.payload_bytes as usize;
    let len_field = payload_start - 9;
    let mut cut = bytes[..bytes.len() - 1].to_vec();
    cut[len_field..len_field + 8].copy_from_slice(&(full.payload_bytes - 1).to_le_bytes());

    let err = TraceFile::decode(&cut).expect_err("mid-record EOF");
    match err {
        TraceError::Truncated(_) | TraceError::Corrupt(_) => {}
        other => panic!("expected truncation/corruption, got {other:?}"),
    }
}

#[test]
fn unknown_payload_encoding_is_rejected() {
    let bytes = sample_trace();
    let full = TraceFile::decode(&bytes).unwrap();
    // The encoding byte immediately precedes the payload.
    let enc_field = bytes.len() - full.payload_bytes as usize - 1;
    let mut bad = bytes.clone();
    bad[enc_field] = 7;
    let err = TraceFile::decode(&bad).expect_err("unknown encoding");
    assert!(matches!(err, TraceError::Corrupt(_)), "{err}");
    assert!(err.to_string().contains("encoding"), "{err}");
}

#[test]
fn trailing_garbage_is_rejected() {
    let mut bytes = sample_trace();
    bytes.extend_from_slice(b"junk");
    let err = TraceFile::decode(&bytes).expect_err("trailing bytes");
    assert!(matches!(err, TraceError::Corrupt(_)), "{err}");
    assert!(err.to_string().contains("trailing"), "{err}");
}

#[test]
fn corrupt_image_is_rejected() {
    let mut bytes = sample_trace();
    // The embedded image starts at offset 20 with the SPEARBIN magic.
    bytes[20] ^= 0xff;
    let err = TraceFile::decode(&bytes).expect_err("bad image");
    assert!(matches!(err, TraceError::Corrupt(_)), "{err}");
    assert!(err.to_string().contains("image"), "{err}");
}

#[test]
fn empty_and_tiny_inputs_fail_cleanly() {
    assert_eq!(
        TraceFile::decode(&[]).expect_err("empty"),
        TraceError::Truncated("magic")
    );
    assert_eq!(
        TraceFile::decode(&MAGIC[..4]).expect_err("half magic"),
        TraceError::Truncated("magic")
    );
    // Valid magic, then nothing.
    assert_eq!(
        TraceFile::decode(&MAGIC).expect_err("no version"),
        TraceError::Truncated("version")
    );
}
