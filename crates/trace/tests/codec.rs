//! Codec round-trips over the boundary values the `.spt` format leans
//! on — zero deltas, `u32::MAX` addresses, backward branches, max-delta
//! jumps — plus a property test that encode∘decode is the identity on
//! random instruction streams.

use proptest::prelude::*;
use spear_trace::codec::{get_varint, put_varint, rle_decode, rle_encode, unzigzag, zigzag};
use spear_trace::{record, TraceFile};

fn varint_round_trip(v: u64) -> u64 {
    let mut buf = Vec::new();
    put_varint(&mut buf, v);
    let mut pos = 0;
    let back = get_varint(&buf, &mut pos).expect("decodes");
    assert_eq!(pos, buf.len(), "no trailing bytes for {v}");
    back
}

#[test]
fn varint_boundary_values_round_trip() {
    for v in [
        0u64,
        1,
        0x7f,
        0x80,
        0x3fff,
        0x4000,
        u32::MAX as u64,     // a whole-address-space effective address
        u32::MAX as u64 + 1, // first value needing the 6th byte's range
        u64::MAX,            // 10-byte worst case
    ] {
        assert_eq!(varint_round_trip(v), v);
    }
}

#[test]
fn varint_rejects_truncation_and_overlong_encodings() {
    // Truncated: continuation bit set, then EOF.
    let mut pos = 0;
    assert_eq!(get_varint(&[0x80], &mut pos), None);
    // Overlong: an 11-byte varint can't fit a u64 — corrupt, not a panic.
    let overlong = [0xff; 11];
    let mut pos = 0;
    assert_eq!(get_varint(&overlong, &mut pos), None);
}

#[test]
fn zigzag_boundary_values_round_trip() {
    // 0, a backward branch (negative PC delta), the largest forward and
    // backward jumps a 32-bit PC can express, and the i64 extremes.
    for v in [
        0i64,
        -1,
        1,
        -(u32::MAX as i64), // max backward delta
        u32::MAX as i64,    // max forward delta
        i64::MIN,
        i64::MAX,
    ] {
        assert_eq!(unzigzag(zigzag(v)), v, "zigzag round trip of {v}");
    }
    // Small magnitudes encode small: a backward loop branch stays 1 byte.
    assert!(zigzag(-8) < 0x80);
}

#[test]
fn rle_boundary_shapes_round_trip() {
    let cases: Vec<Vec<u8>> = vec![
        vec![],
        vec![0],
        vec![0; 1000],
        vec![1, 2, 3],
        vec![0, 1, 0, 0, 2, 0, 0, 0],
        vec![255; 64],
    ];
    for raw in cases {
        let enc = rle_encode(&raw);
        assert_eq!(rle_decode(&enc, raw.len()).as_deref(), Some(&raw[..]));
    }
}

#[test]
fn rle_rejects_oversized_runs() {
    // A run header claiming more zeros than the raw length bound.
    let mut enc = vec![0u8];
    put_varint(&mut enc, 1 << 40);
    assert_eq!(rle_decode(&enc, 1024), None);
}

proptest! {
    #[test]
    fn varint_encode_decode_identity(vs in proptest::collection::vec(any::<u64>(), 0..64)) {
        let mut buf = Vec::new();
        for &v in &vs {
            put_varint(&mut buf, v);
        }
        let mut pos = 0;
        let mut back = Vec::new();
        while pos < buf.len() {
            back.push(get_varint(&buf, &mut pos).expect("stream decodes"));
        }
        prop_assert_eq!(back, vs);
    }

    #[test]
    fn zigzag_identity(v in any::<i64>()) {
        prop_assert_eq!(unzigzag(zigzag(v)), v);
    }

    #[test]
    fn rle_encode_decode_identity(raw in proptest::collection::vec(
        prop_oneof![3 => Just(0u8), 1 => any::<u8>()], 0..512))
    {
        let enc = rle_encode(&raw);
        let dec = rle_decode(&enc, raw.len());
        prop_assert_eq!(dec.as_deref(), Some(&raw[..]));
    }

    /// End to end: a random (seeded) instruction stream — a reduction
    /// loop over random data with random trip count — records and
    /// decodes back to the exact committed path.
    #[test]
    fn record_decode_identity_on_random_streams(
        n in 1u64..48,
        xs in proptest::collection::vec(any::<u64>(), 1..48),
    ) {
        use spear_isa::asm::Asm;
        use spear_isa::reg::*;

        let mut a = Asm::new();
        let base = a.alloc_u64("xs", &xs);
        let n = n.min(xs.len() as u64);
        a.li(R1, base as i64);
        a.li(R2, 0);
        a.li(R3, n as i64);
        a.label("loop");
        a.ld(R4, R1, 0);
        a.add(R2, R2, R4);
        a.addi(R1, R1, 8);
        a.addi(R3, R3, -1);
        a.bne(R3, R0, "loop");
        let out = a.reserve("out", 8);
        a.li(R5, out as i64);
        a.sd(R2, R5, 0);
        a.halt();
        let b = spear_isa::SpearBinary::plain(a.finish().unwrap());

        let (bytes, stats) = record(&b, u64::MAX).expect("records");
        let tf = TraceFile::decode(&bytes).expect("decodes");
        prop_assert_eq!(tf.recs.len() as u64, stats.insts);

        let mut i = spear_exec::Interp::new(&b.program);
        for rec in &tf.recs {
            let si = i.step().expect("golden step");
            prop_assert_eq!(rec.next_pc, si.outcome.next_pc);
            prop_assert_eq!(rec.eff_addr, si.outcome.eff_addr);
            if si.inst.op.is_store() {
                let ea = si.outcome.eff_addr.unwrap();
                let v = i.mem.peek(ea, si.inst.op.mem_width()).unwrap();
                prop_assert_eq!(rec.store, Some(v));
            }
        }
        prop_assert!(i.halted);
    }
}
