//! Byte-level codecs for the `.spt` record payload: LEB128 varints,
//! zigzag signed mapping, and a zero-byte run-length layer.
//!
//! The record stream is built from three orthogonal tricks, composed in
//! this order:
//!
//! 1. **Delta encoding** (done by the caller): PCs and effective
//!    addresses are stored as differences from a running previous value,
//!    so sequential code and strided access produce tiny integers.
//! 2. **Zigzag varints**: signed deltas map to small unsigned integers
//!    (`0, -1, 1, -2, …` → `0, 1, 2, 3, …`) and are emitted LEB128-style,
//!    7 bits per byte — a not-taken branch or a repeated address costs
//!    one byte.
//! 3. **Zero RLE**: the finished payload is passed through a run-length
//!    layer that collapses runs of `0x00` (the single most common byte:
//!    not-taken branches and zero deltas) into `0x00` + varint(run-1).

/// Append `v` as an LEB128 varint (7 bits per byte, MSB = continuation).
pub fn put_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(b);
            return;
        }
        buf.push(b | 0x80);
    }
}

/// Decode one varint at `*pos`, advancing it. `None` on truncation or a
/// varint longer than the 10 bytes a `u64` can need (corrupt stream).
pub fn get_varint(buf: &[u8], pos: &mut usize) -> Option<u64> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let b = *buf.get(*pos)?;
        *pos += 1;
        if shift >= 64 {
            return None;
        }
        v |= u64::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
    }
}

/// Map a signed value to an unsigned one with small magnitudes first.
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Run-length-encode runs of zero bytes: every `0x00` in `raw` is
/// emitted as `0x00` followed by a varint of how many *additional*
/// zeros the run contained. Non-zero bytes pass through untouched, so
/// the layer is transparent to the varint stream above it.
pub fn rle_encode(raw: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(raw.len());
    let mut i = 0;
    while i < raw.len() {
        let b = raw[i];
        if b != 0 {
            out.push(b);
            i += 1;
            continue;
        }
        let start = i;
        while i < raw.len() && raw[i] == 0 {
            i += 1;
        }
        out.push(0);
        put_varint(&mut out, (i - start - 1) as u64);
    }
    out
}

/// Inverse of [`rle_encode`]. `None` if the stream ends inside a run
/// header or a run would exceed `max_raw` bytes (corrupt length field).
pub fn rle_decode(enc: &[u8], max_raw: usize) -> Option<Vec<u8>> {
    let mut out = Vec::with_capacity(enc.len());
    let mut pos = 0;
    while pos < enc.len() {
        let b = enc[pos];
        pos += 1;
        if b != 0 {
            out.push(b);
        } else {
            let extra = get_varint(enc, &mut pos)?;
            let run = (extra as usize).checked_add(1)?;
            if out.len().checked_add(run)? > max_raw {
                return None;
            }
            out.resize(out.len() + run, 0);
        }
        if out.len() > max_raw {
            return None;
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_round_trips_boundaries() {
        for v in [0u64, 1, 127, 128, 16383, 16384, u32::MAX as u64, u64::MAX] {
            let mut b = Vec::new();
            put_varint(&mut b, v);
            let mut p = 0;
            assert_eq!(get_varint(&b, &mut p), Some(v));
            assert_eq!(p, b.len());
        }
    }

    #[test]
    fn zigzag_round_trips_extremes() {
        for v in [0i64, -1, 1, i64::MIN, i64::MAX, -(u32::MAX as i64)] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn rle_round_trips_mixed_runs() {
        let raw = [1u8, 0, 0, 0, 2, 0, 3, 3, 0, 0];
        let enc = rle_encode(&raw);
        assert_eq!(rle_decode(&enc, raw.len()).unwrap(), raw);
    }
}
