//! `.spt` — the SPEAR compressed instruction-trace format.
//!
//! A trace is a **capture-once / replay-forever** record of a program's
//! committed path: the cycle core replays the recorded next-PC /
//! effective-address / store-data oracle instead of re-executing
//! semantics, and any tool can re-run the exact dynamic stream without
//! the workload generator that produced it.
//!
//! # File layout (all integers little-endian)
//!
//! ```text
//! magic      8 bytes  b"SPEARSPT"
//! version    u32      1
//! image_len  u64      length of the embedded program image
//! image      bytes    the full SPEARBIN binary (program + p-thread table)
//! start_pc   u32      PC of the first recorded instruction
//! inst_count u64      number of per-retired-instruction records
//! raw_len    u64      payload length before the zero-RLE layer
//! stored_len u64      payload length as stored
//! encoding   u8       0 = raw varint stream, 1 = zero-RLE layer applied
//! payload    bytes    the varint record stream
//! ```
//!
//! The recorder stores whichever payload form is smaller: the zero-RLE
//! layer collapses not-taken/zero-delta runs but costs an extra byte per
//! *isolated* zero, so zero-sparse streams keep the raw form.
//!
//! The file is **self-describing**: the program image travels inside it,
//! so wrong-path fetch during replay (and the replay itself) needs no
//! external binary. Per-record fields are conditional on the opcode the
//! decoder sees at the current PC in the embedded image:
//!
//! * control transfer: one varint, `zigzag(next_pc − (pc+1)) << 1 | taken`
//!   — a not-taken branch is a single `0x00` byte;
//! * load/store: one varint, `zigzag(eff_addr − prev_eff_addr)` against a
//!   running previous address;
//! * store only: one varint, `zigzag(stored value)`;
//! * everything else (ALU, nop, halt): **zero bytes** — the committed
//!   next PC is implied.
//!
//! That conditionality is what hits the compression target: straight-line
//! arithmetic costs nothing, loops cost a byte or two per iteration, and
//! the zero-RLE layer collapses the not-taken/zero-delta bytes that
//! remain (see `EXPERIMENTS.md` for measured bits/inst).

pub mod codec;

use codec::{get_varint, put_varint, rle_decode, rle_encode, unzigzag, zigzag};
use spear_exec::Interp;
use spear_isa::{binfile, Inst, Opcode, SpearBinary};
use std::fmt;

/// File magic.
pub const MAGIC: [u8; 8] = *b"SPEARSPT";
/// Current format version.
pub const VERSION: u32 = 1;

/// One decoded per-retired-instruction record: the committed-path oracle
/// the cycle core consumes instead of executing semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rec {
    /// Committed next PC.
    pub next_pc: u32,
    /// For control transfers: the resolved direction (unconditional
    /// transfers record `true`). `false` for everything else.
    pub taken: bool,
    /// True if this instruction was `halt`.
    pub halted: bool,
    /// Effective address, for loads and stores.
    pub eff_addr: Option<u64>,
    /// For stores: the value written (zero-extended to the access width).
    pub store: Option<u64>,
}

/// Why a trace failed to decode. Every variant renders as a one-line
/// diagnostic; none of the decode paths panic on hostile input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// The file does not start with the `.spt` magic.
    BadMagic,
    /// The file is a `.spt` trace from an unsupported format version.
    BadVersion {
        /// Version found in the header.
        found: u32,
    },
    /// The file ended in the middle of the named section.
    Truncated(&'static str),
    /// Structurally invalid content (bad image, PC walk escaping the
    /// program text, trailing bytes, oversized runs).
    Corrupt(String),
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::BadMagic => write!(f, "not a .spt trace (bad magic)"),
            TraceError::BadVersion { found } => {
                write!(f, "trace version {found} unsupported (expected {VERSION})")
            }
            TraceError::Truncated(what) => {
                write!(f, "truncated trace: unexpected end of file in {what}")
            }
            TraceError::Corrupt(msg) => write!(f, "corrupt trace: {msg}"),
        }
    }
}

impl std::error::Error for TraceError {}

/// Capture-side accounting, for the `record` subcommand's summary line
/// and the EXPERIMENTS.md bits/inst table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecordStats {
    /// Instructions recorded.
    pub insts: u64,
    /// Record payload bytes as stored (after zero-RLE).
    pub payload_bytes: u64,
    /// Record payload bytes before the zero-RLE layer.
    pub raw_payload_bytes: u64,
    /// Embedded program-image bytes.
    pub image_bytes: u64,
    /// Total file size.
    pub file_bytes: u64,
    /// True if the recording ended at `halt` (false: budget hit).
    pub halted: bool,
}

impl RecordStats {
    /// Stored record-payload bits per recorded instruction.
    pub fn payload_bits_per_inst(&self) -> f64 {
        if self.insts == 0 {
            return 0.0;
        }
        self.payload_bytes as f64 * 8.0 / self.insts as f64
    }

    /// Whole-file bits per recorded instruction (header and embedded
    /// image amortized over the dynamic stream).
    pub fn file_bits_per_inst(&self) -> f64 {
        if self.insts == 0 {
            return 0.0;
        }
        self.file_bytes as f64 * 8.0 / self.insts as f64
    }
}

/// A fully decoded trace: the embedded program (fetch image for both the
/// true path and wrong-path synthesis) plus the committed-path records.
#[derive(Debug)]
pub struct TraceFile {
    /// The embedded SPEARBIN binary.
    pub binary: SpearBinary,
    /// PC of the first record.
    pub start_pc: u32,
    /// Decoded per-retired-instruction records.
    pub recs: Vec<Rec>,
    /// Stored payload size (diagnostics).
    pub payload_bytes: u64,
    /// Pre-RLE payload size (diagnostics).
    pub raw_payload_bytes: u64,
}

/// What the interpreter observed when one instruction retired — the
/// fields the encoder needs to reconstruct the committed path.
struct RetiredStep<'a> {
    pc: u32,
    inst: &'a Inst,
    next_pc: u32,
    taken: bool,
    eff_addr: Option<u64>,
    store: Option<u64>,
}

/// Encode one retired instruction into the raw varint stream.
fn encode_step(raw: &mut Vec<u8>, prev_mem: &mut u64, step: RetiredStep<'_>) {
    if step.inst.op.is_ctrl() {
        let delta = i64::from(step.next_pc) - (i64::from(step.pc) + 1);
        put_varint(raw, (zigzag(delta) << 1) | u64::from(step.taken));
    }
    if step.inst.op.is_mem() {
        let ea = step
            .eff_addr
            .expect("memory op retired without an effective address");
        put_varint(raw, zigzag((ea as i64).wrapping_sub(*prev_mem as i64)));
        *prev_mem = ea;
        if step.inst.op.is_store() {
            put_varint(
                raw,
                zigzag(step.store.expect("store retired without a value") as i64),
            );
        }
    }
}

/// Record `binary`'s committed path by running the golden interpreter
/// from its entry point, up to `max_insts` retired instructions or
/// `halt`. Returns the encoded `.spt` bytes and capture accounting.
pub fn record(binary: &SpearBinary, max_insts: u64) -> Result<(Vec<u8>, RecordStats), String> {
    let mut interp = Interp::new(&binary.program);
    let start_pc = interp.pc;
    let mut raw = Vec::new();
    let mut prev_mem = 0u64;
    let mut insts = 0u64;
    while !interp.halted && insts < max_insts {
        let si = interp
            .step()
            .map_err(|e| format!("recording failed: functional execution failed: {e}"))?;
        let store = if si.inst.op.is_store() {
            let ea = si
                .outcome
                .eff_addr
                .expect("store retired without an effective address");
            let v = interp
                .mem
                .peek(ea, si.inst.op.mem_width())
                .map_err(|e| format!("recording failed: store readback: {e}"))?;
            Some(v)
        } else {
            None
        };
        encode_step(
            &mut raw,
            &mut prev_mem,
            RetiredStep {
                pc: si.pc,
                inst: &si.inst,
                next_pc: si.outcome.next_pc,
                taken: si.outcome.taken.unwrap_or(true),
                eff_addr: si.outcome.eff_addr,
                store,
            },
        );
        insts += 1;
    }

    let image = binfile::save(binary);
    let rle = rle_encode(&raw);
    // The zero-RLE layer costs an extra byte per *isolated* zero, so it
    // can expand zero-sparse streams; store whichever form is smaller.
    let (encoding, payload): (u8, &[u8]) = if rle.len() < raw.len() {
        (1, &rle)
    } else {
        (0, &raw)
    };
    let mut out = Vec::with_capacity(45 + image.len() + payload.len());
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&(image.len() as u64).to_le_bytes());
    out.extend_from_slice(&image);
    out.extend_from_slice(&start_pc.to_le_bytes());
    out.extend_from_slice(&insts.to_le_bytes());
    out.extend_from_slice(&(raw.len() as u64).to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.push(encoding);
    out.extend_from_slice(payload);

    let stats = RecordStats {
        insts,
        payload_bytes: payload.len() as u64,
        raw_payload_bytes: raw.len() as u64,
        image_bytes: image.len() as u64,
        file_bytes: out.len() as u64,
        halted: interp.halted,
    };
    Ok((out, stats))
}

fn take<'a>(
    buf: &'a [u8],
    pos: &mut usize,
    n: usize,
    what: &'static str,
) -> Result<&'a [u8], TraceError> {
    let end = pos.checked_add(n).ok_or(TraceError::Truncated(what))?;
    if end > buf.len() {
        return Err(TraceError::Truncated(what));
    }
    let s = &buf[*pos..end];
    *pos = end;
    Ok(s)
}

fn take_u32(buf: &[u8], pos: &mut usize, what: &'static str) -> Result<u32, TraceError> {
    Ok(u32::from_le_bytes(
        take(buf, pos, 4, what)?.try_into().unwrap(),
    ))
}

fn take_u64(buf: &[u8], pos: &mut usize, what: &'static str) -> Result<u64, TraceError> {
    Ok(u64::from_le_bytes(
        take(buf, pos, 8, what)?.try_into().unwrap(),
    ))
}

impl TraceFile {
    /// Decode a `.spt` file. Rejects bad magic, unsupported versions,
    /// truncation anywhere (header, image, mid-record), and structural
    /// corruption — always with a one-line diagnostic, never a panic.
    pub fn decode(bytes: &[u8]) -> Result<TraceFile, TraceError> {
        let mut pos = 0usize;
        if take(bytes, &mut pos, 8, "magic")? != MAGIC {
            return Err(TraceError::BadMagic);
        }
        let version = take_u32(bytes, &mut pos, "version")?;
        if version != VERSION {
            return Err(TraceError::BadVersion { found: version });
        }
        let image_len = take_u64(bytes, &mut pos, "image length")? as usize;
        let image = take(bytes, &mut pos, image_len, "program image")?;
        let binary = binfile::load(image)
            .map_err(|e| TraceError::Corrupt(format!("embedded program image: {e}")))?;
        let start_pc = take_u32(bytes, &mut pos, "start pc")?;
        let inst_count = take_u64(bytes, &mut pos, "instruction count")?;
        let raw_len = take_u64(bytes, &mut pos, "raw payload length")? as usize;
        let stored_len = take_u64(bytes, &mut pos, "payload length")? as usize;
        let encoding = take(bytes, &mut pos, 1, "payload encoding")?[0];
        let payload = take(bytes, &mut pos, stored_len, "record payload")?;
        if pos != bytes.len() {
            return Err(TraceError::Corrupt(format!(
                "{} trailing bytes after the record payload",
                bytes.len() - pos
            )));
        }
        let raw: Vec<u8> = match encoding {
            0 => {
                if payload.len() != raw_len {
                    return Err(TraceError::Corrupt(format!(
                        "raw-encoded payload is {} bytes, header says {raw_len}",
                        payload.len()
                    )));
                }
                payload.to_vec()
            }
            1 => rle_decode(payload, raw_len)
                .ok_or(TraceError::Truncated("record payload (zero-RLE layer)"))?,
            other => {
                return Err(TraceError::Corrupt(format!(
                    "unknown payload encoding {other}"
                )))
            }
        };
        if raw.len() != raw_len {
            return Err(TraceError::Corrupt(format!(
                "payload decompressed to {} bytes, header says {raw_len}",
                raw.len()
            )));
        }

        let program = &binary.program;
        let mut recs = Vec::with_capacity(inst_count.min(1 << 24) as usize);
        let mut pc = start_pc;
        let mut prev_mem = 0u64;
        let mut rpos = 0usize;
        for i in 0..inst_count {
            let Some(&inst) = program.fetch(pc) else {
                return Err(TraceError::Corrupt(format!(
                    "record {i}: pc {pc} escapes the program text"
                )));
            };
            let mut rec = Rec {
                next_pc: pc.wrapping_add(1),
                taken: false,
                halted: false,
                eff_addr: None,
                store: None,
            };
            if inst.op == Opcode::Halt {
                rec.next_pc = pc;
                rec.halted = true;
            }
            if inst.op.is_ctrl() {
                let v = get_varint(&raw, &mut rpos)
                    .ok_or(TraceError::Truncated("record stream (control field)"))?;
                rec.taken = v & 1 == 1;
                let delta = unzigzag(v >> 1);
                rec.next_pc = (i64::from(pc) + 1).wrapping_add(delta) as u32;
            }
            if inst.op.is_mem() {
                let v = get_varint(&raw, &mut rpos)
                    .ok_or(TraceError::Truncated("record stream (address field)"))?;
                let ea = (prev_mem as i64).wrapping_add(unzigzag(v)) as u64;
                rec.eff_addr = Some(ea);
                prev_mem = ea;
                if inst.op.is_store() {
                    let sv = get_varint(&raw, &mut rpos)
                        .ok_or(TraceError::Truncated("record stream (store field)"))?;
                    rec.store = Some(unzigzag(sv) as u64);
                }
            }
            pc = rec.next_pc;
            recs.push(rec);
        }
        if rpos != raw.len() {
            return Err(TraceError::Corrupt(format!(
                "{} unconsumed payload bytes after the last record",
                raw.len() - rpos
            )));
        }
        Ok(TraceFile {
            binary,
            start_pc,
            recs,
            payload_bytes: stored_len as u64,
            raw_payload_bytes: raw_len as u64,
        })
    }

    /// True if the recording reached `halt` (replay can run to
    /// completion; a budget-truncated trace can only replay its prefix).
    pub fn ends_halted(&self) -> bool {
        self.recs.last().is_some_and(|r| r.halted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spear_isa::asm::Asm;
    use spear_isa::reg::*;

    fn sum_loop(n: u64) -> SpearBinary {
        let mut a = Asm::new();
        let xs: Vec<u64> = (1..=n).collect();
        let base = a.alloc_u64("xs", &xs);
        a.li(R1, base as i64);
        a.li(R2, 0);
        a.li(R3, n as i64);
        a.label("loop");
        a.ld(R4, R1, 0);
        a.add(R2, R2, R4);
        a.addi(R1, R1, 8);
        a.addi(R3, R3, -1);
        a.bne(R3, R0, "loop");
        let out = a.reserve("out", 8);
        a.li(R5, out as i64);
        a.sd(R2, R5, 0);
        a.halt();
        SpearBinary::plain(a.finish().unwrap())
    }

    #[test]
    fn record_decode_round_trip_matches_the_interpreter() {
        let b = sum_loop(16);
        let (bytes, stats) = record(&b, u64::MAX).unwrap();
        assert!(stats.halted);
        let tf = TraceFile::decode(&bytes).unwrap();
        assert_eq!(tf.recs.len() as u64, stats.insts);
        assert!(tf.ends_halted());

        // Walk the interpreter in lockstep with the decoded records.
        let mut i = Interp::new(&b.program);
        for (n, rec) in tf.recs.iter().enumerate() {
            let si = i.step().unwrap_or_else(|e| panic!("step {n}: {e}"));
            assert_eq!(rec.next_pc, si.outcome.next_pc, "record {n} next_pc");
            assert_eq!(rec.eff_addr, si.outcome.eff_addr, "record {n} eff_addr");
            assert_eq!(rec.halted, si.outcome.halted, "record {n} halted");
            if si.inst.op.is_ctrl() {
                assert_eq!(
                    rec.taken,
                    si.outcome.taken.unwrap_or(true),
                    "record {n} taken"
                );
            }
            if si.inst.op.is_store() {
                let ea = si.outcome.eff_addr.unwrap();
                let v = i.mem.peek(ea, si.inst.op.mem_width()).unwrap();
                assert_eq!(rec.store, Some(v), "record {n} store value");
            }
        }
        assert!(i.halted);
    }

    #[test]
    fn loop_kernels_compress_well_under_the_budget() {
        let b = sum_loop(256);
        let (_, stats) = record(&b, u64::MAX).unwrap();
        // 5-inst loop body with one load and one (taken) back-branch:
        // ~2 payload bytes per iteration = ~3.2 bits/inst, far under the
        // 16-bit target even before RLE.
        assert!(
            stats.payload_bits_per_inst() <= 16.0,
            "payload bits/inst {} exceeds the format target",
            stats.payload_bits_per_inst()
        );
    }

    #[test]
    fn budget_truncated_recording_reports_not_halted() {
        let b = sum_loop(64);
        let (bytes, stats) = record(&b, 10).unwrap();
        assert!(!stats.halted);
        assert_eq!(stats.insts, 10);
        let tf = TraceFile::decode(&bytes).unwrap();
        assert_eq!(tf.recs.len(), 10);
        assert!(!tf.ends_halted());
    }
}
