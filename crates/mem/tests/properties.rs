//! Property-based tests of the cache model against a reference
//! implementation and its structural invariants.

use proptest::prelude::*;
use spear_mem::{AccessKind, Cache, CacheGeometry, HierConfig, Hierarchy, ReplPolicy};
use std::collections::HashMap;

/// A trivially correct reference for an LRU set-associative cache.
struct RefCache {
    sets: usize,
    assoc: usize,
    block: u64,
    // set → ordered (MRU first) list of tags.
    lines: HashMap<usize, Vec<u64>>,
}

impl RefCache {
    fn new(g: CacheGeometry) -> RefCache {
        RefCache {
            sets: g.sets,
            assoc: g.assoc,
            block: g.block_bytes as u64,
            lines: HashMap::new(),
        }
    }

    fn access(&mut self, addr: u64) -> bool {
        let blk = addr / self.block;
        let set = (blk % self.sets as u64) as usize;
        let tag = blk / self.sets as u64;
        let list = self.lines.entry(set).or_default();
        if let Some(pos) = list.iter().position(|&t| t == tag) {
            list.remove(pos);
            list.insert(0, tag);
            true
        } else {
            list.insert(0, tag);
            list.truncate(self.assoc);
            false
        }
    }
}

fn small_geom() -> CacheGeometry {
    CacheGeometry {
        sets: 8,
        assoc: 2,
        block_bytes: 16,
    }
}

proptest! {
    /// Our LRU cache must agree hit-for-hit with the reference model on
    /// arbitrary read streams.
    #[test]
    fn lru_matches_reference(addrs in proptest::collection::vec(0u64..4096, 1..400)) {
        let mut ours = Cache::new(small_geom(), ReplPolicy::Lru);
        let mut reference = RefCache::new(small_geom());
        for (i, &a) in addrs.iter().enumerate() {
            let expect = reference.access(a);
            let got = ours.access(a, false).hit;
            prop_assert_eq!(got, expect, "access #{} to {:#x}", i, a);
        }
    }

    /// Hits + misses always equals accesses; misses never exceed accesses.
    #[test]
    fn stats_are_consistent(
        ops in proptest::collection::vec((0u64..65536, any::<bool>()), 1..300)
    ) {
        let mut c = Cache::new(small_geom(), ReplPolicy::Lru);
        for &(a, w) in &ops {
            c.access(a, w);
        }
        let s = c.stats;
        prop_assert_eq!(s.accesses(), ops.len() as u64);
        prop_assert!(s.misses() <= s.accesses());
        prop_assert!(s.writebacks <= s.write_misses + s.writes,
            "a writeback needs a prior dirtying write");
    }

    /// Immediately re-accessing any address is always a (possibly delayed)
    /// hit, under every replacement policy.
    #[test]
    fn immediate_reaccess_hits(
        addrs in proptest::collection::vec(0u64..100_000, 1..200),
        policy in prop_oneof![
            Just(ReplPolicy::Lru),
            Just(ReplPolicy::Fifo),
            Just(ReplPolicy::Random)
        ]
    ) {
        let mut c = Cache::new(small_geom(), policy);
        for &a in &addrs {
            c.access(a, false);
            prop_assert!(c.access(a, false).hit, "{:#x} must hit right after a fill", a);
        }
    }

    /// Hierarchy latency is always one of the three well-formed sums, and
    /// per-PC miss accounting matches the L1D read+write miss counters
    /// for main-thread traffic.
    #[test]
    fn hierarchy_latency_and_accounting(
        ops in proptest::collection::vec((0u64..(1 << 22), any::<bool>(), 0u32..8), 1..400)
    ) {
        let mut h = Hierarchy::new(HierConfig::paper());
        let mut now = 0u64;
        for &(a, w, pc) in &ops {
            let kind = if w { AccessKind::Write } else { AccessKind::Read };
            let acc = h.access_data(a, kind, pc, false, now);
            prop_assert!(
                acc.latency == 1 || acc.latency == 13 || acc.latency == 133
                    || (acc.latency > 1 && acc.latency <= 133),
                "latency {}", acc.latency
            );
            now += 200; // past every fill: no pending merges
        }
        prop_assert_eq!(h.pc_misses.total(), h.l1d.stats.misses());
    }

    /// Pending-fill merges never report more than the full walk and never
    /// less than an L1 hit.
    #[test]
    fn merge_latency_bounded(offsets in proptest::collection::vec(0u64..32, 1..50)) {
        let mut h = Hierarchy::new(HierConfig::paper());
        let first = h.access_data(0x8000, AccessKind::Read, 0, false, 0);
        for (i, &off) in offsets.iter().enumerate() {
            let acc = h.access_data(0x8000 + off % 32, AccessKind::Read, 0, false, i as u64);
            prop_assert!(acc.latency >= 1 && acc.latency <= first.latency);
        }
    }
}
