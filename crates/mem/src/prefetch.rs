//! A conventional per-PC stride prefetcher.
//!
//! The paper's motivation (§1) is that "traditional prefetching methods
//! strongly rely on the predictability of memory access patterns and often
//! fail when faced with irregular patterns". This module provides that
//! traditional method — a reference-prediction-table stride prefetcher —
//! as an alternative baseline so the claim is testable: it should match or
//! beat SPEAR on regular strides (matrix, field) and do nothing on the
//! irregular benchmarks SPEAR targets (mcf, dm, gathers).

use serde::{Deserialize, Serialize};

/// Stride-prefetcher configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct StrideConfig {
    /// Reference prediction table entries (per-PC).
    pub table_size: usize,
    /// Consecutive confirmations before prefetches fire.
    pub confidence: u8,
    /// How many strides ahead to prefetch.
    pub degree: u8,
}

impl Default for StrideConfig {
    fn default() -> Self {
        StrideConfig {
            table_size: 256,
            confidence: 2,
            degree: 2,
        }
    }
}

#[derive(Clone, Copy, Debug, Default)]
struct Entry {
    pc: u32,
    last_addr: u64,
    stride: i64,
    confidence: u8,
    valid: bool,
}

/// The reference prediction table.
#[derive(Clone, Debug)]
pub struct StridePrefetcher {
    cfg: StrideConfig,
    table: Vec<Entry>,
    /// Prefetch addresses issued (diagnostics).
    pub issued: u64,
}

impl StridePrefetcher {
    /// Build from a configuration (table size must be a power of two).
    pub fn new(cfg: StrideConfig) -> StridePrefetcher {
        assert!(cfg.table_size.is_power_of_two());
        StridePrefetcher {
            cfg,
            table: vec![Entry::default(); cfg.table_size],
            issued: 0,
        }
    }

    /// Observe a demand access by `pc` at `addr`; returns the prefetch
    /// addresses to issue (empty until the stride is confident).
    pub fn observe(&mut self, pc: u32, addr: u64) -> Vec<u64> {
        let slot = (pc as usize) & (self.cfg.table_size - 1);
        let e = &mut self.table[slot];
        let mut out = Vec::new();
        if e.valid && e.pc == pc {
            let stride = addr.wrapping_sub(e.last_addr) as i64;
            if stride == e.stride && stride != 0 {
                e.confidence = (e.confidence + 1).min(self.cfg.confidence + 1);
            } else {
                e.stride = stride;
                e.confidence = 0;
            }
            e.last_addr = addr;
            if e.confidence >= self.cfg.confidence && e.stride != 0 {
                for k in 1..=self.cfg.degree as i64 {
                    let target = addr.wrapping_add((e.stride * k) as u64);
                    out.push(target);
                }
                self.issued += out.len() as u64;
            }
        } else {
            *e = Entry {
                pc,
                last_addr: addr,
                stride: 0,
                confidence: 0,
                valid: true,
            };
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_stride_confirms_then_fires() {
        let mut p = StridePrefetcher::new(StrideConfig::default());
        assert!(p.observe(7, 1000).is_empty()); // allocate
        assert!(p.observe(7, 1064).is_empty()); // learn stride 64 (conf 0)
        assert!(p.observe(7, 1128).is_empty()); // conf 1
        let pf = p.observe(7, 1192); // conf 2 → fire
        assert_eq!(pf, vec![1256, 1320]);
    }

    #[test]
    fn random_addresses_never_fire() {
        let mut p = StridePrefetcher::new(StrideConfig::default());
        let mut x = 0x9E3779B97F4A7C15u64;
        for _ in 0..200 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            assert!(p.observe(3, x & 0xFFFFF).is_empty());
        }
        assert_eq!(p.issued, 0);
    }

    #[test]
    fn negative_strides_work() {
        let mut p = StridePrefetcher::new(StrideConfig::default());
        for i in 0..3 {
            p.observe(9, 10_000 - i * 8);
        }
        let pf = p.observe(9, 10_000 - 3 * 8);
        assert_eq!(pf, vec![10_000 - 4 * 8, 10_000 - 5 * 8]);
    }

    #[test]
    fn pc_aliasing_reallocates() {
        let mut p = StridePrefetcher::new(StrideConfig {
            table_size: 16,
            ..Default::default()
        });
        for i in 0..4 {
            p.observe(1, 100 + i * 8);
        }
        // A different PC aliasing slot 1 (pc 17) steals the entry.
        p.observe(17, 5000);
        assert!(p.observe(1, 100 + 4 * 8).is_empty(), "entry was stolen");
    }

    #[test]
    fn stride_change_resets_confidence() {
        let mut p = StridePrefetcher::new(StrideConfig::default());
        for i in 0..4 {
            p.observe(2, 100 + i * 8);
        }
        assert!(!p.observe(2, 100 + 4 * 8).is_empty(), "confident");
        assert!(p.observe(2, 10_000).is_empty(), "stride broken");
        assert!(p.observe(2, 10_016).is_empty(), "relearning");
    }
}
